// Command fsencr-attack demonstrates the threat-model scenarios of the
// paper (Figure 4, Table I, §VI) against live simulated systems: a stolen
// DIMM scan, a compromised memory-encryption key, a leaked per-file key, an
// alien-OS boot with wrong admin credentials, an accidental chmod 777, and
// secure deletion.
package main

import (
	"bytes"
	"fmt"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/fs"
	"fsencr/internal/kernel"
)

type lab struct {
	sys    *kernel.System
	alice  *kernel.Process
	bob    *kernel.Process
	fileA  *fs.File
	secret []byte
}

const alicePass = "alice-secret-passphrase"

func build(scheme core.Scheme) *lab {
	l := &lab{
		sys:    kernel.Boot(config.Default(), scheme.MCMode(), scheme.AccessMode()),
		secret: []byte("ALICE-PAYROLL-RECORDS-2026-Q3..."),
	}
	l.alice = l.sys.NewProcess(1000, 100)
	l.bob = l.sys.NewProcess(1001, 101)
	var err error
	l.fileA, err = l.sys.CreateFile(l.alice, "alice.db", 0600, 8<<10, scheme.FilesEncrypted(), alicePass)
	if err != nil {
		panic(err)
	}
	va, err := l.alice.Mmap(l.fileA, 8<<10)
	if err != nil {
		panic(err)
	}
	if err := l.alice.Write(va, l.secret); err != nil {
		panic(err)
	}
	if err := l.alice.Persist(va, uint64(len(l.secret))); err != nil {
		panic(err)
	}
	l.sys.M.WritebackAll()
	return l
}

func verdict(exposed bool) string {
	if exposed {
		return "EXPOSED"
	}
	return "protected"
}

func main() {
	fmt.Println("FsEncr threat-model demonstrations (Figure 4, Table I, §VI)")
	fmt.Println()

	// Scenario 1: Attacker X steals the DIMM and scans it raw.
	fmt.Println("[1] Stolen DIMM: raw scan of physical memory")
	for _, sc := range []core.Scheme{core.SchemePlain, core.SchemeBaseline, core.SchemeFsEncr} {
		l := build(sc)
		pa, _ := l.fileA.PagePA(0)
		if sc == core.SchemeFsEncr {
			pa = pa.WithDF()
		}
		raw := l.sys.M.MC.RawLine(pa)
		fmt.Printf("    %-9s -> %s\n", sc, verdict(bytes.Contains(raw[:], l.secret[:16])))
	}
	fmt.Println()

	// Scenario 2: the general memory-encryption key is compromised
	// (Table I, row 1: System A falls, System C holds).
	fmt.Println("[2] Memory-encryption key revealed (Table I row 1)")
	for _, sc := range []core.Scheme{core.SchemeBaseline, core.SchemeFsEncr} {
		l := build(sc)
		pa, _ := l.fileA.PagePA(0)
		if sc == core.SchemeFsEncr {
			pa = pa.WithDF()
		}
		half := l.sys.M.MC.DecryptWithMemoryKeyOnly(pa)
		system := "System A (memory encryption only)"
		if sc == core.SchemeFsEncr {
			system = "System C (per-file keys, FsEncr)"
		}
		fmt.Printf("    %-34s -> %s\n", system, verdict(bytes.Contains(half[:], l.secret[:16])))
	}
	fmt.Println()

	// Scenario 3: one user's passphrase leaks (Table I row 2): only that
	// user's files fall under System C.
	fmt.Println("[3] Alice's passphrase leaks (Table I row 2, System C)")
	{
		l := build(core.SchemeFsEncr)
		if _, err := l.sys.CreateFile(l.bob, "bob.db", 0600, 8<<10, true, "bobs-own-passphrase"); err != nil {
			panic(err)
		}
		_, errA := l.sys.OpenFile(l.alice, "alice.db", fs.ReadAccess, alicePass)
		_, errB := l.sys.OpenFile(l.bob, "bob.db", fs.ReadAccess, alicePass)
		fmt.Printf("    alice.db with leaked passphrase -> %s\n", verdict(errA == nil))
		fmt.Printf("    bob.db with leaked passphrase   -> %s\n", verdict(errB == nil))
	}
	fmt.Println()

	// Scenario 4: internal attacker boots an alien OS; the boot-time admin
	// authentication fails, FsEncr locks its datapath (§VI).
	fmt.Println("[4] Alien OS boot with wrong admin credentials")
	{
		l := build(core.SchemeFsEncr)
		ok := l.sys.AuthenticateAdmin("guessed-admin-pw", "true-admin-pw")
		fmt.Printf("    admin authentication accepted -> %v\n", ok)
		l.sys.M.Crash(true)
		if err := l.sys.M.Recover(); err != nil {
			panic(err)
		}
		pa, _ := l.fileA.PagePA(0)
		line, _ := l.sys.M.MC.ReadLine(0, pa.WithDF())
		fmt.Printf("    file contents through locked controller -> %s\n",
			verdict(bytes.Contains(line[:], l.secret[:16])))
	}
	fmt.Println()

	// Scenario 5: accidental chmod 777 (§VI): permission bits open up, but
	// the passphrase check at open still protects the file.
	fmt.Println("[5] Accidental chmod 777")
	{
		l := build(core.SchemeFsEncr)
		if err := l.sys.FS.Chmod(l.fileA, 1000, 0777); err != nil {
			panic(err)
		}
		_, err := l.sys.OpenFile(l.bob, "alice.db", fs.ReadAccess, "curious-guess")
		fmt.Printf("    curious user opens chmod-777 encrypted file -> %s (%v)\n",
			verdict(err == nil), err)
	}
	fmt.Println()

	// Scenario 6: secure deletion (§VI): after unlink+shred, even the
	// correct key recovers nothing from the old physical pages.
	fmt.Println("[6] Secure deletion (Silent-Shredder counter reset)")
	{
		l := build(core.SchemeFsEncr)
		pa, _ := l.fileA.PagePA(0)
		if err := l.sys.Unlink(l.alice, "alice.db"); err != nil {
			panic(err)
		}
		line, _ := l.sys.M.MC.ReadLine(0, pa.WithDF())
		fmt.Printf("    deleted file's old pages -> %s\n", verdict(bytes.Contains(line[:], l.secret[:16])))
	}
	fmt.Println()
	fmt.Println("Summary: only the configurations Table I marks vulnerable expose data.")
}
