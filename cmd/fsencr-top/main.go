// Command fsencr-top is the live operator dashboard for a running
// fsencrd: it polls the daemon's /snapshot.json observability endpoint
// and renders request totals and rates, per-shard queue state, the
// per-tenant SLO plane (p50/p99/p999 latency and error-budget burn), the
// trace tail-sampler's kept/dropped accounting, and waterfalls of the
// slowest retained request traces.
//
// Usage:
//
//	fsencr-top -addr http://127.0.0.1:9144              # refresh every 2s
//	fsencr-top -addr http://127.0.0.1:9144 -interval 1s
//	fsencr-top -addr http://127.0.0.1:9144 -once        # one frame, no clear
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fsencr/internal/fstop"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:9144", "fsencrd base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "render one frame and exit")
	)
	flag.Parse()
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if err := fstop.Run(fstop.Options{Base: base, Interval: *interval, Once: *once}); err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-top:", err)
		os.Exit(1)
	}
}
