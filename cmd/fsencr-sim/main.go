// Command fsencr-sim runs one Table II workload under one protection scheme
// on the simulated machine and prints its measurements.
//
// Usage:
//
//	fsencr-sim -workload ycsb -scheme fsencr -ops 2500
//	fsencr-sim -list
//	fsencr-sim -workload dax2 -scheme baseline -ops 100000 -metacache 262144 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/workloads"
)

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "plain", "ext4-dax":
		return core.SchemePlain, nil
	case "baseline":
		return core.SchemeBaseline, nil
	case "fsencr":
		return core.SchemeFsEncr, nil
	case "swencr", "ecryptfs":
		return core.SchemeSWEncr, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (plain|baseline|fsencr|swencr)", s)
}

func main() {
	var (
		workload  = flag.String("workload", "ycsb", "Table II workload name")
		scheme    = flag.String("scheme", "fsencr", "protection scheme: plain|baseline|fsencr|swencr")
		ops       = flag.Int("ops", 0, "timed operations per thread (0 = workload's bench default)")
		seed      = flag.Uint64("seed", 1, "workload RNG seed")
		metacache = flag.Int("metacache", 0, "metadata cache size in bytes (0 = Table III default)")
		list      = flag.Bool("list", false, "list available workloads and exit")
		verbose   = flag.Bool("v", false, "print the per-op breakdown")
	)
	flag.Parse()

	if *list {
		fmt.Println(core.TableII())
		return
	}

	sc, err := parseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-sim:", err)
		os.Exit(2)
	}
	w, err := workloads.Lookup(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-sim:", err)
		os.Exit(2)
	}
	n := *ops
	if n == 0 {
		n = w.BenchOps
	}
	req := core.Request{Workload: *workload, Scheme: sc, Ops: n, Seed: *seed}
	if *metacache != 0 {
		cfg := config.Default()
		cfg.Security.MetadataCacheSize = *metacache
		req.Cfg = &cfg
	}

	res, err := core.Run(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload        %s (%s; %d threads; %d ops/thread)\n", res.Workload, w.Desc, w.Threads, res.Ops)
	fmt.Printf("scheme          %s\n", res.Scheme)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("cycles/op       %.1f\n", res.CyclesPerOp())
	fmt.Printf("nvm reads       %d\n", res.NVMReads)
	fmt.Printf("nvm writes      %d\n", res.NVMWrites)
	fmt.Printf("meta reads      %d\n", res.MetaReads)
	fmt.Printf("meta writebacks %d\n", res.MetaWritebacks)
	fmt.Printf("minor faults    %d\n", res.Faults)
	if *verbose {
		total := res.MetaHits + res.MetaMisses
		if total > 0 {
			fmt.Printf("metadata cache  %.2f%% hit (%d/%d)\n",
				100*float64(res.MetaHits)/float64(total), res.MetaHits, total)
		}
		if res.ReadLatMean > 0 {
			fmt.Printf("miss latency    mean %.1f cycles, max %d\n", res.ReadLatMean, res.ReadLatMax)
		}
	}
}
