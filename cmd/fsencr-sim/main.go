// Command fsencr-sim runs Table II workloads under protection schemes on
// the simulated machine and prints their measurements.
//
// Usage:
//
//	fsencr-sim -workload ycsb -scheme fsencr -ops 2500
//	fsencr-sim -list
//	fsencr-sim -workload dax2 -scheme baseline -ops 100000 -metacache 262144 -v
//	fsencr-sim -workload ycsb,hashmap,ctree -scheme baseline,fsencr -parallel 4
//
// -workload and -scheme accept comma-separated lists; the cross product
// of (workload × scheme) is executed as one batch on the parallel
// experiment runner and printed in input order. Each simulation boots its
// own system, so results are identical at any -parallel value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/workloads"
)

// writeFileWith streams one exporter's output into path.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "plain", "ext4-dax":
		return core.SchemePlain, nil
	case "baseline":
		return core.SchemeBaseline, nil
	case "fsencr":
		return core.SchemeFsEncr, nil
	case "swencr", "ecryptfs":
		return core.SchemeSWEncr, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (plain|baseline|fsencr|swencr)", s)
}

func main() {
	var (
		workload  = flag.String("workload", "ycsb", "Table II workload name(s), comma separated")
		scheme    = flag.String("scheme", "fsencr", "protection scheme(s), comma separated: plain|baseline|fsencr|swencr")
		ops       = flag.Int("ops", 0, "timed operations per thread (0 = workload's bench default)")
		seed      = flag.Uint64("seed", 1, "workload RNG seed")
		metacache = flag.Int("metacache", 0, "metadata cache size in bytes (0 = Table III default)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		list      = flag.Bool("list", false, "list available workloads and exit")
		verbose   = flag.Bool("v", false, "print the per-op breakdown")

		metricsOut = flag.String("metrics-out", "", "write the batch's merged telemetry metrics in Prometheus text format to this file")
		traceOut   = flag.String("trace-out", "", "write the batch's spans as Chrome trace-event JSON (chrome://tracing) to this file")
	)
	flag.Parse()
	core.Parallelism = *parallel
	if *metricsOut != "" || *traceOut != "" {
		core.EnableTelemetry()
	}

	if *list {
		fmt.Println(core.TableII())
		return
	}

	fail := func(code int, err error) {
		fmt.Fprintln(os.Stderr, "fsencr-sim:", err)
		os.Exit(code)
	}

	var schemes []core.Scheme
	for _, s := range strings.Split(*scheme, ",") {
		sc, err := parseScheme(strings.TrimSpace(s))
		if err != nil {
			fail(2, err)
		}
		schemes = append(schemes, sc)
	}

	var cfg *config.Config
	if *metacache != 0 {
		c := config.Default()
		c.Security.MetadataCacheSize = *metacache
		cfg = &c
	}

	// Build the (workload × scheme) batch, validating names up front.
	var reqs []core.Request
	var descs []*workloads.Workload
	for _, name := range strings.Split(*workload, ",") {
		name = strings.TrimSpace(name)
		w, err := workloads.Lookup(name)
		if err != nil {
			fail(2, err)
		}
		n := *ops
		if n == 0 {
			n = w.BenchOps
		}
		for _, sc := range schemes {
			reqs = append(reqs, core.Request{Workload: name, Scheme: sc, Ops: n, Seed: *seed, Cfg: cfg})
			descs = append(descs, w)
		}
	}

	results, err := core.RunBatch(reqs)
	if err != nil {
		fail(1, err)
	}

	if *metricsOut != "" || *traceOut != "" {
		snap := core.TelemetrySnapshot()
		if *metricsOut != "" {
			if err := writeFileWith(*metricsOut, snap.WritePrometheus); err != nil {
				fail(1, err)
			}
		}
		if *traceOut != "" {
			if err := writeFileWith(*traceOut, snap.WriteChromeTrace); err != nil {
				fail(1, err)
			}
		}
	}

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		w := descs[i]
		fmt.Printf("workload        %s (%s; %d threads; %d ops/thread)\n", res.Workload, w.Desc, w.Threads, res.Ops)
		fmt.Printf("scheme          %s\n", res.Scheme)
		fmt.Printf("cycles          %d\n", res.Cycles)
		fmt.Printf("cycles/op       %.1f\n", res.CyclesPerOp())
		fmt.Printf("nvm reads       %d\n", res.NVMReads)
		fmt.Printf("nvm writes      %d\n", res.NVMWrites)
		fmt.Printf("meta reads      %d\n", res.MetaReads)
		fmt.Printf("meta writebacks %d\n", res.MetaWritebacks)
		fmt.Printf("minor faults    %d\n", res.Faults)
		if *verbose {
			total := res.MetaHits + res.MetaMisses
			if total > 0 {
				fmt.Printf("metadata cache  %.2f%% hit (%d/%d)\n",
					100*float64(res.MetaHits)/float64(total), res.MetaHits, total)
			}
			if res.ReadLatMean > 0 {
				fmt.Printf("miss latency    mean %.1f cycles, max %d\n", res.ReadLatMean, res.ReadLatMax)
			}
		}
	}
}
