// Command fsencr-sim runs Table II workloads under protection schemes on
// the simulated machine and prints their measurements.
//
// Usage:
//
//	fsencr-sim -workload ycsb -scheme fsencr -ops 2500
//	fsencr-sim -list
//	fsencr-sim -workload dax2 -scheme baseline -ops 100000 -metacache 262144 -v
//	fsencr-sim -workload ycsb,hashmap,ctree -scheme baseline,fsencr -parallel 4
//
// -workload and -scheme accept comma-separated lists; the cross product
// of (workload × scheme) is executed as one batch on the parallel
// experiment runner and printed in input order. Each simulation boots its
// own system, so results are identical at any -parallel value.
//
// With -serve the process additionally runs the live observability plane
// while the batch executes:
//
//	fsencr-sim -workload ycsb,hashmap -scheme fsencr -serve :9143 -linger
//	curl localhost:9143/metrics        # Prometheus scrape
//	curl localhost:9143/snapshot.json  # numbered snapshot + delta
//	curl localhost:9143/journal.jsonl  # security-event journal
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/obsplane"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/workloads"
)

// writeFileWith streams one exporter's output into path.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "plain", "ext4-dax":
		return core.SchemePlain, nil
	case "baseline":
		return core.SchemeBaseline, nil
	case "fsencr":
		return core.SchemeFsEncr, nil
	case "swencr", "ecryptfs":
		return core.SchemeSWEncr, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (plain|baseline|fsencr|swencr)", s)
}

func main() {
	var (
		workload  = flag.String("workload", "ycsb", "Table II workload name(s), comma separated")
		scheme    = flag.String("scheme", "fsencr", "protection scheme(s), comma separated: plain|baseline|fsencr|swencr")
		ops       = flag.Int("ops", 0, "timed operations per thread (0 = workload's bench default)")
		seed      = flag.Uint64("seed", 1, "workload RNG seed")
		metacache = flag.Int("metacache", 0, "metadata cache size in bytes (0 = Table III default)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		list      = flag.Bool("list", false, "list available workloads and exit")
		verbose   = flag.Bool("v", false, "print the per-op breakdown")

		metricsOut = flag.String("metrics-out", "", "write the batch's merged telemetry metrics in Prometheus text format to this file")
		traceOut   = flag.String("trace-out", "", "write the batch's spans as Chrome trace-event JSON (chrome://tracing) to this file")
		journalOut = flag.String("journal-out", "", "write the batch's merged security-event journal as JSONL to this file")

		serve      = flag.String("serve", "", "serve the live observability plane on this address (e.g. :9143) while the batch runs")
		linger     = flag.Bool("linger", false, "with -serve: keep serving after the batch completes, until interrupted")
		publishInt = flag.Duration("publish-interval", obsplane.DefaultInterval, "with -serve: period between numbered snapshot publications")
	)
	flag.Parse()
	core.Parallelism = *parallel
	if *metricsOut != "" || *traceOut != "" || *serve != "" {
		core.EnableTelemetry()
	}
	if *journalOut != "" || *serve != "" {
		core.EnableJournal()
	}

	if *list {
		fmt.Println(core.TableII())
		return
	}

	fail := func(code int, err error) {
		fmt.Fprintln(os.Stderr, "fsencr-sim:", err)
		os.Exit(code)
	}

	var schemes []core.Scheme
	for _, s := range strings.Split(*scheme, ",") {
		sc, err := parseScheme(strings.TrimSpace(s))
		if err != nil {
			fail(2, err)
		}
		schemes = append(schemes, sc)
	}

	var cfg *config.Config
	if *metacache != 0 {
		c := config.Default()
		c.Security.MetadataCacheSize = *metacache
		cfg = &c
	}

	// Build the (workload × scheme) batch, validating names up front.
	var reqs []core.Request
	var descs []*workloads.Workload
	for _, name := range strings.Split(*workload, ",") {
		name = strings.TrimSpace(name)
		w, err := workloads.Lookup(name)
		if err != nil {
			fail(2, err)
		}
		n := *ops
		if n == 0 {
			n = w.BenchOps
		}
		for _, sc := range schemes {
			reqs = append(reqs, core.Request{Workload: name, Scheme: sc, Ops: n, Seed: *seed, Cfg: cfg})
			descs = append(descs, w)
		}
	}

	var srv *obsplane.Server
	if *serve != "" {
		srv = obsplane.NewServer(obsplane.Options{
			Snapshot: core.LiveTelemetrySnapshot,
			Journal:  core.LiveJournalEvents,
			Interval: *publishInt,
		})
		addr, err := srv.Start(*serve)
		if err != nil {
			fail(1, err)
		}
		fmt.Fprintf(os.Stderr, "fsencr-sim: observability plane on http://%s (/metrics /snapshot.json /trace.json /journal.jsonl /healthz /debug/pprof)\n", addr)
	}

	results, err := core.RunBatch(reqs)
	if err != nil {
		fail(1, err)
	}
	if srv != nil {
		// One final publication so scrapers see the completed batch even if
		// it finished between ticks.
		srv.Publish()
	}

	if *journalOut != "" {
		evs := core.JournalEvents()
		if err := writeFileWith(*journalOut, func(w io.Writer) error {
			return journal.WriteJSONL(w, evs)
		}); err != nil {
			fail(1, err)
		}
	}

	if *metricsOut != "" || *traceOut != "" {
		snap := core.TelemetrySnapshot()
		if *metricsOut != "" {
			if err := writeFileWith(*metricsOut, snap.WritePrometheus); err != nil {
				fail(1, err)
			}
		}
		if *traceOut != "" {
			if err := writeFileWith(*traceOut, snap.WriteChromeTrace); err != nil {
				fail(1, err)
			}
		}
	}

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		w := descs[i]
		fmt.Printf("workload        %s (%s; %d threads; %d ops/thread)\n", res.Workload, w.Desc, w.Threads, res.Ops)
		fmt.Printf("scheme          %s\n", res.Scheme)
		fmt.Printf("cycles          %d\n", res.Cycles)
		fmt.Printf("cycles/op       %.1f\n", res.CyclesPerOp())
		fmt.Printf("nvm reads       %d\n", res.NVMReads)
		fmt.Printf("nvm writes      %d\n", res.NVMWrites)
		fmt.Printf("meta reads      %d\n", res.MetaReads)
		fmt.Printf("meta writebacks %d\n", res.MetaWritebacks)
		fmt.Printf("minor faults    %d\n", res.Faults)
		if *verbose {
			total := res.MetaHits + res.MetaMisses
			if total > 0 {
				fmt.Printf("metadata cache  %.2f%% hit (%d/%d)\n",
					100*float64(res.MetaHits)/float64(total), res.MetaHits, total)
			}
			if res.ReadLatMean > 0 {
				fmt.Printf("miss latency    mean %.1f cycles, max %d\n", res.ReadLatMean, res.ReadLatMax)
			}
		}
	}

	if srv != nil {
		if *linger {
			fmt.Fprintln(os.Stderr, "fsencr-sim: batch done; still serving (SIGINT/SIGTERM to exit)")
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			<-sig
		} else {
			// Leave one publish interval for a scraper to catch the final
			// state before the process exits.
			time.Sleep(*publishInt)
		}
		// Graceful drain: in-flight scrapes finish (bounded), and a final
		// publication captures the terminal state.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "fsencr-sim: shutdown:", err)
		}
	}
}
