// Command fsencr-chaos runs the deterministic fault-injection campaign
// against the encrypted datapath and exits nonzero if any injected fault
// escaped detection (or the machine is unhealthy afterwards).
//
// Usage:
//
//	fsencr-chaos                            # 1000 faults, all kinds, seed 1
//	fsencr-chaos -seed 42 -faults 5000      # bigger sweep, different seed
//	fsencr-chaos -campaign data,torn        # subset of fault kinds
//	fsencr-chaos -json chaos.json           # machine-readable result
//	fsencr-chaos -campaign node-crash-during-migration
//	                                        # cluster fabric: kill the
//	                                        # source/target at every
//	                                        # migration persist point
//
// The same seed reruns byte-identically, so a failing campaign is a
// reproducible bug report: re-run with the printed seed to triage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fsencr/internal/chaos"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign RNG seed (same seed, same result bytes)")
	faults := flag.Int("faults", 1000, "target number of injected faults")
	campaign := flag.String("campaign", "all",
		"fault kinds: all, comma-separated of metadata,data,torn,ott,wrap,audit,crash, or "+
			chaos.CampaignMigrationCrash)
	jsonOut := flag.String("json", "", "also write the result JSON to this file")
	flag.Parse()

	if *campaign == chaos.CampaignMigrationCrash {
		migrationCrashMain(*jsonOut)
		return
	}

	res, err := chaos.Run(chaos.Options{Seed: *seed, Faults: *faults, Campaign: *campaign})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-chaos:", err)
		os.Exit(2)
	}
	fmt.Print(res.String())
	if *jsonOut != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsencr-chaos:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0644); err != nil {
			fmt.Fprintln(os.Stderr, "fsencr-chaos:", err)
			os.Exit(2)
		}
	}
	if !res.Clean() {
		fmt.Fprintln(os.Stderr, "fsencr-chaos: UNDETECTED CORRUPTION — campaign failed")
		os.Exit(1)
	}
}

// migrationCrashMain runs the cluster-level crash campaign and exits
// nonzero on any contract violation.
func migrationCrashMain(jsonOut string) {
	res, err := chaos.RunMigrationCrash()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-chaos:", err)
		os.Exit(2)
	}
	fmt.Print(res.String())
	if jsonOut != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsencr-chaos:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0644); err != nil {
			fmt.Fprintln(os.Stderr, "fsencr-chaos:", err)
			os.Exit(2)
		}
	}
	if !res.Clean() {
		fmt.Fprintln(os.Stderr, "fsencr-chaos: MIGRATION CONTRACT VIOLATION — campaign failed")
		os.Exit(1)
	}
}
