// Command fsencr-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	fsencr-bench                    # every figure, full scale
//	fsencr-bench -fig 3             # just Figure 3
//	fsencr-bench -fig 8 -ops 500    # reduced scale
//	fsencr-bench -parallel 1        # sequential baseline (for speedup checks)
//	fsencr-bench -json BENCH_figures.json   # also dump machine-readable results
//	fsencr-bench -trace-out trace.json      # full-sweep Chrome trace
//
// As the CI bench-regression gate, -check compares `go test -bench` output
// (stdin, or a file via -current) against a committed baseline and exits
// nonzero when any benchmark slowed beyond -tolerance:
//
//	go test -run '^$' -bench . -count 3 ./internal/memctrl | \
//	    fsencr-bench -check BENCH_baseline.json -tolerance 0.15
//
// Figures: 3 (software encryption), 8-10 (PMEMKV), 11 (Whisper),
// 12-14 (synthetic microbenchmarks), 15 (metadata-cache sensitivity).
//
// The simulations behind each figure are independent and run on the
// parallel experiment runner; -parallel caps the worker count (default:
// one worker per CPU). Tables are byte-identical at any worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fsencr/internal/benchcmp"
	"fsencr/internal/core"
	"fsencr/internal/report"
	"fsencr/internal/stats"
	"fsencr/internal/telemetry"
	"fsencr/internal/workloads"
)

// chart renders a normalized-ratio bar chart with a 1.0x baseline mark.
func chart(title string, labels []string, ratios []float64) string {
	c := report.NewBarChart(title, "x")
	c.Baseline = 1
	for i, l := range labels {
		if i < len(ratios) {
			c.Add(l, ratios[i])
		}
	}
	return c.String()
}

func benchOps(name string, override int) int {
	if override > 0 {
		return override
	}
	w, err := workloads.Lookup(name)
	if err != nil {
		panic(err)
	}
	return w.BenchOps
}

// runJSON is one simulation in the -json dump, with the scheme spelled
// out (core.Result.Scheme marshals as its integer code).
type runJSON struct {
	Workload string      `json:"workload"`
	Scheme   string      `json:"scheme"`
	Result   core.Result `json:"result"`
}

// figureJSON is one figure's worth of machine-readable output: the
// normalized ratios in workload order plus every underlying run. Figure 15
// reports its per-workload slowdown series instead of ratios.
type figureJSON struct {
	Figure string               `json:"figure"`
	Labels []string             `json:"labels,omitempty"`
	Ratios []float64            `json:"ratios,omitempty"`
	Mean   float64              `json:"mean,omitempty"`
	Series map[string][]float64 `json:"series,omitempty"`
	Runs   []runJSON            `json:"runs,omitempty"`
}

// jsonReport accumulates figures for the -json flag; nil means disabled.
type jsonReport struct {
	Parallel int          `json:"parallel"`
	Figures  []figureJSON `json:"figures"`
}

func pairRuns(names []string, prs core.PairResults) []runJSON {
	out := make([]runJSON, 0, 2*len(names))
	for _, name := range names {
		pr := prs[name]
		out = append(out,
			runJSON{Workload: name, Scheme: pr[0].Scheme.String(), Result: pr[0]},
			runJSON{Workload: name, Scheme: pr[1].Scheme.String(), Result: pr[1]})
	}
	return out
}

func (r *jsonReport) addRatios(figure string, names []string, ratios []float64, prs core.PairResults) {
	if r == nil {
		return
	}
	fig := figureJSON{Figure: figure, Labels: names, Ratios: ratios, Mean: stats.Mean(ratios)}
	if prs != nil {
		fig.Runs = pairRuns(names, prs)
	}
	r.Figures = append(r.Figures, fig)
}

// runCheck is the -check mode: diff current benchmark results against the
// committed baseline and return the process exit code.
func runCheck(baselinePath, currentPath string, tolerance float64) int {
	base, err := benchcmp.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-bench:", err)
		return 2
	}
	var cur map[string]benchcmp.Entry
	if strings.HasSuffix(currentPath, ".json") {
		cur, err = benchcmp.ReadFile(currentPath)
	} else {
		in := io.Reader(os.Stdin)
		if currentPath != "" && currentPath != "-" {
			f, ferr := os.Open(currentPath)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "fsencr-bench:", ferr)
				return 2
			}
			defer f.Close()
			in = f
		}
		cur, err = benchcmp.Parse(in)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-bench:", err)
		return 2
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "fsencr-bench: no benchmark results in current input")
		return 2
	}
	rep := benchcmp.Compare(base, cur, tolerance)
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fsencr-bench:", err)
		return 2
	}
	if !rep.OK() {
		return 1
	}
	return 0
}

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure number to regenerate (0 = all)")
		ops        = flag.Int("ops", 0, "override per-thread op count (0 = full scale)")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		jsonPath   = flag.String("json", "", "also write figure ratios and per-run results to this JSON file")
		metricsDir = flag.String("metrics-dir", "", "write one merged telemetry snapshot (JSON, spans stripped) per figure into this directory")
		traceOut   = flag.String("trace-out", "", "write the whole sweep's spans as Chrome trace-event JSON to this file")

		checkPath = flag.String("check", "", "bench-regression gate: compare benchmark results against this baseline JSON and exit nonzero on regression")
		curPath   = flag.String("current", "-", "with -check: current results — '-'/plain file for `go test -bench` text, *.json for baseline-format JSON")
		tolerance = flag.Float64("tolerance", 0.15, "with -check: allowed fractional ns/op slowdown per benchmark")
	)
	flag.Parse()
	if *checkPath != "" {
		os.Exit(runCheck(*checkPath, *curPath, *tolerance))
	}
	core.Parallelism = *parallel
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0755); err != nil {
			fmt.Fprintln(os.Stderr, "fsencr-bench:", err)
			os.Exit(1)
		}
	}
	if *metricsDir != "" || *traceOut != "" {
		core.EnableTelemetry()
	}

	var rep *jsonReport
	if *jsonPath != "" {
		rep = &jsonReport{Parallel: *parallel}
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fsencr-bench:", err)
		os.Exit(1)
	}
	opsFor := func(name string) int { return benchOps(name, *ops) }

	// snapFigures drains the telemetry sink into one snapshot file per
	// named figure (figures sharing a run group share the snapshot). The
	// merged snapshot is deterministic at any -parallel, so these files
	// are byte-identical across worker counts. With -trace-out the
	// span-bearing snapshot is also retained, so the final trace covers
	// the whole sweep across the per-figure sink resets.
	var traceSnaps []*telemetry.Snapshot
	snapFigures := func(names ...string) {
		if (*metricsDir == "" && *traceOut == "") || len(names) == 0 {
			return
		}
		snap := core.TelemetrySnapshot()
		if *traceOut != "" {
			traceSnaps = append(traceSnaps, snap)
		}
		if *metricsDir != "" {
			slim := snap.WithoutSpans()
			for _, name := range names {
				path := fmt.Sprintf("%s/%s.json", *metricsDir, name)
				f, err := os.Create(path)
				if err != nil {
					fail(err)
				}
				if err := slim.WriteJSON(f); err != nil {
					f.Close()
					fail(err)
				}
				if err := f.Close(); err != nil {
					fail(err)
				}
			}
		}
		core.ResetTelemetrySink()
	}

	if want(3) {
		tb, ratios, err := core.Fig3(benchOps("ycsb", *ops))
		if err != nil {
			fail(err)
		}
		fmt.Println(tb)
		fmt.Println(chart("slowdown vs ext4-dax", core.WhisperWorkloads, ratios))
		fmt.Printf("paper: ~2.7x average, ~5x YCSB; measured: %.2fx average, %.2fx YCSB\n\n",
			stats.Mean(ratios), ratios[0])
		rep.addRatios("fig3", core.WhisperWorkloads, ratios, nil)
		snapFigures("fig3")
	}

	if want(8) || want(9) || want(10) {
		prs, err := core.RunGroupFunc(core.PMEMKVWorkloads, core.SchemeBaseline, core.SchemeFsEncr, opsFor, nil)
		if err != nil {
			fail(err)
		}
		if want(8) {
			tb, ratios := core.Fig8(prs)
			fmt.Println(tb)
			fmt.Println(chart("slowdown vs baseline", core.PMEMKVWorkloads, ratios))
			fmt.Printf("measured average slowdown: %.2f%%\n\n", (stats.Mean(ratios)-1)*100)
			rep.addRatios("fig8", core.PMEMKVWorkloads, ratios, prs)
		}
		if want(9) {
			tb, ratios := core.Fig9(prs)
			fmt.Println(tb)
			rep.addRatios("fig9", core.PMEMKVWorkloads, ratios, nil)
		}
		if want(10) {
			tb, ratios := core.Fig10(prs)
			fmt.Println(tb)
			rep.addRatios("fig10", core.PMEMKVWorkloads, ratios, nil)
		}
		// Figures 8-10 are three views of one run group, so they share
		// one snapshot.
		var names []string
		for _, n := range []int{8, 9, 10} {
			if want(n) {
				names = append(names, fmt.Sprintf("fig%d", n))
			}
		}
		snapFigures(names...)
	}

	if want(11) {
		res, err := core.Fig11(benchOps("ycsb", *ops))
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Slowdown)
		fmt.Println(chart("slowdown vs baseline", core.WhisperWorkloads, res.Ratios))
		fmt.Println(res.Writes)
		fmt.Println(res.Reads)
		fmt.Printf("paper: ~3.8%% average slowdown, 98.33%% reduction vs software encryption\n")
		fmt.Printf("measured: %.2f%% average slowdown, %.2f%% reduction\n\n",
			(stats.Mean(res.Ratios)-1)*100, res.Reduction*100)
		rep.addRatios("fig11", core.WhisperWorkloads, res.Ratios, nil)
		snapFigures("fig11")
	}

	if want(12) || want(13) || want(14) {
		prs, err := core.RunGroupFunc(core.SyntheticWorkloads, core.SchemeBaseline, core.SchemeFsEncr, opsFor, nil)
		if err != nil {
			fail(err)
		}
		if want(12) {
			tb, ratios := core.Fig12(prs)
			fmt.Println(tb)
			fmt.Println(chart("slowdown vs baseline", core.SyntheticWorkloads, ratios))
			fmt.Printf("paper: ~20.03%% average; measured: %.2f%%\n\n", (stats.Mean(ratios)-1)*100)
			rep.addRatios("fig12", core.SyntheticWorkloads, ratios, prs)
		}
		if want(13) {
			tb, ratios := core.Fig13(prs)
			fmt.Println(tb)
			rep.addRatios("fig13", core.SyntheticWorkloads, ratios, nil)
		}
		if want(14) {
			tb, ratios := core.Fig14(prs)
			fmt.Println(tb)
			rep.addRatios("fig14", core.SyntheticWorkloads, ratios, nil)
		}
		// Figures 12-14 likewise share one run group and one snapshot.
		var names []string
		for _, n := range []int{12, 13, 14} {
			if want(n) {
				names = append(names, fmt.Sprintf("fig%d", n))
			}
		}
		snapFigures(names...)
	}

	if want(15) {
		tb, series, err := core.Fig15(*ops)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb)
		if rep != nil {
			rep.Figures = append(rep.Figures, figureJSON{
				Figure: "fig15", Labels: core.Fig15Workloads, Series: series})
		}
		snapFigures("fig15")
	}

	if rep != nil {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d figures)\n", *jsonPath, len(rep.Figures))
	}

	if *traceOut != "" {
		merged := telemetry.NewSnapshot()
		for _, s := range traceSnaps {
			merged.Merge(s)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := merged.WriteChromeTrace(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d spans, %d dropped)\n", *traceOut, len(merged.Spans), merged.SpanDrops)
	}
}
