// Command fsencr-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	fsencr-bench                # every figure, full scale
//	fsencr-bench -fig 3         # just Figure 3
//	fsencr-bench -fig 8 -ops 500   # reduced scale
//
// Figures: 3 (software encryption), 8-10 (PMEMKV), 11 (Whisper),
// 12-14 (synthetic microbenchmarks), 15 (metadata-cache sensitivity).
package main

import (
	"flag"
	"fmt"
	"os"

	"fsencr/internal/core"
	"fsencr/internal/report"
	"fsencr/internal/stats"
	"fsencr/internal/workloads"
)

// chart renders a normalized-ratio bar chart with a 1.0x baseline mark.
func chart(title string, labels []string, ratios []float64) string {
	c := report.NewBarChart(title, "x")
	c.Baseline = 1
	for i, l := range labels {
		if i < len(ratios) {
			c.Add(l, ratios[i])
		}
	}
	return c.String()
}

func benchOps(name string, override int) int {
	if override > 0 {
		return override
	}
	w, err := workloads.Lookup(name)
	if err != nil {
		panic(err)
	}
	return w.BenchOps
}

func main() {
	var (
		fig = flag.Int("fig", 0, "figure number to regenerate (0 = all)")
		ops = flag.Int("ops", 0, "override per-thread op count (0 = full scale)")
	)
	flag.Parse()

	want := func(n int) bool { return *fig == 0 || *fig == n }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fsencr-bench:", err)
		os.Exit(1)
	}

	if want(3) {
		tb, ratios, err := core.Fig3(benchOps("ycsb", *ops))
		if err != nil {
			fail(err)
		}
		fmt.Println(tb)
		fmt.Println(chart("slowdown vs ext4-dax", core.WhisperWorkloads, ratios))
		fmt.Printf("paper: ~2.7x average, ~5x YCSB; measured: %.2fx average, %.2fx YCSB\n\n",
			stats.Mean(ratios), ratios[0])
	}

	if want(8) || want(9) || want(10) {
		prs := make(core.PairResults)
		for _, name := range core.PMEMKVWorkloads {
			b, t, err := core.RunPair(name, core.SchemeBaseline, core.SchemeFsEncr, benchOps(name, *ops), nil)
			if err != nil {
				fail(err)
			}
			prs[name] = [2]core.Result{b, t}
		}
		if want(8) {
			tb, ratios := core.Fig8(prs)
			fmt.Println(tb)
			fmt.Println(chart("slowdown vs baseline", core.PMEMKVWorkloads, ratios))
			fmt.Printf("measured average slowdown: %.2f%%\n\n", (stats.Mean(ratios)-1)*100)
		}
		if want(9) {
			tb, _ := core.Fig9(prs)
			fmt.Println(tb)
		}
		if want(10) {
			tb, _ := core.Fig10(prs)
			fmt.Println(tb)
		}
	}

	if want(11) {
		res, err := core.Fig11(benchOps("ycsb", *ops))
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Slowdown)
		fmt.Println(chart("slowdown vs baseline", core.WhisperWorkloads, res.Ratios))
		fmt.Println(res.Writes)
		fmt.Println(res.Reads)
		fmt.Printf("paper: ~3.8%% average slowdown, 98.33%% reduction vs software encryption\n")
		fmt.Printf("measured: %.2f%% average slowdown, %.2f%% reduction\n\n",
			(stats.Mean(res.Ratios)-1)*100, res.Reduction*100)
	}

	if want(12) || want(13) || want(14) {
		prs := make(core.PairResults)
		for _, name := range core.SyntheticWorkloads {
			b, t, err := core.RunPair(name, core.SchemeBaseline, core.SchemeFsEncr, benchOps(name, *ops), nil)
			if err != nil {
				fail(err)
			}
			prs[name] = [2]core.Result{b, t}
		}
		if want(12) {
			tb, ratios := core.Fig12(prs)
			fmt.Println(tb)
			fmt.Println(chart("slowdown vs baseline", core.SyntheticWorkloads, ratios))
			fmt.Printf("paper: ~20.03%% average; measured: %.2f%%\n\n", (stats.Mean(ratios)-1)*100)
		}
		if want(13) {
			tb, _ := core.Fig13(prs)
			fmt.Println(tb)
		}
		if want(14) {
			tb, _ := core.Fig14(prs)
			fmt.Println(tb)
		}
	}

	if want(15) {
		tb, _, err := core.Fig15(*ops)
		if err != nil {
			fail(err)
		}
		fmt.Println(tb)
	}
}
