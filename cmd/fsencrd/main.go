// Command fsencrd serves the simulated encrypted DAX filesystem to many
// concurrent network clients, multiplexed onto a pool of sharded
// simulated machines (one kernel.System per shard, tenant -> shard by
// GroupID hash).
//
// Usage:
//
//	fsencrd serve -addr :9144 -shards 4 -scheme fsencr
//	fsencrd serve -addr :9144 -shards 4 -det          # deterministic admission
//	fsencrd loadgen -addr http://127.0.0.1:9144 -clients 64 -tenants 4 -mix 3:1
//
// Cluster mode (the multi-node shard fabric, see internal/cluster):
//
//	fsencrd coordinator -addr :9100 -shards 4 -check-every 2s
//	fsencrd serve -addr :9144 -join http://127.0.0.1:9100               # first node: owns all shards
//	fsencrd serve -addr :9145 -join http://127.0.0.1:9100 -empty        # joiner: receives shards by migration
//	fsencrd migrate   -coordinator http://127.0.0.1:9100 -shard 2 -to http://127.0.0.1:9145
//	fsencrd replicate -coordinator http://127.0.0.1:9100 -shard 2 -on http://127.0.0.1:9145
//
// The serve mode exposes the /v1 file+KV API (see internal/fsproto), the
// per-shard determinism surfaces /shards.prom and /shards.json, and the
// live observability plane (/metrics /snapshot.json /trace.json
// /journal.jsonl /healthz /debug/pprof). SIGINT/SIGTERM triggers a
// graceful drain: admission stops, admitted requests finish, the HTTP
// listener closes.
//
// The loadgen mode drives a running server with N concurrent clients
// spread over M tenants, mixing reads and writes plus periodic
// cross-tenant probes that the kernel must deny, and exits nonzero on any
// isolation leak or unexpected error. With -malice it instead runs the
// malicious-client campaign (forged/replayed tokens, cross-tenant
// overrides, oversized and forged requests) and exits nonzero if any
// attack is not refused with its documented error code.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fsencr/internal/cluster"
	"fsencr/internal/core"
	"fsencr/internal/fsclient"
	"fsencr/internal/fsproto"
	"fsencr/internal/server"
)

func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "fsencrd:", err)
	os.Exit(code)
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "plain", "ext4-dax":
		return core.SchemePlain, nil
	case "baseline":
		return core.SchemeBaseline, nil
	case "fsencr":
		return core.SchemeFsEncr, nil
	case "swencr", "ecryptfs":
		return core.SchemeSWEncr, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (plain|baseline|fsencr|swencr)", s)
}

func serveMain(args []string) {
	fl := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fl.String("addr", ":9144", "listen address")
		shards    = fl.Int("shards", 4, "number of simulated machines")
		scheme    = fl.String("scheme", "fsencr", "protection scheme: plain|baseline|fsencr|swencr")
		det       = fl.Bool("det", false, "deterministic admission (requests carry schedule sequence numbers)")
		serialRd  = fl.Bool("serial-reads", false, "disable the concurrent read fast-path (serialized A/B baseline)")
		perTenant = fl.Int("per-tenant-queue", server.DefaultPerTenantQueue, "per-tenant admitted-request bound (backpressure)")
		timeout   = fl.Duration("timeout", server.DefaultRequestTimeout, "per-request queue+execute bound")
		drain     = fl.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
		join      = fl.String("join", "", "coordinator URL to join — enables the cluster fabric and the admission log")
		advertise = fl.String("advertise", "", "base URL peers reach this node at (default http://127.0.0.1:<port>)")
		empty     = fl.Bool("empty", false, "with -join: boot owning no shards (receive them by migration)")
	)
	fl.Parse(args)
	sc, err := parseScheme(*scheme)
	if err != nil {
		fail(2, err)
	}

	opts := server.Options{
		Shards:         *shards,
		MCMode:         sc.MCMode(),
		Access:         sc.AccessMode(),
		Deterministic:  *det,
		SerialReads:    *serialRd,
		PerTenantQueue: *perTenant,
		RequestTimeout: *timeout,
	}
	base := *advertise
	if *join != "" {
		if base == "" {
			port := *addr
			if i := strings.LastIndex(port, ":"); i >= 0 {
				port = port[i:]
			}
			base = "http://127.0.0.1" + port
		}
		// Fabric members share the chip-sequence plan (replay must
		// reproduce ciphertext) and mint distinct token namespaces (tokens
		// travel with migrated shards).
		h := fnv.New32a()
		h.Write([]byte(base))
		opts.AdmissionLog = true
		opts.ChipSeqBase = server.DefaultChipSeqBase
		opts.TokenPrefix = fmt.Sprintf("n%08x-", h.Sum32())
		if *empty {
			opts.OwnedShards = []int{}
		}
	}
	svc := server.New(opts)
	var node *cluster.Node
	handler := http.Handler(svc.Mux())
	if *join != "" {
		node = cluster.NewNode(svc)
		node.SetBase(base)
		handler = node.Mux()
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fsencrd: serving %d shards (%s%s) on %s\n",
		*shards, sc, map[bool]string{true: ", deterministic", false: ""}[*det], *addr)
	if *join != "" {
		var tbl fsproto.ClusterTable
		if err := postCtl(*join+"/cluster/join", map[string]any{"node": base, "empty": *empty}, &tbl); err != nil {
			fail(1, fmt.Errorf("join %s: %w", *join, err))
		}
		fmt.Fprintf(os.Stderr, "fsencrd: joined %s as %s (table epoch %d)\n", *join, base, tbl.Epoch)
	}

	select {
	case err := <-errc:
		fail(1, err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fsencrd: draining...")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "fsencrd: shutdown:", err)
	}
	if node != nil {
		node.Close()
	} else {
		svc.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(1, err)
	}
	fmt.Fprintln(os.Stderr, "fsencrd: drained")
}

func loadgenMain(args []string) {
	fl := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr    = fl.String("addr", "http://127.0.0.1:9144", "server base URL")
		clients = fl.Int("clients", 8, "concurrent client sessions")
		tenants = fl.Int("tenants", 2, "distinct tenants (clients spread round-robin)")
		ops     = fl.Int("ops", 64, "data operations per client")
		mix     = fl.String("mix", "read:write", "read:write weights, e.g. 3:1 (read:write = 1:1)")
		seed    = fl.Uint64("seed", 1, "operation schedule seed")
		det     = fl.Bool("det", false, "assign schedule sequence numbers (server must run -det)")
		shards  = fl.Int("shards", 4, "with -det: the server's shard count")
		cross   = fl.Int("cross-every", 8, "every Nth op probes another tenant's file (0 disables)")
		statEv  = fl.Int("stat-every", 0, "every Nth op stats the client's own file (0 disables)")
		malice  = fl.Bool("malice", false, "run the malicious-client attack campaign instead of the load mix")
		asJSON  = fl.Bool("json", false, "emit the report as JSON instead of text")
		coord   = fl.String("coordinator", "", "route clients through this coordinator's placement table (cluster mode; incompatible with -det)")
	)
	fl.Parse(args)
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if *malice {
		rep, err := fsclient.RunMalice(base)
		if err != nil {
			fail(1, err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fail(1, err)
			}
		} else {
			fmt.Print(rep)
		}
		if !rep.Clean() {
			fail(3, fmt.Errorf("%d attacks got through, %d leaks", rep.Failed, rep.Leaks))
		}
		return
	}
	rep, err := fsclient.RunLoadgen(base, fsclient.LoadgenOptions{
		Clients:       *clients,
		Tenants:       *tenants,
		Ops:           *ops,
		Mix:           *mix,
		Seed:          *seed,
		Deterministic: *det,
		Shards:        *shards,
		CrossEvery:    *cross,
		StatEvery:     *statEv,
		Coordinator:   *coord,
	})
	if err != nil {
		fail(1, err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(1, err)
		}
	} else {
		fmt.Println(rep)
	}
	if rep.Leaks > 0 {
		fail(3, fmt.Errorf("%d cross-tenant leaks", rep.Leaks))
	}
	if rep.Errors > 0 {
		fail(1, fmt.Errorf("%d unexpected errors (first: %s)", rep.Errors, rep.FirstError))
	}
}

// postCtl posts v as JSON to a control-plane URL and decodes a 200
// response into out (nil discards it).
func postCtl(url string, v, out any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	hc := &http.Client{Timeout: 60 * time.Second}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// printTable renders a placement table for the operator.
func printTable(t fsproto.ClusterTable) {
	fmt.Printf("cluster table epoch %d (%d shards)\n", t.Epoch, t.NShards)
	for _, p := range t.Placements {
		if p.Node == "" {
			fmt.Printf("  shard %d: unplaced\n", p.Shard)
			continue
		}
		fmt.Printf("  shard %d: %s (epoch %d)", p.Shard, p.Node, p.Epoch)
		if len(p.Replicas) > 0 {
			fmt.Printf(" replicas %s", strings.Join(p.Replicas, ","))
		}
		fmt.Println()
	}
}

func coordinatorMain(args []string) {
	fl := flag.NewFlagSet("coordinator", flag.ExitOnError)
	var (
		addr   = fl.String("addr", ":9100", "listen address")
		shards = fl.Int("shards", 4, "global shard count (every member must serve with the same -shards)")
		check  = fl.Duration("check-every", 0, "owner health sweep interval; dead owners with replicas fail over (0 disables)")
	)
	fl.Parse(args)
	coord := cluster.NewCoordinator(*shards)
	hs := &http.Server{Addr: *addr, Handler: coord.Mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *check > 0 {
		go func() {
			tick := time.NewTicker(*check)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					for _, s := range coord.CheckOwners() {
						fmt.Fprintf(os.Stderr, "fsencrd: shard %d failed over\n", s)
					}
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fsencrd: coordinating %d shards on %s\n", *shards, *addr)
	select {
	case err := <-errc:
		fail(1, err)
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(sctx)
}

func migrateMain(args []string) {
	fl := flag.NewFlagSet("migrate", flag.ExitOnError)
	var (
		coord = fl.String("coordinator", "http://127.0.0.1:9100", "coordinator URL")
		shard = fl.Int("shard", -1, "global shard index to migrate")
		to    = fl.String("to", "", "target node base URL")
	)
	fl.Parse(args)
	if *shard < 0 || *to == "" {
		fail(2, errors.New("migrate needs -shard and -to"))
	}
	var tbl fsproto.ClusterTable
	if err := postCtl(*coord+"/cluster/migrate", map[string]any{"shard": *shard, "to": *to}, &tbl); err != nil {
		fail(1, err)
	}
	printTable(tbl)
}

func replicateMain(args []string) {
	fl := flag.NewFlagSet("replicate", flag.ExitOnError)
	var (
		coord = fl.String("coordinator", "http://127.0.0.1:9100", "coordinator URL")
		shard = fl.Int("shard", -1, "global shard index to replicate")
		on    = fl.String("on", "", "replica node base URL")
	)
	fl.Parse(args)
	if *shard < 0 || *on == "" {
		fail(2, errors.New("replicate needs -shard and -on"))
	}
	var tbl fsproto.ClusterTable
	if err := postCtl(*coord+"/cluster/replicate", map[string]any{"shard": *shard, "on": *on}, &tbl); err != nil {
		fail(1, err)
	}
	printTable(tbl)
}

func main() {
	if len(os.Args) < 2 {
		fail(2, errors.New("usage: fsencrd serve|loadgen|coordinator|migrate|replicate [flags]"))
	}
	switch os.Args[1] {
	case "serve":
		serveMain(os.Args[2:])
	case "loadgen":
		loadgenMain(os.Args[2:])
	case "coordinator":
		coordinatorMain(os.Args[2:])
	case "migrate":
		migrateMain(os.Args[2:])
	case "replicate":
		replicateMain(os.Args[2:])
	default:
		fail(2, fmt.Errorf("unknown subcommand %q (serve|loadgen|coordinator|migrate|replicate)", os.Args[1]))
	}
}
