// Command fsencrd serves the simulated encrypted DAX filesystem to many
// concurrent network clients, multiplexed onto a pool of sharded
// simulated machines (one kernel.System per shard, tenant -> shard by
// GroupID hash).
//
// Usage:
//
//	fsencrd serve -addr :9144 -shards 4 -scheme fsencr
//	fsencrd serve -addr :9144 -shards 4 -det          # deterministic admission
//	fsencrd loadgen -addr http://127.0.0.1:9144 -clients 64 -tenants 4 -mix 3:1
//
// The serve mode exposes the /v1 file+KV API (see internal/fsproto), the
// per-shard determinism surfaces /shards.prom and /shards.json, and the
// live observability plane (/metrics /snapshot.json /trace.json
// /journal.jsonl /healthz /debug/pprof). SIGINT/SIGTERM triggers a
// graceful drain: admission stops, admitted requests finish, the HTTP
// listener closes.
//
// The loadgen mode drives a running server with N concurrent clients
// spread over M tenants, mixing reads and writes plus periodic
// cross-tenant probes that the kernel must deny, and exits nonzero on any
// isolation leak or unexpected error. With -malice it instead runs the
// malicious-client campaign (forged/replayed tokens, cross-tenant
// overrides, oversized and forged requests) and exits nonzero if any
// attack is not refused with its documented error code.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fsencr/internal/core"
	"fsencr/internal/fsclient"
	"fsencr/internal/server"
)

func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "fsencrd:", err)
	os.Exit(code)
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "plain", "ext4-dax":
		return core.SchemePlain, nil
	case "baseline":
		return core.SchemeBaseline, nil
	case "fsencr":
		return core.SchemeFsEncr, nil
	case "swencr", "ecryptfs":
		return core.SchemeSWEncr, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (plain|baseline|fsencr|swencr)", s)
}

func serveMain(args []string) {
	fl := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fl.String("addr", ":9144", "listen address")
		shards    = fl.Int("shards", 4, "number of simulated machines")
		scheme    = fl.String("scheme", "fsencr", "protection scheme: plain|baseline|fsencr|swencr")
		det       = fl.Bool("det", false, "deterministic admission (requests carry schedule sequence numbers)")
		perTenant = fl.Int("per-tenant-queue", server.DefaultPerTenantQueue, "per-tenant admitted-request bound (backpressure)")
		timeout   = fl.Duration("timeout", server.DefaultRequestTimeout, "per-request queue+execute bound")
		drain     = fl.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	)
	fl.Parse(args)
	sc, err := parseScheme(*scheme)
	if err != nil {
		fail(2, err)
	}

	svc := server.New(server.Options{
		Shards:         *shards,
		MCMode:         sc.MCMode(),
		Access:         sc.AccessMode(),
		Deterministic:  *det,
		PerTenantQueue: *perTenant,
		RequestTimeout: *timeout,
	})
	hs := &http.Server{Addr: *addr, Handler: svc.Mux()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fsencrd: serving %d shards (%s%s) on %s\n",
		*shards, sc, map[bool]string{true: ", deterministic", false: ""}[*det], *addr)

	select {
	case err := <-errc:
		fail(1, err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fsencrd: draining...")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "fsencrd: shutdown:", err)
	}
	svc.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(1, err)
	}
	fmt.Fprintln(os.Stderr, "fsencrd: drained")
}

func loadgenMain(args []string) {
	fl := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr    = fl.String("addr", "http://127.0.0.1:9144", "server base URL")
		clients = fl.Int("clients", 8, "concurrent client sessions")
		tenants = fl.Int("tenants", 2, "distinct tenants (clients spread round-robin)")
		ops     = fl.Int("ops", 64, "data operations per client")
		mix     = fl.String("mix", "read:write", "read:write weights, e.g. 3:1 (read:write = 1:1)")
		seed    = fl.Uint64("seed", 1, "operation schedule seed")
		det     = fl.Bool("det", false, "assign schedule sequence numbers (server must run -det)")
		shards  = fl.Int("shards", 4, "with -det: the server's shard count")
		cross   = fl.Int("cross-every", 8, "every Nth op probes another tenant's file (0 disables)")
		malice  = fl.Bool("malice", false, "run the malicious-client attack campaign instead of the load mix")
		asJSON  = fl.Bool("json", false, "emit the report as JSON instead of text")
	)
	fl.Parse(args)
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if *malice {
		rep, err := fsclient.RunMalice(base)
		if err != nil {
			fail(1, err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fail(1, err)
			}
		} else {
			fmt.Print(rep)
		}
		if !rep.Clean() {
			fail(3, fmt.Errorf("%d attacks got through, %d leaks", rep.Failed, rep.Leaks))
		}
		return
	}
	rep, err := fsclient.RunLoadgen(base, fsclient.LoadgenOptions{
		Clients:       *clients,
		Tenants:       *tenants,
		Ops:           *ops,
		Mix:           *mix,
		Seed:          *seed,
		Deterministic: *det,
		Shards:        *shards,
		CrossEvery:    *cross,
	})
	if err != nil {
		fail(1, err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(1, err)
		}
	} else {
		fmt.Println(rep)
	}
	if rep.Leaks > 0 {
		fail(3, fmt.Errorf("%d cross-tenant leaks", rep.Leaks))
	}
	if rep.Errors > 0 {
		fail(1, fmt.Errorf("%d unexpected errors (first: %s)", rep.Errors, rep.FirstError))
	}
}

func main() {
	if len(os.Args) < 2 {
		fail(2, errors.New("usage: fsencrd serve|loadgen [flags]"))
	}
	switch os.Args[1] {
	case "serve":
		serveMain(os.Args[2:])
	case "loadgen":
		loadgenMain(os.Args[2:])
	default:
		fail(2, fmt.Errorf("unknown subcommand %q (serve|loadgen)", os.Args[1]))
	}
}
