// Command fsencr-trace records memory-access traces from Table II workloads
// and replays them against machines in any protection mode — the standard
// trace-driven simulation workflow.
//
// Usage:
//
//	fsencr-trace record -workload ycsb -ops 1000 -o ycsb.trace
//	fsencr-trace info   -i ycsb.trace
//	fsencr-trace replay -i ycsb.trace -scheme baseline
//	fsencr-trace replay -i ycsb.trace -scheme fsencr
package main

import (
	"flag"
	"fmt"
	"os"

	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/kernel"
	"fsencr/internal/machine"
	"fsencr/internal/memctrl"
	"fsencr/internal/trace"
	"fsencr/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fsencr-trace record|info|replay [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsencr-trace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "hashmap", "Table II workload to record")
	ops := fs.Int("ops", 1000, "operations per thread")
	seed := fs.Uint64("seed", 1, "workload RNG seed")
	out := fs.String("o", "out.trace", "output trace file")
	fs.Parse(args)

	w, err := workloads.Lookup(*workload)
	if err != nil {
		fatal(err)
	}
	sys := kernel.Boot(config.Default(), core.SchemeFsEncr.MCMode(), kernel.ModeDAX)
	env := workloads.NewEnv(sys, w.Threads, *ops, true, *seed)
	if err := w.Setup(env); err != nil {
		fatal(err)
	}
	rec := &trace.Recorder{}
	sys.M.SetTracer(rec) // measured phase only
	if err := w.Run(env); err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, rec.Events); err != nil {
		fatal(err)
	}
	s := trace.Summarize(rec.Events)
	fmt.Printf("recorded %d events (%d reads, %d writes, %d flushes) from %s to %s\n",
		s.Events, s.Reads, s.Writes, s.Flushes, *workload, *out)
}

func load(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return events
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "out.trace", "input trace file")
	fs.Parse(args)
	s := trace.Summarize(load(*in))
	fmt.Printf("events        %d\n", s.Events)
	fmt.Printf("reads         %d (%d bytes)\n", s.Reads, s.BytesRead)
	fmt.Printf("writes        %d (%d bytes)\n", s.Writes, s.BytesWrite)
	fmt.Printf("flushes       %d\n", s.Flushes)
	fmt.Printf("fences        %d\n", s.Fences)
	fmt.Printf("cores         %d\n", s.Cores)
	fmt.Printf("unique pages  %d\n", s.UniquePages)
	fmt.Printf("DF accesses   %d\n", s.DFAccesses)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "out.trace", "input trace file")
	scheme := fs.String("scheme", "fsencr", "plain|baseline|fsencr")
	fs.Parse(args)

	var mode memctrl.Mode
	switch *scheme {
	case "plain":
	case "baseline":
		mode = memctrl.Mode{MemEncryption: true}
	case "fsencr":
		mode = memctrl.Mode{MemEncryption: true, FileEncryption: true}
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}

	events := load(*in)
	m := machine.New(config.Default(), mode)
	trace.Prepare(m, events)
	cycles, err := trace.Replay(m, events)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d events under %s\n", len(events), *scheme)
	fmt.Printf("cycles     %d\n", cycles)
	fmt.Printf("nvm reads  %d\n", m.MC.PCM.Reads())
	fmt.Printf("nvm writes %d\n", m.MC.PCM.Writes())
}
