# CI entry points. `make ci` is what a pipeline should run; the race
# target matters since the parallel experiment runner introduced real
# concurrency (worker pools executing independent simulations).

GO ?= go

.PHONY: build test race vet bench bench-json bench-check overhead-guard smoke smoke-race read-smoke read-smoke-race malice-race slo-smoke chaos chaos-ci migration-chaos cluster-smoke cluster-smoke-race ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race: smoke-race
	$(GO) test -race ./...

# fsencrd end-to-end smoke: boot the multi-tenant file service, drive it
# over real HTTP with 8 loadgen clients across 2 tenants, and assert zero
# cross-tenant leaks, ciphertext-only insider dumps, byte-identical
# per-shard telemetry across reruns, and a clean goroutine-free drain.
smoke:
	$(GO) test -run 'TestFsencrdSmoke' -v ./internal/server

smoke-race:
	$(GO) test -race -run 'TestFsencrdSmoke' -v ./internal/server

# Concurrent-read smoke: a fair-mode fsencrd under a read-heavy mixed load
# (reads, writes, stats, cross-tenant probes) over real HTTP — zero lost
# ops, zero leaks, the snapshot fast-path actually serving traffic, the
# per-tenant latency split populated, and the audit chain verifying after
# the deferred read deltas drain. The equivalence/gating/fan-out tests of
# the fast path ride along.
read-smoke:
	$(GO) test -run 'TestReadSmoke|TestConcurrentReadEquivalence|TestFastReadFanned|TestFastReadGating|TestSerialReadsEquivalence|TestStatOps|TestBusyQueueDepthHeader' -v ./internal/server

read-smoke-race:
	$(GO) test -race -run 'TestReadSmoke|TestConcurrentReadEquivalence' -v ./internal/server

# Malicious-client smoke under the race detector: forged/replayed tokens,
# cross-tenant overrides, oversized/forged requests — every attack refused
# with its documented code, zero plaintext leaked, and the hostile traffic
# doubles as a race probe of the admission path.
malice-race:
	$(GO) test -race -run 'TestMaliciousClientSmoke' -v ./internal/server

# SLO-plane smoke: loadgen over real HTTP must leave every tenant with live
# latency quantiles (p50/p99/p999), burn-rate gauges, queue-wait histograms
# and a fully-accounted trace tail sampler on /snapshot.json; the request
# trace waterfall and X-Request-Id propagation tests ride along.
slo-smoke:
	$(GO) test -run 'TestSLOSmoke|TestRequestTraceWaterfall|TestRequestIDHeader|TestErrorTracesAlwaysKept' -v ./internal/server

# Full chaos campaign: >= 1000 seeded faults injected across the encrypted
# datapath (counter blocks, data lines, torn writes, OTT region, audit
# log, counter wrap, crash-at-every-persist-point), 100% detection
# required; exits nonzero on any undetected corruption. Deterministic:
# rerunning the same seed reproduces the campaign byte-for-byte.
chaos:
	$(GO) run ./cmd/fsencr-chaos -seed 1 -faults 1000

# Bounded chaos campaign for the CI gate (same kinds, smaller budget).
chaos-ci:
	$(GO) run ./cmd/fsencr-chaos -seed 1 -faults 150

# Cluster fault campaign: kill the migration source or target at every
# persist point of a live shard migration; every crash point must either
# complete or roll back cleanly — one live owner, no lost acknowledged
# data, no split-brain epoch.
migration-chaos:
	$(GO) run ./cmd/fsencr-chaos -campaign node-crash-during-migration

# Cluster-smoke: the in-process 3-node fabric — concurrent cluster-routed
# load across a live shard migration (zero lost or duplicated ops, stale
# owners forward or 421), a >= 10k-op admission log replayed onto two
# replicas with zero divergence, and a replica failover after the owner
# dies with every acknowledged write intact. The migration-crash campaign
# rides along.
cluster-smoke:
	$(GO) test -run 'TestJoinPlacesFirstNode|TestMigrationUnderLoad|TestReplicationAndFailover|TestReplicaTenKOps' -count 1 -v ./internal/cluster
	$(GO) test -run 'TestMigrationCrashCampaign' -count 1 -v ./internal/chaos

cluster-smoke-race:
	$(GO) test -race -run 'TestJoinPlacesFirstNode|TestMigrationUnderLoad|TestReplicationAndFailover|TestReplicaTenKOps' -count 1 ./internal/cluster
	$(GO) test -race -run 'TestMigrationCrashCampaign' -count 1 ./internal/chaos

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks (datapath + Merkle write-back + crypto engine +
# kvstore), one iteration batch each — enough for before/after comparisons
# of the fast-path.
bench:
	$(GO) test -run '^$$' -bench 'ReadLine|WriteLine|ReadPage|WritePage' ./internal/memctrl
	$(GO) test -run '^$$' -bench 'MerkleUpdate|MerkleFlush' ./internal/merkle
	$(GO) test -run '^$$' -bench . ./internal/aesctr
	$(GO) test -run '^$$' -bench 'Put|Get' ./internal/kvstore
	$(GO) test -run '^$$' -bench 'ServerReadPath|ServerParallelRead' ./internal/server

# Machine-readable perf baseline: the same hot-path benchmarks, folded
# into BENCH_baseline.json as {"pkg.Benchmark": {iterations, ns_per_op}}
# so later PRs can diff ns/op against this commit.
bench-json:
	@{ \
	  $(GO) test -run '^$$' -bench 'ReadLine|WriteLine|ReadPage|WritePage' ./internal/memctrl ; \
	  $(GO) test -run '^$$' -bench 'MerkleUpdate|MerkleFlush' ./internal/merkle ; \
	  $(GO) test -run '^$$' -bench . ./internal/aesctr ; \
	  $(GO) test -run '^$$' -bench 'Put|Get' ./internal/kvstore ; \
	  $(GO) test -run '^$$' -bench 'ServerReadPath|ServerParallelRead' ./internal/server ; \
	} | awk ' \
	  /^pkg:/ { pkg = $$2 } \
	  /^Benchmark/ { \
	    name = $$1; sub(/-[0-9]+$$/, "", name); \
	    if (!first) first = 1; else printf(",\n"); \
	    printf("  \"%s.%s\": {\"iterations\": %s, \"ns_per_op\": %s}", pkg, name, $$2, $$3); \
	  } \
	  END { print "" } \
	' | { echo '{'; cat; echo '}'; } > BENCH_baseline.json
	@cat BENCH_baseline.json

# Bench-regression gate: rerun the hot-path benchmarks (3 repeats each;
# the comparator keeps the fastest, discarding scheduler noise) and fail
# if any ns/op regressed more than 15% against the committed baseline, or
# if a baseline benchmark disappeared.
bench-check:
	@{ \
	  $(GO) test -run '^$$' -bench 'ReadLine|WriteLine|ReadPage|WritePage' -count 3 ./internal/memctrl ; \
	  $(GO) test -run '^$$' -bench 'MerkleUpdate|MerkleFlush' -count 3 ./internal/merkle ; \
	  $(GO) test -run '^$$' -bench . -count 3 ./internal/aesctr ; \
	  $(GO) test -run '^$$' -bench 'Put|Get' -count 3 ./internal/kvstore ; \
	  $(GO) test -run '^$$' -bench 'ServerReadPath|ServerParallelRead' -count 3 ./internal/server ; \
	} | $(GO) run ./cmd/fsencr-bench -check BENCH_baseline.json -tolerance 0.15

# Telemetry-overhead gate: with no registry attached (the no-op recorder)
# the telemetry hooks on ReadLine/WriteLine must stay under 3% of the
# op's ns/op. TestWriteLineGapGuard rides along: it pins the
# WriteLine/ReadLine ns/op ratio so eager per-write Merkle propagation
# cannot silently return. TestPageGapGuard pins the batched page path at
# no worse than half the host cost of 64 WriteLine calls, so the
# one-fetch/one-key-schedule batching cannot silently degenerate back to
# per-line work. TestAuditOverheadGuard pins the audit plane's disabled
# cost: with auditing off, the page datapath's detached Append hooks must
# stay under 3% of ReadPage/WritePage. TestTraceOverheadGuard pins the
# request-trace plane the same way: with no trace active (scope nil or
# idle), a page op's worth of Active() gates must stay under 3% of
# ReadPage/WritePage. See internal/memctrl/overhead_guard_test.go.
# TestReadScalingGuard is the concurrent-read gate: on >= 4-core hosts,
# 8 readers on one shard must sustain >= 2x single-reader throughput
# through the snapshot fast-path (skipped on smaller hosts).
overhead-guard:
	FSENCR_OVERHEAD_GUARD=1 $(GO) test -run 'TestTelemetryOverheadGuard|TestWriteLineGapGuard|TestPageGapGuard|TestAuditOverheadGuard|TestTraceOverheadGuard' -v ./internal/memctrl
	FSENCR_OVERHEAD_GUARD=1 $(GO) test -run 'TestReadScalingGuard' -v ./internal/server

ci: build vet test smoke race read-smoke read-smoke-race malice-race slo-smoke chaos-ci cluster-smoke cluster-smoke-race migration-chaos overhead-guard bench-check
