# CI entry points. `make ci` is what a pipeline should run; the race
# target matters since the parallel experiment runner introduced real
# concurrency (worker pools executing independent simulations).

GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks (datapath + crypto engine), one iteration batch
# each — enough for before/after comparisons of the fast-path.
bench:
	$(GO) test -run '^$$' -bench 'ReadLine|WriteLine' ./internal/memctrl
	$(GO) test -run '^$$' -bench . ./internal/aesctr

ci: build vet test race
