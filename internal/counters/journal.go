package counters

import "fsencr/internal/obsplane/journal"

// Counter domains for journal events.
const (
	DomainMem  = "mem"
	DomainFile = "file"
)

// JournalBump records the security-journal events implied by a counter
// bump: a minor-counter overflow (which forces a whole-page re-encryption)
// and, in the extreme, a major-counter wrap (which for file counters
// demands a key rotation, §VI). Quiet bumps emit nothing, so the journal
// only carries the transitions the paper reasons about.
func JournalBump(j *journal.Journal, cycle, page uint64, domain string, r BumpResult) {
	if j == nil || !r.Overflowed {
		return
	}
	j.Emit(journal.Event{Cycle: cycle, Type: journal.CounterOverflow, Page: page, Detail: domain})
	if r.MajorWrapped {
		j.Emit(journal.Event{Cycle: cycle, Type: journal.CounterMajorWrap, Page: page, Detail: domain})
	}
}
