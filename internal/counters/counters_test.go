package counters

import (
	"testing"
	"testing/quick"

	"fsencr/internal/config"
)

func TestMECBEncodeDecodeRoundtrip(t *testing.T) {
	f := func(major uint64, minors [config.LinesPerPage]uint8) bool {
		m := MECB{Major: major}
		for i := range minors {
			m.Minor[i] = minors[i] & config.MinorCounterMax
		}
		got := DecodeMECB(m.Encode())
		return got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFECBEncodeDecodeRoundtrip(t *testing.T) {
	f := func(group uint32, file uint16, major uint32, minors [config.LinesPerPage]uint8) bool {
		fe := FECB{GroupID: group & MaxGroupID, FileID: file & MaxFileID, Major: major}
		for i := range minors {
			fe.Minor[i] = minors[i] & config.MinorCounterMax
		}
		b, err := fe.Encode()
		if err != nil {
			return false
		}
		return DecodeFECB(b) == fe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFECBEncodeRejectsOversizeIDs(t *testing.T) {
	f := FECB{GroupID: MaxGroupID + 1}
	if _, err := f.Encode(); err == nil {
		t.Fatal("19-bit group accepted")
	}
	f = FECB{FileID: MaxFileID + 1}
	if _, err := f.Encode(); err == nil {
		t.Fatal("15-bit file ID accepted")
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncode did not panic on bad IDs")
		}
	}()
	f := FECB{GroupID: MaxGroupID + 1}
	f.MustEncode()
}

func TestMECBBump(t *testing.T) {
	var m MECB
	for i := 0; i < config.MinorCounterMax; i++ {
		if r := m.Bump(5); r.Overflowed {
			t.Fatalf("premature overflow at %d", i)
		}
	}
	if m.Minor[5] != config.MinorCounterMax {
		t.Fatalf("minor = %d", m.Minor[5])
	}
	r := m.Bump(5)
	if !r.Overflowed {
		t.Fatal("no overflow at 127->128")
	}
	if m.Major != 1 {
		t.Fatalf("major = %d", m.Major)
	}
	if m.Minor[5] != 1 {
		t.Fatalf("bumped minor after overflow = %d", m.Minor[5])
	}
	for i, v := range m.Minor {
		if i != 5 && v != 0 {
			t.Fatalf("minor %d not reset: %d", i, v)
		}
	}
}

func TestFECBBumpOverflow(t *testing.T) {
	var f FECB
	f.Minor[0] = config.MinorCounterMax
	r := f.Bump(0)
	if !r.Overflowed || f.Major != 1 || f.Minor[0] != 1 {
		t.Fatalf("overflow handling wrong: %+v major=%d minor=%d", r, f.Major, f.Minor[0])
	}
}

func TestFECBMajorWrap(t *testing.T) {
	f := FECB{Major: ^uint32(0)}
	f.Minor[3] = config.MinorCounterMax
	r := f.Bump(3)
	if !r.MajorWrapped {
		t.Fatal("major wrap not reported (key rotation trigger)")
	}
}

func TestFECBReset(t *testing.T) {
	f := FECB{GroupID: 5, FileID: 6, Major: 7}
	f.Minor[0] = 9
	f.Reset()
	if f.GroupID != 0 || f.FileID != 0 || f.Major != 0 || f.Minor[0] != 0 {
		t.Fatalf("reset incomplete: %+v", f)
	}
}

func TestBlockSize(t *testing.T) {
	var m MECB
	if len(m.Encode()) != config.LineSize {
		t.Fatal("MECB not one cache line")
	}
	var f FECB
	if len(f.MustEncode()) != config.LineSize {
		t.Fatal("FECB not one cache line")
	}
}

func TestDistinctBlocksEncodeDistinctly(t *testing.T) {
	a := MECB{Major: 1}
	b := MECB{Major: 2}
	if a.Encode() == b.Encode() {
		t.Fatal("distinct majors encode identically")
	}
	fa := FECB{GroupID: 1}
	fb := FECB{FileID: 1}
	if fa.MustEncode() == fb.MustEncode() {
		t.Fatal("group and file IDs aliased in encoding")
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	m := MECB{Major: 77}
	m.Minor[0] = 3
	m.Minor[63] = 127
	var mb Block
	m.EncodeInto(&mb)
	if mb != m.Encode() {
		t.Fatal("MECB.EncodeInto differs from Encode")
	}
	f := FECB{GroupID: 5, FileID: 9, Major: 123}
	f.Minor[17] = 64
	var fb Block
	f.MustEncodeInto(&fb)
	if fb != f.MustEncode() {
		t.Fatal("FECB.MustEncodeInto differs from MustEncode")
	}
	// The scratch form overwrites every byte it owns: encoding a second,
	// smaller block into the same buffer must not leak earlier state.
	g := FECB{}
	g.MustEncodeInto(&fb)
	if fb != g.MustEncode() {
		t.Fatal("stale bytes leaked through a reused scratch block")
	}
}

func TestEncodeIntoRejectsOversizeIDs(t *testing.T) {
	f := FECB{GroupID: MaxGroupID + 1}
	var b Block
	if err := f.EncodeInto(&b); err == nil {
		t.Fatal("oversize group ID encoded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncodeInto did not panic on oversize ID")
		}
	}()
	f.MustEncodeInto(&b)
}
