// Package counters implements the split-counter security metadata of the
// paper (§III-D and Figure 6):
//
//   - MECB (Memory Encryption Counter Block): one 64-bit major counter and
//     64 seven-bit minor counters, covering one 4 KB page; one 64-byte line.
//   - FECB (File Encryption Counter Block): an 18-bit Group ID, a 14-bit
//     File ID, a 32-bit major counter, and 64 seven-bit minor counters;
//     also exactly one 64-byte line.
//
// A data line's encryption counter is (major, minor[lineInPage]). Every
// write increments the line's minor counter; a minor overflow increments the
// major counter, resets all minors, and forces a re-encryption of the whole
// page (all 64 lines) because their OTPs all change.
package counters

import (
	"encoding/binary"
	"fmt"

	"fsencr/internal/config"
)

// MECB is a memory-encryption counter block covering one 4 KB page.
type MECB struct {
	Major uint64
	Minor [config.LinesPerPage]uint8 // 7-bit values
}

// FECB is a file-encryption counter block covering one 4 KB page of a DAX
// file, tagged with the owning file's identity so the memory controller can
// locate the file key in the Open Tunnel Table.
type FECB struct {
	GroupID uint32 // 18 bits
	FileID  uint16 // 14 bits
	Major   uint32
	Minor   [config.LinesPerPage]uint8 // 7-bit values
}

// Limits of the packed identity fields.
const (
	MaxGroupID = 1<<18 - 1
	MaxFileID  = 1<<14 - 1
)

// Block is a serialized 64-byte counter block as it lives in the metadata
// region of memory (and in the metadata cache).
type Block [config.LineSize]byte

// packMinors packs 64 7-bit minors into 56 bytes starting at b[off].
func packMinors(b []byte, minors *[config.LinesPerPage]uint8) {
	var acc uint64
	var nbits uint
	j := 0
	for i := 0; i < config.LinesPerPage; i++ {
		acc |= uint64(minors[i]&config.MinorCounterMax) << nbits
		nbits += config.MinorCounterBits
		for nbits >= 8 {
			b[j] = byte(acc)
			acc >>= 8
			nbits -= 8
			j++
		}
	}
	if nbits > 0 {
		b[j] = byte(acc)
	}
}

// unpackMinors reverses packMinors.
func unpackMinors(b []byte, minors *[config.LinesPerPage]uint8) {
	var acc uint64
	var nbits uint
	j := 0
	for i := 0; i < config.LinesPerPage; i++ {
		for nbits < config.MinorCounterBits {
			acc |= uint64(b[j]) << nbits
			nbits += 8
			j++
		}
		minors[i] = uint8(acc & config.MinorCounterMax)
		acc >>= config.MinorCounterBits
		nbits -= config.MinorCounterBits
	}
}

// Encode serializes the MECB into its 64-byte line: 8 bytes of major counter
// followed by 56 bytes of packed minors.
func (m *MECB) Encode() Block {
	var b Block
	m.EncodeInto(&b)
	return b
}

// EncodeInto serializes the MECB into a caller-owned block, so hot paths
// that re-encode a counter block on every NVM access (fetch, bump, tree
// update) can reuse one scratch buffer instead of escaping a fresh 64-byte
// copy to the heap each time.
func (m *MECB) EncodeInto(b *Block) {
	binary.LittleEndian.PutUint64(b[0:8], m.Major)
	packMinors(b[8:], &m.Minor)
}

// DecodeMECB parses a serialized MECB.
func DecodeMECB(b Block) MECB {
	var m MECB
	m.Major = binary.LittleEndian.Uint64(b[0:8])
	unpackMinors(b[8:], &m.Minor)
	return m
}

// Encode serializes the FECB into its 64-byte line: 4 bytes packing the
// 18-bit Group ID and 14-bit File ID, 4 bytes of major counter, then 56
// bytes of packed minors.
func (f *FECB) Encode() (Block, error) {
	var b Block
	if err := f.EncodeInto(&b); err != nil {
		return Block{}, err
	}
	return b, nil
}

// EncodeInto serializes the FECB into a caller-owned block (see
// MECB.EncodeInto for why hot paths want this form).
func (f *FECB) EncodeInto(b *Block) error {
	if f.GroupID > MaxGroupID {
		return fmt.Errorf("counters: group ID %d exceeds 18 bits", f.GroupID)
	}
	if f.FileID > MaxFileID {
		return fmt.Errorf("counters: file ID %d exceeds 14 bits", f.FileID)
	}
	tag := uint32(f.GroupID) | uint32(f.FileID)<<18
	binary.LittleEndian.PutUint32(b[0:4], tag)
	binary.LittleEndian.PutUint32(b[4:8], f.Major)
	packMinors(b[8:], &f.Minor)
	return nil
}

// MustEncode is Encode for callers that have already validated the IDs.
func (f *FECB) MustEncode() Block {
	b, err := f.Encode()
	if err != nil {
		panic(err)
	}
	return b
}

// MustEncodeInto is EncodeInto for callers that have already validated the
// IDs.
func (f *FECB) MustEncodeInto(b *Block) {
	if err := f.EncodeInto(b); err != nil {
		panic(err)
	}
}

// DecodeFECB parses a serialized FECB.
func DecodeFECB(b Block) FECB {
	var f FECB
	tag := binary.LittleEndian.Uint32(b[0:4])
	f.GroupID = tag & MaxGroupID
	f.FileID = uint16(tag >> 18 & MaxFileID)
	f.Major = binary.LittleEndian.Uint32(b[4:8])
	unpackMinors(b[8:], &f.Minor)
	return f
}

// BumpResult describes the effect of incrementing a minor counter.
type BumpResult struct {
	// Overflowed reports that the minor counter wrapped; the caller must
	// re-encrypt the whole page under the new major counter.
	Overflowed bool
	// MajorWrapped reports that the major counter itself wrapped, which for
	// file counters means the file key must be rotated (§VI, "Resetting
	// Filesystem Encryption Counters").
	MajorWrapped bool
}

// Bump increments the minor counter for line (0..63), handling overflow.
func (m *MECB) Bump(line int) BumpResult {
	if m.Minor[line] < config.MinorCounterMax {
		m.Minor[line]++
		return BumpResult{}
	}
	m.Major++
	for i := range m.Minor {
		m.Minor[i] = 0
	}
	m.Minor[line] = 1
	return BumpResult{Overflowed: true, MajorWrapped: m.Major == 0}
}

// Bump increments the minor counter for line (0..63), handling overflow.
func (f *FECB) Bump(line int) BumpResult {
	if f.Minor[line] < config.MinorCounterMax {
		f.Minor[line]++
		return BumpResult{}
	}
	f.Major++
	for i := range f.Minor {
		f.Minor[i] = 0
	}
	f.Minor[line] = 1
	return BumpResult{Overflowed: true, MajorWrapped: f.Major == 0}
}

// Reset zeroes the counters (Silent-Shredder-style secure deletion: with the
// counters gone, previous ciphertext can no longer be decrypted even with
// the correct key, because the OTPs cannot be regenerated).
func (f *FECB) Reset() {
	f.Major = 0
	for i := range f.Minor {
		f.Minor[i] = 0
	}
	f.GroupID = 0
	f.FileID = 0
}
