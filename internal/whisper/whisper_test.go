package whisper

import (
	"bytes"
	"errors"
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/pmem"
	"fsencr/internal/sim"
)

func mkpool(t *testing.T, mb int) (*pmem.Pool, *kernel.System) {
	t.Helper()
	s := kernel.Boot(config.Default(), memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX)
	p := s.NewProcess(1000, 100)
	size := uint64(mb) << 20
	f, err := s.CreateFile(p, "whisper", 0600, size, true, "pw")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pmem.Create(p, f, size)
	if err != nil {
		t.Fatal(err)
	}
	return pool, s
}

func val(k uint64, n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(k) + byte(i*3)
	}
	return v
}

func TestHashmapPutGet(t *testing.T) {
	pool, _ := mkpool(t, 8)
	h, err := CreateHashmap(pool, 0, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := h.Get(1, buf)
	if err != nil || string(buf[:n]) != "one" {
		t.Fatalf("got %q err=%v", buf[:n], err)
	}
	if _, err := h.Get(2, buf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestHashmapUpdateInPlace(t *testing.T) {
	pool, _ := mkpool(t, 8)
	h, _ := CreateHashmap(pool, 0, 64, 32)
	h.Put(5, []byte("first"))
	h.Put(5, []byte("second"))
	buf := make([]byte, 32)
	n, _ := h.Get(5, buf)
	if string(buf[:n]) != "second" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestHashmapCollisionChains(t *testing.T) {
	pool, _ := mkpool(t, 16)
	// 4 buckets force heavy chaining.
	h, _ := CreateHashmap(pool, 0, 4, 16)
	const N = 200
	for k := uint64(0); k < N; k++ {
		if err := h.Put(k, val(k, 16)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 16)
	for k := uint64(0); k < N; k++ {
		n, err := h.Get(k, buf)
		if err != nil || !bytes.Equal(buf[:n], val(k, 16)) {
			t.Fatalf("key %d lost in chain: %v", k, err)
		}
	}
}

func TestHashmapOpenExisting(t *testing.T) {
	pool, _ := mkpool(t, 8)
	h, _ := CreateHashmap(pool, 0, 64, 32)
	h.Put(9, []byte("persisted"))
	h2, err := OpenHashmap(pool, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := h2.Get(9, buf)
	if err != nil || string(buf[:n]) != "persisted" {
		t.Fatal("reopened hashmap lost data")
	}
}

func TestHashmapCrossView(t *testing.T) {
	pool, s := mkpool(t, 8)
	h, _ := CreateHashmap(pool, 0, 64, 32)
	p2 := s.NewProcess(1000, 100)
	f, _ := s.FS.Lookup("whisper")
	pool2, err := pmem.Open(p2, f, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	h2 := h.View(pool2)
	h.Put(1, []byte("alpha"))
	buf := make([]byte, 32)
	n, err := h2.Get(1, buf)
	if err != nil || string(buf[:n]) != "alpha" {
		t.Fatal("cross-view get failed")
	}
}

func TestCTreePutGet(t *testing.T) {
	pool, _ := mkpool(t, 8)
	c, err := CreateCTree(pool, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(10, []byte("ten")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := c.Get(10, buf)
	if err != nil || string(buf[:n]) != "ten" {
		t.Fatalf("got %q err=%v", buf[:n], err)
	}
	if _, err := c.Get(11, buf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestCTreeEmptyGet(t *testing.T) {
	pool, _ := mkpool(t, 4)
	c, _ := CreateCTree(pool, 0, 16)
	if _, err := c.Get(1, make([]byte, 16)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty tree get: %v", err)
	}
}

func TestCTreeManyKeys(t *testing.T) {
	pool, _ := mkpool(t, 16)
	c, _ := CreateCTree(pool, 0, 16)
	rng := sim.NewRNG(7)
	keys := make(map[uint64]bool)
	for i := 0; i < 300; i++ {
		k := rng.Uint64() // full 64-bit keys stress crit-bit placement
		keys[k] = true
		if err := c.Put(k, val(k, 16)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 16)
	for k := range keys {
		n, err := c.Get(k, buf)
		if err != nil || !bytes.Equal(buf[:n], val(k, 16)) {
			t.Fatalf("key %#x lost: %v", k, err)
		}
	}
}

func TestCTreeUpdateInPlace(t *testing.T) {
	pool, _ := mkpool(t, 8)
	c, _ := CreateCTree(pool, 0, 16)
	c.Put(3, []byte("aaa"))
	c.Put(3, []byte("bbb"))
	buf := make([]byte, 16)
	n, _ := c.Get(3, buf)
	if string(buf[:n]) != "bbb" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestCTreeAdjacentKeys(t *testing.T) {
	// Keys differing in the lowest bit exercise crit-bit edge cases.
	pool, _ := mkpool(t, 8)
	c, _ := CreateCTree(pool, 0, 16)
	for k := uint64(0); k < 32; k++ {
		if err := c.Put(k, val(k, 16)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 16)
	for k := uint64(0); k < 32; k++ {
		n, err := c.Get(k, buf)
		if err != nil || !bytes.Equal(buf[:n], val(k, 16)) {
			t.Fatalf("dense key %d lost", k)
		}
	}
}

func TestCTreeModelProperty(t *testing.T) {
	pool, _ := mkpool(t, 16)
	c, _ := CreateCTree(pool, 0, 24)
	model := map[uint64][]byte{}
	rng := sim.NewRNG(13)
	for i := 0; i < 600; i++ {
		k := rng.Uint64n(128)
		if rng.Intn(2) == 0 {
			v := val(k+uint64(i), 24)
			if err := c.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		} else {
			buf := make([]byte, 24)
			n, err := c.Get(k, buf)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d: want NotFound, got %v", i, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(buf[:n], want) {
				t.Fatalf("step %d key %d mismatch", i, k)
			}
		}
	}
}

func TestHashmapDurableAcrossCrash(t *testing.T) {
	pool, s := mkpool(t, 8)
	h, _ := CreateHashmap(pool, 0, 64, 32)
	for k := uint64(0); k < 50; k++ {
		h.Put(k, val(k, 32))
	}
	s.M.Crash(true)
	if err := s.M.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	buf := make([]byte, 32)
	for k := uint64(0); k < 50; k++ {
		n, err := h.Get(k, buf)
		if err != nil || !bytes.Equal(buf[:n], val(k, 32)) {
			t.Fatalf("key %d lost after crash", k)
		}
	}
}

func TestHashmapRemove(t *testing.T) {
	pool, _ := mkpool(t, 8)
	h, _ := CreateHashmap(pool, 0, 4, 16) // tiny bucket count: long chains
	for k := uint64(0); k < 30; k++ {
		h.Put(k, val(k, 16))
	}
	// Remove head, middle, and tail positions of chains.
	for _, k := range []uint64{0, 13, 29} {
		ok, err := h.Remove(k)
		if err != nil || !ok {
			t.Fatalf("remove %d: %v %v", k, ok, err)
		}
	}
	buf := make([]byte, 16)
	for k := uint64(0); k < 30; k++ {
		_, err := h.Get(k, buf)
		removed := k == 0 || k == 13 || k == 29
		if removed && !errors.Is(err, ErrNotFound) {
			t.Fatalf("removed key %d still present", k)
		}
		if !removed && err != nil {
			t.Fatalf("key %d lost: %v", k, err)
		}
	}
	if ok, _ := h.Remove(0); ok {
		t.Fatal("double remove succeeded")
	}
	// Reinsert a removed key.
	h.Put(13, []byte("back"))
	n, err := h.Get(13, buf)
	if err != nil || string(buf[:n]) != "back" {
		t.Fatal("reinsert after remove failed")
	}
}

func TestCTreeDelete(t *testing.T) {
	pool, _ := mkpool(t, 8)
	c, _ := CreateCTree(pool, 0, 16)
	for k := uint64(0); k < 32; k++ {
		c.Put(k, val(k, 16))
	}
	for k := uint64(0); k < 32; k += 3 {
		ok, err := c.Delete(k)
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", k, ok, err)
		}
	}
	buf := make([]byte, 16)
	for k := uint64(0); k < 32; k++ {
		_, err := c.Get(k, buf)
		if k%3 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still present", k)
		}
		if k%3 != 0 && err != nil {
			t.Fatalf("key %d lost after sibling splice: %v", k, err)
		}
	}
	if ok, _ := c.Delete(0); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestCTreeDeleteToEmpty(t *testing.T) {
	pool, _ := mkpool(t, 4)
	c, _ := CreateCTree(pool, 0, 16)
	c.Put(7, []byte("only"))
	ok, err := c.Delete(7)
	if err != nil || !ok {
		t.Fatal("delete sole key failed")
	}
	if _, err := c.Get(7, make([]byte, 16)); !errors.Is(err, ErrNotFound) {
		t.Fatal("tree not empty")
	}
	// Tree usable after emptying.
	c.Put(9, []byte("again"))
	buf := make([]byte, 16)
	n, err := c.Get(9, buf)
	if err != nil || string(buf[:n]) != "again" {
		t.Fatal("reuse after emptying failed")
	}
}

func TestCTreeDeleteModelProperty(t *testing.T) {
	pool, _ := mkpool(t, 16)
	c, _ := CreateCTree(pool, 0, 24)
	model := map[uint64][]byte{}
	rng := sim.NewRNG(31)
	buf := make([]byte, 24)
	for i := 0; i < 800; i++ {
		k := rng.Uint64n(100)
		switch rng.Intn(4) {
		case 0, 1:
			v := val(k+uint64(i), 24)
			if err := c.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 2:
			ok, err := c.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, want := model[k]
			if ok != want {
				t.Fatalf("step %d: delete(%d)=%v model=%v", i, k, ok, want)
			}
			delete(model, k)
		default:
			n, err := c.Get(k, buf)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d: want NotFound got %v", i, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(buf[:n], want) {
				t.Fatalf("step %d: key %d mismatch", i, k)
			}
		}
	}
}
