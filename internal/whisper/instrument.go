package whisper

import (
	"fsencr/internal/pmem"
	"fsencr/internal/telemetry"
)

// probes bundles the telemetry handles of one whisper structure. Views
// copy the containing struct, so a structure instrumented before its
// per-thread Views are taken propagates the handles to every view.
type probes struct {
	tel  *telemetry.Registry
	tPut *telemetry.Histogram
	tGet *telemetry.Histogram
}

// opSpan records one completed operation against pool's clock.
func (pr *probes) opSpan(pool *pmem.Pool, name string, h *telemetry.Histogram, start uint64) {
	end := uint64(pool.Proc().Now())
	h.Observe(end - start)
	pr.tel.Span("whisper", name, start, end, pool.Proc().Core().ID())
}

// Instrument attaches telemetry handles for hashmap op latencies and spans.
// A nil registry detaches.
func (h *Hashmap) Instrument(reg *telemetry.Registry) {
	h.pr = probes{
		tel:  reg,
		tPut: reg.Histogram("whisper.hashmap_put_cycles"),
		tGet: reg.Histogram("whisper.hashmap_get_cycles"),
	}
}

// Instrument attaches telemetry handles for ctree op latencies and spans.
// A nil registry detaches.
func (t *CTree) Instrument(reg *telemetry.Registry) {
	t.pr = probes{
		tel:  reg,
		tPut: reg.Histogram("whisper.ctree_put_cycles"),
		tGet: reg.Histogram("whisper.ctree_get_cycles"),
	}
}
