// Package whisper implements the persistent data structures of the Whisper
// benchmark suite used in the paper's evaluation (Table II): a persistent
// chained hashmap, a crit-bit tree (ctree), and a YCSB driver running a
// configurable read/write mix with zipfian key popularity over the hashmap.
// All structures live in a pmem pool and persist every durable store.
package whisper

import (
	"encoding/binary"
	"errors"

	"fsencr/internal/pmem"
)

// Hashmap is a persistent fixed-bucket chained hash table. Root slot usage:
// slot rootSlot holds the bucket-array offset, slot rootSlot+1 the bucket
// count.
type Hashmap struct {
	pool      *pmem.Pool
	rootSlot  int
	buckets   uint64 // cached bucket count
	bucketArr uint64 // cached bucket-array offset
	valueSize int

	pr probes
}

// Entry layout: [key 8][next 8][vlen 8][value ...].
const (
	entKey  = 0
	entNext = 8
	entVLen = 16
	entVal  = 24
)

// ErrNotFound is returned for missing keys.
var ErrNotFound = errors.New("whisper: key not found")

// CreateHashmap initializes a hashmap with nbuckets buckets for values of
// valueSize bytes.
func CreateHashmap(pool *pmem.Pool, rootSlot int, nbuckets uint64, valueSize int) (*Hashmap, error) {
	arr, err := pool.Alloc(nbuckets * 8)
	if err != nil {
		return nil, err
	}
	zero := make([]byte, nbuckets*8)
	if err := pool.Store(pool.Addr(arr), zero); err != nil {
		return nil, err
	}
	if err := pool.SetRoot(rootSlot, arr); err != nil {
		return nil, err
	}
	if err := pool.SetRoot(rootSlot+1, nbuckets); err != nil {
		return nil, err
	}
	return &Hashmap{pool: pool, rootSlot: rootSlot, buckets: nbuckets, bucketArr: arr, valueSize: valueSize}, nil
}

// OpenHashmap attaches to an existing hashmap.
func OpenHashmap(pool *pmem.Pool, rootSlot int, valueSize int) (*Hashmap, error) {
	arr, err := pool.GetRoot(rootSlot)
	if err != nil {
		return nil, err
	}
	n, err := pool.GetRoot(rootSlot + 1)
	if err != nil {
		return nil, err
	}
	return &Hashmap{pool: pool, rootSlot: rootSlot, buckets: n, bucketArr: arr, valueSize: valueSize}, nil
}

// View binds the map to another thread's pool view.
func (h *Hashmap) View(pool *pmem.Pool) *Hashmap {
	v := *h
	v.pool = pool
	return &v
}

func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func (h *Hashmap) bucketAddr(key uint64) uint64 {
	return h.bucketArr + hashKey(key)%h.buckets*8
}

// find walks the chain for key, returning the entry offset (0 if absent).
func (h *Hashmap) find(key uint64) (uint64, error) {
	cur, err := h.pool.LoadU64(h.pool.Addr(h.bucketAddr(key)))
	if err != nil {
		return 0, err
	}
	var hdr [16]byte
	for cur != 0 {
		if err := h.pool.Load(h.pool.Addr(cur), hdr[:]); err != nil {
			return 0, err
		}
		if binary.LittleEndian.Uint64(hdr[entKey:]) == key {
			return cur, nil
		}
		cur = binary.LittleEndian.Uint64(hdr[entNext:])
	}
	return 0, nil
}

// Put inserts or updates key with val (val must be at most the map's value
// size). Updates overwrite the value in place and persist it; inserts
// allocate an entry, persist it, then durably link it at the bucket head —
// the standard persist-then-link pattern.
func (h *Hashmap) Put(key uint64, val []byte) error {
	if h.pr.tel != nil {
		defer h.pr.opSpan(h.pool, "hashmap_put", h.pr.tPut, uint64(h.pool.Proc().Now()))
	}
	ent, err := h.find(key)
	if err != nil {
		return err
	}
	if ent != 0 {
		// In-place update: vlen and value are contiguous, one persist.
		upd := make([]byte, 8+len(val))
		binary.LittleEndian.PutUint64(upd, uint64(len(val)))
		copy(upd[8:], val)
		return h.pool.Store(h.pool.Addr(ent)+entVLen, upd)
	}
	ent, err = h.pool.Alloc(uint64(entVal + h.valueSize))
	if err != nil {
		return err
	}
	bucket := h.bucketAddr(key)
	head, err := h.pool.LoadU64(h.pool.Addr(bucket))
	if err != nil {
		return err
	}
	// Header and value are contiguous: one write, one persist, then the
	// durable link at the bucket head (persist-then-link).
	rec := make([]byte, entVal+len(val))
	binary.LittleEndian.PutUint64(rec[entKey:], key)
	binary.LittleEndian.PutUint64(rec[entNext:], head)
	binary.LittleEndian.PutUint64(rec[entVLen:], uint64(len(val)))
	copy(rec[entVal:], val)
	if err := h.pool.Store(h.pool.Addr(ent), rec); err != nil {
		return err
	}
	return h.pool.StoreU64(h.pool.Addr(bucket), ent)
}

// Get reads key's value into buf, returning its length.
func (h *Hashmap) Get(key uint64, buf []byte) (int, error) {
	if h.pr.tel != nil {
		defer h.pr.opSpan(h.pool, "hashmap_get", h.pr.tGet, uint64(h.pool.Proc().Now()))
	}
	ent, err := h.find(key)
	if err != nil {
		return 0, err
	}
	if ent == 0 {
		return 0, ErrNotFound
	}
	vlen, err := h.pool.LoadU64(h.pool.Addr(ent) + entVLen)
	if err != nil {
		return 0, err
	}
	n := int(vlen)
	if n > len(buf) {
		n = len(buf)
	}
	return n, h.pool.Load(h.pool.Addr(ent)+entVal, buf[:n])
}

// Remove deletes key from the map, durably unlinking its entry from the
// chain (the entry's storage is leaked to the pool, as in Whisper's
// allocator-free hashmap). Returns whether the key was present.
func (h *Hashmap) Remove(key uint64) (bool, error) {
	bucket := h.bucketAddr(key)
	cur, err := h.pool.LoadU64(h.pool.Addr(bucket))
	if err != nil {
		return false, err
	}
	prevLink := h.pool.Addr(bucket) // address of the 8-byte link to rewrite
	var hdr [16]byte
	for cur != 0 {
		if err := h.pool.Load(h.pool.Addr(cur), hdr[:]); err != nil {
			return false, err
		}
		next := binary.LittleEndian.Uint64(hdr[entNext:])
		if binary.LittleEndian.Uint64(hdr[entKey:]) == key {
			return true, h.pool.StoreU64(prevLink, next)
		}
		prevLink = h.pool.Addr(cur) + entNext
		cur = next
	}
	return false, nil
}
