package whisper

import (
	"encoding/binary"

	"fsencr/internal/addr"
	"fsencr/internal/pmem"
)

// CTree is a persistent crit-bit tree over 64-bit keys, mirroring Whisper's
// ctree benchmark. Internal nodes record the critical bit and two tagged
// children (LSB set marks a leaf; allocations are cache-line aligned so the
// low bit is free).
//
// Layout:
//
//	internal: [critBit 8][child0 8][child1 8]
//	leaf:     [key 8][vlen 8][value ...]
type CTree struct {
	pool      *pmem.Pool
	rootSlot  int
	valueSize int

	pr probes
}

const leafTag = 1

// CreateCTree initializes an empty tree at the given root slot.
func CreateCTree(pool *pmem.Pool, rootSlot int, valueSize int) (*CTree, error) {
	if err := pool.SetRoot(rootSlot, 0); err != nil {
		return nil, err
	}
	return &CTree{pool: pool, rootSlot: rootSlot, valueSize: valueSize}, nil
}

// OpenCTree attaches to an existing tree.
func OpenCTree(pool *pmem.Pool, rootSlot int, valueSize int) *CTree {
	return &CTree{pool: pool, rootSlot: rootSlot, valueSize: valueSize}
}

// View binds the tree to another thread's pool view.
func (t *CTree) View(pool *pmem.Pool) *CTree {
	v := *t
	v.pool = pool
	return &v
}

func isLeaf(ref uint64) bool    { return ref&leafTag != 0 }
func leafOff(ref uint64) uint64 { return ref &^ leafTag }

func (t *CTree) newLeaf(key uint64, val []byte) (uint64, error) {
	off, err := t.pool.Alloc(uint64(16 + t.valueSize))
	if err != nil {
		return 0, err
	}
	rec := make([]byte, 16+len(val))
	binary.LittleEndian.PutUint64(rec[0:], key)
	binary.LittleEndian.PutUint64(rec[8:], uint64(len(val)))
	copy(rec[16:], val)
	if err := t.pool.Store(t.pool.Addr(off), rec); err != nil {
		return 0, err
	}
	return off | leafTag, nil
}

func (t *CTree) leafKey(ref uint64) (uint64, error) {
	return t.pool.LoadU64(t.pool.Addr(leafOff(ref)))
}

// descend walks from ref to the leaf key would reach.
func (t *CTree) descend(ref uint64, key uint64) (uint64, error) {
	for !isLeaf(ref) {
		var nb [24]byte
		if err := t.pool.Load(t.pool.Addr(ref), nb[:]); err != nil {
			return 0, err
		}
		bit := binary.LittleEndian.Uint64(nb[0:])
		if key>>bit&1 == 0 {
			ref = binary.LittleEndian.Uint64(nb[8:])
		} else {
			ref = binary.LittleEndian.Uint64(nb[16:])
		}
	}
	return ref, nil
}

// Put inserts or updates key.
func (t *CTree) Put(key uint64, val []byte) error {
	if t.pr.tel != nil {
		defer t.pr.opSpan(t.pool, "ctree_put", t.pr.tPut, uint64(t.pool.Proc().Now()))
	}
	root, err := t.pool.GetRoot(t.rootSlot)
	if err != nil {
		return err
	}
	if root == 0 {
		leaf, err := t.newLeaf(key, val)
		if err != nil {
			return err
		}
		return t.pool.SetRoot(t.rootSlot, leaf)
	}
	nearest, err := t.descend(root, key)
	if err != nil {
		return err
	}
	nkey, err := t.leafKey(nearest)
	if err != nil {
		return err
	}
	if nkey == key {
		// In-place value update: vlen and value are contiguous, one persist.
		off := leafOff(nearest)
		upd := make([]byte, 8+len(val))
		binary.LittleEndian.PutUint64(upd, uint64(len(val)))
		copy(upd[8:], val)
		return t.pool.Store(t.pool.Addr(off)+8, upd)
	}
	// Find the critical (highest differing) bit.
	diff := nkey ^ key
	crit := uint64(63)
	for diff>>crit&1 == 0 {
		crit--
	}
	newLeafRef, err := t.newLeaf(key, val)
	if err != nil {
		return err
	}
	// Walk again from the root, stopping where the new node belongs:
	// before the first node whose bit is below crit, or at a leaf.
	var parentAddr addr.Virt // address of the 8-byte link to rewrite
	cur := root
	for !isLeaf(cur) {
		var nb [24]byte
		if err := t.pool.Load(t.pool.Addr(cur), nb[:]); err != nil {
			return err
		}
		bit := binary.LittleEndian.Uint64(nb[0:])
		if bit < crit {
			break
		}
		if key>>bit&1 == 0 {
			parentAddr = t.pool.Addr(cur) + 8
			cur = binary.LittleEndian.Uint64(nb[8:])
		} else {
			parentAddr = t.pool.Addr(cur) + 16
			cur = binary.LittleEndian.Uint64(nb[16:])
		}
	}
	// Build the new internal node pointing at cur and the new leaf.
	node, err := t.pool.Alloc(24)
	if err != nil {
		return err
	}
	var nb [24]byte
	binary.LittleEndian.PutUint64(nb[0:], crit)
	if key>>crit&1 == 0 {
		binary.LittleEndian.PutUint64(nb[8:], newLeafRef)
		binary.LittleEndian.PutUint64(nb[16:], cur)
	} else {
		binary.LittleEndian.PutUint64(nb[8:], cur)
		binary.LittleEndian.PutUint64(nb[16:], newLeafRef)
	}
	if err := t.pool.Store(t.pool.Addr(node), nb[:]); err != nil {
		return err
	}
	// Durably swing the parent link (or the root).
	if parentAddr == 0 {
		return t.pool.SetRoot(t.rootSlot, node)
	}
	return t.pool.StoreU64(parentAddr, node)
}

// Get reads key's value into buf.
func (t *CTree) Get(key uint64, buf []byte) (int, error) {
	if t.pr.tel != nil {
		defer t.pr.opSpan(t.pool, "ctree_get", t.pr.tGet, uint64(t.pool.Proc().Now()))
	}
	root, err := t.pool.GetRoot(t.rootSlot)
	if err != nil {
		return 0, err
	}
	if root == 0 {
		return 0, ErrNotFound
	}
	leaf, err := t.descend(root, key)
	if err != nil {
		return 0, err
	}
	off := leafOff(leaf)
	var hdr [16]byte
	if err := t.pool.Load(t.pool.Addr(off), hdr[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != key {
		return 0, ErrNotFound
	}
	n := int(binary.LittleEndian.Uint64(hdr[8:]))
	if n > len(buf) {
		n = len(buf)
	}
	return n, t.pool.Load(t.pool.Addr(off)+16, buf[:n])
}

// Delete removes key from the tree: the leaf's parent internal node is
// spliced out so the sibling takes its place. Returns whether the key was
// present.
func (t *CTree) Delete(key uint64) (bool, error) {
	root, err := t.pool.GetRoot(t.rootSlot)
	if err != nil {
		return false, err
	}
	if root == 0 {
		return false, nil
	}
	// Walk, remembering the link that points at the current node: after
	// the loop, linkToLeaf points at the leaf and linkToParent at its
	// parent internal node (zero means "the root slot").
	var linkToParent addr.Virt
	var siblingRef uint64
	var linkToLeaf addr.Virt
	cur := root
	for !isLeaf(cur) {
		var nb [24]byte
		if err := t.pool.Load(t.pool.Addr(cur), nb[:]); err != nil {
			return false, err
		}
		bit := binary.LittleEndian.Uint64(nb[0:])
		linkToParent = linkToLeaf
		if key>>bit&1 == 0 {
			siblingRef = binary.LittleEndian.Uint64(nb[16:])
			linkToLeaf = t.pool.Addr(cur) + 8
			cur = binary.LittleEndian.Uint64(nb[8:])
		} else {
			siblingRef = binary.LittleEndian.Uint64(nb[8:])
			linkToLeaf = t.pool.Addr(cur) + 16
			cur = binary.LittleEndian.Uint64(nb[16:])
		}
	}
	nkey, err := t.leafKey(cur)
	if err != nil {
		return false, err
	}
	if nkey != key {
		return false, nil
	}
	if linkToLeaf == 0 {
		// The leaf is the root: the tree becomes empty.
		return true, t.pool.SetRoot(t.rootSlot, 0)
	}
	// Splice: the sibling replaces the leaf's parent node.
	if linkToParent == 0 {
		return true, t.pool.SetRoot(t.rootSlot, siblingRef)
	}
	return true, t.pool.StoreU64(linkToParent, siblingRef)
}
