package sim

import "container/heap"

// EventQueue is a deterministic discrete-event priority queue: events fire
// in (time, insertion order) order, so simultaneous events retain FIFO
// semantics and simulations replay identically.
type EventQueue struct {
	h eventHeap
	// seq breaks ties between events scheduled for the same instant.
	seq uint64
}

type event struct {
	at   uint64
	seq  uint64
	call func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Schedule enqueues fn to fire at the given time.
func (q *EventQueue) Schedule(at uint64, fn func()) {
	q.seq++
	heap.Push(&q.h, event{at: at, seq: q.seq, call: fn})
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// NextTime returns the firing time of the earliest pending event.
// It panics if the queue is empty.
func (q *EventQueue) NextTime() uint64 { return q.h[0].at }

// Step fires the earliest event and returns its time. It panics if empty.
func (q *EventQueue) Step() uint64 {
	e := heap.Pop(&q.h).(event)
	e.call()
	return e.at
}

// RunUntil fires every event scheduled at or before deadline, in order,
// including events they themselves schedule within the window. Returns how
// many events fired.
func (q *EventQueue) RunUntil(deadline uint64) int {
	n := 0
	for q.Len() > 0 && q.NextTime() <= deadline {
		q.Step()
		n++
	}
	return n
}

// Drain fires every pending event in order and returns the count.
func (q *EventQueue) Drain() int {
	n := 0
	for q.Len() > 0 {
		q.Step()
		n++
	}
	return n
}
