package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	v1, v2 := r.Uint64(), r.Uint64()
	if v1 == 0 && v2 == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestIntnCoversRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(8)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Intn(8) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 returned %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(64)
		seen := make([]bool, 64)
		for _, v := range p {
			if v < 0 || v >= 64 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesFillsExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		r := NewRNG(3)
		b := make([]byte, n+8)
		r.Bytes(b[:n])
		for i := n; i < len(b); i++ {
			if b[i] != 0 {
				t.Fatalf("Bytes wrote past requested length at %d", i)
			}
		}
	}
}

func TestBytesNotConstant(t *testing.T) {
	r := NewRNG(5)
	b := make([]byte, 256)
	r.Bytes(b)
	zero := 0
	for _, v := range b {
		if v == 0 {
			zero++
		}
	}
	if zero > 32 {
		t.Fatalf("suspiciously many zero bytes: %d/256", zero)
	}
}

func TestUniformityRough(t *testing.T) {
	r := NewRNG(11)
	const buckets = 16
	counts := make([]int, buckets)
	const draws = 160000
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d far from expected %d", i, c, want)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(r, 1.1, 1, 1000)
	counts := make(map[uint64]int)
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := z.Uint64()
		if v >= 1000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		counts[v]++
	}
	// Key 0 must be far more popular than key 500.
	if counts[0] < 10*counts[500]+1 {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfDeterminism(t *testing.T) {
	z1 := NewZipf(NewRNG(17), 1.1, 1, 4096)
	z2 := NewZipf(NewRNG(17), 1.1, 1, 4096)
	for i := 0; i < 1000; i++ {
		if z1.Uint64() != z2.Uint64() {
			t.Fatalf("zipf diverged at draw %d", i)
		}
	}
}

func TestZipfInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf with s<=1 did not panic")
		}
	}()
	NewZipf(NewRNG(1), 1.0, 1, 10)
}
