// Package sim provides deterministic simulation substrate shared by the
// machine model and the workload generators: a seeded random number
// generator with the distributions the benchmarks need, and a simulated
// clock type.
//
// Determinism matters here: every experiment in the paper reproduction must
// produce identical access streams across runs so that scheme-vs-scheme
// comparisons measure the architecture, not generator noise. The generator
// is a splitmix64-seeded xoshiro256**, entirely self-contained.
package sim

import "math/bits"

// RNG is a deterministic pseudo-random generator (xoshiro256**).
// The zero value is not valid; use NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, so that any
// seed (including 0) produces a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method.
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
