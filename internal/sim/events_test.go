package sim

import "testing"

func TestEventOrdering(t *testing.T) {
	var q EventQueue
	var order []int
	q.Schedule(30, func() { order = append(order, 3) })
	q.Schedule(10, func() { order = append(order, 1) })
	q.Schedule(20, func() { order = append(order, 2) })
	if n := q.Drain(); n != 3 {
		t.Fatalf("drained %d", n)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestEventFIFOWithinInstant(t *testing.T) {
	var q EventQueue
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		q.Schedule(7, func() { order = append(order, i) })
	}
	q.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestRunUntil(t *testing.T) {
	var q EventQueue
	fired := 0
	for _, at := range []uint64{5, 10, 15, 20} {
		q.Schedule(at, func() { fired++ })
	}
	if n := q.RunUntil(12); n != 2 || fired != 2 {
		t.Fatalf("RunUntil fired %d/%d", n, fired)
	}
	if q.Len() != 2 {
		t.Fatalf("pending = %d", q.Len())
	}
}

func TestCascadingEvents(t *testing.T) {
	var q EventQueue
	var times []uint64
	var spawn func(at uint64)
	spawn = func(at uint64) {
		q.Schedule(at, func() {
			times = append(times, at)
			if at < 50 {
				spawn(at + 10)
			}
		})
	}
	spawn(10)
	q.RunUntil(100)
	want := []uint64{10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("cascade broken: %v", times)
		}
	}
}

func TestStepAndNextTime(t *testing.T) {
	var q EventQueue
	q.Schedule(42, func() {})
	if q.NextTime() != 42 {
		t.Fatal("NextTime wrong")
	}
	if q.Step() != 42 {
		t.Fatal("Step time wrong")
	}
	if q.Len() != 0 {
		t.Fatal("not empty after step")
	}
}
