package sim

import "math"

// Zipf generates Zipfian-distributed values in [0, n), the key-popularity
// distribution used by YCSB. It uses the rejection-inversion sampler of
// Hörmann and Derflinger, the same algorithm as math/rand.Zipf, implemented
// here against the deterministic RNG.
type Zipf struct {
	rng              *RNG
	imax             float64
	theta            float64
	q                float64
	v                float64
	oneMinusQ        float64
	oneMinusQInv     float64
	hxm, hx0minusHxm float64
}

// NewZipf returns a Zipfian sampler over [0, n) with exponent s > 1
// (YCSB's default popularity constant corresponds to s ≈ 0.99 in its own
// formulation; this sampler takes the classic s > 1 exponent, and s=1.01 is
// a reasonable stand-in for YCSB's skew). v >= 1 offsets the distribution.
func NewZipf(rng *RNG, s, v float64, n uint64) *Zipf {
	if s <= 1 || v < 1 || n == 0 {
		panic("sim: invalid Zipf parameters")
	}
	z := &Zipf{rng: rng, imax: float64(n - 1), theta: s, v: v}
	z.q = s
	z.oneMinusQ = 1 - z.q
	z.oneMinusQInv = 1 / z.oneMinusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	return z
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusQ*math.Log(z.v+x)) * z.oneMinusQInv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneMinusQInv*math.Log(z.oneMinusQ*x)) - z.v
}

// Uint64 returns a Zipfian-distributed value in [0, n).
func (z *Zipf) Uint64() uint64 {
	for {
		r := z.rng.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= math.Exp(-z.q*math.Log(z.v+k)) {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-z.q*math.Log(z.v+k)) {
			return uint64(k)
		}
	}
}
