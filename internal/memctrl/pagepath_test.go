package memctrl

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/stats"
)

// pageEquivPair builds two controllers sharing the same derived chip keys
// (same instance sequence number), so their ciphertext, Merkle roots, and
// OTT state are directly comparable.
func pageEquivPair(mode Mode) (lineC, pageC *Controller, lineJ, pageJ *journal.Journal) {
	seq := instanceSeq.Add(1)
	lineC = newWithSeq(config.Default(), mode, stats.NewSet(), seq)
	pageC = newWithSeq(config.Default(), mode, stats.NewSet(), seq)
	lineJ, pageJ = journal.New(0), journal.New(0)
	lineC.AttachJournal(lineJ)
	pageC.AttachJournal(pageJ)
	return
}

// writePageAsLines drives the line-granularity datapath with a page's
// worth of chained WriteLine calls — the reference the batched path must
// be state-equivalent to.
func writePageAsLines(c *Controller, now config.Cycle, base addr.Phys, page *aesctr.Page) config.Cycle {
	t := now
	var line aesctr.Line
	for li := 0; li < config.LinesPerPage; li++ {
		copy(line[:], page[li*config.LineSize:(li+1)*config.LineSize])
		t = c.WriteLine(t, base+addr.Phys(li*config.LineSize), line)
	}
	return t
}

func readPageAsLines(c *Controller, now config.Cycle, base addr.Phys, dst *aesctr.Page) config.Cycle {
	t := now
	for li := 0; li < config.LinesPerPage; li++ {
		line, done := c.ReadLine(now, base+addr.Phys(li*config.LineSize))
		copy(dst[li*config.LineSize:(li+1)*config.LineSize], line[:])
		if done > t {
			t = done
		}
	}
	return t
}

// journalKeys flattens a journal into a sorted multiset key ignoring
// Seq/Cycle: batching reorders and retimes events but must never change
// what is reported.
func journalKeys(j *journal.Journal) []string {
	evs := j.Events()
	keys := make([]string, 0, len(evs))
	for _, e := range evs {
		keys = append(keys, fmt.Sprintf("%s p%d g%d f%d %s", e.Type, e.Page, e.Group, e.File, e.Detail))
	}
	sort.Strings(keys)
	return keys
}

// comparePageState asserts every piece of functional and security state
// the two datapaths share is identical for the given pages. Timing state
// (write queue, bank busy-until) and traffic stats are deliberately out of
// scope: amortizing them is the batched path's purpose.
func comparePageState(t *testing.T, lineC, pageC *Controller, addrs []addr.Phys) {
	t.Helper()
	for _, base := range addrs {
		page := base.PageNum()
		for li := 0; li < config.LinesPerPage; li++ {
			la := base + addr.Phys(li*config.LineSize)
			if lineC.RawLine(la) != pageC.RawLine(la) {
				t.Fatalf("page %#x line %d: ciphertext differs between line and page datapaths", page, li)
			}
		}
		if m1, m2 := lineC.mecb[page], pageC.mecb[page]; (m1 == nil) != (m2 == nil) || (m1 != nil && *m1 != *m2) {
			t.Fatalf("page %#x: MECB differs: %+v vs %+v", page, m1, m2)
		}
		if f1, f2 := lineC.fecb[page], pageC.fecb[page]; (f1 == nil) != (f2 == nil) || (f1 != nil && *f1 != *f2) {
			t.Fatalf("page %#x: FECB differs: %+v vs %+v", page, f1, f2)
		}
	}
	if !reflect.DeepEqual(lineC.persistedMECB, pageC.persistedMECB) {
		t.Fatal("persisted MECB snapshots differ (Osiris stop-loss schedule diverged)")
	}
	if !reflect.DeepEqual(lineC.persistedFECB, pageC.persistedFECB) {
		t.Fatal("persisted FECB snapshots differ (Osiris stop-loss schedule diverged)")
	}
	if !reflect.DeepEqual(lineC.unpersisted, pageC.unpersisted) {
		t.Fatalf("unpersisted bump counts differ: %v vs %v", lineC.unpersisted, pageC.unpersisted)
	}
	if !reflect.DeepEqual(lineC.ecc, pageC.ecc) {
		t.Fatal("Osiris ECC tags differ")
	}
	if lineC.MerkleRoot() != pageC.MerkleRoot() {
		t.Fatal("Merkle roots differ")
	}
}

// pageEquivConfig describes one mode of the equivalence sweep.
type pageEquivConfig struct {
	name   string
	mode   Mode
	df     bool // address pages through the DF tunnel bit
	lock   bool // lock the datapath after setup (failed admin auth)
	delKey bool // remove the file key after tagging (deleted file)
	iters  int
}

// TestWritePageEquivalence is the batched datapath's ground-truth property
// test: across every protection mode, a randomized sweep of page writes
// and reads must leave the page-granularity controller byte- and
// state-identical to a controller driven by 64x line-granularity calls —
// same plaintext, same ciphertext, same counters, same persisted Osiris
// snapshots, same Merkle root, same journal.
func TestWritePageEquivalence(t *testing.T) {
	const (
		group = uint32(7)
		nPage = 32
	)
	cases := []pageEquivConfig{
		{name: "mem_only", mode: Mode{MemEncryption: true}, iters: 1000},
		{name: "mem_file", mode: Mode{MemEncryption: true, FileEncryption: true}, df: true, iters: 1000},
		{name: "locked", mode: Mode{MemEncryption: true, FileEncryption: true}, df: true, lock: true, iters: 250},
		{name: "deleted_key", mode: Mode{MemEncryption: true, FileEncryption: true}, df: true, delKey: true, iters: 250},
		{name: "plain", mode: Mode{}, iters: 250},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lineC, pageC, lineJ, pageJ := pageEquivPair(tc.mode)
			rng := rand.New(rand.NewSource(42))

			addrs := make([]addr.Phys, nPage)
			for i := range addrs {
				pa := addr.Phys(0x400000 + i*config.PageSize)
				if tc.df {
					pa = pa.WithDF()
				}
				addrs[i] = pa
			}
			if tc.df {
				for i, pa := range addrs {
					file := uint16(i + 1)
					key := fileKey(byte(i + 1))
					for _, c := range []*Controller{lineC, pageC} {
						c.InstallKey(0, group, file, key)
						c.TagPage(0, pa, group, file)
					}
				}
			}
			if tc.lock {
				lineC.Lock()
				pageC.Lock()
			}
			if tc.delKey {
				for i := range addrs {
					lineC.RemoveKey(0, group, uint16(i+1))
					pageC.RemoveKey(0, group, uint16(i+1))
				}
			}

			var buf, got1, got2 aesctr.Page
			now := config.Cycle(1000)
			for it := 0; it < tc.iters; it++ {
				base := addrs[rng.Intn(nPage)]
				if rng.Intn(4) != 0 { // write-heavy mix
					for i := range buf {
						buf[i] = byte(rng.Intn(256))
					}
					writePageAsLines(lineC, now, base, &buf)
					pageC.WritePage(now, base, &buf)
				} else {
					readPageAsLines(lineC, now, base, &got1)
					pageC.ReadPageInto(now, base, &got2)
					if got1 != got2 {
						t.Fatalf("iter %d: page plaintext differs between datapaths", it)
					}
				}
				now += 500
			}
			comparePageState(t, lineC, pageC, addrs)
			k1, k2 := journalKeys(lineJ), journalKeys(pageJ)
			if !reflect.DeepEqual(k1, k2) {
				t.Fatalf("journal event multisets differ: %d line events vs %d page events", len(k1), len(k2))
			}
		})
	}
}

// TestWritePageOverflowFallback drives a page through a minor-counter
// overflow (128 full-page writes wrap the 7-bit minors) and checks the
// batched path's sequential fallback keeps it equivalent through the
// whole-page re-encryption.
func TestWritePageOverflowFallback(t *testing.T) {
	lineC, pageC, lineJ, pageJ := pageEquivPair(Mode{MemEncryption: true})
	base := addr.Phys(0x800000)
	var buf aesctr.Page
	now := config.Cycle(0)
	for i := 0; i < int(config.MinorCounterMax)+4; i++ {
		for j := range buf {
			buf[j] = byte(i + j)
		}
		writePageAsLines(lineC, now, base, &buf)
		pageC.WritePage(now, base, &buf)
		now += 1000
	}
	m := pageC.mecb[base.PageNum()]
	if m == nil || m.Major == 0 {
		t.Fatal("sweep did not cross a minor-counter overflow")
	}
	comparePageState(t, lineC, pageC, []addr.Phys{base})
	if !reflect.DeepEqual(journalKeys(lineJ), journalKeys(pageJ)) {
		t.Fatal("journal event multisets differ across overflow")
	}
}

// TestPageOpsSimulatedTiming pins the batched datapath's simulated-time
// profile:
//
//   - A page read completes strictly faster than 64 line reads: the
//     counter fetch and key lookup are paid once and the 64 array reads
//     pipeline across the bank stripe.
//   - A page write's ADR accept (what an SFENCE waits on) is never later
//     than the chained line path's — both claim one persistence slot per
//     line.
//   - The background array drain stays close to the line path's. The
//     burst issues its stop-loss metadata write-throughs ahead of the
//     data burst on the shared bank instead of interleaved with it, which
//     costs a bounded amount of background bank occupancy that nobody
//     stalls on; it must never balloon past a quarter over the line path.
func TestPageOpsSimulatedTiming(t *testing.T) {
	lineC, pageC, _, _ := pageEquivPair(Mode{MemEncryption: true})
	base := addr.Phys(0xA00000)
	var buf aesctr.Page
	for i := range buf {
		buf[i] = byte(i * 3)
	}

	lineAccept := writePageAsLines(lineC, 0, base, &buf)
	pageAccept := pageC.WritePage(0, base, &buf)
	if pageAccept > lineAccept {
		t.Errorf("WritePage accepted at %d cycles, later than %d for 64 chained WriteLines", pageAccept, lineAccept)
	}
	maxDrain := func(c *Controller) config.Cycle {
		var m config.Cycle
		for _, d := range c.writeQueue {
			if d > m {
				m = d
			}
		}
		return m
	}
	lineDrain, pageDrain := maxDrain(lineC), maxDrain(pageC)
	if pageDrain > lineDrain+lineDrain/4 {
		t.Errorf("WritePage array drain %d cycles exceeds line-path drain %d by more than 25%%", pageDrain, lineDrain)
	}

	var got aesctr.Page
	lineRead := readPageAsLines(lineC, 1_000_000, base, &got) - 1_000_000
	pageRead := pageC.ReadPageInto(1_000_000, base, &got) - 1_000_000
	if pageRead >= lineRead {
		t.Errorf("ReadPage took %d cycles, not faster than %d for 64 chained ReadLines", pageRead, lineRead)
	}
}
