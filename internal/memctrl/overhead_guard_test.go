package memctrl

import (
	"math"
	"os"
	"testing"

	"fsencr/internal/audit"
	"fsencr/internal/telemetry"
)

// benchNilHist lives at package scope so the compiler cannot prove it nil
// and fold the no-op Observe away: the guard must time the branch the real
// call sites take when no registry is attached.
var benchNilHist *telemetry.Histogram

// bestNsPerOp runs a benchmark three times and keeps the fastest run,
// discarding scheduler noise. Sub-nanosecond resolution matters for the
// no-op hook measurement, which BenchmarkResult.NsPerOp truncates to zero.
func bestNsPerOp(bench func(b *testing.B)) float64 {
	v := math.MaxFloat64
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(bench)
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < v {
			v = ns
		}
	}
	return v
}

// writeLineGapTolerance pins the WriteLine/ReadLine ns/op host-time ratio.
// Before the write-back Bonsai tree the gap was ~13x (every write eagerly
// recomputed the full 9-level path); with lazy propagation and the
// zero-alloc hash/encode path it sits around 3x. The tolerance leaves
// headroom for machine variance while still failing CI if eager per-write
// propagation (or a comparably expensive regression) ever sneaks back in.
const writeLineGapTolerance = 6.0

// TestWriteLineGapGuard is the companion CI gate to the bench-regression
// check: it pins the *relative* cost of the WriteLine hot path against
// ReadLine, which is stable across machines where absolute ns/op baselines
// are not. Skipped unless FSENCR_OVERHEAD_GUARD=1 (runs real benchmarks).
func TestWriteLineGapGuard(t *testing.T) {
	if os.Getenv("FSENCR_OVERHEAD_GUARD") == "" {
		t.Skip("set FSENCR_OVERHEAD_GUARD=1 (or run `make overhead-guard`) to enable")
	}
	readNs := bestNsPerOp(BenchmarkReadLine)
	writeNs := bestNsPerOp(BenchmarkWriteLine)
	ratio := writeNs / readNs
	t.Logf("WriteLine %.1f ns/op / ReadLine %.1f ns/op = %.2fx (tolerance %.1fx)",
		writeNs, readNs, ratio, writeLineGapTolerance)
	if ratio > writeLineGapTolerance {
		t.Errorf("WriteLine/ReadLine gap %.2fx exceeds %.1fx: eager per-write tree propagation regressed the hot path",
			ratio, writeLineGapTolerance)
	}
}

// TestPageGapGuard is the CI gate for the batched page datapath's whole
// reason to exist: one WritePage must cost at most half of 64 WriteLine
// calls in host time (the issue's acceptance bar is 2x; steady state
// measures ~4-5x, so this fails only on a real batching regression — a
// per-line counter fetch, key lookup, or Merkle touch sneaking back into
// the page loop). Skipped unless FSENCR_OVERHEAD_GUARD=1.
func TestPageGapGuard(t *testing.T) {
	if os.Getenv("FSENCR_OVERHEAD_GUARD") == "" {
		t.Skip("set FSENCR_OVERHEAD_GUARD=1 (or run `make overhead-guard`) to enable")
	}
	lineNs := bestNsPerOp(BenchmarkWriteLine)
	pageNs := bestNsPerOp(BenchmarkWritePage)
	serial := 64 * lineNs
	t.Logf("WritePage %.0f ns/op vs 64x WriteLine %.0f ns/op = %.2fx batching win (must be >= 2x)",
		pageNs, serial, serial/pageNs)
	if pageNs > serial/2 {
		t.Errorf("WritePage %.0f ns/op exceeds half of 64x WriteLine (%.0f ns): page batching regressed",
			pageNs, serial)
	}
}

// benchNilAudit mirrors benchNilHist for the audit plane's detached
// recorder.
var benchNilAudit *audit.Log

// maxAuditHooksPerPageOp bounds how many audit emissions one page
// operation can reach (ReadPageInto and WritePage each emit once; slack
// for future hooks).
const maxAuditHooksPerPageOp = 4

// TestAuditOverheadGuard pins the audit plane's disabled cost: with
// auditing off (the default) every Append on the page datapath is a nil
// receiver and must degrade to one predictable branch, so a page op's
// worth of detached audit hooks may not amount to more than 3% of an
// unaudited ReadPage/WritePage. Skipped unless FSENCR_OVERHEAD_GUARD=1.
func TestAuditOverheadGuard(t *testing.T) {
	if os.Getenv("FSENCR_OVERHEAD_GUARD") == "" {
		t.Skip("set FSENCR_OVERHEAD_GUARD=1 (or run `make overhead-guard`) to enable")
	}

	nilAppend := bestNsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchNilAudit.Append(uint64(i), audit.OpReadPage, uint64(i), 1, 2)
		}
	})
	budget := nilAppend * maxAuditHooksPerPageOp

	for _, op := range []struct {
		name  string
		bench func(b *testing.B)
	}{
		{"ReadPage", BenchmarkReadPage},
		{"WritePage", BenchmarkWritePage},
	} {
		opNs := bestNsPerOp(op.bench)
		limit := 0.03 * opNs
		t.Logf("%s: %.1f ns/op; %d detached audit hooks cost %.2f ns (limit %.2f ns)",
			op.name, opNs, maxAuditHooksPerPageOp, budget, limit)
		if budget > limit {
			t.Errorf("%s: disabled-audit budget %.2f ns exceeds 3%% of %.1f ns/op",
				op.name, budget, opNs)
		}
	}
}

// benchNilScope and benchIdleScope are the two disabled-tracing shapes the
// datapath sees: no scope attached at all (nil pointer, uninstrumented) and
// a scope attached but with no request being traced (the steady state of an
// instrumented shard between sampled requests). Package scope keeps the
// compiler from folding the checks away.
var (
	benchNilScope  *telemetry.TraceScope
	benchIdleScope = telemetry.NewTraceScope()
)

// maxTraceHooksPerPageOp bounds how many Active() gates one page operation
// crosses (memctrl entry/exit, pcm, machine — roughly six today), with
// slack for future hooks.
const maxTraceHooksPerPageOp = 8

// TestTraceOverheadGuard pins the request-trace plane's disabled cost: when
// no trace is active — scope nil or merely idle — every hook on the page
// datapath is a single predictable Active() branch, so a page op's worth of
// them may not amount to more than 3% of a ReadPage/WritePage. Skipped
// unless FSENCR_OVERHEAD_GUARD=1.
func TestTraceOverheadGuard(t *testing.T) {
	if os.Getenv("FSENCR_OVERHEAD_GUARD") == "" {
		t.Skip("set FSENCR_OVERHEAD_GUARD=1 (or run `make overhead-guard`) to enable")
	}

	nilActive := bestNsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if benchNilScope.Active() {
				b.Fatal("nil scope active")
			}
		}
	})
	idleActive := bestNsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if benchIdleScope.Active() {
				b.Fatal("idle scope active")
			}
		}
	})
	hookNs := nilActive
	if idleActive > hookNs {
		hookNs = idleActive // the attached-but-idle shape is the worst case
	}
	budget := hookNs * maxTraceHooksPerPageOp

	for _, op := range []struct {
		name  string
		bench func(b *testing.B)
	}{
		{"ReadPage", BenchmarkReadPage},
		{"WritePage", BenchmarkWritePage},
	} {
		opNs := bestNsPerOp(op.bench)
		limit := 0.03 * opNs
		t.Logf("%s: %.1f ns/op; %d inactive trace hooks cost %.2f ns (limit %.2f ns)",
			op.name, opNs, maxTraceHooksPerPageOp, budget, limit)
		if budget > limit {
			t.Errorf("%s: disabled-tracing budget %.2f ns exceeds 3%% of %.1f ns/op",
				op.name, budget, opNs)
		}
	}
}

// maxHooksPerLineOp bounds how many telemetry recordings a single
// ReadLine/WriteLine can reach (latency histogram, metadata fetch, BMT
// walk depth, key lookup, PCM service + queue, spans), with slack for
// future hooks.
const maxHooksPerLineOp = 16

// TestTelemetryOverheadGuard is the CI overhead gate (make overhead-guard):
// with no registry attached every telemetry handle is nil and each hook
// must cost one predictable branch, so maxHooksPerLineOp no-op recordings
// may not amount to more than 3% of an uninstrumented ReadLine/WriteLine.
// If the no-op path ever grows a lock, an allocation, or an interface
// call, the measured per-hook cost jumps and this fails. Skipped unless
// FSENCR_OVERHEAD_GUARD=1: it runs real benchmarks and takes seconds.
func TestTelemetryOverheadGuard(t *testing.T) {
	if os.Getenv("FSENCR_OVERHEAD_GUARD") == "" {
		t.Skip("set FSENCR_OVERHEAD_GUARD=1 (or run `make overhead-guard`) to enable")
	}

	nilObserve := bestNsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchNilHist.Observe(uint64(i))
		}
	})
	budget := nilObserve * maxHooksPerLineOp

	for _, op := range []struct {
		name  string
		bench func(b *testing.B)
	}{
		{"ReadLine", BenchmarkReadLine},
		{"WriteLine", BenchmarkWriteLine},
	} {
		opNs := bestNsPerOp(op.bench)
		limit := 0.03 * opNs
		t.Logf("%s: %.1f ns/op; %d no-op hooks cost %.2f ns (limit %.2f ns)",
			op.name, opNs, maxHooksPerLineOp, budget, limit)
		if budget > limit {
			t.Errorf("%s: no-op telemetry budget %.2f ns exceeds 3%% of %.1f ns/op",
				op.name, budget, opNs)
		}
	}
}
