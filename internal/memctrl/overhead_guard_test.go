package memctrl

import (
	"math"
	"os"
	"testing"

	"fsencr/internal/telemetry"
)

// benchNilHist lives at package scope so the compiler cannot prove it nil
// and fold the no-op Observe away: the guard must time the branch the real
// call sites take when no registry is attached.
var benchNilHist *telemetry.Histogram

// maxHooksPerLineOp bounds how many telemetry recordings a single
// ReadLine/WriteLine can reach (latency histogram, metadata fetch, BMT
// walk depth, key lookup, PCM service + queue, spans), with slack for
// future hooks.
const maxHooksPerLineOp = 16

// TestTelemetryOverheadGuard is the CI overhead gate (make overhead-guard):
// with no registry attached every telemetry handle is nil and each hook
// must cost one predictable branch, so maxHooksPerLineOp no-op recordings
// may not amount to more than 3% of an uninstrumented ReadLine/WriteLine.
// If the no-op path ever grows a lock, an allocation, or an interface
// call, the measured per-hook cost jumps and this fails. Skipped unless
// FSENCR_OVERHEAD_GUARD=1: it runs real benchmarks and takes seconds.
func TestTelemetryOverheadGuard(t *testing.T) {
	if os.Getenv("FSENCR_OVERHEAD_GUARD") == "" {
		t.Skip("set FSENCR_OVERHEAD_GUARD=1 (or run `make overhead-guard`) to enable")
	}

	// Sub-nanosecond resolution matters here: the no-op hook costs a
	// fraction of a nanosecond, which BenchmarkResult.NsPerOp truncates
	// to zero.
	best := func(bench func(b *testing.B)) float64 {
		v := math.MaxFloat64
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(bench)
			if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < v {
				v = ns
			}
		}
		return v
	}

	nilObserve := best(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchNilHist.Observe(uint64(i))
		}
	})
	budget := nilObserve * maxHooksPerLineOp

	for _, op := range []struct {
		name  string
		bench func(b *testing.B)
	}{
		{"ReadLine", BenchmarkReadLine},
		{"WriteLine", BenchmarkWriteLine},
	} {
		opNs := best(op.bench)
		limit := 0.03 * opNs
		t.Logf("%s: %.1f ns/op; %d no-op hooks cost %.2f ns (limit %.2f ns)",
			op.name, opNs, maxHooksPerLineOp, budget, limit)
		if budget > limit {
			t.Errorf("%s: no-op telemetry budget %.2f ns exceeds 3%% of %.1f ns/op",
				op.name, budget, opNs)
		}
	}
}
