package memctrl

import (
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/stats"
)

// TestJournalOTTOverflowOrdering drives the OTT-overflow workload with a
// journal attached and asserts the exact ordered event sequence: three
// tunnel opens, the capacity eviction, the region refill (which itself
// evicts the then-LRU entry), and finally the minor-counter overflows with
// their page re-encryptions — every event stamped with a plausible
// simulated cycle.
func TestJournalOTTOverflowOrdering(t *testing.T) {
	cfg := config.Default()
	cfg.Security.OTTBanks = 1
	cfg.Security.OTTEntriesPerBank = 2
	c := New(cfg, Mode{MemEncryption: true, FileEncryption: true}, stats.NewSet())
	jrn := journal.New(0)
	c.AttachJournal(jrn)

	const group = 3
	pa := addr.Phys(0x40000).WithDF()
	now := c.InstallKey(0, group, 1, fileKey(1))
	now = c.TagPage(now, pa, group, 1)
	now = c.WriteLine(now, pa, lineOf(7))

	// Overflow the 2-entry table: file 1 is LRU and sealed to the region.
	now = c.InstallKey(now, group, 2, fileKey(2))
	now = c.InstallKey(now, group, 3, fileKey(3))

	// Touch the evicted file's line: table miss, region hit, refill — which
	// in turn evicts file 2 (the LRU of the now-full table).
	_, now = c.ReadLine(now, pa)

	type want struct {
		typ  journal.Type
		file uint16
	}
	wants := []want{
		{journal.OTTOpen, 1},
		{journal.OTTOpen, 2},
		{journal.OTTEvict, 1},
		{journal.OTTOpen, 3},
		{journal.OTTEvict, 2},
		{journal.OTTRefill, 1},
	}
	evs := jrn.Events()
	if len(evs) != len(wants) {
		t.Fatalf("events after OTT workload: got %d (%+v), want %d", len(evs), evs, len(wants))
	}
	for i, w := range wants {
		e := evs[i]
		if e.Seq != uint64(i) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i)
		}
		if e.Type != w.typ || e.Group != group || e.File != w.file {
			t.Errorf("event %d: got %s group=%d file=%d, want %s group=%d file=%d",
				i, e.Type, e.Group, e.File, w.typ, group, w.file)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Errorf("cycles regress at event %d: %d after %d", i, evs[i].Cycle, evs[i-1].Cycle)
		}
	}
	if evs[len(evs)-1].Cycle == 0 {
		t.Error("refill event carries no simulated-cycle timestamp")
	}

	// Write the same line until its 7-bit minor counters wrap: the memory
	// counter overflows first within the write (MECB is handled before
	// FECB), each overflow pairing with its page re-encryption.
	base := jrn.Emitted()
	for i := 0; i < 127; i++ {
		now = c.WriteLine(now, pa, lineOf(byte(i)))
	}
	evs = jrn.Events()[base:]
	page := pa.LineAlign().PageNum()
	overflow := []struct {
		typ    journal.Type
		detail string
	}{
		{journal.CounterOverflow, "mem"},
		{journal.PageReencryptMem, ""},
		{journal.CounterOverflow, "file"},
		{journal.PageReencryptFile, ""},
	}
	if len(evs) != len(overflow) {
		t.Fatalf("events after overflow writes: got %d (%+v), want %d", len(evs), evs, len(overflow))
	}
	for i, w := range overflow {
		e := evs[i]
		if e.Type != w.typ || e.Page != page || e.Detail != w.detail {
			t.Errorf("overflow event %d: got %s page=%d detail=%q, want %s page=%d detail=%q",
				i, e.Type, e.Page, e.Detail, w.typ, page, w.detail)
		}
		if e.Cycle == 0 {
			t.Errorf("overflow event %d (%s) carries no timestamp", i, e.Type)
		}
	}
	if evs[3].File != 1 || evs[3].Group != group {
		t.Errorf("file re-encryption names group=%d file=%d, want group=%d file=1",
			evs[3].Group, evs[3].File, group)
	}
}

// TestJournalDFMismatch deletes a file's key and touches a line still
// DF-tagged to it: the journal must record the key-unavailable access.
func TestJournalDFMismatch(t *testing.T) {
	cfg := config.Default()
	c := New(cfg, Mode{MemEncryption: true, FileEncryption: true}, stats.NewSet())
	jrn := journal.New(0)
	c.AttachJournal(jrn)

	const group = 5
	pa := addr.Phys(0x80000).WithDF()
	now := c.InstallKey(0, group, 9, fileKey(9))
	now = c.TagPage(now, pa, group, 9)
	now = c.WriteLine(now, pa, lineOf(1))
	// Deleting the key leaves the page's DF tag stale: the next read finds
	// no tunnel on chip or in the region.
	now = c.RemoveKey(now, group, 9)
	base := jrn.Emitted()

	_, _ = c.ReadLine(now, pa)
	evs := jrn.Events()[base:]
	var hit bool
	for _, e := range evs {
		if e.Type == journal.DFMismatch {
			hit = true
			if e.Group != group || e.File != 9 {
				t.Errorf("df_mismatch names group=%d file=%d, want group=%d file=9", e.Group, e.File, group)
			}
			if e.Cycle == 0 {
				t.Error("df_mismatch carries no timestamp")
			}
		}
	}
	if !hit {
		t.Fatalf("no df_mismatch event after locked DF read; got %+v", evs)
	}
}
