package memctrl

import (
	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/ott"
)

// lookupKey resolves the file key for (group, file), first in the on-chip
// OTT (20-cycle parallel search) and then in the encrypted OTT region in
// memory (hashed bucket fetch + unseal with the OTT key). A region hit
// refills the OTT. Returns the key, the time it is available, and whether
// it was found at all.
func (c *Controller) lookupKey(now config.Cycle, group uint32, file uint16) (aesctr.Key, config.Cycle, bool) {
	ready := now + c.cfg.Security.OTTLookupLatency
	if key, ok := c.ottTable.Lookup(group, file); ok {
		c.st.Inc("mc.ott_hits")
		c.tKeyLookup.Observe(uint64(ready - now))
		return key, ready, true
	}
	c.st.Inc("mc.ott_misses")
	entry, bucket, found := c.ottRegion.Lookup(group, file)
	// The bucket fetch goes through the metadata cache like other
	// controller-owned metadata.
	ready = c.fetchMeta(ready, ottBucketAddr(bucket), ottLeaf(bucket), c.ottBucketContent(bucket))
	// Unsealing costs two AES block traversals plus the hashed-index math.
	ready += 2*c.cfg.Security.AESLatency + c.cfg.Security.OTTRegionLatencyExtra
	c.span("ott", "region_probe", uint64(now), uint64(ready))
	c.tKeyLookup.Observe(uint64(ready - now))
	if !found {
		return aesctr.Key{}, ready, false
	}
	c.installOTT(ready, entry, true)
	return entry.Key, ready, true
}

// installOTT inserts an entry into the on-chip OTT, sealing any evicted
// victim into the encrypted OTT region. refill marks an entry restored
// from the region (journalled as ott_refill) as opposed to a fresh tunnel
// open.
func (c *Controller) installOTT(now config.Cycle, e ott.Entry, refill bool) {
	c.noteCycle(now)
	var victim ott.Entry
	var evicted bool
	if refill {
		victim, evicted = c.ottTable.Refill(e)
	} else {
		victim, evicted = c.ottTable.Insert(e)
	}
	if !evicted {
		return
	}
	c.st.Inc("mc.ott_evictions")
	bucket := c.ottRegion.Store(victim)
	// Background write of the sealed record + Merkle update over the
	// region (§VI: the Merkle tree also covers the encrypted OTT region).
	c.PCM.Access(now, addr.Phys(ottBucketAddr(bucket)), true)
	c.st.Inc("mc.meta_writebacks")
	c.updateOTTLeaf(bucket)
}

func (c *Controller) updateOTTLeaf(bucket int) {
	content := c.ottBucketContent(bucket)
	if content == nil {
		// An emptied bucket must hash exactly like an untouched one, or a
		// post-crash tree rebuild (which skips empty buckets) would
		// produce a different root.
		content = make([]byte, config.LineSize)
	}
	c.mt.Update(ottLeaf(bucket), content)
}

// InstallKey is the MMIO operation the kernel performs at file creation
// (§III-F1): it hands (GroupID, FileID, file key) to the controller, which
// stores it in the OTT. Following §III-H (crash consistency, option 1),
// the new entry is also logged immediately to the sealed OTT region — key
// installs happen only at file creation, so the write-through is
// insignificant, and it makes file keys durable across crashes even
// without backup power. Returns the completion time.
func (c *Controller) InstallKey(now config.Cycle, group uint32, file uint16, key aesctr.Key) config.Cycle {
	if !c.mode.FileEncryption {
		return now
	}
	c.noteCycle(now)
	c.st.Inc("mc.key_installs")
	c.aud.Append(uint64(now), audit.OpKeyInstall, 0, group, file)
	e := ott.Entry{Group: group, File: file, Key: key}
	c.installOTT(now, e, false)
	bucket := c.ottRegion.Store(e)
	c.PCM.Access(now, addr.Phys(ottBucketAddr(bucket)), true)
	c.updateOTTLeaf(bucket)
	return now + c.cfg.Security.OTTLookupLatency
}

// RemoveKey is the MMIO operation performed at file deletion: the key is
// removed from both the OTT and the encrypted OTT region.
func (c *Controller) RemoveKey(now config.Cycle, group uint32, file uint16) config.Cycle {
	if !c.mode.FileEncryption {
		return now
	}
	c.noteCycle(now)
	c.st.Inc("mc.key_removals")
	c.aud.Append(uint64(now), audit.OpKeyRemove, 0, group, file)
	c.ottTable.Remove(group, file)
	if bucket, removed := c.ottRegion.Remove(group, file); removed {
		c.PCM.Access(now, addr.Phys(ottBucketAddr(bucket)), true)
		c.updateOTTLeaf(bucket)
	}
	return now + c.cfg.Security.OTTLookupLatency
}

// VerifyKey checks whether the key derived from a user's passphrase matches
// what was stored in the OTT for (group, file). The kernel uses this to
// deny opens with a wrong passphrase even when permission bits would allow
// access (§VI, "Protecting Files from Accidental Permission Changes").
func (c *Controller) VerifyKey(group uint32, file uint16, key aesctr.Key) bool {
	if !c.mode.FileEncryption {
		return true
	}
	if k, ok := c.ottTable.Lookup(group, file); ok {
		return k == key
	}
	if e, _, ok := c.ottRegion.Lookup(group, file); ok {
		return e.Key == key
	}
	return false
}

// TagPage is the MMIO operation performed during a DAX page fault
// (§III-F1): the kernel sends the file's inode number and group ID, and the
// controller records them in the page's FECB (updating the cached copy and
// flagging it dirty if present). Returns the completion time.
func (c *Controller) TagPage(now config.Cycle, pa addr.Phys, group uint32, file uint16) config.Cycle {
	if !c.fileActive() {
		return now
	}
	c.noteCycle(now)
	c.st.Inc("mc.page_tags")
	page := pa.PageNum()
	c.aud.Append(uint64(now), audit.OpMap, page, group, file)
	fecb, ready := c.fetchFECB(now, page)
	if fecb.GroupID == group && fecb.FileID == file {
		return ready
	}
	fecb.GroupID = group
	fecb.FileID = file
	ready = c.touchDirtyCounter(ready, fecbAddr(page), fecbLeaf(page), c.encFECB(fecb))
	// Identity tagging is rare (page faults only); persist it immediately
	// so recovery never has to guess file identities.
	c.PCM.Access(ready, addr.Phys(fecbAddr(page)), true)
	c.mcacheFor(fecbAddr(page)).Clean(fecbAddr(page))
	c.persistCounterAt(fecbAddr(page))
	return ready
}

// ShredPage implements Silent-Shredder-style secure deletion (§VI): the
// page's file encryption counters are reset and its identity cleared, so
// the old ciphertext can never be decrypted again — even by a process that
// still holds the correct file key — without writing the page even once.
func (c *Controller) ShredPage(now config.Cycle, pa addr.Phys) config.Cycle {
	if !c.mode.FileEncryption {
		return now
	}
	c.noteCycle(now)
	c.st.Inc("mc.page_shreds")
	page := pa.PageNum()
	fecb, ready := c.fetchFECB(now, page)
	c.aud.Append(uint64(now), audit.OpShred, page, fecb.GroupID, fecb.FileID)
	fecb.Reset()
	ready = c.touchDirtyCounter(ready, fecbAddr(page), fecbLeaf(page), c.encFECB(fecb))
	c.PCM.Access(ready, addr.Phys(fecbAddr(page)), true)
	c.mcacheFor(fecbAddr(page)).Clean(fecbAddr(page))
	c.persistCounterAt(fecbAddr(page))
	// The page's data is dead: its ECC tags no longer correspond to any
	// recoverable plaintext, so they are dropped — which also means the
	// page's memory counters can no longer be reconstructed from data.
	// Persist the MECB now (shredding is rare) so recovery never needs to.
	c.PCM.Access(ready, addr.Phys(mecbAddr(page)), true)
	c.mcacheFor(mecbAddr(page)).Clean(mecbAddr(page))
	c.persistCounterAt(mecbAddr(page))
	base := pa.PageAlign()
	for li := 0; li < config.LinesPerPage; li++ {
		delete(c.ecc, (base + addr.Phys(li*config.LineSize)).LineNum())
	}
	return ready
}
