package memctrl

import (
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
)

// Datapath hot-path benchmarks in full FsEncr mode (memory encryption +
// file encryption, so every access pays both OTPs and the dual XOR).
// These are the reproducible before/after numbers for the XOR/OTP/ecc-tag
// fast-path: run with `go test -bench 'ReadLine|WriteLine' ./internal/memctrl`.

var benchSink aesctr.Line

// benchFsEncrController boots a controller with one encrypted file spread
// over a few tagged pages and every line written once, so benchmark
// accesses hit the steady-state path (counters cached, OTT hit, no
// compulsory work).
func benchFsEncrController() (*Controller, []addr.Phys) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	c.InstallKey(0, 7, 7, fileKey(7))
	const pages = 8
	base := addr.Phys(0x100000).WithDF()
	las := make([]addr.Phys, 0, pages*config.LinesPerPage)
	for p := 0; p < pages; p++ {
		pa := base + addr.Phys(p*config.PageSize)
		c.TagPage(0, pa, 7, 7)
		for li := 0; li < config.LinesPerPage; li++ {
			la := pa + addr.Phys(li*config.LineSize)
			c.WriteLine(0, la, lineOf(byte(li)))
			las = append(las, la)
		}
	}
	return c, las
}

func BenchmarkReadLine(b *testing.B) {
	c, las := benchFsEncrController()
	b.ReportAllocs()
	b.ResetTimer()
	now := config.Cycle(0)
	for i := 0; i < b.N; i++ {
		benchSink, _ = c.ReadLine(now, las[i%len(las)])
		now += 200
	}
}

func BenchmarkWriteLine(b *testing.B) {
	c, las := benchFsEncrController()
	line := lineOf(3)
	b.ReportAllocs()
	b.ResetTimer()
	now := config.Cycle(0)
	for i := 0; i < b.N; i++ {
		c.WriteLine(now, las[i%len(las)], line)
		now += 200
	}
}

var benchPageSink aesctr.Page

// BenchmarkReadPage and BenchmarkWritePage are the batched datapath's
// numbers against 64x BenchmarkReadLine/BenchmarkWriteLine: one counter
// fetch, one key lookup, and one Merkle-leaf touch per 4 KB instead of 64.
// Both must stay allocation-free — the page scratch lives on the
// controller.
func BenchmarkReadPage(b *testing.B) {
	c, las := benchFsEncrController()
	const pages = 8
	b.ReportAllocs()
	b.ResetTimer()
	now := config.Cycle(0)
	for i := 0; i < b.N; i++ {
		c.ReadPageInto(now, las[(i%pages)*config.LinesPerPage], &benchPageSink)
		now += 200
	}
}

func BenchmarkWritePage(b *testing.B) {
	c, las := benchFsEncrController()
	const pages = 8
	var page aesctr.Page
	for i := range page {
		page[i] = byte(i * 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := config.Cycle(0)
	for i := 0; i < b.N; i++ {
		c.WritePage(now, las[(i%pages)*config.LinesPerPage], &page)
		now += 200
	}
}

// BenchmarkWriteLineSeqPage writes the 64 lines of a single page in
// sequence — the write-back tree's best case: all 64 counter-block updates
// dirty the same Merkle leaf, so the entire page's path propagation
// collapses into one recompute at the next observation point.
func BenchmarkWriteLineSeqPage(b *testing.B) {
	c, las := benchFsEncrController()
	line := lineOf(5)
	b.ReportAllocs()
	b.ResetTimer()
	now := config.Cycle(0)
	for i := 0; i < b.N; i++ {
		c.WriteLine(now, las[i%config.LinesPerPage], line)
		now += 200
	}
}
