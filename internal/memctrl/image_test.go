package memctrl

import (
	"bytes"
	"encoding/gob"
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/stats"
)

// buildImageSource writes file and non-file traffic into a controller with
// a fixed chip sequence and returns it.
func buildImageSource(t *testing.T, seq uint64) *Controller {
	t.Helper()
	cfg := config.Default()
	mode := Mode{MemEncryption: true, FileEncryption: true}
	c := NewWithChipSeq(cfg, mode, stats.NewSet(), seq)
	key := aesctr.Key{1, 2, 3, 4}
	c.InstallKey(0, 7, 3, key)
	now := config.Cycle(0)
	var line aesctr.Line
	for i := 0; i < 64; i++ {
		for j := range line {
			line[j] = byte(i + j)
		}
		pa := addr.Phys(i * config.LineSize)
		now = c.WriteLine(now, pa, line)
	}
	// File lines through the DF datapath for page 2.
	now = c.TagPage(now, addr.Phys(2*config.PageSize), 7, 3)
	for i := 0; i < 8; i++ {
		for j := range line {
			line[j] = byte(0xa0 + i + j)
		}
		pa := (addr.Phys(2*config.PageSize + i*config.LineSize)).WithDF()
		now = c.WriteLine(now, pa, line)
	}
	// ExportImage mutates nothing; sealing the OTT is the exporter's job.
	c.FlushOTT()
	return c
}

// TestImageRoundTrip exports an image, ships it through gob (the wire
// form), imports it into a fresh controller with the same chip sequence,
// and checks plaintext and root equivalence plus the recovery gate.
func TestImageRoundTrip(t *testing.T) {
	const seq = 4242
	src := buildImageSource(t, seq)
	img, err := src.ExportImage()
	if err != nil {
		t.Fatalf("export: %v", err)
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var wire Image
	if err := gob.NewDecoder(&buf).Decode(&wire); err != nil {
		t.Fatalf("gob decode: %v", err)
	}

	cfg := config.Default()
	mode := Mode{MemEncryption: true, FileEncryption: true}
	dst := NewWithChipSeq(cfg, mode, stats.NewSet(), seq)
	if err := dst.ImportImage(&wire); err != nil {
		t.Fatalf("import: %v", err)
	}
	if dst.MerkleRoot() != src.MerkleRoot() {
		t.Fatalf("root mismatch after import")
	}
	// Plaintext equivalence through the live datapath.
	pa := addr.Phys(3 * config.LineSize)
	want, _ := src.ReadLine(0, pa)
	got, _ := dst.ReadLine(0, pa)
	if want != got {
		t.Fatalf("plaintext mismatch after import: %x vs %x", want[:8], got[:8])
	}
	fpa := (addr.Phys(2 * config.PageSize)).WithDF()
	want, _ = src.ReadLine(0, fpa)
	got, _ = dst.ReadLine(0, fpa)
	if want != got {
		t.Fatalf("file plaintext mismatch after import: %x vs %x", want[:8], got[:8])
	}

	// The non-destructive cutover gate must pass on the wire image.
	if err := VerifyImage(cfg, mode, &wire); err != nil {
		t.Fatalf("VerifyImage: %v", err)
	}
}

// TestImageRejectsWrongChip checks an image cannot rehydrate under
// different processor keys.
func TestImageRejectsWrongChip(t *testing.T) {
	src := buildImageSource(t, 777)
	img, err := src.ExportImage()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	cfg := config.Default()
	mode := Mode{MemEncryption: true, FileEncryption: true}
	dst := NewWithChipSeq(cfg, mode, stats.NewSet(), 778)
	if err := dst.ImportImage(img); err == nil {
		t.Fatalf("import under a different chip seq must be rejected")
	}
}
