package memctrl

import (
	"errors"
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/stats"
)

// writeMany dirties several lines over several pages with multiple versions
// so unpersisted counter increments exist in the metadata cache at crash
// time.
func writeMany(c *Controller, base addr.Phys, pages, versions int) {
	for v := 0; v < versions; v++ {
		for p := 0; p < pages; p++ {
			for li := 0; li < 4; li++ {
				pa := base + addr.Phys(p*config.PageSize+li*config.LineSize)
				c.WriteLine(0, pa, lineOf(byte(v*16+p*4+li)))
			}
		}
	}
}

func TestCrashRecoveryMemoryOnly(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	writeMany(c, 0x200000, 3, 3)
	c.Crash(false)
	if err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := c.VerifyRecovery(); err != nil {
		t.Fatalf("recovery mismatch: %v", err)
	}
	// Data must decrypt correctly post-recovery.
	got, _ := c.ReadLine(0, addr.Phys(0x200000))
	if got != lineOf(2*16) {
		t.Fatalf("post-recovery read wrong: %v", got[0])
	}
}

func TestCrashRecoveryWithFiles(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	c.InstallKey(0, 11, 11, fileKey(11))
	base := addr.Phys(0x300000).WithDF()
	c.TagPage(0, base, 11, 11)
	c.TagPage(0, base+config.PageSize, 11, 11)
	writeMany(c, base, 2, 3)
	c.Crash(true) // backup power flushes the OTT to the sealed region
	if err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := c.VerifyRecovery(); err != nil {
		t.Fatalf("recovery mismatch: %v", err)
	}
	got, _ := c.ReadLine(0, base)
	if got != lineOf(2*16) {
		t.Fatal("file data wrong after recovery")
	}
}

func TestCrashWithoutBackupLosesOTTButRegionSurvives(t *testing.T) {
	cfg := config.Default()
	cfg.Security.OTTBanks = 1
	cfg.Security.OTTEntriesPerBank = 2
	c := New(cfg, Mode{MemEncryption: true, FileEncryption: true}, stats.NewSet())
	// Three keys: one spills to the region pre-crash.
	for i := uint16(1); i <= 3; i++ {
		c.InstallKey(0, 1, i, fileKey(byte(i)))
	}
	c.Crash(false)
	if c.OTT().Len() != 0 {
		t.Fatal("OTT survived a crash without backup power")
	}
	// The spilled key survives in the sealed region.
	if c.OTTRegion().Len() == 0 {
		t.Fatal("sealed region lost")
	}
	if err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
}

func TestRecoverWithoutCrashErrors(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	if err := c.Recover(); err == nil {
		t.Fatal("Recover without Crash succeeded")
	}
}

func TestRecoveryRespectStopLoss(t *testing.T) {
	// With stop-loss N, at most N unpersisted bumps can exist per block;
	// recovery searches exactly that window. Write more versions than the
	// stop-loss bound and verify recovery still succeeds (intermediate
	// persists must have happened).
	cfg := config.Default()
	cfg.Security.StopLoss = 3
	c := New(cfg, Mode{MemEncryption: true}, stats.NewSet())
	pa := addr.Phys(0x400000)
	for v := 0; v < 20; v++ {
		c.WriteLine(0, pa, lineOf(byte(v)))
	}
	if c.Stats().Get("mc.stoploss_persists") == 0 {
		t.Fatal("stop-loss never persisted")
	}
	c.Crash(false)
	if err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, _ := c.ReadLine(0, pa)
	if got != lineOf(19) {
		t.Fatal("latest version lost")
	}
}

func TestRecoveryDetectsNVMTampering(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	pa := addr.Phys(0x500000)
	c.WriteLine(0, pa, lineOf(1))
	c.Crash(false)
	// Attacker flips ciphertext bits while power is out.
	raw := c.PCM.ReadLine(pa.Raw())
	raw[0] ^= 0xFF
	c.PCM.WriteLine(pa.Raw(), raw)
	err := c.Recover()
	if err == nil {
		t.Fatal("recovery accepted tampered ciphertext")
	}
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCrashConsistencyAcrossOverflow(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	pa := addr.Phys(0x600000)
	for v := 0; v <= config.MinorCounterMax+5; v++ {
		c.WriteLine(0, pa, lineOf(byte(v)))
	}
	c.Crash(false)
	if err := c.Recover(); err != nil {
		t.Fatalf("recover across overflow: %v", err)
	}
	got, _ := c.ReadLine(0, pa)
	if got != lineOf(byte(config.MinorCounterMax+5)) {
		t.Fatal("wrong data after overflow + crash")
	}
}

func TestShredThenCrashRecovers(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0x700000).WithDF()
	c.InstallKey(0, 12, 12, fileKey(12))
	c.TagPage(0, pa, 12, 12)
	c.WriteLine(0, pa, lineOf(1))
	c.ShredPage(0, pa)
	c.Crash(true)
	if err := c.Recover(); err != nil {
		t.Fatalf("recover after shred: %v", err)
	}
}

func TestCrashWhileTreeDirtyRecovers(t *testing.T) {
	// Power dies while the Bonsai tree still has unpropagated leaf updates:
	// the crash snapshot must flush them into the processor-resident root,
	// and Osiris recovery must regenerate a tree matching that root.
	c := newMC(Mode{MemEncryption: true})
	writeMany(c, 0x800000, 2, 2)
	if c.mt.Dirty() == 0 {
		t.Fatal("tree already clean; the scenario is vacuous")
	}
	c.Crash(false)
	if err := c.Recover(); err != nil {
		t.Fatalf("recover with dirty tree at crash: %v", err)
	}
	if err := c.VerifyRecovery(); err != nil {
		t.Fatalf("recovery mismatch: %v", err)
	}
	got, _ := c.ReadLine(0, addr.Phys(0x800000))
	if got != lineOf(1*16) {
		t.Fatal("post-recovery read wrong")
	}
}
