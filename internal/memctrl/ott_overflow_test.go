package memctrl

import (
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/stats"
	"fsencr/internal/telemetry"
)

// snapCounter reads one telemetry counter out of a fresh snapshot.
func snapCounter(reg *telemetry.Registry, name string) uint64 {
	return reg.Snapshot().Counters[name]
}

// TestOTTOverflowEvictsAndRefills drives the OTT overflow path end to end
// with a deliberately tiny on-chip table: the third key install evicts the
// LRU entry into the encrypted OTT region, a later access to the evicted
// file's page misses the table, probes the region, and refills the table,
// after which the next access hits on chip again. The region probe counts
// are asserted through the telemetry counters.
func TestOTTOverflowEvictsAndRefills(t *testing.T) {
	cfg := config.Default()
	cfg.Security.OTTBanks = 1
	cfg.Security.OTTEntriesPerBank = 2
	c := New(cfg, Mode{MemEncryption: true, FileEncryption: true}, stats.NewSet())
	reg := telemetry.New()
	c.Instrument(reg)

	const group = 3
	pa := addr.Phys(0x40000).WithDF()
	now := c.InstallKey(0, group, 1, fileKey(1))
	now = c.TagPage(now, pa, group, 1)
	now = c.WriteLine(now, pa, lineOf(7))

	// Fill the 2-entry table past capacity: file 1 is LRU and is sealed
	// into the encrypted region.
	now = c.InstallKey(now, group, 2, fileKey(2))
	now = c.InstallKey(now, group, 3, fileKey(3))

	if got := snapCounter(reg, "ott.table_evictions"); got != 1 {
		t.Fatalf("evictions after overflow: got %d, want 1", got)
	}
	// Every install writes through to the region (3) plus the sealed
	// eviction victim (1).
	if got := snapCounter(reg, "ott.region_stores"); got != 4 {
		t.Fatalf("region stores: got %d, want 4", got)
	}

	// Reading the evicted file's line must miss on chip, probe the
	// region, hit there, and refill the table.
	probes := snapCounter(reg, "ott.region_probes")
	hits := snapCounter(reg, "ott.region_probe_hits")
	got, now := c.ReadLine(now, pa)
	if got != lineOf(7) {
		t.Fatal("refilled key failed to decrypt the evicted file's line")
	}
	if d := snapCounter(reg, "ott.region_probes") - probes; d != 1 {
		t.Fatalf("region probes on evicted lookup: got +%d, want +1", d)
	}
	if d := snapCounter(reg, "ott.region_probe_hits") - hits; d != 1 {
		t.Fatalf("region probe hits on evicted lookup: got +%d, want +1", d)
	}

	// The refill put file 1 back on chip: the next read resolves there
	// without touching the region again.
	probes = snapCounter(reg, "ott.region_probes")
	tableHits := snapCounter(reg, "ott.table_hits")
	if got, _ = c.ReadLine(now, pa); got != lineOf(7) {
		t.Fatal("second read after refill failed")
	}
	if d := snapCounter(reg, "ott.region_probes") - probes; d != 0 {
		t.Fatalf("region probed after refill: got +%d, want +0", d)
	}
	if d := snapCounter(reg, "ott.table_hits") - tableHits; d == 0 {
		t.Fatal("refilled entry did not hit the on-chip table")
	}
}
