package memctrl

import (
	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/counters"
)

// fetchMeta models bringing one metadata line (counter block or OTT bucket)
// into the metadata cache: on a hit the block is available after the
// metadata cache latency; on a miss the block is fetched from PCM and its
// integrity verified through the Bonsai Merkle tree, walking up until a
// cached (trusted) node is found. Returns the time the block is usable.
func (c *Controller) fetchMeta(now config.Cycle, metaAddr uint64, leaf int, content []byte) config.Cycle {
	if c.mcacheFor(metaAddr).Lookup(metaAddr, false) {
		c.st.Inc("mc.meta_hits")
		return now + c.cfg.Security.MetadataCacheLatency
	}
	c.st.Inc("mc.meta_misses")
	ready := c.PCM.Access(now, addr.Phys(metaAddr), false)
	c.st.Inc("mc.meta_reads")

	// Integrity verification: recompute the leaf MAC and walk up the tree
	// until a node already cached on-chip (trusted) terminates the walk.
	if content != nil {
		if !c.mt.Verify(leaf, content) {
			c.violations++
			c.st.Inc("mc.integrity_violations")
		}
		ready += c.cfg.Security.MACLatency
		walked := uint64(0)
		c.mtPath = c.mt.AppendPathNodes(c.mtPath[:0], leaf)
		for _, n := range c.mtPath {
			na := mtNodeAddr(n)
			if c.mcacheFor(na).Lookup(na, false) {
				c.st.Inc("mc.mt_hits")
				break
			}
			c.st.Inc("mc.mt_misses")
			walked++
			ready = c.PCM.Access(ready, addr.Phys(na), false) + c.cfg.Security.MACLatency
			c.st.Inc("mc.meta_reads")
			c.insertMeta(ready, na, false)
		}
		c.tBMTWalk.Observe(walked)
	}
	c.insertMeta(ready, metaAddr, false)
	c.tMetaFetch.Observe(uint64(ready - now))
	return ready
}

// insertMeta fills a metadata line into the metadata cache, writing back
// any dirty victim (which persists the victim's counter block).
func (c *Controller) insertMeta(now config.Cycle, metaAddr uint64, dirty bool) {
	victim, evicted := c.mcacheFor(metaAddr).Insert(metaAddr, dirty)
	if !evicted || !victim.Dirty {
		return
	}
	// Dirty metadata eviction: the block is written back to NVM. The write
	// happens in the background (it occupies a bank but nobody waits on it).
	c.PCM.Access(now, addr.Phys(victim.LineAddr), true)
	c.st.Inc("mc.meta_writebacks")
	c.persistCounterAt(victim.LineAddr)
}

// persistCounterAt records that the counter block at metaAddr now has its
// current value durable in NVM (used by crash recovery).
func (c *Controller) persistCounterAt(metaAddr uint64) {
	if metaAddr < MetaBase || metaAddr >= MTBase {
		return // MT nodes and OTT buckets are reconstructible
	}
	idx := (metaAddr - MetaBase) / config.LineSize
	page := idx / 2
	if idx%2 == 0 {
		if m, ok := c.mecb[page]; ok {
			c.persistedMECB[page] = *m
		}
	} else {
		if f, ok := c.fecb[page]; ok {
			c.persistedFECB[page] = *f
		}
	}
	delete(c.unpersisted, metaAddr)
}

// getMECB returns the current MECB for page, creating it on first touch.
func (c *Controller) getMECB(page uint64) *counters.MECB {
	m, ok := c.mecb[page]
	if !ok {
		m = &counters.MECB{}
		c.mecb[page] = m
		// A fresh block's zero value is implicitly durable.
		c.persistedMECB[page] = *m
		c.mt.Update(mecbLeaf(page), c.encMECB(m))
	}
	return m
}

// getFECB returns the current FECB for page, creating it on first touch.
func (c *Controller) getFECB(page uint64) *counters.FECB {
	f, ok := c.fecb[page]
	if !ok {
		f = &counters.FECB{}
		c.fecb[page] = f
		c.persistedFECB[page] = *f
		c.mt.Update(fecbLeaf(page), c.encFECB(f))
	}
	return f
}

// encMECB serializes a MECB into the controller's scratch line. The
// returned slice is valid until the next enc call; every consumer (leaf
// hash, MAC verify) reads it synchronously.
func (c *Controller) encMECB(m *counters.MECB) []byte {
	m.EncodeInto(&c.encScratch)
	return c.encScratch[:]
}

// encFECB is encMECB for file counter blocks.
func (c *Controller) encFECB(f *counters.FECB) []byte {
	f.MustEncodeInto(&c.encScratch)
	return c.encScratch[:]
}

// fetchMECB makes page's MECB available to the datapath and returns when.
func (c *Controller) fetchMECB(now config.Cycle, page uint64) (*counters.MECB, config.Cycle) {
	m := c.getMECB(page)
	ready := c.fetchMeta(now, mecbAddr(page), mecbLeaf(page), c.encMECB(m))
	return m, ready
}

// fetchFECB makes page's FECB available to the datapath and returns when.
func (c *Controller) fetchFECB(now config.Cycle, page uint64) (*counters.FECB, config.Cycle) {
	f := c.getFECB(page)
	ready := c.fetchMeta(now, fecbAddr(page), fecbLeaf(page), c.encFECB(f))
	return f, ready
}

// touchDirtyCounter marks a counter block dirty in the metadata cache after
// a bump, updates the Merkle tree, and enforces the Osiris stop-loss bound:
// after StopLoss unpersisted bumps the block is written through to NVM so
// crash recovery only ever needs to search a bounded counter window.
func (c *Controller) touchDirtyCounter(now config.Cycle, metaAddr uint64, leaf int, content []byte) config.Cycle {
	c.mcacheFor(metaAddr).Lookup(metaAddr, true) // mark dirty (present: just fetched)
	c.insertMeta(now, metaAddr, true)
	c.mt.Update(leaf, content)
	// Merkle path nodes become dirty in the metadata cache as well.
	c.mtPath = c.mt.AppendPathNodes(c.mtPath[:0], leaf)
	for _, n := range c.mtPath {
		c.insertMeta(now, mtNodeAddr(n), true)
	}
	c.unpersisted[metaAddr]++
	if c.unpersisted[metaAddr] >= c.cfg.Security.StopLoss {
		// Stop-loss write-through (background write; bank time accounted).
		c.PCM.Access(now, addr.Phys(metaAddr), true)
		c.st.Inc("mc.stoploss_persists")
		c.mcacheFor(metaAddr).Clean(metaAddr)
		c.persistCounterAt(metaAddr)
	}
	return now + c.cfg.Security.MACLatency // MT MAC update
}

// persistCounterNow writes a counter block through to NVM immediately
// (background bank occupancy, no caller stall) and records it durable.
func (c *Controller) persistCounterNow(now config.Cycle, metaAddr uint64) {
	c.PCM.Access(now, addr.Phys(metaAddr), true)
	c.mcacheFor(metaAddr).Clean(metaAddr)
	c.persistCounterAt(metaAddr)
}

// merkle helpers used by recovery. Unlike the datapath's scratch encoders,
// the leaves map retains every slice until Rebuild consumes it, so each
// block gets its own freshly allocated encoding here.
func (c *Controller) rebuildTreeFromCounters() {
	leaves := make(map[int][]byte, 2*len(c.mecb)+c.ottRegionLeafCount())
	for page, m := range c.mecb {
		b := m.Encode()
		leaves[mecbLeaf(page)] = b[:]
	}
	for page, f := range c.fecb {
		b := f.MustEncode()
		leaves[fecbLeaf(page)] = b[:]
	}
	c.addOTTLeaves(leaves)
	c.mt.Rebuild(leaves)
}

func (c *Controller) ottRegionLeafCount() int {
	if c.ottRegion == nil {
		return 0
	}
	return c.ottRegion.Len()
}

// addOTTLeaves folds the sealed OTT region contents into the Merkle leaf
// set so the tree also protects the encrypted OTT region (§VI).
func (c *Controller) addOTTLeaves(leaves map[int][]byte) {
	if c.ottRegion == nil {
		return
	}
	for b := 0; b < c.ottRegion.Buckets(); b++ {
		content := c.ottBucketContent(b)
		if content != nil {
			leaves[ottLeaf(b)] = content
		}
	}
}

// ottBucketContent serializes a bucket's sealed records for MAC purposes.
func (c *Controller) ottBucketContent(bucket int) []byte {
	recs := c.ottRegion.BucketRecords(bucket)
	if len(recs) == 0 {
		return nil
	}
	out := make([]byte, 0, len(recs)*len(recs[0]))
	for _, r := range recs {
		out = append(out, r[:]...)
	}
	return out
}
