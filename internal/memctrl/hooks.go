package memctrl

// Attack/test hooks. These model an attacker with physical access to the
// NVM DIMM: reading raw ciphertext, and tampering with metadata behind the
// controller's back. They exist so the security properties claimed in the
// paper (Table I, §VI) are demonstrable, not just asserted.

import (
	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
)

// RawLine returns the ciphertext bytes an attacker scanning the physical
// DIMM would see for the line containing pa.
func (c *Controller) RawLine(pa addr.Phys) aesctr.Line {
	return c.PCM.ReadLine(pa.LineAlign().Raw())
}

// DecryptWithMemoryKeyOnly models an attacker (or an alien OS boot) that
// has compromised the general memory-encryption key but not the file keys:
// it strips the memory OTP from the stored ciphertext. For non-file lines
// the result is the plaintext; for DAX-file lines it is still wrapped in
// the file OTP.
func (c *Controller) DecryptWithMemoryKeyOnly(pa addr.Phys) aesctr.Line {
	la := pa.LineAlign()
	cipher := c.PCM.ReadLine(la.Raw())
	if !c.mode.MemEncryption {
		return cipher
	}
	page := la.PageNum()
	li := la.LineInPage()
	m := c.getMECB(page)
	return aesctr.XOR(cipher, c.memEngine.OTP(memIV(page, li, m.Major, m.Minor[li])))
}

// TamperFECB flips a bit in a page's file counter block behind the Merkle
// tree's back, as a physical attacker rewriting the metadata region would.
// The next fetch of that block must raise an integrity violation.
func (c *Controller) TamperFECB(pa addr.Phys) {
	f := c.getFECB(pa.PageNum())
	f.Minor[0] ^= 1
	// Deliberately no mt.Update: that is the attack.
	c.evictMeta(fecbAddr(pa.PageNum()))
}

// TamperMECB is TamperFECB for the memory counter block.
func (c *Controller) TamperMECB(pa addr.Phys) {
	m := c.getMECB(pa.PageNum())
	m.Minor[0] ^= 1
	c.evictMeta(mecbAddr(pa.PageNum()))
}

// evictMeta drops a metadata line from the metadata cache so the next
// access re-fetches (and re-verifies) it from memory.
func (c *Controller) evictMeta(metaAddr uint64) {
	if c.metaCache != nil {
		c.mcacheFor(metaAddr).Invalidate(metaAddr)
	}
}

// CountersForPage returns copies of the page's current counter blocks (for
// white-box tests).
func (c *Controller) CountersForPage(page uint64) (mecbMajor uint64, mecbMinor [config.LinesPerPage]uint8, fecbGroup uint32, fecbFile uint16) {
	if m, ok := c.mecb[page]; ok {
		mecbMajor = m.Major
		mecbMinor = m.Minor
	}
	if f, ok := c.fecb[page]; ok {
		fecbGroup = f.GroupID
		fecbFile = f.FileID
	}
	return
}
