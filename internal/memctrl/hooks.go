package memctrl

// Attack/test hooks. These model an attacker with physical access to the
// NVM DIMM: reading raw ciphertext, and tampering with metadata behind the
// controller's back. They exist so the security properties claimed in the
// paper (Table I, §VI) are demonstrable, not just asserted.

import (
	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/counters"
)

// RawLine returns the ciphertext bytes an attacker scanning the physical
// DIMM would see for the line containing pa.
func (c *Controller) RawLine(pa addr.Phys) aesctr.Line {
	return c.PCM.ReadLine(pa.LineAlign().Raw())
}

// DecryptWithMemoryKeyOnly models an attacker (or an alien OS boot) that
// has compromised the general memory-encryption key but not the file keys:
// it strips the memory OTP from the stored ciphertext. For non-file lines
// the result is the plaintext; for DAX-file lines it is still wrapped in
// the file OTP.
func (c *Controller) DecryptWithMemoryKeyOnly(pa addr.Phys) aesctr.Line {
	la := pa.LineAlign()
	cipher := c.PCM.ReadLine(la.Raw())
	if !c.mode.MemEncryption {
		return cipher
	}
	page := la.PageNum()
	li := la.LineInPage()
	m := c.getMECB(page)
	return aesctr.XOR(cipher, c.memEngine.OTP(memIV(page, li, m.Major, m.Minor[li])))
}

// TamperFECB flips a bit in a page's file counter block behind the Merkle
// tree's back, as a physical attacker rewriting the metadata region would.
// The next fetch of that block must raise an integrity violation.
func (c *Controller) TamperFECB(pa addr.Phys) {
	f := c.getFECB(pa.PageNum())
	f.Minor[0] ^= 1
	// Deliberately no mt.Update: that is the attack.
	c.evictMeta(fecbAddr(pa.PageNum()))
}

// TamperMECB is TamperFECB for the memory counter block.
func (c *Controller) TamperMECB(pa addr.Phys) {
	m := c.getMECB(pa.PageNum())
	m.Minor[0] ^= 1
	c.evictMeta(mecbAddr(pa.PageNum()))
}

// evictMeta drops a metadata line from the metadata cache so the next
// access re-fetches (and re-verifies) it from memory.
func (c *Controller) evictMeta(metaAddr uint64) {
	if c.metaCache != nil {
		c.mcacheFor(metaAddr).Invalidate(metaAddr)
	}
}

// FlipMECBBit flips an arbitrary bit of a page's encoded memory counter
// block behind the Merkle tree's back (the chaos engine's generalization
// of TamperMECB: any of the 512 stored bits, not just minor[0]'s LSB).
// The encoding is bijective, so re-encoding on the next fetch reproduces
// the tampered bytes and Verify must fail. Self-inverse: flipping the same
// bit again restores the block.
func (c *Controller) FlipMECBBit(page uint64, bit int) {
	m := c.getMECB(page)
	var b counters.Block
	m.EncodeInto(&b)
	bit %= len(b) * 8
	b[bit/8] ^= 1 << (bit % 8)
	*m = counters.DecodeMECB(b)
	c.evictMeta(mecbAddr(page))
}

// FlipFECBBit is FlipMECBBit for the file counter block.
func (c *Controller) FlipFECBBit(page uint64, bit int) {
	f := c.getFECB(page)
	var b counters.Block
	f.MustEncodeInto(&b)
	bit %= len(b) * 8
	b[bit/8] ^= 1 << (bit % 8)
	*f = counters.DecodeFECB(b)
	c.evictMeta(fecbAddr(page))
}

// FlipDataBit flips one bit of the stored ciphertext of the line
// containing pa, as bit rot or a physical attacker would. The next
// decrypting read must flag the line via its ECC check tag. Self-inverse.
func (c *Controller) FlipDataBit(pa addr.Phys, bit int) {
	raw := pa.LineAlign().Raw()
	line := c.PCM.ReadLine(raw)
	bit %= config.LineSize * 8
	line[bit/8] ^= 1 << (bit % 8)
	c.PCM.WriteLine(raw, line)
}

// TearLine models a torn NVM write: the first half of the stored line is
// replaced (bitwise inverted) while the second half keeps the old
// contents — the state a crash mid-line-program leaves behind. Detected
// like any multi-bit corruption by the ECC check tag. Self-inverse.
func (c *Controller) TearLine(pa addr.Phys) {
	raw := pa.LineAlign().Raw()
	line := c.PCM.ReadLine(raw)
	for i := 0; i < config.LineSize/2; i++ {
		line[i] ^= 0xFF
	}
	c.PCM.WriteLine(raw, line)
}

// TamperOTTRecord flips one bit of the first sealed record in the OTT
// region bucket holding (group, file), evicts the on-chip OTT entry and
// the bucket's metadata-cache line, so the next key lookup must probe the
// tampered region through the Merkle-verified fetch path. Returns false
// if no sealed record exists for the bucket. Call again with the same
// arguments to restore the record.
func (c *Controller) TamperOTTRecord(group uint32, file uint16, bit int) bool {
	if c.ottRegion == nil {
		return false
	}
	bucket := c.ottRegion.Bucket(group, file)
	if !c.ottRegion.FlipBit(bucket, 0, bit) {
		return false
	}
	c.ottTable.Remove(group, file)
	c.evictMeta(ottBucketAddr(bucket))
	return true
}

// CountersForPage returns copies of the page's current counter blocks (for
// white-box tests).
func (c *Controller) CountersForPage(page uint64) (mecbMajor uint64, mecbMinor [config.LinesPerPage]uint8, fecbGroup uint32, fecbFile uint16) {
	if m, ok := c.mecb[page]; ok {
		mecbMajor = m.Major
		mecbMinor = m.Minor
	}
	if f, ok := c.fecb[page]; ok {
		fecbGroup = f.GroupID
		fecbFile = f.FileID
	}
	return
}
