package memctrl

import (
	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/audit"
	"fsencr/internal/config"
)

// This file is the batched page-granularity datapath: WritePage and
// ReadPage move a whole 4 KB page through the controller in one call,
// producing byte-identical NVM contents and identical security state
// (counters, Merkle tree, Osiris persistence, ECC tags, journal) to 64
// line-granularity calls, while paying the per-page costs — counter-block
// fetch, key lookup, AES key schedule, Merkle-leaf MAC update — once
// instead of 64 times. Timing-wise the 64 line accesses are issued as one
// burst so the PCM bank stripe drains them in parallel.

// pageOverflowPending reports whether any line's minor counter sits at the
// overflow boundary in a counter domain the write will bump.
func (c *Controller) pageOverflowPending(page uint64, isFile bool) bool {
	m := c.getMECB(page)
	for _, v := range m.Minor {
		if v == config.MinorCounterMax {
			return true
		}
	}
	if isFile {
		f := c.getFECB(page)
		for _, v := range f.Minor {
			if v == config.MinorCounterMax {
				return true
			}
		}
	}
	return false
}

// writePageByLines is the page write's slow path: 64 chained WriteLine
// calls. Used when a minor counter will overflow mid-page, because the
// whole-page re-encryption must happen at exactly the overflowing line's
// turn for batched and sequential writes to stay state-identical.
func (c *Controller) writePageByLines(now config.Cycle, base addr.Phys, plain *aesctr.Page) config.Cycle {
	t := now
	var line aesctr.Line
	for li := 0; li < config.LinesPerPage; li++ {
		copy(line[:], plain[li*config.LineSize:(li+1)*config.LineSize])
		t = c.WriteLine(t, base+addr.Phys(li*config.LineSize), line)
	}
	return t
}

// touchDirtyCounterBatch coalesces the 64 per-line counter touches of a
// page write into one metadata-cache and Merkle-leaf update while
// reproducing the exact Osiris stop-loss schedule of 64 sequential
// touchDirtyCounter calls: the same number of write-throughs, a persisted
// snapshot taken at the same (possibly mid-page) bump, and the same
// residual unpersisted count. content must be the block's encoding after
// all 64 bumps. Returns the counter-ready time and the index of the last
// line whose bump crossed the stop-loss boundary (-1 if none persisted);
// the caller reconstructs the mid-page snapshot from it.
func (c *Controller) touchDirtyCounterBatch(now config.Cycle, metaAddr uint64, leaf int, content []byte) (config.Cycle, int) {
	c.mcacheFor(metaAddr).Lookup(metaAddr, true) // mark dirty (present: just fetched)
	c.insertMeta(now, metaAddr, true)
	c.mt.Update(leaf, content)
	c.mtPath = c.mt.AppendPathNodes(c.mtPath[:0], leaf)
	for _, n := range c.mtPath {
		c.insertMeta(now, mtNodeAddr(n), true)
	}

	// Replay the stop-loss arithmetic of 64 consecutive bumps without the
	// 64 map round-trips: starting from the current unpersisted count, a
	// write-through fires every StopLoss-th bump.
	u := c.unpersisted[metaAddr]
	stopLoss := c.cfg.Security.StopLoss
	persists := 0
	lastBumped := -1
	for li := 0; li < config.LinesPerPage; li++ {
		u++
		if u >= stopLoss {
			u = 0
			persists++
			lastBumped = li
		}
	}
	ready := now + c.cfg.Security.MACLatency // one MT MAC update for the batch
	for i := 0; i < persists; i++ {
		c.PCM.Access(ready, addr.Phys(metaAddr), true)
	}
	if persists > 0 {
		c.st.Add("mc.stoploss_persists", uint64(persists))
	}
	if u == 0 {
		c.mcacheFor(metaAddr).Clean(metaAddr)
		delete(c.unpersisted, metaAddr)
	} else {
		c.unpersisted[metaAddr] = u
	}
	return ready, lastBumped
}

// issuePageWrites claims one persistence-domain slot per line (the burst's
// accept rate), schedules the 64 bank writes with per-line data-ready
// times, and posts their completions to the write queue. Line li's write
// may start once its slot is claimed and its data (pad pipeline) is ready
// at dataReady0+li. Returns the last accept time — the page store
// sequence's ADR point.
func (c *Controller) issuePageWrites(now, firstAccept config.Cycle, raw addr.Phys, dataReady0 config.Cycle) config.Cycle {
	accept := firstAccept
	for li := 0; li < config.LinesPerPage; li++ {
		if li > 0 {
			accept = c.acceptSlot(accept)
		}
		start := dataReady0 + config.Cycle(li)
		if accept > start {
			start = accept
		}
		c.pageStartScratch[li] = start
	}
	c.PCM.AccessPage(now, raw, true, &c.pageStartScratch, &c.pageDoneScratch)
	c.writeQueue = append(c.writeQueue, c.pageDoneScratch[:]...)
	c.tWriteAccept.Observe(uint64(accept - now))
	return accept
}

// WritePage services a full-page store (page-cache write-back, DAX page
// copy) arriving at time now, carrying plaintext plain. It is functionally
// and security-state equivalent to 64 chained WriteLine calls over the
// page's lines, but fetches counter blocks, resolves the file key,
// updates the Merkle leaf, and checks overflow once per page. Returns the
// time the last line is accepted into the persistence domain.
func (c *Controller) WritePage(now config.Cycle, pa addr.Phys, plain *aesctr.Page) (done config.Cycle) {
	if ts := c.trace; ts.Active() {
		ts.Enter()
		defer func() { ts.Exit("memctrl", "write_page", uint64(now), uint64(done), 0) }()
	}
	c.noteCycle(now)
	base := pa.PageAlign()
	raw := base.Raw()
	isFile := base.IsDF() && c.fileActive()

	// Rare mid-page minor-counter overflow: re-encryption must interleave
	// at the overflowing line's turn, so take the sequential path.
	if c.mode.MemEncryption && c.pageOverflowPending(base.PageNum(), isFile) {
		return c.writePageByLines(now, base, plain)
	}

	c.st.Add("mc.writes", config.LinesPerPage)
	c.retireWrites(now)
	accepted := c.acceptSlot(now)

	if !c.mode.MemEncryption {
		c.PCM.WritePageFrom(raw, plain)
		return c.issuePageWrites(now, accepted, raw, accepted)
	}

	page := base.PageNum()
	mecb, ctrReady := c.fetchMECB(accepted, page)
	// No overflow possible (pre-checked), so all 64 bumps are plain
	// minor-counter increments; the Merkle leaf gets the post-bump block.
	for li := 0; li < config.LinesPerPage; li++ {
		mecb.Bump(li)
	}
	ctrReady, lastBumped := c.touchDirtyCounterBatch(ctrReady, mecbAddr(page), mecbLeaf(page), c.encMECB(mecb))
	if lastBumped >= 0 {
		// The Osiris snapshot was taken mid-batch: lines after lastBumped
		// had not been bumped yet when the write-through fired.
		snap := *mecb
		for li := lastBumped + 1; li < config.LinesPerPage; li++ {
			snap.Minor[li]--
		}
		c.persistedMECB[page] = snap
	}
	pad := &c.pagePadScratch
	c.memEngine.OTPPageInto(pad, page, mecb.Major, &mecb.Minor, aesctr.DomainMemory)
	// The page's OTPs pipeline through the AES engine: line 0's pad after
	// one traversal, each following line one cycle behind.
	otpReady0 := ctrReady + c.memEngine.Latency()
	xors := config.Cycle(1)

	if isFile {
		fecb, fReady := c.fetchFECB(accepted, page)
		c.auditPage(fReady, audit.OpWritePage, page, fecb.GroupID, fecb.FileID)
		for li := 0; li < config.LinesPerPage; li++ {
			fecb.Bump(li)
		}
		fReady, fLastBumped := c.touchDirtyCounterBatch(fReady, fecbAddr(page), fecbLeaf(page), c.encFECB(fecb))
		if fLastBumped >= 0 {
			snap := *fecb
			for li := fLastBumped + 1; li < config.LinesPerPage; li++ {
				snap.Minor[li]--
			}
			c.persistedFECB[page] = snap
		}
		key, kReady, ok := c.lookupKey(fReady, fecb.GroupID, fecb.FileID)
		if ok {
			filePad := &c.pageFilePadScratch
			c.engineFor(key).OTPPageInto(filePad, page, uint64(fecb.Major), &fecb.Minor, aesctr.DomainFile)
			aesctr.XORPageInto(pad, filePad)
			if r := kReady + c.cfg.Security.AESLatency; r > otpReady0 {
				otpReady0 = r
			}
			xors++
		} else {
			c.st.Add("mc.key_unavailable", config.LinesPerPage)
			for li := 0; li < config.LinesPerPage; li++ {
				c.journalDFMismatch(kReady, page, fecb.GroupID, fecb.FileID)
			}
		}
	}

	// Osiris check tags over the plaintext, taken before encryption.
	lineNum := base.LineNum()
	for li := 0; li < config.LinesPerPage; li++ {
		c.ecc[lineNum+uint64(li)] = eccTag((*aesctr.Line)(plain[li*config.LineSize : (li+1)*config.LineSize]))
	}
	// Encrypt into the pad buffer (pad ^= plain), leaving the caller's
	// plaintext untouched, and land the ciphertext page in one store.
	aesctr.XORPageInto(pad, plain)
	c.PCM.WritePageFrom(raw, pad)
	return c.issuePageWrites(now, accepted, raw, otpReady0+xors*c.cfg.Security.XORLatency)
}

// ReadPageInto services a full-page fetch (page-cache fill, DAX page read)
// into dst, returning the completion time. Equivalent plaintext to 64
// ReadLine calls, with the counter fetch, key lookup, and OTP template
// setup paid once; the PCM side issues all 64 line reads as one burst.
func (c *Controller) ReadPageInto(now config.Cycle, pa addr.Phys, dst *aesctr.Page) (done config.Cycle) {
	if ts := c.trace; ts.Active() {
		ts.Enter()
		defer func() { ts.Exit("memctrl", "read_page", uint64(now), uint64(done), 0) }()
	}
	c.noteCycle(now)
	base := pa.PageAlign()
	raw := base.Raw()
	c.st.Add("mc.reads", config.LinesPerPage)
	c.PCM.ReadPageInto(raw, dst)

	if !c.mode.MemEncryption {
		return c.PCM.AccessPage(now, raw, false, nil, nil)
	}

	page := base.PageNum()
	dataDone := c.PCM.AccessPage(now, raw, false, nil, nil)

	mecb, ctrReady := c.fetchMECB(now, page)
	pad := &c.pagePadScratch
	c.memEngine.OTPPageInto(pad, page, mecb.Major, &mecb.Minor, aesctr.DomainMemory)
	// Pipelined OTP generation: the last line's pad trails the first by
	// one engine issue slot per line.
	otpReady := ctrReady + c.memEngine.Latency() + config.Cycle(config.LinesPerPage-1)
	xors := config.Cycle(1)
	padComplete := true

	if base.IsDF() && c.fileActive() {
		fecb, fReady := c.fetchFECB(now, page)
		c.auditPage(fReady, audit.OpReadPage, page, fecb.GroupID, fecb.FileID)
		key, kReady, ok := c.lookupKey(fReady, fecb.GroupID, fecb.FileID)
		if ok {
			filePad := &c.pageFilePadScratch
			c.engineFor(key).OTPPageInto(filePad, page, uint64(fecb.Major), &fecb.Minor, aesctr.DomainFile)
			aesctr.XORPageInto(pad, filePad)
			if r := kReady + c.cfg.Security.AESLatency + config.Cycle(config.LinesPerPage-1); r > otpReady {
				otpReady = r
			}
			xors++
		} else {
			c.st.Add("mc.key_unavailable", config.LinesPerPage)
			for li := 0; li < config.LinesPerPage; li++ {
				c.journalDFMismatch(kReady, page, fecb.GroupID, fecb.FileID)
			}
			padComplete = false
		}
	} else if base.IsDF() && c.mode.FileEncryption {
		padComplete = false // locked datapath: file pad skipped
	}

	done = maxCycle(dataDone, otpReady) + xors*c.cfg.Security.XORLatency
	c.tReadCycles.Observe(uint64(done - now))
	aesctr.XORPageInto(dst, pad)
	if padComplete {
		lineNum := base.LineNum()
		for li := 0; li < config.LinesPerPage; li++ {
			c.checkECC(done, lineNum+uint64(li), page, li,
				(*aesctr.Line)(dst[li*config.LineSize:(li+1)*config.LineSize]))
		}
	}
	return done
}

// ReadPage is ReadPageInto returning the page by value; the zero-copy
// service path hands ReadPageInto its own pooled buffer instead.
func (c *Controller) ReadPage(now config.Cycle, pa addr.Phys) (aesctr.Page, config.Cycle) {
	var p aesctr.Page
	done := c.ReadPageInto(now, pa, &p)
	return p, done
}
