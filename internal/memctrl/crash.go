package memctrl

import (
	"errors"
	"fmt"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/counters"
)

// Crash simulates a power loss at the memory controller (§III-H): all
// volatile state — the metadata cache and any counter updates that were not
// yet persisted under the Osiris stop-loss discipline — is lost. If
// backupPower is true, the small (2 KB) OTT is flushed to the encrypted OTT
// region before power dies, as modern persistent processors do for their
// buffers; otherwise its entries are lost (keys must be re-derived from
// passphrases by the OS and re-installed).
//
// The Merkle root and the keys sealed in the processor survive (they are
// modelled as persistent processor registers/fuses).
func (c *Controller) Crash(backupPower bool) {
	if !c.mode.MemEncryption {
		return
	}
	c.crashed = true
	c.clearMetaCaches()
	if c.ottTable != nil {
		if backupPower {
			for _, e := range c.ottTable.Entries() {
				bucket := c.ottRegion.Store(e)
				c.updateOTTLeaf(bucket)
			}
		}
		c.ottTable.Clear()
	}
	// The in-Go "current" counter maps model state whose most recent
	// increments lived only in the (now dead) metadata cache. Roll every
	// counter block back to its last persisted value; Recover must
	// reconstruct the rest from the ECC tags.
	c.preCrashMECB = c.mecb
	c.preCrashFECB = c.fecb
	c.preCrashRoot = c.mt.Root()
	c.mecb = make(map[uint64]*counters.MECB, len(c.persistedMECB))
	for page, m := range c.persistedMECB {
		mm := m
		c.mecb[page] = &mm
	}
	c.fecb = make(map[uint64]*counters.FECB, len(c.persistedFECB))
	for page, f := range c.persistedFECB {
		ff := f
		c.fecb[page] = &ff
	}
	c.unpersisted = make(map[uint64]int)
}

// ErrUnrecoverable reports that Osiris recovery failed for some line.
var ErrUnrecoverable = errors.New("memctrl: counter recovery failed")

// Recover runs Osiris recovery (§II-D, §III-H): for every written line, it
// searches the bounded window of counter candidates allowed by the
// stop-loss discipline, decrypting the NVM ciphertext with each candidate
// and accepting the one whose plaintext matches the line's ECC tag. The
// Merkle tree is then regenerated from the recovered counters and checked
// against the processor-resident root.
func (c *Controller) Recover() error {
	if !c.mode.MemEncryption {
		return nil
	}
	if !c.crashed {
		return errors.New("memctrl: Recover without Crash")
	}
	window := c.cfg.Security.StopLoss
	for lineNum, tag := range c.ecc {
		la := addr.Phys(lineNum * config.LineSize)
		page := la.PageNum()
		li := la.LineInPage()
		mecb, ok := c.mecb[page]
		if !ok {
			return fmt.Errorf("%w: no persisted MECB for page %d", ErrUnrecoverable, page)
		}
		fecb := c.fecb[page] // nil for never-tagged pages
		cipher := c.PCM.ReadLine(la)

		var fileEng *aesctr.Engine
		isFile := false
		if c.mode.FileEncryption && fecb != nil && (fecb.GroupID != 0 || fecb.FileID != 0) {
			if e, _, found := c.ottRegion.Lookup(fecb.GroupID, fecb.FileID); found {
				fileEng = c.engineFor(e.Key)
				isFile = true
			} else if k, found := c.ottTable.Lookup(fecb.GroupID, fecb.FileID); found {
				fileEng = c.engineFor(k)
				isFile = true
			}
		}

		found := false
		var memPad, filePad, plain aesctr.Line
	search:
		for dm := 0; dm <= window; dm++ {
			mMinor := int(mecb.Minor[li]) + dm
			if mMinor > config.MinorCounterMax {
				break // overflows are persisted eagerly; no wrap to search
			}
			c.memEngine.OTPInto(&memPad, memIV(page, li, mecb.Major, uint8(mMinor)))
			fileWindow := 0
			if isFile {
				fileWindow = window
			}
			for df := 0; df <= fileWindow; df++ {
				var fMinor int
				plain = cipher
				aesctr.XORInto(&plain, &memPad)
				if isFile {
					fMinor = int(fecb.Minor[li]) + df
					if fMinor > config.MinorCounterMax {
						break
					}
					fileEng.OTPInto(&filePad, fileIV(page, li, fecb.Major, uint8(fMinor)))
					aesctr.XORInto(&plain, &filePad)
				}
				if eccTag(&plain) == tag {
					mecb.Minor[li] = uint8(mMinor)
					if isFile {
						fecb.Minor[li] = uint8(fMinor)
					}
					found = true
					break search
				}
			}
		}
		if !found {
			return fmt.Errorf("%w: line %#x", ErrUnrecoverable, uint64(la))
		}
		c.st.Inc("mc.recovered_lines")
	}

	// Regenerate the tree and verify against the processor-held root.
	c.rebuildTreeFromCounters()
	if c.mt.Root() != c.preCrashRoot {
		return fmt.Errorf("memctrl: recovered Merkle root mismatch (tampering or unrecoverable counters)")
	}
	// Recovered counters are now, by construction, durable.
	for page, m := range c.mecb {
		c.persistedMECB[page] = *m
	}
	for page, f := range c.fecb {
		c.persistedFECB[page] = *f
	}
	c.crashed = false
	return nil
}

// VerifyRecovery checks (for tests) that recovery reproduced the exact
// pre-crash counter state. It returns a descriptive error on mismatch.
func (c *Controller) VerifyRecovery() error {
	for page, want := range c.preCrashMECB {
		got, ok := c.mecb[page]
		if !ok {
			return fmt.Errorf("memctrl: page %d MECB missing after recovery", page)
		}
		if *got != *want {
			return fmt.Errorf("memctrl: page %d MECB mismatch after recovery", page)
		}
	}
	for page, want := range c.preCrashFECB {
		got, ok := c.fecb[page]
		if !ok {
			return fmt.Errorf("memctrl: page %d FECB missing after recovery", page)
		}
		if *got != *want {
			return fmt.Errorf("memctrl: page %d FECB mismatch after recovery", page)
		}
	}
	return nil
}
