package memctrl

import (
	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// Instrument attaches a telemetry registry to the controller and to every
// structure it owns (PCM, OTT table + region, Merkle tree). A nil registry
// detaches everything; all handles degrade to no-ops, which is the
// compiled-out configuration.
func (c *Controller) Instrument(reg *telemetry.Registry) {
	c.tel = reg
	c.trace = reg.Scope()
	c.tReadCycles = reg.Histogram("mc.read_cycles")
	c.tWriteAccept = reg.Histogram("mc.write_accept_cycles")
	c.tMetaFetch = reg.Histogram("mc.meta_fetch_cycles")
	c.tBMTWalk = reg.Histogram("mc.bmt_walk_depth")
	c.tKeyLookup = reg.Histogram("mc.key_lookup_cycles")

	c.PCM.Instrument(reg)
	if c.ottTable != nil {
		c.ottTable.Instrument(reg)
	}
	if c.ottRegion != nil {
		c.ottRegion.Instrument(reg)
	}
	if c.mt != nil {
		c.mt.Instrument(reg)
	}
	if c.aud != nil {
		c.aud.Instrument(reg)
	}
}

// span records a controller-side span; no-op when uninstrumented. The
// controller has no notion of which core issued a request, so its spans run
// on tid 0.
func (c *Controller) span(cat, name string, start, end uint64) {
	c.tel.Span(cat, name, start, end, 0)
}

// AttachJournal attaches a security-event journal to the controller and to
// the clock-less structures it owns (OTT table, Merkle tree), which stamp
// their events with the controller's in-flight request cycle. A nil
// journal detaches everything; every emit degrades to one predictable
// branch, which is the compiled-out configuration the overhead guard
// measures.
func (c *Controller) AttachJournal(j *journal.Journal) {
	c.jrn = j
	clock := func() uint64 { return c.jcycle }
	if c.ottTable != nil {
		c.ottTable.AttachJournal(j, clock)
	}
	if c.mt != nil {
		c.mt.AttachJournal(j, clock)
	}
}

// Journal returns the attached security-event journal (nil when detached).
func (c *Controller) Journal() *journal.Journal { return c.jrn }

// EnableAudit turns on the FOX-style tamper-evident audit plane: a
// hash-chained log of page-granularity file accesses, written through to
// the reserved device region at AuditBase (capacity <= 0 uses the audit
// package default). Idempotent; returns the log. While disabled (the
// default), every audit hook on the datapath costs one predictable branch
// — the audit overhead guard pins this.
func (c *Controller) EnableAudit(capacity int) *audit.Log {
	if c.aud == nil {
		c.aud = audit.New(c.PCM, AuditBase, capacity)
		c.aud.Instrument(c.tel)
	}
	return c.aud
}

// Audit returns the audit log (nil when disabled).
func (c *Controller) Audit() *audit.Log { return c.aud }

// auditPage emits one access-audit record for a page-path operation.
func (c *Controller) auditPage(now config.Cycle, op audit.Op, page uint64, group uint32, file uint16) {
	c.aud.Append(uint64(now), op, page, group, file)
}

// noteCycle records the simulated cycle of the request entering the
// datapath, so journal events emitted from clock-less owned structures
// carry a meaningful timestamp. One plain store; the field is only read
// from the simulation goroutine.
func (c *Controller) noteCycle(now config.Cycle) { c.jcycle = uint64(now) }
