package memctrl

import (
	"encoding/binary"
	"strconv"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/counters"
	"fsencr/internal/obsplane/journal"
)

// ReadLine services a last-level-cache miss for the line containing pa,
// arriving at the controller at time now. It returns the plaintext line and
// the completion time (Figure 7, read operation).
func (c *Controller) ReadLine(now config.Cycle, pa addr.Phys) (aesctr.Line, config.Cycle) {
	c.noteCycle(now)
	la := pa.LineAlign()
	raw := la.Raw()
	cipher := c.PCM.ReadLine(raw)
	c.st.Inc("mc.reads")

	if !c.mode.MemEncryption {
		return cipher, c.PCM.Access(now, raw, false)
	}

	// Data array access and counter fetch proceed in parallel (CTR mode
	// hides OTP generation under the array access when counters hit).
	dataDone := c.PCM.Access(now, raw, false)
	page := la.PageNum()
	li := la.LineInPage()

	mecb, ctrReady := c.fetchMECB(now, page)
	pad := &c.padScratch
	c.memEngine.OTPInto(pad, memIV(page, li, mecb.Major, mecb.Minor[li]))
	otpReady := ctrReady + c.memEngine.Latency()
	xors := 1
	// padComplete: the decrypt applied every pad component the data was
	// written under, so the plaintext is checkable against its ECC tag. A
	// DF line whose file pad could not be applied (missing key, locked
	// datapath) deliberately decrypts to garbage and must not be flagged.
	padComplete := true

	if la.IsDF() && c.fileActive() {
		fecb, fReady := c.fetchFECB(now, page)
		key, kReady, ok := c.lookupKey(fReady, fecb.GroupID, fecb.FileID)
		if ok {
			filePad := &c.filePadScratch
			c.engineFor(key).OTPInto(filePad, fileIV(page, li, fecb.Major, fecb.Minor[li]))
			aesctr.XORInto(pad, filePad)
			fileOTPReady := kReady + c.cfg.Security.AESLatency
			if fileOTPReady > otpReady {
				otpReady = fileOTPReady
			}
			xors++
		} else {
			// No key available (deleted file or locked datapath): the line
			// decrypts with the memory pad only, yielding unintelligible
			// bytes — exactly the §VI guarantee.
			c.st.Inc("mc.key_unavailable")
			c.journalDFMismatch(kReady, page, fecb.GroupID, fecb.FileID)
			padComplete = false
		}
	} else if la.IsDF() && c.mode.FileEncryption {
		padComplete = false // locked datapath: file pad skipped
	}

	done := maxCycle(dataDone, otpReady) + config.Cycle(xors)*c.cfg.Security.XORLatency
	c.tReadCycles.Observe(uint64(done - now))
	aesctr.XORInto(&cipher, pad)
	if padComplete {
		c.checkECC(done, la.LineNum(), page, li, &cipher)
	}
	return cipher, done
}

// checkECC verifies a decrypted line against the Osiris check tag stored in
// its ECC bits. A mismatch means the ciphertext at rest was corrupted or
// tampered with (bit rot, torn write, physical attacker) — the plaintext
// the caller is about to receive is garbage, and silently returning it
// would defeat the integrity story, so the event is counted and journalled
// like a Merkle verification failure. Lines without a tag (never written,
// or shredded) and the post-crash pre-recovery window (counters are rolled
// back by design) are skipped.
func (c *Controller) checkECC(now config.Cycle, lineNum, page uint64, li int, plain *aesctr.Line) {
	if c.crashed {
		return
	}
	tag, ok := c.ecc[lineNum]
	if !ok || eccTag(plain) == tag {
		return
	}
	c.violations++
	c.st.Inc("mc.data_ecc_errors")
	c.jrn.Emit(journal.Event{Cycle: uint64(now), Type: journal.DataECCError,
		Page: page, Detail: "line " + strconv.Itoa(li)})
}

// WriteLine services a dirty writeback (or flush) of the line containing
// pa, carrying plaintext plain. It returns the time the write is accepted
// into the controller's persistence domain — the point an SFENCE may
// proceed past (ADR semantics). Encryption, counter updates, and the PCM
// array write continue in the background (Figure 7, write operation),
// applying backpressure only when the write queue fills.
func (c *Controller) WriteLine(now config.Cycle, pa addr.Phys, plain aesctr.Line) config.Cycle {
	c.noteCycle(now)
	la := pa.LineAlign()
	raw := la.Raw()
	c.st.Inc("mc.writes")
	accepted := c.acceptWrite(now)

	if !c.mode.MemEncryption {
		c.PCM.WriteLine(raw, plain)
		done := c.PCM.Access(accepted, raw, true)
		c.writeQueue = append(c.writeQueue, done)
		return accepted
	}

	page := la.PageNum()
	li := la.LineInPage()

	mecb, ctrReady := c.fetchMECB(accepted, page)
	// Minor-counter overflow forces a whole-page re-encryption under the
	// incremented major counter before this write can proceed.
	overflowed := mecb.Minor[li] == config.MinorCounterMax
	if overflowed {
		ctrReady = c.reencryptPageMem(ctrReady, page, li)
	} else {
		mecb.Bump(li)
	}
	ctrReady = c.touchDirtyCounter(ctrReady, mecbAddr(page), mecbLeaf(page), c.encMECB(mecb))
	if overflowed {
		// Major bumps are persisted eagerly so the Osiris recovery window
		// never has to search across a counter wrap (§III-H).
		c.persistCounterNow(ctrReady, mecbAddr(page))
	}
	pad := &c.padScratch
	c.memEngine.OTPInto(pad, memIV(page, li, mecb.Major, mecb.Minor[li]))
	otpReady := ctrReady + c.memEngine.Latency()
	xors := 1

	isFile := la.IsDF() && c.fileActive()
	if isFile {
		fecb, fReady := c.fetchFECB(accepted, page)
		fileOverflowed := fecb.Minor[li] == config.MinorCounterMax
		if fileOverflowed {
			fReady = c.reencryptPageFile(fReady, page, li)
		} else {
			fecb.Bump(li)
		}
		fReady = c.touchDirtyCounter(fReady, fecbAddr(page), fecbLeaf(page), c.encFECB(fecb))
		if fileOverflowed {
			c.persistCounterNow(fReady, fecbAddr(page))
		}
		key, kReady, ok := c.lookupKey(fReady, fecb.GroupID, fecb.FileID)
		if ok {
			filePad := &c.filePadScratch
			c.engineFor(key).OTPInto(filePad, fileIV(page, li, fecb.Major, fecb.Minor[li]))
			aesctr.XORInto(pad, filePad)
			if r := kReady + c.cfg.Security.AESLatency; r > otpReady {
				otpReady = r
			}
			xors++
		} else {
			c.st.Inc("mc.key_unavailable")
			c.journalDFMismatch(kReady, page, fecb.GroupID, fecb.FileID)
		}
	}

	// Osiris: the line's ECC bits carry a check tag over the plaintext, so
	// the counter used for this write is recoverable after a crash. Taken
	// before the in-place encryption below consumes the plaintext.
	tag := eccTag(&plain)
	aesctr.XORInto(&plain, pad)
	writeStart := otpReady + config.Cycle(xors)*c.cfg.Security.XORLatency
	done := c.PCM.Access(writeStart, raw, true)
	c.PCM.WriteLine(raw, plain)
	c.writeQueue = append(c.writeQueue, done)
	c.ecc[la.LineNum()] = tag
	c.tWriteAccept.Observe(uint64(accepted - now))
	return accepted
}

// fileActive reports whether the file-encryption datapath should engage.
func (c *Controller) fileActive() bool {
	return c.mode.FileEncryption && !c.locked
}

// journalDFMismatch records a DF-tagged access whose file key could not be
// resolved: the DF bit promised a tunnel that is not open (deleted file,
// locked datapath, or a stale tag).
func (c *Controller) journalDFMismatch(now config.Cycle, page uint64, group uint32, file uint16) {
	c.jrn.Emit(journal.Event{Cycle: uint64(now), Type: journal.DFMismatch,
		Page: page, Group: group, File: file})
}

// reencryptPageMem handles a memory-side minor overflow on page: every line
// is read, stripped of its old memory OTP, and rewritten under the new
// major counter. Costs 64 reads + 64 writes of the page plus AES work.
func (c *Controller) reencryptPageMem(now config.Cycle, page uint64, bumpLine int) config.Cycle {
	c.st.Inc("mc.mem_reencryptions")
	m := c.mecb[page]
	old := *m
	r := m.Bump(bumpLine) // wraps: major++, minors reset, minor[bumpLine]=1
	counters.JournalBump(c.jrn, uint64(now), page, counters.DomainMem, r)
	done := c.reencryptLines(now, page, func(li int, oldPad, newPad *aesctr.Line) {
		c.memEngine.OTPInto(oldPad, memIV(page, li, old.Major, old.Minor[li]))
		c.memEngine.OTPInto(newPad, memIV(page, li, m.Major, m.Minor[li]))
	})
	c.span("memctrl", "reencrypt_mem", uint64(now), uint64(done))
	c.jrn.Emit(journal.Event{Cycle: uint64(now), Type: journal.PageReencryptMem, Page: page})
	return done
}

// reencryptPageFile handles a file-side minor overflow, analogous to
// reencryptPageMem but swapping only the file OTP component.
func (c *Controller) reencryptPageFile(now config.Cycle, page uint64, bumpLine int) config.Cycle {
	c.st.Inc("mc.file_reencryptions")
	f := c.fecb[page]
	old := *f
	r := f.Bump(bumpLine)
	counters.JournalBump(c.jrn, uint64(now), page, counters.DomainFile, r)
	key, _, ok := c.lookupKey(now, f.GroupID, f.FileID)
	if !ok {
		return now
	}
	eng := c.engineFor(key)
	done := c.reencryptLines(now, page, func(li int, oldPad, newPad *aesctr.Line) {
		eng.OTPInto(oldPad, fileIV(page, li, old.Major, old.Minor[li]))
		eng.OTPInto(newPad, fileIV(page, li, f.Major, f.Minor[li]))
	})
	c.span("memctrl", "reencrypt_file", uint64(now), uint64(done))
	c.jrn.Emit(journal.Event{Cycle: uint64(now), Type: journal.PageReencryptFile,
		Page: page, Group: f.GroupID, File: f.FileID})
	return done
}

// reencryptLines rewrites every line of page, swapping oldPad for newPad.
// The pads callback fills caller-owned buffers so the 64-line sweep works
// without any per-line Line copies.
func (c *Controller) reencryptLines(now config.Cycle, page uint64, pads func(li int, oldPad, newPad *aesctr.Line)) config.Cycle {
	t := now
	base := addr.Phys(page * config.PageSize)
	// The OTP buffers reuse the controller's line-op scratch (free here:
	// re-encryption happens before the caller touches padScratch), since
	// locals escape through the cipher.Block interface call.
	oldPad, newPad := &c.padScratch, &c.filePadScratch
	for li := 0; li < config.LinesPerPage; li++ {
		la := base + addr.Phys(li*config.LineSize)
		pads(li, oldPad, newPad)
		cipher := c.PCM.ReadLine(la)
		t = c.PCM.Access(t, la, false)
		aesctr.XORInto(&cipher, oldPad)
		aesctr.XORInto(&cipher, newPad)
		c.PCM.WriteLine(la, cipher)
		t = c.PCM.Access(t, la, true)
	}
	return t + 2*c.cfg.Security.AESLatency
}

func memIV(page uint64, li int, major uint64, minor uint8) aesctr.IV {
	return aesctr.IV{
		PageID:     page,
		LineInPage: uint8(li),
		Major:      major,
		Minor:      minor,
		Domain:     aesctr.DomainMemory,
	}
}

func fileIV(page uint64, li int, major uint32, minor uint8) aesctr.IV {
	return aesctr.IV{
		PageID:     page,
		LineInPage: uint8(li),
		Major:      uint64(major),
		Minor:      minor,
		Domain:     aesctr.DomainFile,
	}
}

// eccTag computes the Osiris check tag stored in a line's ECC bits: a
// 64-bit digest of the plaintext. After a crash, a candidate counter is
// correct exactly when decrypting with it reproduces a plaintext matching
// the tag.
//
// The tag models ECC bits, not a security boundary: integrity against an
// adversary comes from the Merkle tree over the counters, and the tag only
// lets recovery distinguish a handful of counter candidates (a wrong
// candidate yields effectively random plaintext, so 64 bits of a decent
// mixer are ample). It is therefore a word-wise FNV-1a variant with a
// final avalanche, not SHA-256 — the hash runs once per NVM write, and a
// cryptographic digest there cost more host time than the simulated write
// itself.
func eccTag(plain *aesctr.Line) uint64 {
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < config.LineSize; i += 8 {
		h ^= binary.LittleEndian.Uint64(plain[i : i+8])
		h *= prime64
	}
	// Final avalanche (splitmix64 tail) so low-byte differences reach every
	// tag bit.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func maxCycle(a, b config.Cycle) config.Cycle {
	if a > b {
		return a
	}
	return b
}
