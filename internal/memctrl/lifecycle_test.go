package memctrl

import (
	"errors"
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/config"
)

func TestRotateFileKeyPreservesPlaintext(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0x800000).WithDF()
	oldKey, newKey := fileKey(1), fileKey(2)
	c.InstallKey(0, 3, 3, oldKey)
	c.TagPage(0, pa, 3, 3)
	c.WriteLine(0, pa, lineOf(5))
	c.WriteLine(0, pa+64, lineOf(6))
	ctBefore := c.RawLine(pa)

	c.RotateFileKey(0, pa, 3, 3, oldKey, newKey)
	c.InstallKey(0, 3, 3, newKey)

	got, _ := c.ReadLine(0, pa)
	if got != lineOf(5) {
		t.Fatal("line 0 corrupted by rotation")
	}
	got, _ = c.ReadLine(0, pa+64)
	if got != lineOf(6) {
		t.Fatal("line 1 corrupted by rotation")
	}
	if c.RawLine(pa) == ctBefore {
		t.Fatal("ciphertext unchanged by rotation")
	}
	// Counters were reset.
	_, minors, _, _ := c.CountersForPage(pa.PageNum())
	_ = minors
	if c.IntegrityViolations() != 0 {
		t.Fatal("integrity violations during rotation")
	}
}

func TestRotateThenCrashRecovers(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0x900000).WithDF()
	oldKey, newKey := fileKey(3), fileKey(4)
	c.InstallKey(0, 4, 4, oldKey)
	c.TagPage(0, pa, 4, 4)
	for v := 0; v < 10; v++ {
		c.WriteLine(0, pa, lineOf(byte(v)))
	}
	c.RotateFileKey(0, pa, 4, 4, oldKey, newKey)
	c.InstallKey(0, 4, 4, newKey)
	c.WriteLine(0, pa, lineOf(99))
	c.Crash(true)
	if err := c.Recover(); err != nil {
		t.Fatalf("recover after rotation: %v", err)
	}
	got, _ := c.ReadLine(0, pa)
	if got != lineOf(99) {
		t.Fatal("post-rotation write lost across crash")
	}
}

func TestExportImport(t *testing.T) {
	src := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0xA00000).WithDF()
	src.InstallKey(0, 5, 5, fileKey(5))
	src.TagPage(0, pa, 5, 5)
	src.WriteLine(0, pa, lineOf(7))
	npa := addr.Phys(0xB00000)
	src.WriteLine(0, npa, lineOf(8))

	transport, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	dst := newMC(Mode{MemEncryption: true, FileEncryption: true})
	if err := dst.Import(transport); err != nil {
		t.Fatalf("import: %v", err)
	}
	got, _ := dst.ReadLine(0, pa)
	if got != lineOf(7) {
		t.Fatal("file line unreadable on destination machine")
	}
	got, _ = dst.ReadLine(0, npa)
	if got != lineOf(8) {
		t.Fatal("memory line unreadable on destination machine")
	}
	// Destination keeps working: new writes and key operations.
	dst.WriteLine(0, pa, lineOf(9))
	got, _ = dst.ReadLine(0, pa)
	if got != lineOf(9) {
		t.Fatal("destination writes broken after import")
	}
	if dst.IntegrityViolations() != 0 {
		t.Fatal("integrity violations after import")
	}
}

func TestImportRejectsTamperedModule(t *testing.T) {
	src := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0xC00000)
	src.WriteLine(0, pa, lineOf(1))
	transport, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	// Attacker swaps counter state in transit.
	for _, m := range transport.mecb {
		m.Minor[0] ^= 1
	}
	dst := newMC(Mode{MemEncryption: true, FileEncryption: true})
	if err := dst.Import(transport); !errors.Is(err, ErrTransportRejected) {
		t.Fatalf("tampered transport accepted: %v", err)
	}
}

func TestImportWithoutFileDatapathFails(t *testing.T) {
	src := newMC(Mode{MemEncryption: true, FileEncryption: true})
	transport, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	dst := newMC(Mode{MemEncryption: true})
	if err := dst.Import(transport); err == nil {
		t.Fatal("import into non-FsEncr controller succeeded")
	}
}

func TestDistinctControllersHaveDistinctKeys(t *testing.T) {
	a := newMC(Mode{MemEncryption: true})
	b := newMC(Mode{MemEncryption: true})
	pa := addr.Phys(0xD00000)
	a.WriteLine(0, pa, lineOf(1))
	b.WriteLine(0, pa, lineOf(1))
	if a.RawLine(pa) == b.RawLine(pa) {
		t.Fatal("two chips encrypted identically (shared fuses?)")
	}
	_ = config.Default()
}
