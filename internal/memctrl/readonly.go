package memctrl

import (
	"strconv"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/obsplane/journal"
)

// This file is the read-only snapshot entry point of the concurrent read
// fast-path: SnapshotReadPage decrypts one page without mutating any
// controller state, so reader goroutines can run it in parallel while the
// shard's owner goroutine is parked behind the shard's reader lock. All
// side effects the live datapath would have produced — stats, audit
// records, ECC-violation accounting — are captured in a ReadDelta the
// owner later applies under its own lock (ApplyReadDelta).
//
// The snapshot path is success-only: anything the live path would handle
// with a mutation (metadata-cache fill, OTT refill, first-touch counter
// creation side effects, journal emission, locked or crashed datapath)
// makes SnapshotReadPage return false, and the caller re-runs the read on
// the owner goroutine with full live semantics.

// Reader is one goroutine's private decrypt context: a forked memory
// engine (shared key schedule, private counter-block scratch), a local
// file-engine cache, and the page-sized OTP scratch buffers the batched
// datapath needs. Readers are pooled by the server; a Reader must never
// be used by two goroutines at once.
type Reader struct {
	mem     *aesctr.Engine
	engines map[aesctr.Key]*aesctr.Engine
	aesLat  config.Cycle

	pad     aesctr.Page
	filePad aesctr.Page
}

// NewReader builds a read-only decrypt context for this controller. Safe
// to call from any goroutine: it reads only construction-time state.
func (c *Controller) NewReader() *Reader {
	r := &Reader{
		engines: make(map[aesctr.Key]*aesctr.Engine),
		aesLat:  c.cfg.Security.AESLatency,
	}
	if c.memEngine != nil {
		r.mem = c.memEngine.Fork()
	}
	return r
}

func (r *Reader) engineFor(key aesctr.Key) *aesctr.Engine {
	e, ok := r.engines[key]
	if !ok {
		e = aesctr.New(key, r.aesLat)
		r.engines[key] = e
	}
	return e
}

// AuditEvent is one deferred page-access audit record.
type AuditEvent struct {
	Op    audit.Op
	Page  uint64
	Group uint32
	File  uint16
}

// ECCEvent is one deferred Osiris check-tag mismatch.
type ECCEvent struct {
	Page uint64
	Line int
}

// ReadDelta accumulates the side effects of snapshot reads for the owner
// goroutine to apply. The zero value is ready to use; Reset recycles it.
type ReadDelta struct {
	Reads  uint64 // line reads to fold into "mc.reads"
	Audits []AuditEvent
	ECC    []ECCEvent
}

// Reset empties the delta, keeping slice capacity.
func (d *ReadDelta) Reset() {
	d.Reads = 0
	d.Audits = d.Audits[:0]
	d.ECC = d.ECC[:0]
}

// Empty reports whether the delta carries nothing to apply.
func (d *ReadDelta) Empty() bool {
	return d.Reads == 0 && len(d.Audits) == 0 && len(d.ECC) == 0
}

// Merge folds another delta into this one (a fanned read accumulates its
// helper chunks' deltas in chunk order before handoff to the owner).
func (d *ReadDelta) Merge(o *ReadDelta) {
	d.Reads += o.Reads
	d.Audits = append(d.Audits, o.Audits...)
	d.ECC = append(d.ECC, o.ECC...)
}

// peekKey resolves a file key without side effects. Only the on-chip OTT
// is consulted: a region-only hit would have triggered a table refill on
// the live path, so the snapshot path treats it as a miss and lets the
// owner's fallback perform the refill (after which snapshot reads hit).
func (c *Controller) peekKey(group uint32, file uint16) (aesctr.Key, bool) {
	return c.ottTable.Peek(group, file)
}

// PeekVerifyKey is VerifyKey without side effects (no OTT LRU refresh, no
// probe counters): the snapshot stat/read path uses it to validate a
// caller-supplied passphrase against the installed file key.
func (c *Controller) PeekVerifyKey(group uint32, file uint16, key aesctr.Key) bool {
	if !c.mode.FileEncryption {
		return true
	}
	if k, ok := c.ottTable.Peek(group, file); ok {
		return k == key
	}
	if e, ok := c.ottRegion.Peek(group, file); ok {
		return e.Key == key
	}
	return false
}

// SnapshotReadPage decrypts the page containing pa into dst using only
// immutable reads of controller state, recording deferred side effects in
// d. It returns false — leaving dst unspecified — whenever the live path
// would have mutated state beyond the deferred set: locked or crashed
// controller, untagged DF page, unresolvable or region-only file key.
// On success the plaintext is byte-identical to ReadPageInto's.
func (c *Controller) SnapshotReadPage(rd *Reader, pa addr.Phys, dst *aesctr.Page, d *ReadDelta) bool {
	if c.crashed {
		return false
	}
	base := pa.PageAlign()
	raw := base.Raw()
	c.PCM.PeekPageInto(raw, dst)
	d.Reads += config.LinesPerPage

	if !c.mode.MemEncryption {
		return true
	}

	page := base.PageNum()
	// Value-copy the counter blocks: an absent block decrypts exactly like
	// the fresh zero block getMECB/getFECB would have created — the create
	// side effects (persist snapshot, Merkle leaf) are what the owner's
	// fallback exists for, and a never-written page needs neither.
	var m MECBView
	if mb, ok := c.mecb[page]; ok {
		m.Major, m.Minor = mb.Major, mb.Minor
	}
	rd.mem.OTPPageInto(&rd.pad, page, m.Major, &m.Minor, aesctr.DomainMemory)

	if base.IsDF() {
		if !c.fileActive() {
			return false // locked datapath: live path journals and decrypts to garbage
		}
		fb, ok := c.fecb[page]
		if !ok || (fb.GroupID == 0 && fb.FileID == 0) {
			// Untagged FECB: the live path would journal a DF mismatch.
			return false
		}
		group, file, major, minors := fb.GroupID, fb.FileID, fb.Major, fb.Minor
		key, ok := c.peekKey(group, file)
		if !ok {
			return false
		}
		d.Audits = append(d.Audits, AuditEvent{Op: audit.OpReadPage, Page: page, Group: group, File: file})
		rd.engineFor(key).OTPPageInto(&rd.filePad, page, uint64(major), &minors, aesctr.DomainFile)
		aesctr.XORPageInto(&rd.pad, &rd.filePad)
	}

	aesctr.XORPageInto(dst, &rd.pad)

	// Osiris check tags, deferred: mismatches are recorded, accounted by
	// the owner at drain time.
	lineNum := base.LineNum()
	for li := 0; li < config.LinesPerPage; li++ {
		tag, ok := c.ecc[lineNum+uint64(li)]
		if ok && eccTag((*aesctr.Line)(dst[li*config.LineSize:(li+1)*config.LineSize])) != tag {
			d.ECC = append(d.ECC, ECCEvent{Page: page, Line: li})
		}
	}
	return true
}

// MECBView is the value form of a memory counter block the snapshot path
// copies under the reader lock.
type MECBView struct {
	Major uint64
	Minor [config.LinesPerPage]uint8
}

// ApplyReadDelta folds the deferred side effects of snapshot reads into
// the controller. Must run on the owner goroutine (it mutates stats, the
// audit chain, and the journal). now stamps the deferred audit and
// journal records: snapshot reads advance no simulated clock, so the
// owner's current time is the only meaningful timestamp.
func (c *Controller) ApplyReadDelta(now config.Cycle, d *ReadDelta) {
	if d.Reads > 0 {
		c.st.Add("mc.reads", d.Reads)
	}
	for _, a := range d.Audits {
		c.aud.Append(uint64(now), a.Op, a.Page, a.Group, a.File)
	}
	for _, e := range d.ECC {
		c.violations++
		c.st.Inc("mc.data_ecc_errors")
		c.jrn.Emit(journal.Event{Cycle: uint64(now), Type: journal.DataECCError,
			Page: e.Page, Detail: "line " + strconv.Itoa(e.Line)})
	}
}
