package memctrl

// Operational features from §VI of the paper: file-key rotation (counter
// reset under a new key), and transporting an entire filesystem — the NVM
// module plus its sealed key material — to a new machine.

import (
	"errors"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/counters"
	"fsencr/internal/merkle"
	"fsencr/internal/ott"
	"fsencr/internal/pcm"
)

// RotateFileKey re-keys one page of a file: each line's old file OTP is
// stripped and a new one (under newKey, with reset counters) applied. With
// a fresh key there is no risk in resetting the filesystem encryption
// counters — old OTPs can never recur (§VI, "Resetting Filesystem
// Encryption Counters"). The caller rotates every page of the file, then
// installs the new key via InstallKey.
func (c *Controller) RotateFileKey(now config.Cycle, pa addr.Phys, group uint32, file uint16, oldKey, newKey aesctr.Key) config.Cycle {
	if !c.mode.FileEncryption {
		return now
	}
	c.noteCycle(now)
	c.st.Inc("mc.key_rotations")
	page := pa.PageNum()
	fecb, ready := c.fetchFECB(now, page)
	old := *fecb
	fecb.Major = 0
	for i := range fecb.Minor {
		fecb.Minor[i] = 0
	}
	fecb.GroupID = group
	fecb.FileID = file
	oldEng := c.engineFor(oldKey)
	newEng := c.engineFor(newKey)
	ready = c.reencryptLines(ready, page, func(li int, oldPad, newPad *aesctr.Line) {
		oldEng.OTPInto(oldPad, fileIV(page, li, old.Major, old.Minor[li]))
		newEng.OTPInto(newPad, fileIV(page, li, fecb.Major, fecb.Minor[li]))
	})
	ready = c.touchDirtyCounter(ready, fecbAddr(page), fecbLeaf(page), c.encFECB(fecb))
	c.persistCounterNow(ready, fecbAddr(page))
	// Data ECC tags are unchanged: rotation preserves plaintext.
	return ready
}

// Transport is the sealed bundle that accompanies an NVM module moved to a
// new machine (§VI, "Moving Entire Filesystem To New Machine"): the memory
// encryption key, the OTT key, and the integrity-tree root, transferred
// through an authenticated admin interaction. In hardware this would be
// wrapped for the destination processor; here it is an opaque value the
// test passes between controllers.
type Transport struct {
	memEngine *aesctr.Engine
	root      merkle.Hash
	device    *pcm.Memory
	mecb      map[uint64]*counters.MECB
	fecb      map[uint64]*counters.FECB
	ecc       map[uint64]uint64
	entries   []ott.Entry
	region    *ott.Region
}

// Export flushes the OTT into the encrypted region and packages the module
// + keys for transport. The source controller keeps working; the export is
// a snapshot handoff (as when physically moving the DIMM, the source loses
// the device — tests model that by discarding the source).
func (c *Controller) Export() (Transport, error) {
	if !c.mode.FileEncryption {
		return Transport{}, errors.New("memctrl: export requires the FsEncr datapath")
	}
	// Flush all OTT entries into the sealed region, as at shutdown.
	for _, e := range c.ottTable.Entries() {
		bucket := c.ottRegion.Store(e)
		c.updateOTTLeaf(bucket)
	}
	mecb := make(map[uint64]*counters.MECB, len(c.mecb))
	for k, v := range c.mecb {
		vv := *v
		mecb[k] = &vv
	}
	fecb := make(map[uint64]*counters.FECB, len(c.fecb))
	for k, v := range c.fecb {
		vv := *v
		fecb[k] = &vv
	}
	ecc := make(map[uint64]uint64, len(c.ecc))
	for k, v := range c.ecc {
		ecc[k] = v
	}
	return Transport{
		memEngine: c.memEngine,
		root:      c.mt.Root(),
		device:    c.PCM,
		mecb:      mecb,
		fecb:      fecb,
		ecc:       ecc,
		entries:   c.ottTable.Entries(),
		region:    c.ottRegion,
	}, nil
}

// ErrTransportRejected reports a failed authentication between the moved
// module and the destination processor.
var ErrTransportRejected = errors.New("memctrl: transport authentication failed")

// Import adopts a transported filesystem: the destination controller takes
// over the device, keys, counters and integrity root, then regenerates and
// verifies the Merkle tree against the transported root before serving any
// request.
func (c *Controller) Import(t Transport) error {
	if !c.mode.FileEncryption {
		return errors.New("memctrl: import requires the FsEncr datapath")
	}
	if t.device == nil || t.memEngine == nil {
		return ErrTransportRejected
	}
	c.PCM = t.device
	c.memEngine = t.memEngine
	c.mecb = t.mecb
	c.fecb = t.fecb
	c.ecc = t.ecc
	c.ottRegion = t.region
	c.ottTable.Clear()
	for _, e := range t.entries {
		c.ottTable.Insert(e)
	}
	c.persistedMECB = make(map[uint64]counters.MECB, len(t.mecb))
	for k, v := range t.mecb {
		c.persistedMECB[k] = *v
	}
	c.persistedFECB = make(map[uint64]counters.FECB, len(t.fecb))
	for k, v := range t.fecb {
		c.persistedFECB[k] = *v
	}
	c.unpersisted = make(map[uint64]int)
	c.clearMetaCaches()
	c.rebuildTreeFromCounters()
	if c.mt.Root() != t.root {
		return ErrTransportRejected
	}
	c.st.Inc("mc.imports")
	return nil
}
