// Package memctrl implements the secure memory controller at the heart of
// FsEncr (§III). It steers requests by the DF-bit in the physical address:
// ordinary lines go through counter-mode memory encryption only, while DAX
// file lines are additionally encrypted with a per-file key resolved through
// the Open Tunnel Table, using the File Encryption Counter Block's
// (GroupID, FileID) tag. The final one-time pad for a file line is
// OTP_mem XOR OTP_file (Figure 7).
//
// The controller owns the security metadata (MECB/FECB counter blocks), the
// dedicated metadata cache, the Bonsai Merkle Tree over the metadata region,
// the OTT and its encrypted memory region, the Osiris-style crash
// consistency state, and the PCM device itself.
package memctrl

import (
	"sync/atomic"

	"fsencr/internal/aesctr"
	"fsencr/internal/audit"
	"fsencr/internal/cache"
	"fsencr/internal/config"
	"fsencr/internal/counters"
	"fsencr/internal/merkle"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/ott"
	"fsencr/internal/pcm"
	"fsencr/internal/stats"
	"fsencr/internal/telemetry"
)

// Physical layout of the metadata structures. Data lives below MetaBase;
// the regions above are reserved for the controller (not addressable by
// software, which is what protects the OTT region from kernel/user access).
const (
	// MetaBase is the start of the counter-block region: page p's MECB at
	// MetaBase + 128p, its FECB at MetaBase + 128p + 64 ("a file encryption
	// counter block follows each memory encryption counter block").
	MetaBase = 1 << 40
	// MTBase is the start of the Merkle-tree node storage.
	MTBase = 1 << 41
	// OTTBase is the start of the encrypted OTT region.
	OTTBase = 1 << 42
	// AuditBase is the start of the reserved audit-log region (FOX-style
	// hash-chained access records, internal/audit).
	AuditBase = 1 << 43
	// MaxDataBytes bounds the software-visible physical space (16 GB
	// device, Table III), so page numbers fit the Merkle tree coverage.
	MaxDataBytes = 16 << 30
)

// Mode selects which hardware protections are active.
type Mode struct {
	// MemEncryption enables counter-mode memory encryption + BMT (the
	// paper's "Baseline Security").
	MemEncryption bool
	// FileEncryption additionally enables the FsEncr file datapath
	// (FECB + OTT + second OTP).
	FileEncryption bool
}

// Controller is the secure memory controller.
type Controller struct {
	cfg  config.Config
	mode Mode
	st   *stats.Set
	// chipSeq is the per-chip key-derivation sequence the controller was
	// built with. Controllers sharing a chipSeq derive identical memory
	// and OTT keys — the property shard migration and replication rely on
	// to make replayed ciphertext and sealed OTT buckets byte-identical.
	chipSeq uint64

	PCM *pcm.Memory

	memEngine *aesctr.Engine
	engines   map[aesctr.Key]*aesctr.Engine // file-key engine cache
	// metaCache is the shared metadata cache; when partitioning is on,
	// metaCaches[0..2] hold the MECB / FECB / tree-node partitions and
	// metaCache aliases partition 0 for legacy accessors.
	metaCache  *cache.Cache
	metaCaches [3]*cache.Cache
	mt         *merkle.Tree

	mecb map[uint64]*counters.MECB // by physical page number
	fecb map[uint64]*counters.FECB

	ottTable  *ott.Table
	ottRegion *ott.Region

	// Osiris crash-consistency state.
	persistedMECB map[uint64]counters.MECB
	persistedFECB map[uint64]counters.FECB
	unpersisted   map[uint64]int    // counter-block addr -> bumps since persist
	ecc           map[uint64]uint64 // raw line number -> ECC-embedded check tag
	crashed       bool

	// Pre-crash snapshots, used only by VerifyRecovery in tests.
	preCrashMECB map[uint64]*counters.MECB
	preCrashFECB map[uint64]*counters.FECB
	preCrashRoot merkle.Hash

	// locked disables the file-decryption datapath, as after a failed
	// admin authentication at boot (§VI): only memory encryption functions.
	locked bool

	// encScratch is the shared serialization buffer of encMECB/encFECB:
	// counter blocks re-encode on every fetch and bump, and the datapath is
	// single-threaded per controller, so one caller-owned line avoids a
	// 64-byte heap escape per metadata access. Consumers (tree hash, MAC
	// check) read the bytes synchronously and never retain the slice.
	encScratch counters.Block
	// mtPath is the reusable Merkle path-walk buffer of fetchMeta and
	// touchDirtyCounter (same single-threaded-datapath argument).
	mtPath []merkle.NodeID
	// padScratch/filePadScratch are the ReadLine/WriteLine OTP buffers.
	// Locals escape to the heap through the cipher.Block.Encrypt interface
	// call inside OTPInto, costing two 64-byte allocations per line op;
	// OTPInto fully overwrites its destination, so reuse is safe.
	padScratch     aesctr.Line
	filePadScratch aesctr.Line
	// pagePadScratch/pageFilePadScratch are the batched page-datapath OTP
	// buffers (WritePage/ReadPage), controller-owned for the same reason —
	// 4 KB heap escapes per page op would undo the batching's host-cost
	// win. pageStartScratch/pageDoneScratch carry per-line issue and
	// completion times between the burst scheduler and AccessPage.
	pagePadScratch     aesctr.Page
	pageFilePadScratch aesctr.Page
	pageStartScratch   [config.LinesPerPage]config.Cycle
	pageDoneScratch    [config.LinesPerPage]config.Cycle

	// writeQueue holds the completion times of in-flight writes. Writes
	// are posted: the core's CLWB/SFENCE completes when the store is
	// *accepted* into the controller's persistence domain (ADR), not when
	// the PCM array write finishes. Backpressure appears only when the
	// queue fills.
	writeQueue []config.Cycle

	violations uint64

	// Telemetry. All nil (no-op) until Instrument is called.
	tel          *telemetry.Registry
	trace        *telemetry.TraceScope
	tReadCycles  *telemetry.Histogram
	tWriteAccept *telemetry.Histogram
	tMetaFetch   *telemetry.Histogram
	tBMTWalk     *telemetry.Histogram
	tKeyLookup   *telemetry.Histogram

	// Security-event journal (nil until AttachJournal) and the simulated
	// cycle of the request currently in the datapath, which stamps events
	// emitted from structures that have no clock of their own (OTT, tree).
	jrn    *journal.Journal
	jcycle uint64

	// Tamper-evident access-audit log (nil until EnableAudit): hash-chained
	// page-access records written through to the reserved region at
	// AuditBase.
	aud *audit.Log
}

// writeQueueDepth is the number of in-flight writes the controller buffers.
const writeQueueDepth = 64

// acceptWrite returns the time a write arriving at now is accepted into the
// persistence domain, waiting for a queue slot if all are in flight.
func (c *Controller) acceptWrite(now config.Cycle) config.Cycle {
	c.retireWrites(now)
	return c.acceptSlot(now)
}

// retireWrites drops completed writes from the in-flight queue.
func (c *Controller) retireWrites(now config.Cycle) {
	live := c.writeQueue[:0]
	for _, done := range c.writeQueue {
		if done > now {
			live = append(live, done)
		}
	}
	c.writeQueue = live
}

// acceptSlot grants one persistence-domain slot at now, popping the
// earliest in-flight completion when the queue is full. The page burst path
// retires once and then claims 64 slots back-to-back; the line path retires
// before every claim (acceptWrite).
func (c *Controller) acceptSlot(now config.Cycle) config.Cycle {
	if len(c.writeQueue) < writeQueueDepth {
		return now + 1
	}
	// Queue full: wait for the earliest in-flight write to retire.
	minIdx := 0
	for i, done := range c.writeQueue {
		if done < c.writeQueue[minIdx] {
			minIdx = i
		}
	}
	accepted := c.writeQueue[minIdx]
	c.writeQueue[minIdx] = c.writeQueue[len(c.writeQueue)-1]
	c.writeQueue = c.writeQueue[:len(c.writeQueue)-1]
	c.st.Inc("mc.write_queue_stalls")
	return accepted + 1
}

// instanceSeq gives every controller distinct processor keys (fuses differ
// chip to chip). It is the only state shared across controllers, and it is
// bumped atomically because the parallel experiment runner boots systems
// concurrently. Key material only shapes the ciphertext bytes at rest,
// never the measured statistics, so simulations stay deterministic even
// though concurrent batches may assign sequence numbers in any order.
var instanceSeq atomic.Uint64

// New builds a controller in the given mode. All keys (memory key, OTT key)
// are generated inside the "processor" and never exposed.
func New(cfg config.Config, mode Mode, st *stats.Set) *Controller {
	return newWithSeq(cfg, mode, st, instanceSeq.Add(1))
}

// NewWithChipSeq builds a controller with an explicit chip sequence
// number. The cluster fabric uses it to give a shard's replicas and
// migration targets the same processor keys as the primary, so state
// reconstructed by admission-log replay is byte-identical down to the
// ciphertext. seq 0 falls back to the auto-assigned per-process sequence.
func NewWithChipSeq(cfg config.Config, mode Mode, st *stats.Set, seq uint64) *Controller {
	if seq == 0 {
		return New(cfg, mode, st)
	}
	return newWithSeq(cfg, mode, st, seq)
}

// ChipSeq returns the chip key-derivation sequence number.
func (c *Controller) ChipSeq() uint64 { return c.chipSeq }

// newWithSeq builds a controller with an explicit chip sequence number.
// Tests that must compare ciphertext across two controllers (the
// page-vs-line equivalence property) pass the same seq to both so the
// derived processor keys match; production construction always goes
// through New.
func newWithSeq(cfg config.Config, mode Mode, st *stats.Set, seq uint64) *Controller {
	c := &Controller{
		cfg:           cfg,
		mode:          mode,
		st:            st,
		chipSeq:       seq,
		PCM:           pcm.New(cfg.PCM, st),
		engines:       make(map[aesctr.Key]*aesctr.Engine),
		mecb:          make(map[uint64]*counters.MECB),
		fecb:          make(map[uint64]*counters.FECB),
		persistedMECB: make(map[uint64]counters.MECB),
		persistedFECB: make(map[uint64]counters.FECB),
		unpersisted:   make(map[uint64]int),
		ecc:           make(map[uint64]uint64),
	}
	if mode.MemEncryption {
		c.memEngine = aesctr.New(deriveKey("fsencr-memory-key", seq), cfg.Security.AESLatency)
		if cfg.Security.PartitionMetadataCache {
			// Equitable split: half for the tree nodes (they are the
			// deepest structure), a quarter each for MECB and FECB.
			quarter := cfg.Security.MetadataCacheSize / 4
			c.metaCaches[0] = cache.New("metadata.mecb", quarter, cfg.Security.MetadataCacheWays)
			c.metaCaches[1] = cache.New("metadata.fecb", quarter, cfg.Security.MetadataCacheWays)
			c.metaCaches[2] = cache.New("metadata.mt", 2*quarter, cfg.Security.MetadataCacheWays)
			c.metaCache = c.metaCaches[0]
		} else {
			c.metaCache = cache.New("metadata", cfg.Security.MetadataCacheSize, cfg.Security.MetadataCacheWays)
			c.metaCaches = [3]*cache.Cache{c.metaCache, c.metaCache, c.metaCache}
		}
		c.mt = merkle.New(cfg.Security.MerkleArity, cfg.Security.MerkleLevels)
	}
	if mode.FileEncryption {
		c.ottTable = ott.NewTable(cfg.Security.OTTBanks, cfg.Security.OTTEntriesPerBank)
		c.ottRegion = ott.NewRegion(deriveKey("fsencr-ott-key", seq), 1024)
	}
	return c
}

// deriveKey produces a deterministic per-purpose, per-chip key for
// reproducible simulations (a real controller would use a hardware RNG /
// fuses).
func deriveKey(label string, seq uint64) aesctr.Key {
	var k aesctr.Key
	h := uint64(1469598103934665603)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= seq * 0x9e3779b97f4a7c15
	for i := range k {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		k[i] = byte(h)
	}
	return k
}

// Mode returns the active protection mode.
func (c *Controller) Mode() Mode { return c.mode }

// Stats returns the controller's counter set.
func (c *Controller) Stats() *stats.Set { return c.st }

// MetadataCache exposes the (first partition of the) metadata cache, for
// sensitivity studies and tests.
func (c *Controller) MetadataCache() *cache.Cache { return c.metaCache }

// mcacheFor routes a metadata address to its cache partition: MECBs (even
// counter slots), FECBs (odd slots), and everything else (Merkle nodes and
// OTT buckets) to the tree partition. With partitioning off, all three
// entries alias the shared cache.
func (c *Controller) mcacheFor(metaAddr uint64) *cache.Cache {
	if metaAddr >= MetaBase && metaAddr < MTBase {
		if (metaAddr-MetaBase)/config.LineSize%2 == 0 {
			return c.metaCaches[0]
		}
		return c.metaCaches[1]
	}
	return c.metaCaches[2]
}

// clearMetaCaches wipes every partition (power loss).
func (c *Controller) clearMetaCaches() {
	seen := map[*cache.Cache]bool{}
	for _, mc := range c.metaCaches {
		if mc != nil && !seen[mc] {
			mc.Clear()
			seen[mc] = true
		}
	}
}

// MetaHitRate aggregates hit rates across partitions.
func (c *Controller) MetaHitRate() float64 {
	var hits, total uint64
	seen := map[*cache.Cache]bool{}
	for _, mc := range c.metaCaches {
		if mc == nil || seen[mc] {
			continue
		}
		seen[mc] = true
		hits += mc.Hits
		total += mc.Hits + mc.Misses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// OTT exposes the on-chip table (for inspection in tests/examples).
func (c *Controller) OTT() *ott.Table { return c.ottTable }

// OTTRegion exposes the encrypted in-memory OTT region.
func (c *Controller) OTTRegion() *ott.Region { return c.ottRegion }

// MerkleRoot returns the processor-resident tree root.
func (c *Controller) MerkleRoot() merkle.Hash {
	if c.mt == nil {
		return merkle.Hash{}
	}
	return c.mt.Root()
}

// IntegrityViolations returns how many metadata integrity failures the
// controller has detected (tampered/replayed metadata).
func (c *Controller) IntegrityViolations() uint64 { return c.violations }

// Lock disables the FsEncr file-decryption datapath (failed boot-time admin
// authentication, §VI): requests still decrypt with the memory key only, so
// an attacker who boots an alien OS sees file bytes still wrapped in the
// file OTP.
func (c *Controller) Lock() { c.locked = true }

// Unlock re-enables the file datapath after successful authentication.
func (c *Controller) Unlock() { c.locked = false }

// Locked reports whether the file datapath is locked.
func (c *Controller) Locked() bool { return c.locked }

func (c *Controller) engineFor(key aesctr.Key) *aesctr.Engine {
	e, ok := c.engines[key]
	if !ok {
		e = aesctr.New(key, c.cfg.Security.AESLatency)
		c.engines[key] = e
	}
	return e
}

// Metadata addresses.

func mecbAddr(page uint64) uint64 { return MetaBase + page*2*config.LineSize }
func fecbAddr(page uint64) uint64 { return MetaBase + (page*2+1)*config.LineSize }
func mtNodeAddr(n merkle.NodeID) uint64 {
	return MTBase + uint64(n.Level)<<36 + uint64(n.Index)*config.LineSize
}
func ottBucketAddr(bucket int) uint64 { return OTTBase + uint64(bucket)*config.LineSize }

// Merkle leaf numbering: page p's MECB is leaf 2p, FECB leaf 2p+1; OTT
// region bucket b is leaf ottLeafBase+b.
const ottLeafBase = 2 * (MaxDataBytes / config.PageSize)

func mecbLeaf(page uint64) int { return int(2 * page) }
func fecbLeaf(page uint64) int { return int(2*page + 1) }
func ottLeaf(bucket int) int   { return ottLeafBase + bucket }
