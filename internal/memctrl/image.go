package memctrl

// Shard-migration images: a serializable snapshot of everything the NVM
// module side of a controller holds — device frames (ciphertext), counter
// blocks, ECC tags, OTT entries and the sealed OTT region — plus the
// Merkle root and the chip key-derivation sequence.
//
// Unlike Transport (lifecycle.go), which hands live pointers to a
// destination controller in the same process, an Image is plain data: it
// gob-encodes, ships over the cluster fabric, and rehydrates into a fresh
// controller built with the same chip sequence. The image is the
// *verification artifact* of a migration — the target reconstructs state
// by replaying the admission log and then proves equivalence against the
// image root and the Osiris recovery gate — not the transfer mechanism.

import (
	"bytes"
	"errors"
	"fmt"

	"fsencr/internal/config"
	"fsencr/internal/counters"
	"fsencr/internal/merkle"
	"fsencr/internal/ott"
	"fsencr/internal/stats"
)

// Image is the serializable module snapshot.
type Image struct {
	// ChipSeq is the key-derivation sequence of the source controller. A
	// controller can only import an image whose ChipSeq matches its own:
	// with different processor keys neither the ciphertext nor the sealed
	// OTT records would authenticate.
	ChipSeq uint64
	// Root is the Merkle root over the metadata region at export time.
	Root merkle.Hash
	// Frames holds the device contents (ciphertext), keyed by page number.
	Frames map[uint64][]byte
	// MECB/FECB are the current counter blocks by physical page number.
	MECB map[uint64]counters.MECB
	FECB map[uint64]counters.FECB
	// ECC maps raw line numbers to their ECC-embedded check tags.
	ECC map[uint64]uint64
	// Entries are the on-chip OTT entries; Buckets is the sealed region.
	Entries []ott.Entry
	Buckets [][]ott.Sealed
}

// FlushOTT seals every on-chip OTT entry into the encrypted region and
// folds the buckets into the Merkle tree — the shutdown/export persist
// path, exposed so a shard can run it as an admission-log step (the
// replayer must execute the identical flush to reproduce the root).
func (c *Controller) FlushOTT() {
	if c.ottTable == nil {
		return
	}
	for _, e := range c.ottTable.Entries() {
		bucket := c.ottRegion.Store(e)
		c.updateOTTLeaf(bucket)
	}
}

// ExportImage snapshots the controller into a serializable image. The
// caller must have quiesced the datapath, flushed dirty cache lines, and
// run FlushOTT first (the shard fabric runs its flush log-record before
// exporting, which does all three). ExportImage itself mutates nothing —
// deliberately: the export is not an admission-log record, so any counter
// it perturbed would diverge a resumed source from its own log.
func (c *Controller) ExportImage() (*Image, error) {
	if !c.mode.FileEncryption {
		return nil, errors.New("memctrl: image export requires the FsEncr datapath")
	}
	img := &Image{
		ChipSeq: c.chipSeq,
		Root:    c.mt.Root(),
		Frames:  c.PCM.ExportFrames(),
		MECB:    make(map[uint64]counters.MECB, len(c.mecb)),
		FECB:    make(map[uint64]counters.FECB, len(c.fecb)),
		ECC:     make(map[uint64]uint64, len(c.ecc)),
		Entries: c.ottTable.Entries(),
		Buckets: c.ottRegion.ExportTable(),
	}
	for k, v := range c.mecb {
		img.MECB[k] = *v
	}
	for k, v := range c.fecb {
		img.FECB[k] = *v
	}
	for k, v := range c.ecc {
		img.ECC[k] = v
	}
	return img, nil
}

// Equal reports whether two images describe byte-identical module state:
// same chip sequence, Merkle root, device frames, counter blocks, ECC
// tags, OTT entries and sealed region. The migration install gate uses it
// to prove the replayed shard reproduced the source exactly — including
// data content the Merkle root (which covers only the metadata region)
// cannot vouch for.
func (img *Image) Equal(o *Image) bool {
	if o == nil || img.ChipSeq != o.ChipSeq || img.Root != o.Root {
		return false
	}
	if len(img.Frames) != len(o.Frames) || len(img.MECB) != len(o.MECB) ||
		len(img.FECB) != len(o.FECB) || len(img.ECC) != len(o.ECC) ||
		len(img.Entries) != len(o.Entries) || len(img.Buckets) != len(o.Buckets) {
		return false
	}
	for k, v := range img.Frames {
		if !bytes.Equal(v, o.Frames[k]) {
			return false
		}
	}
	for k, v := range img.MECB {
		if o.MECB[k] != v {
			return false
		}
	}
	for k, v := range img.FECB {
		if o.FECB[k] != v {
			return false
		}
	}
	for k, v := range img.ECC {
		if o.ECC[k] != v {
			return false
		}
	}
	for i, e := range img.Entries {
		if o.Entries[i] != e {
			return false
		}
	}
	for i, b := range img.Buckets {
		if len(b) != len(o.Buckets[i]) {
			return false
		}
		for j, s := range b {
			if o.Buckets[i][j] != s {
				return false
			}
		}
	}
	return true
}

// ErrImageRejected reports an image that does not authenticate against
// this controller: wrong chip sequence (keys), or a regenerated Merkle
// root that disagrees with the transported one.
var ErrImageRejected = errors.New("memctrl: image rejected")

// ImportImage adopts an image into a freshly built controller with the
// same configuration and chip sequence: device contents, counters, ECC
// tags and the sealed OTT region are installed, every counter is treated
// as durable, and the Merkle tree is regenerated and verified against the
// image root before the controller serves anything.
func (c *Controller) ImportImage(img *Image) error {
	if !c.mode.FileEncryption {
		return errors.New("memctrl: image import requires the FsEncr datapath")
	}
	if img.ChipSeq != c.chipSeq {
		return fmt.Errorf("%w: chip seq %d != %d", ErrImageRejected, img.ChipSeq, c.chipSeq)
	}
	c.PCM.ImportFrames(img.Frames)
	c.mecb = make(map[uint64]*counters.MECB, len(img.MECB))
	c.persistedMECB = make(map[uint64]counters.MECB, len(img.MECB))
	for k, v := range img.MECB {
		vv := v
		c.mecb[k] = &vv
		c.persistedMECB[k] = v
	}
	c.fecb = make(map[uint64]*counters.FECB, len(img.FECB))
	c.persistedFECB = make(map[uint64]counters.FECB, len(img.FECB))
	for k, v := range img.FECB {
		vv := v
		c.fecb[k] = &vv
		c.persistedFECB[k] = v
	}
	c.ecc = make(map[uint64]uint64, len(img.ECC))
	for k, v := range img.ECC {
		c.ecc[k] = v
	}
	if err := c.ottRegion.ImportTable(img.Buckets); err != nil {
		return fmt.Errorf("%w: %v", ErrImageRejected, err)
	}
	c.ottTable.Clear()
	for _, e := range img.Entries {
		c.ottTable.Insert(e)
	}
	c.unpersisted = make(map[uint64]int)
	c.clearMetaCaches()
	c.rebuildTreeFromCounters()
	if c.mt.Root() != img.Root {
		return fmt.Errorf("%w: regenerated Merkle root mismatch", ErrImageRejected)
	}
	c.st.Inc("mc.imports")
	return nil
}

// VerifyImage is the migration cutover gate: it rehydrates the image into
// a scratch controller (same config, mode and chip sequence), then runs
// the full crash/recovery cycle — Crash(true), Osiris Recover, and
// VerifyRecovery — against it. Success proves the shipped frames, counter
// blocks, ECC tags and sealed OTT region are mutually consistent and
// recoverable on the target, without ever touching the live controller.
func VerifyImage(cfg config.Config, mode Mode, img *Image) error {
	c := NewWithChipSeq(cfg, mode, stats.NewSet(), img.ChipSeq)
	if err := c.ImportImage(img); err != nil {
		return err
	}
	c.Crash(true)
	if err := c.Recover(); err != nil {
		return fmt.Errorf("memctrl: image recovery gate: %w", err)
	}
	if err := c.VerifyRecovery(); err != nil {
		return fmt.Errorf("memctrl: image recovery gate: %w", err)
	}
	return nil
}
