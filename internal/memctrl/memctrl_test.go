package memctrl

import (
	"testing"
	"testing/quick"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/stats"
	"fsencr/internal/telemetry"
)

func newMC(mode Mode) *Controller {
	return New(config.Default(), mode, stats.NewSet())
}

func fileKey(b byte) aesctr.Key {
	var k aesctr.Key
	for i := range k {
		k[i] = b ^ 0x5A
	}
	return k
}

func lineOf(b byte) aesctr.Line {
	var l aesctr.Line
	for i := range l {
		l[i] = b + byte(i)
	}
	return l
}

func TestPlainModeRoundtrip(t *testing.T) {
	c := newMC(Mode{})
	pa := addr.Phys(0x10000)
	c.WriteLine(0, pa, lineOf(1))
	got, _ := c.ReadLine(1000, pa)
	if got != lineOf(1) {
		t.Fatal("plain roundtrip failed")
	}
	// Plain mode stores plaintext in NVM.
	if c.RawLine(pa) != lineOf(1) {
		t.Fatal("plain mode encrypted data")
	}
}

func TestMemEncryptionRoundtripAndCiphertext(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	pa := addr.Phys(0x10000)
	c.WriteLine(0, pa, lineOf(2))
	got, _ := c.ReadLine(1000, pa)
	if got != lineOf(2) {
		t.Fatal("encrypted roundtrip failed")
	}
	if c.RawLine(pa) == lineOf(2) {
		t.Fatal("NVM holds plaintext under memory encryption")
	}
}

func TestFileLineDualEncryption(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0x20000).WithDF()
	c.InstallKey(0, 7, 9, fileKey(1))
	c.TagPage(0, pa, 7, 9)
	c.WriteLine(0, pa, lineOf(3))
	got, _ := c.ReadLine(1000, pa)
	if got != lineOf(3) {
		t.Fatal("file roundtrip failed")
	}
	// Stripping only the memory OTP must NOT reveal the plaintext: the
	// line is still wrapped in the file OTP (System C protection).
	if c.DecryptWithMemoryKeyOnly(pa) == lineOf(3) {
		t.Fatal("memory key alone decrypted a file line")
	}
	// A non-DF line, in contrast, is fully exposed by the memory key.
	npa := addr.Phys(0x30000)
	c.WriteLine(0, npa, lineOf(4))
	if c.DecryptWithMemoryKeyOnly(npa) != lineOf(4) {
		t.Fatal("memory key failed to decrypt a non-file line")
	}
}

func TestCounterAdvancesPerWrite(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	pa := addr.Phys(0x40000)
	c.WriteLine(0, pa, lineOf(5))
	ct1 := c.RawLine(pa)
	c.WriteLine(0, pa, lineOf(5))
	ct2 := c.RawLine(pa)
	if ct1 == ct2 {
		t.Fatal("same plaintext re-encrypted to same ciphertext (counter not bumped)")
	}
	got, _ := c.ReadLine(1000, pa)
	if got != lineOf(5) {
		t.Fatal("roundtrip after rewrite failed")
	}
}

func TestMinorOverflowReencryptsPage(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	base := addr.Phys(0x50000)
	// Put data on two lines of the page.
	c.WriteLine(0, base, lineOf(1))
	c.WriteLine(0, base+64, lineOf(2))
	// Overflow line 0's minor counter.
	for i := 0; i <= config.MinorCounterMax+2; i++ {
		c.WriteLine(0, base, lineOf(byte(i)))
	}
	if c.Stats().Get("mc.mem_reencryptions") == 0 {
		t.Fatal("no re-encryption on minor overflow")
	}
	// Both lines still decrypt correctly under the new major counter.
	got, _ := c.ReadLine(1000, base+64)
	if got != lineOf(2) {
		t.Fatal("sibling line corrupted by page re-encryption")
	}
	got, _ = c.ReadLine(1000, base)
	if got != lineOf(byte(config.MinorCounterMax+2)) {
		t.Fatal("overflowing line corrupted")
	}
}

func TestFileMinorOverflow(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0x60000).WithDF()
	c.InstallKey(0, 1, 1, fileKey(2))
	c.TagPage(0, pa, 1, 1)
	c.WriteLine(0, pa+128, lineOf(7))
	for i := 0; i <= config.MinorCounterMax+2; i++ {
		c.WriteLine(0, pa, lineOf(byte(i)))
	}
	if c.Stats().Get("mc.file_reencryptions") == 0 {
		t.Fatal("no file-side re-encryption on overflow")
	}
	got, _ := c.ReadLine(1000, pa+128)
	if got != lineOf(7) {
		t.Fatal("sibling file line corrupted by file-side re-encryption")
	}
}

func TestKeyUnavailableYieldsGarbage(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0x70000).WithDF()
	c.InstallKey(0, 3, 3, fileKey(3))
	c.TagPage(0, pa, 3, 3)
	c.WriteLine(0, pa, lineOf(8))
	c.RemoveKey(0, 3, 3)
	got, _ := c.ReadLine(1000, pa)
	if got == lineOf(8) {
		t.Fatal("file line decrypted without its key")
	}
	if c.Stats().Get("mc.key_unavailable") == 0 {
		t.Fatal("missing-key stat not counted")
	}
}

func TestLockDisablesFileDatapath(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0x80000).WithDF()
	c.InstallKey(0, 4, 4, fileKey(4))
	c.TagPage(0, pa, 4, 4)
	c.WriteLine(0, pa, lineOf(9))
	c.Lock()
	if !c.Locked() {
		t.Fatal("Lock not reflected")
	}
	got, _ := c.ReadLine(1000, pa)
	if got == lineOf(9) {
		t.Fatal("locked controller still decrypted file data")
	}
	c.Unlock()
	got, _ = c.ReadLine(2000, pa)
	if got != lineOf(9) {
		t.Fatal("unlock did not restore decryption")
	}
}

func TestVerifyKey(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	c.InstallKey(0, 5, 5, fileKey(5))
	if !c.VerifyKey(5, 5, fileKey(5)) {
		t.Fatal("correct key rejected")
	}
	if c.VerifyKey(5, 5, fileKey(6)) {
		t.Fatal("wrong key accepted")
	}
	if c.VerifyKey(5, 99, fileKey(5)) {
		t.Fatal("unknown file verified")
	}
}

func TestOTTEvictionToRegionAndRefill(t *testing.T) {
	cfg := config.Default()
	cfg.Security.OTTBanks = 1
	cfg.Security.OTTEntriesPerBank = 4
	c := New(cfg, Mode{MemEncryption: true, FileEncryption: true}, stats.NewSet())
	// Install 6 keys into a 4-entry OTT: two get sealed into the region.
	for i := uint16(1); i <= 6; i++ {
		c.InstallKey(0, 1, i, fileKey(byte(i)))
	}
	if c.OTT().Len() != 4 {
		t.Fatalf("OTT len = %d", c.OTT().Len())
	}
	// §III-H option 1: every install is logged to the sealed region, so
	// all six keys live there regardless of on-chip residency.
	if c.OTTRegion().Len() != 6 {
		t.Fatalf("region len = %d", c.OTTRegion().Len())
	}
	// All six keys remain resolvable (region refill path).
	for i := uint16(1); i <= 6; i++ {
		if !c.VerifyKey(1, i, fileKey(byte(i))) {
			t.Fatalf("key %d lost after eviction", i)
		}
	}
	// Data written under an evicted key still decrypts.
	pa := addr.Phys(0x90000).WithDF()
	c.TagPage(0, pa, 1, 1)
	c.WriteLine(0, pa, lineOf(11))
	got, _ := c.ReadLine(1000, pa)
	if got != lineOf(11) {
		t.Fatal("roundtrip under evicted key failed")
	}
}

func TestShredPage(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0xA0000).WithDF()
	c.InstallKey(0, 6, 6, fileKey(6))
	c.TagPage(0, pa, 6, 6)
	c.WriteLine(0, pa, lineOf(12))
	c.ShredPage(0, pa)
	// Even with the key still installed, the shredded data must be
	// unintelligible (counters gone).
	got, _ := c.ReadLine(1000, pa)
	if got == lineOf(12) {
		t.Fatal("shredded data still readable")
	}
}

func TestTamperDetection(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	pa := addr.Phys(0xB0000).WithDF()
	c.InstallKey(0, 7, 7, fileKey(7))
	c.TagPage(0, pa, 7, 7)
	c.WriteLine(0, pa, lineOf(13))
	if c.IntegrityViolations() != 0 {
		t.Fatal("violations before tampering")
	}
	c.TamperFECB(pa)
	c.ReadLine(1000, pa)
	if c.IntegrityViolations() == 0 {
		t.Fatal("FECB tampering not detected")
	}
	c2 := newMC(Mode{MemEncryption: true})
	pb := addr.Phys(0xC0000)
	c2.WriteLine(0, pb, lineOf(14))
	c2.TamperMECB(pb)
	c2.ReadLine(1000, pb)
	if c2.IntegrityViolations() == 0 {
		t.Fatal("MECB tampering not detected")
	}
}

func TestWriteQueueBackpressure(t *testing.T) {
	c := newMC(Mode{})
	// Hammer one bank: acceptance times must eventually lag arrival.
	var last config.Cycle
	for i := 0; i < 1000; i++ {
		last = c.WriteLine(0, addr.Phys(0x100000), lineOf(byte(i)))
	}
	if last == 1 {
		t.Fatal("no backpressure after 1000 same-cycle writes")
	}
	if c.Stats().Get("mc.write_queue_stalls") == 0 {
		t.Fatal("no write-queue stalls recorded")
	}
}

func TestReadTimingCounterMissVsHit(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	pa := addr.Phys(0x110000)
	c.WriteLine(0, pa, lineOf(1))
	// First read at a fresh page: counters were cached by the write.
	_, d1 := c.ReadLine(10000, pa)
	hitLat := d1 - 10000
	// Evict metadata, then read: counter fetch exposed.
	c.MetadataCache().Clear()
	c.PCM.ResetTiming()
	_, d2 := c.ReadLine(20000, pa)
	missLat := d2 - 20000
	if missLat <= hitLat {
		t.Fatalf("metadata miss (%d) not slower than hit (%d)", missLat, hitLat)
	}
}

func TestPropertyRoundtripManyLines(t *testing.T) {
	c := newMC(Mode{MemEncryption: true, FileEncryption: true})
	c.InstallKey(0, 2, 2, fileKey(9))
	f := func(page uint16, li uint8, val byte, df bool) bool {
		pa := addr.Phys(uint64(page)*config.PageSize + uint64(li%config.LinesPerPage)*config.LineSize)
		if df {
			pa = pa.WithDF()
			c.TagPage(0, pa, 2, 2)
		}
		c.WriteLine(0, pa, lineOf(val))
		got, _ := c.ReadLine(0, pa)
		return got == lineOf(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	if c.IntegrityViolations() != 0 {
		t.Fatal("violations during property run")
	}
}

func TestPartitionedMetadataCache(t *testing.T) {
	cfg := config.Default()
	cfg.Security.PartitionMetadataCache = true
	c := New(cfg, Mode{MemEncryption: true, FileEncryption: true}, stats.NewSet())
	pa := addr.Phys(0x120000).WithDF()
	c.InstallKey(0, 8, 8, fileKey(8))
	c.TagPage(0, pa, 8, 8)
	c.WriteLine(0, pa, lineOf(21))
	got, _ := c.ReadLine(0, pa)
	if got != lineOf(21) {
		t.Fatal("roundtrip broken under partitioned metadata cache")
	}
	// MECB and FECB land in different partitions.
	mecbCache := c.mcacheFor(mecbAddr(pa.PageNum()))
	fecbCache := c.mcacheFor(fecbAddr(pa.PageNum()))
	if mecbCache == fecbCache {
		t.Fatal("MECB and FECB share a partition")
	}
	if !mecbCache.Contains(mecbAddr(pa.PageNum())) {
		t.Fatal("MECB missing from its partition")
	}
	if !fecbCache.Contains(fecbAddr(pa.PageNum())) {
		t.Fatal("FECB missing from its partition")
	}
	// Crash/recover still works with partitions.
	c.Crash(true)
	if err := c.Recover(); err != nil {
		t.Fatalf("recover with partitions: %v", err)
	}
	got, _ = c.ReadLine(0, pa)
	if got != lineOf(21) {
		t.Fatal("data lost across crash with partitioned cache")
	}
	if c.MetaHitRate() <= 0 {
		t.Fatal("aggregate hit rate not reported")
	}
}

func TestUnpartitionedCacheAliases(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	if c.mcacheFor(mecbAddr(1)) != c.mcacheFor(fecbAddr(1)) {
		t.Fatal("shared mode did not alias partitions")
	}
	if c.mcacheFor(mtNodeAddr(c.mt.PathNodes(0)[0])) != c.MetadataCache() {
		t.Fatal("tree nodes not in the shared cache")
	}
}

func TestMerkleWriteBackTelemetry(t *testing.T) {
	c := newMC(Mode{MemEncryption: true})
	reg := telemetry.New()
	c.Instrument(reg)
	// 64 sequential line writes to one page: one counter-block leaf updated
	// 64 times, zero external observations in between.
	base := addr.Phys(0x900000)
	for li := 0; li < config.LinesPerPage; li++ {
		c.WriteLine(0, base+addr.Phys(li*config.LineSize), lineOf(byte(li)))
	}
	if c.mt.Dirty() == 0 {
		t.Fatal("no pending lazy updates after a write burst")
	}
	root := c.MerkleRoot() // external observation point: must flush
	if c.mt.Dirty() != 0 {
		t.Fatal("MerkleRoot left pending updates")
	}
	snap := reg.Snapshot()
	// Write-back dedup: ~65 leaf updates (first touch + 64 bumps) collapse
	// into at most two flushes (the compulsory-miss Verify and the Root
	// observation), instead of one path recompute per write.
	if ups := snap.Counters["merkle.updates"]; ups < 64 {
		t.Fatalf("merkle.updates = %d, want >= 64", ups)
	}
	flushes := snap.Counters["merkle.flushes"]
	if flushes == 0 || flushes > 2 {
		t.Fatalf("merkle.flushes = %d, want 1..2 (write-back dedup)", flushes)
	}
	if h := snap.Histograms["merkle.dirty_leaves_per_flush"]; h == nil || h.Count != flushes {
		t.Fatalf("dirty_leaves_per_flush = %+v, want %d observations", h, flushes)
	}
	// The lazily maintained root must match a wholesale rebuild from the
	// same counters (the eager tree's value, by TestRebuildMatchesIncremental).
	c.rebuildTreeFromCounters()
	if c.MerkleRoot() != root {
		t.Fatal("lazy root differs from rebuilt root")
	}
}
