package core

import (
	"sync"

	"fsencr/internal/telemetry"
)

// Telemetry collection is opt-in: when enabled, every Run boots its system
// with a private telemetry registry (single-goroutine, so recording is
// race-free and deterministic), snapshots it at the end of the run, and
// RunBatch merges the per-run snapshots into a process-wide sink in batch
// input order. Because every recorded value derives from simulated cycles
// and the merge order is the input order — never completion order — the
// merged sink is byte-identical at any Parallelism.
var (
	telMu      sync.Mutex
	telEnabled bool
	telSink    = telemetry.NewSnapshot()
)

// EnableTelemetry turns on per-run telemetry collection and clears the sink.
func EnableTelemetry() {
	telMu.Lock()
	defer telMu.Unlock()
	telEnabled = true
	telSink = telemetry.NewSnapshot()
}

// TelemetryEnabled reports whether runs collect telemetry.
func TelemetryEnabled() bool {
	telMu.Lock()
	defer telMu.Unlock()
	return telEnabled
}

// ResetTelemetrySink clears the merged sink (e.g. between per-figure
// sections of a bench sweep) without touching the enabled flag.
func ResetTelemetrySink() {
	telMu.Lock()
	defer telMu.Unlock()
	telSink = telemetry.NewSnapshot()
}

// TelemetrySnapshot returns an independent copy of the merged sink.
func TelemetrySnapshot() *telemetry.Snapshot {
	telMu.Lock()
	defer telMu.Unlock()
	s := telemetry.NewSnapshot()
	s.Merge(telSink)
	s.Runs = telSink.Runs // Merge treats 0 as 1; preserve an empty sink's 0
	return s
}

// mergeTelemetry folds per-run snapshots into the sink, in slice order.
func mergeTelemetry(snaps []*telemetry.Snapshot) {
	telMu.Lock()
	defer telMu.Unlock()
	if !telEnabled {
		return
	}
	for _, s := range snaps {
		telSink.Merge(s)
	}
}
