package core

import (
	"sync"

	"fsencr/internal/telemetry"
)

// Telemetry collection is opt-in: when enabled, every Run boots its system
// with a private telemetry registry (single-goroutine, so recording is
// race-free and deterministic), snapshots it at the end of the run, and
// RunBatch merges the per-run snapshots into a process-wide sink in batch
// input order. Because every recorded value derives from simulated cycles
// and the merge order is the input order — never completion order — the
// merged sink is byte-identical at any Parallelism.
var (
	telMu      sync.Mutex
	telEnabled bool
	telSink    = telemetry.NewSnapshot()
)

// EnableTelemetry turns on per-run telemetry collection and clears the sink.
func EnableTelemetry() {
	telMu.Lock()
	defer telMu.Unlock()
	telEnabled = true
	telSink = telemetry.NewSnapshot()
}

// TelemetryEnabled reports whether runs collect telemetry.
func TelemetryEnabled() bool {
	telMu.Lock()
	defer telMu.Unlock()
	return telEnabled
}

// ResetTelemetrySink clears the merged sink (e.g. between per-figure
// sections of a bench sweep) without touching the enabled flag.
func ResetTelemetrySink() {
	telMu.Lock()
	defer telMu.Unlock()
	telSink = telemetry.NewSnapshot()
}

// TelemetrySnapshot returns an independent copy of the merged sink.
func TelemetrySnapshot() *telemetry.Snapshot {
	telMu.Lock()
	defer telMu.Unlock()
	s := telemetry.NewSnapshot()
	s.Merge(telSink)
	s.Runs = telSink.Runs // Merge treats 0 as 1; preserve an empty sink's 0
	return s
}

// mergeTelemetry folds per-run snapshots into the sink, in slice order.
func mergeTelemetry(snaps []*telemetry.Snapshot) {
	telMu.Lock()
	defer telMu.Unlock()
	if !telEnabled {
		return
	}
	for _, s := range snaps {
		telSink.Merge(s)
	}
}

// The live view: while a batch is in flight, completed runs accumulate
// here in completion order so the observability plane can show progress
// mid-batch. It is a display surface only — the canonical sink above
// merges in input order at batch end, and the pending view is dropped
// just before that merge, so determinism of the exports is untouched.
var (
	liveMu      sync.Mutex
	livePending *telemetry.Snapshot
)

func noteLiveTelemetry(s *telemetry.Snapshot) {
	liveMu.Lock()
	defer liveMu.Unlock()
	if livePending == nil {
		livePending = telemetry.NewSnapshot()
	}
	livePending.Merge(s)
}

func dropLiveTelemetry() {
	liveMu.Lock()
	defer liveMu.Unlock()
	livePending = nil
}

// LiveTelemetrySnapshot returns the merged sink plus any runs that have
// completed in the batch currently in flight. Between batches it equals
// TelemetrySnapshot; mid-batch it additionally reflects finished runs in
// completion order. Serve this to live readers; export the canonical
// TelemetrySnapshot to files.
func LiveTelemetrySnapshot() *telemetry.Snapshot {
	s := TelemetrySnapshot()
	liveMu.Lock()
	defer liveMu.Unlock()
	if livePending != nil {
		s.Merge(livePending)
	}
	return s
}
