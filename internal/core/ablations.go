package core

import (
	"fmt"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/sim"
	"fsencr/internal/stats"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify the sensitivity of FsEncr to
// the Osiris stop-loss bound, the Merkle-tree arity, and the OTT geometry.

// AblationStopLoss sweeps the Osiris stop-loss bound on a write-heavy
// workload: smaller bounds persist counters more eagerly (more NVM writes,
// smaller recovery window), larger bounds batch more.
func AblationStopLoss(workload string, ops int, bounds []int) (*stats.Table, error) {
	tb := stats.NewTable(
		fmt.Sprintf("Ablation: Osiris stop-loss bound (%s, %d ops)", workload, ops),
		"stop-loss", "cycles", "nvm writes", "stoploss persists")
	for _, n := range bounds {
		cfg := config.Default()
		cfg.Security.StopLoss = n
		r, err := Run(Request{Workload: workload, Scheme: SchemeFsEncr, Ops: ops, Cfg: &cfg})
		if err != nil {
			return nil, err
		}
		tb.AddRow(n, r.Cycles, r.NVMWrites, "")
	}
	return tb, nil
}

// AblationMerkleArity sweeps the integrity-tree fan-out: higher arity means
// shorter verification walks but larger per-node MAC scope. Tree levels
// are adjusted to keep coverage roughly constant.
func AblationMerkleArity(workload string, ops int) (*stats.Table, error) {
	tb := stats.NewTable(
		fmt.Sprintf("Ablation: Merkle-tree arity (%s, %d ops)", workload, ops),
		"arity", "levels", "cycles", "meta reads")
	for _, a := range []struct{ arity, levels int }{
		{2, 25}, {4, 13}, {8, 9}, {16, 7},
	} {
		cfg := config.Default()
		cfg.Security.MerkleArity = a.arity
		cfg.Security.MerkleLevels = a.levels
		r, err := Run(Request{Workload: workload, Scheme: SchemeFsEncr, Ops: ops, Cfg: &cfg})
		if err != nil {
			return nil, err
		}
		tb.AddRow(a.arity, a.levels, r.Cycles, r.MetaReads)
	}
	return tb, nil
}

// OTTGeometry is one point of the OTT-size ablation.
type OTTGeometry struct {
	Banks, PerBank int
}

// AblationOTTSize stresses the Open Tunnel Table with many encrypted files
// (far more than common workloads use) and sweeps its capacity: an
// undersized OTT forces sealed-region refills on the file-key lookup path.
// Returns the table and the measured cycles per geometry.
func AblationOTTSize(files, accesses int, geometries []OTTGeometry) (*stats.Table, []uint64, error) {
	tb := stats.NewTable(
		fmt.Sprintf("Ablation: OTT capacity (%d encrypted files, %d page touches)", files, accesses),
		"entries", "cycles", "ott hit rate", "region lookups")
	var cycles []uint64
	for _, g := range geometries {
		cfg := config.Default()
		cfg.Security.OTTBanks = g.Banks
		cfg.Security.OTTEntriesPerBank = g.PerBank
		c, hitRate, regionLookups, err := runManyFiles(cfg, files, accesses)
		if err != nil {
			return nil, nil, err
		}
		cycles = append(cycles, c)
		tb.AddRow(g.Banks*g.PerBank, c, fmt.Sprintf("%.2f%%", hitRate*100), regionLookups)
	}
	return tb, cycles, nil
}

// runManyFiles creates `files` encrypted files and touches them in uniform
// random order, measuring the access phase: every touch resolves a file key
// through the OTT, whose hit rate then tracks capacity/files.
func runManyFiles(cfg config.Config, files, accesses int) (cycles uint64, ottHitRate float64, regionLookups uint64, err error) {
	sys := kernel.Boot(cfg, SchemeFsEncr.MCMode(), kernel.ModeDAX)
	proc := sys.NewProcess(1000, 100)
	sys.Keyring.Login(1000, "pw")

	vas := make([]addr.Virt, files)
	for i := 0; i < files; i++ {
		f, ferr := sys.CreateFile(proc, fmt.Sprintf("f%04d.db", i), 0600, 8<<10, true, fmt.Sprintf("pass-%d", i))
		if ferr != nil {
			return 0, 0, 0, ferr
		}
		va, merr := proc.Mmap(f, 8<<10)
		if merr != nil {
			return 0, 0, 0, merr
		}
		vas[i] = va
		// First touch (untimed warmup): fault + tag.
		if werr := proc.Write(va, []byte{byte(i)}); werr != nil {
			return 0, 0, 0, werr
		}
		if perr := proc.Persist(va, 1); perr != nil {
			return 0, 0, 0, perr
		}
	}

	sys.M.SyncCores()
	sys.M.MC.PCM.ResetTiming()
	start := proc.Now()
	buf := make([]byte, 64)
	rng := sim.NewRNG(17)
	// Uniform-random file selection with a moving in-page offset: every
	// access misses the CPU caches and resolves a file key, and the OTT
	// hit rate tracks capacity/files rather than LRU's cyclic worst case.
	for i := 0; i < accesses; i++ {
		f := rng.Intn(files)
		off := addr.Virt(i%63*64 + 64)
		if err := proc.Read(vas[f]+off, buf); err != nil {
			return 0, 0, 0, err
		}
	}
	cycles = uint64(proc.Now() - start)
	ott := sys.M.MC.OTT()
	total := ott.Hits + ott.Misses
	if total > 0 {
		ottHitRate = float64(ott.Hits) / float64(total)
	}
	return cycles, ottHitRate, sys.M.MC.OTTRegion().Lookups, nil
}

// AblationCachePartition compares the shared metadata cache against the
// partitioned organization the paper sketches in §III-D, at equal total
// capacity.
func AblationCachePartition(workload string, ops int) (*stats.Table, error) {
	tb := stats.NewTable(
		fmt.Sprintf("Ablation: metadata cache organization (%s, %d ops)", workload, ops),
		"organization", "cycles", "meta reads", "meta writebacks")
	for _, part := range []bool{false, true} {
		cfg := config.Default()
		cfg.Security.PartitionMetadataCache = part
		r, err := Run(Request{Workload: workload, Scheme: SchemeFsEncr, Ops: ops, Cfg: &cfg})
		if err != nil {
			return nil, err
		}
		name := "shared"
		if part {
			name = "partitioned (1/4 MECB, 1/4 FECB, 1/2 MT)"
		}
		tb.AddRow(name, r.Cycles, r.MetaReads, r.MetaWritebacks)
	}
	return tb, nil
}
