// Package core is the experiment harness: it assembles a full system
// (machine + kernel + filesystem) for each protection scheme, runs the
// Table II workloads on it with an untimed setup phase and a timed
// measurement phase, and regenerates every figure of the paper's evaluation
// from the collected statistics.
package core

import (
	"fmt"
	"hash/fnv"

	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/runner"
	"fsencr/internal/telemetry"
	"fsencr/internal/workloads"
)

// Scheme is one of the system configurations compared in the evaluation.
type Scheme int

// Schemes.
const (
	// SchemePlain is ext4-dax with no encryption at all (Figure 3's
	// baseline).
	SchemePlain Scheme = iota
	// SchemeBaseline is ext4-dax plus counter-mode memory encryption with
	// Bonsai-Merkle-tree integrity ("① Baseline Security").
	SchemeBaseline
	// SchemeFsEncr adds the paper's hardware-assisted filesystem
	// encryption on top of the baseline ("② FsEncr").
	SchemeFsEncr
	// SchemeSWEncr is eCryptfs-style software filesystem encryption over
	// the page cache (no DAX).
	SchemeSWEncr
)

func (s Scheme) String() string {
	switch s {
	case SchemePlain:
		return "ext4-dax"
	case SchemeBaseline:
		return "baseline"
	case SchemeFsEncr:
		return "fsencr"
	case SchemeSWEncr:
		return "swencr"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// MCMode returns the memory-controller protection mode for the scheme.
func (s Scheme) MCMode() memctrl.Mode {
	switch s {
	case SchemeBaseline:
		return memctrl.Mode{MemEncryption: true}
	case SchemeFsEncr:
		return memctrl.Mode{MemEncryption: true, FileEncryption: true}
	default:
		return memctrl.Mode{}
	}
}

// AccessMode returns how file pages reach applications under the scheme.
func (s Scheme) AccessMode() kernel.AccessMode {
	if s == SchemeSWEncr {
		return kernel.ModeSWEncrypt
	}
	return kernel.ModeDAX
}

// FilesEncrypted reports whether benchmark files carry filesystem
// encryption under the scheme.
func (s Scheme) FilesEncrypted() bool {
	return s == SchemeFsEncr || s == SchemeSWEncr
}

// Request describes one simulation.
type Request struct {
	Workload string
	Scheme   Scheme
	// Ops is the number of timed operations per thread.
	Ops int
	// Seed drives the workload's random choices (defaults to 1).
	Seed uint64
	// Cfg overrides the Table III configuration when non-nil.
	Cfg *config.Config
}

// Result carries the measured statistics of one simulation.
type Result struct {
	Workload string
	Scheme   Scheme
	// Cycles is the wall-clock of the timed phase (max over threads).
	Cycles uint64
	// NVMReads/NVMWrites count PCM line accesses during the timed phase,
	// including security-metadata traffic.
	NVMReads  uint64
	NVMWrites uint64
	// MetaReads/MetaWritebacks count the metadata share of that traffic.
	MetaReads      uint64
	MetaWritebacks uint64
	// MetaHits/MetaMisses are metadata-cache probe outcomes.
	MetaHits   uint64
	MetaMisses uint64
	// Faults counts minor page faults during the timed phase.
	Faults uint64
	// ReadLatMean/ReadLatMax summarize the latency of demand reads that
	// missed to the memory controller (whole run, including setup).
	ReadLatMean float64
	ReadLatMax  uint64
	// Ops echoes the per-thread operation count.
	Ops int
	// Telemetry is the run's telemetry snapshot (nil unless telemetry
	// collection is enabled; see EnableTelemetry). Omitted from JSON
	// results — export it through the snapshot writers instead.
	Telemetry *telemetry.Snapshot `json:"-"`
	// Journal is the run's security-event journal (nil unless collection
	// is enabled; see EnableJournal). Export it through journal.WriteJSONL.
	Journal *journal.Log `json:"-"`
}

// CyclesPerOp returns average cycles per timed operation.
func (r Result) CyclesPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Ops)
}

// MintRunTraceID derives the deterministic trace ID of a simulation run
// from its request identity, so trace exports are byte-identical at any
// batch parallelism.
func MintRunTraceID(workload, scheme string, seed uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d", workload, scheme, seed)
	return telemetry.MintTraceID(h.Sum64(), 0)
}

// Run executes one simulation request.
func Run(req Request) (Result, error) {
	w, err := workloads.Lookup(req.Workload)
	if err != nil {
		return Result{}, err
	}
	cfg := config.Default()
	if req.Cfg != nil {
		cfg = *req.Cfg
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	if req.Ops <= 0 {
		return Result{}, fmt.Errorf("core: request needs a positive op count")
	}

	sys := kernel.Boot(cfg, req.Scheme.MCMode(), req.Scheme.AccessMode())
	var reg *telemetry.Registry
	var scope *telemetry.TraceScope
	if TelemetryEnabled() {
		// A private registry per run: the system is driven by a single
		// goroutine, so everything recorded is deterministic. The trace
		// scope must attach before Instrument so the components' cached
		// scope pointers are live.
		reg = telemetry.New()
		scope = telemetry.NewTraceScope()
		reg.AttachTraceScope(scope)
		sys.Instrument(reg)
	}
	var jrn *journal.Journal
	if JournalEnabled() {
		// Likewise a private journal per run: one emitter, simulation order.
		jrn = journal.New(journal.DefaultCapacity)
		sys.AttachJournal(jrn)
	}
	env := workloads.NewEnv(sys, w.Threads, req.Ops, req.Scheme.FilesEncrypted(), seed)
	if err := w.Setup(env); err != nil {
		return Result{}, fmt.Errorf("core: %s/%s setup: %w", req.Workload, req.Scheme, err)
	}

	// Measurement boundary: align thread clocks, quiesce bank timing, and
	// snapshot counters. Cache contents stay warm (the paper fast-forwards,
	// it does not flush).
	m := sys.M
	m.SyncCores()
	m.MC.PCM.ResetTiming()
	start := m.MaxCoreTime()
	before := m.Stats().Snapshot()
	var faultsBefore uint64
	for _, p := range env.Procs {
		faultsBefore += p.MinorFaults
	}

	// Trace the timed phase: the run root span encloses every span the
	// layers below record, so the chrome export renders a parent-linked
	// waterfall. The trace ID derives from the request identity alone —
	// byte-identical exports at any Parallelism.
	if scope != nil {
		scope.Begin(MintRunTraceID(req.Workload, req.Scheme.String(), seed), 0)
		scope.Enter()
	}

	if err := w.Run(env); err != nil {
		return Result{}, fmt.Errorf("core: %s/%s run: %w", req.Workload, req.Scheme, err)
	}

	after := m.Stats().Snapshot()
	delta := func(k string) uint64 { return after[k] - before[k] }
	var faultsAfter uint64
	for _, p := range env.Procs {
		faultsAfter += p.MinorFaults
	}

	res := Result{
		Workload:       req.Workload,
		Scheme:         req.Scheme,
		Cycles:         uint64(m.MaxCoreTime() - start),
		NVMReads:       delta("pcm.reads"),
		NVMWrites:      delta("pcm.writes"),
		MetaReads:      delta("mc.meta_reads"),
		MetaWritebacks: delta("mc.meta_writebacks"),
		MetaHits:       delta("mc.meta_hits"),
		MetaMisses:     delta("mc.meta_misses"),
		Faults:         faultsAfter - faultsBefore,
		ReadLatMean:    m.ReadLatency.Mean(),
		ReadLatMax:     m.ReadLatency.Max(),
		Ops:            req.Ops,
	}
	if reg != nil {
		if scope.Active() {
			scope.Exit("run", fmt.Sprintf("%s/%s", req.Workload, req.Scheme),
				uint64(start), uint64(m.MaxCoreTime()), 0)
			scope.End(true)
		} else {
			reg.Span("run", fmt.Sprintf("%s/%s", req.Workload, req.Scheme),
				uint64(start), uint64(m.MaxCoreTime()), 0)
		}
		snap := reg.Snapshot()
		// Fold the whole-run legacy stats counters into the snapshot so the
		// stats.Set and telemetry-native metrics export through one pipe
		// (the name spaces are disjoint, so nothing double-counts).
		snap.AddCounters(after)
		res.Telemetry = snap
	}
	if jrn != nil {
		res.Journal = jrn.Drain()
	}
	if v := m.MC.IntegrityViolations(); v != 0 {
		return res, fmt.Errorf("core: %d integrity violations during %s/%s", v, req.Workload, req.Scheme)
	}
	return res, nil
}

// Parallelism caps the number of worker goroutines the batch entry points
// (RunBatch and everything built on it — RunGroup, RunPair, the figure
// sweeps) may use. Zero or negative means one worker per CPU. The cmd
// front-ends set it from their -parallel flag before any runs start; it is
// not meant to be changed while a batch is in flight.
var Parallelism = 0

// RunBatch executes a batch of independent requests on a bounded worker
// pool and returns the results in input order. Concurrency is safe because
// every Run boots a private kernel.System — machine, stats.Set, RNGs and
// all — so runs share no mutable state (the one cross-run global, the
// memory controller's chip-key sequence, is atomic and never influences
// measurements). Failures are aggregated: every request still runs, and
// the returned error (a *runner.BatchError) names each failed index, so
// one broken workload cannot kill a whole figure sweep.
func RunBatch(reqs []Request) ([]Result, error) {
	rs, err := runner.Map(Parallelism, reqs, func(_ int, r Request) (Result, error) {
		res, err := Run(r)
		// Feed the live observability view as runs complete; the canonical
		// merges below happen once the whole batch is in, in input order.
		if res.Telemetry != nil {
			noteLiveTelemetry(res.Telemetry)
		}
		if res.Journal != nil {
			noteLiveJournal(res.Journal)
		}
		return res, err
	})
	// Drop the in-flight view before the canonical merges land so a live
	// reader never sees a run twice (it may briefly miss the batch between
	// the drop and the merge, which is the benign direction).
	dropLiveTelemetry()
	dropLiveJournal()
	if TelemetryEnabled() {
		// Merge per-run snapshots into the sink in *input* order — never
		// completion order — so the aggregate is identical at any
		// Parallelism. Failed runs carry a nil snapshot; Merge skips them.
		snaps := make([]*telemetry.Snapshot, len(rs))
		for i := range rs {
			snaps[i] = rs[i].Telemetry
		}
		mergeTelemetry(snaps)
	}
	if JournalEnabled() {
		// Per-run journals fold into the sink in input order too, so the
		// merged event sequence is identical at any Parallelism.
		parts := make([]*journal.Log, len(rs))
		for i := range rs {
			parts[i] = rs[i].Journal
		}
		mergeJournal(parts)
	}
	return rs, err
}

// RunPair runs the same workload under two schemes with identical seeds and
// returns (base, treatment). The two runs execute concurrently when
// Parallelism allows.
func RunPair(workload string, base, treatment Scheme, ops int, cfg *config.Config) (Result, Result, error) {
	rs, err := RunBatch([]Request{
		{Workload: workload, Scheme: base, Ops: ops, Cfg: cfg},
		{Workload: workload, Scheme: treatment, Ops: ops, Cfg: cfg},
	})
	if err != nil {
		return Result{}, Result{}, err
	}
	return rs[0], rs[1], nil
}

// Ratio returns t/b for the given metric extractor. A zero-over-zero ratio
// (e.g. NVM writes of a fully cached read workload) is reported as 1.0: the
// schemes are indistinguishable on that metric.
func Ratio(b, t Result, metric func(Result) float64) float64 {
	bv, tv := metric(b), metric(t)
	if bv == 0 {
		if tv == 0 {
			return 1
		}
		return 0
	}
	return tv / bv
}

// Metric extractors for figures.
var (
	MetricCycles = func(r Result) float64 { return float64(r.Cycles) }
	MetricReads  = func(r Result) float64 { return float64(r.NVMReads) }
	MetricWrites = func(r Result) float64 { return float64(r.NVMWrites) }
)
