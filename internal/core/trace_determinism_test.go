package core_test

import (
	"bytes"
	"testing"

	"fsencr/internal/core"
)

// traceExportBytes runs a small cross-scheme batch with telemetry (and so
// request tracing) enabled at the given parallelism, returning the merged
// sink's chrome-trace export bytes.
func traceExportBytes(t *testing.T, parallelism int) []byte {
	t.Helper()
	core.Parallelism = parallelism
	core.EnableTelemetry() // fresh sink per call
	reqs := []core.Request{
		{Workload: "ycsb", Scheme: core.SchemeFsEncr, Ops: 100},
		{Workload: "hashmap", Scheme: core.SchemeFsEncr, Ops: 100},
		{Workload: "ycsb", Scheme: core.SchemeBaseline, Ops: 100},
		{Workload: "ctree", Scheme: core.SchemeFsEncr, Ops: 100},
	}
	if _, err := core.RunBatch(reqs); err != nil {
		t.Fatalf("batch at parallelism %d: %v", parallelism, err)
	}
	var buf bytes.Buffer
	if err := core.TelemetrySnapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceExportDeterminism runs the same batch serially and at
// parallelism 8 with request tracing live and asserts the canonical
// chrome-trace exports are byte-identical — the trace plane must not cost
// any reproducibility. Under `go test -race` this also exercises the scope
// attach/flush path across concurrent runs.
func TestTraceExportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full batch comparison; skipped in -short")
	}
	defer func() { core.Parallelism = 0 }()

	serial := traceExportBytes(t, 1)
	parallel := traceExportBytes(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("chrome-trace export diverged between serial and parallel runs\nserial %d bytes, parallel %d bytes", len(serial), len(parallel))
	}
	// The export must actually carry trace linkage, or the comparison says
	// nothing about the trace plane.
	if !bytes.Contains(serial, []byte(`"trace"`)) || !bytes.Contains(serial, []byte(`"parent"`)) {
		t.Fatal("chrome-trace export carries no trace/parent annotations")
	}
	// And the timed phase of a run must have produced linked child spans
	// beneath the run root (DAX workloads drive the kernel syscall layer;
	// pcm/machine page spans belong to the page-cache path, exercised by
	// the server tests instead).
	if !bytes.Contains(serial, []byte(`"cat": "kernel"`)) {
		t.Fatal("no kernel spans in the traced timed phase")
	}
}
