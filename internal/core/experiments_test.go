package core

import (
	"testing"
)

// Integration tests for the figure pipelines. They use reduced op counts
// (the bench harness runs the full-scale versions) and assert the paper's
// qualitative shapes, not absolute numbers.

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// YCSB's software-encryption penalty needs its working set to exceed
	// the page cache; 1500 ops gives a 48k-record table (~3000 pages).
	_, ratios, err := Fig3(1500)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ratios {
		if r < 1.3 {
			t.Fatalf("software encryption too cheap for %s: %.2fx", WhisperWorkloads[i], r)
		}
		if r > 30 {
			t.Fatalf("software encryption implausibly slow for %s: %.2fx", WhisperWorkloads[i], r)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	res, err := Fig11(600)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Ratios {
		if r < 0.99 || r > 1.5 {
			t.Fatalf("FsEncr slowdown for %s out of band: %.3f", WhisperWorkloads[i], r)
		}
	}
	// The headline claim: hardware support removes the vast majority of
	// filesystem-encryption overhead (paper: 98.33%).
	if res.Reduction < 0.80 {
		t.Fatalf("slowdown reduction only %.1f%%", res.Reduction*100)
	}
}

func TestFig8To10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	prs, err := PMEMKVPairs(400)
	if err != nil {
		t.Fatal(err)
	}
	_, slow := Fig8(prs)
	_, writes := Fig9(prs)
	_, reads := Fig10(prs)
	for i, name := range PMEMKVWorkloads {
		if slow[i] < 0.98 || slow[i] > 1.6 {
			t.Fatalf("%s slowdown out of band: %.3f", name, slow[i])
		}
		if writes[i] < 0.98 || reads[i] < 0.9 {
			t.Fatalf("%s traffic ratios implausible: w=%.3f r=%.3f", name, writes[i], reads[i])
		}
	}
	// Read-intensive S workloads must be near-free; write-intensive ones
	// must carry visible write amplification.
	idx := func(n string) int {
		for i, w := range PMEMKVWorkloads {
			if w == n {
				return i
			}
		}
		return -1
	}
	if slow[idx("readrandom-s")] > 1.05 {
		t.Fatalf("readrandom-s overhead too high: %.3f", slow[idx("readrandom-s")])
	}
	if writes[idx("fillrandom-s")] < 1.05 {
		t.Fatalf("fillrandom-s write amplification missing: %.3f", writes[idx("fillrandom-s")])
	}
}

func TestFig12To14Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	prs, err := SyntheticPairs(4000)
	if err != nil {
		t.Fatal(err)
	}
	_, slow := Fig12(prs)
	_, _ = Fig13(prs)
	_, reads := Fig14(prs)
	for i, name := range SyntheticWorkloads {
		if slow[i] < 0.99 || slow[i] > 2.0 {
			t.Fatalf("%s slowdown out of band: %.3f", name, slow[i])
		}
		if reads[i] < 0.99 {
			t.Fatalf("%s read ratio < 1: %.3f", name, reads[i])
		}
	}
}

func TestFig15Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	_, series, err := Fig15(250)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig15Workloads) {
		t.Fatalf("series for %d workloads", len(series))
	}
	for name, pts := range series {
		if len(pts) != len(Fig15CacheSizes) {
			t.Fatalf("%s has %d points", name, len(pts))
		}
		for _, p := range pts {
			if p < -5 || p > 100 {
				t.Fatalf("%s slowdown %.2f%% implausible", name, p)
			}
		}
	}
}

func TestAllSchemesAllWorkloadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	for _, wl := range []string{"dax2", "dax4", "fillseq-l", "overwrite-s", "readseq-s", "ycsb"} {
		for _, sc := range []Scheme{SchemePlain, SchemeBaseline, SchemeFsEncr, SchemeSWEncr} {
			if _, err := Run(Request{Workload: wl, Scheme: sc, Ops: 60}); err != nil {
				t.Fatalf("%s/%s: %v", wl, sc, err)
			}
		}
	}
}
