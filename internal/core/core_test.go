package core

import (
	"strings"
	"testing"

	"fsencr/internal/kernel"
)

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s       Scheme
		str     string
		mem     bool
		file    bool
		access  kernel.AccessMode
		filesOn bool
	}{
		{SchemePlain, "ext4-dax", false, false, kernel.ModeDAX, false},
		{SchemeBaseline, "baseline", true, false, kernel.ModeDAX, false},
		{SchemeFsEncr, "fsencr", true, true, kernel.ModeDAX, true},
		{SchemeSWEncr, "swencr", false, false, kernel.ModeSWEncrypt, true},
	}
	for _, c := range cases {
		if c.s.String() != c.str {
			t.Fatalf("%v String = %q", c.s, c.s.String())
		}
		m := c.s.MCMode()
		if m.MemEncryption != c.mem || m.FileEncryption != c.file {
			t.Fatalf("%v MCMode = %+v", c.s, m)
		}
		if c.s.AccessMode() != c.access {
			t.Fatalf("%v AccessMode = %v", c.s, c.s.AccessMode())
		}
		if c.s.FilesEncrypted() != c.filesOn {
			t.Fatalf("%v FilesEncrypted = %v", c.s, c.s.FilesEncrypted())
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Request{Workload: "nope", Scheme: SchemePlain, Ops: 10}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(Request{Workload: "dax1", Scheme: SchemePlain}); err == nil {
		t.Fatal("zero ops accepted")
	}
}

func TestRunProducesMeasurements(t *testing.T) {
	r, err := Run(Request{Workload: "hashmap", Scheme: SchemeFsEncr, Ops: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Fatal("zero cycles measured")
	}
	if r.NVMWrites == 0 {
		t.Fatal("write-heavy workload recorded no NVM writes")
	}
	if r.Workload != "hashmap" || r.Scheme != SchemeFsEncr || r.Ops != 100 {
		t.Fatalf("result identity wrong: %+v", r)
	}
	if r.CyclesPerOp() <= 0 {
		t.Fatal("CyclesPerOp not positive")
	}
}

func TestRunDeterminism(t *testing.T) {
	req := Request{Workload: "ycsb", Scheme: SchemeFsEncr, Ops: 80, Seed: 5}
	a, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same request diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesAccessStream(t *testing.T) {
	a, _ := Run(Request{Workload: "fillrandom-s", Scheme: SchemePlain, Ops: 80, Seed: 1})
	b, _ := Run(Request{Workload: "fillrandom-s", Scheme: SchemePlain, Ops: 80, Seed: 2})
	if a.Cycles == b.Cycles && a.NVMWrites == b.NVMWrites {
		t.Log("warning: different seeds produced identical measurements (possible but unlikely)")
	}
}

func TestRatio(t *testing.T) {
	mk := func(c uint64) Result { return Result{Cycles: c} }
	if r := Ratio(mk(100), mk(150), MetricCycles); r != 1.5 {
		t.Fatalf("ratio = %v", r)
	}
	if r := Ratio(mk(0), mk(0), MetricCycles); r != 1 {
		t.Fatalf("0/0 ratio = %v", r)
	}
	if r := Ratio(mk(0), mk(5), MetricCycles); r != 0 {
		t.Fatalf("x/0 ratio = %v", r)
	}
}

func TestSchemeOrderingOnWriteHeavyWorkload(t *testing.T) {
	// More protection must never make the system faster; software
	// encryption must be the slowest by a wide margin.
	ops := 150
	var cycles []uint64
	for _, s := range []Scheme{SchemePlain, SchemeBaseline, SchemeFsEncr, SchemeSWEncr} {
		r, err := Run(Request{Workload: "ctree", Scheme: s, Ops: ops})
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, r.Cycles)
	}
	if !(cycles[0] <= cycles[1] && cycles[1] <= cycles[2]) {
		t.Fatalf("protection ordering violated: %v", cycles)
	}
	if cycles[3] < cycles[2]*2 {
		t.Fatalf("software encryption (%d) not clearly slower than FsEncr (%d)", cycles[3], cycles[2])
	}
}

func TestFsEncrAddsMetadataTraffic(t *testing.T) {
	b, f, err := RunPair("hashmap", SchemeBaseline, SchemeFsEncr, 150, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.NVMWrites <= b.NVMWrites {
		t.Fatal("FsEncr did not add metadata write traffic")
	}
	if f.MetaWritebacks+f.MetaReads <= b.MetaWritebacks+b.MetaReads {
		t.Fatal("FsEncr did not add metadata accesses")
	}
}

func TestTableII(t *testing.T) {
	out := TableII().String()
	for _, want := range []string{"dax1", "fillrandom-s", "ycsb", "hashmap", "ctree", "readseq-l"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestWorkloadGroupsMatchRegistry(t *testing.T) {
	if len(PMEMKVWorkloads) != 10 {
		t.Fatalf("PMEMKV group has %d entries", len(PMEMKVWorkloads))
	}
	if len(WhisperWorkloads) != 3 || len(SyntheticWorkloads) != 4 {
		t.Fatal("workload group sizes wrong")
	}
}
