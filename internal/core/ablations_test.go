package core

import (
	"testing"

	"fsencr/internal/config"
)

func TestAblationStopLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	tb, err := AblationStopLoss("hashmap", 250, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	t.Logf("\n%s", tb)
}

func TestAblationStopLossWritePressure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// A stop-loss of 1 persists every counter bump: strictly more NVM
	// writes than a bound of 16.
	cfgWrites := func(n int) uint64 {
		cfg := defaultWithStopLoss(n)
		r, err := Run(Request{Workload: "fillseq-s", Scheme: SchemeFsEncr, Ops: 300, Cfg: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		return r.NVMWrites
	}
	eager, lazy := cfgWrites(1), cfgWrites(16)
	if eager <= lazy {
		t.Fatalf("stop-loss 1 wrote %d, stop-loss 16 wrote %d (expected eager > lazy)", eager, lazy)
	}
}

func TestAblationMerkleArity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	tb, err := AblationMerkleArity("dax3", 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	t.Logf("\n%s", tb)
}

func TestAblationOTTSize(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	geoms := []OTTGeometry{{1, 32}, {1, 128}, {8, 128}}
	tb, cycles, err := AblationOTTSize(256, 4000, geoms)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	// A 1024-entry OTT holds all 256 file keys; a 32-entry one thrashes.
	// The large table must not be slower than the tiny one.
	if cycles[2] > cycles[0] {
		t.Fatalf("full-size OTT (%d cycles) slower than 32-entry OTT (%d cycles)", cycles[2], cycles[0])
	}
}

func defaultWithStopLoss(n int) config.Config {
	cfg := config.Default()
	cfg.Security.StopLoss = n
	return cfg
}

func TestAblationCachePartition(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	tb, err := AblationCachePartition("hashmap", 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	t.Logf("\n%s", tb)
}
