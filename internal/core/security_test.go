package core

import (
	"bytes"
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/kernel"
)

// victim sets up a system with two users' encrypted files holding known
// secrets and returns everything an attacker scenario needs.
type victim struct {
	sys     *kernel.System
	alice   *kernel.Process
	bob     *kernel.Process
	fileA   *fs.File
	fileB   *fs.File
	secretA []byte
	secretB []byte
}

const (
	alicePass = "alice-passphrase"
	bobPass   = "bob-passphrase"
)

func setupVictim(t *testing.T, scheme Scheme) *victim {
	t.Helper()
	v := &victim{
		sys:     kernel.Boot(config.Default(), scheme.MCMode(), scheme.AccessMode()),
		secretA: []byte("ALICE-SECRET-0123456789abcdefghi"),
		secretB: []byte("BOB-SECRET-zyxwvutsrqponmlkjihgf"),
	}
	v.alice = v.sys.NewProcess(1000, 100)
	v.bob = v.sys.NewProcess(1001, 101)
	var err error
	enc := scheme.FilesEncrypted()
	v.fileA, err = v.sys.CreateFile(v.alice, "alice.db", 0600, 8<<10, enc, alicePass)
	if err != nil {
		t.Fatal(err)
	}
	v.fileB, err = v.sys.CreateFile(v.bob, "bob.db", 0600, 8<<10, enc, bobPass)
	if err != nil {
		t.Fatal(err)
	}
	write := func(p *kernel.Process, f *fs.File, secret []byte) {
		va, err := p.Mmap(f, 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(va, secret); err != nil {
			t.Fatal(err)
		}
		if err := p.Persist(va, uint64(len(secret))); err != nil {
			t.Fatal(err)
		}
	}
	write(v.alice, v.fileA, v.secretA)
	write(v.bob, v.fileB, v.secretB)
	v.sys.M.WritebackAll()
	return v
}

// pageAddr returns the (DF-tagged, where applicable) physical address of a
// file's first page.
func (v *victim) pageAddr(f *fs.File, df bool) addr.Phys {
	pa, _ := f.PagePA(0)
	if df {
		pa = pa.WithDF()
	}
	return pa
}

// TestTableIVulnerability reproduces Table I: which secrets fall when which
// keys are revealed, for System A (memory encryption only) and System C
// (per-file keys, FsEncr). System B (one key for the whole filesystem) sits
// between them and is covered by the A and C extremes.
func TestTableIVulnerability(t *testing.T) {
	// Row 1: memory encryption key revealed.
	t.Run("MemKeyRevealed/SystemA", func(t *testing.T) {
		v := setupVictim(t, SchemeBaseline) // System A: files are ordinary memory
		line := v.sys.M.MC.DecryptWithMemoryKeyOnly(v.pageAddr(v.fileA, false))
		if !bytes.Contains(line[:], v.secretA[:16]) {
			t.Fatal("System A: memory key should expose file data (vulnerable per Table I)")
		}
	})
	t.Run("MemKeyRevealed/SystemC", func(t *testing.T) {
		v := setupVictim(t, SchemeFsEncr) // System C: per-file keys on top
		for _, f := range []*fs.File{v.fileA, v.fileB} {
			line := v.sys.M.MC.DecryptWithMemoryKeyOnly(v.pageAddr(f, true))
			if bytes.Contains(line[:], v.secretA[:16]) || bytes.Contains(line[:], v.secretB[:16]) {
				t.Fatal("System C: memory key alone exposed file data")
			}
		}
	})

	// Row 2: memory key + one user's file key revealed: in System C only
	// that user's files fall.
	t.Run("OneFileKeyRevealed/SystemC", func(t *testing.T) {
		v := setupVictim(t, SchemeFsEncr)
		// Alice's passphrase leaks: her file opens, Bob's does not.
		if _, err := v.sys.OpenFile(v.alice, "alice.db", fs.ReadAccess, alicePass); err != nil {
			t.Fatalf("legitimate open failed: %v", err)
		}
		if _, err := v.sys.OpenFile(v.bob, "bob.db", fs.ReadAccess, alicePass); err == nil {
			t.Fatal("Alice's leaked passphrase opened Bob's file")
		}
	})

	// Row 3: all keys revealed: everything falls, in any system. (Sanity
	// check that the legitimate path works at all.)
	t.Run("AllKeysRevealed", func(t *testing.T) {
		v := setupVictim(t, SchemeFsEncr)
		if _, err := v.sys.OpenFile(v.alice, "alice.db", fs.ReadAccess, alicePass); err != nil {
			t.Fatal(err)
		}
		if _, err := v.sys.OpenFile(v.bob, "bob.db", fs.ReadAccess, bobPass); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStolenDIMM models Attacker X (Figure 4): physical possession of the
// NVM module. Raw scans must reveal nothing under any encrypted scheme.
func TestStolenDIMM(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBaseline, SchemeFsEncr} {
		v := setupVictim(t, scheme)
		raw := v.sys.M.MC.RawLine(v.pageAddr(v.fileA, scheme == SchemeFsEncr))
		if bytes.Contains(raw[:], v.secretA[:16]) {
			t.Fatalf("%v: plaintext on stolen DIMM", scheme)
		}
	}
	// Under no encryption, the attack succeeds — the contrast that
	// motivates memory encryption at all.
	v := setupVictim(t, SchemePlain)
	raw := v.sys.M.MC.RawLine(v.pageAddr(v.fileA, false))
	if !bytes.Contains(raw[:], v.secretA[:16]) {
		t.Fatal("plain scheme unexpectedly hid data")
	}
}

// TestAlienOSBoot models the §VI internal attacker: physical access, boots
// their own OS, fails admin authentication. FsEncr locks and file data
// stays wrapped in file OTPs.
func TestAlienOSBoot(t *testing.T) {
	v := setupVictim(t, SchemeFsEncr)
	if v.sys.AuthenticateAdmin("stolen-guess", "real-admin-pass") {
		t.Fatal("wrong admin passphrase accepted")
	}
	// Attacker scans memory through the (locked) controller.
	v.sys.M.Crash(true)
	if err := v.sys.M.Recover(); err != nil {
		t.Fatal(err)
	}
	pa := v.pageAddr(v.fileA, true)
	line, _ := v.sys.M.MC.ReadLine(0, pa)
	if bytes.Contains(line[:], v.secretA[:16]) {
		t.Fatal("locked FsEncr served file plaintext to alien OS")
	}
}

// TestOTTRegionHidesKeys verifies §VI "Memory Encryption Key Revealed": file
// keys spilled to memory live only in the OTT-key-sealed region, so the
// memory key alone cannot recover them.
func TestOTTRegionHidesKeys(t *testing.T) {
	v := setupVictim(t, SchemeFsEncr)
	// Force the OTT entries into the sealed region.
	v.sys.M.Crash(true) // backup power flushes OTT to region
	if err := v.sys.M.Recover(); err != nil {
		t.Fatal(err)
	}
	aliceKey := kernel.DeriveFileKey(alicePass, v.fileA.Salt)
	for _, rec := range v.sys.M.MC.OTTRegion().SealedRecords() {
		if bytes.Contains(rec[:], aliceKey[:8]) {
			t.Fatal("file key bytes visible in sealed OTT region")
		}
	}
}

// TestSecureDeletionEndToEnd verifies §VI secure deletion: after unlink,
// even the owner with the correct key cannot recover the data from the old
// physical pages.
func TestSecureDeletionEndToEnd(t *testing.T) {
	v := setupVictim(t, SchemeFsEncr)
	pa := v.pageAddr(v.fileA, true)
	if err := v.sys.Unlink(v.alice, "alice.db"); err != nil {
		t.Fatal(err)
	}
	line, _ := v.sys.M.MC.ReadLine(0, pa)
	if bytes.Contains(line[:], v.secretA[:16]) {
		t.Fatal("deleted data recoverable from old pages")
	}
}
