package core

import "testing"

// TestParallelRunnerDeterminism is the regression gate for the parallel
// experiment runner: a RunGroup executed strictly sequentially and one
// fanned out over many workers must produce identical Result structs for
// every workload — same cycles, same NVM traffic, same fault counts.
// Per-run isolation (each Run boots a private kernel.System) is what makes
// this hold; if a future change introduces cross-run shared state, this
// test is designed to catch it.
func TestParallelRunnerDeterminism(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	const ops = 200
	names := []string{"ycsb", "hashmap", "fillrandom-s", "dax2"}

	Parallelism = 1
	seq, err := RunGroup(names, SchemeBaseline, SchemeFsEncr, ops, nil)
	if err != nil {
		t.Fatalf("sequential group: %v", err)
	}

	// More workers than runs, so every simulation gets its own goroutine.
	Parallelism = 16
	par, err := RunGroup(names, SchemeBaseline, SchemeFsEncr, ops, nil)
	if err != nil {
		t.Fatalf("parallel group: %v", err)
	}

	for _, name := range names {
		for i, which := range []string{"base", "treatment"} {
			if seq[name][i] != par[name][i] {
				t.Errorf("%s/%s diverged:\n sequential: %+v\n parallel:   %+v",
					name, which, seq[name][i], par[name][i])
			}
		}
	}
}

// TestRunBatchOrderAndAggregation pins the batch contract the figure
// tables rely on: results come back in input order, and a failing request
// does not abort the rest of the batch.
func TestRunBatchOrderAndAggregation(t *testing.T) {
	reqs := []Request{
		{Workload: "ycsb", Scheme: SchemeBaseline, Ops: 50},
		{Workload: "no-such-workload", Scheme: SchemeFsEncr, Ops: 50},
		{Workload: "dax1", Scheme: SchemeFsEncr, Ops: 50},
	}
	rs, err := RunBatch(reqs)
	if err == nil {
		t.Fatal("bad workload did not surface an error")
	}
	if len(rs) != len(reqs) {
		t.Fatalf("result slice resized: %d", len(rs))
	}
	if rs[0].Workload != "ycsb" || rs[0].Cycles == 0 {
		t.Fatalf("request 0 lost: %+v", rs[0])
	}
	if rs[2].Workload != "dax1" || rs[2].Cycles == 0 {
		t.Fatalf("request after the failure did not run: %+v", rs[2])
	}
}
