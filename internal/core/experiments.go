package core

import (
	"fmt"

	"fsencr/internal/config"
	"fsencr/internal/stats"
	"fsencr/internal/workloads"
)

// Workload groups used by the figures.
var (
	// PMEMKVWorkloads are the ten Figure 8–10 benchmarks.
	PMEMKVWorkloads = []string{
		"fillrandom-s", "fillrandom-l",
		"fillseq-s", "fillseq-l",
		"overwrite-s", "overwrite-l",
		"readrandom-s", "readrandom-l",
		"readseq-s", "readseq-l",
	}
	// WhisperWorkloads are the Figure 3/11 benchmarks.
	WhisperWorkloads = []string{"ycsb", "hashmap", "ctree"}
	// SyntheticWorkloads are the Figure 12–14 microbenchmarks.
	SyntheticWorkloads = []string{"dax1", "dax2", "dax3", "dax4"}
)

// PairResults maps workload -> (base result, treatment result).
type PairResults map[string][2]Result

// RunGroup runs every workload in names under (base, treatment), fanning
// the whole group out over the parallel runner.
func RunGroup(names []string, base, treatment Scheme, ops int, cfg *config.Config) (PairResults, error) {
	return RunGroupFunc(names, base, treatment, func(string) int { return ops }, cfg)
}

// RunGroupFunc is RunGroup with a per-workload op count (the PMEMKV S/L
// variants differ in BenchOps, so full-scale sweeps need this form). All
// 2*len(names) simulations are submitted as one batch so the worker pool
// sees maximum width; assembly back into PairResults is order-independent
// because the batch preserves input order.
func RunGroupFunc(names []string, base, treatment Scheme, opsFor func(name string) int, cfg *config.Config) (PairResults, error) {
	reqs := groupRequests(names, base, treatment, opsFor, cfg)
	rs, err := RunBatch(reqs)
	if err != nil {
		return nil, err
	}
	return assemblePairs(names, rs), nil
}

// groupRequests lays out a group sweep as [base0, treat0, base1, treat1, …].
func groupRequests(names []string, base, treatment Scheme, opsFor func(string) int, cfg *config.Config) []Request {
	reqs := make([]Request, 0, 2*len(names))
	for _, name := range names {
		ops := opsFor(name)
		reqs = append(reqs,
			Request{Workload: name, Scheme: base, Ops: ops, Cfg: cfg},
			Request{Workload: name, Scheme: treatment, Ops: ops, Cfg: cfg})
	}
	return reqs
}

// assemblePairs inverts groupRequests's layout.
func assemblePairs(names []string, rs []Result) PairResults {
	out := make(PairResults, len(names))
	for i, name := range names {
		out[name] = [2]Result{rs[2*i], rs[2*i+1]}
	}
	return out
}

// minRatioBase is the smallest base-metric value for which a normalized
// ratio is meaningful; below it (e.g. a handful of stray writes in a pure
// read workload) the table shows the absolute counts and "n/a", and the
// entry is excluded from the average — matching how the paper's bars would
// simply be absent.
const minRatioBase = 100

// ratioTable renders one normalized-metric table over a workload group.
// The returned slice carries one ratio per name; entries with a negligible
// base are reported as 1 (indistinguishable) in the slice.
func ratioTable(title, metricName string, names []string, prs PairResults, metric func(Result) float64) (*stats.Table, []float64) {
	tb := stats.NewTable(title, "benchmark", metricName+" (base)", metricName+" (treatment)", "normalized")
	ratios := make([]float64, 0, len(names))
	avgIn := make([]float64, 0, len(names))
	for _, name := range names {
		pr := prs[name]
		if metric(pr[0]) < minRatioBase {
			tb.AddRow(name, metric(pr[0]), metric(pr[1]), "n/a")
			ratios = append(ratios, 1)
			continue
		}
		r := Ratio(pr[0], pr[1], metric)
		ratios = append(ratios, r)
		avgIn = append(avgIn, r)
		tb.AddRow(name, metric(pr[0]), metric(pr[1]), r)
	}
	tb.AddRow("average", "", "", stats.Mean(avgIn))
	return tb, ratios
}

// Fig3 reproduces Figure 3: software filesystem encryption (eCryptfs model)
// slowdown over plain ext4-dax for the Whisper benchmarks.
func Fig3(ops int) (*stats.Table, []float64, error) {
	prs, err := RunGroup(WhisperWorkloads, SchemePlain, SchemeSWEncr, ops, nil)
	if err != nil {
		return nil, nil, err
	}
	tb, ratios := ratioTable(
		"Figure 3: overheads of software encryption (normalized to ext4-dax)",
		"cycles", WhisperWorkloads, prs, MetricCycles)
	return tb, ratios, nil
}

// PMEMKVPairs runs every PMEMKV workload once under Baseline and FsEncr;
// Figures 8, 9 and 10 are different projections of the same runs.
func PMEMKVPairs(ops int) (PairResults, error) {
	return RunGroup(PMEMKVWorkloads, SchemeBaseline, SchemeFsEncr, ops, nil)
}

// Fig8 projects slowdown from PMEMKV runs.
func Fig8(prs PairResults) (*stats.Table, []float64) {
	return ratioTable("Figure 8: slowdown, PMEMKV (normalized to baseline security)",
		"cycles", PMEMKVWorkloads, prs, MetricCycles)
}

// Fig9 projects NVM write counts from PMEMKV runs.
func Fig9(prs PairResults) (*stats.Table, []float64) {
	return ratioTable("Figure 9: number of NVM writes, PMEMKV (normalized to baseline)",
		"writes", PMEMKVWorkloads, prs, MetricWrites)
}

// Fig10 projects NVM read counts from PMEMKV runs.
func Fig10(prs PairResults) (*stats.Table, []float64) {
	return ratioTable("Figure 10: number of NVM reads, PMEMKV (normalized to baseline)",
		"reads", PMEMKVWorkloads, prs, MetricReads)
}

// Fig11Result carries the three panels of Figure 11 plus the software
// encryption comparison backing the paper's "98.33% slowdown reduction".
type Fig11Result struct {
	Slowdown  *stats.Table
	Writes    *stats.Table
	Reads     *stats.Table
	Ratios    []float64 // FsEncr slowdowns, per workload
	SWRatios  []float64 // SWEncr-over-plain slowdowns, per workload
	Reduction float64   // 1 - mean(FsEncr overhead)/mean(SWEncr overhead)
}

// Fig11 reproduces Figure 11: Whisper slowdown/writes/reads for FsEncr over
// the baseline, and computes the slowdown reduction versus software
// encryption.
func Fig11(ops int) (Fig11Result, error) {
	// The FsEncr and software-encryption sweeps are independent; submit
	// them as one 4*len(workloads) batch so both fill the worker pool.
	opsFor := func(string) int { return ops }
	fsReqs := groupRequests(WhisperWorkloads, SchemeBaseline, SchemeFsEncr, opsFor, nil)
	swReqs := groupRequests(WhisperWorkloads, SchemePlain, SchemeSWEncr, opsFor, nil)
	rs, err := RunBatch(append(append([]Request{}, fsReqs...), swReqs...))
	if err != nil {
		return Fig11Result{}, err
	}
	prs := assemblePairs(WhisperWorkloads, rs[:len(fsReqs)])
	sw := assemblePairs(WhisperWorkloads, rs[len(fsReqs):])

	var out Fig11Result
	out.Slowdown, out.Ratios = ratioTable(
		"Figure 11a: slowdown, Whisper (normalized to baseline)",
		"cycles", WhisperWorkloads, prs, MetricCycles)
	out.Writes, _ = ratioTable(
		"Figure 11b: number of NVM writes, Whisper (normalized to baseline)",
		"writes", WhisperWorkloads, prs, MetricWrites)
	out.Reads, _ = ratioTable(
		"Figure 11c: number of NVM reads, Whisper (normalized to baseline)",
		"reads", WhisperWorkloads, prs, MetricReads)
	for _, name := range WhisperWorkloads {
		pr := sw[name]
		out.SWRatios = append(out.SWRatios, Ratio(pr[0], pr[1], MetricCycles))
	}
	fsOver := stats.Mean(out.Ratios) - 1
	swOver := stats.Mean(out.SWRatios) - 1
	if swOver > 0 {
		out.Reduction = 1 - fsOver/swOver
	}
	return out, nil
}

// SyntheticPairs runs the DAX microbenchmarks under Baseline and FsEncr;
// Figures 12–14 project them.
func SyntheticPairs(ops int) (PairResults, error) {
	return RunGroup(SyntheticWorkloads, SchemeBaseline, SchemeFsEncr, ops, nil)
}

// Fig12 projects synthetic-microbenchmark slowdown.
func Fig12(prs PairResults) (*stats.Table, []float64) {
	return ratioTable("Figure 12: slowdown, synthetic microbenchmarks (normalized to baseline)",
		"cycles", SyntheticWorkloads, prs, MetricCycles)
}

// Fig13 projects synthetic-microbenchmark NVM writes.
func Fig13(prs PairResults) (*stats.Table, []float64) {
	return ratioTable("Figure 13: number of NVM writes, synthetic (normalized to baseline)",
		"writes", SyntheticWorkloads, prs, MetricWrites)
}

// Fig14 projects synthetic-microbenchmark NVM reads.
func Fig14(prs PairResults) (*stats.Table, []float64) {
	return ratioTable("Figure 14: number of NVM reads, synthetic (normalized to baseline)",
		"reads", SyntheticWorkloads, prs, MetricReads)
}

// Fig15CacheSizes are the metadata-cache sizes swept in Figure 15
// (128 KB – 2 MB, as in the paper).
var Fig15CacheSizes = []int{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}

// Fig15Workloads are the representatives studied in Figure 15.
var Fig15Workloads = []string{"fillrandom-l", "hashmap", "dax2"}

// fig15Ops gives each Figure 15 workload an op count whose security-
// metadata working set straddles the swept cache range, so capacity
// behaviour (not just compulsory misses) is visible. The hashmap run is
// longer than its Table II default because its footprint grows slowly.
var fig15Ops = map[string]int{
	"fillrandom-l": 1500,
	"hashmap":      20000,
	"dax2":         400000,
}

// Fig15 reproduces the metadata-cache sensitivity study: percent slowdown
// of FsEncr over the baseline at each cache size. opsOverride <= 0 uses
// each workload's full-scale BenchOps.
func Fig15(opsOverride int) (*stats.Table, map[string][]float64, error) {
	tb := stats.NewTable("Figure 15: sensitivity to metadata cache size (% slowdown over baseline)",
		append([]string{"benchmark"}, sizeLabels()...)...)
	// The whole (workload × cache size) grid is one batch of independent
	// pairs — 2 * len(workloads) * len(sizes) simulations fanned out at
	// once — laid out row-major so assembly below can walk it in order.
	reqs := make([]Request, 0, 2*len(Fig15Workloads)*len(Fig15CacheSizes))
	for _, name := range Fig15Workloads {
		ops := opsOverride
		if ops <= 0 {
			ops = fig15Ops[name]
		}
		for _, size := range Fig15CacheSizes {
			cfg := config.Default()
			cfg.Security.MetadataCacheSize = size
			reqs = append(reqs,
				Request{Workload: name, Scheme: SchemeBaseline, Ops: ops, Cfg: &cfg},
				Request{Workload: name, Scheme: SchemeFsEncr, Ops: ops, Cfg: &cfg})
		}
	}
	rs, err := RunBatch(reqs)
	if err != nil {
		return nil, nil, err
	}
	series := make(map[string][]float64, len(Fig15Workloads))
	i := 0
	for _, name := range Fig15Workloads {
		row := []interface{}{name}
		for range Fig15CacheSizes {
			pct := (Ratio(rs[i], rs[i+1], MetricCycles) - 1) * 100
			i += 2
			series[name] = append(series[name], pct)
			row = append(row, fmt.Sprintf("%.2f%%", pct))
		}
		tb.AddRow(row...)
	}
	return tb, series, nil
}

func sizeLabels() []string {
	out := make([]string, len(Fig15CacheSizes))
	for i, s := range Fig15CacheSizes {
		if s >= 1<<20 {
			out[i] = fmt.Sprintf("%dMB", s>>20)
		} else {
			out[i] = fmt.Sprintf("%dKB", s>>10)
		}
	}
	return out
}

// TableII renders the workload registry as the paper's Table II.
func TableII() *stats.Table {
	tb := stats.NewTable("Table II: benchmark descriptions", "benchmark", "threads", "description")
	for _, name := range workloads.Names() {
		w, _ := workloads.Lookup(name)
		tb.AddRow(w.Name, w.Threads, w.Desc)
	}
	return tb
}
