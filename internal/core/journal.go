package core

import (
	"sync"

	"fsencr/internal/obsplane/journal"
)

// Security-journal collection mirrors telemetry collection: when enabled,
// every Run boots its system with a private journal (single emitter, so
// recording is race-free and the per-run event order is the simulation
// order), drains it at the end of the run, and RunBatch folds the per-run
// event lists into a process-wide sink in batch input order. Every event
// is stamped with simulated cycles, so the merged journal is byte-identical
// at any Parallelism.
var (
	jrnMu      sync.Mutex
	jrnEnabled bool
	jrnSink    []journal.Event
)

// EnableJournal turns on per-run security-journal collection and clears
// the sink.
func EnableJournal() {
	jrnMu.Lock()
	defer jrnMu.Unlock()
	jrnEnabled = true
	jrnSink = nil
}

// JournalEnabled reports whether runs collect security-journal events.
func JournalEnabled() bool {
	jrnMu.Lock()
	defer jrnMu.Unlock()
	return jrnEnabled
}

// ResetJournalSink clears the merged journal without touching the enabled
// flag.
func ResetJournalSink() {
	jrnMu.Lock()
	defer jrnMu.Unlock()
	jrnSink = nil
}

// JournalEvents returns a copy of the merged journal, in merge order.
func JournalEvents() []journal.Event {
	jrnMu.Lock()
	defer jrnMu.Unlock()
	out := make([]journal.Event, len(jrnSink))
	copy(out, jrnSink)
	return out
}

// Live journal view, mirroring the telemetry one: completed runs' events
// accumulate in completion order while a batch is in flight, for the
// observability plane only.
var (
	liveJrnMu      sync.Mutex
	liveJrnPending []journal.Event
)

func noteLiveJournal(l *journal.Log) {
	liveJrnMu.Lock()
	defer liveJrnMu.Unlock()
	liveJrnPending = append(liveJrnPending, l.Events...)
}

func dropLiveJournal() {
	liveJrnMu.Lock()
	defer liveJrnMu.Unlock()
	liveJrnPending = nil
}

// LiveJournalEvents returns the merged journal plus events from runs that
// completed in the batch currently in flight (completion order, Seq
// renumbered to the combined view). Serve this to live readers; export the
// canonical JournalEvents to files.
func LiveJournalEvents() []journal.Event {
	out := JournalEvents()
	liveJrnMu.Lock()
	defer liveJrnMu.Unlock()
	for _, e := range liveJrnPending {
		e.Seq = uint64(len(out))
		out = append(out, e)
	}
	return out
}

// mergeJournal folds per-run logs into the sink in slice order,
// renumbering Seq to the global merge order so the aggregate reads as one
// ordered journal. Failed runs carry a nil log and are skipped.
func mergeJournal(parts []*journal.Log) {
	jrnMu.Lock()
	defer jrnMu.Unlock()
	if !jrnEnabled {
		return
	}
	for _, l := range parts {
		if l == nil {
			continue
		}
		for _, e := range l.Events {
			e.Seq = uint64(len(jrnSink))
			jrnSink = append(jrnSink, e)
		}
	}
}
