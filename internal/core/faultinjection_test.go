package core

import (
	"bytes"
	"fmt"
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/kvstore"
	"fsencr/internal/pmem"
	"fsencr/internal/sim"
)

// TestCrashInjectionDuringKVWorkload power-fails the machine at
// pseudo-random points while a KV store is being populated under FsEncr,
// recovers each time, and verifies that every operation completed before
// each crash is intact — end to end through the encrypted stack.
func TestCrashInjectionDuringKVWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	sys := kernel.Boot(config.Default(), SchemeFsEncr.MCMode(), kernel.ModeDAX)
	proc := sys.NewProcess(1000, 100)
	file, err := sys.CreateFile(proc, "fault.pool", 0600, 32<<20, true, "pw")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pmem.Create(proc, file, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := kvstore.Create(pool, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := sim.NewRNG(99)
	model := map[uint64][]byte{}
	val := make([]byte, 48)
	buf := make([]byte, 64)
	const totalOps = 1200
	nextCrash := int(rng.Uint64n(80)) + 20

	for op := 0; op < totalOps; op++ {
		k := rng.Uint64n(400)
		rng.Bytes(val)
		if err := tree.Put(k, val); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		model[k] = append([]byte(nil), val...)

		if op == nextCrash {
			// Alternate between crashes with and without backup power:
			// either way the file key survives — flushed by residual
			// energy or already logged to the sealed region at install
			// time (§III-H).
			backup := rng.Intn(2) == 0
			sys.M.Crash(backup)
			if err := sys.M.Recover(); err != nil {
				t.Fatalf("recovery after crash at op %d (backup=%v): %v", op, backup, err)
			}
			// Verify everything persisted so far.
			for key, want := range model {
				n, err := tree.Get(key, buf)
				if err != nil {
					t.Fatalf("after crash at op %d: key %d: %v", op, key, err)
				}
				if !bytes.Equal(buf[:n], want) {
					t.Fatalf("after crash at op %d: key %d corrupted", op, key)
				}
			}
			nextCrash = op + int(rng.Uint64n(200)) + 50
		}
	}
	// Final verification.
	for key, want := range model {
		n, err := tree.Get(key, buf)
		if err != nil || !bytes.Equal(buf[:n], want) {
			t.Fatalf("final check: key %d: %v", key, err)
		}
	}
	if v := sys.M.MC.IntegrityViolations(); v != 0 {
		t.Fatalf("%d integrity violations", v)
	}
	t.Logf("survived crash injections; %s", fmt.Sprintf("%d ops, %d keys", totalOps, len(model)))
}

// TestKeysDurableViaOTTLogging verifies §III-H option 1: OTT updates are
// logged to the sealed region at install time, so even a crash with no
// backup power (on-chip OTT lost) leaves every file key recoverable from
// the encrypted OTT region — and file data readable after recovery.
func TestKeysDurableViaOTTLogging(t *testing.T) {
	sys := kernel.Boot(config.Default(), SchemeFsEncr.MCMode(), kernel.ModeDAX)
	proc := sys.NewProcess(1000, 100)
	file, err := sys.CreateFile(proc, "durablekey.db", 0600, 8<<10, true, "pw")
	if err != nil {
		t.Fatal(err)
	}
	va, _ := proc.Mmap(file, 8<<10)
	secret := []byte("key survives in sealed region")
	proc.Write(va, secret)
	proc.Persist(va, uint64(len(secret)))

	sys.M.Crash(false) // no backup power: on-chip OTT is gone
	if err := sys.M.Recover(); err != nil {
		t.Fatal(err)
	}
	if sys.M.MC.OTT().Len() != 0 {
		t.Fatal("OTT survived a crash without backup power")
	}
	if sys.M.MC.OTTRegion().Len() == 0 {
		t.Fatal("sealed region lost the logged key")
	}
	got := make([]byte, len(secret))
	proc.Read(va, got)
	if !bytes.Equal(got, secret) {
		t.Fatalf("file unreadable despite logged key: %q", got)
	}
}
