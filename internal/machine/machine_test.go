package machine

import (
	"testing"
	"testing/quick"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/memctrl"
)

func newM(mode memctrl.Mode) *Machine {
	return New(config.Default(), mode)
}

func TestReadYourWrite(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	data := []byte("hello, persistent world!")
	co.Write(0x1000, data)
	got := make([]byte, len(data))
	co.Read(0x1000, got)
	if string(got) != string(data) {
		t.Fatalf("got %q", got)
	}
}

func TestUnalignedCrossLineAccess(t *testing.T) {
	m := newM(memctrl.Mode{})
	co := m.Core(0)
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	co.Write(0x1030, data) // crosses 4 lines, unaligned start
	got := make([]byte, 200)
	co.Read(0x1030, got)
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestDataSurvivesCacheEviction(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	co.Write(0x2000, []byte{0xAB})
	// Thrash far more lines than the whole hierarchy holds.
	buf := []byte{0}
	spanLines := (config.Default().Processor.L3Size / config.LineSize) * 4
	for i := 0; i < spanLines; i++ {
		co.Read(addr.Phys(0x100000+i*config.LineSize), buf)
	}
	got := []byte{0}
	co.Read(0x2000, got)
	if got[0] != 0xAB {
		t.Fatal("dirty line lost through eviction chain")
	}
	if m.Stats().Get("machine.l3_dirty_evictions") == 0 {
		t.Fatal("no dirty evictions recorded despite thrashing")
	}
}

func TestFlushWritesThrough(t *testing.T) {
	m := newM(memctrl.Mode{})
	co := m.Core(0)
	co.Write(0x3000, []byte{0x77})
	if m.MC.PCM.Writes() != 0 {
		t.Fatal("write reached NVM before flush")
	}
	co.Flush(0x3000)
	co.Fence()
	if m.MC.PCM.Writes() == 0 {
		t.Fatal("flush did not reach NVM")
	}
	// CLWB retains the line: next read must still hit.
	h := co.l1.Hits
	co.Read(0x3000, []byte{0})
	if co.l1.Hits == h {
		t.Fatal("flushed line was invalidated (CLFLUSH semantics, want CLWB)")
	}
}

func TestFenceWaitsForFlush(t *testing.T) {
	m := newM(memctrl.Mode{})
	co := m.Core(0)
	co.Write(0x4000, []byte{1})
	before := co.Now
	co.Flush(0x4000)
	co.Fence()
	if co.Now <= before {
		t.Fatal("fence cost nothing after a flush")
	}
}

func TestFlushCleanLineCheap(t *testing.T) {
	m := newM(memctrl.Mode{})
	co := m.Core(0)
	co.Read(0x5000, []byte{0})
	w := m.MC.PCM.Writes()
	co.Flush(0x5000)
	if m.MC.PCM.Writes() != w {
		t.Fatal("flushing a clean line wrote to NVM")
	}
}

func TestCrashDropsDirtyData(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	co.Write(0x6000, []byte{0xEE}) // never flushed
	co.Write(0x6040, []byte{0xDD})
	co.Flush(0x6040)
	co.Fence()
	m.Crash(false)
	if err := m.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got := []byte{0}
	co.Read(0x6040, got)
	if got[0] != 0xDD {
		t.Fatal("flushed data lost in crash")
	}
	co.Read(0x6000, got)
	if got[0] == 0xEE {
		t.Fatal("unflushed data survived crash (page cache ghost)")
	}
}

func TestMultiCoreCoherence(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	a, b := m.Core(0), m.Core(1)
	a.Write(0x7000, []byte{0x11})
	got := []byte{0}
	b.Read(0x7000, got)
	if got[0] != 0x11 {
		t.Fatal("core 1 did not observe core 0's store")
	}
	b.Write(0x7000, []byte{0x22})
	a.Read(0x7000, got)
	if got[0] != 0x22 {
		t.Fatal("core 0 did not observe core 1's store")
	}
}

func TestTimingHierarchy(t *testing.T) {
	m := newM(memctrl.Mode{})
	co := m.Core(0)
	buf := []byte{0}
	start := co.Now
	co.Read(0x8000, buf) // full miss
	missLat := co.Now - start
	start = co.Now
	co.Read(0x8000, buf) // L1 hit
	hitLat := co.Now - start
	if hitLat >= missLat {
		t.Fatalf("L1 hit (%d) not faster than miss (%d)", hitLat, missLat)
	}
	if hitLat != config.Default().Processor.L1Latency {
		t.Fatalf("L1 hit latency = %d", hitLat)
	}
}

func TestWritebackAll(t *testing.T) {
	m := newM(memctrl.Mode{})
	co := m.Core(0)
	co.Write(0x9000, []byte{5})
	m.WritebackAll()
	if m.MC.PCM.Writes() == 0 {
		t.Fatal("WritebackAll wrote nothing")
	}
	m.Crash(false)
	got := []byte{0}
	co.Read(0x9000, got)
	if got[0] != 5 {
		t.Fatal("WritebackAll data lost after crash")
	}
}

func TestNTWriteAndNCRead(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	data := make([]byte, 2*config.LineSize)
	for i := range data {
		data[i] = byte(i ^ 0x3C)
	}
	co.WriteNT(0xA000, data)
	co.Fence()
	got := make([]byte, len(data))
	co.ReadNC(0xA000, got)
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("NT/NC mismatch at %d", i)
		}
	}
	// NT writes bypass caches: a normal read must miss.
	h := co.l1.Hits
	co.Read(0xA000, []byte{0})
	if co.l1.Hits != h {
		t.Fatal("NT write polluted the cache")
	}
}

func TestNCReadSeesDirtyCachedLine(t *testing.T) {
	m := newM(memctrl.Mode{})
	co := m.Core(0)
	co.Write(0xB000, []byte{0x42}) // dirty in cache, not in NVM
	got := make([]byte, config.LineSize)
	co.ReadNC(0xB000, got)
	if got[0] != 0x42 {
		t.Fatal("ReadNC missed dirty cached data")
	}
}

func TestSyncCores(t *testing.T) {
	m := newM(memctrl.Mode{})
	m.Core(0).Compute(100)
	m.Core(1).Compute(500)
	m.SyncCores()
	if m.Core(0).Now != 500 || m.MaxCoreTime() != 500 {
		t.Fatal("SyncCores did not align clocks")
	}
}

func TestPropertyReadYourWriteRandom(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	f := func(off uint32, val byte, ln uint8) bool {
		n := int(ln%32) + 1
		pa := addr.Phys(off % (1 << 24))
		data := make([]byte, n)
		for i := range data {
			data[i] = val + byte(i)
		}
		co.Write(pa, data)
		got := make([]byte, n)
		co.Read(pa, got)
		for i := range got {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
