package machine

import (
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/memctrl"
)

func TestPageNCRoundtrip(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	base := addr.Phys(0x40000)
	var page aesctr.Page
	for i := range page {
		page[i] = byte(i * 11)
	}
	co.WritePageNT(base, &page)
	var got aesctr.Page
	co.ReadPageNC(base, &got)
	if got != page {
		t.Fatal("page NC roundtrip failed")
	}
	// The page path and the line path see the same bytes.
	line := make([]byte, config.LineSize)
	co.Read(base+5*config.LineSize, line)
	for i, b := range line {
		if b != page[5*config.LineSize+i] {
			t.Fatalf("cached line view disagrees at byte %d", i)
		}
	}
	if m.Stats().Get("machine.nt_page_writes") != 1 {
		t.Fatal("nt_page_writes not counted")
	}
}

// TestPageNCCoherence pins the degrade-to-coherent path: a line dirtied
// through the cache hierarchy must be visible to a later page NC read, and
// a page NT store must update cached copies in place.
func TestPageNCCoherence(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	base := addr.Phys(0x80000)
	var page aesctr.Page
	co.WritePageNT(base, &page)

	// Dirty one line coherently; do not flush.
	patch := []byte("dirty-in-cache")
	co.Write(base+3*config.LineSize, patch)

	var got aesctr.Page
	co.ReadPageNC(base, &got)
	if string(got[3*config.LineSize:3*config.LineSize+len(patch)]) != string(patch) {
		t.Fatal("page NC read missed a dirty cached line")
	}

	// NT page store overwrites the cached copy too.
	for i := range page {
		page[i] = 0xEE
	}
	co.WritePageNT(base, &page)
	line := make([]byte, config.LineSize)
	co.Read(base+3*config.LineSize, line)
	for _, b := range line {
		if b != 0xEE {
			t.Fatal("cached copy not updated by WritePageNT")
		}
	}
}

// TestPageNTFenceCoverage ensures Fence waits for a page NT store's accept
// time, matching WriteNT's persistence contract.
func TestPageNTFenceCoverage(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	var page aesctr.Page
	co.WritePageNT(addr.Phys(0xC0000), &page)
	if co.pendingPersist == 0 {
		t.Fatal("WritePageNT did not arm pendingPersist")
	}
	before := co.Now
	co.Fence()
	if co.Now < before {
		t.Fatal("Fence went backwards")
	}
}
