// Package machine ties the simulated system together: per-core L1/L2
// caches, a shared L3, and the secure memory controller in front of the PCM
// device. It provides byte-granularity load/store with per-core timing, the
// CLWB/SFENCE persistence primitives persistent-memory software relies on,
// and whole-machine crash/recovery.
//
// Data handling is functional and coherent: every line present anywhere in
// the cache hierarchy has exactly one backing buffer here (plaintext); the
// NVM behind the controller holds ciphertext. Lines reach the NVM only on
// dirty eviction from the L3 or on an explicit flush — which is what makes
// write-intensive persistent workloads pay for every persist, as in the
// paper.
package machine

import (
	"fmt"
	"sort"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/audit"
	"fsencr/internal/cache"
	"fsencr/internal/config"
	"fsencr/internal/memctrl"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/stats"
	"fsencr/internal/telemetry"
)

type lineBuf struct {
	data  aesctr.Line
	dirty bool
}

// Tracer observes the machine's memory operations (see internal/trace for
// a recorder and replayer). Kind values: 'R' read, 'W' write, 'F' flush,
// 'S' fence.
type Tracer interface {
	Event(core int, kind byte, pa addr.Phys, n int)
}

// Machine is the simulated system.
type Machine struct {
	cfg   config.Config
	st    *stats.Set
	MC    *memctrl.Controller
	l3    *cache.Cache
	cores []*Core
	lines map[addr.Phys]*lineBuf // keyed by full line address (incl. DF-bit)

	tracer Tracer

	// ReadLatency records the end-to-end latency of every demand read that
	// missed to the memory controller (cycles).
	ReadLatency *stats.Histogram

	// flushIssue is the pipeline cost of issuing one CLWB.
	flushIssue config.Cycle

	tMissCycles *telemetry.Histogram
	trace       *telemetry.TraceScope
}

// Instrument attaches a telemetry registry to the machine and the whole
// memory side below it. A nil registry detaches.
func (m *Machine) Instrument(reg *telemetry.Registry) {
	m.tMissCycles = reg.Histogram("machine.read_miss_cycles")
	m.trace = reg.Scope()
	m.MC.Instrument(reg)
}

// AttachJournal attaches a security-event journal to the memory controller
// (the machine itself emits no journal events).
func (m *Machine) AttachJournal(j *journal.Journal) { m.MC.AttachJournal(j) }

// EnableAudit enables the memory controller's tamper-evident access-audit
// plane (capacity <= 0 uses the audit package default) and returns the log.
func (m *Machine) EnableAudit(capacity int) *audit.Log { return m.MC.EnableAudit(capacity) }

// SetTracer installs (or removes, with nil) a memory-operation tracer.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// Core is one simulated hardware thread with its private caches and clock.
type Core struct {
	m   *Machine
	id  int
	l1  *cache.Cache
	l2  *cache.Cache
	Now config.Cycle
	// pendingPersist is the completion time of the latest issued flush;
	// SFENCE waits for it.
	pendingPersist config.Cycle

	Loads  uint64
	Stores uint64
}

// New builds a machine in the given protection mode.
func New(cfg config.Config, mode memctrl.Mode) *Machine {
	return NewWithChipSeq(cfg, mode, 0)
}

// NewWithChipSeq builds a machine whose controller derives its processor
// keys from an explicit chip sequence (0 = auto-unique). Cluster shards
// use deterministic per-shard sequences so a migrated or replicated shard
// reproduces the primary's ciphertext exactly.
func NewWithChipSeq(cfg config.Config, mode memctrl.Mode, chipSeq uint64) *Machine {
	st := stats.NewSet()
	m := &Machine{
		cfg:         cfg,
		st:          st,
		MC:          memctrl.NewWithChipSeq(cfg, mode, st, chipSeq),
		l3:          cache.New("l3", cfg.Processor.L3Size, cfg.Processor.L3Ways),
		lines:       make(map[addr.Phys]*lineBuf),
		ReadLatency: stats.NewHistogram(100, 150, 200, 300, 400, 600, 1000, 2000),
		flushIssue:  5,
	}
	for i := 0; i < cfg.Processor.Cores; i++ {
		m.cores = append(m.cores, &Core{
			m:  m,
			id: i,
			l1: cache.New(fmt.Sprintf("l1.%d", i), cfg.Processor.L1Size, cfg.Processor.L1Ways),
			l2: cache.New(fmt.Sprintf("l2.%d", i), cfg.Processor.L2Size, cfg.Processor.L2Ways),
		})
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() config.Config { return m.cfg }

// Stats returns the machine-wide counter set (shared with the controller).
func (m *Machine) Stats() *stats.Set { return m.st }

// Cores returns the number of cores.
func (m *Machine) Cores() int { return len(m.cores) }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// access brings the line at la into the hierarchy on behalf of co,
// advancing co's clock, and returns its buffer.
func (m *Machine) access(co *Core, la addr.Phys, write bool) *lineBuf {
	p := m.cfg.Processor
	switch {
	case co.l1.Lookup(uint64(la), false):
		co.Now += p.L1Latency
	case co.l2.Lookup(uint64(la), false):
		co.Now += p.L1Latency + p.L2Latency
		co.l1Insert(la)
	case m.l3.Lookup(uint64(la), false):
		co.Now += p.L1Latency + p.L2Latency + p.L3Latency
		co.l2Insert(la)
		co.l1Insert(la)
	default:
		// Full miss: the request reaches the memory controller after
		// traversing the hierarchy.
		reqAt := co.Now + p.L1Latency + p.L2Latency + p.L3Latency
		data, done := m.MC.ReadLine(reqAt, la)
		m.ReadLatency.Observe(uint64(done - co.Now))
		m.tMissCycles.Observe(uint64(done - co.Now))
		co.Now = done
		if _, ok := m.lines[la]; !ok {
			m.lines[la] = &lineBuf{data: data}
		}
		m.l3Insert(co, la)
		co.l2Insert(la)
		co.l1Insert(la)
	}
	lb := m.lines[la]
	if lb == nil {
		// The line is cached (tags) but its buffer was dropped — this
		// would be a coherence bug; recreate defensively from NVM.
		data, _ := m.MC.ReadLine(co.Now, la)
		lb = &lineBuf{data: data}
		m.lines[la] = lb
	}
	if write {
		lb.dirty = true
	}
	return lb
}

func (co *Core) l1Insert(la addr.Phys) {
	co.l1.Insert(uint64(la), false)
}

func (co *Core) l2Insert(la addr.Phys) {
	co.l2.Insert(uint64(la), false)
}

// l3Insert fills la into the shared L3, handling dirty victim writeback and
// back-invalidation of the victim from every core's private caches
// (inclusive hierarchy).
func (m *Machine) l3Insert(co *Core, la addr.Phys) {
	victim, evicted := m.l3.Insert(uint64(la), false)
	if !evicted {
		return
	}
	va := addr.Phys(victim.LineAddr)
	for _, c := range m.cores {
		c.l1.Invalidate(victim.LineAddr)
		c.l2.Invalidate(victim.LineAddr)
	}
	if lb, ok := m.lines[va]; ok {
		if lb.dirty {
			// Background writeback; nobody stalls on it, but it occupies
			// the controller and a PCM bank.
			m.MC.WriteLine(co.Now, va, lb.data)
			m.st.Inc("machine.l3_dirty_evictions")
		}
		delete(m.lines, va)
	}
}

// Read copies len(b) bytes starting at physical address pa into b,
// advancing the core's clock.
func (co *Core) Read(pa addr.Phys, b []byte) {
	m := co.m
	co.Loads++
	if m.tracer != nil {
		m.tracer.Event(co.id, 'R', pa, len(b))
	}
	off := 0
	for off < len(b) {
		la := (pa + addr.Phys(off)).LineAlign()
		lo := int(uint64(pa)+uint64(off)) & (config.LineSize - 1)
		n := config.LineSize - lo
		if n > len(b)-off {
			n = len(b) - off
		}
		lb := m.access(co, la, false)
		copy(b[off:off+n], lb.data[lo:lo+n])
		off += n
	}
}

// Write stores b starting at physical address pa, advancing the clock.
func (co *Core) Write(pa addr.Phys, b []byte) {
	m := co.m
	co.Stores++
	if m.tracer != nil {
		m.tracer.Event(co.id, 'W', pa, len(b))
	}
	off := 0
	for off < len(b) {
		la := (pa + addr.Phys(off)).LineAlign()
		lo := int(uint64(pa)+uint64(off)) & (config.LineSize - 1)
		n := config.LineSize - lo
		if n > len(b)-off {
			n = len(b) - off
		}
		lb := m.access(co, la, true)
		copy(lb.data[lo:lo+n], b[off:off+n])
		off += n
	}
}

// Flush issues a CLWB for the line containing pa: if the line is dirty its
// contents are written back to the NVM (the line stays cached, clean). The
// writeback completes asynchronously; Fence waits for it.
func (co *Core) Flush(pa addr.Phys) {
	m := co.m
	if m.tracer != nil {
		m.tracer.Event(co.id, 'F', pa, config.LineSize)
	}
	la := pa.LineAlign()
	co.Now += m.flushIssue
	lb, ok := m.lines[la]
	if !ok || !lb.dirty {
		return
	}
	done := m.MC.WriteLine(co.Now, la, lb.data)
	lb.dirty = false
	m.st.Inc("machine.flushes")
	if done > co.pendingPersist {
		co.pendingPersist = done
	}
}

// Fence executes an SFENCE: the core stalls until all its issued flushes
// have reached the persistence domain.
func (co *Core) Fence() {
	if co.m.tracer != nil {
		co.m.tracer.Event(co.id, 'S', 0, 0)
	}
	if co.pendingPersist > co.Now {
		co.Now = co.pendingPersist
	}
	co.Now += 2
}

// ReadNC performs a non-caching (DMA-style) read of full lines starting at
// pa: all line requests are issued together and the core waits for the last
// to complete. Used by the kernel's device-to-page-cache copies. pa and
// len(buf) must be line-aligned.
func (co *Core) ReadNC(pa addr.Phys, buf []byte) {
	m := co.m
	start := co.Now
	var last config.Cycle
	for off := 0; off < len(buf); off += config.LineSize {
		la := (pa + addr.Phys(off)).LineAlign()
		// A line still dirty in the hierarchy must be read coherently.
		if lb, ok := m.lines[la]; ok {
			copy(buf[off:off+config.LineSize], lb.data[:])
			continue
		}
		data, done := m.MC.ReadLine(start, la)
		copy(buf[off:off+config.LineSize], data[:])
		if done > last {
			last = done
		}
	}
	if last > co.Now {
		co.Now = last
	}
}

// WriteNT performs non-temporal full-line stores starting at pa: lines go
// straight to the memory controller without read-for-ownership or cache
// allocation. The stores are accepted into the persistence domain before
// WriteNT returns; Fence covers them. pa and len(data) must be line-aligned.
func (co *Core) WriteNT(pa addr.Phys, data []byte) {
	m := co.m
	for off := 0; off < len(data); off += config.LineSize {
		la := (pa + addr.Phys(off)).LineAlign()
		var line aesctr.Line
		copy(line[:], data[off:off+config.LineSize])
		// Coherence: drop any cached copy of the overwritten line.
		if lb, ok := m.lines[la]; ok {
			lb.data = line
			lb.dirty = false
		}
		accepted := m.MC.WriteLine(co.Now, la, line)
		if accepted > co.Now {
			co.Now = accepted
		}
		if accepted > co.pendingPersist {
			co.pendingPersist = accepted
		}
	}
	m.st.Inc("machine.nt_writes")
}

// ReadPageNC performs a non-caching read of one full 4 KB page into dst
// through the controller's batched page datapath: one counter fetch, one
// key lookup, and one PCM burst for all 64 lines. If any of the page's
// lines is present in the hierarchy the access degrades to coherent
// per-line NC reads (the cached copies may be newer than the NVM). pa must
// be page-aligned.
func (co *Core) ReadPageNC(pa addr.Phys, dst *aesctr.Page) {
	m := co.m
	if ts := m.trace; ts.Active() {
		start := uint64(co.Now)
		ts.Enter()
		defer func() { ts.Exit("machine", "read_page_nc", start, uint64(co.Now), co.id) }()
	}
	base := pa.PageAlign()
	for off := 0; off < config.PageSize; off += config.LineSize {
		if _, ok := m.lines[base+addr.Phys(off)]; ok {
			co.ReadNC(base, dst[:])
			return
		}
	}
	done := m.MC.ReadPageInto(co.Now, base, dst)
	if done > co.Now {
		co.Now = done
	}
	m.st.Inc("machine.nc_page_reads")
}

// SnapshotReadPage is the concurrent read fast-path's coherent page read:
// the page is decrypted through the controller's read-only snapshot entry
// point, then any lines cached in the hierarchy (dirty or clean) are
// overlaid so the result matches what ReadPageNC/ReadNC would have
// returned. No machine state is mutated and no core clock advances; side
// effects land in d for the owner goroutine to drain. Must run with the
// owning shard quiescent (its seqlock held for reading). pa must be
// page-aligned. Returns false when the controller path must fall back.
func (m *Machine) SnapshotReadPage(rd *memctrl.Reader, pa addr.Phys, dst *aesctr.Page, d *memctrl.ReadDelta) bool {
	base := pa.PageAlign()
	if !m.MC.SnapshotReadPage(rd, base, dst, d) {
		return false
	}
	// The ECC tags above were checked against the NVM-resident plaintext;
	// cached lines overlay afterwards, exactly as the live path serves
	// cached data without re-reading the array.
	for off := 0; off < config.PageSize; off += config.LineSize {
		if lb, ok := m.lines[base+addr.Phys(off)]; ok {
			copy(dst[off:off+config.LineSize], lb.data[:])
		}
	}
	return true
}

// WritePageNT performs a non-temporal store of one full 4 KB page through
// the batched page datapath: the controller accepts all 64 lines as one
// burst (covered by Fence, like WriteNT), and any cached copies are
// updated in place and marked clean for coherence. pa must be
// page-aligned.
func (co *Core) WritePageNT(pa addr.Phys, src *aesctr.Page) {
	m := co.m
	if ts := m.trace; ts.Active() {
		start := uint64(co.Now)
		ts.Enter()
		defer func() { ts.Exit("machine", "write_page_nt", start, uint64(co.Now), co.id) }()
	}
	base := pa.PageAlign()
	for off := 0; off < config.PageSize; off += config.LineSize {
		if lb, ok := m.lines[base+addr.Phys(off)]; ok {
			copy(lb.data[:], src[off:off+config.LineSize])
			lb.dirty = false
		}
	}
	accepted := m.MC.WritePage(co.Now, base, src)
	if accepted > co.Now {
		co.Now = accepted
	}
	if accepted > co.pendingPersist {
		co.pendingPersist = accepted
	}
	m.st.Inc("machine.nt_writes")
	m.st.Inc("machine.nt_page_writes")
}

// Compute advances the core's clock by n cycles of non-memory work.
func (co *Core) Compute(n config.Cycle) { co.Now += n }

// ID returns the core index.
func (co *Core) ID() int { return co.id }

// WritebackAll flushes every dirty line to NVM in ascending address order
// (used at clean shutdown and at measurement boundaries to put schemes on
// equal footing). The ordering matters: PCM bank conflict counts and
// busy-until times depend on access order, and the cluster fabric replays
// this flush as an admission-log step that must reproduce identical state
// on every replayer — map iteration order must not leak into it.
func (m *Machine) WritebackAll() {
	dirty := make([]addr.Phys, 0, len(m.lines))
	for la, lb := range m.lines {
		if lb.dirty {
			dirty = append(dirty, la)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	for _, la := range dirty {
		lb := m.lines[la]
		m.MC.WriteLine(0, la, lb.data)
		lb.dirty = false
	}
}

// Crash models a sudden power loss: all caches (data and metadata) lose
// their contents; only what reached the NVM survives. backupPower controls
// whether the OTT is flushed with residual energy (§III-H).
func (m *Machine) Crash(backupPower bool) {
	m.lines = make(map[addr.Phys]*lineBuf)
	m.l3.Clear()
	for _, c := range m.cores {
		c.l1.Clear()
		c.l2.Clear()
		c.pendingPersist = 0
	}
	m.MC.Crash(backupPower)
}

// Recover runs post-crash recovery at the controller (Osiris counter
// reconstruction + Merkle rebuild).
func (m *Machine) Recover() error { return m.MC.Recover() }

// MaxCoreTime returns the largest core clock (the wall-clock of a parallel
// region).
func (m *Machine) MaxCoreTime() config.Cycle {
	var max config.Cycle
	for _, c := range m.cores {
		if c.Now > max {
			max = c.Now
		}
	}
	return max
}

// SyncCores sets every core's clock to the maximum (a barrier).
func (m *Machine) SyncCores() {
	max := m.MaxCoreTime()
	for _, c := range m.cores {
		c.Now = max
	}
}
