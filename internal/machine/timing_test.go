package machine

import (
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/memctrl"
)

// TestADRFenceCheapWhenQueueEmpty verifies the persistence-domain (ADR)
// semantics: CLWB+SFENCE completes at write-queue acceptance, not after the
// slow PCM array write. A single flush+fence must cost far less than the
// PCM write latency (150 ns) plus its row activation.
func TestADRFenceCheapWhenQueueEmpty(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	co.Write(0x5000, []byte{1})
	start := co.Now
	co.Flush(0x5000)
	co.Fence()
	persistCost := co.Now - start
	if persistCost > 60 {
		t.Fatalf("flush+fence cost %d cycles; posted writes should accept in ~10", persistCost)
	}
}

// TestWriteQueueBackpressureReachesFence verifies that a saturated write
// queue eventually stalls persists: hammering one line (hence one PCM bank)
// issues writes far faster than the bank can retire them, so later fences
// wait on queue slots. (Spreading the same traffic across banks, as in
// TestADRFenceCheapWhenQueueEmpty, absorbs it without stalls.)
func TestWriteQueueBackpressureReachesFence(t *testing.T) {
	m := newM(memctrl.Mode{})
	co := m.Core(0)
	pa := addr.Phys(0x100000)
	var firstCost, lastCost config.Cycle
	for i := 0; i < 2000; i++ {
		co.Write(pa, []byte{byte(i)})
		start := co.Now
		co.Flush(pa)
		co.Fence()
		cost := co.Now - start
		if i == 0 {
			firstCost = cost
		}
		lastCost = cost
	}
	if lastCost <= firstCost {
		t.Fatalf("no backpressure: first persist %d cycles, 2000th %d", firstCost, lastCost)
	}
}

// TestCTRLatencyMostlyHidden verifies the headline property of counter-mode
// encryption (Figure 2): with counters resident in the metadata cache, OTP
// generation overlaps the data array access, so an encrypted read miss
// costs barely more than a plain one.
func TestCTRLatencyMostlyHidden(t *testing.T) {
	missLatency := func(mode memctrl.Mode) config.Cycle {
		m := newM(mode)
		co := m.Core(0)
		// Warm the counters with a neighbouring line on the same page.
		co.Read(0x7000, []byte{0})
		m.MC.PCM.ResetTiming()
		start := co.Now
		co.Read(0x7040, []byte{0}) // miss; counters cached
		return co.Now - start
	}
	plain := missLatency(memctrl.Mode{})
	enc := missLatency(memctrl.Mode{MemEncryption: true})
	if enc < plain {
		t.Fatalf("encrypted miss (%d) faster than plain (%d)", enc, plain)
	}
	// The exposed cost must be a small tail (XOR + residual AES), far less
	// than a full serialized AES+fetch (~100+ cycles).
	if enc-plain > 50 {
		t.Fatalf("CTR mode not hidden: plain %d, encrypted %d (+%d)", plain, enc, enc-plain)
	}
}

// TestBankParallelismAcrossCores verifies that two cores hammering
// different banks overlap, while the same line serializes through shared
// bank state.
func TestBankParallelismAcrossCores(t *testing.T) {
	run := func(sameBank bool) config.Cycle {
		m := newM(memctrl.Mode{})
		a, b := m.Core(0), m.Core(1)
		buf := []byte{0}
		var paA, paB addr.Phys
		mapping := addr.NewMapping(config.Default().PCM)
		paA = 0x200000
		if sameBank {
			// Same bank, different rows: guaranteed conflicts.
			d := mapping.Decompose(paA)
			for off := uint64(1 << 14); ; off += 1 << 14 {
				cand := paA + addr.Phys(off)
				dc := mapping.Decompose(cand)
				if mapping.BankID(dc) == mapping.BankID(d) && dc.Row != d.Row {
					paB = cand
					break
				}
			}
		} else {
			d := mapping.Decompose(paA)
			for off := uint64(64); ; off += 64 {
				cand := paA + addr.Phys(off)
				if mapping.BankID(mapping.Decompose(cand)) != mapping.BankID(d) {
					paB = cand
					break
				}
			}
		}
		// Alternate row-conflicting accesses from both cores.
		for i := 0; i < 200; i++ {
			a.Read(paA+addr.Phys(i%2*(1<<20)), buf)
			b.Read(paB+addr.Phys(i%2*(1<<21)), buf)
		}
		return m.MaxCoreTime()
	}
	same := run(true)
	diff := run(false)
	if diff >= same {
		t.Fatalf("bank parallelism missing: same-bank %d <= different-bank %d", same, diff)
	}
}

// TestReadLatencyHistogramPopulated checks the machine's latency histogram
// captures misses.
func TestReadLatencyHistogramPopulated(t *testing.T) {
	m := newM(memctrl.Mode{MemEncryption: true})
	co := m.Core(0)
	for i := 0; i < 100; i++ {
		co.Read(addr.Phys(0x300000+i*4096), []byte{0})
	}
	if m.ReadLatency.Count() < 100 {
		t.Fatalf("histogram saw %d misses", m.ReadLatency.Count())
	}
	if m.ReadLatency.Mean() < float64(config.Default().PCM.ReadLatency) {
		t.Fatalf("mean miss latency %.1f below raw array latency", m.ReadLatency.Mean())
	}
}
