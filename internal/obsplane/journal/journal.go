// Package journal is the security-event journal of the observability
// plane: a typed, ordered record of the security-relevant transitions the
// paper reasons about — minor-counter overflows forcing page
// re-encryption, OTT evictions to (and refills from) the sealed region,
// Merkle verification failures — each stamped with the simulated cycle at
// which it happened, so a journal replay is deterministic across hosts
// and runner parallelism.
//
// The journal is a fixed-capacity, lock-free ring of *Event pointers:
// emitting is one atomic sequence fetch plus one atomic pointer store, so
// the hot path never blocks, and readers (the live HTTP plane) observe a
// consistent most-recent window without stalling the simulation. A nil
// *Journal is the no-op recorder, mirroring the telemetry registry: an
// unattached component pays exactly one predictable branch per emit.
package journal

import (
	"encoding/json"
	"io"
	"sync/atomic"
)

// Type identifies the kind of security-relevant transition.
type Type string

// Event types, grouped by the layer that emits them.
const (
	// CounterOverflow: a 7-bit minor counter wrapped; the whole page must
	// be re-encrypted under the bumped major counter (internal/counters).
	CounterOverflow Type = "counter_overflow"
	// CounterMajorWrap: the major counter itself wrapped — for file
	// counters this demands a key rotation (§VI).
	CounterMajorWrap Type = "counter_major_wrap"

	// PageReencryptMem / PageReencryptFile: the memory controller swept a
	// whole page through the datapath swapping OTPs (internal/memctrl).
	PageReencryptMem  Type = "page_reencrypt_mem"
	PageReencryptFile Type = "page_reencrypt_file"
	// DFMismatch: a DF-tagged line reached the datapath but no file key
	// was resolvable (deleted file, locked controller, or a stale DF bit)
	// — the access decrypts with the memory pad only.
	DFMismatch Type = "df_mismatch"

	// OTTOpen / OTTClose: a tunnel (file key) installed into / removed
	// from the on-chip Open Tunnel Table (internal/ott).
	OTTOpen  Type = "ott_open"
	OTTClose Type = "ott_close"
	// OTTEvict: an LRU victim sealed out to the encrypted OTT region.
	OTTEvict Type = "ott_evict"
	// OTTRefill: a key restored on chip from the encrypted OTT region.
	OTTRefill Type = "ott_refill"

	// MerkleVerifyFail: metadata fetched from NVM failed integrity
	// verification — tampered or replayed (internal/merkle).
	MerkleVerifyFail Type = "merkle_verify_fail"
	// DataECCError: a data line decrypted to plaintext that does not match
	// the Osiris check tag stored in its ECC bits — the ciphertext was
	// corrupted or tampered with at rest (internal/memctrl).
	DataECCError Type = "data_ecc_error"
	// MerkleRootUpdate: the tree was rebuilt wholesale and the
	// processor-resident root replaced (recovery, transport import).
	MerkleRootUpdate Type = "merkle_root_update"

	// AuthFailure: a tenant session presented a passphrase that does not
	// derive the registered keyring master key (internal/server).
	AuthFailure Type = "auth_failure"
	// CrossTenantDenied: a session reached into another tenant's
	// namespace and the kernel denied it — permission bits or a
	// non-verifying per-file key (internal/server).
	CrossTenantDenied Type = "cross_tenant_denied"

	// ShardMigrated: a shard finished live migration onto this node — the
	// admission-log replay root matched the shipped image and the Osiris
	// recovery gate passed (internal/cluster).
	ShardMigrated Type = "shard_migrated"
	// ReplicaDiverged: a replica replaying a primary's admission log
	// reached a checkpoint whose Merkle root disagrees with the
	// primary's — replicated state is no longer a pure function of the
	// log (internal/cluster).
	ReplicaDiverged Type = "replica_diverged"
)

// Event is one journal entry. Cycle is the simulated-cycle timestamp of
// the transition; Seq is the emission order within one journal (reassigned
// to the global merge order when per-run journals are folded together).
// The context fields are populated where they apply and omitted otherwise.
type Event struct {
	Seq   uint64 `json:"seq"`
	Cycle uint64 `json:"cycle"`
	Type  Type   `json:"type"`
	Page  uint64 `json:"page,omitempty"`
	Group uint32 `json:"group,omitempty"`
	File  uint16 `json:"file,omitempty"`
	// Detail disambiguates within a type, e.g. the counter domain
	// ("mem"/"file") of an overflow.
	Detail string `json:"detail,omitempty"`
}

// DefaultCapacity is the ring size of a per-run journal. Journal events
// are rare (overflows, evictions, integrity failures — not per-line
// traffic), so a few thousand entries cover any realistic run.
const DefaultCapacity = 4096

// Journal is the fixed-capacity lock-free event ring.
type Journal struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
}

// New returns a journal retaining up to capacity events (capacity <= 0
// uses DefaultCapacity).
func New(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{slots: make([]atomic.Pointer[Event], capacity)}
}

// Emit appends one event, overwriting the oldest entry when the ring is
// full. Safe for concurrent use; no-op on a nil journal. The nil check
// stays in this inlinable wrapper: store's ring write makes its event
// copy escape, so folding both into one function would heap-allocate the
// argument even on the nil (detached) path.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.store(e)
}

func (j *Journal) store(e Event) {
	seq := j.next.Add(1) - 1
	e.Seq = seq
	j.slots[seq%uint64(len(j.slots))].Store(&e)
}

// Emitted returns how many events were ever emitted (including any that
// have since been overwritten).
func (j *Journal) Emitted() uint64 {
	if j == nil {
		return 0
	}
	return j.next.Load()
}

// Drops returns how many events were overwritten before being snapshotted.
func (j *Journal) Drops() uint64 {
	if j == nil {
		return 0
	}
	n := j.next.Load()
	if c := uint64(len(j.slots)); n > c {
		return n - c
	}
	return 0
}

// Events returns the retained events oldest-first. Concurrent emitters may
// be mid-store; a slot whose event does not carry the expected sequence
// number (overwritten or not yet published) is skipped, so the result is
// always a consistent, ordered subsequence. With a single emitter — the
// per-run configuration — the result is exact and deterministic.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	n := j.next.Load()
	c := uint64(len(j.slots))
	lo := uint64(0)
	if n > c {
		lo = n - c
	}
	out := make([]Event, 0, n-lo)
	for seq := lo; seq < n; seq++ {
		if e := j.slots[seq%c].Load(); e != nil && e.Seq == seq {
			out = append(out, *e)
		}
	}
	return out
}

// Log is a drained, immutable journal: the retained events of one run in
// emission order. It is held by pointer so structs embedding a run's
// journal (e.g. a result record) stay comparable.
type Log struct {
	Events []Event
}

// Drain snapshots the journal into a Log (nil journal drains to an empty
// log).
func (j *Journal) Drain() *Log { return &Log{Events: j.Events()} }

// WriteJSONL writes events as JSON Lines: one event object per line, in
// slice order. The format is the journal's durable sink shape (and what
// the live plane serves at /journal.jsonl).
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}
