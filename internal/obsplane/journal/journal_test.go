package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestEmitOrderAndFields(t *testing.T) {
	j := New(16)
	j.Emit(Event{Cycle: 100, Type: OTTOpen, Group: 3, File: 7})
	j.Emit(Event{Cycle: 250, Type: OTTEvict, Group: 3, File: 1})
	j.Emit(Event{Cycle: 400, Type: CounterOverflow, Page: 9, Detail: "mem"})
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[0].Type != OTTOpen || evs[0].Group != 3 || evs[0].File != 7 {
		t.Fatalf("event 0 wrong: %+v", evs[0])
	}
	if evs[2].Cycle != 400 || evs[2].Page != 9 || evs[2].Detail != "mem" {
		t.Fatalf("event 2 wrong: %+v", evs[2])
	}
	if j.Emitted() != 3 || j.Drops() != 0 {
		t.Fatalf("emitted=%d drops=%d", j.Emitted(), j.Drops())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	j := New(4)
	for i := 0; i < 10; i++ {
		j.Emit(Event{Cycle: uint64(i)})
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Oldest retained is seq 6.
	for i, ev := range evs {
		if ev.Seq != uint64(6+i) || ev.Cycle != uint64(6+i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if j.Drops() != 6 {
		t.Fatalf("drops = %d, want 6", j.Drops())
	}
}

func TestNilJournalIsNoop(t *testing.T) {
	var j *Journal
	j.Emit(Event{Type: OTTOpen})
	if j.Events() != nil || j.Emitted() != 0 || j.Drops() != 0 {
		t.Fatal("nil journal must record nothing")
	}
}

func TestConcurrentEmitKeepsConsistentWindow(t *testing.T) {
	j := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				j.Emit(Event{Cycle: uint64(g*1000 + i), Type: OTTEvict})
			}
		}(g)
	}
	// A live reader racing the emitters must always see an ordered
	// subsequence.
	for r := 0; r < 50; r++ {
		evs := j.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Fatalf("reader saw out-of-order seqs: %d then %d", evs[i-1].Seq, evs[i].Seq)
			}
		}
	}
	wg.Wait()
	if j.Emitted() != 8000 {
		t.Fatalf("emitted = %d, want 8000", j.Emitted())
	}
	if got := len(j.Events()); got != 64 {
		t.Fatalf("retained %d, want 64", got)
	}
}

// TestOverflowDropsUnderPressure floods a small ring from several
// goroutines with 3x its capacity and checks the drop accounting is exact:
// the drops metric is how operators see that the retained window is a
// window, not the whole history.
func TestOverflowDropsUnderPressure(t *testing.T) {
	const capacity, emitters, perEmitter = 32, 4, 24
	j := New(capacity)
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				j.Emit(Event{Type: OTTEvict})
			}
		}()
	}
	wg.Wait()
	total := uint64(emitters * perEmitter)
	if j.Emitted() != total {
		t.Fatalf("emitted = %d, want %d", j.Emitted(), total)
	}
	if want := total - capacity; j.Drops() != want {
		t.Fatalf("drops = %d, want %d", j.Drops(), want)
	}
	if got := len(j.Events()); got > capacity {
		t.Fatalf("retained %d > capacity %d", got, capacity)
	}
}

func TestWriteJSONL(t *testing.T) {
	events := []Event{
		{Seq: 0, Cycle: 10, Type: OTTOpen, Group: 1, File: 2},
		{Seq: 1, Cycle: 20, Type: MerkleVerifyFail, Page: 5},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var got []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, e)
	}
	if len(got) != 2 || got[0] != events[0] || got[1] != events[1] {
		t.Fatalf("JSONL round trip lost data: %+v", got)
	}
}
