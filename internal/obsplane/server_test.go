package obsplane

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// fakeSource is a mutable telemetry source standing in for the core sink.
type fakeSource struct {
	reads uint64
	evs   []journal.Event
}

func (f *fakeSource) snapshot() *telemetry.Snapshot {
	// Built through a real registry so histogram metrics (bucket layout,
	// count/sum series) flow exactly as the core sink produces them.
	reg := telemetry.New()
	reg.Counter("pcm.reads").Add(f.reads)
	reg.Counter("merkle.flushes").Add(7)
	reg.Histogram("merkle.dirty_leaves_per_flush").Observe(64)
	return reg.Snapshot()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	src := &fakeSource{reads: 42, evs: []journal.Event{
		{Seq: 0, Cycle: 9, Type: journal.OTTOpen, Group: 1, File: 2},
	}}
	srv := NewServer(Options{
		Snapshot: src.snapshot,
		Journal:  func() []journal.Event { return src.evs },
		Interval: time.Hour, // publish only on demand in this test
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	_, body = get(t, base+"/metrics")
	if !strings.Contains(body, "fsencr_pcm_reads 42") {
		t.Errorf("/metrics missing live counter:\n%s", body)
	}
	if !strings.Contains(body, "fsencr_span_drops_total 0") {
		t.Errorf("/metrics missing span-drops series:\n%s", body)
	}
	if !strings.Contains(body, "fsencr_merkle_flushes 7") {
		t.Errorf("/metrics missing merkle flush counter:\n%s", body)
	}
	if !strings.Contains(body, "fsencr_merkle_dirty_leaves_per_flush_sum 64") ||
		!strings.Contains(body, "fsencr_merkle_dirty_leaves_per_flush_count 1") {
		t.Errorf("/metrics missing merkle dirty-leaves histogram:\n%s", body)
	}

	// First snapshot fetch publishes on demand; the delta of publication #1
	// is the absolute state.
	var doc struct {
		Seq      uint64              `json:"seq"`
		Snapshot *telemetry.Snapshot `json:"snapshot"`
		Delta    *telemetry.Snapshot `json:"delta"`
	}
	_, body = get(t, base+"/snapshot.json")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/snapshot.json: %v\n%s", err, body)
	}
	if doc.Seq != 1 || doc.Snapshot.Counters["pcm.reads"] != 42 || doc.Delta.Counters["pcm.reads"] != 42 {
		t.Fatalf("/snapshot.json publication #1: %+v", doc)
	}
	if doc.Snapshot.Counters["merkle.flushes"] != 7 ||
		doc.Snapshot.Histograms["merkle.dirty_leaves_per_flush"].Sum != 64 {
		t.Fatalf("/snapshot.json missing merkle write-back metrics: %+v", doc.Snapshot)
	}

	// Advance the source and publish again: the delta carries the change.
	src.reads = 100
	srv.Publish()
	_, body = get(t, base+"/snapshot.json")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Seq != 2 || doc.Snapshot.Counters["pcm.reads"] != 100 || doc.Delta.Counters["pcm.reads"] != 58 {
		t.Fatalf("/snapshot.json publication #2: %+v", doc)
	}

	_, body = get(t, base+"/trace.json")
	if !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/trace.json not a Chrome trace:\n%s", body)
	}

	_, body = get(t, base+"/journal.jsonl")
	var ev journal.Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &ev); err != nil {
		t.Fatalf("/journal.jsonl not JSONL: %v\n%s", err, body)
	}
	if ev.Type != journal.OTTOpen || ev.Cycle != 9 {
		t.Errorf("/journal.jsonl event: %+v", ev)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d\n%s", code, body)
	}
}

func TestServerNilSources(t *testing.T) {
	srv := NewServer(Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr
	for _, path := range []string{"/healthz", "/metrics", "/snapshot.json", "/spans.json", "/trace.json", "/journal.jsonl"} {
		if code, _ := get(t, base+path); code != http.StatusOK {
			t.Errorf("%s with nil sources: %d", path, code)
		}
	}
}

func TestDiff(t *testing.T) {
	prev := telemetry.NewSnapshot()
	prev.Counters["a"] = 10
	prev.Runs = 2
	cur := telemetry.NewSnapshot()
	cur.Counters["a"] = 15
	cur.Counters["b"] = 3
	cur.Runs = 5
	d := telemetry.Diff(prev, cur)
	if d.Counters["a"] != 5 || d.Counters["b"] != 3 || d.Runs != 3 {
		t.Fatalf("diff: %+v", d)
	}
	// A reset sink (shrinking counter) clamps to the new absolute value.
	cur.Counters["a"] = 2
	if d := telemetry.Diff(prev, cur); d.Counters["a"] != 2 {
		t.Fatalf("diff after reset: %+v", d)
	}
	if d := telemetry.Diff(nil, cur); d.Counters["b"] != 3 {
		t.Fatalf("diff from nil: %+v", d)
	}
}
