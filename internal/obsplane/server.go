// Package obsplane is the live observability plane: an HTTP serving layer
// over the telemetry sink and the security-event journal, so a running
// simulation can be scraped (/metrics), inspected (/snapshot.json,
// /spans.json, /trace.json, /journal.jsonl), health-checked (/healthz), and profiled
// (/debug/pprof) without stopping the batch.
//
// The server owns no metrics itself: it reads through caller-supplied
// capture functions (typically core.TelemetrySnapshot and
// core.JournalEvents), which serialize against the batch merge locks, so a
// live reader never perturbs what the simulation records — determinism of
// the exported data is untouched by scrape traffic.
package obsplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"fsencr/internal/audit"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// DefaultInterval is the periodic publish cadence when Options.Interval is
// unset.
const DefaultInterval = time.Second

// Options configures a Server.
type Options struct {
	// Snapshot captures the current merged telemetry state. Nil (or a nil
	// return) serves as an empty snapshot.
	Snapshot func() *telemetry.Snapshot
	// Journal captures the current merged security-event journal; nil
	// serves an empty journal.
	Journal func() []journal.Event
	// Audit captures the current tamper-evident access-audit window; nil
	// serves an empty log.
	Audit func() []audit.Record
	// Interval is the periodic publish cadence (<= 0 uses DefaultInterval).
	Interval time.Duration
}

// Server publishes periodic numbered snapshots and serves the live plane.
type Server struct {
	opts Options

	mu    sync.Mutex
	seq   uint64
	last  *telemetry.Snapshot // last published state, spans stripped
	delta *telemetry.Snapshot // change since the previous publish

	// writeErrs counts export responses that failed mid-write (client went
	// away, encode error). The data is gone either way; the count is
	// surfaced on /healthz so broken scrapes are visible, not silent.
	writeErrs atomic.Uint64

	lis  net.Listener
	hs   *http.Server
	done chan struct{}
	wg   sync.WaitGroup
}

// noteWrite folds one export write result into the error count.
func (s *Server) noteWrite(err error) {
	if err != nil {
		s.writeErrs.Add(1)
	}
}

// WriteErrors returns how many export responses failed mid-write.
func (s *Server) WriteErrors() uint64 { return s.writeErrs.Load() }

// NewServer builds a server; call Start to bind it or mount Handler
// yourself.
func NewServer(opts Options) *Server {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	return &Server{opts: opts}
}

// capture reads the current telemetry state, tolerating absent sources.
func (s *Server) capture() *telemetry.Snapshot {
	if s.opts.Snapshot != nil {
		if snap := s.opts.Snapshot(); snap != nil {
			return snap
		}
	}
	return telemetry.NewSnapshot()
}

func (s *Server) journalEvents() []journal.Event {
	if s.opts.Journal != nil {
		return s.opts.Journal()
	}
	return nil
}

func (s *Server) auditRecords() []audit.Record {
	if s.opts.Audit != nil {
		return s.opts.Audit()
	}
	return nil
}

// Publish captures a numbered snapshot and computes its delta against the
// previous publication. The ticker drives it; /snapshot.json also calls it
// once if nothing has been published yet. Returns the new sequence number.
func (s *Server) Publish() uint64 {
	cur := s.capture().WithoutSpans()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delta = telemetry.Diff(s.last, cur)
	s.last = cur
	s.seq++
	return s.seq
}

// published returns the latest publication, publishing first if none
// exists yet.
func (s *Server) published() (seq uint64, last, delta *telemetry.Snapshot) {
	s.mu.Lock()
	if s.seq == 0 {
		s.mu.Unlock()
		s.Publish()
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	return s.seq, s.last, s.delta
}

// Handler returns the plane's route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot.json", s.handleSnapshot)
	mux.HandleFunc("/spans.json", s.handleSpans)
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/journal.jsonl", s.handleJournal)
	mux.HandleFunc("/audit.jsonl", s.handleAudit)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	seq := s.seq
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_, err := fmt.Fprintf(w, "{\"status\":\"ok\",\"seq\":%d,\"write_errors\":%d}\n",
		seq, s.writeErrs.Load())
	s.noteWrite(err)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Scrapes read the live sink, not the last publication: Prometheus
	// brings its own cadence. Runtime gauges are added to this serving-time
	// copy only — they never touch the deterministic snapshots.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.noteWrite(s.capture().AddRuntimeGauges().WritePrometheus(w))
}

// snapshotDoc is the /snapshot.json shape: the latest numbered publication
// plus what changed since the one before it.
type snapshotDoc struct {
	Seq      uint64              `json:"seq"`
	Snapshot *telemetry.Snapshot `json:"snapshot"`
	Delta    *telemetry.Snapshot `json:"delta"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	seq, last, delta := s.published()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	s.noteWrite(enc.Encode(snapshotDoc{Seq: seq, Snapshot: last, Delta: delta}))
}

// handleSpans serves the live capture as one plain snapshot document,
// spans included. The numbered /snapshot.json publications strip spans to
// keep their deltas small, so trace consumers (fsencr-top's waterfalls)
// read this endpoint instead.
func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.noteWrite(s.capture().WriteJSON(w))
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.noteWrite(s.capture().WriteChromeTrace(w))
}

func (s *Server) handleJournal(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.noteWrite(journal.WriteJSONL(w, s.journalEvents()))
}

// handleAudit serves the tamper-evident access-audit window as JSONL, one
// record per line, shard-annotated and chain-valued.
func (s *Server) handleAudit(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.noteWrite(audit.WriteJSONL(w, s.auditRecords()))
}

// Start binds addr (":0" picks a free port), serves the plane in the
// background, and starts the periodic publisher. It returns the bound
// address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obsplane: %w", err)
	}
	s.lis = lis
	s.hs = &http.Server{Handler: s.Handler()}
	s.done = make(chan struct{})
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		_ = s.hs.Serve(lis) // always returns ErrServerClosed on Close
	}()
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Publish()
			case <-s.done:
				return
			}
		}
	}()
	return lis.Addr().String(), nil
}

// Close stops the publisher and the HTTP server, waiting for both.
func (s *Server) Close() error {
	if s.hs == nil {
		return nil
	}
	close(s.done)
	err := s.hs.Close()
	s.wg.Wait()
	s.hs = nil
	return err
}

// Shutdown is the graceful Close: the publisher stops, in-flight HTTP
// requests drain (bounded by ctx), and one final publication is made so
// scrapers arriving during the drain see the terminal state.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs == nil {
		return nil
	}
	close(s.done)
	s.Publish()
	err := s.hs.Shutdown(ctx)
	s.wg.Wait()
	s.hs = nil
	return err
}
