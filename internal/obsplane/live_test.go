package obsplane_test

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"fsencr/internal/core"
	"fsencr/internal/obsplane"
	"fsencr/internal/obsplane/journal"
)

// liveReqs is a small cross-scheme batch with enough OTT and counter
// activity to populate both the telemetry sink and the security journal.
func liveReqs() []core.Request {
	var reqs []core.Request
	for _, w := range []string{"ycsb", "hashmap", "ctree"} {
		for _, s := range []core.Scheme{core.SchemeBaseline, core.SchemeFsEncr} {
			reqs = append(reqs, core.Request{Workload: w, Scheme: s, Ops: 150})
		}
	}
	return reqs
}

// runBatchBytes runs the batch at the given parallelism with fresh sinks
// and returns the merged telemetry snapshot (JSON) and journal (JSONL) as
// bytes.
func runBatchBytes(t *testing.T, parallelism int) ([]byte, []byte) {
	t.Helper()
	core.Parallelism = parallelism
	core.EnableTelemetry()
	core.EnableJournal()
	if _, err := core.RunBatch(liveReqs()); err != nil {
		t.Fatalf("batch at parallelism %d: %v", parallelism, err)
	}
	var snap, jrn bytes.Buffer
	if err := core.TelemetrySnapshot().WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	if err := journal.WriteJSONL(&jrn, core.JournalEvents()); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes(), jrn.Bytes()
}

// TestLiveReaderPreservesDeterminism runs the same batch serially and at
// parallelism 8 — the parallel run with the observability plane serving
// and a reader hammering every endpoint throughout — and asserts the
// merged exports are byte-identical. Run under `go test -race` this also
// proves the live plane reads cleanly against the per-run registries and
// the sink merges.
func TestLiveReaderPreservesDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full batch comparison; skipped in -short")
	}
	defer func() { core.Parallelism = 0 }()

	serialSnap, serialJrn := runBatchBytes(t, 1)
	if len(core.JournalEvents()) == 0 {
		t.Fatal("batch produced no journal events; the comparison would be vacuous")
	}

	srv := obsplane.NewServer(obsplane.Options{
		// The live completion-order views, as fsencr-sim serves them: the
		// byte-equality below is asserted on the canonical input-order
		// exports, proving the live surface never contaminates them.
		Snapshot: core.LiveTelemetrySnapshot,
		Journal:  core.LiveJournalEvents,
		Interval: 2 * time.Millisecond,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		paths := []string{"/healthz", "/metrics", "/snapshot.json", "/trace.json", "/journal.jsonl"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + addr + paths[i%len(paths)])
			if err != nil {
				continue // server teardown races the last iteration
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	parSnap, parJrn := runBatchBytes(t, 8)
	close(stop)
	wg.Wait()

	if !bytes.Equal(serialSnap, parSnap) {
		t.Errorf("telemetry snapshot diverged between serial and parallel runs under a live reader\nserial %d bytes, parallel %d bytes", len(serialSnap), len(parSnap))
	}
	if !bytes.Equal(serialJrn, parJrn) {
		t.Errorf("journal diverged between serial and parallel runs under a live reader\nserial:\n%s\nparallel:\n%s", serialJrn, parJrn)
	}
}
