package fsclient

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fsencr/internal/fsproto"
)

// TestQueueDepthHintParsed: a 429 carrying X-Fsencr-Queue-Depth surfaces
// the depth on the APIError; one without the header reads as -1 (no hint).
func TestQueueDepthHintParsed(t *testing.T) {
	var depth string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if depth != "" {
			w.Header().Set(fsproto.QueueDepthHeader, depth)
		}
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(fsproto.Error{Code: fsproto.CodeBusy, Message: "full"})
	}))
	defer srv.Close()
	c := Dial(srv.URL)

	depth = "37"
	err := c.post("/v1/read", struct{}{}, nil)
	var ae *APIError
	if !asAPIError(err, &ae) || ae.QueueDepth != 37 {
		t.Fatalf("want QueueDepth=37, got %v", err)
	}

	depth = ""
	err = c.post("/v1/read", struct{}{}, nil)
	if !asAPIError(err, &ae) || ae.QueueDepth != -1 {
		t.Fatalf("want QueueDepth=-1 without hint, got %+v", ae)
	}
}

// TestHintAwareBackoff pins the backoff split: a hinted 429 backs off
// proportionally to the reported queue depth (shallow queue: near one
// BaseDelay even on late attempts), while unhinted errors keep the
// exponential curve. The jitter windows [d/2, 3d/2) are checked as hard
// bounds.
func TestHintAwareBackoff(t *testing.T) {
	c := Dial("http://unused")
	c.SetRetry(RetryPolicy{Max: 8, BaseDelay: 8 * time.Millisecond, MaxDelay: 256 * time.Millisecond})

	shallow := &APIError{Status: http.StatusTooManyRequests, QueueDepth: 0}
	deep := &APIError{Status: http.StatusTooManyRequests, QueueDepth: 64}
	unhinted := &APIError{Status: http.StatusTooManyRequests, QueueDepth: -1}

	for i := 0; i < 50; i++ {
		// Shallow hint on attempt 5: d = base = 8ms, sleep in [4ms, 12ms).
		if d := c.backoffFor(5, shallow); d < 4*time.Millisecond || d >= 12*time.Millisecond {
			t.Fatalf("shallow-hint backoff %v outside [4ms, 12ms)", d)
		}
		// Deep hint: d = 8ms + 8ms*64/16 = 40ms, sleep in [20ms, 60ms) —
		// longer than shallow, still not exponential.
		if d := c.backoffFor(5, deep); d < 20*time.Millisecond || d >= 60*time.Millisecond {
			t.Fatalf("deep-hint backoff %v outside [20ms, 60ms)", d)
		}
		// No hint on attempt 5: exponential d = 8ms<<4 = 128ms, >= 64ms.
		if d := c.backoffFor(5, unhinted); d < 64*time.Millisecond {
			t.Fatalf("unhinted backoff %v below exponential floor 64ms", d)
		}
	}
}

// TestClientStat: the typed Stat method round-trips the /v1/stat shapes.
func TestClientStat(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stat" {
			t.Errorf("path %s, want /v1/stat", r.URL.Path)
		}
		var req fsproto.StatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Name != "f.dat" {
			t.Errorf("bad request (%v): %+v", err, req)
		}
		json.NewEncoder(w).Encode(fsproto.StatResponse{
			Name: "acme/f.dat", Size: 8192, Perm: 0640, Encrypted: true, Pages: 2,
		})
	}))
	defer srv.Close()
	c := Dial(srv.URL)
	resp, err := c.Stat(fsproto.StatRequest{Name: "f.dat"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "acme/f.dat" || resp.Size != 8192 || resp.Pages != 2 || !resp.Encrypted {
		t.Fatalf("stat response %+v", resp)
	}
}
