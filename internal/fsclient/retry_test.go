package fsclient

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fsencr/internal/fsproto"
)

func apiErr(w http.ResponseWriter, status int, code string) {
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(fsproto.Error{Code: code, Message: code})
}

// TestRetryOffByDefault: a 429 comes straight back on the first attempt —
// deterministic schedules must never see a silent re-admission.
func TestRetryOffByDefault(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		apiErr(w, http.StatusTooManyRequests, fsproto.CodeBusy)
	}))
	defer srv.Close()
	c := Dial(srv.URL)
	err := c.post("/v1/create", struct{}{}, nil)
	if !IsCode(err, fsproto.CodeBusy) {
		t.Fatalf("want busy error, got %v", err)
	}
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Attempts != 1 {
		t.Fatalf("want Attempts=1, got %+v", ae)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hit %d times, want 1", hits.Load())
	}
}

// TestRetryOnBusy: with a policy installed, 429s are re-sent with backoff
// until the server accepts, and the attempt count is stamped on failures.
func TestRetryOnBusy(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			apiErr(w, http.StatusTooManyRequests, fsproto.CodeBusy)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()
	c := Dial(srv.URL)
	c.SetRetry(RetryPolicy{Max: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond})
	if err := c.post("/v1/create", struct{}{}, nil); err != nil {
		t.Fatalf("post after retries: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server hit %d times, want 3", hits.Load())
	}
}

// TestRetryBudgetExhausted: a persistent 429 eventually surfaces, carrying
// the true attempt count.
func TestRetryBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		apiErr(w, http.StatusTooManyRequests, fsproto.CodeBusy)
	}))
	defer srv.Close()
	c := Dial(srv.URL)
	c.SetRetry(RetryPolicy{Max: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	err := c.post("/v1/create", struct{}{}, nil)
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Attempts != 4 {
		t.Fatalf("want Attempts=4 (1 + 3 retries), got %v", err)
	}
}

// TestNoRetryOnPermission: non-transient API errors are never re-sent even
// with a policy installed.
func TestNoRetryOnPermission(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		apiErr(w, http.StatusForbidden, fsproto.CodePermission)
	}))
	defer srv.Close()
	c := Dial(srv.URL)
	c.SetRetry(RetryPolicy{Max: 5, BaseDelay: time.Millisecond})
	err := c.post("/v1/chmod", struct{}{}, nil)
	if !IsCode(err, fsproto.CodePermission) || hits.Load() != 1 {
		t.Fatalf("want single permission failure, got err=%v hits=%d", err, hits.Load())
	}
}

// TestRerouteOnEpochMismatch: a 421 epoch-mismatch consults the rerouter
// and re-sends to the new base without consuming the retry budget.
func TestRerouteOnEpochMismatch(t *testing.T) {
	newOwner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer newOwner.Close()
	var oldHits atomic.Int64
	oldOwner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		oldHits.Add(1)
		apiErr(w, http.StatusMisdirectedRequest, fsproto.CodeEpochMismatch)
	}))
	defer oldOwner.Close()
	c := Dial(oldOwner.URL)
	rerouted := false
	c.SetRerouter(func() (string, bool) {
		rerouted = true
		return newOwner.URL, true
	})
	if err := c.post("/v1/write", struct{}{}, nil); err != nil {
		t.Fatalf("post after reroute: %v", err)
	}
	if !rerouted || oldHits.Load() != 1 {
		t.Fatalf("want one old-owner hit and a reroute, got hits=%d rerouted=%v", oldHits.Load(), rerouted)
	}
}

// TestRerouteOnConnectionError: a dead node triggers the rerouter too
// (replica promotion), even with retries off.
func TestRerouteOnConnectionError(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer alive.Close()
	dead := httptest.NewServer(http.HandlerFunc(nil))
	deadURL := dead.URL
	dead.Close()
	c := Dial(deadURL)
	c.SetRerouter(func() (string, bool) { return alive.URL, true })
	if err := c.post("/v1/read", struct{}{}, nil); err != nil {
		t.Fatalf("post after failover reroute: %v", err)
	}
}

func asAPIError(err error, ae **APIError) bool {
	e, ok := err.(*APIError)
	if ok {
		*ae = e
	}
	return ok
}
