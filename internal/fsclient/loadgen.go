package fsclient

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fsencr/internal/fsproto"
	"fsencr/internal/sim"
)

// Loadgen op kinds.
const (
	lgLogin = iota
	lgCreate
	lgWrite
	lgRead
	lgCrossRead
	lgLogout
	lgStat
)

// lgOp is one precomputed operation of the load schedule.
type lgOp struct {
	kind   int
	off    uint64
	n      int
	victim int         // lgCrossRead: client whose file is probed
	seq    fsproto.Seq // per-shard schedule position (deterministic mode)
}

// LoadgenOptions configures RunLoadgen.
type LoadgenOptions struct {
	// Clients is the number of concurrent sessions (default 8).
	Clients int
	// Tenants is the number of distinct tenants the clients are spread
	// over round-robin (default 2).
	Tenants int
	// Ops is the number of data operations per client after setup
	// (default 64).
	Ops int
	// Mix weights reads against writes: "3:1", or "read:write" for 1:1.
	Mix string
	// Seed drives the per-client operation RNGs.
	Seed uint64
	// Deterministic assigns per-shard schedule sequence numbers so a
	// deterministic server admits the exact same op order every run.
	// Shards must then match the server's shard count.
	Deterministic bool
	Shards        int
	// CrossEvery makes every Nth data op a cross-tenant read probe — the
	// access the kernel must deny (0 disables; default 8).
	CrossEvery int
	// StatEvery makes every Nth data op a metadata stat of the client's own
	// file (0 disables). Stats never consume a deterministic schedule slot:
	// the server answers them off the admission plane.
	StatEvery int
	// Coordinator, when set, routes every client through the cluster
	// placement table (DialCluster) instead of the fixed base URL, so the
	// load follows shards across migrations and failovers. Incompatible
	// with Deterministic: cluster routing implies fair mode.
	Coordinator string
}

func (o *LoadgenOptions) defaults() {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Tenants <= 0 {
		o.Tenants = 2
	}
	if o.Tenants > o.Clients {
		o.Tenants = o.Clients
	}
	if o.Ops <= 0 {
		o.Ops = 64
	}
	if o.CrossEvery == 0 {
		o.CrossEvery = 8
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
}

// OpLatency is one op kind's client-observed throughput and latency
// distribution over the run (wall-clock; failed calls included — a
// denial's cost is part of the workload).
type OpLatency struct {
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
}

// LoadgenReport is the outcome of one load run.
type LoadgenReport struct {
	Clients int    `json:"clients"`
	Tenants int    `json:"tenants"`
	Ops     uint64 `json:"ops"` // operations attempted, setup included

	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	Stats  uint64 `json:"stats"`

	CrossProbes uint64 `json:"cross_probes"` // cross-tenant read attempts
	CrossDenied uint64 `json:"cross_denied"` // ... denied by permission bits or the per-file key

	Busy   uint64 `json:"busy"`   // backpressure rejections
	Errors uint64 `json:"errors"` // unexpected failures
	// Leaks counts cross-tenant probes that returned data, plus own-file
	// reads of previously-written ranges observing any byte other than the
	// client's own pattern. Zero is the isolation acceptance criterion.
	Leaks      uint64 `json:"leaks"`
	FirstError string `json:"first_error,omitempty"`

	// ElapsedNs is the wall-clock duration of the whole run; OpsPerSec is
	// Ops over that window.
	ElapsedNs uint64  `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Latency breaks throughput and p50/p99 latency down by op kind,
	// keyed "create" / "write" / "read" / "cross_read" / "stat".
	Latency map[string]OpLatency `json:"latency"`
	// TenantLatency breaks the same distributions down one level further:
	// tenant name -> op kind -> latency. A noisy neighbor shows up here as
	// one tenant's p99 diverging from the others' under the same mix.
	TenantLatency map[string]map[string]OpLatency `json:"tenant_latency"`
}

// lgKindNames names the timed op kinds for the latency report.
var lgKindNames = map[int]string{
	lgCreate:    "create",
	lgWrite:     "write",
	lgRead:      "read",
	lgCrossRead: "cross_read",
	lgStat:      "stat",
}

// lgKindOrder fixes the rendering order of the latency breakdowns.
var lgKindOrder = []string{"create", "write", "read", "cross_read", "stat"}

func (r *LoadgenReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "clients %d tenants %d ops %d reads %d writes %d cross-probes %d cross-denied %d busy %d errors %d leaks %d",
		r.Clients, r.Tenants, r.Ops, r.Reads, r.Writes, r.CrossProbes, r.CrossDenied, r.Busy, r.Errors, r.Leaks)
	fmt.Fprintf(&b, "\nelapsed %.3fs  %.1f ops/s", float64(r.ElapsedNs)/1e9, r.OpsPerSec)
	for _, k := range lgKindOrder {
		l, ok := r.Latency[k]
		if !ok || l.Ops == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%-10s ops %-7d %9.1f ops/s  p50 %9.1fus  p99 %9.1fus",
			k, l.Ops, l.OpsPerSec, l.P50Us, l.P99Us)
	}
	tenants := make([]string, 0, len(r.TenantLatency))
	for t := range r.TenantLatency {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		for _, k := range lgKindOrder {
			l, ok := r.TenantLatency[t][k]
			if !ok || l.Ops == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n%s/%-10s ops %-7d %9.1f ops/s  p50 %9.1fus  p99 %9.1fus",
				t, k, l.Ops, l.OpsPerSec, l.P50Us, l.P99Us)
		}
	}
	return b.String()
}

// percentile returns the p-quantile (0..1) of sorted samples by
// nearest-rank.
func percentile(sorted []uint64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Loadgen shape shared by both ends of a deterministic run.
const (
	lgPageSize = 4096
	lgPages    = 4
	lgFileSize = lgPages * lgPageSize
	lgIOSize   = 256
)

// Per-client identity helpers. Deterministic functions of the client
// index, so reruns place the same tenants on the same shards.
func lgTenant(c, tenants int) string { return fmt.Sprintf("tenant%02d", c%tenants) }
func lgFile(c int) string            { return fmt.Sprintf("f%03d.dat", c) }
func lgPassphrase(c, tenants int) string {
	return "pw-" + lgTenant(c, tenants) + fmt.Sprintf("-u%d", c)
}

// Pattern returns client c's fill byte. Reads of the client's own file
// must observe only zero or this byte; anything else is a leak.
func Pattern(c int) byte { return byte('A' + c%26) }

// parseMix parses "R:W" integer weights; the words "read"/"write" weigh 1.
func parseMix(mix string) (r, w int) {
	parts := strings.Split(mix, ":")
	if len(parts) == 2 {
		ri, errR := strconv.Atoi(strings.TrimSpace(parts[0]))
		wi, errW := strconv.Atoi(strings.TrimSpace(parts[1]))
		if errR == nil && errW == nil && ri >= 0 && wi >= 0 && ri+wi > 0 {
			return ri, wi
		}
	}
	return 1, 1
}

// crossVictim picks a deterministic client in a different tenant (-1 when
// every client shares one tenant).
func crossVictim(c, clients, tenants int) int {
	for d := 1; d < clients; d++ {
		v := (c + d) % clients
		if v%tenants != c%tenants {
			return v
		}
	}
	return -1
}

// buildSchedule precomputes every client's op list. In deterministic mode
// it also assigns per-shard sequence numbers by walking clients
// round-robin — one global total order — so each shard's admission order
// is a pure function of (seed, client count), and the interleaving is
// deadlock-free: every client issues its ops in global-order positions,
// so the lowest unexecuted position is always issuable.
func buildSchedule(o LoadgenOptions) [][]lgOp {
	readW, writeW := parseMix(o.Mix)
	ops := make([][]lgOp, o.Clients)
	for c := 0; c < o.Clients; c++ {
		rng := sim.NewRNG(o.Seed<<20 + uint64(c) + 1)
		victim := crossVictim(c, o.Clients, o.Tenants)
		list := []lgOp{
			{kind: lgLogin},
			{kind: lgCreate},
			// First page fully written so an insider ciphertext dump of
			// page 0 can be checked against the pattern.
			{kind: lgWrite, off: 0, n: lgPageSize},
		}
		// Chunks this client has written. Reads sample only from these: a
		// never-written region decrypts NVM zeros through the file OTP,
		// i.e. reads back as pad bytes, which the leak check must not
		// mistake for foreign plaintext.
		written := make([]uint64, 0, lgFileSize/lgIOSize)
		for off := uint64(0); off < lgPageSize; off += lgIOSize {
			written = append(written, off)
		}
		for i := 0; i < o.Ops; i++ {
			if o.CrossEvery > 0 && victim >= 0 && (i+1)%o.CrossEvery == 0 {
				list = append(list, lgOp{kind: lgCrossRead, victim: victim, n: lgIOSize})
				continue
			}
			if o.StatEvery > 0 && (i+1)%o.StatEvery == 0 {
				list = append(list, lgOp{kind: lgStat})
				continue
			}
			if rng.Intn(readW+writeW) < readW {
				off := written[rng.Intn(len(written))]
				list = append(list, lgOp{kind: lgRead, off: off, n: lgIOSize})
			} else {
				off := uint64(rng.Intn(lgFileSize/lgIOSize)) * lgIOSize
				list = append(list, lgOp{kind: lgWrite, off: off, n: lgIOSize})
				written = append(written, off)
			}
		}
		list = append(list, lgOp{kind: lgLogout})
		ops[c] = list
	}
	if o.Deterministic {
		nextSeq := make([]uint64, o.Shards)
		for round := 0; ; round++ {
			assigned := false
			for c := 0; c < o.Clients; c++ {
				if round >= len(ops[c]) {
					continue
				}
				assigned = true
				op := &ops[c][round]
				if op.kind == lgLogout || op.kind == lgStat {
					continue // logout and stat bypass shard admission
				}
				target := c
				if op.kind == lgCrossRead {
					target = op.victim
				}
				shard := fsproto.ShardIndex(fsproto.TenantGID(lgTenant(target, o.Tenants)), o.Shards)
				s := nextSeq[shard]
				nextSeq[shard]++
				op.seq = &s
			}
			if !assigned {
				break
			}
		}
	}
	return ops
}

// RunLoadgen drives one load run against a server and reports what
// happened. base is the server URL. The run aborts a client on transport
// errors (which would hole a deterministic schedule) but treats op-level
// denials as data: expected for cross-tenant probes, counted otherwise.
func RunLoadgen(base string, o LoadgenOptions) (*LoadgenReport, error) {
	o.defaults()
	if o.Coordinator != "" && o.Deterministic {
		return nil, errors.New("fsclient: cluster routing implies fair mode; drop Deterministic or Coordinator")
	}
	schedule := buildSchedule(o)
	rep := &LoadgenReport{Clients: o.Clients, Tenants: o.Tenants}

	var (
		ops, reads, writes, stats, probes, denied, busy, errs, leaks atomic.Uint64
		errOnce                                                      sync.Once
		firstErr                                                     string
		latMu                                                        sync.Mutex
		lats                                                         = map[int][]uint64{}            // op kind -> latency ns samples
		tlats                                                        = map[string]map[int][]uint64{} // tenant -> op kind -> samples
	)
	noteErr := func(c int, op lgOp, err error) {
		errs.Add(1)
		errOnce.Do(func() {
			// APIError already carries the X-Request-Id echo; surface it
			// explicitly so a transport-level error without one still reads
			// unambiguously.
			var ae *APIError
			if errors.As(err, &ae) && ae.RequestID != "" {
				firstErr = fmt.Sprintf("client %d op kind %d request_id %s: %v", c, op.kind, ae.RequestID, err)
				return
			}
			firstErr = fmt.Sprintf("client %d op kind %d: %v", c, op.kind, err)
		})
	}

	runStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := Dial(base)
			var cc *ClusterClient
			if o.Coordinator != "" {
				var derr error
				if cc, derr = DialCluster(o.Coordinator); derr != nil {
					noteErr(c, lgOp{}, derr)
					return
				}
				cl = cc.Client
			}
			tenant := lgTenant(c, o.Tenants)
			pat := Pattern(c)
			// One pattern buffer per client; writes slice it instead of
			// allocating per op (Client marshals the body before returning,
			// so the aliased slice is never retained).
			pattern := bytes.Repeat([]byte{pat}, lgPageSize)
			// Latency samples stay client-local until the end of the run.
			local := map[int][]uint64{}
			defer func() {
				latMu.Lock()
				tl := tlats[tenant]
				if tl == nil {
					tl = map[int][]uint64{}
					tlats[tenant] = tl
				}
				for k, s := range local {
					lats[k] = append(lats[k], s...)
					tl[k] = append(tl[k], s...)
				}
				latMu.Unlock()
			}()
			var start time.Time
			record := func(kind int) {
				local[kind] = append(local[kind], uint64(time.Since(start)))
			}
			for _, op := range schedule[c] {
				ops.Add(1)
				start = time.Now()
				var err error
				switch op.kind {
				case lgLogin:
					if cc != nil {
						// Cluster login dials the tenant's home-shard owner and
						// swaps the embedded transport client.
						err = cc.Login(tenant, uint32(c), lgPassphrase(c, o.Tenants))
						cl = cc.Client
					} else if op.seq != nil {
						err = cl.Login(tenant, uint32(c), lgPassphrase(c, o.Tenants), *op.seq)
					} else {
						err = cl.Login(tenant, uint32(c), lgPassphrase(c, o.Tenants))
					}
					if err != nil {
						noteErr(c, op, err)
						return // nothing else can run without a session
					}
					continue
				case lgLogout:
					// A failed logout leaves a live session server-side —
					// that is an error, not noise.
					if err := cl.Logout(); err != nil {
						noteErr(c, op, err)
					}
					continue
				case lgCreate:
					err = cl.Create(fsproto.CreateRequest{
						Name: lgFile(c), Perm: 0600, Size: lgFileSize, Encrypted: true, Seq: op.seq,
					})
				case lgWrite:
					err = cl.Write(fsproto.WriteRequest{Name: lgFile(c), Offset: op.off, Data: pattern[:op.n], Seq: op.seq})
					if err == nil {
						writes.Add(1)
					}
				case lgRead:
					var data []byte
					data, err = cl.Read(fsproto.ReadRequest{Name: lgFile(c), Offset: op.off, Length: op.n, Seq: op.seq})
					if err == nil {
						reads.Add(1)
						// The read range was written by this client, so
						// every byte must be its own pattern.
						for _, b := range data {
							if b != pat {
								leaks.Add(1)
								break
							}
						}
					}
				case lgStat:
					var resp fsproto.StatResponse
					resp, err = cl.Stat(fsproto.StatRequest{Name: lgFile(c)})
					if err == nil {
						stats.Add(1)
						if resp.Size != lgFileSize {
							// The file was created at lgFileSize and never
							// resized; anything else is corrupt metadata.
							leaks.Add(1)
						}
					}
				case lgCrossRead:
					probes.Add(1)
					_, err = cl.Read(fsproto.ReadRequest{
						Name:   lgFile(op.victim),
						Tenant: lgTenant(op.victim, o.Tenants),
						Offset: 0, Length: op.n, Seq: op.seq,
					})
					record(lgCrossRead)
					if err == nil {
						// The kernel must deny this: 0600 bits and a
						// foreign per-file key. Data back = breach.
						leaks.Add(1)
						continue
					}
					switch {
					case IsCode(err, fsproto.CodePermission), IsCode(err, fsproto.CodeWrongPassphrase):
						denied.Add(1)
					case IsCode(err, fsproto.CodeNotFound):
						// Victim has not created its file yet (fair mode
						// interleaving) — acceptable.
					default:
						noteErr(c, op, err)
					}
					continue
				}
				record(op.kind)
				if err != nil {
					if IsCode(err, fsproto.CodeBusy) {
						busy.Add(1)
					} else {
						noteErr(c, op, err)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(runStart)

	rep.Ops = ops.Load()
	rep.Reads = reads.Load()
	rep.Writes = writes.Load()
	rep.Stats = stats.Load()
	rep.CrossProbes = probes.Load()
	rep.CrossDenied = denied.Load()
	rep.Busy = busy.Load()
	rep.Errors = errs.Load()
	rep.Leaks = leaks.Load()
	rep.FirstError = firstErr

	rep.ElapsedNs = uint64(elapsed)
	if s := elapsed.Seconds(); s > 0 {
		rep.OpsPerSec = float64(rep.Ops) / s
	}
	summarize := func(byKind map[int][]uint64) map[string]OpLatency {
		out := make(map[string]OpLatency, len(lgKindNames))
		for kind, name := range lgKindNames {
			samples := byKind[kind]
			if len(samples) == 0 {
				continue
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			out[name] = OpLatency{
				Ops:       uint64(len(samples)),
				OpsPerSec: float64(len(samples)) / elapsed.Seconds(),
				P50Us:     float64(percentile(samples, 0.50)) / 1e3,
				P99Us:     float64(percentile(samples, 0.99)) / 1e3,
			}
		}
		return out
	}
	rep.Latency = summarize(lats)
	rep.TenantLatency = make(map[string]map[string]OpLatency, len(tlats))
	for tenant, byKind := range tlats {
		rep.TenantLatency[tenant] = summarize(byKind)
	}
	return rep, nil
}
