// Package fsclient is the Go client for fsencrd, the multi-tenant
// encrypted file service: a thin typed layer over the /v1 JSON API plus a
// deterministic load generator (loadgen.go).
//
// A Client is one authenticated tenant session. Methods mirror the
// service's operations one-to-one; request structs come from
// internal/fsproto so client and server agree on shapes and on the
// tenant -> shard mapping (which a deterministic client needs to assign
// schedule sequence numbers).
package fsclient

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"fsencr/internal/fsproto"
	"fsencr/internal/telemetry"
)

// APIError is a non-2xx response decoded from the service's error body.
type APIError struct {
	Status  int    // HTTP status
	Code    string // stable fsproto code ("permission", "busy", ...)
	Message string
	// RequestID is the server's X-Request-Id echo (the request's trace ID
	// in hex), joining this failure to the server-side trace.
	RequestID string
	// Attempts is how many times the request was sent before this error
	// came back (1 with retries off).
	Attempts int
	// QueueDepth is the rejecting shard's admitted-but-unserved task count
	// from the X-Fsencr-Queue-Depth hint on 429 responses, or -1 when the
	// response carried no hint. The retry loop scales its backoff by it.
	QueueDepth int64
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("fsencrd: %s (%d %s) [req %s]", e.Message, e.Status, e.Code, e.RequestID)
	}
	return fmt.Sprintf("fsencrd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsCode reports whether err is an APIError carrying the given stable code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// Client is one session against an fsencrd server.
type Client struct {
	base  string
	hc    *http.Client
	token string
	gid   uint32
	shard int

	// Trace minting state: traceBase hashes the caller identity (tenant
	// and uid at Login, the base URL before), reqSeq counts requests, and
	// together they make every request's trace ID deterministic for a
	// deterministic schedule. sampled is the head-sampling bit (default
	// on; the server tail-samples among sampled traces).
	traceBase uint64
	reqSeq    uint64
	sampled   bool
	// LastRequestID is the X-Request-Id of the most recent response.
	LastRequestID string

	// retry bounds automatic re-sends; the zero value means exactly one
	// attempt, which keeps the deterministic load generator's schedule
	// intact (a silent retry would admit the same sequence number twice).
	retry RetryPolicy
	// onReroute, when set, is consulted on an epoch-mismatch response or a
	// transport error: it returns a (possibly new) base URL after
	// refreshing whatever routing state the caller maintains. The
	// cluster-aware client uses it to chase shard migrations.
	onReroute func() (string, bool)
}

// RetryPolicy bounds the client's automatic retries on HTTP 429 (admission
// queue full) and transient transport errors. Off by default: Max is the
// number of re-sends after the first attempt.
type RetryPolicy struct {
	Max       int           // re-sends after the first attempt (0 = off)
	BaseDelay time.Duration // first backoff step (default 5ms when Max > 0)
	MaxDelay  time.Duration // backoff cap (default 250ms)
}

// SetRetry installs a retry policy. Leave it unset (or Max 0) for
// deterministic schedules.
func (c *Client) SetRetry(p RetryPolicy) { c.retry = p }

// SetRerouter installs the routing-refresh hook consulted on epoch
// mismatches and transport errors.
func (c *Client) SetRerouter(fn func() (string, bool)) { c.onReroute = fn }

// Dial points a client at a server base URL (e.g. "http://127.0.0.1:9144").
// No connection is made until Login.
func Dial(base string) *Client {
	return &Client{base: base, hc: &http.Client{}, traceBase: fnv64a(base), sampled: true}
}

// SetSampled sets the head-sampling bit sent with every request.
func (c *Client) SetSampled(on bool) { c.sampled = on }

func fnv64a(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// GID returns the tenant group ID echoed by the server at login.
func (c *Client) GID() uint32 { return c.gid }

// Shard returns the tenant's shard index echoed by the server at login.
func (c *Client) Shard() int { return c.shard }

// post sends one JSON request, retrying per the client's policy, and
// decodes the response into out (nil out discards the body). One logical
// request keeps one trace ID across every attempt and reroute.
func (c *Client) post(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	c.reqSeq++
	tc := fsproto.TraceContext{
		TraceID: telemetry.MintTraceID(c.traceBase, c.reqSeq),
		Sampled: c.sampled,
	}
	attempts, reroutes := 0, 0
	for {
		attempts++
		err := c.send(path, body, tc, out)
		if err == nil {
			return nil
		}
		// A moved shard or a dead node is not a failure of the request, it
		// is stale routing: refresh and re-send (bounded, in case the
		// routing authority itself is confused).
		if c.onReroute != nil && reroutes < maxReroutes && needsReroute(err) {
			if base, ok := c.onReroute(); ok {
				c.base = base
				reroutes++
				continue
			}
		}
		if c.retry.Max <= 0 || attempts > c.retry.Max || !retryable(err) {
			var ae *APIError
			if errors.As(err, &ae) {
				ae.Attempts = attempts
			}
			return err
		}
		time.Sleep(c.backoffFor(attempts, err))
	}
}

// maxReroutes bounds routing-refresh loops within one logical request.
const maxReroutes = 3

// send is one attempt.
func (c *Client) send(path string, body []byte, tc fsproto.TraceContext, out any) error {
	hr, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		hr.Header.Set(fsproto.TokenHeader, c.token)
	}
	hr.Header.Set(fsproto.TraceHeader, tc.String())
	resp, err := c.hc.Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.LastRequestID = resp.Header.Get(fsproto.RequestIDHeader)
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var pe fsproto.Error
		if json.Unmarshal(data, &pe) != nil || pe.Code == "" {
			pe = fsproto.Error{Code: fsproto.CodeInternal, Message: string(data)}
		}
		ae := &APIError{Status: resp.StatusCode, Code: pe.Code, Message: pe.Message,
			RequestID: c.LastRequestID, QueueDepth: -1}
		if v := resp.Header.Get(fsproto.QueueDepthHeader); v != "" {
			if depth, perr := strconv.ParseInt(v, 10, 64); perr == nil && depth >= 0 {
				ae.QueueDepth = depth
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// retryable reports whether err is worth re-sending: admission backpressure
// (429) or a transport-level failure that never reached a handler.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// needsReroute reports whether err signals stale routing: the node
// disowned the shard at a newer epoch, or the node is unreachable.
func needsReroute(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code == fsproto.CodeEpochMismatch
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// queueDepthScale converts a 429 queue-depth hint into backoff growth: the
// hinted delay reaches one extra BaseDelay per queueDepthScale queued tasks.
// With the default per-tenant queue of 64 a full queue backs off ~5x
// BaseDelay — still far gentler than a few exponential doublings.
const queueDepthScale = 16

// backoffFor picks the sleep before re-send n+1. A 429 that carries the
// server's queue-depth hint gets a depth-proportional delay instead of the
// exponential curve: a read burst bouncing off a shallow, already-draining
// queue retries almost immediately, while a deep queue (genuine
// congestion) waits longer. Transport faults and unhinted errors say
// nothing about server load, so they keep the conservative exponential.
func (c *Client) backoffFor(attempt int, err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests && ae.QueueDepth >= 0 {
		base := c.retry.BaseDelay
		if base <= 0 {
			base = 5 * time.Millisecond
		}
		maxd := c.retry.MaxDelay
		if maxd <= 0 {
			maxd = 250 * time.Millisecond
		}
		d := base + base*time.Duration(ae.QueueDepth)/queueDepthScale
		if d > maxd || d <= 0 {
			d = maxd
		}
		return d/2 + time.Duration(rand.Int64N(int64(d)))
	}
	return c.backoff(attempt)
}

// backoff is the sleep before re-send n+1: exponential from BaseDelay,
// capped at MaxDelay, with ±50% jitter so synchronized clients desynchronize.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.retry.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	maxd := c.retry.MaxDelay
	if maxd <= 0 {
		maxd = 250 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > maxd || d <= 0 {
		d = maxd
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// Login opens the session. seq is the deterministic-mode schedule position
// of the login on the tenant's shard; omit it in fair mode.
func (c *Client) Login(tenant string, uid uint32, passphrase string, seq ...uint64) error {
	// Rebase trace minting on the tenant identity so a deterministic
	// schedule yields the same trace IDs regardless of the server address.
	c.traceBase = fnv64a("trace", tenant, fmt.Sprintf("%d", uid))
	c.reqSeq = 0
	req := fsproto.LoginRequest{Tenant: tenant, UID: uid, Passphrase: passphrase, Seq: seqPtr(seq)}
	var resp fsproto.LoginResponse
	if err := c.post("/v1/login", req, &resp); err != nil {
		return err
	}
	c.token, c.gid, c.shard = resp.Token, resp.GID, resp.Shard
	return nil
}

// Logout closes the session server-side.
func (c *Client) Logout() error {
	err := c.post("/v1/logout", struct{}{}, nil)
	c.token = ""
	return err
}

// Create creates a file in the session tenant's namespace.
func (c *Client) Create(req fsproto.CreateRequest) error {
	return c.post("/v1/create", req, nil)
}

// Read reads a byte range.
func (c *Client) Read(req fsproto.ReadRequest) ([]byte, error) {
	var resp fsproto.ReadResponse
	if err := c.post("/v1/read", req, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Stat fetches file metadata. Stat is side-effect free end to end and
// never consumes a deterministic schedule slot, so it carries no seq.
func (c *Client) Stat(req fsproto.StatRequest) (fsproto.StatResponse, error) {
	var resp fsproto.StatResponse
	err := c.post("/v1/stat", req, &resp)
	return resp, err
}

// Write writes and persists a byte range.
func (c *Client) Write(req fsproto.WriteRequest) error {
	return c.post("/v1/write", req, nil)
}

// Chmod changes permission bits.
func (c *Client) Chmod(req fsproto.ChmodRequest) error {
	return c.post("/v1/chmod", req, nil)
}

// Delete unlinks a file (key removal + page shredding on the shard).
func (c *Client) Delete(req fsproto.DeleteRequest) error {
	return c.post("/v1/delete", req, nil)
}

// KVCreate creates a tenant KV store.
func (c *Client) KVCreate(req fsproto.KVCreateRequest) error {
	return c.post("/v1/kv/create", req, nil)
}

// KVPut stores a value.
func (c *Client) KVPut(req fsproto.KVPutRequest) error {
	return c.post("/v1/kv/put", req, nil)
}

// KVGet fetches a value.
func (c *Client) KVGet(req fsproto.KVGetRequest) ([]byte, error) {
	var resp fsproto.KVGetResponse
	if err := c.post("/v1/kv/get", req, &resp); err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// KVDelete removes a key, reporting whether it existed.
func (c *Client) KVDelete(req fsproto.KVDeleteRequest) (bool, error) {
	var resp fsproto.KVDeleteResponse
	if err := c.post("/v1/kv/delete", req, &resp); err != nil {
		return false, err
	}
	return resp.Existed, nil
}

// seqPtr turns an optional variadic sequence number into the wire shape.
func seqPtr(seq []uint64) fsproto.Seq {
	if len(seq) == 0 {
		return nil
	}
	s := seq[0]
	return &s
}
