package fsclient

// Malicious-client mode: the protocol-level half of the chaos engine. Where
// internal/chaos attacks the machine from below (bit flips in NVM),
// RunMalice attacks fsencrd from above — forged and replayed session
// tokens, cross-tenant namespace overrides, wrong passphrases, oversized
// and truncated request bodies, forged lengths — and asserts that every
// attack is refused with the documented stable error code and that not one
// plaintext byte of the victim's data leaks into any response.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"fsencr/internal/fsproto"
)

// MaliceAttack is one attack's outcome.
type MaliceAttack struct {
	Name string `json:"name"`
	// WantCodes is the set of acceptable stable error codes.
	WantCodes []string `json:"want_codes"`
	GotStatus int      `json:"got_status"`
	GotCode   string   `json:"got_code"`
	Passed    bool     `json:"passed"`
	Leaked    bool     `json:"leaked"`
}

// MaliceReport is the outcome of one malicious-client campaign.
type MaliceReport struct {
	Attacks []MaliceAttack `json:"attacks"`
	Passed  int            `json:"passed"`
	Failed  int            `json:"failed"`
	// Leaks counts attack responses carrying any of the victim's plaintext.
	// Zero is the acceptance criterion.
	Leaks int `json:"leaks"`
}

// Clean reports a fully-refused campaign: every attack got its expected
// error and nothing leaked.
func (r *MaliceReport) Clean() bool { return r.Failed == 0 && r.Leaks == 0 }

func (r *MaliceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "malice campaign: %d/%d attacks refused, %d leaks\n",
		r.Passed, r.Passed+r.Failed, r.Leaks)
	for _, a := range r.Attacks {
		status := "ok"
		if !a.Passed {
			status = fmt.Sprintf("FAILED (got %d/%q, want %v)", a.GotStatus, a.GotCode, a.WantCodes)
		}
		if a.Leaked {
			status += " LEAKED"
		}
		fmt.Fprintf(&b, "  %-28s %s\n", a.Name, status)
	}
	return b.String()
}

// secretByte fills the victim file; any attack response containing a run of
// it carried victim plaintext.
const secretByte = byte('Z')

// rawResult is one raw HTTP exchange.
type rawResult struct {
	status int
	code   string
	body   []byte
}

// rawDo sends method+body to base+path with the given token header and
// returns the raw outcome — the attacker's view, below the typed Client.
func rawDo(hc *http.Client, method, base, path, token string, body []byte) (rawResult, error) {
	hr, err := http.NewRequest(method, base+path, bytes.NewReader(body))
	if err != nil {
		return rawResult{}, err
	}
	hr.Header.Set("Content-Type", "application/json")
	if token != "" {
		hr.Header.Set(fsproto.TokenHeader, token)
	}
	resp, err := hc.Do(hr)
	if err != nil {
		return rawResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return rawResult{}, err
	}
	var pe fsproto.Error
	_ = json.Unmarshal(data, &pe) // non-error bodies leave the code empty
	return rawResult{status: resp.StatusCode, code: pe.Code, body: data}, nil
}

// leaked reports whether an attack response carried victim plaintext: a
// successful data payload, or the secret pattern (raw or in the base64
// encoding the wire uses for byte slices).
func leaked(res rawResult) bool {
	var rr fsproto.ReadResponse
	if json.Unmarshal(res.body, &rr) == nil && len(rr.Data) > 0 {
		for _, b := range rr.Data {
			if b == secretByte {
				return true
			}
		}
	}
	if bytes.Contains(res.body, bytes.Repeat([]byte{secretByte}, 8)) {
		return true
	}
	// base64("ZZZZZZ...") == "Wlpa"... — the encoded form of a secret run.
	return bytes.Contains(res.body, []byte("WlpaWlpaWlpa"))
}

// RunMalice drives the malicious-client campaign against a fair-mode
// fsencrd at base. It provisions a victim tenant with a 0600 encrypted
// secret file, then replays the attack list in a fixed order. The campaign
// is deterministic: fixed identities, fixed order, no randomness.
func RunMalice(base string) (*MaliceReport, error) {
	hc := &http.Client{}

	// Victim: private tenant, 0600 encrypted file full of the secret byte.
	victim := Dial(base)
	if err := victim.Login("malice-victim", 7, "victim-pw"); err != nil {
		return nil, fmt.Errorf("malice setup: %w", err)
	}
	if err := victim.Create(fsproto.CreateRequest{
		Name: "secret.dat", Perm: 0600, Size: lgPageSize, Encrypted: true,
	}); err != nil {
		return nil, fmt.Errorf("malice setup: %w", err)
	}
	if err := victim.Write(fsproto.WriteRequest{
		Name: "secret.dat", Offset: 0, Data: bytes.Repeat([]byte{secretByte}, lgPageSize),
	}); err != nil {
		return nil, fmt.Errorf("malice setup: %w", err)
	}

	// Attacker: a legitimate session in a different tenant.
	attacker := Dial(base)
	if err := attacker.Login("malice-attacker", 1, "attacker-pw"); err != nil {
		return nil, fmt.Errorf("malice setup: %w", err)
	}

	// A second session whose token is then replayed after logout.
	replay := Dial(base)
	if err := replay.Login("malice-attacker", 2, "replay-pw"); err != nil {
		return nil, fmt.Errorf("malice setup: %w", err)
	}
	replayToken := replay.token
	if err := replay.Logout(); err != nil {
		return nil, fmt.Errorf("malice setup: %w", err)
	}

	readVictim := func(length int) []byte {
		b, _ := json.Marshal(fsproto.ReadRequest{
			Name: "secret.dat", Tenant: "malice-victim", Offset: 0, Length: length,
		})
		return b
	}

	type attack struct {
		name   string
		method string
		path   string
		token  string
		body   []byte
		want   []string
	}
	attacks := []attack{
		// Session-token abuse: requests with no, forged, or replayed
		// (logged-out) tokens must all die at authentication.
		{"no_token", http.MethodPost, "/v1/read", "",
			readVictim(64), []string{fsproto.CodeAuth}},
		{"forged_token", http.MethodPost, "/v1/read", "t999999999",
			readVictim(64), []string{fsproto.CodeAuth}},
		{"replayed_session", http.MethodPost, "/v1/read", replayToken,
			readVictim(64), []string{fsproto.CodeAuth}},
		// Forged identity: a valid session naming another tenant's
		// namespace, and a login presenting the wrong passphrase for a
		// registered (tenant, uid). The kernel's permission bits and the
		// keyring refuse them; no fallback to "not found" lies.
		{"cross_tenant_override", http.MethodPost, "/v1/read", attacker.token,
			readVictim(64), []string{fsproto.CodePermission, fsproto.CodeWrongPassphrase}},
		{"wrong_passphrase_login", http.MethodPost, "/v1/login", "",
			mustJSON(fsproto.LoginRequest{Tenant: "malice-victim", UID: 7, Passphrase: "guessed"}),
			[]string{fsproto.CodeAuth}},
		// Malformed requests: oversized body (over the 1 MiB bound, so the
		// JSON is cut mid-document), truncated JSON, forged lengths, wrong
		// method. All bad_request — never an allocation or a panic.
		{"oversized_body", http.MethodPost, "/v1/write", attacker.token,
			mustJSON(fsproto.WriteRequest{Name: "x", Data: bytes.Repeat([]byte{'A'}, 2<<20)}),
			[]string{fsproto.CodeBadRequest}},
		{"truncated_body", http.MethodPost, "/v1/read", attacker.token,
			[]byte(`{"name":"secret.dat","len`), []string{fsproto.CodeBadRequest}},
		{"negative_length", http.MethodPost, "/v1/read", attacker.token,
			mustJSON(fsproto.ReadRequest{Name: "secret.dat", Length: -1}),
			[]string{fsproto.CodeBadRequest}},
		{"huge_length", http.MethodPost, "/v1/read", attacker.token,
			readVictim(1 << 30), []string{fsproto.CodeBadRequest}},
		{"get_method", http.MethodGet, "/v1/read", attacker.token,
			nil, []string{fsproto.CodeBadRequest}},
		{"read_beyond_eof", http.MethodPost, "/v1/read", victim.token,
			mustJSON(fsproto.ReadRequest{Name: "secret.dat", Offset: 1 << 40, Length: 64}),
			[]string{fsproto.CodeBadRequest}},
	}

	rep := &MaliceReport{}
	for _, a := range attacks {
		res, err := rawDo(hc, a.method, base, a.path, a.token, a.body)
		if err != nil {
			return nil, fmt.Errorf("malice attack %s: %w", a.name, err)
		}
		out := MaliceAttack{
			Name: a.name, WantCodes: a.want,
			GotStatus: res.status, GotCode: res.code,
			Leaked: leaked(res),
		}
		for _, want := range a.want {
			if res.code == want && res.status >= 400 {
				out.Passed = true
				break
			}
		}
		if out.Leaked {
			rep.Leaks++
			out.Passed = false
		}
		if out.Passed {
			rep.Passed++
		} else {
			rep.Failed++
		}
		rep.Attacks = append(rep.Attacks, out)
	}

	// Control: the victim still reads its own data back intact — the
	// attacks refused service to the attacker, not to the owner.
	data, err := victim.Read(fsproto.ReadRequest{Name: "secret.dat", Offset: 0, Length: 64})
	if err != nil {
		return nil, fmt.Errorf("malice control read: %w", err)
	}
	for _, b := range data {
		if b != secretByte {
			return nil, fmt.Errorf("malice control read: victim data corrupted")
		}
	}
	return rep, nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
