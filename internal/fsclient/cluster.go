package fsclient

// Cluster-aware client: routes through the coordinator's placement table
// instead of a fixed base URL. The client computes its tenant's home
// shard with the same ShardIndex the servers use, dials the owning node,
// and re-fetches the table whenever a node answers with an epoch mismatch
// (the shard migrated) or stops answering at all (the node died and a
// replica was promoted). Cross-tenant operations still go to the home
// node — owners forward one hop inside the fabric — so one route per
// session is all the client ever needs.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"fsencr/internal/fsproto"
)

// ClusterClient is one tenant session against a multi-node cluster.
type ClusterClient struct {
	*Client

	coord string
	hc    *http.Client

	mu    sync.Mutex
	table fsproto.ClusterTable
	home  int // the session tenant's global shard, -1 before Login
}

// DialCluster fetches the placement table from the coordinator and returns
// a routing client. Call Login next; routes resolve per tenant.
func DialCluster(coord string) (*ClusterClient, error) {
	cc := &ClusterClient{
		coord: coord,
		hc:    &http.Client{Timeout: 10 * time.Second},
		home:  -1,
	}
	if err := cc.refresh(); err != nil {
		return nil, err
	}
	return cc, nil
}

// Table returns the most recently fetched placement table.
func (cc *ClusterClient) Table() fsproto.ClusterTable {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.table
}

// refresh re-fetches the placement table from the coordinator.
func (cc *ClusterClient) refresh() error {
	resp, err := cc.hc.Get(cc.coord + "/cluster/table")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fsclient: coordinator table fetch: %s: %s", resp.Status, data)
	}
	var t fsproto.ClusterTable
	if err := json.Unmarshal(data, &t); err != nil {
		return err
	}
	cc.mu.Lock()
	if t.Epoch >= cc.table.Epoch {
		cc.table = t
	}
	cc.mu.Unlock()
	return nil
}

// homeBase resolves the current owner of the session's home shard.
func (cc *ClusterClient) homeBase() (string, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.home < 0 {
		return "", false
	}
	return cc.table.Owner(cc.home)
}

// reroute is the embedded client's routing-refresh hook: re-fetch the
// table and hand back the (possibly new) home-shard owner.
func (cc *ClusterClient) reroute() (string, bool) {
	if err := cc.refresh(); err != nil {
		return "", false
	}
	return cc.homeBase()
}

// Login resolves the tenant's home shard, dials its owner, and opens the
// session there. Cluster routing implies fair mode (live migration does
// not preserve a client-assigned deterministic schedule), so no sequence
// numbers are sent and retries are safe: a default retry policy is
// installed; override with SetRetry.
func (cc *ClusterClient) Login(tenant string, uid uint32, passphrase string) error {
	gid := fsproto.TenantGID(tenant)
	cc.mu.Lock()
	cc.home = fsproto.ShardIndex(gid, cc.table.NShards)
	cc.mu.Unlock()
	base, ok := cc.homeBase()
	if !ok {
		if err := cc.refresh(); err != nil {
			return err
		}
		if base, ok = cc.homeBase(); !ok {
			return fmt.Errorf("fsclient: shard %d has no owner in placement table (epoch %d)", cc.home, cc.Table().Epoch)
		}
	}
	cc.Client = Dial(base)
	cc.Client.SetRerouter(cc.reroute)
	cc.Client.SetRetry(RetryPolicy{Max: 8})
	return cc.Client.Login(tenant, uid, passphrase)
}
