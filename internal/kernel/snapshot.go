package kernel

import (
	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/memctrl"
)

// This file is the kernel layer of the concurrent read fast-path. A reader
// goroutine holding the shard's seqlock for reading can plan and execute a
// file read against a quiescent System without mutating anything: no core
// clock advances, no page faults, no keyring memoization, no controller
// metadata fills. Anything the live path would have handled with a mutation
// (or an error whose exact text the client sees) makes the snapshot path
// return ok=false, and the caller re-runs the read on the owner goroutine.

// SnapshotReader is one goroutine's private read context: a controller
// Reader (forked AES engines and OTP scratch), a page of plaintext scratch
// for sub-page copies, and a passphrase-derived file-key memo replacing the
// owner-only Keyring cache. Never share one across goroutines.
type SnapshotReader struct {
	rd   *memctrl.Reader
	keys map[fekMemo]aesctr.Key
	page aesctr.Page
}

type fekMemo struct {
	pass string
	salt [8]byte
}

// NewSnapshotReader builds a read context bound to this system's memory
// controller. Safe to call from any goroutine.
func (s *System) NewSnapshotReader() *SnapshotReader {
	return &SnapshotReader{
		rd:   s.M.MC.NewReader(),
		keys: make(map[fekMemo]aesctr.Key),
	}
}

func (sr *SnapshotReader) fileKey(pass string, salt [8]byte) aesctr.Key {
	m := fekMemo{pass, salt}
	if k, ok := sr.keys[m]; ok {
		return k
	}
	k := DeriveFileKey(pass, salt)
	sr.keys[m] = k
	return k
}

// PageSpan is one page-granularity piece of a planned snapshot read:
// decrypt the page at PA, then copy plaintext[PageOff:PageOff+N] into
// buf[BufOff:BufOff+N]. Spans of one plan touch disjoint buf ranges, so a
// crypt pool may execute them concurrently with deterministic output.
type PageSpan struct {
	PA      addr.Phys
	PageOff int
	BufOff  int
	N       int
}

// SnapshotReadPlan validates a read for the snapshot fast-path and returns
// its page plan. The checks mirror OpenFile + the read loop: name lookup,
// Unix permission bits, passphrase-derived key verified against what the
// controller holds (via the side-effect-free Peek path), and EOF bounds.
// ok=false means fall back — either the live path mutates (key refill,
// first fault) or it fails with an exact error text the snapshot path must
// not reproduce ad hoc. Only ModeDAX reads are snapshot-servable: the
// page-cache modes fill caches on read.
func (s *System) SnapshotReadPlan(sr *SnapshotReader, uid, gid uint32, name, passphrase string, off, length uint64) ([]PageSpan, bool) {
	if s.mode != ModeDAX {
		return nil, false
	}
	f, err := s.FS.Lookup(name)
	if err != nil {
		return nil, false
	}
	if !f.Allows(uid, gid, fs.ReadAccess) {
		return nil, false
	}
	if f.Encrypted {
		key := sr.fileKey(passphrase, f.Salt)
		if !s.M.MC.PeekVerifyKey(f.GroupID, f.Ino, key) {
			return nil, false
		}
	}
	if length == 0 || off+length < off || off+length > uint64(f.Pages())*config.PageSize {
		return nil, false
	}
	df := f.Encrypted && s.dfEnabled()
	plan := make([]PageSpan, 0, (length+config.PageSize-1)/config.PageSize+1)
	bufOff := 0
	for cur := off; cur < off+length; {
		idx := int(cur / config.PageSize)
		pa, err := f.PagePA(idx)
		if err != nil {
			return nil, false
		}
		if df {
			pa = pa.WithDF()
		}
		po := int(cur % config.PageSize)
		n := config.PageSize - po
		if rem := int(off + length - cur); n > rem {
			n = rem
		}
		plan = append(plan, PageSpan{PA: pa, PageOff: po, BufOff: bufOff, N: n})
		bufOff += n
		cur += uint64(n)
	}
	return plan, true
}

// SnapshotReadSpan executes one span of a plan into buf, deferring side
// effects into d. Full-page spans decrypt straight into the caller's
// buffer; partial spans bounce through the reader's page scratch. Returns
// false when the controller path must fall back (the caller abandons the
// whole read; buf contents are then unspecified).
func (s *System) SnapshotReadSpan(sr *SnapshotReader, sp PageSpan, buf []byte, d *memctrl.ReadDelta) bool {
	if sp.PageOff == 0 && sp.N == config.PageSize {
		return s.M.SnapshotReadPage(sr.rd, sp.PA, (*aesctr.Page)(buf[sp.BufOff:sp.BufOff+config.PageSize]), d)
	}
	if !s.M.SnapshotReadPage(sr.rd, sp.PA, &sr.page, d) {
		return false
	}
	copy(buf[sp.BufOff:sp.BufOff+sp.N], sr.page[sp.PageOff:sp.PageOff+sp.N])
	return true
}

// SnapshotRead plans and serially executes a full read. The parallel
// page-crypt pool uses Plan/Span directly to fan large reads across
// readers; this is the one-goroutine form.
func (s *System) SnapshotRead(sr *SnapshotReader, uid, gid uint32, name, passphrase string, off uint64, buf []byte, d *memctrl.ReadDelta) bool {
	plan, ok := s.SnapshotReadPlan(sr, uid, gid, name, passphrase, off, uint64(len(buf)))
	if !ok {
		return false
	}
	for _, sp := range plan {
		if !s.SnapshotReadSpan(sr, sp, buf, d) {
			return false
		}
	}
	return true
}

// SnapshotStat resolves a file's metadata without any side effects: pure
// lookup plus the Unix permission check, no clock, no cache, no keyring.
// ok=false sends the caller to the owner goroutine for the exact error.
func (s *System) SnapshotStat(uid, gid uint32, name string) (*fs.File, bool) {
	f, err := s.FS.Lookup(name)
	if err != nil {
		return nil, false
	}
	if !f.Allows(uid, gid, fs.ReadAccess) {
		return nil, false
	}
	return f, true
}
