package kernel

import (
	"bytes"
	"errors"
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/memctrl"
)

func bootFsEncr() *System {
	return Boot(config.Default(), memctrl.Mode{MemEncryption: true, FileEncryption: true}, ModeDAX)
}

func bootPlainDAX() *System {
	return Boot(config.Default(), memctrl.Mode{}, ModeDAX)
}

func bootSWEncr() *System {
	return Boot(config.Default(), memctrl.Mode{}, ModeSWEncrypt)
}

const pass = "hunter2hunter2"

func mkfile(t *testing.T, s *System, p *Process, name string, size uint64, encrypted bool) *fs.File {
	t.Helper()
	f, err := s.CreateFile(p, name, 0600, size, encrypted, pass)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDAXMmapReadWrite(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "a.db", 64<<10, true)
	va, err := p.Mmap(f, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox")
	if err := p.Write(va+100, msg); err != nil {
		t.Fatal(err)
	}
	if err := p.Persist(va+100, uint64(len(msg))); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := p.Read(va+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if p.MinorFaults == 0 {
		t.Fatal("no page fault on first touch")
	}
}

func TestDFBitSetForEncryptedDAXFiles(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "e.db", 8<<10, true)
	va, _ := p.Mmap(f, 8<<10)
	p.Write(va, []byte{1})
	pa, _, err := p.translate(va)
	if err != nil {
		t.Fatal(err)
	}
	if !pa.IsDF() {
		t.Fatal("PTE missing DF-bit for encrypted DAX file")
	}
	// The controller saw the MMIO tag.
	if s.M.Stats().Get("mc.page_tags") == 0 {
		t.Fatal("no FECB tagging on page fault")
	}
	// Unencrypted file: no DF.
	g := mkfile(t, s, p, "plain.db", 8<<10, false)
	va2, _ := p.Mmap(g, 8<<10)
	p.Write(va2, []byte{1})
	pa2, _, _ := p.translate(va2)
	if pa2.IsDF() {
		t.Fatal("DF-bit set for unencrypted file")
	}
}

func TestEncryptedFileCiphertextAtRest(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "sec.db", 8<<10, true)
	va, _ := p.Mmap(f, 8<<10)
	secret := []byte("TOP-SECRET-PAYLOAD-1234567890ABC")
	p.Write(va, secret)
	p.Persist(va, uint64(len(secret)))
	s.M.WritebackAll()
	pa, _ := f.PagePA(0)
	raw := s.M.MC.RawLine(pa.WithDF())
	if bytes.Contains(raw[:], secret[:16]) {
		t.Fatal("plaintext visible in NVM")
	}
	// Memory key alone is not enough (System C property).
	half := s.M.MC.DecryptWithMemoryKeyOnly(pa.WithDF())
	if bytes.Contains(half[:], secret[:16]) {
		t.Fatal("memory key alone revealed file plaintext")
	}
}

func TestWrongPassphraseDenied(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	mkfile(t, s, p, "locked.db", 8<<10, true)
	if _, err := s.OpenFile(p, "locked.db", fs.ReadAccess, "wrong-pass"); !errors.Is(err, ErrWrongPassphrase) {
		t.Fatalf("wrong passphrase: %v", err)
	}
	if _, err := s.OpenFile(p, "locked.db", fs.ReadAccess, pass); err != nil {
		t.Fatalf("correct passphrase rejected: %v", err)
	}
}

func TestChmod777StillNeedsPassphrase(t *testing.T) {
	// §VI: accidental chmod 777 must not expose an encrypted file to a
	// curious user who lacks the passphrase.
	s := bootFsEncr()
	owner := s.NewProcess(1000, 100)
	f := mkfile(t, s, owner, "oops.db", 8<<10, true)
	if err := s.FS.Chmod(f, 1000, 0777); err != nil {
		t.Fatal(err)
	}
	curious := s.NewProcess(2000, 200)
	if _, err := s.OpenFile(curious, "oops.db", fs.ReadAccess, "guess"); !errors.Is(err, ErrWrongPassphrase) {
		t.Fatalf("curious user with chmod 777 got: %v", err)
	}
	// With the right passphrase (e.g. shared deliberately), access works.
	if _, err := s.OpenFile(curious, "oops.db", fs.ReadAccess, pass); err != nil {
		t.Fatal(err)
	}
}

func TestPermissionBitsEnforced(t *testing.T) {
	s := bootPlainDAX()
	owner := s.NewProcess(1000, 100)
	mkfile(t, s, owner, "private.db", 8<<10, false)
	other := s.NewProcess(2000, 200)
	if _, err := s.OpenFile(other, "private.db", fs.ReadAccess, ""); !errors.Is(err, ErrPermission) {
		t.Fatalf("0600 file readable by other: %v", err)
	}
}

func TestUnlinkShredsData(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "gone.db", 8<<10, true)
	va, _ := p.Mmap(f, 8<<10)
	secret := []byte("DELETE-ME-SECRET-0123456789ABCDEF")
	p.Write(va, secret)
	p.Persist(va, uint64(len(secret)))
	s.M.WritebackAll()
	pa, _ := f.PagePA(0)
	if err := s.Unlink(p, "gone.db"); err != nil {
		t.Fatal(err)
	}
	// Even re-reading the old physical page through the controller (with
	// whatever keys remain) must not yield the plaintext.
	line, _ := s.M.MC.ReadLine(0, pa.WithDF())
	if bytes.Contains(line[:], secret[:16]) {
		t.Fatal("deleted file data recoverable")
	}
	if s.M.Stats().Get("mc.page_shreds") == 0 {
		t.Fatal("no pages shredded")
	}
	// The stale mapping is gone.
	if err := p.Read(va, make([]byte, 4)); err == nil {
		t.Fatal("read through stale mapping of deleted file succeeded")
	}
}

func TestUnlinkPermission(t *testing.T) {
	s := bootPlainDAX()
	owner := s.NewProcess(1000, 100)
	mkfile(t, s, owner, "keep.db", 8<<10, false)
	other := s.NewProcess(2000, 200)
	if err := s.Unlink(other, "keep.db"); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-owner unlink: %v", err)
	}
}

func TestAdminAuthLock(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "locked.db", 8<<10, true)
	va, _ := p.Mmap(f, 8<<10)
	secret := []byte("ADMIN-PROTECTED-SECRET-BYTES!!!!")
	p.Write(va, secret)
	p.Persist(va, uint64(len(secret)))
	s.M.WritebackAll()
	// An attacker boots with wrong admin credentials: FsEncr locks.
	if s.AuthenticateAdmin("letmein", "root-pass") {
		t.Fatal("wrong admin credential accepted")
	}
	got := make([]byte, len(secret))
	// Force re-reads from NVM.
	s.M.Crash(true)
	if err := s.M.Recover(); err != nil {
		t.Fatal(err)
	}
	p.Read(va, got)
	if bytes.Contains(got, secret[:16]) {
		t.Fatal("locked controller still served plaintext")
	}
	// Correct credential restores service.
	if !s.AuthenticateAdmin("root-pass", "root-pass") {
		t.Fatal("correct credential rejected")
	}
	s.M.Crash(true)
	if err := s.M.Recover(); err != nil {
		t.Fatal(err)
	}
	p.Read(va, got)
	if !bytes.Equal(got, secret) {
		t.Fatal("unlock did not restore plaintext access")
	}
}

func TestAnonymousMemory(t *testing.T) {
	s := bootPlainDAX()
	p := s.NewProcess(1000, 100)
	va := p.MmapAnon(16 << 10)
	p.Write(va+8192, []byte{9, 8, 7})
	got := make([]byte, 3)
	p.Read(va+8192, got)
	if got[0] != 9 || got[2] != 7 {
		t.Fatal("anon roundtrip failed")
	}
	// Fresh anon pages read zero.
	p.Read(va, got)
	if got[0] != 0 {
		t.Fatal("anon memory not zeroed")
	}
}

func TestSegfault(t *testing.T) {
	s := bootPlainDAX()
	p := s.NewProcess(1000, 100)
	if err := p.Read(0xdead0000, make([]byte, 1)); err == nil {
		t.Fatal("unmapped read succeeded")
	}
}

func TestMmapBeyondEOF(t *testing.T) {
	s := bootPlainDAX()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "small.db", 4<<10, false)
	if _, err := p.Mmap(f, 64<<10); err == nil {
		t.Fatal("mmap beyond EOF succeeded")
	}
}

func TestEncryptedFileNeedsPassphrase(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	if _, err := s.CreateFile(p, "nopass.db", 0600, 4<<10, true, ""); !errors.Is(err, ErrNoPassphrase) {
		t.Fatalf("encrypted file without passphrase: %v", err)
	}
}
