// Package kernel models the co-designed operating system of the paper: DAX
// memory-mapping with DF-bit page-table entries, the MMIO protocol to the
// memory controller (key install/remove, FECB tagging during page faults),
// the keyring-based key hierarchy, Unix permission enforcement, the
// conventional page-cache file path, and the eCryptfs-style software
// encryption baseline.
package kernel

import (
	"crypto/sha256"

	"fsencr/internal/aesctr"
)

// Keyring models the Linux keyring mechanism the paper's key management
// builds on (§III-E): a user's session holds a master key derived from the
// login passphrase; per-file keys are derived from the owner's passphrase
// and the file's salt, eCryptfs-style (FEK wrapped by FEKEK).
type Keyring struct {
	sessions map[uint32][32]byte // uid -> master key material
	// fek memoizes passphrase+salt -> FEK derivations. A service opening
	// files on every request re-derives the same handful of keys
	// thousands of times; the SHA-256 derivation was the open path's last
	// per-request allocation. Unsynchronized, like the rest of the
	// keyring: a Keyring belongs to one kernel.System, driven by one
	// goroutine.
	fek map[fekCacheKey]aesctr.Key
}

type fekCacheKey struct {
	pass string
	salt [8]byte
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{
		sessions: make(map[uint32][32]byte),
		fek:      make(map[fekCacheKey]aesctr.Key),
	}
}

// FileKey returns the File Encryption Key for (passphrase, salt),
// memoizing the derivation. Derived keys are deterministic, so caching
// never changes which key a passphrase produces — a wrong passphrase still
// derives (and caches) a key VerifyKey rejects.
func (k *Keyring) FileKey(passphrase string, salt [8]byte) aesctr.Key {
	ck := fekCacheKey{pass: passphrase, salt: salt}
	if key, ok := k.fek[ck]; ok {
		return key
	}
	key := DeriveFileKey(passphrase, salt)
	k.fek[ck] = key
	return key
}

// Login derives and installs the user's session master key.
func (k *Keyring) Login(uid uint32, passphrase string) {
	k.sessions[uid] = sha256.Sum256([]byte("fekek:" + passphrase))
}

// Logout discards the session key.
func (k *Keyring) Logout(uid uint32) { delete(k.sessions, uid) }

// Verify reports whether uid already holds a session master key
// (registered) and, if so, whether passphrase derives that same key (ok).
// A service authenticating returning users checks ok before granting a
// session; a false ok with registered true is an authentication failure.
func (k *Keyring) Verify(uid uint32, passphrase string) (registered, ok bool) {
	stored, registered := k.sessions[uid]
	if !registered {
		return false, false
	}
	return true, stored == sha256.Sum256([]byte("fekek:"+passphrase))
}

// HasSession reports whether uid is logged in.
func (k *Keyring) HasSession(uid uint32) bool {
	_, ok := k.sessions[uid]
	return ok
}

// DeriveFileKey computes the File Encryption Key for a file from a
// passphrase and the file's salt. A wrong passphrase yields a key that the
// memory controller's VerifyKey will reject.
func DeriveFileKey(passphrase string, salt [8]byte) aesctr.Key {
	h := sha256.New()
	h.Write([]byte("fek:"))
	h.Write([]byte(passphrase))
	h.Write(salt[:])
	var sum [32]byte
	h.Sum(sum[:0])
	var key aesctr.Key
	copy(key[:], sum[:])
	return key
}
