package kernel

import (
	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/pagecache"
)

// loadPageCache brings file page pageIdx into the page cache (the
// conventional path of Figure 1(a)): traverse the filesystem software
// stack, copy the page from the device region into an anonymous frame, and
// — under eCryptfs-style software encryption — decrypt the whole 4 KB page
// with the file key before handing it to the application.
func (s *System) loadPageCache(p *Process, f *fs.File, pageIdx uint64) (*pagecache.Page, error) {
	key := pagecache.Key{Ino: f.Ino, PageIdx: pageIdx}
	if pg, ok := s.pageCache.Get(key); ok {
		return pg, nil
	}
	// Software stack traversal: VFS -> (eCryptfs) -> ext4 -> driver.
	p.core.Compute(s.cfg.Kernel.VFSStackLatency)

	frame, err := s.allocFrameReusing(p)
	if err != nil {
		return nil, err
	}

	devPA, err := f.PagePA(int(pageIdx))
	if err != nil {
		return nil, err
	}

	// Copy device page -> page cache frame (DMA-style streaming read,
	// batched page-granularity datapath).
	var buf aesctr.Page
	p.core.ReadPageNC(devPA, &buf)
	if s.mode == ModeSWEncrypt && f.Encrypted {
		// Software decryption of the full page, regardless of how few
		// bytes the application wanted: the 4 KB crypt granularity the
		// paper calls out.
		if c, ok := s.swCiphers[f.Ino]; ok {
			c.CryptPage(pageIdx, buf[:])
		}
		p.core.Compute(s.cfg.Kernel.SWCryptoPer16B * (config.PageSize / 16))
		s.M.Stats().Inc("kernel.sw_decrypts")
	}
	p.core.WritePageNT(frame, &buf)
	p.core.Compute(s.cfg.Kernel.CopyPer64B * config.LinesPerPage)

	pg := &pagecache.Page{Key: key, Frame: frame}
	s.frameRefs[frame] = key
	if victim := s.pageCache.Insert(pg); victim != nil {
		s.evictPage(p, victim)
	}
	s.M.Stats().Inc("kernel.pagecache_loads")
	return pg, nil
}

// allocFrameReusing allocates a frame, recycling frames of evicted pages.
func (s *System) allocFrameReusing(p *Process) (addr.Phys, error) {
	if len(s.freeFrames) > 0 {
		f := s.freeFrames[len(s.freeFrames)-1]
		s.freeFrames = s.freeFrames[:len(s.freeFrames)-1]
		return f, nil
	}
	return s.allocFrame()
}

// evictPage removes an evicted page-cache page: writes it back if dirty,
// unmaps it from every process, and recycles the frame.
func (s *System) evictPage(p *Process, victim *pagecache.Page) {
	if victim.Dirty {
		s.writebackPage(p, victim)
	}
	delete(s.frameRefs, victim.Frame)
	for _, proc := range s.procs {
		for vp, e := range proc.pt {
			if e.cachePage == victim {
				delete(proc.pt, vp)
			}
		}
	}
	s.freeFrames = append(s.freeFrames, victim.Frame)
}

// writebackPage copies a dirty page-cache page back to the device region,
// re-encrypting it in software first when eCryptfs-style encryption is on.
func (s *System) writebackPage(p *Process, pg *pagecache.Page) {
	f, ok := s.FS.ByIno(pg.Key.Ino)
	if !ok {
		pg.Dirty = false
		return // file deleted underneath us
	}
	devPA, err := f.PagePA(int(pg.Key.PageIdx))
	if err != nil {
		pg.Dirty = false
		return
	}
	p.core.Compute(s.cfg.Kernel.VFSStackLatency)
	var buf aesctr.Page
	p.core.ReadPageNC(pg.Frame, &buf)
	if s.mode == ModeSWEncrypt && f.Encrypted {
		if c, ok := s.swCiphers[f.Ino]; ok {
			c.CryptPage(pg.Key.PageIdx, buf[:])
		}
		p.core.Compute(s.cfg.Kernel.SWCryptoPer16B * (config.PageSize / 16))
		s.M.Stats().Inc("kernel.sw_encrypts")
	}
	// Non-temporal copy back to the device; the fence makes it durable.
	p.core.WritePageNT(devPA, &buf)
	p.core.Fence()
	pg.Dirty = false
	pg.PersistCount = 0
	s.M.Stats().Inc("kernel.pagecache_writebacks")
}
