package kernel

import (
	"bytes"
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/memctrl"
)

func TestPageCachePathRoundtrip(t *testing.T) {
	s := Boot(config.Default(), memctrl.Mode{}, ModePageCache)
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "conv.db", 32<<10, false)
	va, err := p.Mmap(f, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("through the page cache")
	p.Write(va+5000, msg)
	p.Persist(va+5000, uint64(len(msg)))
	got := make([]byte, len(msg))
	p.Read(va+5000, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if s.M.Stats().Get("kernel.pagecache_loads") == 0 {
		t.Fatal("no page-cache loads on conventional path")
	}
}

func TestSWEncryptRoundtripAndAtRestCiphertext(t *testing.T) {
	s := bootSWEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "ecfs.db", 32<<10, true)
	va, _ := p.Mmap(f, 32<<10)
	secret := []byte("ECRYPTFS-PROTECTED-SECRET-BYTES!")
	p.Write(va, secret)
	p.Persist(va, uint64(len(secret)))
	s.Sync(p) // force writeback through the software cipher
	got := make([]byte, len(secret))
	p.Read(va, got)
	if !bytes.Equal(got, secret) {
		t.Fatalf("roundtrip got %q", got)
	}
	// The device extent holds software ciphertext.
	pa, _ := f.PagePA(0)
	raw := s.M.MC.RawLine(pa)
	if bytes.Contains(raw[:], secret[:16]) {
		t.Fatal("plaintext on device under software encryption")
	}
	if s.M.Stats().Get("kernel.sw_encrypts") == 0 {
		t.Fatal("software cipher never ran")
	}
}

func TestSWEncryptPersistenceAcrossPageCacheDrop(t *testing.T) {
	s := bootSWEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "persist.db", 64<<10, true)
	va, _ := p.Mmap(f, 64<<10)
	msg := []byte("survives eviction")
	p.Write(va+9000, msg)
	p.Persist(va+9000, uint64(len(msg)))
	s.Sync(p)
	// Drop every page-cache page by filling the cache with another file.
	big := mkfile(t, s, p, "filler.db", uint64(s.pageCache.Capacity()+8)*config.PageSize, false)
	bva, err := p.Mmap(big, uint64(s.pageCache.Capacity()+8)*config.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte{0}
	for i := 0; i < s.pageCache.Capacity()+8; i++ {
		p.Read(bva+addr.Virt(i*config.PageSize), buf)
	}
	got := make([]byte, len(msg))
	p.Read(va+9000, got) // must re-fault and re-decrypt
	if !bytes.Equal(got, msg) {
		t.Fatalf("data lost across page-cache eviction: %q", got)
	}
}

func TestSWEncryptWrongPassphraseDenied(t *testing.T) {
	s := bootSWEncr()
	p := s.NewProcess(1000, 100)
	mkfile(t, s, p, "sw.db", 8<<10, true)
	if _, err := s.OpenFile(p, "sw.db", fs.ReadAccess, "bad"); err == nil {
		t.Fatal("wrong passphrase accepted under software encryption")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s := Boot(config.Default(), memctrl.Mode{}, ModePageCache)
	p := s.NewProcess(1000, 100)
	capPages := s.pageCache.Capacity()
	f := mkfile(t, s, p, "dirty.db", uint64(capPages+16)*config.PageSize, false)
	va, err := p.Mmap(f, uint64(capPages+16)*config.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the first page, never msync it, then blow the cache.
	p.Write(va, []byte{0x5E})
	for i := 1; i < capPages+16; i++ {
		p.Read(va+addr.Virt(i*config.PageSize), []byte{0})
	}
	// The dirty first page was evicted and written back; re-read it.
	got := []byte{0}
	p.Read(va, got)
	if got[0] != 0x5E {
		t.Fatal("dirty page lost on eviction")
	}
	if s.M.Stats().Get("kernel.pagecache_writebacks") == 0 {
		t.Fatal("no writeback on dirty eviction")
	}
}
