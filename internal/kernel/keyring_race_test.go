package kernel_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/server"
)

// TestKeyringDenialRace drives two processes in different sharing groups
// through a server shard's worker, racing open/chmod/delete on the same
// encrypted file, plus concurrent keyring verifications. Run under -race
// this checks the shard serialization really is the only thing between
// network concurrency and the single-goroutine kernel — every denial path
// (permission bits, per-file key, owner-only chmod/unlink) must hold under
// arbitrary interleaving, and no intruder operation may ever succeed.
func TestKeyringDenialRace(t *testing.T) {
	sh := server.NewShard(0, config.Default(),
		memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX,
		false, 0, nil)
	defer sh.Close()
	ctx := context.Background()

	var owner, intruder *kernel.Process
	if _, err := sh.Do(ctx, 1, 0, func() (any, error) {
		owner = sh.Sys.NewProcess(1001, 100)
		intruder = sh.Sys.NewProcess(2002, 200)
		sh.Sys.Keyring.Login(1001, "owner-master")
		_, err := sh.Sys.CreateFile(owner, "shared.db", 0600, 4096, true, "owner-pw")
		return nil, err
	}); err != nil {
		t.Fatalf("setup: %v", err)
	}

	const iters = 300
	var wg sync.WaitGroup
	var permDenials, keyDenials atomic.Uint64
	errc := make(chan error, 8)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Owner: legitimate opens while toggling the permission bits between
	// private (0600) and world-readable (0644). The toggle is what lets the
	// intruder exercise both denial paths: bits when closed, the per-file
	// key when the bits would allow it (the §VI chmod-777 argument).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			perm := fs.Mode(0600)
			if i%2 == 0 {
				perm = 0644
			}
			if _, err := sh.Do(ctx, 1, 0, func() (any, error) {
				if _, err := sh.Sys.OpenFile(owner, "shared.db", fs.ReadAccess, "owner-pw"); err != nil {
					return nil, fmt.Errorf("owner open: %w", err)
				}
				return nil, sh.Sys.Chmod(owner, "shared.db", perm)
			}); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Intruder: open with a guessed passphrase. Depending on where the
	// owner's chmod toggle stands this must fail on the bits or on the key
	// — never succeed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := sh.Do(ctx, 2, 0, func() (any, error) {
				_, err := sh.Sys.OpenFile(intruder, "shared.db", fs.ReadAccess, "guessed-pw")
				switch {
				case errors.Is(err, kernel.ErrPermission):
					permDenials.Add(1)
				case errors.Is(err, kernel.ErrWrongPassphrase):
					keyDenials.Add(1)
				case err == nil:
					return nil, errors.New("intruder open succeeded")
				default:
					return nil, fmt.Errorf("intruder open: unexpected %w", err)
				}
				return nil, nil
			}); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Intruder: chmod and unlink — owner-only operations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := sh.Do(ctx, 2, 0, func() (any, error) {
				if err := sh.Sys.Chmod(intruder, "shared.db", 0777); !errors.Is(err, fs.ErrPermEperm) {
					return nil, fmt.Errorf("intruder chmod: want EPERM, got %v", err)
				}
				if err := sh.Sys.Unlink(intruder, "shared.db"); !errors.Is(err, kernel.ErrPermission) {
					return nil, fmt.Errorf("intruder unlink: want permission denial, got %v", err)
				}
				return nil, nil
			}); err != nil {
				fail(err)
				return
			}
		}
	}()

	// Keyring verification racing the file traffic: the registered master
	// key never verifies a wrong passphrase, unknown identities stay
	// unregistered.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := sh.Do(ctx, 3, 0, func() (any, error) {
				if reg, ok := sh.Sys.Keyring.Verify(1001, "wrong-master"); !reg || ok {
					return nil, fmt.Errorf("verify(owner, wrong) = (%v, %v), want (true, false)", reg, ok)
				}
				if reg, _ := sh.Sys.Keyring.Verify(9999, "anything"); reg {
					return nil, errors.New("unknown uid reported registered")
				}
				return nil, nil
			}); err != nil {
				fail(err)
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if permDenials.Load()+keyDenials.Load() != iters {
		t.Fatalf("intruder opens unaccounted: perm %d + key %d != %d",
			permDenials.Load(), keyDenials.Load(), iters)
	}

	// Deterministic tail: pin the permission bits to each side of the
	// toggle and check the corresponding denial path directly.
	for _, tc := range []struct {
		perm fs.Mode
		want error
	}{
		{0600, kernel.ErrPermission},      // bits deny before the key is consulted
		{0644, kernel.ErrWrongPassphrase}, // bits allow, the per-file key denies
	} {
		if _, err := sh.Do(ctx, 1, 0, func() (any, error) {
			return nil, sh.Sys.Chmod(owner, "shared.db", tc.perm)
		}); err != nil {
			t.Fatalf("chmod %o: %v", tc.perm, err)
		}
		if _, err := sh.Do(ctx, 2, 0, func() (any, error) {
			_, err := sh.Sys.OpenFile(intruder, "shared.db", fs.ReadAccess, "guessed-pw")
			return nil, err
		}); !errors.Is(err, tc.want) {
			t.Fatalf("intruder open at %o: want %v, got %v", tc.perm, tc.want, err)
		}
	}

	// The file survived every attack and still opens for its owner.
	if _, err := sh.Do(ctx, 1, 0, func() (any, error) {
		_, err := sh.Sys.OpenFile(owner, "shared.db", fs.ReadAccess, "owner-pw")
		return nil, err
	}); err != nil {
		t.Fatalf("owner open after race: %v", err)
	}
}
