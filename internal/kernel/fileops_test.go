package kernel

import (
	"bytes"
	"errors"
	"testing"

	"fsencr/internal/fs"
)

func TestRotateFilePassphrase(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "rot.db", 16<<10, true)
	va, _ := p.Mmap(f, 16<<10)
	secret := []byte("ROTATE-ME-SECRET-0123456789ABCDE")
	if err := p.Write(va, secret); err != nil {
		t.Fatal(err)
	}
	if err := p.Persist(va, uint64(len(secret))); err != nil {
		t.Fatal(err)
	}
	pa, _ := f.PagePA(0)
	s.M.WritebackAll()
	ctBefore := s.M.MC.RawLine(pa.WithDF())

	if err := s.RotateFilePassphrase(p, "rot.db", pass, "brand-new-pass"); err != nil {
		t.Fatal(err)
	}
	// Old passphrase no longer opens; new one does.
	if _, err := s.OpenFile(p, "rot.db", fs.ReadAccess, pass); !errors.Is(err, ErrWrongPassphrase) {
		t.Fatalf("old passphrase after rotation: %v", err)
	}
	if _, err := s.OpenFile(p, "rot.db", fs.ReadAccess, "brand-new-pass"); err != nil {
		t.Fatal(err)
	}
	// Data still reads back correctly through the normal path.
	got := make([]byte, len(secret))
	if err := p.Read(va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("plaintext lost by rotation: %q", got)
	}
	// Ciphertext at rest changed.
	if s.M.MC.RawLine(pa.WithDF()) == ctBefore {
		t.Fatal("rotation left ciphertext unchanged")
	}
	if s.M.Stats().Get("mc.key_rotations") == 0 {
		t.Fatal("no rotations recorded")
	}
}

func TestRotateRequiresOldPassphrase(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	mkfile(t, s, p, "rot2.db", 8<<10, true)
	if err := s.RotateFilePassphrase(p, "rot2.db", "wrong", "new"); !errors.Is(err, ErrWrongPassphrase) {
		t.Fatalf("rotation with wrong passphrase: %v", err)
	}
}

func TestRotatePermission(t *testing.T) {
	s := bootFsEncr()
	owner := s.NewProcess(1000, 100)
	mkfile(t, s, owner, "rot3.db", 8<<10, true)
	other := s.NewProcess(2000, 200)
	if err := s.RotateFilePassphrase(other, "rot3.db", pass, "x"); !errors.Is(err, ErrPermission) {
		t.Fatalf("non-owner rotation: %v", err)
	}
}

func TestRotateSurvivesCrash(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "rot4.db", 8<<10, true)
	va, _ := p.Mmap(f, 8<<10)
	secret := []byte("crash after rotation!!")
	p.Write(va, secret)
	p.Persist(va, uint64(len(secret)))
	if err := s.RotateFilePassphrase(p, "rot4.db", pass, "post-crash-pass"); err != nil {
		t.Fatal(err)
	}
	s.M.Crash(true)
	if err := s.M.Recover(); err != nil {
		t.Fatalf("recover after rotation: %v", err)
	}
	got := make([]byte, len(secret))
	p.Read(va, got)
	if !bytes.Equal(got, secret) {
		t.Fatalf("rotated data lost in crash: %q", got)
	}
}

func TestCopyFile(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	src := mkfile(t, s, p, "orig.db", 12<<10, true)
	va, _ := p.Mmap(src, 12<<10)
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	p.Write(va, payload)
	p.Persist(va, uint64(len(payload)))

	dst, err := s.CopyFile(p, "orig.db", "copy.db", 0600, pass, "copy-pass")
	if err != nil {
		t.Fatal(err)
	}
	if dst.Ino == src.Ino {
		t.Fatal("copy shares the inode")
	}
	// Same plaintext through the copy's mapping.
	dva, _ := p.Mmap(dst, 12<<10)
	got := make([]byte, len(payload))
	p.Read(dva, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("copy contents differ")
	}
	// Distinct ciphertext at rest (different pages, counters, and key):
	// no OTP reuse across the copy (§VI).
	s.M.WritebackAll()
	spa, _ := src.PagePA(0)
	dpa, _ := dst.PagePA(0)
	if s.M.MC.RawLine(spa.WithDF()) == s.M.MC.RawLine(dpa.WithDF()) {
		t.Fatal("copy has identical ciphertext (OTP reuse)")
	}
	// The copy opens only with its own passphrase.
	if _, err := s.OpenFile(p, "copy.db", fs.ReadAccess, pass); err == nil {
		t.Fatal("copy opened with source passphrase")
	}
	if _, err := s.OpenFile(p, "copy.db", fs.ReadAccess, "copy-pass"); err != nil {
		t.Fatal(err)
	}
}

func TestCopyFileRequiresSourceAccess(t *testing.T) {
	s := bootFsEncr()
	owner := s.NewProcess(1000, 100)
	mkfile(t, s, owner, "private.db", 8<<10, true)
	other := s.NewProcess(2000, 200)
	if _, err := s.CopyFile(other, "private.db", "theft.db", 0600, pass, "x"); err == nil {
		t.Fatal("copy of unreadable file succeeded")
	}
}

func TestChangeGroupRekeysController(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "grp.db", 8<<10, true)
	va, _ := p.Mmap(f, 8<<10)
	secret := []byte("group-moved data bytes")
	p.Write(va, secret)
	p.Persist(va, uint64(len(secret)))

	if err := s.ChangeGroup(p, "grp.db", 777, pass); err != nil {
		t.Fatal(err)
	}
	if f.GroupID != 777 {
		t.Fatal("group not changed")
	}
	// Opens still verify under the new group.
	if _, err := s.OpenFile(p, "grp.db", fs.ReadAccess, pass); err != nil {
		t.Fatalf("open after chgrp: %v", err)
	}
	// Data still decrypts (FECB re-tagged, key re-registered).
	s.M.Crash(true)
	if err := s.M.Recover(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	p.Read(va, got)
	if !bytes.Equal(got, secret) {
		t.Fatalf("data lost across chgrp: %q", got)
	}
}

func TestChangeGroupWrongPassphraseRollsBack(t *testing.T) {
	s := bootFsEncr()
	p := s.NewProcess(1000, 100)
	f := mkfile(t, s, p, "grp2.db", 8<<10, true)
	if err := s.ChangeGroup(p, "grp2.db", 777, "bad-pass"); !errors.Is(err, ErrWrongPassphrase) {
		t.Fatalf("chgrp with wrong passphrase: %v", err)
	}
	if f.GroupID != 100 {
		t.Fatal("failed chgrp left the group changed")
	}
}
