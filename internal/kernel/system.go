package kernel

import (
	"errors"
	"fmt"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/machine"
	"fsencr/internal/memctrl"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/pagecache"
	"fsencr/internal/swencrypt"
	"fsencr/internal/telemetry"
)

// AccessMode selects how file pages reach applications.
type AccessMode int

// Access modes.
const (
	// ModeDAX maps file pages directly into the address space
	// (Figure 1(b)): loads/stores hit the NVM through the cache hierarchy.
	ModeDAX AccessMode = iota
	// ModePageCache is the conventional path (Figure 1(a)): pages are
	// copied into the page cache on fault and written back on msync.
	ModePageCache
	// ModeSWEncrypt is ModePageCache with eCryptfs-style software
	// encryption of every page crossing the cache/device boundary.
	ModeSWEncrypt
)

func (m AccessMode) String() string {
	switch m {
	case ModeDAX:
		return "dax"
	case ModePageCache:
		return "pagecache"
	case ModeSWEncrypt:
		return "swencrypt"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

// Physical memory layout (the paper's setup: a 16 GB PCM device, with the
// 4 GB starting at 12 GB configured as the persistent region via
// memmap=4G!12G and formatted as DAX-enabled ext4).
const (
	PmemBase = 12 << 30
	PmemSize = 4 << 30
	// Anonymous frames (process memory, page cache) are allocated below
	// the persistent region, starting above the zero page.
	anonBase  = 1 << 20
	anonLimit = PmemBase
)

// System is the booted OS instance.
type System struct {
	cfg     config.Config
	M       *machine.Machine
	FS      *fs.FS
	Keyring *Keyring
	mode    AccessMode

	pageCache  *pagecache.Cache
	swKeys     map[uint16]aesctr.Key        // software-encryption file keys
	swCiphers  map[uint16]*swencrypt.Cipher // per-file page ciphers
	frameRefs  map[addr.Phys]pagecache.Key  // page-cache frame -> file page
	freeFrames []addr.Phys                  // recycled page-cache frames
	anonNext   uint64
	procs      []*Process

	tel          *telemetry.Registry
	trace        *telemetry.TraceScope
	tPageFaults  *telemetry.Counter
	tFaultCycles *telemetry.Histogram
}

// Instrument attaches a telemetry registry to the system and the machine
// below it. A nil registry detaches.
func (s *System) Instrument(reg *telemetry.Registry) {
	s.tel = reg
	s.trace = reg.Scope()
	s.tPageFaults = reg.Counter("kernel.page_faults")
	s.tFaultCycles = reg.Histogram("kernel.page_fault_cycles")
	s.M.Instrument(reg)
}

// traceOp opens a kernel-category span on the request trace when one is
// active, returning the closer to defer (nil when untraced, so the hot
// path pays one branch).
func (s *System) traceOp(p *Process, name string) func() {
	ts := s.trace
	if !ts.Active() {
		return nil
	}
	start := uint64(p.core.Now)
	ts.Enter()
	return func() { ts.Exit("kernel", name, start, uint64(p.core.Now), p.core.ID()) }
}

// Telemetry returns the attached registry (nil when uninstrumented).
func (s *System) Telemetry() *telemetry.Registry { return s.tel }

// AttachJournal attaches a security-event journal to the machine (and so
// to the memory controller and the structures it owns). A nil journal
// detaches.
func (s *System) AttachJournal(j *journal.Journal) { s.M.AttachJournal(j) }

// EnableAudit enables the machine's tamper-evident access-audit plane and
// returns the log (capacity <= 0 uses the audit package default).
func (s *System) EnableAudit(capacity int) *audit.Log { return s.M.EnableAudit(capacity) }

// Kernel-level errors.
var (
	ErrWrongPassphrase = errors.New("kernel: passphrase does not match file key")
	ErrPermission      = errors.New("kernel: permission denied")
	ErrNoPassphrase    = errors.New("kernel: encrypted file requires a passphrase")
	ErrOutOfMemory     = errors.New("kernel: out of anonymous frames")
)

// Boot creates a system: a machine in the given protection mode, a
// formatted persistent region, and an empty keyring.
func Boot(cfg config.Config, mcMode memctrl.Mode, accessMode AccessMode) *System {
	return BootSeq(cfg, mcMode, accessMode, 0)
}

// BootSeq is Boot with an explicit controller chip sequence (0 = auto).
// Cluster shards boot with a deterministic per-shard sequence so replicas
// and migration targets derive the primary's exact processor keys.
func BootSeq(cfg config.Config, mcMode memctrl.Mode, accessMode AccessMode, chipSeq uint64) *System {
	s := &System{
		cfg:       cfg,
		M:         machine.NewWithChipSeq(cfg, mcMode, chipSeq),
		FS:        fs.New(PmemBase, PmemSize),
		Keyring:   NewKeyring(),
		mode:      accessMode,
		pageCache: pagecache.New(cfg.Kernel.PageCachePages),
		swKeys:    make(map[uint16]aesctr.Key),
		swCiphers: make(map[uint16]*swencrypt.Cipher),
		frameRefs: make(map[addr.Phys]pagecache.Key),
		anonNext:  anonBase / config.PageSize,
	}
	return s
}

// Mode returns the file access mode.
func (s *System) Mode() AccessMode { return s.mode }

// Config returns the system configuration.
func (s *System) Config() config.Config { return s.cfg }

// allocFrame hands out one anonymous physical frame.
func (s *System) allocFrame() (addr.Phys, error) {
	if s.anonNext*config.PageSize >= anonLimit {
		return 0, ErrOutOfMemory
	}
	pa := addr.Phys(s.anonNext * config.PageSize)
	s.anonNext++
	return pa, nil
}

// dfEnabled reports whether page-table entries for encrypted DAX files
// should carry the DF-bit (only meaningful when the controller implements
// the file datapath).
func (s *System) dfEnabled() bool {
	return s.M.MC.Mode().FileEncryption
}

// NewProcess starts a process with the given credentials, bound to a core
// round-robin.
func (s *System) NewProcess(uid, gid uint32) *Process {
	p := &Process{
		sys:  s,
		core: s.M.Core(len(s.procs) % s.M.Cores()),
		UID:  uid,
		GID:  gid,
		pt:   make(map[uint64]pte),
		// Leave a guard gap at the bottom of the address space.
		mmapNext: 0x7f00_0000_0000,
	}
	s.procs = append(s.procs, p)
	return p
}

// CreateFile creates (and for encrypted files, keys) a file on behalf of p.
// For encrypted files the key is derived from the owner's passphrase and
// registered with the memory controller over MMIO (§III-F1) — or retained
// by the kernel for software encryption, depending on the access mode.
func (s *System) CreateFile(p *Process, name string, perm fs.Mode, size uint64, encrypted bool, passphrase string) (*fs.File, error) {
	if done := s.traceOp(p, "create_file"); done != nil {
		defer done()
	}
	p.core.Compute(s.cfg.Kernel.SyscallLatency)
	if encrypted && passphrase == "" {
		return nil, ErrNoPassphrase
	}
	f, err := s.FS.Create(name, p.UID, p.GID, perm, encrypted)
	if err != nil {
		return nil, err
	}
	if _, err := s.FS.Truncate(f, size); err != nil {
		return nil, err
	}
	if encrypted {
		key := s.Keyring.FileKey(passphrase, f.Salt)
		switch s.mode {
		case ModeSWEncrypt:
			s.swKeys[f.Ino] = key
			s.swCiphers[f.Ino] = swencrypt.New(key, f.Ino)
		default:
			p.core.Compute(s.cfg.Kernel.MMIOWriteLatency)
			p.core.Now = s.M.MC.InstallKey(p.core.Now, f.GroupID, f.Ino, key)
		}
	}
	return f, nil
}

// OpenFile checks permissions and, for encrypted files, verifies the
// passphrase-derived key against what the controller holds: a wrong
// passphrase is rejected even if permission bits (after, say, an accidental
// chmod 777) would have allowed the access (§VI).
func (s *System) OpenFile(p *Process, name string, want fs.Access, passphrase string) (*fs.File, error) {
	if done := s.traceOp(p, "open_file"); done != nil {
		defer done()
	}
	p.core.Compute(s.cfg.Kernel.SyscallLatency)
	f, err := s.FS.Lookup(name)
	if err != nil {
		return nil, err
	}
	if !f.Allows(p.UID, p.GID, want) {
		return nil, fmt.Errorf("%w: %q", ErrPermission, name)
	}
	if f.Encrypted {
		key := s.Keyring.FileKey(passphrase, f.Salt)
		switch s.mode {
		case ModeSWEncrypt:
			if stored, ok := s.swKeys[f.Ino]; ok && stored != key {
				return nil, fmt.Errorf("%w: %q", ErrWrongPassphrase, name)
			}
		default:
			if s.M.MC.Mode().FileEncryption && !s.M.MC.VerifyKey(f.GroupID, f.Ino, key) {
				return nil, fmt.Errorf("%w: %q", ErrWrongPassphrase, name)
			}
		}
	}
	return f, nil
}

// Unlink deletes a file: its key is removed from the OTT and the encrypted
// OTT region, and every page is shredded Silent-Shredder-style so the data
// is unrecoverable even with the old key (§VI, "Secure File Deletion").
func (s *System) Unlink(p *Process, name string) error {
	if done := s.traceOp(p, "unlink"); done != nil {
		defer done()
	}
	p.core.Compute(s.cfg.Kernel.SyscallLatency)
	f, err := s.FS.Lookup(name)
	if err != nil {
		return err
	}
	if p.UID != 0 && p.UID != f.OwnerUID {
		return fmt.Errorf("%w: unlink %q", ErrPermission, name)
	}
	f, pages, err := s.FS.Unlink(name)
	if err != nil {
		return err
	}
	if f.Encrypted {
		p.core.Compute(s.cfg.Kernel.MMIOWriteLatency)
		p.core.Now = s.M.MC.RemoveKey(p.core.Now, f.GroupID, f.Ino)
		delete(s.swKeys, f.Ino)
		delete(s.swCiphers, f.Ino)
	}
	for _, pg := range pages {
		pa := addr.Phys(pg * config.PageSize)
		p.core.Now = s.M.MC.ShredPage(p.core.Now, pa)
		// Drop any page-cache copy.
		if page, ok := s.pageCache.Remove(pagecache.Key{Ino: f.Ino, PageIdx: pg}); ok {
			delete(s.frameRefs, page.Frame)
		}
	}
	// Invalidate stale mappings in every process.
	for _, proc := range s.procs {
		proc.invalidateFileMappings(f)
	}
	return nil
}

// Chmod changes a file's permission bits on behalf of p (owner or root
// only). Note the §VI argument this models: permission bits are advisory
// next to the per-file key — an over-permissive chmod still leaves
// encrypted content unreadable without the right passphrase.
func (s *System) Chmod(p *Process, name string, perm fs.Mode) error {
	if done := s.traceOp(p, "chmod"); done != nil {
		defer done()
	}
	p.core.Compute(s.cfg.Kernel.SyscallLatency)
	f, err := s.FS.Lookup(name)
	if err != nil {
		return err
	}
	return s.FS.Chmod(f, p.UID, perm)
}

// Sync writes back every dirty page-cache page (non-DAX modes).
func (s *System) Sync(p *Process) {
	if done := s.traceOp(p, "sync"); done != nil {
		defer done()
	}
	p.core.Compute(s.cfg.Kernel.SyscallLatency)
	for _, pg := range s.pageCache.DirtyPages() {
		s.writebackPage(p, pg)
	}
}

// AuthenticateAdmin models the boot-time admin credential exchange with the
// memory controller (§VI, "Protecting Files from Internal Attacks"): a
// wrong credential locks the FsEncr datapath, leaving only memory
// encryption active — an attacker booting an alien OS sees file bytes
// still wrapped in their file OTPs.
func (s *System) AuthenticateAdmin(passphrase, expected string) bool {
	if passphrase != expected {
		s.M.MC.Lock()
		return false
	}
	s.M.MC.Unlock()
	return true
}
