package kernel

import (
	"fmt"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/fs"
)

// RotateFilePassphrase re-keys an encrypted file under a new passphrase
// (§VI, "Resetting Filesystem Encryption Counters"): every page is
// re-encrypted from the old file key to the new one with reset counters,
// and the controller's OTT entry is replaced. Only the owner (or root) may
// rotate, and the old passphrase must verify first.
func (s *System) RotateFilePassphrase(p *Process, name, oldPass, newPass string) error {
	p.core.Compute(s.cfg.Kernel.SyscallLatency)
	f, err := s.FS.Lookup(name)
	if err != nil {
		return err
	}
	if p.UID != 0 && p.UID != f.OwnerUID {
		return fmt.Errorf("%w: rotate %q", ErrPermission, name)
	}
	if !f.Encrypted {
		return fmt.Errorf("kernel: %q is not encrypted", name)
	}
	if newPass == "" {
		return ErrNoPassphrase
	}
	oldKey := s.Keyring.FileKey(oldPass, f.Salt)
	newKey := s.Keyring.FileKey(newPass, f.Salt)
	switch s.mode {
	case ModeSWEncrypt:
		if stored, ok := s.swKeys[f.Ino]; ok && stored != oldKey {
			return fmt.Errorf("%w: %q", ErrWrongPassphrase, name)
		}
		return fmt.Errorf("kernel: software-encryption rekey not supported")
	default:
		if s.M.MC.Mode().FileEncryption && !s.M.MC.VerifyKey(f.GroupID, f.Ino, oldKey) {
			return fmt.Errorf("%w: %q", ErrWrongPassphrase, name)
		}
	}
	// Quiesce cached plaintext of the file so the controller's in-place
	// re-encryption is authoritative.
	s.M.WritebackAll()
	for i := 0; i < f.Pages(); i++ {
		pa, err := f.PagePA(i)
		if err != nil {
			return err
		}
		p.core.Compute(s.cfg.Kernel.MMIOWriteLatency)
		p.core.Now = s.M.MC.RotateFileKey(p.core.Now, pa.WithDF(), f.GroupID, f.Ino, oldKey, newKey)
	}
	p.core.Compute(s.cfg.Kernel.MMIOWriteLatency)
	p.core.Now = s.M.MC.InstallKey(p.core.Now, f.GroupID, f.Ino, newKey)
	return nil
}

// ChangeGroup moves a file to a new sharing group. For encrypted files the
// controller's state is keyed by (GroupID, FileID), so the kernel must
// re-register the key under the new group and re-tag every page's FECB —
// otherwise later opens and page faults would miss the OTT entry.
func (s *System) ChangeGroup(p *Process, name string, gid uint32, passphrase string) error {
	p.core.Compute(s.cfg.Kernel.SyscallLatency)
	f, err := s.FS.Lookup(name)
	if err != nil {
		return err
	}
	oldGid := f.GroupID
	if err := s.FS.Chgrp(f, p.UID, gid); err != nil {
		return err
	}
	if !f.Encrypted || s.mode == ModeSWEncrypt || !s.M.MC.Mode().FileEncryption {
		return nil
	}
	key := s.Keyring.FileKey(passphrase, f.Salt)
	if !s.M.MC.VerifyKey(oldGid, f.Ino, key) {
		// Roll back the group change rather than strand the file.
		_ = s.FS.Chgrp(f, p.UID, oldGid)
		return fmt.Errorf("%w: %q", ErrWrongPassphrase, name)
	}
	p.core.Compute(s.cfg.Kernel.MMIOWriteLatency)
	p.core.Now = s.M.MC.RemoveKey(p.core.Now, oldGid, f.Ino)
	p.core.Now = s.M.MC.InstallKey(p.core.Now, gid, f.Ino, key)
	for i := 0; i < f.Pages(); i++ {
		pa, err := f.PagePA(i)
		if err != nil {
			return err
		}
		p.core.Now = s.M.MC.TagPage(p.core.Now, pa.WithDF(), gid, f.Ino)
	}
	return nil
}

// CopyFile copies src to a new file dst owned by p with the given
// permissions and passphrase (§VI, "Copying or Moving Files Within Same
// Device"): the kernel reads the source through the processor (decrypting
// with the source's counters) and writes to the destination's fresh
// physical pages, whose IVs are spatially unique — so identical plaintext
// never re-uses an OTP.
func (s *System) CopyFile(p *Process, srcName, dstName string, perm fs.Mode, srcPass, dstPass string) (*fs.File, error) {
	src, err := s.OpenFile(p, srcName, fs.ReadAccess, srcPass)
	if err != nil {
		return nil, err
	}
	dst, err := s.CreateFile(p, dstName, perm, src.Size, src.Encrypted, dstPass)
	if err != nil {
		return nil, err
	}
	srcVA, err := p.Mmap(src, src.Size)
	if err != nil {
		return nil, err
	}
	dstVA, err := p.Mmap(dst, src.Size)
	if err != nil {
		return nil, err
	}
	var buf [config.PageSize]byte
	for off := uint64(0); off < src.Size; off += config.PageSize {
		n := uint64(config.PageSize)
		if src.Size-off < n {
			n = src.Size - off
		}
		if err := p.Read(srcVA+addr.Virt(off), buf[:n]); err != nil {
			return nil, err
		}
		if err := p.Write(dstVA+addr.Virt(off), buf[:n]); err != nil {
			return nil, err
		}
		if err := p.Persist(dstVA+addr.Virt(off), n); err != nil {
			return nil, err
		}
	}
	return dst, nil
}
