package kernel

import (
	"fmt"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/machine"
	"fsencr/internal/pagecache"
)

// pte is a page-table entry. The DF-bit lives in the stored physical
// address, exactly as the paper implements it in dax_insert_mapping:
// ((1UL<<51) | pfn).
type pte struct {
	pa      addr.Phys // page-aligned, DF-bit included for encrypted DAX files
	present bool
	vma     *vma
	// cachePage links page-cache-backed mappings so stores can mark the
	// page dirty for writeback.
	cachePage *pagecache.Page
}

// vma is one virtual memory area.
type vma struct {
	base   addr.Virt
	length uint64
	file   *fs.File // nil for anonymous mappings
	dax    bool
}

func (v *vma) contains(va addr.Virt) bool {
	return va >= v.base && uint64(va-v.base) < v.length
}

// Process is one simulated process: credentials, a page table, and the core
// its (single) thread runs on. The paper's multi-threaded benchmarks use
// one Process per worker thread sharing the same files.
type Process struct {
	sys  *System
	core *machine.Core
	UID  uint32
	GID  uint32

	pt       map[uint64]pte
	vmas     []*vma
	mmapNext uint64

	MinorFaults uint64
}

// Core exposes the core this process runs on (for clock inspection).
func (p *Process) Core() *machine.Core { return p.core }

// Now returns the process's current simulated time.
func (p *Process) Now() config.Cycle { return p.core.Now }

// Mmap maps length bytes of f starting at file offset 0 into the address
// space. Under ModeDAX the pages will map directly onto NVM; otherwise they
// go through the page cache. Mapping is lazy: pages fault on first touch.
func (p *Process) Mmap(f *fs.File, length uint64) (addr.Virt, error) {
	p.core.Compute(p.sys.cfg.Kernel.SyscallLatency)
	if length > uint64(f.Pages())*config.PageSize {
		return 0, fmt.Errorf("kernel: mmap %d bytes beyond EOF of %q", length, f.Name)
	}
	v := &vma{
		base:   addr.Virt(p.mmapNext),
		length: length,
		file:   f,
		dax:    p.sys.mode == ModeDAX,
	}
	p.mmapNext += (length + config.PageSize - 1) &^ (config.PageSize - 1)
	p.mmapNext += config.PageSize // guard page
	p.vmas = append(p.vmas, v)
	return v.base, nil
}

// MmapAnon maps length bytes of zeroed anonymous memory.
func (p *Process) MmapAnon(length uint64) addr.Virt {
	p.core.Compute(p.sys.cfg.Kernel.SyscallLatency)
	v := &vma{base: addr.Virt(p.mmapNext), length: length}
	p.mmapNext += (length+config.PageSize-1)&^(config.PageSize-1) + config.PageSize
	p.vmas = append(p.vmas, v)
	return v.base
}

func (p *Process) findVMA(va addr.Virt) (*vma, error) {
	for _, v := range p.vmas {
		if v.contains(va) {
			return v, nil
		}
	}
	return nil, fmt.Errorf("kernel: segfault at %#x (pid core %d)", uint64(va), p.core.ID())
}

// translate resolves va to a physical address, taking a page fault on
// first touch. The returned page-cache page (nil for DAX/anonymous
// mappings) lets stores mark it dirty.
func (p *Process) translate(va addr.Virt) (addr.Phys, *pagecache.Page, error) {
	vp := va.PageNum()
	e, ok := p.pt[vp]
	if !ok || !e.present {
		if err := p.pageFault(va); err != nil {
			return 0, nil, err
		}
		e = p.pt[vp]
	}
	return e.pa + addr.Phys(va.PageOffset()), e.cachePage, nil
}

// pageFault handles the first access to a page (§III-F1). For DAX files it
// installs the file page's physical address with the DF-bit set (for
// encrypted files) and signals the memory controller to tag the page's
// FECB with (GroupID, FileID) over MMIO. For page-cache-backed files it
// performs the conventional copy-in of Figure 1(a), decrypting in software
// when eCryptfs-style encryption is active.
func (p *Process) pageFault(va addr.Virt) error {
	s := p.sys
	v, err := p.findVMA(va)
	if err != nil {
		return err
	}
	p.MinorFaults++
	s.tPageFaults.Inc()
	faultStart := p.core.Now
	defer func() {
		s.tFaultCycles.Observe(uint64(p.core.Now - faultStart))
		s.tel.Span("kernel", "page_fault", uint64(faultStart), uint64(p.core.Now), p.core.ID())
	}()
	p.core.Compute(s.cfg.Kernel.PageFaultLatency)
	vp := va.PageNum()

	// Anonymous mapping: allocate a zero frame.
	if v.file == nil {
		frame, err := s.allocFrame()
		if err != nil {
			return err
		}
		p.pt[vp] = pte{pa: frame, present: true, vma: v}
		return nil
	}

	pageIdx := uint64(va-v.base) / config.PageSize
	if v.dax {
		pa, err := v.file.PagePA(int(pageIdx))
		if err != nil {
			return err
		}
		if v.file.Encrypted && s.dfEnabled() {
			pa = pa.WithDF()
			// MMIO: send (GroupID, FileID) so the controller updates the
			// page's FECB.
			p.core.Compute(s.cfg.Kernel.MMIOWriteLatency)
			p.core.Now = s.M.MC.TagPage(p.core.Now, pa, v.file.GroupID, v.file.Ino)
		}
		p.pt[vp] = pte{pa: pa, present: true, vma: v}
		return nil
	}

	// Conventional path: find or load the page-cache copy.
	page, err := s.loadPageCache(p, v.file, pageIdx)
	if err != nil {
		return err
	}
	p.pt[vp] = pte{pa: page.Frame, present: true, vma: v, cachePage: page}
	return nil
}

// invalidateFileMappings unmaps every page of f (file deletion).
func (p *Process) invalidateFileMappings(f *fs.File) {
	for vp, e := range p.pt {
		if e.vma != nil && e.vma.file == f {
			delete(p.pt, vp)
		}
	}
}

// pageDirect reports whether the (already translated) page holding va is a
// DAX file mapping whose full-page accesses may use the batched page
// datapath: the physical page is NVM itself, so whole-page reads and
// non-temporal writes need no cache-line round trips.
func (p *Process) pageDirect(va addr.Virt) bool {
	e := p.pt[va.PageNum()]
	return e.vma != nil && e.vma.dax && e.vma.file != nil
}

// Read copies n bytes at va into buf (len(buf) bytes are read).
func (p *Process) Read(va addr.Virt, buf []byte) error {
	if done := p.sys.traceOp(p, "read"); done != nil {
		defer done()
	}
	off := 0
	for off < len(buf) {
		cur := va + addr.Virt(off)
		pa, _, err := p.translate(cur)
		if err != nil {
			return err
		}
		// Page fast path: a page-aligned, page-sized span of a DAX file
		// moves through the controller's one-call page datapath.
		if cur.PageOffset() == 0 && len(buf)-off >= config.PageSize && p.pageDirect(cur) {
			p.core.ReadPageNC(pa, (*aesctr.Page)(buf[off:off+config.PageSize]))
			off += config.PageSize
			continue
		}
		n := int(config.PageSize - cur.PageOffset())
		if n > len(buf)-off {
			n = len(buf) - off
		}
		p.core.Read(pa, buf[off:off+n])
		off += n
	}
	return nil
}

// Write stores data at va.
func (p *Process) Write(va addr.Virt, data []byte) error {
	if done := p.sys.traceOp(p, "write"); done != nil {
		defer done()
	}
	off := 0
	for off < len(data) {
		cur := va + addr.Virt(off)
		pa, cachePage, err := p.translate(cur)
		if err != nil {
			return err
		}
		// Page fast path: full-page DAX stores go non-temporal through the
		// batched page datapath — accepted into the persistence domain as
		// one burst, no read-for-ownership, no cache allocation.
		if cur.PageOffset() == 0 && len(data)-off >= config.PageSize && p.pageDirect(cur) {
			p.core.WritePageNT(pa, (*aesctr.Page)(data[off:off+config.PageSize]))
			off += config.PageSize
			continue
		}
		n := int(config.PageSize - cur.PageOffset())
		if n > len(data)-off {
			n = len(data) - off
		}
		p.core.Write(pa, data[off:off+n])
		if cachePage != nil {
			cachePage.Dirty = true
		}
		off += n
	}
	return nil
}

// Persist makes the byte range [va, va+n) durable. Under DAX this is the
// user-space CLWB+SFENCE sequence persistent-memory libraries issue; under
// the page-cache modes it is msync, which for software encryption means
// re-encrypting and writing back every touched page — the dominant cost
// the paper attributes to eCryptfs (Figure 3).
func (p *Process) Persist(va addr.Virt, n uint64) error {
	if n == 0 {
		return nil
	}
	if done := p.sys.traceOp(p, "persist"); done != nil {
		defer done()
	}
	s := p.sys
	if s.mode == ModeDAX {
		end := va + addr.Virt(n)
		for cur := va.LineAlign(); cur < end; cur += config.LineSize {
			pa, _, err := p.translate(cur)
			if err != nil {
				return err
			}
			p.core.Flush(pa)
		}
		p.core.Fence()
		return nil
	}
	// msync on the touched pages. The kernel's flusher throttles device
	// writebacks: a page is re-encrypted and copied back only after
	// SWWritebackEvery msyncs have accumulated (or at eviction/sync time),
	// matching writeback-cache behaviour under eCryptfs.
	p.core.Compute(s.cfg.Kernel.MsyncLatency)
	firstPage := va.PageNum()
	lastPage := (va + addr.Virt(n) - 1).PageNum()
	for vp := firstPage; vp <= lastPage; vp++ {
		e, ok := p.pt[vp]
		if !ok || e.cachePage == nil || !e.cachePage.Dirty {
			continue
		}
		pg := e.cachePage
		pg.PersistCount++
		if pg.PersistCount >= s.cfg.Kernel.SWWritebackEvery {
			s.writebackPage(p, pg)
			continue
		}
		// Cheap path: the dirty frame lines are flushed from the CPU
		// caches (they are still only in the page cache, not the device).
		end := va + addr.Virt(n)
		for cur := va.LineAlign(); cur < end; cur += config.LineSize {
			if cur.PageNum() != vp {
				continue
			}
			pa, _, err := p.translate(cur)
			if err != nil {
				return err
			}
			p.core.Flush(pa)
		}
		p.core.Fence()
	}
	return nil
}

// ReadU64 is a convenience accessor used by the persistent data structures.
func (p *Process) ReadU64(va addr.Virt) (uint64, error) {
	var b [8]byte
	if err := p.Read(va, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteU64 stores a 64-bit little-endian value.
func (p *Process) WriteU64(va addr.Virt, v uint64) error {
	var b [8]byte
	putLeU64(b[:], v)
	return p.Write(va, b[:])
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
