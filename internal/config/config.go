// Package config holds the simulated-machine parameters from Table III of
// the FsEncr paper (HPCA 2022). All latencies are expressed in core cycles;
// the simulated core runs at 1 GHz, so one cycle is one nanosecond and the
// paper's nanosecond figures map 1:1 onto cycle counts.
package config

// Cycle is a point in (or duration of) simulated time, measured in core
// cycles of the 1 GHz simulated processor (1 cycle == 1 ns).
type Cycle = uint64

// Fixed architectural constants. These are structural (they change data
// layouts), unlike the tunable latencies in Config.
const (
	// LineSize is the cache-line size in bytes everywhere in the machine.
	LineSize = 64
	// PageSize is the virtual-memory and counter-block coverage granule.
	PageSize = 4096
	// LinesPerPage is the number of cache lines covered by one counter block.
	LinesPerPage = PageSize / LineSize // 64
	// PhysAddrBits is the physical address width (Intel IA-32e maximum).
	PhysAddrBits = 52
	// DFBitPos is the position of the DAX-File bit within the physical
	// address: the most significant implemented physical address bit.
	DFBitPos = PhysAddrBits - 1 // bit 51
	// MinorCounterBits is the width of a per-line minor counter.
	MinorCounterBits = 7
	// MinorCounterMax is the largest value a 7-bit minor counter can hold.
	MinorCounterMax = 1<<MinorCounterBits - 1 // 127
	// KeySize is the size of all encryption keys in bytes (AES-128).
	KeySize = 16
)

// Processor describes the core and cache hierarchy (Table III).
type Processor struct {
	Cores int
	// Cache hit latencies, in cycles.
	L1Latency Cycle
	L2Latency Cycle
	L3Latency Cycle
	// Cache geometries.
	L1Size int // bytes, per core
	L1Ways int
	L2Size int // bytes, per core
	L2Ways int
	L3Size int // bytes, shared
	L3Ways int
}

// PCM describes the DDR-based PCM main memory (Table III).
type PCM struct {
	CapacityBytes  uint64
	ReadLatency    Cycle // array read, 60 ns
	WriteLatency   Cycle // array write, 150 ns
	Channels       int
	RanksPerChan   int
	BanksPerRank   int
	RowBufferBytes int
	TRCD           Cycle // row to column delay, 55 ns
	TCL            Cycle // CAS latency, 12.5 ns (rounded to 13)
	TBURST         Cycle // burst transfer, 5 ns
	TWR            Cycle // write recovery, 150 ns
	// RowBufferHitLatency is the column access time for an open row.
	RowBufferHitLatency Cycle
}

// Security describes the encryption-engine parameters (Table III).
type Security struct {
	AESLatency        Cycle // hardware AES engine, 40 ns
	XORLatency        Cycle // final OTP XOR, 1 cycle
	MetadataCacheSize int   // bytes
	MetadataCacheWays int
	// MetadataCacheLatency is the hit latency of the metadata cache; it is
	// a small dedicated structure next to the memory controller.
	MetadataCacheLatency Cycle
	// MACLatency is the cost of one Merkle-tree MAC computation/check.
	MACLatency Cycle
	// PartitionMetadataCache splits the metadata cache into dedicated
	// MECB / FECB / Merkle-node partitions instead of one shared cache
	// (§III-D: "it is possible to partition the metadata cache for each
	// metadata ... to equitably distribute the cache capacity").
	PartitionMetadataCache bool
	MerkleArity            int
	MerkleLevels           int
	// OTT geometry: OTTBanks fully associative banks of OTTEntriesPerBank
	// entries each, searched in parallel.
	OTTBanks          int
	OTTEntriesPerBank int
	OTTLookupLatency  Cycle // 20 cycles, deliberately slower than a TLB
	// OTTRegionLatencyExtra is the added cost of a hashed lookup in the
	// encrypted OTT region (on top of the memory accesses themselves).
	OTTRegionLatencyExtra Cycle
	// StopLoss is the Osiris stop-loss bound: the maximum number of counter
	// increments allowed between persists of a cached counter block.
	StopLoss int
}

// Kernel describes the modelled OS costs.
type Kernel struct {
	// PageFaultLatency is the cost of a minor DAX page fault (fault entry,
	// dax_insert_mapping, PTE update), excluding MMIO communication.
	PageFaultLatency Cycle
	// MMIOWriteLatency is the cost of one uncached MMIO register write used
	// by the kernel to talk to the memory controller.
	MMIOWriteLatency Cycle
	// SyscallLatency is the cost of entering/leaving the kernel for a
	// conventional (non-DAX) file operation.
	SyscallLatency Cycle
	// MsyncLatency is the cost of one msync syscall (lighter than a full
	// file operation).
	MsyncLatency Cycle
	// PageCachePages is the capacity of the software page cache, in pages,
	// used by the conventional (non-DAX) path and eCryptfs model.
	PageCachePages int
	// SWCryptoPer16B is the software AES cost per 16-byte block, used by the
	// eCryptfs-style stacked encryption model. Software AES without
	// dedicated scheduling achieves roughly 1 cycle/byte on the modelled
	// core.
	SWCryptoPer16B Cycle
	// CopyPer64B is the cost of copying one cache line between the device
	// and the page cache.
	CopyPer64B Cycle
	// VFSStackLatency is the per-page-fault overhead of the stacked
	// filesystem layers (eCryptfs -> ext4 -> driver).
	VFSStackLatency Cycle
	// SWWritebackEvery throttles the flusher on the page-cache path: a
	// dirty page is written back (re-encrypted under eCryptfs) after this
	// many msyncs touch it, or at eviction/sync.
	SWWritebackEvery int
}

// Config aggregates every tunable parameter of the simulated system.
type Config struct {
	Processor Processor
	PCM       PCM
	Security  Security
	Kernel    Kernel
}

// Default returns the paper's Table III configuration.
func Default() Config {
	return Config{
		Processor: Processor{
			Cores:     8,
			L1Latency: 2,
			L2Latency: 20,
			L3Latency: 32,
			L1Size:    32 << 10,
			L1Ways:    8,
			L2Size:    512 << 10,
			L2Ways:    8,
			L3Size:    4 << 20,
			L3Ways:    64,
		},
		PCM: PCM{
			CapacityBytes:       16 << 30,
			ReadLatency:         60,
			WriteLatency:        150,
			Channels:            2,
			RanksPerChan:        2,
			BanksPerRank:        8,
			RowBufferBytes:      1 << 10,
			TRCD:                55,
			TCL:                 13,
			TBURST:              5,
			TWR:                 150,
			RowBufferHitLatency: 13 + 5, // tCL + tBURST
		},
		Security: Security{
			AESLatency:            40,
			XORLatency:            1,
			MetadataCacheSize:     512 << 10,
			MetadataCacheWays:     8,
			MetadataCacheLatency:  3,
			MACLatency:            20,
			MerkleArity:           8,
			MerkleLevels:          9,
			OTTBanks:              8,
			OTTEntriesPerBank:     128,
			OTTLookupLatency:      20,
			OTTRegionLatencyExtra: 10,
			StopLoss:              4,
		},
		Kernel: Kernel{
			PageFaultLatency: 2000,
			MMIOWriteLatency: 150,
			SyscallLatency:   700,
			MsyncLatency:     300,
			PageCachePages:   1024,
			SWCryptoPer16B:   12,
			CopyPer64B:       4,
			VFSStackLatency:  1200,
			SWWritebackEvery: 16,
		},
	}
}
