package config

import "testing"

// TestTableIII pins the default configuration to the paper's Table III so
// accidental drift is caught.
func TestTableIII(t *testing.T) {
	c := Default()
	if c.Processor.Cores != 8 {
		t.Fatal("8-core CPU expected")
	}
	if c.Processor.L1Latency != 2 || c.Processor.L2Latency != 20 || c.Processor.L3Latency != 32 {
		t.Fatal("cache latencies drifted from Table III")
	}
	if c.Processor.L1Size != 32<<10 || c.Processor.L1Ways != 8 {
		t.Fatal("L1 geometry drifted")
	}
	if c.Processor.L2Size != 512<<10 || c.Processor.L2Ways != 8 {
		t.Fatal("L2 geometry drifted")
	}
	if c.Processor.L3Size != 4<<20 || c.Processor.L3Ways != 64 {
		t.Fatal("L3 geometry drifted")
	}
	if c.PCM.CapacityBytes != 16<<30 {
		t.Fatal("16GB PCM expected")
	}
	if c.PCM.ReadLatency != 60 || c.PCM.WriteLatency != 150 {
		t.Fatal("PCM latencies drifted (60ns read / 150ns write)")
	}
	if c.PCM.Channels != 2 || c.PCM.RanksPerChan != 2 || c.PCM.BanksPerRank != 8 {
		t.Fatal("PCM organization drifted (2 ranks/channel, 8 banks/rank)")
	}
	if c.PCM.RowBufferBytes != 1<<10 {
		t.Fatal("1KB row buffer expected")
	}
	if c.PCM.TRCD != 55 || c.PCM.TBURST != 5 || c.PCM.TWR != 150 {
		t.Fatal("DDR timing drifted")
	}
	if c.Security.AESLatency != 40 {
		t.Fatal("AES latency 40ns expected")
	}
	if c.Security.MetadataCacheSize != 512<<10 || c.Security.MetadataCacheWays != 8 {
		t.Fatal("metadata cache drifted (512KB, 8-way)")
	}
	if c.Security.MerkleArity != 8 || c.Security.MerkleLevels != 9 {
		t.Fatal("Merkle tree drifted (9 levels, 8-ary)")
	}
	if c.Security.OTTBanks != 8 || c.Security.OTTEntriesPerBank != 128 {
		t.Fatal("OTT geometry drifted (8 x 128 fully associative)")
	}
	if c.Security.OTTLookupLatency != 20 {
		t.Fatal("OTT lookup must take 20 cycles (power-conscious, slower than TLB)")
	}
}

func TestStructuralConstants(t *testing.T) {
	if LineSize != 64 || PageSize != 4096 || LinesPerPage != 64 {
		t.Fatal("line/page geometry drifted")
	}
	if PhysAddrBits != 52 || DFBitPos != 51 {
		t.Fatal("DF-bit must be bit 51 of a 52-bit physical address")
	}
	if MinorCounterBits != 7 || MinorCounterMax != 127 {
		t.Fatal("7-bit minor counters expected")
	}
	// The OTT of Table III is 2KB of key state per the paper's §III-H
	// (8 banks x 128 entries; each key is 16 bytes -> 16KB with tags in
	// this implementation; the paper's 2KB counts keys only for the
	// backup-power argument). Sanity-check the entry count instead.
	if Default().Security.OTTBanks*Default().Security.OTTEntriesPerBank != 1024 {
		t.Fatal("1024 OTT entries expected")
	}
}
