// Package swencrypt models eCryptfs-style stacked software filesystem
// encryption: files are encrypted at 4 KB page granularity by kernel code,
// with a per-file key, every time a page moves between the page cache and
// the backing device. This is the software baseline the paper measures in
// Figure 3 (≈2.7× average slowdown, ≈5× for YCSB) — the cost that motivates
// FsEncr.
//
// The crypto is functional (bytes at rest in the simulated NVM are true
// ciphertext); the *time* cost of the software AES is charged by the kernel
// (config.Kernel.SWCryptoPer16B per 16-byte block).
package swencrypt

import (
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
)

// Cipher encrypts pages of one file.
type Cipher struct {
	eng *aesctr.Engine
	ino uint16
}

// New returns a page cipher for the file with the given key and inode.
func New(key aesctr.Key, ino uint16) *Cipher {
	return &Cipher{eng: aesctr.New(key, 0), ino: ino}
}

// CryptPage encrypts or decrypts one 4 KB file page in place (CTR mode is
// its own inverse). The IV binds the file identity and the page's position
// in the file, like eCryptfs's per-extent IVs.
func (c *Cipher) CryptPage(pageIdx uint64, page []byte) {
	if len(page) != config.PageSize {
		panic("swencrypt: page must be 4096 bytes")
	}
	var pad aesctr.Line
	for li := 0; li < config.LinesPerPage; li++ {
		iv := aesctr.IV{
			PageID:     pageIdx<<16 | uint64(c.ino),
			LineInPage: uint8(li),
			Domain:     aesctr.DomainSoftware,
		}
		c.eng.OTPInto(&pad, iv)
		seg := (*aesctr.Line)(page[li*config.LineSize : (li+1)*config.LineSize])
		aesctr.XORInto(seg, &pad)
	}
}

// BlocksPerPage is the number of 16-byte AES blocks the software engine
// processes per page (for cost accounting).
const BlocksPerPage = config.PageSize / 16
