package swencrypt

import (
	"bytes"
	"testing"

	"fsencr/internal/aesctr"
	"fsencr/internal/config"
)

func k(b byte) aesctr.Key {
	var key aesctr.Key
	for i := range key {
		key[i] = b
	}
	return key
}

func page(b byte) []byte {
	p := make([]byte, config.PageSize)
	for i := range p {
		p[i] = b + byte(i%200)
	}
	return p
}

func TestRoundtrip(t *testing.T) {
	c := New(k(1), 42)
	p := page(3)
	orig := append([]byte(nil), p...)
	c.CryptPage(5, p)
	if bytes.Equal(p, orig) {
		t.Fatal("encryption is identity")
	}
	c.CryptPage(5, p)
	if !bytes.Equal(p, orig) {
		t.Fatal("roundtrip failed")
	}
}

func TestPageIndexSeparation(t *testing.T) {
	c := New(k(1), 42)
	a, b := page(3), page(3)
	c.CryptPage(1, a)
	c.CryptPage(2, b)
	if bytes.Equal(a, b) {
		t.Fatal("different pages encrypted identically")
	}
}

func TestInodeSeparation(t *testing.T) {
	a, b := page(3), page(3)
	New(k(1), 10).CryptPage(7, a)
	New(k(1), 11).CryptPage(7, b)
	if bytes.Equal(a, b) {
		t.Fatal("different inodes encrypted identically")
	}
}

func TestKeySeparation(t *testing.T) {
	a, b := page(3), page(3)
	New(k(1), 10).CryptPage(7, a)
	New(k(2), 10).CryptPage(7, b)
	if bytes.Equal(a, b) {
		t.Fatal("different keys encrypted identically")
	}
}

func TestWrongSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short page accepted")
		}
	}()
	New(k(1), 1).CryptPage(0, make([]byte, 100))
}
