// Package cache implements the set-associative, write-back caches of the
// simulated machine: the per-core L1/L2, the shared L3, and the memory
// controller's dedicated metadata cache (Table III).
//
// The cache tracks tags, validity, dirtiness, and LRU ordering. It does not
// store line contents: in this simulator, data for lines held anywhere in
// the hierarchy lives in a single coherent view owned by the machine, and
// the caches decide *timing* (hit level) and *traffic* (what gets written
// back to the memory controller, and when).
package cache

import (
	"fmt"

	"fsencr/internal/config"
)

type entry struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Cache is one set-associative cache. Not safe for concurrent use.
type Cache struct {
	name     string
	sets     [][]entry
	ways     int
	numSets  int
	lineBits uint
	clock    uint64 // monotonic use counter for LRU

	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache of sizeBytes with the given associativity over
// config.LineSize lines. sizeBytes must be a multiple of ways*LineSize and
// the resulting set count must be a power of two.
func New(name string, sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := sizeBytes / config.LineSize
	if lines%ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", name, lines, ways))
	}
	numSets := lines / ways
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, numSets))
	}
	c := &Cache{
		name:     name,
		ways:     ways,
		numSets:  numSets,
		lineBits: log2(config.LineSize),
	}
	c.sets = make([][]entry, numSets)
	backing := make([]entry, numSets*ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:ways], backing[ways:]
	}
	return c
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.numSets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) locate(lineAddr uint64) (setIdx int, tag uint64) {
	idx := lineAddr >> c.lineBits
	return int(idx % uint64(c.numSets)), idx / uint64(c.numSets)
}

// Lookup probes for the line containing addr. On a hit it refreshes LRU
// state, optionally marks the line dirty, and returns true.
func (c *Cache) Lookup(lineAddr uint64, markDirty bool) bool {
	set, tag := c.locate(lineAddr)
	c.clock++
	for i := range c.sets[set] {
		e := &c.sets[set][i]
		if e.valid && e.tag == tag {
			e.lastUse = c.clock
			if markDirty {
				e.dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Contains probes without disturbing LRU or statistics.
func (c *Cache) Contains(lineAddr uint64) bool {
	set, tag := c.locate(lineAddr)
	for i := range c.sets[set] {
		e := &c.sets[set][i]
		if e.valid && e.tag == tag {
			return true
		}
	}
	return false
}

// Victim describes a line evicted by Insert.
type Victim struct {
	LineAddr uint64
	Dirty    bool
}

// Insert fills the line containing addr, evicting the LRU way if the set is
// full. It returns the evicted line, if any. Inserting a line that is
// already present just updates its dirty bit.
func (c *Cache) Insert(lineAddr uint64, dirty bool) (Victim, bool) {
	set, tag := c.locate(lineAddr)
	c.clock++
	var victim *entry
	for i := range c.sets[set] {
		e := &c.sets[set][i]
		if e.valid && e.tag == tag {
			e.lastUse = c.clock
			e.dirty = e.dirty || dirty
			return Victim{}, false
		}
		if !e.valid {
			if victim == nil || victim.valid {
				victim = e
			}
			continue
		}
		if victim == nil || (victim.valid && e.lastUse < victim.lastUse) {
			victim = e
		}
	}
	var out Victim
	evicted := false
	if victim.valid {
		out = Victim{LineAddr: c.lineAddr(set, victim.tag), Dirty: victim.dirty}
		evicted = true
		c.Evictions++
	}
	victim.tag = tag
	victim.valid = true
	victim.dirty = dirty
	victim.lastUse = c.clock
	return out, evicted
}

func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return (tag*uint64(c.numSets) + uint64(set)) << c.lineBits
}

// Invalidate drops the line if present, returning whether it was dirty.
func (c *Cache) Invalidate(lineAddr uint64) (wasDirty, wasPresent bool) {
	set, tag := c.locate(lineAddr)
	for i := range c.sets[set] {
		e := &c.sets[set][i]
		if e.valid && e.tag == tag {
			e.valid = false
			return e.dirty, true
		}
	}
	return false, false
}

// Clean clears the dirty bit of the line if present (CLWB semantics: the
// line is written back but retained).
func (c *Cache) Clean(lineAddr uint64) {
	set, tag := c.locate(lineAddr)
	for i := range c.sets[set] {
		e := &c.sets[set][i]
		if e.valid && e.tag == tag {
			e.dirty = false
			return
		}
	}
}

// IsDirty reports whether the line is present and dirty.
func (c *Cache) IsDirty(lineAddr uint64) bool {
	set, tag := c.locate(lineAddr)
	for i := range c.sets[set] {
		e := &c.sets[set][i]
		if e.valid && e.tag == tag {
			return e.dirty
		}
	}
	return false
}

// WalkValid calls fn for every valid line. fn must not mutate the cache.
func (c *Cache) WalkValid(fn func(lineAddr uint64, dirty bool)) {
	for set := range c.sets {
		for i := range c.sets[set] {
			e := &c.sets[set][i]
			if e.valid {
				fn(c.lineAddr(set, e.tag), e.dirty)
			}
		}
	}
}

// Clear invalidates everything (a crash powering off SRAM).
func (c *Cache) Clear() {
	for set := range c.sets {
		for i := range c.sets[set] {
			c.sets[set][i] = entry{}
		}
	}
}

// HitRate returns hits / (hits + misses), or 0 if never accessed.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
