package cache

import (
	"testing"
	"testing/quick"

	"fsencr/internal/config"
)

func line(i uint64) uint64 { return i * config.LineSize }

func TestMissThenHit(t *testing.T) {
	c := New("t", 8<<10, 8)
	if c.Lookup(line(1), false) {
		t.Fatal("hit on cold cache")
	}
	c.Insert(line(1), false)
	if !c.Lookup(line(1), false) {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// One-set cache: 4 lines total, 4 ways.
	c := New("t", 4*config.LineSize, 4)
	for i := uint64(0); i < 4; i++ {
		c.Insert(line(i), false)
	}
	c.Lookup(line(0), false) // refresh 0; LRU is now 1
	v, ev := c.Insert(line(9), false)
	if !ev {
		t.Fatal("full set did not evict")
	}
	if v.LineAddr != line(1) {
		t.Fatalf("evicted %#x, want %#x", v.LineAddr, line(1))
	}
	if !c.Contains(line(0)) || c.Contains(line(1)) {
		t.Fatal("wrong victim removed")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := New("t", 2*config.LineSize, 2)
	c.Insert(line(0), true)
	c.Insert(line(1), false)
	v, ev := c.Insert(line(2), false)
	if !ev || v.LineAddr != line(0) || !v.Dirty {
		t.Fatalf("dirty victim not reported: %+v %v", v, ev)
	}
}

func TestInsertExistingMergesDirty(t *testing.T) {
	c := New("t", 4*config.LineSize, 4)
	c.Insert(line(3), false)
	if _, ev := c.Insert(line(3), true); ev {
		t.Fatal("re-insert evicted")
	}
	if !c.IsDirty(line(3)) {
		t.Fatal("dirty bit lost on re-insert")
	}
	c.Insert(line(3), false)
	if !c.IsDirty(line(3)) {
		t.Fatal("dirty bit cleared by clean re-insert")
	}
}

func TestLookupMarkDirty(t *testing.T) {
	c := New("t", 4*config.LineSize, 4)
	c.Insert(line(0), false)
	c.Lookup(line(0), true)
	if !c.IsDirty(line(0)) {
		t.Fatal("markDirty lookup did not dirty the line")
	}
}

func TestInvalidate(t *testing.T) {
	c := New("t", 4*config.LineSize, 4)
	c.Insert(line(0), true)
	dirty, present := c.Invalidate(line(0))
	if !present || !dirty {
		t.Fatalf("invalidate returned %v %v", dirty, present)
	}
	if c.Contains(line(0)) {
		t.Fatal("line survived invalidate")
	}
	if _, present := c.Invalidate(line(0)); present {
		t.Fatal("double invalidate reported present")
	}
}

func TestClean(t *testing.T) {
	c := New("t", 4*config.LineSize, 4)
	c.Insert(line(0), true)
	c.Clean(line(0))
	if c.IsDirty(line(0)) {
		t.Fatal("Clean left line dirty")
	}
	if !c.Contains(line(0)) {
		t.Fatal("Clean dropped the line")
	}
}

func TestWalkValidAndClear(t *testing.T) {
	c := New("t", 8<<10, 8)
	c.Insert(line(1), true)
	c.Insert(line(2), false)
	got := map[uint64]bool{}
	c.WalkValid(func(a uint64, dirty bool) { got[a] = dirty })
	if len(got) != 2 || !got[line(1)] || got[line(2)] {
		t.Fatalf("walk got %v", got)
	}
	c.Clear()
	n := 0
	c.WalkValid(func(uint64, bool) { n++ })
	if n != 0 {
		t.Fatal("clear left valid lines")
	}
}

func TestSetIndexing(t *testing.T) {
	c := New("t", 8<<10, 8) // 16 sets
	// Lines that differ only in tag bits must land in the same set and
	// compete; lines in different sets must not.
	sets := c.Sets()
	a := line(0)
	b := line(uint64(sets)) // same set, different tag
	c.Insert(a, false)
	c.Insert(b, false)
	if !c.Contains(a) || !c.Contains(b) {
		t.Fatal("same-set lines evicted prematurely")
	}
}

func TestHitRate(t *testing.T) {
	c := New("t", 4*config.LineSize, 4)
	if c.HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
	c.Lookup(line(0), false)
	c.Insert(line(0), false)
	c.Lookup(line(0), false)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New("t", 0, 8) },
		func() { New("t", 8<<10, 0) },
		func() { New("t", 3*config.LineSize, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry accepted")
				}
			}()
			bad()
		}()
	}
}

func TestPropertyContainsAfterInsert(t *testing.T) {
	c := New("t", 32<<10, 8)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			la := uint64(a) &^ (config.LineSize - 1)
			c.Insert(la, false)
			if !c.Contains(la) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New("t", 8<<10, 8) // 128 lines
	for i := uint64(0); i < 1000; i++ {
		c.Insert(line(i), false)
	}
	n := 0
	c.WalkValid(func(uint64, bool) { n++ })
	if n != 128 {
		t.Fatalf("valid lines = %d, capacity 128", n)
	}
}
