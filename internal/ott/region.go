package ott

import (
	"encoding/binary"
	"errors"

	"fsencr/internal/aesctr"
	"fsencr/internal/telemetry"
)

// SealedSize is the size of one sealed OTT record in the encrypted OTT
// memory region: two AES blocks holding {group, file, key, magic, slot}.
const SealedSize = 32

// Sealed is one encrypted OTT record as it appears in NVM.
type Sealed [SealedSize]byte

// Region models the dedicated encrypted OTT region in memory: a
// set-associative hash table maintained by the memory controller, sealed
// with the OTT key (which never leaves the processor). Even if the general
// memory encryption key is compromised, file keys dumped here remain
// protected (§VI, "Memory Encryption Key Revealed").
type Region struct {
	eng     *aesctr.Engine
	buckets int
	table   [][]Sealed

	Lookups uint64
	Stores  uint64

	tProbes    *telemetry.Counter
	tProbeHits *telemetry.Counter
	tStores    *telemetry.Counter
	tUnseals   *telemetry.Histogram
}

// Instrument attaches telemetry handles. A nil registry detaches.
func (r *Region) Instrument(reg *telemetry.Registry) {
	r.tProbes = reg.Counter("ott.region_probes")
	r.tProbeHits = reg.Counter("ott.region_probe_hits")
	r.tStores = reg.Counter("ott.region_stores")
	r.tUnseals = reg.Histogram("ott.region_unseals_per_probe")
}

const sealedMagic = 0x5EA1

// NewRegion builds an OTT region with the given bucket count (power of two).
func NewRegion(ottKey aesctr.Key, buckets int) *Region {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("ott: bucket count must be a positive power of two")
	}
	return &Region{
		eng:     aesctr.New(ottKey, 0),
		buckets: buckets,
		table:   make([][]Sealed, buckets),
	}
}

// Buckets returns the bucket count.
func (r *Region) Buckets() int { return r.buckets }

// Bucket returns the hash bucket for (group, file); the memory controller
// derives the region's physical address from it.
func (r *Region) Bucket(group uint32, file uint16) int {
	h := uint64(group)*0x9e3779b97f4a7c15 ^ uint64(file)*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h & uint64(r.buckets-1))
}

// seal encrypts an entry for storage. The bucket index is bound into the
// plaintext so a sealed record cannot be replayed into a different bucket.
func (r *Region) seal(e Entry, bucket int) Sealed {
	var plain [SealedSize]byte
	binary.LittleEndian.PutUint32(plain[0:4], e.Group)
	binary.LittleEndian.PutUint16(plain[4:6], e.File)
	binary.LittleEndian.PutUint16(plain[6:8], sealedMagic)
	binary.LittleEndian.PutUint32(plain[8:12], uint32(bucket))
	copy(plain[12:28], e.Key[:])
	var ct Sealed
	// CBC-style chaining of the two blocks so both depend on all fields.
	r.eng.EncryptBlock16(ct[0:16], plain[0:16])
	var second [16]byte
	for i := 0; i < 16; i++ {
		second[i] = plain[16+i] ^ ct[i]
	}
	r.eng.EncryptBlock16(ct[16:32], second[:])
	return ct
}

// ErrUnsealFailed reports a sealed record that does not authenticate (wrong
// OTT key, tampering, or replay into a different bucket).
var ErrUnsealFailed = errors.New("ott: sealed record failed authentication")

// open decrypts a sealed record, validating the magic and bucket binding.
func (r *Region) open(s Sealed, bucket int) (Entry, error) {
	var plain [SealedSize]byte
	r.eng.DecryptBlock16(plain[0:16], s[0:16])
	var second [16]byte
	r.eng.DecryptBlock16(second[:], s[16:32])
	for i := 0; i < 16; i++ {
		plain[16+i] = second[i] ^ s[i]
	}
	if binary.LittleEndian.Uint16(plain[6:8]) != sealedMagic {
		return Entry{}, ErrUnsealFailed
	}
	if int(binary.LittleEndian.Uint32(plain[8:12])) != bucket {
		return Entry{}, ErrUnsealFailed
	}
	var e Entry
	e.Group = binary.LittleEndian.Uint32(plain[0:4])
	e.File = binary.LittleEndian.Uint16(plain[4:6])
	copy(e.Key[:], plain[12:28])
	return e, nil
}

// Store seals an evicted OTT entry into its bucket, replacing any existing
// record for the same (group, file). It returns the bucket index so the
// controller can account the NVM write.
func (r *Region) Store(e Entry) int {
	r.Stores++
	r.tStores.Inc()
	b := r.Bucket(e.Group, e.File)
	sealed := r.seal(e, b)
	for i, s := range r.table[b] {
		if ent, err := r.open(s, b); err == nil && ent.Group == e.Group && ent.File == e.File {
			r.table[b][i] = sealed
			return b
		}
	}
	r.table[b] = append(r.table[b], sealed)
	return b
}

// Lookup searches the bucket for (group, file), unsealing candidates with
// the OTT key. It returns the entry, the bucket index (for timing), and
// whether it was found.
func (r *Region) Lookup(group uint32, file uint16) (Entry, int, bool) {
	r.Lookups++
	r.tProbes.Inc()
	b := r.Bucket(group, file)
	for i, s := range r.table[b] {
		if e, err := r.open(s, b); err == nil && e.Group == group && e.File == file {
			r.tProbeHits.Inc()
			r.tUnseals.Observe(uint64(i + 1))
			return e, b, true
		}
	}
	r.tUnseals.Observe(uint64(len(r.table[b])))
	return Entry{}, b, false
}

// Peek is Lookup without side effects: no probe counters, no telemetry
// observations. open/DecryptBlock16 touch only the engine's stateless key
// schedule, so a reader goroutine can unseal concurrently with the owner
// as long as the bucket table itself is quiescent (the fast-path's
// seqlock guarantees that).
func (r *Region) Peek(group uint32, file uint16) (Entry, bool) {
	b := r.Bucket(group, file)
	for _, s := range r.table[b] {
		if e, err := r.open(s, b); err == nil && e.Group == group && e.File == file {
			return e, true
		}
	}
	return Entry{}, false
}

// Remove deletes the record for (group, file), returning the bucket and
// whether anything was removed (file deletion removes the key from both the
// OTT and the encrypted region, §III-E).
func (r *Region) Remove(group uint32, file uint16) (int, bool) {
	b := r.Bucket(group, file)
	for i, s := range r.table[b] {
		if e, err := r.open(s, b); err == nil && e.Group == group && e.File == file {
			r.table[b] = append(r.table[b][:i], r.table[b][i+1:]...)
			return b, true
		}
	}
	return b, false
}

// BucketRecords returns the sealed records stored in one bucket (for
// Merkle-tree coverage of the encrypted OTT region).
func (r *Region) BucketRecords(bucket int) []Sealed {
	return r.table[bucket]
}

// FlipBit flips one bit of the idx-th sealed record in bucket, behind the
// seals' and the Merkle tree's back — the chaos engine's model of a
// physical attacker rewriting the encrypted OTT region. Self-inverse.
// Returns false when the slot does not exist.
func (r *Region) FlipBit(bucket, idx, bit int) bool {
	if bucket < 0 || bucket >= r.buckets || idx < 0 || idx >= len(r.table[bucket]) {
		return false
	}
	bit %= SealedSize * 8
	r.table[bucket][idx][bit/8] ^= 1 << (bit % 8)
	return true
}

// SealedRecords returns the raw sealed bytes of every record (what an
// attacker scanning physical memory would see).
func (r *Region) SealedRecords() []Sealed {
	var out []Sealed
	for _, bucket := range r.table {
		out = append(out, bucket...)
	}
	return out
}

// ExportTable deep-copies the sealed bucket table (shard-migration image
// form). The records stay sealed: the image never exposes plaintext keys.
func (r *Region) ExportTable() [][]Sealed {
	out := make([][]Sealed, len(r.table))
	for i, b := range r.table {
		if len(b) == 0 {
			continue
		}
		out[i] = append([]Sealed(nil), b...)
	}
	return out
}

// ImportTable replaces the bucket table with an exported copy. The bucket
// count must match the region geometry (sealed records bind their bucket
// index, so records cannot be rehomed anyway).
func (r *Region) ImportTable(table [][]Sealed) error {
	if len(table) != r.buckets {
		return errors.New("ott: imported table bucket count mismatch")
	}
	r.table = make([][]Sealed, r.buckets)
	for i, b := range table {
		if len(b) == 0 {
			continue
		}
		r.table[i] = append([]Sealed(nil), b...)
	}
	return nil
}

// Len returns the number of sealed records.
func (r *Region) Len() int {
	n := 0
	for _, b := range r.table {
		n += len(b)
	}
	return n
}
