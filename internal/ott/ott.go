// Package ott implements the Open Tunnel Table (§III-E): the on-chip
// hardware structure mapping (Group ID, File ID) to a 128-bit file key, plus
// the dedicated encrypted OTT region in memory that overflows are evicted
// to after sealing with a processor-resident OTT key.
//
// The table is organised as eight fully-associative 128-entry banks searched
// in parallel; to avoid TLB-like power cost the lookup takes 20 cycles
// (Table III). OTT updates happen only at file creation and page faults, so
// they are rare.
package ott

import (
	"fsencr/internal/aesctr"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// Entry is one OTT record.
type Entry struct {
	Group uint32 // 18-bit group ID
	File  uint16 // 14-bit file ID
	Key   aesctr.Key
}

type slot struct {
	e       Entry
	valid   bool
	lastUse uint64
}

// Table is the on-chip OTT.
type Table struct {
	slots []slot
	clock uint64

	Hits      uint64
	Misses    uint64
	Evictions uint64
	Inserts   uint64

	tHits      *telemetry.Counter
	tMisses    *telemetry.Counter
	tEvictions *telemetry.Counter
	tInserts   *telemetry.Counter
	tOccupancy *telemetry.Gauge

	// Security-event journal. The table has no clock of its own, so the
	// owner (the memory controller) supplies one reading the simulated
	// cycle of the operation in flight.
	jrn       *journal.Journal
	jclock    func() uint64
	refilling bool
}

// Instrument attaches telemetry handles. A nil registry detaches (all
// handles become no-ops).
func (t *Table) Instrument(reg *telemetry.Registry) {
	t.tHits = reg.Counter("ott.table_hits")
	t.tMisses = reg.Counter("ott.table_misses")
	t.tEvictions = reg.Counter("ott.table_evictions")
	t.tInserts = reg.Counter("ott.table_inserts")
	t.tOccupancy = reg.Gauge("ott.table_occupancy")
}

// AttachJournal attaches a security-event journal and the simulated-cycle
// clock events are stamped with. A nil journal detaches.
func (t *Table) AttachJournal(j *journal.Journal, clock func() uint64) {
	t.jrn = j
	t.jclock = clock
}

func (t *Table) jcycle() uint64 {
	if t.jclock == nil {
		return 0
	}
	return t.jclock()
}

// NewTable builds an OTT with banks*perBank entries.
func NewTable(banks, perBank int) *Table {
	if banks <= 0 || perBank <= 0 {
		panic("ott: non-positive geometry")
	}
	return &Table{slots: make([]slot, banks*perBank)}
}

// Capacity returns the total entry count.
func (t *Table) Capacity() int { return len(t.slots) }

// Len returns the number of valid entries.
func (t *Table) Len() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].valid {
			n++
		}
	}
	return n
}

// Lookup searches all banks in parallel for (group, file).
func (t *Table) Lookup(group uint32, file uint16) (aesctr.Key, bool) {
	t.clock++
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.e.Group == group && s.e.File == file {
			s.lastUse = t.clock
			t.Hits++
			t.tHits.Inc()
			return s.e.Key, true
		}
	}
	t.Misses++
	t.tMisses.Inc()
	return aesctr.Key{}, false
}

// Peek is Lookup without side effects: no clock tick, no LRU refresh, no
// hit/miss counters, no telemetry. The concurrent read fast-path uses it
// to resolve keys from a reader goroutine while the owner goroutine is
// parked; the owner's own Lookup remains the only mutating search.
func (t *Table) Peek(group uint32, file uint16) (aesctr.Key, bool) {
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.e.Group == group && s.e.File == file {
			return s.e.Key, true
		}
	}
	return aesctr.Key{}, false
}

// Insert adds (or refreshes) an entry. If the table is full, the least
// recently used entry is evicted and returned for sealing into the
// encrypted OTT region.
func (t *Table) Insert(e Entry) (evicted Entry, hasEvict bool) {
	t.clock++
	t.Inserts++
	t.tInserts.Inc()
	if t.tOccupancy != nil {
		defer func() { t.tOccupancy.Set(uint64(t.Len())) }()
	}
	var victim *slot
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.e.Group == e.Group && s.e.File == e.File {
			s.e = e
			s.lastUse = t.clock
			return Entry{}, false
		}
		if !s.valid {
			if victim == nil || victim.valid {
				victim = s
			}
			continue
		}
		if victim == nil || (victim.valid && s.lastUse < victim.lastUse) {
			victim = s
		}
	}
	if victim.valid {
		evicted = victim.e
		hasEvict = true
		t.Evictions++
		t.tEvictions.Inc()
		t.jrn.Emit(journal.Event{Cycle: t.jcycle(), Type: journal.OTTEvict,
			Group: evicted.Group, File: evicted.File})
	}
	victim.e = e
	victim.valid = true
	victim.lastUse = t.clock
	typ := journal.OTTOpen
	if t.refilling {
		typ = journal.OTTRefill
	}
	t.jrn.Emit(journal.Event{Cycle: t.jcycle(), Type: typ, Group: e.Group, File: e.File})
	return evicted, hasEvict
}

// Refill is Insert for an entry restored from the encrypted OTT region:
// identical mechanics, but the journal records an ott_refill rather than a
// fresh tunnel open.
func (t *Table) Refill(e Entry) (evicted Entry, hasEvict bool) {
	t.refilling = true
	defer func() { t.refilling = false }()
	return t.Insert(e)
}

// Remove deletes the entry for (group, file) if present (file deletion).
func (t *Table) Remove(group uint32, file uint16) bool {
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.e.Group == group && s.e.File == file {
			s.valid = false
			t.jrn.Emit(journal.Event{Cycle: t.jcycle(), Type: journal.OTTClose,
				Group: group, File: file})
			return true
		}
	}
	return false
}

// Entries returns a copy of all valid entries (used to flush the table to
// the encrypted region on shutdown/crash with backup power, §III-H, and for
// filesystem transport, §VI).
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.slots))
	for i := range t.slots {
		if t.slots[i].valid {
			out = append(out, t.slots[i].e)
		}
	}
	return out
}

// Clear invalidates every entry (crash without backup power, or locking
// FsEncr decryption after a failed admin authentication, §VI).
func (t *Table) Clear() {
	for i := range t.slots {
		t.slots[i] = slot{}
	}
}
