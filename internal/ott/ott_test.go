package ott

import (
	"testing"
	"testing/quick"

	"fsencr/internal/aesctr"
)

func key(b byte) aesctr.Key {
	var k aesctr.Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestTableInsertLookup(t *testing.T) {
	tb := NewTable(2, 4)
	tb.Insert(Entry{Group: 1, File: 2, Key: key(3)})
	k, ok := tb.Lookup(1, 2)
	if !ok || k != key(3) {
		t.Fatal("lookup after insert failed")
	}
	if _, ok := tb.Lookup(1, 3); ok {
		t.Fatal("phantom entry")
	}
	if tb.Hits != 1 || tb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tb.Hits, tb.Misses)
	}
}

func TestTableRefresh(t *testing.T) {
	tb := NewTable(1, 4)
	tb.Insert(Entry{Group: 1, File: 1, Key: key(1)})
	if _, ev := tb.Insert(Entry{Group: 1, File: 1, Key: key(9)}); ev {
		t.Fatal("refresh evicted")
	}
	k, _ := tb.Lookup(1, 1)
	if k != key(9) {
		t.Fatal("refresh did not update key")
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestTableLRUEviction(t *testing.T) {
	tb := NewTable(1, 3)
	for i := uint16(0); i < 3; i++ {
		tb.Insert(Entry{Group: 1, File: i, Key: key(byte(i))})
	}
	tb.Lookup(1, 0) // refresh 0; LRU is 1
	evicted, has := tb.Insert(Entry{Group: 1, File: 99, Key: key(99)})
	if !has || evicted.File != 1 {
		t.Fatalf("evicted %+v (has=%v), want file 1", evicted, has)
	}
}

func TestTableRemove(t *testing.T) {
	tb := NewTable(1, 4)
	tb.Insert(Entry{Group: 1, File: 1, Key: key(1)})
	if !tb.Remove(1, 1) {
		t.Fatal("remove failed")
	}
	if tb.Remove(1, 1) {
		t.Fatal("double remove succeeded")
	}
	if _, ok := tb.Lookup(1, 1); ok {
		t.Fatal("entry survived removal")
	}
}

func TestTableEntriesAndClear(t *testing.T) {
	tb := NewTable(2, 2)
	tb.Insert(Entry{Group: 1, File: 1, Key: key(1)})
	tb.Insert(Entry{Group: 2, File: 2, Key: key(2)})
	if len(tb.Entries()) != 2 {
		t.Fatalf("entries = %d", len(tb.Entries()))
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("clear left entries")
	}
}

func TestTableCapacity(t *testing.T) {
	tb := NewTable(8, 128)
	if tb.Capacity() != 1024 {
		t.Fatalf("capacity = %d", tb.Capacity())
	}
}

func TestRegionSealUnsealRoundtrip(t *testing.T) {
	r := NewRegion(key(7), 64)
	e := Entry{Group: 123456, File: 9876, Key: key(42)}
	r.Store(e)
	got, _, found := r.Lookup(e.Group, e.File)
	if !found || got != e {
		t.Fatalf("lookup got %+v found=%v", got, found)
	}
}

func TestRegionWrongKeyFails(t *testing.T) {
	r1 := NewRegion(key(1), 64)
	e := Entry{Group: 5, File: 6, Key: key(9)}
	b := r1.Bucket(e.Group, e.File)
	sealed := r1.seal(e, b)
	r2 := NewRegion(key(2), 64)
	if _, err := r2.open(sealed, b); err == nil {
		t.Fatal("foreign OTT key unsealed a record")
	}
}

func TestRegionBucketBinding(t *testing.T) {
	r := NewRegion(key(1), 64)
	e := Entry{Group: 5, File: 6, Key: key(9)}
	b := r.Bucket(e.Group, e.File)
	sealed := r.seal(e, b)
	if _, err := r.open(sealed, (b+1)%64); err == nil {
		t.Fatal("record replayed into a different bucket unsealed")
	}
}

func TestRegionTamperDetected(t *testing.T) {
	r := NewRegion(key(1), 64)
	e := Entry{Group: 5, File: 6, Key: key(9)}
	b := r.Bucket(e.Group, e.File)
	sealed := r.seal(e, b)
	sealed[20] ^= 1
	got, err := r.open(sealed, b)
	if err == nil && got == e {
		t.Fatal("tampered record unsealed to original entry")
	}
}

func TestRegionUpdateInPlace(t *testing.T) {
	r := NewRegion(key(1), 64)
	r.Store(Entry{Group: 1, File: 1, Key: key(1)})
	r.Store(Entry{Group: 1, File: 1, Key: key(2)})
	if r.Len() != 1 {
		t.Fatalf("duplicate records: %d", r.Len())
	}
	got, _, _ := r.Lookup(1, 1)
	if got.Key != key(2) {
		t.Fatal("update did not replace key")
	}
}

func TestRegionRemove(t *testing.T) {
	r := NewRegion(key(1), 64)
	r.Store(Entry{Group: 1, File: 1, Key: key(1)})
	if _, removed := r.Remove(1, 1); !removed {
		t.Fatal("remove failed")
	}
	if _, _, found := r.Lookup(1, 1); found {
		t.Fatal("entry survived removal")
	}
	if _, removed := r.Remove(1, 1); removed {
		t.Fatal("double remove succeeded")
	}
}

func TestRegionCiphertextHidesKey(t *testing.T) {
	r := NewRegion(key(1), 64)
	e := Entry{Group: 1, File: 1, Key: key(0xAA)}
	r.Store(e)
	for _, s := range r.SealedRecords() {
		run := 0
		for _, b := range s {
			if b == 0xAA {
				run++
			} else {
				run = 0
			}
			if run >= 4 {
				t.Fatal("file key visible in sealed record")
			}
		}
	}
}

func TestRegionPropertyRoundtrip(t *testing.T) {
	r := NewRegion(key(3), 128)
	f := func(group uint32, file uint16, kb byte) bool {
		e := Entry{Group: group & (1<<18 - 1), File: file & (1<<14 - 1), Key: key(kb)}
		r.Store(e)
		got, _, found := r.Lookup(e.Group, e.File)
		return found && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionFlowTableToRegion(t *testing.T) {
	tb := NewTable(1, 2)
	r := NewRegion(key(1), 64)
	tb.Insert(Entry{Group: 1, File: 1, Key: key(1)})
	tb.Insert(Entry{Group: 1, File: 2, Key: key(2)})
	evicted, has := tb.Insert(Entry{Group: 1, File: 3, Key: key(3)})
	if !has {
		t.Fatal("no eviction from full table")
	}
	r.Store(evicted)
	got, _, found := r.Lookup(evicted.Group, evicted.File)
	if !found || got.Key != evicted.Key {
		t.Fatal("evicted key lost")
	}
}
