package trace

import (
	"bytes"
	"errors"
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/core"
	"fsencr/internal/kernel"
	"fsencr/internal/machine"
	"fsencr/internal/memctrl"
	"fsencr/internal/workloads"
)

func recordWorkload(t *testing.T, name string, ops int) []Event {
	t.Helper()
	w, err := workloads.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	sys := kernel.Boot(config.Default(), core.SchemeFsEncr.MCMode(), kernel.ModeDAX)
	env := workloads.NewEnv(sys, w.Threads, ops, true, 3)
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	rec := &Recorder{}
	sys.M.SetTracer(rec) // record only the measured phase
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	sys.M.SetTracer(nil)
	return rec.Events
}

func TestRecorderCaptures(t *testing.T) {
	events := recordWorkload(t, "hashmap", 50)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	s := Summarize(events)
	if s.Reads == 0 || s.Writes == 0 || s.Flushes == 0 || s.Fences == 0 {
		t.Fatalf("missing event kinds: %+v", s)
	}
	if s.Cores != 2 {
		t.Fatalf("hashmap runs 2 threads, trace saw %d cores", s.Cores)
	}
	if s.DFAccesses == 0 {
		t.Fatal("encrypted workload produced no DF-tagged accesses")
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	events := recordWorkload(t, "dax3", 20)
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("roundtrip lost events: %d vs %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("garbage accepted: %v", err)
	}
	var buf bytes.Buffer
	Write(&buf, []Event{{Core: 0, Kind: KindRead, PA: 0x1000, Len: 8}})
	b := buf.Bytes()
	if _, err := Read(bytes.NewReader(b[:len(b)-4])); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated trace accepted: %v", err)
	}
}

func TestReplayDeterministic(t *testing.T) {
	events := recordWorkload(t, "hashmap", 60)
	run := func() (config.Cycle, uint64) {
		m := machine.New(config.Default(), core.SchemeFsEncr.MCMode())
		Prepare(m, events)
		cycles, err := Replay(m, events)
		if err != nil {
			t.Fatal(err)
		}
		return cycles, m.MC.PCM.Writes()
	}
	c1, w1 := run()
	c2, w2 := run()
	if c1 != c2 || w1 != w2 {
		t.Fatalf("replay not deterministic: (%d,%d) vs (%d,%d)", c1, w1, c2, w2)
	}
	if c1 == 0 {
		t.Fatal("replay took zero cycles")
	}
}

func TestReplayAcrossSchemes(t *testing.T) {
	events := recordWorkload(t, "hashmap", 100)
	replayUnder := func(mode memctrl.Mode) config.Cycle {
		m := machine.New(config.Default(), mode)
		Prepare(m, events)
		cycles, err := Replay(m, events)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	plain := replayUnder(memctrl.Mode{})
	baseline := replayUnder(memctrl.Mode{MemEncryption: true})
	fsencr := replayUnder(memctrl.Mode{MemEncryption: true, FileEncryption: true})
	if !(plain <= baseline && baseline <= fsencr) {
		t.Fatalf("replay scheme ordering violated: %d / %d / %d", plain, baseline, fsencr)
	}
}

func TestReplayValidatesCores(t *testing.T) {
	m := machine.New(config.Default(), memctrl.Mode{})
	_, err := Replay(m, []Event{{Core: 200, Kind: KindRead, PA: 0, Len: 1}})
	if err == nil {
		t.Fatal("out-of-range core accepted")
	}
	_, err = Replay(m, []Event{{Core: 0, Kind: 'X', PA: 0, Len: 1}})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSummarizeCounts(t *testing.T) {
	events := []Event{
		{Core: 0, Kind: KindRead, PA: addr.Phys(0x1000), Len: 64},
		{Core: 1, Kind: KindWrite, PA: addr.Phys(0x2000).WithDF(), Len: 8},
		{Core: 0, Kind: KindFlush, PA: addr.Phys(0x2000).WithDF(), Len: 64},
		{Core: 0, Kind: KindFence},
	}
	s := Summarize(events)
	if s.Reads != 1 || s.Writes != 1 || s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.BytesRead != 64 || s.BytesWrite != 8 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.DFAccesses != 2 || s.UniquePages != 2 || s.Cores != 2 {
		t.Fatalf("derived: %+v", s)
	}
}
