// Package trace records and replays memory-access traces of the simulated
// machine — the classic trace-driven interface of memory-system simulators.
// A Recorder attached to a machine captures every load, store, CLWB and
// SFENCE with its physical address (including the DF-bit); the trace can be
// serialized to a compact binary stream and later replayed against a
// machine in any protection mode, reproducing the access pattern without
// re-running the workload's software stack.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/machine"
)

// Event kinds (machine.Tracer's kind byte).
const (
	KindRead  = 'R'
	KindWrite = 'W'
	KindFlush = 'F'
	KindFence = 'S'
)

// Event is one recorded memory operation.
type Event struct {
	Core int
	Kind byte
	PA   addr.Phys
	Len  int
}

// Recorder captures machine events. Attach with machine.SetTracer.
type Recorder struct {
	Events []Event
}

var _ machine.Tracer = (*Recorder)(nil)

// Event implements machine.Tracer.
func (r *Recorder) Event(core int, kind byte, pa addr.Phys, n int) {
	r.Events = append(r.Events, Event{Core: core, Kind: kind, PA: pa, Len: n})
}

// Binary format: magic, version, count, then per event:
// core(u8) kind(u8) len(u16) pa(u64), little-endian.
const (
	magic   = 0x46534e4354524143 // "FSNCTRAC"
	version = 1
)

// Write serializes events to w.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:8], magic)
	binary.LittleEndian.PutUint64(hdr[8:16], version)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [12]byte
	for _, e := range events {
		if e.Len > 0xFFFF {
			return fmt.Errorf("trace: event length %d exceeds format limit", e.Len)
		}
		rec[0] = byte(e.Core)
		rec[1] = e.Kind
		binary.LittleEndian.PutUint16(rec[2:4], uint16(e.Len))
		binary.LittleEndian.PutUint64(rec[4:12], uint64(e.PA))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrBadTrace reports a malformed or incompatible trace stream.
var ErrBadTrace = errors.New("trace: bad or incompatible trace stream")

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != magic {
		return nil, fmt.Errorf("%w: wrong magic", ErrBadTrace)
	}
	if binary.LittleEndian.Uint64(hdr[8:16]) != version {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadTrace)
	}
	n := binary.LittleEndian.Uint64(hdr[16:24])
	const maxEvents = 1 << 30
	if n > maxEvents {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrBadTrace, n)
	}
	events := make([]Event, 0, n)
	var rec [12]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at event %d", ErrBadTrace, i)
		}
		events = append(events, Event{
			Core: int(rec[0]),
			Kind: rec[1],
			Len:  int(binary.LittleEndian.Uint16(rec[2:4])),
			PA:   addr.Phys(binary.LittleEndian.Uint64(rec[4:12])),
		})
	}
	return events, nil
}

// Stats summarizes a trace.
type Stats struct {
	Events      int
	Reads       int
	Writes      int
	Flushes     int
	Fences      int
	Cores       int
	BytesRead   uint64
	BytesWrite  uint64
	DFAccesses  int
	UniquePages int
}

// Summarize computes trace statistics.
func Summarize(events []Event) Stats {
	var s Stats
	s.Events = len(events)
	pages := make(map[uint64]struct{})
	maxCore := -1
	for _, e := range events {
		if e.Core > maxCore {
			maxCore = e.Core
		}
		switch e.Kind {
		case KindRead:
			s.Reads++
			s.BytesRead += uint64(e.Len)
		case KindWrite:
			s.Writes++
			s.BytesWrite += uint64(e.Len)
		case KindFlush:
			s.Flushes++
		case KindFence:
			s.Fences++
		}
		if e.Kind != KindFence {
			pages[e.PA.PageNum()] = struct{}{}
			if e.PA.IsDF() {
				s.DFAccesses++
			}
		}
	}
	s.Cores = maxCore + 1
	s.UniquePages = len(pages)
	return s
}

// Prepare installs the controller state a raw replay needs: every DF-tagged
// page in the trace gets a synthetic file identity and key, as the kernel
// would have provided at fault time. Timing-faithful, key-management-free.
func Prepare(m *machine.Machine, events []Event) {
	const group, file = 1, 1
	var key [config.KeySize]byte
	for i := range key {
		key[i] = 0x7E ^ byte(i)
	}
	m.MC.InstallKey(0, group, file, key)
	seen := make(map[uint64]struct{})
	for _, e := range events {
		if e.Kind == KindFence || !e.PA.IsDF() {
			continue
		}
		pn := e.PA.PageNum()
		if _, ok := seen[pn]; ok {
			continue
		}
		seen[pn] = struct{}{}
		m.MC.TagPage(0, e.PA, group, file)
	}
}

// Replay executes the trace against m, returning the wall-clock cycles of
// the replay (max core time delta). Data values are immaterial for timing:
// writes store a fixed pattern.
func Replay(m *machine.Machine, events []Event) (config.Cycle, error) {
	start := m.MaxCoreTime()
	buf := make([]byte, 0xFFFF)
	for i := range buf {
		buf[i] = byte(i)
	}
	for _, e := range events {
		if e.Core >= m.Cores() {
			return 0, fmt.Errorf("trace: event core %d beyond machine's %d cores", e.Core, m.Cores())
		}
		co := m.Core(e.Core)
		switch e.Kind {
		case KindRead:
			co.Read(e.PA, buf[:e.Len])
		case KindWrite:
			co.Write(e.PA, buf[:e.Len])
		case KindFlush:
			co.Flush(e.PA)
		case KindFence:
			co.Fence()
		default:
			return 0, fmt.Errorf("trace: unknown event kind %q", e.Kind)
		}
	}
	return m.MaxCoreTime() - start, nil
}
