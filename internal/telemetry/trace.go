package telemetry

import "math/bits"

// TraceScope is the per-goroutine request-trace recorder. A shard's owner
// goroutine (or one simulation run) owns exactly one scope; components
// below it cache the scope pointer at Instrument time and check Active()
// on their hot paths — one predictable branch when no request is being
// traced, exactly like the nil-handle discipline of Counter/Histogram.
//
// While a scope is active, every span recorded through its registry
// (Registry.Span) is annotated with the current trace ID, a fresh span ID
// and the enclosing span's ID, and buffered in the scope instead of going
// straight to the ring. End(keep=true) flushes the buffered spans into the
// ring; End(keep=false) discards them (tail sampling). Explicit phase
// boundaries use Enter/Exit to become *enclosing* spans whose children are
// whatever was recorded while they were open.
//
// All IDs are deterministic: span IDs come from a per-trace counter, so a
// given schedule of recorded spans yields byte-identical exports at any
// runner parallelism. A nil *TraceScope is inert: Active reports false,
// Enter returns 0, every other method is a no-op.
type TraceScope struct {
	reg     *Registry
	active  bool
	traceID uint64
	nextID  uint64
	stack   []uint64
	buf     []Span
	maxBuf  int
	drops   uint64
}

// NewTraceScope returns an inactive scope buffering at most
// DefaultSpanCapacity spans per trace.
func NewTraceScope() *TraceScope {
	return &TraceScope{maxBuf: DefaultSpanCapacity}
}

// Active reports whether a trace is currently being recorded. This is the
// hot-path gate: nil receiver and inactive scope both answer false in a
// branch or two.
func (ts *TraceScope) Active() bool { return ts != nil && ts.active }

// Begin starts recording a new trace. parent is the span ID of the remote
// caller's enclosing span (0 when the trace starts here); the first
// Enter/Exit pair becomes the local root, linked to that parent.
func (ts *TraceScope) Begin(traceID, parent uint64) {
	if ts == nil {
		return
	}
	ts.active = true
	ts.traceID = traceID
	ts.nextID = 0
	ts.stack = ts.stack[:0]
	ts.buf = ts.buf[:0]
	if parent != 0 {
		ts.stack = append(ts.stack, parent)
	}
}

// Enter opens an enclosing span: spans recorded until the matching Exit
// are its children. Returns the new span's ID (0 when inactive).
func (ts *TraceScope) Enter() uint64 {
	if !ts.Active() {
		return 0
	}
	ts.nextID++
	id := ts.nextID
	ts.stack = append(ts.stack, id)
	return id
}

// Exit closes the innermost open span, emitting it with the given
// category, name and cycle bounds. Calls must pair with Enter.
func (ts *TraceScope) Exit(cat, name string, start, end uint64, tid int) {
	if !ts.Active() || len(ts.stack) == 0 {
		return
	}
	id := ts.stack[len(ts.stack)-1]
	ts.stack = ts.stack[:len(ts.stack)-1]
	parent := uint64(0)
	if len(ts.stack) > 0 {
		parent = ts.stack[len(ts.stack)-1]
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	ts.push(Span{
		Cat: cat, Name: name, Start: start, Dur: dur, Tid: tid,
		TraceID: ts.traceID, SpanID: id, ParentID: parent,
	})
}

// child annotates and buffers a leaf span recorded through the registry
// while the scope is active.
func (ts *TraceScope) child(sp Span) {
	ts.nextID++
	sp.TraceID = ts.traceID
	sp.SpanID = ts.nextID
	if len(ts.stack) > 0 {
		sp.ParentID = ts.stack[len(ts.stack)-1]
	}
	ts.push(sp)
}

func (ts *TraceScope) push(sp Span) {
	if len(ts.buf) >= ts.maxBuf {
		ts.drops++
		return
	}
	ts.buf = append(ts.buf, sp)
}

// End finishes the trace: keep=true flushes the buffered spans into the
// owning registry's ring (in recording order), keep=false discards them.
// Either way the scope deactivates and buffer drops carry over to the
// ring's drop counter, so truncation is never silent.
func (ts *TraceScope) End(keep bool) {
	if ts == nil {
		return
	}
	ts.active = false
	if keep && ts.reg != nil && ts.reg.spans != nil {
		for i := range ts.buf {
			ts.reg.spans.record(ts.buf[i])
		}
		ts.reg.spans.addDrops(ts.drops)
	}
	ts.drops = 0
	ts.buf = ts.buf[:0]
	ts.stack = ts.stack[:0]
}

// MintTraceID derives a deterministic, never-zero trace ID from a caller
// identity hash and a per-caller request counter. The mixing keeps the
// probabilistic tail-sampling decision (hash mod N) well distributed even
// though the inputs are sequential.
func MintTraceID(base, n uint64) uint64 {
	id := mix64(base + n*0x9e3779b97f4a7c15)
	if id == 0 {
		id = 1
	}
	return id
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TailSampler makes the keep/drop decision at trace end, when the outcome
// and total duration are known. Policy, in order:
//
//  1. Error traces are always kept.
//  2. Traces in the slowest decile of durations seen so far (at log2
//     bucket granularity, tracked by a streaming histogram) are kept.
//  3. Otherwise a trace is kept probabilistically, 1 in keepEvery, by
//     hashing the trace ID — deterministic for a given ID.
//
// Every decision increments exactly one of the kept/dropped counters, so
// kept+dropped always equals the number of completed sampled traces and
// dropped work is never silently invisible. The sampler is single-writer
// (the shard owner goroutine); the counters are the usual atomics.
type TailSampler struct {
	keepEvery uint64
	durs      [NumBuckets]uint64
	total     uint64
	kept      *Counter
	dropped   *Counter
}

// NewTailSampler returns a sampler keeping 1 in keepEvery non-slow,
// non-error traces (keepEvery <= 1 keeps everything).
func NewTailSampler(keepEvery uint64, kept, dropped *Counter) *TailSampler {
	if keepEvery < 1 {
		keepEvery = 1
	}
	return &TailSampler{keepEvery: keepEvery, kept: kept, dropped: dropped}
}

// Keep decides whether the finished trace is retained.
func (s *TailSampler) Keep(traceID, dur uint64, isErr bool) bool {
	if s == nil {
		return true
	}
	s.total++
	b := bits.Len64(dur)
	s.durs[b]++
	keep := isErr || s.slowDecile(b) || s.keepEvery <= 1 || mix64(traceID)%s.keepEvery == 0
	if keep {
		s.kept.Inc()
	} else {
		s.dropped.Inc()
	}
	return keep
}

// slowDecile reports whether duration bucket b falls in the slowest ~10%
// of durations observed so far (including the one just recorded).
func (s *TailSampler) slowDecile(b int) bool {
	budget := s.total / 10
	if budget == 0 {
		budget = 1
	}
	var above uint64
	for i := NumBuckets - 1; i >= b; i-- {
		above += s.durs[i]
		if above > budget {
			return false
		}
	}
	return true
}
