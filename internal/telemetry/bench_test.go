package telemetry

import "testing"

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench.hits")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench.lat")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 0xffff)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Span("bench", "op", uint64(i), uint64(i)+10, 0)
	}
}
