package telemetry

import "sync"

// Span is one completed trace span. Timestamps are simulated cycles, so
// spans are fully deterministic across hosts and runner parallelism.
type Span struct {
	// Cat is the span category (chrome://tracing "cat" field): the
	// subsystem that emitted it, e.g. "memctrl", "ott", "kernel",
	// "kvstore", "whisper", "workload", "run".
	Cat string `json:"cat"`
	// Name identifies the operation within the category.
	Name string `json:"name"`
	// Start is the span's start time in simulated cycles.
	Start uint64 `json:"start"`
	// Dur is the span's duration in simulated cycles.
	Dur uint64 `json:"dur"`
	// Tid is the logical thread (simulated core) the span ran on.
	Tid int `json:"tid"`
}

// spanRing is a fixed-capacity overwrite-oldest span buffer. Recording
// into a full ring drops the oldest span — deterministically, since each
// simulation records from a single goroutine in simulation order. The
// mutex makes concurrent use safe (e.g. shared registries in tests); it is
// uncontended in the per-run single-goroutine case.
type spanRing struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	wrapped bool
	drops   uint64
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{buf: make([]Span, capacity)}
}

func (r *spanRing) record(sp Span) {
	r.mu.Lock()
	if r.wrapped {
		r.drops++
	}
	r.buf[r.next] = sp
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// snapshot returns the retained spans oldest-first.
func (r *spanRing) snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
