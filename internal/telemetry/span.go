package telemetry

import "sync"

// Span is one completed trace span. Timestamps are simulated cycles, so
// spans are fully deterministic across hosts and runner parallelism.
type Span struct {
	// Cat is the span category (chrome://tracing "cat" field): the
	// subsystem that emitted it, e.g. "memctrl", "ott", "kernel",
	// "kvstore", "whisper", "workload", "run".
	Cat string `json:"cat"`
	// Name identifies the operation within the category.
	Name string `json:"name"`
	// Start is the span's start time in simulated cycles.
	Start uint64 `json:"start"`
	// Dur is the span's duration in simulated cycles.
	Dur uint64 `json:"dur"`
	// Tid is the logical thread (simulated core) the span ran on.
	Tid int `json:"tid"`

	// TraceID groups the spans of one request (0 for spans recorded
	// outside any request scope). SpanID identifies this span within the
	// trace and ParentID links it to its enclosing span (0 for a trace
	// root), so an exporter can reassemble the request's waterfall. All
	// three are deterministic: trace IDs are minted from tenant identity
	// plus a request counter, span IDs from a per-request counter.
	TraceID  uint64 `json:"trace_id,omitempty"`
	SpanID   uint64 `json:"span_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
}

// spanRing is a fixed-capacity overwrite-oldest span buffer. Recording
// into a full ring drops the oldest span — deterministically, since each
// simulation records from a single goroutine in simulation order. The
// mutex makes concurrent use safe (e.g. shared registries in tests); it is
// uncontended in the per-run single-goroutine case.
type spanRing struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	wrapped bool
	drops   uint64
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{buf: make([]Span, capacity)}
}

func (r *spanRing) record(sp Span) {
	r.mu.Lock()
	if r.wrapped {
		r.drops++
	}
	r.buf[r.next] = sp
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// addDrops charges n externally-dropped spans (e.g. trace-scope buffer
// overflow) to the ring's drop counter.
func (r *spanRing) addDrops(n uint64) {
	if n == 0 {
		return
	}
	r.mu.Lock()
	r.drops += n
	r.mu.Unlock()
}

// snapshot returns the retained spans oldest-first.
func (r *spanRing) snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
