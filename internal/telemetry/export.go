package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName converts an internal dotted metric name ("mc.ott_hits") into a
// Prometheus-legal one ("fsencr_mc_ott_hits").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("fsencr_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (v0.0.4): counters, gauges, and histograms with cumulative
// le-labelled buckets. Output is fully sorted, so identical snapshots
// render byte-identically.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writePromHistogram(w, promName(name), s.Histograms[name]); err != nil {
			return err
		}
	}
	// Span-ring overwrites are exported unconditionally: a scraper alerting
	// on trace loss needs the series to exist while it is still zero.
	if _, err := fmt.Fprintf(w, "# TYPE fsencr_span_drops_total counter\nfsencr_span_drops_total %d\n", s.SpanDrops); err != nil {
		return err
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, h *HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	// Emit cumulative buckets up to the last non-empty one; everything
	// above collapses into +Inf. The final finite bound is always emitted
	// even when empty so the series parses with at least one bucket.
	last := 0
	for i, c := range h.Buckets {
		if c > 0 {
			last = i
		}
	}
	if last >= NumBuckets-1 {
		last = NumBuckets - 2
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, BucketBound(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
		return err
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON. Map keys are sorted by
// encoding/json, so identical snapshots render byte-identically.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Ts   uint64 `json:"ts"`
	Dur  uint64 `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	// Args carries request-trace linkage (trace/span/parent IDs in hex)
	// for spans recorded inside a TraceScope; absent otherwise.
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the snapshot's spans as a Chrome trace-event
// JSON document. Simulated cycles map 1:1 onto trace microseconds (the
// viewer's native unit), so span durations read directly as cycles.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	tr := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(s.Spans)), DisplayTimeUnit: "ns"}
	for _, sp := range s.Spans {
		dur := sp.Dur
		if dur == 0 {
			dur = 1 // zero-width events vanish in the viewer
		}
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			Ts: sp.Start, Dur: dur, Pid: 1, Tid: sp.Tid,
		}
		if sp.TraceID != 0 {
			ev.Args = map[string]string{
				"trace":  fmt.Sprintf("%016x", sp.TraceID),
				"span":   fmt.Sprintf("%x", sp.SpanID),
				"parent": fmt.Sprintf("%x", sp.ParentID),
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	buf, err := json.MarshalIndent(tr, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
