package telemetry

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("a.depth")
	g.Set(7)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	h := r.Histogram("a.lat")
	for _, v := range []uint64{0, 1, 2, 3, 100, 1 << 40} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("hist count = %d, want 6", got)
	}
	s := r.Snapshot()
	hs := s.Histograms["a.lat"]
	if hs.Sum != 0+1+2+3+100+(1<<40) {
		t.Fatalf("hist sum = %d", hs.Sum)
	}
	if hs.Max != 1<<40 {
		t.Fatalf("hist max = %d", hs.Max)
	}
	// v=0 → bucket 0; v=1 → bucket 1; v=2,3 → bucket 2; v=100 → bucket 7.
	if hs.Buckets[0] != 1 || hs.Buckets[1] != 1 || hs.Buckets[2] != 2 || hs.Buckets[7] != 1 || hs.Buckets[41] != 1 {
		t.Fatalf("bucket layout wrong: %v", hs.Buckets)
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return the same counter")
	}
	if r.Histogram("y") != r.Histogram("y") {
		t.Fatal("same name must return the same histogram")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay 0")
	}
	g := r.Gauge("y")
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay 0")
	}
	h := r.Histogram("z")
	h.Observe(9)
	if h.Count() != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	r.Span("cat", "name", 0, 10, 0)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Spans) != 0 || s.Runs != 1 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestBucketBound(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: ^uint64(0), 70: ^uint64(0)}
	for i, want := range cases {
		if got := BucketBound(i); got != want {
			t.Fatalf("BucketBound(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestSpanRingOverwritesOldest(t *testing.T) {
	r := NewWithSpanCapacity(3)
	for i := 0; i < 5; i++ {
		start := uint64(i * 10)
		r.Span("c", "s"+strconv.Itoa(i), start, start+5, 0)
	}
	s := r.Snapshot()
	if len(s.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(s.Spans))
	}
	if s.SpanDrops != 2 {
		t.Fatalf("drops = %d, want 2", s.SpanDrops)
	}
	// Oldest-first: s2, s3, s4 survive.
	for i, want := range []string{"s2", "s3", "s4"} {
		if s.Spans[i].Name != want {
			t.Fatalf("span[%d] = %q, want %q", i, s.Spans[i].Name, want)
		}
	}
}

func TestMergeDeterministic(t *testing.T) {
	mk := func(seed uint64) *Snapshot {
		r := New()
		r.Counter("hits").Add(seed)
		r.Histogram("lat").Observe(seed * 3)
		r.Span("run", "r", seed, seed+10, int(seed))
		return r.Snapshot()
	}
	parts := []*Snapshot{mk(1), mk(2), mk(3), mk(4)}

	merge := func() []byte {
		agg := NewSnapshot()
		for _, p := range parts {
			agg.Merge(p)
		}
		var buf bytes.Buffer
		if err := agg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := merge(), merge()
	if !bytes.Equal(a, b) {
		t.Fatal("merging the same snapshots in the same order must be byte-identical")
	}

	agg := NewSnapshot()
	for _, p := range parts {
		agg.Merge(p)
	}
	if agg.Counters["hits"] != 10 {
		t.Fatalf("merged counter = %d, want 10", agg.Counters["hits"])
	}
	if agg.Histograms["lat"].Count != 4 || agg.Histograms["lat"].Sum != 30 {
		t.Fatalf("merged hist = %+v", agg.Histograms["lat"])
	}
	if agg.Runs != 4 {
		t.Fatalf("runs = %d, want 4", agg.Runs)
	}
	if len(agg.Spans) != 4 || agg.Spans[0].Start != 1 || agg.Spans[3].Start != 4 {
		t.Fatalf("spans not concatenated in merge order: %+v", agg.Spans)
	}
}

func TestAddCounters(t *testing.T) {
	s := NewSnapshot()
	s.Counters["a"] = 1
	s.AddCounters(map[string]uint64{"a": 2, "b": 5})
	if s.Counters["a"] != 3 || s.Counters["b"] != 5 {
		t.Fatalf("AddCounters wrong: %v", s.Counters)
	}
}

// TestWritePrometheus checks the text exposition output is well formed:
// every histogram has monotonically non-decreasing cumulative buckets
// ending in +Inf == count, and all series names carry the fsencr_ prefix.
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("mc.ott_hits").Add(12)
	r.Gauge("ott.occupancy").Set(3)
	h := r.Histogram("kvstore.put_cycles")
	for _, v := range []uint64{1, 2, 4, 9, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, want := range []string{
		"# TYPE fsencr_mc_ott_hits counter",
		"fsencr_mc_ott_hits 12",
		"# TYPE fsencr_ott_occupancy gauge",
		"fsencr_ott_occupancy 3",
		"# TYPE fsencr_kvstore_put_cycles histogram",
		`fsencr_kvstore_put_cycles_bucket{le="+Inf"} 5`,
		"fsencr_kvstore_put_cycles_sum 116",
		"fsencr_kvstore_put_cycles_count 5",
		// Span-ring loss is always exported, even at zero, so scrapers can
		// alert on it becoming nonzero.
		"# TYPE fsencr_span_drops_total counter",
		"fsencr_span_drops_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	// Parse every bucket line: le bounds strictly increasing, cumulative
	// counts non-decreasing.
	var prevLe, prevCum uint64
	var first = true
	var buckets int
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "fsencr_kvstore_put_cycles_bucket{le=\"") {
			continue
		}
		buckets++
		rest := strings.TrimPrefix(line, "fsencr_kvstore_put_cycles_bucket{le=\"")
		i := strings.Index(rest, "\"} ")
		if i < 0 {
			t.Fatalf("malformed bucket line %q", line)
		}
		leStr, cntStr := rest[:i], rest[i+3:]
		cum, err := strconv.ParseUint(cntStr, 10, 64)
		if err != nil {
			t.Fatalf("bad bucket count in %q: %v", line, err)
		}
		if leStr != "+Inf" {
			le, err := strconv.ParseUint(leStr, 10, 64)
			if err != nil {
				t.Fatalf("bad le bound in %q: %v", line, err)
			}
			if !first && le <= prevLe {
				t.Fatalf("le bounds not increasing at %q", line)
			}
			prevLe = le
		}
		if cum < prevCum {
			t.Fatalf("cumulative count decreased at %q", line)
		}
		prevCum = cum
		first = false
	}
	if buckets < 2 {
		t.Fatalf("expected multiple bucket lines, got %d", buckets)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New()
	r.Span("memctrl", "reencrypt", 100, 250, 0)
	r.Span("kernel", "page_fault", 10, 30, 1)
	r.Span("kvstore", "put", 40, 90, 1)
	r.Span("run", "fillrandom-s", 0, 1000, 0)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	cats := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
		if ev.Dur == 0 {
			t.Fatal("complete events must have nonzero dur")
		}
		cats[ev.Cat] = true
	}
	if len(cats) != 4 {
		t.Fatalf("got %d categories, want 4: %v", len(cats), cats)
	}
}

func TestWithoutSpans(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	r.Span("x", "y", 0, 5, 0)
	s := r.Snapshot()
	ws := s.WithoutSpans()
	if len(ws.Spans) != 0 || ws.SpanDrops != 0 {
		t.Fatal("WithoutSpans must drop spans")
	}
	if ws.Counters["c"] != 1 {
		t.Fatal("WithoutSpans must keep metrics")
	}
	if len(s.Spans) != 1 {
		t.Fatal("original snapshot must be untouched")
	}
}

func TestSpanCategories(t *testing.T) {
	r := New()
	r.Span("b", "1", 0, 1, 0)
	r.Span("a", "2", 0, 1, 0)
	r.Span("b", "3", 0, 1, 0)
	got := r.Snapshot().SpanCategories()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SpanCategories = %v", got)
	}
}
