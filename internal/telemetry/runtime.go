package telemetry

import "runtime"

// AddRuntimeGauges merges current Go runtime statistics — goroutine count,
// heap occupancy, GC activity — into the snapshot's gauges and returns it.
// These are host-process observations, deliberately kept out of the
// deterministic simulated-cycle registries: callers add them only to
// serving-time copies (the live /metrics endpoint), never to snapshots
// whose byte-identity across runs matters.
func (s *Snapshot) AddRuntimeGauges() *Snapshot {
	if s.Gauges == nil {
		s.Gauges = make(map[string]uint64)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.Gauges["runtime.goroutines"] = uint64(runtime.NumGoroutine())
	s.Gauges["runtime.heap_alloc_bytes"] = ms.HeapAlloc
	s.Gauges["runtime.heap_sys_bytes"] = ms.HeapSys
	s.Gauges["runtime.heap_objects"] = ms.HeapObjects
	s.Gauges["runtime.gc_runs"] = uint64(ms.NumGC)
	s.Gauges["runtime.gc_pause_total_ns"] = ms.PauseTotalNs
	return s
}
