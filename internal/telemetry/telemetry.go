// Package telemetry is the cross-layer observability subsystem of the
// simulator: a registry of zero-allocation, atomics-based counters, gauges
// and log-bucketed histograms, plus a lightweight span tracer backed by a
// fixed-size ring buffer.
//
// Design constraints, in order:
//
//   - The hot path must be cheap. A live counter increment is one atomic
//     add on a pre-resolved pointer (no map lookup, no lock, no
//     allocation); a histogram observation is a bits.Len64 plus three
//     atomic adds. Both stay well under the 20 ns/event budget.
//   - The subsystem must compile out. Every metric handle is nil-safe: an
//     uninstrumented component carries nil *Counter/*Histogram fields and
//     pays exactly one predictable branch per event. A nil *Registry is
//     the no-op recorder — all its methods work and record nothing — so
//     instrumented code never checks whether telemetry is enabled.
//   - Aggregation must be deterministic. Every value recorded is derived
//     from simulated cycles, never host time, and Snapshot/Merge are
//     order-stable, so merging per-run registries in request order yields
//     byte-identical exports regardless of runner parallelism.
//
// Components obtain handles once, at construction or Instrument() time,
// and hold the raw pointers on their hot paths. The experiment harness
// snapshots each run's registry after the run and merges snapshots in
// batch input order (see internal/core).
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric (table occupancy, queue depth). A nil Gauge
// is a no-op.
type Gauge struct{ v atomic.Uint64 }

// Set records the current value.
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last value set (0 for a nil Gauge).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the histogram bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. bucket 0 holds v == 0 and bucket i >= 1
// holds 2^(i-1) <= v < 2^i. Log bucketing keeps the structure fixed-size
// and allocation-free for any value range.
const NumBuckets = 65

// Histogram is a log2-bucketed distribution. The zero value is ready to
// use; a nil Histogram is a no-op. The observation count is not stored
// separately — it is the sum of the buckets, computed at snapshot time —
// and the max is maintained load/compare/store rather than CAS: each run's
// registry has a single writer (the simulation goroutine), so the relaxed
// update can never lose a value there, and both halves are still atomic.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	if v > h.max.Load() {
		h.max.Store(v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// DefaultSpanCapacity is the span ring size of a fresh registry: large
// enough for a useful chrome://tracing view of one run, small enough that
// a per-run registry stays a fixed, modest allocation.
const DefaultSpanCapacity = 4096

// Registry holds the named metrics and the span ring of one simulation.
// Handle resolution (Counter/Gauge/Histogram) takes a mutex and may
// allocate; it is meant for construction/Instrument time only. The handles
// themselves are lock-free. A nil *Registry is the no-op recorder: all
// methods are safe and record nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    *spanRing
	// scope, when attached, intercepts Span calls while a request trace
	// is active (see TraceScope). Set once before components Instrument
	// and never reassigned, so cached Scope() pointers stay valid.
	scope *TraceScope
}

// New returns an empty registry with the default span capacity.
func New() *Registry { return NewWithSpanCapacity(DefaultSpanCapacity) }

// NewWithSpanCapacity returns an empty registry whose span ring holds up
// to cap spans (cap <= 0 disables span recording entirely).
func NewWithSpanCapacity(cap int) *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	if cap > 0 {
		r.spans = newSpanRing(cap)
	}
	return r
}

// Counter returns (creating if needed) the counter with the given name.
// Returns nil — the no-op counter — on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AttachTraceScope binds a request-trace scope to the registry: while the
// scope is active, Span calls are annotated with trace/span/parent IDs and
// buffered in the scope for the tail-sampling decision instead of going
// straight to the ring. Attach before components Instrument — they cache
// the scope pointer (via Scope) once, and the pointer must stay stable.
func (r *Registry) AttachTraceScope(ts *TraceScope) {
	if r == nil || ts == nil {
		return
	}
	ts.reg = r
	r.scope = ts
}

// Scope returns the attached trace scope (nil when none — and a nil
// *TraceScope is inert, so components cache it unconditionally).
func (r *Registry) Scope() *TraceScope {
	if r == nil {
		return nil
	}
	return r.scope
}

// Span records one completed span. Cat groups spans into chrome://tracing
// categories ("memctrl", "ott", "kernel", "kvstore", ...); start and end
// are simulated cycles; tid is a logical thread (core) id. No-op on a nil
// registry or when the ring is disabled. While an attached trace scope is
// active the span is routed through it — annotated with trace IDs and
// buffered until the trace's keep/drop decision.
func (r *Registry) Span(cat, name string, start, end uint64, tid int) {
	if r == nil || r.spans == nil {
		return
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	sp := Span{Cat: cat, Name: name, Start: start, Dur: dur, Tid: tid}
	if ts := r.scope; ts.Active() {
		ts.child(sp)
		return
	}
	r.spans.record(sp)
}

// Snapshot captures the registry's current state as a plain value suitable
// for merging and export. Metric names are not interpreted; ordering is
// imposed at export time, so two registries that recorded the same events
// snapshot identically.
func (r *Registry) Snapshot() *Snapshot {
	s := NewSnapshot()
	s.Runs = 1
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHistogram(h)
	}
	if r.spans != nil {
		s.Spans = r.spans.snapshot()
		s.SpanDrops = r.spans.drops
	}
	return s
}

func snapshotHistogram(h *Histogram) *HistogramSnapshot {
	hs := &HistogramSnapshot{
		Sum: h.sum.Load(),
		Max: h.max.Load(),
	}
	hs.Buckets = make([]uint64, NumBuckets)
	for i := range h.buckets {
		hs.Buckets[i] = h.buckets[i].Load()
		hs.Count += hs.Buckets[i]
	}
	return hs
}

// MetricNames returns the sorted names of all registered metrics (for
// tests and debugging).
func (r *Registry) MetricNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
