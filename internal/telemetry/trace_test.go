package telemetry

import "testing"

// TestNilTraceScopeIsInert pins the hot-path contract: a nil scope (the
// uninstrumented configuration every component caches) answers false and
// no-ops everywhere.
func TestNilTraceScopeIsInert(t *testing.T) {
	var ts *TraceScope
	if ts.Active() {
		t.Fatal("nil scope reports active")
	}
	ts.Begin(1, 0)
	if id := ts.Enter(); id != 0 {
		t.Fatalf("nil scope Enter returned %d", id)
	}
	ts.Exit("x", "y", 0, 1, 0)
	ts.End(true)
}

// TestTraceScopeLinkage drives one trace through a registry and checks the
// parent/child structure: the explicit Enter/Exit pair is the root, spans
// recorded through Registry.Span while it is open are its children, and a
// nested Enter/Exit hangs off the root with its own children.
func TestTraceScopeLinkage(t *testing.T) {
	reg := New()
	ts := NewTraceScope()
	reg.AttachTraceScope(ts)

	ts.Begin(42, 0)
	root := ts.Enter()
	reg.Span("kernel", "leaf-under-root", 10, 20, 0)
	inner := ts.Enter()
	reg.Span("pcm", "leaf-under-inner", 12, 18, 0)
	ts.Exit("memctrl", "inner", 11, 19, 0)
	ts.Exit("request", "root", 10, 30, 0)
	ts.End(true)

	spans := reg.Snapshot().Spans
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	byName := make(map[string]Span)
	ids := make(map[uint64]bool)
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.TraceID != 42 {
			t.Errorf("span %q trace_id %d, want 42", sp.Name, sp.TraceID)
		}
		if sp.SpanID == 0 || ids[sp.SpanID] {
			t.Errorf("span %q id %d not unique and nonzero", sp.Name, sp.SpanID)
		}
		ids[sp.SpanID] = true
	}
	if got := byName["root"]; got.SpanID != root || got.ParentID != 0 {
		t.Errorf("root span = %+v, want id %d parent 0", got, root)
	}
	if got := byName["leaf-under-root"]; got.ParentID != root {
		t.Errorf("leaf-under-root parent %d, want %d", got.ParentID, root)
	}
	if got := byName["inner"]; got.SpanID != inner || got.ParentID != root {
		t.Errorf("inner span = %+v, want id %d parent %d", got, inner, root)
	}
	if got := byName["leaf-under-inner"]; got.ParentID != inner {
		t.Errorf("leaf-under-inner parent %d, want %d", got.ParentID, inner)
	}
}

// TestTraceScopeRemoteParent checks that a nonzero Begin parent becomes the
// local root's ParentID — the cross-process link a client span ID rides in
// on — and that End(keep=false) discards the buffer.
func TestTraceScopeRemoteParent(t *testing.T) {
	reg := New()
	ts := NewTraceScope()
	reg.AttachTraceScope(ts)

	ts.Begin(7, 99)
	ts.Enter()
	ts.Exit("request", "root", 0, 5, 0)
	ts.End(true)
	spans := reg.Snapshot().Spans
	if len(spans) != 1 || spans[0].ParentID != 99 {
		t.Fatalf("remote-parent root = %+v, want ParentID 99", spans)
	}

	ts.Begin(8, 0)
	ts.Enter()
	reg.Span("kernel", "dropped", 0, 1, 0)
	ts.Exit("request", "dropped-root", 0, 2, 0)
	ts.End(false)
	if got := len(reg.Snapshot().Spans); got != 1 {
		t.Fatalf("discarded trace leaked spans into the ring: %d retained", got)
	}
}

// TestTraceScopeOverflowCountsDrops pins the no-silent-truncation rule: a
// trace recording more spans than the scope buffers surfaces the excess in
// the snapshot's SpanDrops.
func TestTraceScopeOverflowCountsDrops(t *testing.T) {
	reg := New()
	ts := NewTraceScope()
	reg.AttachTraceScope(ts)

	ts.Begin(3, 0)
	ts.Enter()
	for i := 0; i < DefaultSpanCapacity+10; i++ {
		reg.Span("kernel", "leaf", uint64(i), uint64(i+1), 0)
	}
	ts.Exit("request", "root", 0, 1, 0)
	ts.End(true)
	snap := reg.Snapshot()
	if snap.SpanDrops < 10 {
		t.Fatalf("span drops %d, want >= 10 (buffer overflow must be counted)", snap.SpanDrops)
	}
}

// TestTailSamplerProperties drives the sampler with a deterministic
// pseudo-random workload and pins its two invariants: error traces are
// never dropped, and every decision lands in exactly one of the kept or
// dropped counters (kept + dropped == total).
func TestTailSamplerProperties(t *testing.T) {
	reg := New()
	kept := reg.Counter("trace.kept_total")
	dropped := reg.Counter("trace.dropped_total")
	s := NewTailSampler(8, kept, dropped)

	const n = 10000
	rng := uint64(0x2545F4914F6CDD1D)
	var erred, keptErrs uint64
	for i := 0; i < n; i++ {
		rng = mix64(rng + uint64(i))
		dur := rng % (1 << (rng % 24)) // spread across many log2 buckets
		isErr := rng%37 == 0
		keep := s.Keep(MintTraceID(rng, uint64(i)), dur, isErr)
		if isErr {
			erred++
			if !keep {
				t.Fatalf("error trace %d dropped (dur %d)", i, dur)
			}
			keptErrs++
		}
	}
	if erred == 0 {
		t.Fatal("workload produced no error traces; invariant untested")
	}
	if got := kept.Value() + dropped.Value(); got != n {
		t.Fatalf("kept %d + dropped %d = %d, want %d (every decision must be counted)",
			kept.Value(), dropped.Value(), got, n)
	}
	if dropped.Value() == 0 {
		t.Fatal("sampler dropped nothing at keepEvery=8; probabilistic path untested")
	}
	if kept.Value() < keptErrs {
		t.Fatalf("kept %d < error traces %d", kept.Value(), keptErrs)
	}
}

// TestTailSamplerKeepsSlowDecile checks the latency-tail guarantee: after a
// steady diet of fast traces, a much slower one is retained even when its
// trace ID hashes to "drop".
func TestTailSamplerKeepsSlowDecile(t *testing.T) {
	s := NewTailSampler(1<<60, nil, nil) // probabilistic path ~never keeps
	for i := 0; i < 1000; i++ {
		s.Keep(uint64(i+1), 100, false)
	}
	if !s.Keep(12345, 1<<40, false) {
		t.Fatal("slowest-decile trace was dropped")
	}
	// And the fast majority is not retained by the decile rule.
	if s.Keep(54321, 100, false) {
		t.Fatal("fast trace kept despite drop-everything sampler; decile rule too loose")
	}
}

// TestMintTraceIDDeterministicNonzero pins the client-side ID contract.
func TestMintTraceIDDeterministicNonzero(t *testing.T) {
	if MintTraceID(1, 2) != MintTraceID(1, 2) {
		t.Fatal("MintTraceID not deterministic")
	}
	if MintTraceID(1, 2) == MintTraceID(1, 3) {
		t.Fatal("adjacent requests collided")
	}
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 4096; i++ {
		id := MintTraceID(0, i)
		if id == 0 {
			t.Fatal("zero trace ID minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID at n=%d", i)
		}
		seen[id] = true
	}
}
