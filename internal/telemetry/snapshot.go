package telemetry

import "sort"

// HistogramSnapshot is the frozen state of one histogram: the full
// log2-bucket vector plus count/sum/max. Buckets always has NumBuckets
// entries so merges are position-wise.
type HistogramSnapshot struct {
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
}

// Mean returns the mean observation, or 0 if empty.
func (h *HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the bucket
// holding the target rank and interpolating linearly within its value
// range. Log2 buckets bound the relative error at 2x; the top occupied
// bucket is additionally clamped by the recorded Max, which tightens the
// common p99/p999 case. Returns 0 for an empty histogram or nil receiver.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count-1)
	var cum uint64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) > rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := float64(BucketBound(i))
			if h.Max > 0 && float64(h.Max) < hi {
				hi = float64(h.Max)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(h.Max)
}

// Snapshot is the frozen, mergeable state of one registry (or of a merged
// set of registries). It is a plain value: JSON-marshalling it is
// deterministic (encoding/json sorts map keys), which the harness relies
// on for byte-identical exports at any runner parallelism.
type Snapshot struct {
	Counters   map[string]uint64             `json:"counters"`
	Gauges     map[string]uint64             `json:"gauges,omitempty"`
	Histograms map[string]*HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []Span                        `json:"spans,omitempty"`
	// SpanDrops counts spans overwritten in ring buffers; nonzero means
	// Spans is the most recent window, not the complete trace.
	SpanDrops uint64 `json:"span_drops,omitempty"`
	// Runs counts how many per-run snapshots were merged in (1 for a
	// fresh snapshot of a single registry).
	Runs uint64 `json:"runs"`
}

// NewSnapshot returns an empty snapshot ready to merge into.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]uint64),
		Histograms: make(map[string]*HistogramSnapshot),
	}
}

// Merge folds o into s: counters, histogram buckets and span-drop counts
// add; gauges sum (they are per-run occupancy readings, so the aggregate
// reads as a total across runs); spans concatenate in call order. Merging
// the same snapshots in the same order always yields the same result,
// which is what makes parallel sweeps reproducible: the harness merges in
// batch input order, not completion order.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	for name, oh := range o.Histograms {
		sh, ok := s.Histograms[name]
		if !ok {
			sh = &HistogramSnapshot{Buckets: make([]uint64, NumBuckets)}
			s.Histograms[name] = sh
		}
		for i, c := range oh.Buckets {
			sh.Buckets[i] += c
		}
		sh.Count += oh.Count
		sh.Sum += oh.Sum
		if oh.Max > sh.Max {
			sh.Max = oh.Max
		}
	}
	s.Spans = append(s.Spans, o.Spans...)
	s.SpanDrops += o.SpanDrops
	runs := o.Runs
	if runs == 0 {
		runs = 1
	}
	s.Runs += runs
}

// AddCounters folds a plain name->value map (e.g. a stats.Set snapshot)
// into the snapshot's counters, so the legacy counter registry and the
// telemetry-native metrics export through one pipe.
func (s *Snapshot) AddCounters(m map[string]uint64) {
	for name, v := range m {
		s.Counters[name] += v
	}
}

// Diff returns what changed from prev to cur: counter and histogram deltas
// (monotonic series; a shrinking value means the sink was reset, and the
// delta clamps to the new absolute value), gauges at their current level
// (they are occupancy readings, not rates). Spans are omitted — the live
// plane serves the full trace separately. Either argument may be nil; a nil
// prev makes the diff equal cur's absolute state.
func Diff(prev, cur *Snapshot) *Snapshot {
	d := NewSnapshot()
	if cur == nil {
		return d
	}
	if prev == nil {
		prev = NewSnapshot()
	}
	for name, v := range cur.Counters {
		if p := prev.Counters[name]; p <= v {
			v -= p
		}
		d.Counters[name] = v
	}
	for name, v := range cur.Gauges {
		d.Gauges[name] = v
	}
	for name, ch := range cur.Histograms {
		ph := prev.Histograms[name]
		if ph == nil || ph.Count > ch.Count {
			ph = &HistogramSnapshot{Buckets: make([]uint64, NumBuckets)}
		}
		dh := &HistogramSnapshot{
			Buckets: make([]uint64, NumBuckets),
			Count:   ch.Count - ph.Count,
			Sum:     ch.Sum - ph.Sum,
			Max:     ch.Max,
		}
		for i, c := range ch.Buckets {
			dh.Buckets[i] = c - ph.Buckets[i]
		}
		d.Histograms[name] = dh
	}
	if prev.SpanDrops <= cur.SpanDrops {
		d.SpanDrops = cur.SpanDrops - prev.SpanDrops
	}
	if prev.Runs <= cur.Runs {
		d.Runs = cur.Runs - prev.Runs
	}
	return d
}

// WithoutSpans returns a shallow copy sharing the metric maps but carrying
// no spans — the shape the bench harness writes per-figure, where traces
// would dominate the file size.
func (s *Snapshot) WithoutSpans() *Snapshot {
	c := *s
	c.Spans = nil
	c.SpanDrops = 0
	return &c
}

// SpanCategories returns the distinct span categories present, sorted.
func (s *Snapshot) SpanCategories() []string {
	seen := make(map[string]bool)
	for _, sp := range s.Spans {
		seen[sp.Cat] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
