package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"fsencr/internal/fsproto"
)

// Migration persist points, in order. The coordinator calls its StepHook
// (when set) after each one — the chaos campaign kills the source or the
// target node exactly there and asserts the fabric either completes the
// migration or rolls it back cleanly, with no split-brain.
const (
	StepAfterFreeze  = "after-freeze"
	StepAfterExport  = "after-export"
	StepAfterInstall = "after-install"
	StepAfterCommit  = "after-commit"
)

// MigrationSteps lists the persist points in order (chaos campaigns
// iterate them).
var MigrationSteps = []string{StepAfterFreeze, StepAfterExport, StepAfterInstall, StepAfterCommit}

// Coordinator owns the placement table and orchestrates ownership
// changes. One per cluster; nodes join it, clients fetch routes from it.
type Coordinator struct {
	nShards int
	hc      *http.Client

	// StepHook, when set, runs after each migration persist point with the
	// step name and the migrating shard. Chaos tests use it to kill nodes
	// mid-migration; it must be set before any Migrate call.
	StepHook func(step string, shard int)

	mu      sync.Mutex
	table   fsproto.ClusterTable
	members []string
}

// NewCoordinator creates the routing authority for a fixed global shard
// count (the ShardIndex modulus; it never changes for the cluster's life).
func NewCoordinator(nShards int) *Coordinator {
	return &Coordinator{
		nShards: nShards,
		hc:      &http.Client{Timeout: 30 * time.Second},
		table: fsproto.ClusterTable{
			NShards:    nShards,
			Placements: make([]fsproto.Placement, nShards),
		},
	}
}

// Mux returns the coordinator's route set.
func (c *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/join", c.handleJoin)
	mux.HandleFunc("/cluster/table", c.handleTable)
	mux.HandleFunc("/cluster/migrate", c.handleMigrate)
	mux.HandleFunc("/cluster/replicate", c.handleReplicate)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { writeJSON(w, struct{}{}) })
	return mux
}

// Table returns a copy of the current placement table.
func (c *Coordinator) Table() fsproto.ClusterTable {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Coordinator) snapshotLocked() fsproto.ClusterTable {
	t := c.table
	t.Placements = make([]fsproto.Placement, len(c.table.Placements))
	copy(t.Placements, c.table.Placements)
	for i := range t.Placements {
		t.Placements[i].Replicas = append([]string(nil), c.table.Placements[i].Replicas...)
	}
	return t
}

type joinReq struct {
	Node string `json:"node"`
	// Empty marks a joiner that booted owning no shards (it receives them
	// by migration) — it can never seed the placement table.
	Empty bool `json:"empty"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinReq
	if err := jsonDecode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t, err := c.Join(req.Node, req.Empty)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, t)
}

func (c *Coordinator) handleTable(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Table())
}

type migrateReq struct {
	Shard int    `json:"shard"`
	To    string `json:"to"`
}

func (c *Coordinator) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req migrateReq
	if err := jsonDecode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Migrate(req.Shard, req.To); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, c.Table())
}

type replicateReq struct {
	Shard int    `json:"shard"`
	On    string `json:"on"`
}

func (c *Coordinator) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var req replicateReq
	if err := jsonDecode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Replicate(req.Shard, req.On); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, c.Table())
}

// Join admits a node. The first non-empty joiner (which boots owning
// every shard, the default server configuration) seeds the placement
// table as the owner of all of them at epoch 1; empty joiners (booted
// with OwnedShards: [], -empty on the CLI) are members only and receive
// shards by migration. A second non-empty joiner is refused — two nodes
// that both locally own every shard is split-brain by construction —
// unless the table already places shards on it (a rejoin after restart).
// The new table is pushed to every member and returned.
func (c *Coordinator) Join(node string, empty bool) (fsproto.ClusterTable, error) {
	if node == "" {
		return fsproto.ClusterTable{}, fmt.Errorf("cluster: join needs a node base URL")
	}
	c.mu.Lock()
	if !empty && c.table.Epoch > 0 {
		rejoin := false
		for _, p := range c.table.Placements {
			if p.Node == node {
				rejoin = true
			}
		}
		if !rejoin {
			c.mu.Unlock()
			return fsproto.ClusterTable{}, fmt.Errorf(
				"cluster: placement already seeded; boot %s with no owned shards (-empty)", node)
		}
	}
	dup := false
	for _, m := range c.members {
		if m == node {
			dup = true
		}
	}
	if !dup {
		c.members = append(c.members, node)
	}
	if !empty && c.table.Epoch == 0 {
		c.table.Epoch = 1
		for i := range c.table.Placements {
			c.table.Placements[i] = fsproto.Placement{Shard: i, Node: node, Epoch: 1}
		}
	}
	t := c.snapshotLocked()
	c.mu.Unlock()
	c.push(t)
	return t, nil
}

// push sends the table to every member (best effort: a member that just
// died learns the epoch when it rejoins).
func (c *Coordinator) push(t fsproto.ClusterTable) {
	c.mu.Lock()
	members := append([]string(nil), c.members...)
	c.mu.Unlock()
	for _, m := range members {
		_ = postJSON(c.hc, m+"/fabric/table", t, nil)
	}
}

func (c *Coordinator) step(name string, shard int) {
	if c.StepHook != nil {
		c.StepHook(name, shard)
	}
}

// owner returns the current owner of shard.
func (c *Coordinator) owner(shard int) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.table.Placements) {
		return "", fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, len(c.table.Placements))
	}
	p := c.table.Placements[shard]
	if p.Epoch == 0 || p.Node == "" {
		return "", fmt.Errorf("cluster: shard %d is unplaced", shard)
	}
	return p.Node, nil
}

// Migrate moves shard live from its current owner to node `to`:
// freeze -> export -> install -> commit, with the new epoch published
// only after the target proved the replayed state (Merkle root + full
// image equality + the Osiris recovery gate, enforced by InstallShard).
//
// Failure handling keeps exactly one serving owner at every point:
//
//   - failure before install: roll back — resume the source, table
//     unchanged.
//   - target dead at install, or unhealthy before commit: roll back.
//   - source dead after a successful install: complete the migration (a
//     dead source cannot serve, so cutover loses nothing and
//     split-brain is impossible).
func (c *Coordinator) Migrate(shard int, to string) error {
	src, err := c.owner(shard)
	if err != nil {
		return err
	}
	if src == to {
		return fmt.Errorf("cluster: shard %d already lives on %s", shard, to)
	}
	if err := postJSON(c.hc, src+"/fabric/freeze", shardReq{Shard: shard}, nil); err != nil {
		return fmt.Errorf("freeze on %s: %w", src, err)
	}
	c.step(StepAfterFreeze, shard)

	state, err := postRaw(c.hc, src+"/fabric/export", mustJSON(shardReq{Shard: shard}))
	if err != nil {
		// The source died (or failed) holding the freeze; nothing was
		// installed anywhere, so the table stays put. If the source is
		// alive, release the hold.
		_ = postJSON(c.hc, src+"/fabric/resume", shardReq{Shard: shard}, nil)
		return fmt.Errorf("export on %s: %w", src, err)
	}
	c.step(StepAfterExport, shard)

	if _, err := postRaw(c.hc, to+"/fabric/install", state); err != nil {
		_ = postJSON(c.hc, src+"/fabric/resume", shardReq{Shard: shard}, nil)
		return fmt.Errorf("install on %s: %w", to, err)
	}
	c.step(StepAfterInstall, shard)

	// Point of no return is the table bump; require a live, installed
	// target first. If the target died right after installing, roll back.
	if !healthy(c.hc, to) {
		_ = postJSON(c.hc, src+"/fabric/resume", shardReq{Shard: shard}, nil)
		_ = postJSON(c.hc, to+"/fabric/discard", shardReq{Shard: shard}, nil)
		return fmt.Errorf("cluster: target %s unhealthy after install; rolled back", to)
	}

	c.mu.Lock()
	c.table.Epoch++
	epoch := c.table.Epoch
	c.table.Placements[shard] = fsproto.Placement{Shard: shard, Node: to, Epoch: epoch,
		Replicas: c.table.Placements[shard].Replicas}
	t := c.snapshotLocked()
	c.mu.Unlock()

	// Retire the source. A dead source is fine — it cannot serve, so the
	// cutover is safe regardless; the error is recorded in the returned
	// table push semantics, not fatal.
	_ = postJSON(c.hc, src+"/fabric/commit", shardReq{Shard: shard, Epoch: epoch}, nil)
	c.push(t)
	c.step(StepAfterCommit, shard)
	return nil
}

// Replicate starts an admission-log replica of shard on node `on` and
// records it in the table.
func (c *Coordinator) Replicate(shard int, on string) error {
	src, err := c.owner(shard)
	if err != nil {
		return err
	}
	if src == on {
		return fmt.Errorf("cluster: %s already owns shard %d", on, shard)
	}
	if err := postJSON(c.hc, on+"/fabric/replica/start", shardReq{Shard: shard, Source: src}, nil); err != nil {
		return err
	}
	c.mu.Lock()
	p := &c.table.Placements[shard]
	has := false
	for _, r := range p.Replicas {
		if r == on {
			has = true
		}
	}
	if !has {
		p.Replicas = append(p.Replicas, on)
	}
	t := c.snapshotLocked()
	c.mu.Unlock()
	c.push(t)
	return nil
}

// Failover promotes a replica of shard to owner — the recovery path when
// the owner died. The first healthy replica wins; the table bumps to a
// new epoch and is pushed to the surviving members.
func (c *Coordinator) Failover(shard int) error {
	c.mu.Lock()
	if shard < 0 || shard >= len(c.table.Placements) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: shard %d out of range", shard)
	}
	p := c.table.Placements[shard]
	c.mu.Unlock()
	if healthy(c.hc, p.Node) {
		return fmt.Errorf("cluster: owner %s of shard %d is alive; failover refused", p.Node, shard)
	}
	for _, rep := range p.Replicas {
		if !healthy(c.hc, rep) {
			continue
		}
		c.mu.Lock()
		c.table.Epoch++
		epoch := c.table.Epoch
		c.mu.Unlock()
		if err := postJSON(c.hc, rep+"/fabric/replica/promote", shardReq{Shard: shard, Epoch: epoch}, nil); err != nil {
			return fmt.Errorf("promote on %s: %w", rep, err)
		}
		c.mu.Lock()
		reps := make([]string, 0, len(p.Replicas))
		for _, r := range p.Replicas {
			if r != rep {
				reps = append(reps, r)
			}
		}
		c.table.Placements[shard] = fsproto.Placement{Shard: shard, Node: rep, Epoch: epoch, Replicas: reps}
		t := c.snapshotLocked()
		c.mu.Unlock()
		c.push(t)
		return nil
	}
	return fmt.Errorf("cluster: shard %d has no healthy replica to promote", shard)
}

// CheckOwners pings every owner once and fails over shards whose owner is
// dead and which have a replica. Returns the shards failed over. Callers
// run it from their own health-check cadence.
func (c *Coordinator) CheckOwners() []int {
	t := c.Table()
	var moved []int
	for _, p := range t.Placements {
		if p.Epoch == 0 || healthy(c.hc, p.Node) || len(p.Replicas) == 0 {
			continue
		}
		if err := c.Failover(p.Shard); err == nil {
			moved = append(moved, p.Shard)
		}
	}
	return moved
}
