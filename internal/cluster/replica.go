package cluster

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fsencr/internal/fsproto"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/server"
)

// Replica replays a primary shard's admission log into a detached local
// shard. The shard is booted with the primary's chip sequence, so replay
// reproduces ciphertext, counters and the Merkle tree exactly; every
// checkpoint record in the pulled stream carries the primary's root at
// that log position, and a mismatch stops the replica cold
// (journal.ReplicaDiverged) rather than letting a divergent copy be
// promoted later.
//
// Exactly one goroutine — the pull loop, or after Stop the caller —
// touches the detached shard.
type Replica struct {
	svc    *server.Service
	sh     *server.Shard
	shard  int
	source string
	hc     *http.Client

	stop chan struct{}
	done chan struct{}
	kick chan chan error

	mu     sync.Mutex
	pulled uint64
	err    error
}

// NewReplica boots the detached replica shard. The primary's discipline
// and chip sequence are derived from the local service options — the
// fabric requires every node to run the same shard-count/chip-base
// configuration.
func NewReplica(svc *server.Service, shard int, source string) (*Replica, error) {
	if source == "" {
		return nil, fmt.Errorf("cluster: replica of shard %d needs a source", shard)
	}
	sh := svc.NewReplicaShard(shard, svc.ChipSeqFor(shard), false)
	return &Replica{
		svc:    svc,
		sh:     sh,
		shard:  shard,
		source: source,
		hc:     &http.Client{Timeout: 10 * time.Second},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		kick:   make(chan chan error),
	}, nil
}

// Start launches the pull loop at the given polling interval.
func (r *Replica) Start(interval time.Duration) {
	go r.loop(interval)
}

func (r *Replica) loop(interval time.Duration) {
	defer close(r.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			if err := r.pullOnce(); err != nil && !transient(err) {
				r.mu.Lock()
				r.err = err
				r.mu.Unlock()
				return
			}
		case ch := <-r.kick:
			err := r.pullOnce()
			if err != nil && !transient(err) {
				r.mu.Lock()
				r.err = err
				r.mu.Unlock()
				ch <- err
				return
			}
			ch <- err
		}
	}
}

// transient reports errors worth retrying on the next tick (the primary
// briefly unreachable) as opposed to divergence, which is terminal.
func transient(err error) bool {
	return !errors.Is(err, server.ErrDiverged)
}

// pullOnce fetches records past the replica's position and replays them.
func (r *Replica) pullOnce() error {
	r.mu.Lock()
	from := r.pulled
	r.mu.Unlock()
	body, err := postRaw(r.hc, r.source+"/fabric/pull", mustJSON(shardReq{Shard: r.shard, From: from}))
	if err != nil {
		return err
	}
	var recs []fsproto.LogRecord
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&recs); err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	if err := r.svc.ReplayRecords(r.sh, recs); err != nil {
		if errors.Is(err, server.ErrDiverged) {
			r.sh.Jrn.Emit(journal.Event{
				Cycle:  uint64(r.sh.Sys.M.MaxCoreTime()),
				Type:   journal.ReplicaDiverged,
				Detail: fmt.Sprintf("shard %d replica diverged from %s: %v", r.shard, r.source, err),
			})
		}
		return err
	}
	r.mu.Lock()
	r.pulled = from + uint64(len(recs))
	r.mu.Unlock()
	return nil
}

// Sync forces an immediate pull round and waits for it — tests and the
// pre-promotion catch-up use it. Returns the pull's error (nil when the
// replica is caught up with its source).
func (r *Replica) Sync() error {
	ch := make(chan error, 1)
	select {
	case r.kick <- ch:
		return <-ch
	case <-r.done:
		return r.Err()
	}
}

// Stop halts the pull loop (idempotent).
func (r *Replica) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// Err reports the terminal replication error, if any (divergence).
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Status reports the replica's sync position.
func (r *Replica) Status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ReplicaStatus{Shard: r.shard, Pulled: r.pulled}
	if r.err != nil {
		st.Err = r.err.Error()
	}
	return st
}

// Pulled reports how many records the replica has replayed.
func (r *Replica) Pulled() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pulled
}

// Root returns the replica shard's current Merkle root (divergence
// comparisons in tests).
func (r *Replica) Root() [32]byte {
	return r.sh.Sys.M.MC.MerkleRoot()
}

// Promote stops the pull loop, makes a best-effort final catch-up pull,
// and adopts the replica as the serving owner. A diverged replica refuses
// to promote.
func (r *Replica) Promote() error {
	select {
	case <-r.done:
	default:
		// Best-effort catch-up while the loop still runs; in a failover the
		// primary is usually already dead and this returns a transport error.
		ch := make(chan error, 1)
		select {
		case r.kick <- ch:
			<-ch
		case <-r.done:
		}
		r.Stop()
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("cluster: refusing to promote diverged replica of shard %d: %w", r.shard, err)
	}
	return r.svc.PromoteShard(r.sh)
}

// mustJSON marshals v, panicking on failure (wire structs only).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
