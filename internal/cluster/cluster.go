// Package cluster is the multi-node shard fabric: an epoch-versioned
// routing plane over the per-tenant shards of internal/server.
//
// Three roles:
//
//   - Coordinator: owns the placement table {shard -> node, epoch,
//     replicas}, admits nodes (/cluster/join), serves the table to
//     routing clients (/cluster/table), and orchestrates live shard
//     migration and replica failover. Every ownership change bumps the
//     table epoch and pushes the new table to every member.
//
//   - Node: one fsencrd process — a server.Service plus the fabric
//     endpoints (/fabric/*) the coordinator drives: freeze/export/
//     resume/commit on a migration source, install/discard on a target,
//     pull for replication, and table pushes that update the node's
//     published epoch and its misroute forwarder.
//
//   - Replica: a detached shard on a node replaying a primary's
//     admission log pull-by-pull. Checkpoint records carry the primary's
//     Merkle root, so divergence is detected at every checkpoint cadence;
//     a clean replica promotes into a serving owner when the primary
//     dies.
//
// State transfer is admission-log replay (see internal/server/apply.go):
// a shard's simulated state is a pure function of its log, the shipped
// controller image is the proof artifact, and cutover gates on full image
// equality plus the Osiris crash-recovery cycle.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// fabricErr is the JSON error body fabric endpoints return.
type fabricErr struct {
	Error string `json:"error"`
}

// shardReq is the common fabric request shape.
type shardReq struct {
	Shard int    `json:"shard"`
	Epoch uint64 `json:"epoch,omitempty"`
	From  uint64 `json:"from,omitempty"`
	// Source is the base URL a replica pulls from (replica/start).
	Source string `json:"source,omitempty"`
}

// postJSON posts req as JSON and decodes a 200 response into out (nil out
// discards it). Non-200 responses come back as errors carrying the body.
func postJSON(hc *http.Client, url string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var fe fabricErr
		if json.Unmarshal(data, &fe) == nil && fe.Error != "" {
			return fmt.Errorf("cluster: %s: %s", url, fe.Error)
		}
		return fmt.Errorf("cluster: %s: %s: %s", url, resp.Status, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// postRaw posts an opaque body (gob payloads relay through the
// coordinator undecoded) and returns the raw 200 response.
func postRaw(hc *http.Client, url string, body []byte) ([]byte, error) {
	resp, err := hc.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var fe fabricErr
		if json.Unmarshal(data, &fe) == nil && fe.Error != "" {
			return nil, fmt.Errorf("cluster: %s: %s", url, fe.Error)
		}
		return nil, fmt.Errorf("cluster: %s: %s: %s", url, resp.Status, data)
	}
	return data, nil
}

// writeErr answers a fabric request with a JSON error.
func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(fabricErr{Error: err.Error()})
}

// writeJSON answers 200 with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// healthy reports whether base answers its health endpoint.
func healthy(hc *http.Client, base string) bool {
	resp, err := hc.Get(base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
