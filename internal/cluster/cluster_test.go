package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fsencr/internal/fsclient"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/server"
)

const testShards = 4

// testNode is one in-process fsencrd node behind a real HTTP listener.
type testNode struct {
	node  *Node
	srv   *httptest.Server
	empty bool
	dead  bool
}

func startNode(t *testing.T, owned []int, prefix string) *testNode {
	t.Helper()
	svc := server.New(server.Options{
		Shards:          testShards,
		ClusterShards:   testShards,
		OwnedShards:     owned,
		MCMode:          memctrl.Mode{MemEncryption: true, FileEncryption: true},
		Access:          kernel.ModeDAX,
		AdmissionLog:    true,
		ChipSeqBase:     server.DefaultChipSeqBase,
		CheckpointEvery: 8,
		TokenPrefix:     prefix,
		RequestTimeout:  20 * time.Second,
	})
	n := NewNode(svc)
	srv := httptest.NewServer(n.Mux())
	n.SetBase(srv.URL)
	tn := &testNode{node: n, srv: srv, empty: owned != nil && len(owned) == 0}
	t.Cleanup(tn.shutdown)
	return tn
}

// shutdown is the orderly test-cleanup path.
func (tn *testNode) shutdown() {
	if tn.dead {
		return
	}
	tn.dead = true
	tn.srv.Close()
	tn.node.Close()
}

// kill simulates a node crash: the listener drops without waiting for
// in-flight work, then the process state is torn down.
func (tn *testNode) kill() {
	if tn.dead {
		return
	}
	tn.dead = true
	tn.srv.Listener.Close()
	tn.srv.CloseClientConnections()
	tn.node.Close()
}

func startCoordinator(t *testing.T) (*Coordinator, *httptest.Server) {
	t.Helper()
	coord := NewCoordinator(testShards)
	srv := httptest.NewServer(coord.Mux())
	t.Cleanup(srv.Close)
	return coord, srv
}

// tenantOn finds an unused tenant name homed on the wanted global shard.
func tenantOn(t *testing.T, want int, taken map[string]bool) string {
	t.Helper()
	names := []string{"acme", "globex", "initech", "umbrella", "wayne", "stark",
		"hooli", "soylent", "tyrell", "wonka", "aperture", "cyberdyne", "octan", "zorg"}
	for _, n := range names {
		if !taken[n] && fsproto.ShardIndex(fsproto.TenantGID(n), testShards) == want {
			taken[n] = true
			return n
		}
	}
	t.Fatalf("no tenant name hashes onto shard %d", want)
	return ""
}

// TestJoinPlacesFirstNode: the first joiner owns everything at epoch 1;
// later joiners are empty members.
func TestJoinPlacesFirstNode(t *testing.T) {
	coord, _ := startCoordinator(t)
	a := startNode(t, nil, "a")
	b := startNode(t, []int{}, "b")
	tbl, err := coord.Join(a.srv.URL, false)
	if err != nil {
		t.Fatalf("join a: %v", err)
	}
	if tbl.Epoch != 1 {
		t.Fatalf("first join epoch = %d, want 1", tbl.Epoch)
	}
	for i := 0; i < testShards; i++ {
		if owner, ok := tbl.Owner(i); !ok || owner != a.srv.URL {
			t.Fatalf("shard %d owner = %q, want %q", i, owner, a.srv.URL)
		}
	}
	if _, err := coord.Join(b.srv.URL, true); err != nil {
		t.Fatalf("join b: %v", err)
	}
	if got := coord.Table().Epoch; got != 1 {
		t.Fatalf("second join must not bump the epoch, got %d", got)
	}
	// The push propagated the epoch to the nodes.
	if e := a.node.Service().ClusterEpoch(); e != 1 {
		t.Fatalf("node a cluster epoch = %d, want 1", e)
	}
	// A second non-empty joiner would split-brain every shard: refused.
	if _, err := coord.Join("http://127.0.0.1:1", false); err == nil {
		t.Fatal("second non-empty join must be refused")
	}
}

// TestMigrationUnderLoad is the heart of the fabric: three nodes, live
// client traffic, one shard migrated mid-load. Zero requests may be
// dropped or duplicated, the target must serve the migrated sessions with
// their old tokens, and cross-shard requests hitting the stale owner must
// forward.
func TestMigrationUnderLoad(t *testing.T) {
	coord, csrv := startCoordinator(t)
	a := startNode(t, nil, "a")
	b := startNode(t, []int{}, "b")
	c := startNode(t, []int{}, "c")
	for _, n := range []*testNode{a, b, c} {
		if _, err := coord.Join(n.srv.URL, n.empty); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	taken := map[string]bool{}
	migShard := 2
	tenants := []string{tenantOn(t, migShard, taken), tenantOn(t, 0, taken), tenantOn(t, 1, taken)}

	var stop atomic.Bool
	var wrote [3]atomic.Int64 // successful writes per tenant, client-counted
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	clients := make([]*fsclient.ClusterClient, len(tenants))
	for i, tn := range tenants {
		cc, err := fsclient.DialCluster(csrv.URL)
		if err != nil {
			t.Fatalf("dial cluster: %v", err)
		}
		if err := cc.Login(tn, 1, "pw-"+tn); err != nil {
			t.Fatalf("login %s: %v", tn, err)
		}
		if err := cc.Create(fsproto.CreateRequest{Name: "f.bin", Perm: 0644, Size: 8192, Encrypted: true}); err != nil {
			t.Fatalf("create %s: %v", tn, err)
		}
		clients[i] = cc
	}
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := clients[i]
			for j := 0; !stop.Load(); j++ {
				payload := bytes.Repeat([]byte{byte(i + 1)}, 128)
				if err := cc.Write(fsproto.WriteRequest{Name: "f.bin", Offset: uint64((j % 8) * 128), Data: payload}); err != nil {
					errc <- fmt.Errorf("tenant %s write %d: %w", tenants[i], j, err)
					return
				}
				wrote[i].Add(1)
				got, err := cc.Read(fsproto.ReadRequest{Name: "f.bin", Offset: uint64((j % 8) * 128), Length: 128})
				if err != nil {
					errc <- fmt.Errorf("tenant %s read %d: %w", tenants[i], j, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errc <- fmt.Errorf("tenant %s read %d: wrong bytes", tenants[i], j)
					return
				}
			}
		}(i)
	}

	// Let traffic build, then migrate tenant 0's home shard A -> B live.
	time.Sleep(50 * time.Millisecond)
	if err := coord.Migrate(migShard, b.srv.URL); err != nil {
		stop.Store(true)
		wg.Wait()
		t.Fatalf("migrate: %v", err)
	}
	tblAfter := coord.Table()
	if owner, _ := tblAfter.Owner(migShard); owner != b.srv.URL {
		t.Fatalf("post-migration owner = %q, want %q", owner, b.srv.URL)
	}
	// Keep load running across the cutover, then stop.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("client failed across migration: %v", err)
	default:
	}
	for i := range tenants {
		if wrote[i].Load() == 0 {
			t.Fatalf("tenant %s made no progress", tenants[i])
		}
	}

	// The target now owns the shard and serves the migrated session.
	if _, err := b.node.Service().LogLen(context.Background(), migShard); err != nil {
		t.Fatalf("target does not own shard %d: %v", migShard, err)
	}
	// A cross-tenant read whose session is homed on a shard still on A,
	// targeting the migrated tenant: A forwards one hop to B.
	got, err := clients[1].Read(fsproto.ReadRequest{
		Name: "f.bin", Tenant: tenants[0], Passphrase: "pw-" + tenants[0], Length: 128,
	})
	if err != nil {
		t.Fatalf("cross-shard read after migration (forwarding): %v", err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{1}, 128)) {
		t.Fatalf("cross-shard read returned wrong bytes")
	}
	// And the client keeps writing to the migrated shard with its old token.
	if err := clients[0].Write(fsproto.WriteRequest{Name: "f.bin", Data: []byte("post-migration")}); err != nil {
		t.Fatalf("post-migration write: %v", err)
	}
}

// TestReplicationAndFailover: a replica replays the primary's log over
// the fabric, diverges never, and promotes into the owner when the
// primary dies — with the client following via table refresh and no
// acknowledged write lost.
func TestReplicationAndFailover(t *testing.T) {
	coord, csrv := startCoordinator(t)
	a := startNode(t, nil, "a")
	b := startNode(t, []int{}, "b")
	cnode := startNode(t, []int{}, "c")
	for _, n := range []*testNode{a, b, cnode} {
		if _, err := coord.Join(n.srv.URL, n.empty); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	taken := map[string]bool{}
	shard := 1
	tn := tenantOn(t, shard, taken)
	cc, err := fsclient.DialCluster(csrv.URL)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := cc.Login(tn, 1, "pw-"+tn); err != nil {
		t.Fatalf("login: %v", err)
	}
	if err := cc.Create(fsproto.CreateRequest{Name: "d.bin", Perm: 0600, Size: 4096, Encrypted: true}); err != nil {
		t.Fatalf("create: %v", err)
	}
	want := bytes.Repeat([]byte{0xab}, 512)
	if err := cc.Write(fsproto.WriteRequest{Name: "d.bin", Data: want}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := cc.KVCreate(fsproto.KVCreateRequest{Store: "kv", Size: 16 * 4096}); err != nil {
		t.Fatalf("kv create: %v", err)
	}
	for i := 0; i < 64; i++ {
		if err := cc.KVPut(fsproto.KVPutRequest{Store: "kv", Key: uint64(i), Value: []byte{byte(i), byte(i >> 8)}}); err != nil {
			t.Fatalf("kv put %d: %v", i, err)
		}
	}

	// Replicate the shard on B and C; both must reach the primary's log
	// length with identical state.
	for _, n := range []*testNode{b, cnode} {
		if err := coord.Replicate(shard, n.srv.URL); err != nil {
			t.Fatalf("replicate on %s: %v", n.srv.URL, err)
		}
	}
	repB, repC := b.node.Replica(shard), cnode.node.Replica(shard)
	if repB == nil || repC == nil {
		t.Fatal("replicas not registered")
	}
	if err := repB.Sync(); err != nil {
		t.Fatalf("replica B sync: %v", err)
	}
	if err := repC.Sync(); err != nil {
		t.Fatalf("replica C sync: %v", err)
	}
	ln, err := a.node.Service().LogLen(context.Background(), shard)
	if err != nil {
		t.Fatalf("loglen: %v", err)
	}
	if repB.Pulled() != ln || repC.Pulled() != ln {
		t.Fatalf("replicas pulled %d/%d of %d records", repB.Pulled(), repC.Pulled(), ln)
	}
	if repB.Root() != repC.Root() {
		t.Fatalf("replica roots diverged: %x vs %x", repB.Root(), repC.Root())
	}

	// More writes, another sync round: the pull loop is incremental.
	want2 := bytes.Repeat([]byte{0xcd}, 512)
	if err := cc.Write(fsproto.WriteRequest{Name: "d.bin", Offset: 512, Data: want2}); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := repB.Sync(); err != nil {
		t.Fatalf("replica B resync: %v", err)
	}

	// Kill the primary; the coordinator health sweep promotes a replica.
	a.kill()
	moved := coord.CheckOwners()
	if len(moved) != 1 || moved[0] != shard {
		t.Fatalf("CheckOwners failed over %v, want [%d]", moved, shard)
	}
	tblAfter := coord.Table()
	owner, _ := tblAfter.Owner(shard)
	if owner != b.srv.URL && owner != cnode.srv.URL {
		t.Fatalf("failover owner = %q, want a replica", owner)
	}
	if owner == cnode.srv.URL {
		// C synced less than B; the coordinator picked the first healthy
		// replica. Either is correct for this test as long as it serves the
		// acknowledged state it replicated.
		t.Logf("promoted replica C")
	}

	// The client refreshes its table on the dead connection and lands on
	// the promoted replica; every acknowledged write before the last sync
	// must be there.
	got, err := cc.Read(fsproto.ReadRequest{Name: "d.bin", Length: 512})
	if err != nil {
		t.Fatalf("post-failover read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-failover read lost acknowledged data")
	}
	v, err := cc.KVGet(fsproto.KVGetRequest{Store: "kv", Key: 42})
	if err != nil {
		t.Fatalf("post-failover kv get: %v", err)
	}
	if !bytes.Equal(v, []byte{42, 0}) {
		t.Fatalf("post-failover kv get wrong value: %x", v)
	}
	// And accepts new writes as the owner.
	if err := cc.Write(fsproto.WriteRequest{Name: "d.bin", Offset: 1024, Data: []byte("after failover")}); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
}

// TestReplicaTenKOps drives a 10k+ operation admission log through one
// shard and replays it on two replicas: both must consume the full log
// with zero divergence and identical Merkle roots.
func TestReplicaTenKOps(t *testing.T) {
	coord, _ := startCoordinator(t)
	a := startNode(t, nil, "a")
	b := startNode(t, []int{}, "b")
	c := startNode(t, []int{}, "c")
	for _, n := range []*testNode{a, b, c} {
		if _, err := coord.Join(n.srv.URL, n.empty); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	taken := map[string]bool{}
	shard := 3
	tn := tenantOn(t, shard, taken)

	// Drive the workload through the service directly (the log records
	// admission, not transport; HTTP adds nothing here but latency).
	svc := a.node.Service()
	ctx := context.Background()
	sess, err := svc.Login(ctx, tn, 1, "pw-"+tn, 0)
	if err != nil {
		t.Fatalf("login: %v", err)
	}
	if err := svc.KVCreate(ctx, sess, fsproto.KVCreateRequest{Store: "kv", Size: 1024 * 4096}); err != nil {
		t.Fatalf("kv create: %v", err)
	}
	if err := svc.Create(ctx, sess, fsproto.CreateRequest{Name: "w.bin", Perm: 0600, Size: 4096, Encrypted: true}); err != nil {
		t.Fatalf("create: %v", err)
	}
	const ops = 10_050
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < ops; i++ {
		switch i % 4 {
		case 0, 1:
			if err := svc.KVPut(ctx, sess, fsproto.KVPutRequest{Store: "kv", Key: uint64(i % 512), Value: val}); err != nil {
				t.Fatalf("kv put %d: %v", i, err)
			}
		case 2:
			if err := svc.Write(ctx, sess, fsproto.WriteRequest{Name: "w.bin", Offset: uint64((i % 32) * 64), Data: val}); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		default:
			pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "w.bin", Length: 64})
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			pl.Release()
		}
	}
	ln, err := svc.LogLen(ctx, shard)
	if err != nil {
		t.Fatalf("loglen: %v", err)
	}
	if ln < ops {
		t.Fatalf("admission log holds %d records, want >= %d", ln, ops)
	}

	for _, n := range []*testNode{b, c} {
		if err := coord.Replicate(shard, n.srv.URL); err != nil {
			t.Fatalf("replicate: %v", err)
		}
	}
	repB, repC := b.node.Replica(shard), c.node.Replica(shard)
	if err := repB.Sync(); err != nil {
		t.Fatalf("replica B sync: %v", err)
	}
	if err := repC.Sync(); err != nil {
		t.Fatalf("replica C sync: %v", err)
	}
	if repB.Pulled() != ln || repC.Pulled() != ln {
		t.Fatalf("replicas pulled %d/%d of %d", repB.Pulled(), repC.Pulled(), ln)
	}
	if repB.Err() != nil || repC.Err() != nil {
		t.Fatalf("replica errors: B=%v C=%v", repB.Err(), repC.Err())
	}
	if repB.Root() != repC.Root() {
		t.Fatalf("replica Merkle roots diverged after %d records", ln)
	}
}
