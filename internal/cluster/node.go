package cluster

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fsencr/internal/fsproto"
	"fsencr/internal/server"
)

// Node wraps one fsencrd service with the fabric endpoints the
// coordinator drives. The node's /v1 surface is unchanged; /fabric/* is
// the control plane: migration source verbs (freeze, export, resume,
// commit), target verbs (install, discard), the replication pull surface,
// replica management, and placement-table pushes.
type Node struct {
	svc  *server.Service
	base string

	mu    sync.Mutex
	migs  map[int]*server.Migration
	reps  map[int]*Replica
	table fsproto.ClusterTable
}

// NewNode wraps svc. Call SetBase once the listener address is known —
// the forwarder needs it to avoid proxying to itself.
func NewNode(svc *server.Service) *Node {
	return &Node{svc: svc, migs: make(map[int]*server.Migration), reps: make(map[int]*Replica)}
}

// SetBase records this node's advertised base URL.
func (n *Node) SetBase(base string) {
	n.mu.Lock()
	n.base = base
	n.mu.Unlock()
}

// Base returns the advertised base URL.
func (n *Node) Base() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.base
}

// Service exposes the wrapped service.
func (n *Node) Service() *server.Service { return n.svc }

// Close stops replica pull loops and drains the service.
func (n *Node) Close() {
	n.mu.Lock()
	reps := make([]*Replica, 0, len(n.reps))
	for _, r := range n.reps {
		reps = append(reps, r)
	}
	n.reps = make(map[int]*Replica)
	n.mu.Unlock()
	for _, r := range reps {
		r.Stop()
	}
	n.svc.Close()
}

// Mux returns the node's full route set: the service's API and
// observability surfaces plus the cluster fabric.
func (n *Node) Mux() *http.ServeMux {
	mux := n.svc.Mux()
	mux.HandleFunc("/fabric/freeze", n.handleFreeze)
	mux.HandleFunc("/fabric/export", n.handleExport)
	mux.HandleFunc("/fabric/resume", n.handleResume)
	mux.HandleFunc("/fabric/commit", n.handleCommit)
	mux.HandleFunc("/fabric/install", n.handleInstall)
	mux.HandleFunc("/fabric/discard", n.handleDiscard)
	mux.HandleFunc("/fabric/pull", n.handlePull)
	mux.HandleFunc("/fabric/loglen", n.handleLogLen)
	mux.HandleFunc("/fabric/replica/start", n.handleReplicaStart)
	mux.HandleFunc("/fabric/replica/promote", n.handleReplicaPromote)
	mux.HandleFunc("/fabric/replica/status", n.handleReplicaStatus)
	mux.HandleFunc("/fabric/table", n.handleTable)
	return mux
}

func decodeReq(r *http.Request, req *shardReq) error {
	return jsonDecode(r, req)
}

func jsonDecode(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}

// handleFreeze quiesces a shard for migration and parks the hold.
func (n *Node) handleFreeze(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	if _, held := n.migs[req.Shard]; held {
		n.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("shard %d already frozen", req.Shard))
		return
	}
	n.mu.Unlock()
	mig, err := n.svc.FreezeShard(r.Context(), req.Shard)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	n.mu.Lock()
	n.migs[req.Shard] = mig
	n.mu.Unlock()
	writeJSON(w, struct{}{})
}

func (n *Node) takeMig(shard int) *server.Migration {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.migs[shard]
	delete(n.migs, shard)
	return m
}

func (n *Node) peekMig(shard int) *server.Migration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.migs[shard]
}

// handleExport ships the frozen shard's state as gob.
func (n *Node) handleExport(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	mig := n.peekMig(req.Shard)
	if mig == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("shard %d is not frozen", req.Shard))
		return
	}
	st, err := mig.Export()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf.Bytes())
}

// handleResume rolls a migration back: the hold releases, the worker
// serves the queued backlog as if nothing happened.
func (n *Node) handleResume(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if mig := n.takeMig(req.Shard); mig != nil {
		mig.Resume()
	}
	writeJSON(w, struct{}{})
}

// handleCommit finishes a migration on the source: the shard retires at
// the new epoch and queued requests answer with the routing error.
func (n *Node) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	mig := n.takeMig(req.Shard)
	if mig == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("shard %d is not frozen", req.Shard))
		return
	}
	mig.Commit(req.Epoch)
	writeJSON(w, struct{}{})
}

// handleInstall rehydrates a migrated shard from its gob state.
func (n *Node) handleInstall(w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	var st server.ShardState
	if err := gob.NewDecoder(r.Body).Decode(&st); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := n.svc.InstallShard(&st); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct{}{})
}

// handleDiscard drops an installed-but-uncommitted shard (rollback on the
// target).
func (n *Node) handleDiscard(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.svc.DropShard(req.Shard)
	writeJSON(w, struct{}{})
}

// handlePull ships admission-log records from a position onward (gob) —
// the replication stream.
func (n *Node) handlePull(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	recs, err := n.svc.RecordsFrom(r.Context(), req.Shard, req.From)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf.Bytes())
}

// handleLogLen reports a shard's admission-log length.
func (n *Node) handleLogLen(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ln, err := n.svc.LogLen(r.Context(), req.Shard)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]uint64{"len": ln})
}

// handleReplicaStart begins replicating a shard from its primary.
func (n *Node) handleReplicaStart(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if _, err := n.StartReplica(req.Shard, req.Source); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct{}{})
}

// handleReplicaPromote turns a clean replica into the serving owner.
func (n *Node) handleReplicaPromote(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := n.PromoteReplica(req.Shard, req.Epoch); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct{}{})
}

// ReplicaStatus is the replica sync report.
type ReplicaStatus struct {
	Shard  int    `json:"shard"`
	Pulled uint64 `json:"pulled"`
	Err    string `json:"err,omitempty"`
}

// handleReplicaStatus reports a replica's sync position and health.
func (n *Node) handleReplicaStatus(w http.ResponseWriter, r *http.Request) {
	var req shardReq
	if err := decodeReq(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	rep := n.reps[req.Shard]
	n.mu.Unlock()
	if rep == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no replica of shard %d here", req.Shard))
		return
	}
	writeJSON(w, rep.Status())
}

// handleTable applies a coordinator table push: the node publishes the
// new epoch and forwards misrouted requests one hop to current owners.
func (n *Node) handleTable(w http.ResponseWriter, r *http.Request) {
	var t fsproto.ClusterTable
	if err := jsonDecode(r, &t); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.ApplyTable(t)
	writeJSON(w, struct{}{})
}

// ApplyTable installs a placement table: newer epochs only.
func (n *Node) ApplyTable(t fsproto.ClusterTable) {
	n.mu.Lock()
	if t.Epoch < n.table.Epoch {
		n.mu.Unlock()
		return
	}
	n.table = t
	n.mu.Unlock()
	n.svc.SetClusterEpoch(t.Epoch)
	n.svc.SetForwarder(func(shard int) (string, bool) {
		n.mu.Lock()
		owner, ok := n.table.Owner(shard)
		base := n.base
		n.mu.Unlock()
		if !ok || owner == base {
			return "", false
		}
		return owner, true
	})
}

// Table returns the node's current placement table.
func (n *Node) Table() fsproto.ClusterTable {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table
}

// StartReplica boots a detached replica shard replaying the primary at
// source and starts its pull loop.
func (n *Node) StartReplica(shard int, source string) (*Replica, error) {
	n.mu.Lock()
	if _, dup := n.reps[shard]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: already replicating shard %d", shard)
	}
	n.mu.Unlock()
	rep, err := NewReplica(n.svc, shard, source)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.reps[shard] = rep
	n.mu.Unlock()
	rep.Start(2 * time.Millisecond)
	return rep, nil
}

// Replica returns the node's replica of shard, if any.
func (n *Node) Replica(shard int) *Replica {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reps[shard]
}

// PromoteReplica stops the pull loop and adopts the replica as owner at
// the given epoch.
func (n *Node) PromoteReplica(shard int, epoch uint64) error {
	n.mu.Lock()
	rep := n.reps[shard]
	delete(n.reps, shard)
	n.mu.Unlock()
	if rep == nil {
		return fmt.Errorf("cluster: no replica of shard %d here", shard)
	}
	if err := rep.Promote(); err != nil {
		return err
	}
	n.svc.SetClusterEpoch(epoch)
	return nil
}
