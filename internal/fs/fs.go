// Package fs implements the DAX-enabled filesystem model: an ext4-like
// volume living in the persistent-memory region of the physical address
// space, with inodes, per-file owner/group identities, Unix permission
// bits, page-granular extents, and per-file encryption policy.
//
// The filesystem intentionally mirrors the Linux semantics the paper builds
// on: the 14-bit inode number is the File ID the kernel sends to the memory
// controller, and the 18-bit group ID is the sharing/permission domain
// (§III-D: "the kernel can send the file ID (mapping->host->i_ino) and the
// group ID (mapping->host->i_gid) to the memory controller").
package fs

import (
	"errors"
	"fmt"
	"sort"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/counters"
)

// Mode is a Unix permission word (lower 9 bits: rwxrwxrwx).
type Mode uint16

// Permission bit masks.
const (
	PermUserRead   Mode = 0400
	PermUserWrite  Mode = 0200
	PermGroupRead  Mode = 0040
	PermGroupWrite Mode = 0020
	PermOtherRead  Mode = 0004
	PermOtherWrite Mode = 0002
)

// Access intents for permission checks.
type Access int

// Access kinds.
const (
	ReadAccess Access = iota
	WriteAccess
)

// File is one inode.
type File struct {
	Ino      uint16 // 14-bit file ID
	Name     string
	OwnerUID uint32
	GroupID  uint32 // 18-bit group ID
	Perm     Mode
	Size     uint64
	// Encrypted marks the file as covered by filesystem encryption.
	Encrypted bool
	// Salt feeds the per-file key derivation.
	Salt [8]byte
	// extents maps file page index -> physical page number.
	extents []uint64
}

// Pages returns the number of allocated pages.
func (f *File) Pages() int { return len(f.extents) }

// PagePA returns the physical address of file page idx (no DF-bit; the
// kernel decides DF at mapping time).
func (f *File) PagePA(idx int) (addr.Phys, error) {
	if idx < 0 || idx >= len(f.extents) {
		return 0, fmt.Errorf("fs: page %d beyond EOF of %q (%d pages)", idx, f.Name, len(f.extents))
	}
	return addr.Phys(f.extents[idx] * config.PageSize), nil
}

// Allows checks Unix permission bits for the given credentials.
func (f *File) Allows(uid, gid uint32, want Access) bool {
	if uid == 0 {
		return true // root
	}
	var r, w Mode
	switch {
	case uid == f.OwnerUID:
		r, w = PermUserRead, PermUserWrite
	case gid == f.GroupID:
		r, w = PermGroupRead, PermGroupWrite
	default:
		r, w = PermOtherRead, PermOtherWrite
	}
	switch want {
	case WriteAccess:
		return f.Perm&w != 0
	default:
		return f.Perm&r != 0
	}
}

// FS is the mounted volume.
type FS struct {
	regionBase uint64 // physical byte offset of the PMEM region
	regionSize uint64
	freePages  []uint64 // physical page numbers available for allocation
	files      map[string]*File
	byIno      map[uint16]*File
	nextIno    uint16
}

// Errors returned by filesystem operations.
var (
	ErrExists    = errors.New("fs: file exists")
	ErrNotExist  = errors.New("fs: no such file")
	ErrNoSpace   = errors.New("fs: no space left on device")
	ErrInoSpace  = errors.New("fs: out of 14-bit inode numbers")
	ErrBadGroup  = errors.New("fs: group ID exceeds 18 bits")
	ErrPermEperm = errors.New("fs: permission denied")
)

// New formats a volume over the physical range [base, base+size), which
// must be page-aligned (the paper's setup: memmap=4G!12G, i.e. 4 GB of PCM
// starting at 12 GB, formatted as DAX-enabled ext4).
func New(base, size uint64) *FS {
	if base%config.PageSize != 0 || size%config.PageSize != 0 {
		panic("fs: region must be page aligned")
	}
	f := &FS{
		regionBase: base,
		regionSize: size,
		files:      make(map[string]*File),
		byIno:      make(map[uint16]*File),
		nextIno:    1,
	}
	first := base / config.PageSize
	count := size / config.PageSize
	f.freePages = make([]uint64, 0, count)
	// Keep the free list sorted descending so allocation pops ascending
	// page numbers from the tail (sequential files get sequential pages).
	for i := int64(count) - 1; i >= 0; i-- {
		f.freePages = append(f.freePages, first+uint64(i))
	}
	return f
}

// RegionBase returns the physical base of the volume.
func (s *FS) RegionBase() uint64 { return s.regionBase }

// FreePages returns how many pages remain unallocated.
func (s *FS) FreePages() int { return len(s.freePages) }

// Create makes a new file. Encrypted files get a deterministic-per-inode
// salt; key derivation and registration with the memory controller are the
// kernel's job.
func (s *FS) Create(name string, uid, gid uint32, perm Mode, encrypted bool) (*File, error) {
	if _, ok := s.files[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if gid > counters.MaxGroupID {
		return nil, fmt.Errorf("%w: %d", ErrBadGroup, gid)
	}
	if s.nextIno > counters.MaxFileID {
		return nil, ErrInoSpace
	}
	f := &File{
		Ino:       s.nextIno,
		Name:      name,
		OwnerUID:  uid,
		GroupID:   gid,
		Perm:      perm,
		Encrypted: encrypted,
	}
	s.nextIno++
	for i := range f.Salt {
		f.Salt[i] = byte(uint16(f.Ino) >> (i % 2 * 8) * 31)
	}
	s.files[name] = f
	s.byIno[f.Ino] = f
	return f, nil
}

// Lookup finds a file by name.
func (s *FS) Lookup(name string) (*File, error) {
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return f, nil
}

// ByIno finds a file by inode number.
func (s *FS) ByIno(ino uint16) (*File, bool) {
	f, ok := s.byIno[ino]
	return f, ok
}

// Files returns all files sorted by name.
func (s *FS) Files() []*File {
	out := make([]*File, 0, len(s.files))
	for _, f := range s.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Truncate grows (or shrinks) a file to size bytes, allocating or freeing
// whole pages. Shrinking returns the freed physical pages so the kernel can
// shred them.
func (s *FS) Truncate(f *File, size uint64) (freed []uint64, err error) {
	wantPages := int((size + config.PageSize - 1) / config.PageSize)
	for len(f.extents) < wantPages {
		if len(s.freePages) == 0 {
			return nil, ErrNoSpace
		}
		pg := s.freePages[len(s.freePages)-1]
		s.freePages = s.freePages[:len(s.freePages)-1]
		f.extents = append(f.extents, pg)
	}
	for len(f.extents) > wantPages {
		pg := f.extents[len(f.extents)-1]
		f.extents = f.extents[:len(f.extents)-1]
		freed = append(freed, pg)
		s.freePages = append(s.freePages, pg)
	}
	f.Size = size
	return freed, nil
}

// Unlink removes a file, returning its physical pages for shredding.
func (s *FS) Unlink(name string) (*File, []uint64, error) {
	f, ok := s.files[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	delete(s.files, name)
	delete(s.byIno, f.Ino)
	pages := append([]uint64(nil), f.extents...)
	s.freePages = append(s.freePages, f.extents...)
	f.extents = nil
	return f, pages, nil
}

// Chmod changes permission bits (only the owner or root may).
func (s *FS) Chmod(f *File, uid uint32, perm Mode) error {
	if uid != 0 && uid != f.OwnerUID {
		return ErrPermEperm
	}
	f.Perm = perm
	return nil
}

// Chgrp changes the file's group (owner or root only).
func (s *FS) Chgrp(f *File, uid, gid uint32) error {
	if uid != 0 && uid != f.OwnerUID {
		return ErrPermEperm
	}
	if gid > counters.MaxGroupID {
		return fmt.Errorf("%w: %d", ErrBadGroup, gid)
	}
	f.GroupID = gid
	return nil
}
