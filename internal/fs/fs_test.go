package fs

import (
	"errors"
	"testing"

	"fsencr/internal/config"
)

func newFS() *FS {
	return New(12<<30, 64<<20)
}

func TestCreateLookup(t *testing.T) {
	s := newFS()
	f, err := s.Create("a.db", 1000, 100, 0600, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Ino == 0 {
		t.Fatal("zero inode")
	}
	got, err := s.Lookup("a.db")
	if err != nil || got != f {
		t.Fatal("lookup failed")
	}
	if _, err := s.Lookup("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing lookup error = %v", err)
	}
	if _, err := s.Create("a.db", 1000, 100, 0600, false); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create error = %v", err)
	}
}

func TestByIno(t *testing.T) {
	s := newFS()
	f, _ := s.Create("x", 1, 1, 0600, false)
	got, ok := s.ByIno(f.Ino)
	if !ok || got != f {
		t.Fatal("ByIno failed")
	}
	if _, ok := s.ByIno(9999); ok {
		t.Fatal("phantom inode")
	}
}

func TestInodesDistinct(t *testing.T) {
	s := newFS()
	a, _ := s.Create("a", 1, 1, 0600, false)
	b, _ := s.Create("b", 1, 1, 0600, false)
	if a.Ino == b.Ino {
		t.Fatal("duplicate inode numbers")
	}
	if a.Salt == b.Salt {
		t.Fatal("duplicate salts")
	}
}

func TestGroupIDValidation(t *testing.T) {
	s := newFS()
	if _, err := s.Create("g", 1, 1<<18, 0600, false); !errors.Is(err, ErrBadGroup) {
		t.Fatalf("oversize group accepted: %v", err)
	}
}

func TestTruncateGrowShrink(t *testing.T) {
	s := newFS()
	f, _ := s.Create("t", 1, 1, 0600, false)
	if _, err := s.Truncate(f, 3*config.PageSize); err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 3 || f.Size != 3*config.PageSize {
		t.Fatalf("pages=%d size=%d", f.Pages(), f.Size)
	}
	// Page addresses must be in the region and distinct.
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		pa, err := f.PagePA(i)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(pa) < s.RegionBase() {
			t.Fatal("extent below region base")
		}
		if seen[uint64(pa)] {
			t.Fatal("duplicate extent")
		}
		seen[uint64(pa)] = true
	}
	freed, err := s.Truncate(f, config.PageSize)
	if err != nil || len(freed) != 2 {
		t.Fatalf("shrink freed %d pages, err %v", len(freed), err)
	}
	if _, err := f.PagePA(1); err == nil {
		t.Fatal("beyond-EOF page accessible after shrink")
	}
}

func TestSequentialAllocation(t *testing.T) {
	s := newFS()
	f, _ := s.Create("seq", 1, 1, 0600, false)
	s.Truncate(f, 4*config.PageSize)
	p0, _ := f.PagePA(0)
	p1, _ := f.PagePA(1)
	if p1 != p0+config.PageSize {
		t.Fatalf("sequential file got non-sequential pages: %v then %v", p0, p1)
	}
}

func TestNoSpace(t *testing.T) {
	s := New(0, 2*config.PageSize)
	f, _ := s.Create("big", 1, 1, 0600, false)
	if _, err := s.Truncate(f, 3*config.PageSize); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit error = %v", err)
	}
}

func TestUnlinkRecyclesPages(t *testing.T) {
	s := newFS()
	f, _ := s.Create("u", 1, 1, 0600, false)
	s.Truncate(f, 2*config.PageSize)
	free := s.FreePages()
	_, pages, err := s.Unlink("u")
	if err != nil || len(pages) != 2 {
		t.Fatalf("unlink pages=%d err=%v", len(pages), err)
	}
	if s.FreePages() != free+2 {
		t.Fatal("pages not recycled")
	}
	if _, err := s.Lookup("u"); err == nil {
		t.Fatal("file survived unlink")
	}
}

func TestPermissions(t *testing.T) {
	s := newFS()
	f, _ := s.Create("p", 1000, 100, 0640, false)
	cases := []struct {
		uid, gid uint32
		want     Access
		allow    bool
	}{
		{1000, 100, ReadAccess, true},   // owner read
		{1000, 100, WriteAccess, true},  // owner write
		{2000, 100, ReadAccess, true},   // group read
		{2000, 100, WriteAccess, false}, // group write denied
		{2000, 200, ReadAccess, false},  // other read denied
		{0, 999, WriteAccess, true},     // root always
	}
	for i, c := range cases {
		if f.Allows(c.uid, c.gid, c.want) != c.allow {
			t.Fatalf("case %d: Allows(%d,%d,%v) != %v", i, c.uid, c.gid, c.want, c.allow)
		}
	}
}

func TestChmod(t *testing.T) {
	s := newFS()
	f, _ := s.Create("c", 1000, 100, 0600, false)
	if err := s.Chmod(f, 2000, 0777); !errors.Is(err, ErrPermEperm) {
		t.Fatalf("non-owner chmod allowed: %v", err)
	}
	if err := s.Chmod(f, 1000, 0777); err != nil {
		t.Fatal(err)
	}
	if !f.Allows(4242, 4242, WriteAccess) {
		t.Fatal("chmod 777 did not open the file")
	}
}

func TestChgrp(t *testing.T) {
	s := newFS()
	f, _ := s.Create("g", 1000, 100, 0660, false)
	if err := s.Chgrp(f, 1000, 200); err != nil {
		t.Fatal(err)
	}
	if f.GroupID != 200 {
		t.Fatal("group not changed")
	}
	if err := s.Chgrp(f, 1000, 1<<18); err == nil {
		t.Fatal("oversize group accepted")
	}
	if err := s.Chgrp(f, 555, 300); !errors.Is(err, ErrPermEperm) {
		t.Fatal("non-owner chgrp allowed")
	}
}

func TestFilesSorted(t *testing.T) {
	s := newFS()
	s.Create("b", 1, 1, 0600, false)
	s.Create("a", 1, 1, 0600, false)
	files := s.Files()
	if len(files) != 2 || files[0].Name != "a" {
		t.Fatal("Files not sorted")
	}
}

func TestRegionAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned region accepted")
		}
	}()
	New(100, 4096)
}
