// Package runner is the bounded worker-pool behind the experiment
// harness's batch entry points. Every figure of the evaluation replays
// dozens of fully independent simulations — each core.Run boots its own
// kernel.System, so runs share no mutable state — and the pool executes
// them concurrently while preserving the exact sequential semantics the
// figure tables depend on:
//
//   - results come back in input order, regardless of completion order;
//   - a panicking item is captured (with its stack) instead of killing
//     the process, so one broken workload cannot take down a whole sweep;
//   - every item runs to completion even when earlier items fail, and all
//     failures are aggregated into a single error that names each item.
//
// The package is deliberately generic: it knows nothing about core's
// Request/Result types, which keeps the dependency arrow pointing from
// the harness to the pool and not back.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// Workers resolves a worker-count request: n > 0 is used as given,
// anything else means one worker per available CPU (GOMAXPROCS). The
// result is never below 1, so callers can divide by it or size pools
// from it without guarding.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if n = runtime.GOMAXPROCS(0); n > 0 {
		return n
	}
	return 1
}

// ItemError records the failure of one item of a batch.
type ItemError struct {
	// Index is the item's position in the input slice.
	Index int
	Err   error
}

func (e *ItemError) Error() string { return fmt.Sprintf("item %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *ItemError) Unwrap() error { return e.Err }

// BatchError aggregates every item failure of one Map call, in input
// order.
type BatchError struct {
	Items []*ItemError
}

func (e *BatchError) Error() string {
	msgs := make([]string, len(e.Items))
	for i, it := range e.Items {
		msgs[i] = it.Error()
	}
	return fmt.Sprintf("runner: %d of batch failed: %s", len(e.Items), strings.Join(msgs, "; "))
}

// Unwrap exposes the per-item errors to errors.Is / errors.As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Items))
	for i, it := range e.Items {
		out[i] = it
	}
	return out
}

// Map runs fn over every item on a pool of workers (see Workers) and
// returns the results in input order. fn receives the item's index so
// callers can label failures. A fn panic is captured and reported as that
// item's error; remaining items still run. The error, if non-nil, is a
// *BatchError naming every failed item; the result slice is always fully
// populated for the items that succeeded.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	if len(items) == 0 {
		// Return a non-nil empty slice so callers can range, append, and
		// marshal without a nil check; no workers are spawned.
		return []R{}, nil
	}
	results := make([]R, len(items))
	errs := make([]error, len(items))
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}

	if workers <= 1 {
		// Inline path: identical to the historical sequential loops (and
		// what -parallel 1 pins for speedup baselines), minus early exit —
		// errors aggregate exactly as in the concurrent path.
		for i, item := range items {
			results[i], errs[i] = safeCall(fn, i, item)
		}
		return results, gather(errs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = safeCall(fn, i, items[i])
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, gather(errs)
}

// safeCall invokes fn, converting a panic into an error carrying the
// panicking goroutine's stack.
func safeCall[T, R any](fn func(int, T) (R, error), i int, item T) (res R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	return fn(i, item)
}

// gather folds the per-index error slice into a single *BatchError (or
// nil); walking by index keeps the aggregate deterministic.
func gather(errs []error) error {
	var items []*ItemError
	for i, err := range errs {
		if err != nil {
			items = append(items, &ItemError{Index: i, Err: err})
		}
	}
	if len(items) == 0 {
		return nil
	}
	return &BatchError{Items: items}
}
