package runner

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 4, 200} {
		got, err := Map(workers, items, func(_ int, v int) (int, error) {
			return v * 3, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i*3)
			}
		}
	}
}

func TestMapEmptyBatch(t *testing.T) {
	got, err := Map(8, nil, func(_ int, v int) (int, error) { return v, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: got %v, %v", got, err)
	}
}

func TestMapCapturesPanics(t *testing.T) {
	items := []int{0, 1, 2, 3}
	got, err := Map(2, items, func(_ int, v int) (int, error) {
		if v == 2 {
			panic("boom")
		}
		return v + 10, nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not name the panic: %v", err)
	}
	// Untouched items still completed.
	if got[0] != 10 || got[1] != 11 || got[3] != 13 {
		t.Fatalf("survivors lost: %v", got)
	}
}

func TestMapAggregatesAllErrors(t *testing.T) {
	sentinel := errors.New("sentinel")
	items := []int{0, 1, 2, 3, 4}
	got, err := Map(3, items, func(i int, v int) (int, error) {
		if v%2 == 1 {
			return 0, fmt.Errorf("odd %d: %w", v, sentinel)
		}
		return v * 2, nil
	})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %T: %v", err, err)
	}
	if len(be.Items) != 2 || be.Items[0].Index != 1 || be.Items[1].Index != 3 {
		t.Fatalf("wrong aggregation: %v", be)
	}
	if !errors.Is(err, sentinel) {
		t.Fatal("errors.Is does not reach the wrapped cause")
	}
	// Failures must not abort the remaining items.
	if got[4] != 8 {
		t.Fatalf("item after failures did not run: %v", got)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(7) != 7 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("defaulted worker count must be at least 1")
	}
}

func TestMapEmptyInput(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 8} {
		got, err := Map(workers, nil, func(i int, v int) (int, error) {
			t.Fatalf("fn called on empty input (workers=%d)", workers)
			return 0, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		if got == nil {
			t.Fatalf("workers=%d: want non-nil empty slice, got nil", workers)
		}
		if len(got) != 0 {
			t.Fatalf("workers=%d: want empty slice, got %v", workers, got)
		}
	}
}

func TestMapClampsNonPositiveWorkers(t *testing.T) {
	// A below-1 worker request must clamp instead of deadlocking: the
	// items still run and come back in order.
	for _, workers := range []int{-5, 0} {
		got, err := Map(workers, []int{1, 2, 3}, func(i int, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 9 {
			t.Fatalf("workers=%d: wrong results: %v", workers, got)
		}
	}
}
