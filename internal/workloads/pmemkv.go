package workloads

import (
	"fmt"

	"fsencr/internal/kvstore"
)

// PMEMKV benchmarks (Table II): the BTree engine with two threads, run with
// 64 B values (suffix -s, "small") and 4 KB values (suffix -l, "large").
// Each thread operates on its own key range, mirroring pmemkv's
// db_bench-style drivers.

const (
	smallValue = 64
	largeValue = 4096
)

// pmemkvPoolSize sizes the pool generously for the op count.
func pmemkvPoolSize(e *Env, valueSize int) uint64 {
	per := uint64(valueSize+64+2*kvstore.Order*24) * uint64(e.Ops+16)
	size := per * uint64(len(e.Procs)) * 4
	if size < 8<<20 {
		size = 8 << 20
	}
	return size
}

// threadKey spreads thread key ranges far apart.
func threadKey(thread int, i uint64) uint64 {
	return uint64(thread)<<40 | i
}

// setupTree creates the pool and an empty shared BTree.
func setupTree(e *Env, valueSize int) (*kvstore.BTree, error) {
	if err := e.CreatePool("pmemkv.pool", pmemkvPoolSize(e, valueSize)); err != nil {
		return nil, err
	}
	t, err := kvstore.Create(e.Pool(0), 0)
	if err != nil {
		return nil, err
	}
	// Instrument before views are taken: View copies the struct, so every
	// per-thread view inherits the handles.
	t.Instrument(e.Telemetry())
	return t, nil
}

// treeViews returns per-thread views of the shared tree.
func treeViews(e *Env, t *kvstore.BTree) []*kvstore.BTree {
	views := make([]*kvstore.BTree, len(e.Procs))
	views[0] = t
	for i := 1; i < len(e.Procs); i++ {
		views[i] = t.View(e.Pool(i))
	}
	return views
}

// preload fills each thread's range with e.Ops sequential keys (untimed).
func preload(e *Env, trees []*kvstore.BTree, valueSize int) error {
	val := make([]byte, valueSize)
	rng := e.RNG(0)
	for t := range trees {
		for i := uint64(0); i < uint64(e.Ops); i++ {
			rng.Bytes(val)
			if err := trees[t].Put(threadKey(t, i), val); err != nil {
				return err
			}
		}
	}
	return nil
}

type kvOp func(e *Env, trees []*kvstore.BTree, valueSize int) error

// fillSeq loads values in sequential key order (timed).
func fillSeq(e *Env, trees []*kvstore.BTree, valueSize int) error {
	vals := perThreadBufs(e, valueSize)
	rngs := perThreadRNGs(e)
	return e.RunThreads(e.Ops, func(t, i int) error {
		rngs[t].Bytes(vals[t])
		return trees[t].Put(threadKey(t, uint64(i)), vals[t])
	})
}

// fillRandom loads values in random key order (timed).
func fillRandom(e *Env, trees []*kvstore.BTree, valueSize int) error {
	vals := perThreadBufs(e, valueSize)
	rngs := perThreadRNGs(e)
	perms := make([][]int, len(trees))
	for t := range perms {
		perms[t] = rngs[t].Perm(e.Ops)
	}
	return e.RunThreads(e.Ops, func(t, i int) error {
		rngs[t].Bytes(vals[t])
		return trees[t].Put(threadKey(t, uint64(perms[t][i])), vals[t])
	})
}

// overwrite replaces existing values in random key order (timed; preloaded).
func overwrite(e *Env, trees []*kvstore.BTree, valueSize int) error {
	vals := perThreadBufs(e, valueSize)
	rngs := perThreadRNGs(e)
	return e.RunThreads(e.Ops, func(t, i int) error {
		rngs[t].Bytes(vals[t])
		key := threadKey(t, rngs[t].Uint64n(uint64(e.Ops)))
		return trees[t].Put(key, vals[t])
	})
}

// readRandom reads values in random key order (timed; preloaded).
func readRandom(e *Env, trees []*kvstore.BTree, valueSize int) error {
	vals := perThreadBufs(e, valueSize)
	rngs := perThreadRNGs(e)
	return e.RunThreads(e.Ops, func(t, i int) error {
		key := threadKey(t, rngs[t].Uint64n(uint64(e.Ops)))
		_, err := trees[t].Get(key, vals[t])
		return err
	})
}

// readSeq reads values in sequential key order (timed; preloaded).
func readSeq(e *Env, trees []*kvstore.BTree, valueSize int) error {
	vals := perThreadBufs(e, valueSize)
	return e.RunThreads(e.Ops, func(t, i int) error {
		_, err := trees[t].Get(threadKey(t, uint64(i)), vals[t])
		return err
	})
}

func perThreadBufs(e *Env, n int) [][]byte {
	out := make([][]byte, len(e.Procs))
	for i := range out {
		out[i] = make([]byte, n)
	}
	return out
}

func perThreadRNGs(e *Env) []rngIface {
	out := make([]rngIface, len(e.Procs))
	for i := range out {
		out[i] = e.RNG(i + 1)
	}
	return out
}

type rngIface = interface {
	Bytes([]byte)
	Uint64n(uint64) uint64
	Perm(int) []int
}

func registerKV(name, desc string, valueSize int, needPreload bool, op kvOp) {
	benchOps := 6000
	if valueSize >= largeValue {
		benchOps = 1500
	}
	register(&Workload{
		Name:             name,
		Desc:             desc,
		Threads:          2,
		DefaultValueSize: valueSize,
		BenchOps:         benchOps,
		Setup: func(e *Env) error {
			t, err := setupTree(e, valueSize)
			if err != nil {
				return err
			}
			views := treeViews(e, t)
			if needPreload {
				if err := preload(e, views, valueSize); err != nil {
					return err
				}
			}
			e.Put("trees", views)
			return nil
		},
		Run: func(e *Env) error {
			views := e.Get("trees").([]*kvstore.BTree)
			return op(e, views, valueSize)
		},
	})
}

func init() {
	type variant struct {
		suffix string
		size   int
	}
	for _, v := range []variant{{"s", smallValue}, {"l", largeValue}} {
		sz := v.size
		registerKV("fillseq-"+v.suffix,
			fmt.Sprintf("fillseq benchmark; Value=%dB; loads values in sequential key order", sz),
			sz, false, fillSeq)
		registerKV("fillrandom-"+v.suffix,
			fmt.Sprintf("fillrandom benchmark; Value=%dB; loads values in random key order", sz),
			sz, false, fillRandom)
		registerKV("overwrite-"+v.suffix,
			fmt.Sprintf("overwrite benchmark; Value=%dB; replaces values in random key order", sz),
			sz, true, overwrite)
		registerKV("readrandom-"+v.suffix,
			fmt.Sprintf("readrandom benchmark; Value=%dB; reads values in random key order", sz),
			sz, true, readRandom)
		registerKV("readseq-"+v.suffix,
			fmt.Sprintf("readseq benchmark; Value=%dB; reads values in sequential key order", sz),
			sz, true, readSeq)
	}
}
