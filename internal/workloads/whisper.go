package workloads

import (
	"fsencr/internal/sim"
	"fsencr/internal/whisper"
)

// Whisper benchmarks (Table II): YCSB with a 50/50 read-write mix and two
// workers over the persistent hashmap, plus insert-driven Hashmap and CTree
// runs with 128 B records and two threads.

const whisperValueSize = 128

func whisperPoolSize(e *Env) uint64 {
	per := uint64(whisperValueSize+128) * (uint64(e.Ops) + ycsbRecords(e) + 1024)
	size := per * uint64(len(e.Procs)) * 4
	if size < 8<<20 {
		size = 8 << 20
	}
	return size
}

// ycsbRecords is the preloaded table size for YCSB: large relative to the
// op count so the key working set exceeds the cache hierarchy, as in a real
// YCSB run.
func ycsbRecords(e *Env) uint64 {
	n := 32 * uint64(e.Ops)
	if n < 4096 {
		n = 4096
	}
	if n > 1<<17 {
		n = 1 << 17
	}
	return n
}

func init() {
	register(&Workload{
		BenchOps:         2500,
		Name:             "ycsb",
		Desc:             "Yahoo Cloud Serving Benchmark; R/W ratio = 0.5; Workers = 2",
		Threads:          2,
		DefaultValueSize: whisperValueSize,
		Setup: func(e *Env) error {
			if err := e.CreatePool("ycsb.pool", whisperPoolSize(e)); err != nil {
				return err
			}
			records := ycsbRecords(e)
			h, err := whisper.CreateHashmap(e.Pool(0), 0, records/2+64, whisperValueSize)
			if err != nil {
				return err
			}
			h.Instrument(e.Telemetry())
			val := make([]byte, whisperValueSize)
			rng := e.RNG(0)
			for k := uint64(0); k < records; k++ {
				rng.Bytes(val)
				if err := h.Put(k, val); err != nil {
					return err
				}
			}
			views := []*whisper.Hashmap{h}
			for i := 1; i < len(e.Procs); i++ {
				views = append(views, h.View(e.Pool(i)))
			}
			e.Put("maps", views)
			return nil
		},
		Run: func(e *Env) error {
			views := e.Get("maps").([]*whisper.Hashmap)
			records := ycsbRecords(e)
			vals := perThreadBufs(e, whisperValueSize)
			rngs := make([]*sim.RNG, len(e.Procs))
			zipfs := make([]*sim.Zipf, len(e.Procs))
			for i := range rngs {
				rngs[i] = e.RNG(i + 11)
				zipfs[i] = sim.NewZipf(rngs[i], 1.1, 1, records)
			}
			return e.RunThreads(e.Ops, func(t, i int) error {
				key := zipfs[t].Uint64()
				if rngs[t].Float64() < 0.5 {
					_, err := views[t].Get(key, vals[t])
					if err == whisper.ErrNotFound {
						return nil
					}
					return err
				}
				rngs[t].Bytes(vals[t])
				return views[t].Put(key, vals[t])
			})
		},
	})

	register(&Workload{
		BenchOps:         2500,
		Name:             "hashmap",
		Desc:             "persistent hashmap; data-size = 128 B; Threads = 2",
		Threads:          2,
		DefaultValueSize: whisperValueSize,
		Setup: func(e *Env) error {
			if err := e.CreatePool("hashmap.pool", whisperPoolSize(e)); err != nil {
				return err
			}
			h, err := whisper.CreateHashmap(e.Pool(0), 0, uint64(e.Ops)+64, whisperValueSize)
			if err != nil {
				return err
			}
			h.Instrument(e.Telemetry())
			views := []*whisper.Hashmap{h}
			for i := 1; i < len(e.Procs); i++ {
				views = append(views, h.View(e.Pool(i)))
			}
			e.Put("maps", views)
			return nil
		},
		Run: func(e *Env) error {
			views := e.Get("maps").([]*whisper.Hashmap)
			vals := perThreadBufs(e, whisperValueSize)
			rngs := make([]*sim.RNG, len(e.Procs))
			for i := range rngs {
				rngs[i] = e.RNG(i + 23)
			}
			keyspace := uint64(e.Ops) * uint64(len(e.Procs)) * 2
			return e.RunThreads(e.Ops, func(t, i int) error {
				// Insert-heavy with occasional lookups, like Whisper's
				// hashmap driver.
				if i%4 == 3 {
					_, err := views[t].Get(rngs[t].Uint64n(keyspace), vals[t])
					if err == whisper.ErrNotFound {
						return nil
					}
					return err
				}
				rngs[t].Bytes(vals[t])
				return views[t].Put(rngs[t].Uint64n(keyspace), vals[t])
			})
		},
	})

	register(&Workload{
		BenchOps:         2500,
		Name:             "ctree",
		Desc:             "persistent crit-bit tree; data-size = 128 B; Threads = 2",
		Threads:          2,
		DefaultValueSize: whisperValueSize,
		Setup: func(e *Env) error {
			if err := e.CreatePool("ctree.pool", whisperPoolSize(e)); err != nil {
				return err
			}
			t, err := whisper.CreateCTree(e.Pool(0), 0, whisperValueSize)
			if err != nil {
				return err
			}
			t.Instrument(e.Telemetry())
			views := []*whisper.CTree{t}
			for i := 1; i < len(e.Procs); i++ {
				views = append(views, t.View(e.Pool(i)))
			}
			e.Put("trees", views)
			return nil
		},
		Run: func(e *Env) error {
			views := e.Get("trees").([]*whisper.CTree)
			vals := perThreadBufs(e, whisperValueSize)
			rngs := make([]*sim.RNG, len(e.Procs))
			for i := range rngs {
				rngs[i] = e.RNG(i + 37)
			}
			keyspace := uint64(e.Ops) * uint64(len(e.Procs)) * 2
			return e.RunThreads(e.Ops, func(t, i int) error {
				if i%4 == 3 {
					_, err := views[t].Get(rngs[t].Uint64n(keyspace), vals[t])
					if err == whisper.ErrNotFound {
						return nil
					}
					return err
				}
				rngs[t].Bytes(vals[t])
				return views[t].Put(rngs[t].Uint64n(keyspace), vals[t])
			})
		},
	})
}
