package workloads

import (
	"fsencr/internal/addr"
	"fsencr/internal/config"
)

// The in-house synthetic microbenchmarks (Table II): strided sparse reads
// (DAX-1/2) and array-swap read-write patterns (DAX-3/4). These are
// deliberately metadata-cache-hostile: DAX-2's 128-byte stride touches a
// new counter block every 32 accesses, while DAX-1's 16-byte stride reuses
// each counter block 256 times.

// The 64 MB file is large relative to the metadata cache's coverage
// (512 KB of metadata covers 16 MB of FsEncr-protected data), so long
// strides and random placements generate genuine counter-block capacity
// misses, as the paper's memory-intensive microbenchmarks do.
const microFilePages = 16384 // 64 MB working file

func microFileBytes() uint64 { return microFilePages * config.PageSize }

// setupMicroFile creates and maps the benchmark file. The contents are left
// uninitialized: the microbenchmarks measure access behaviour, not data
// semantics, and first-touch page faults are part of the measured DAX cost.
func setupMicroFile(e *Env) error {
	return e.CreatePool("dax-micro.pool", microFileBytes())
}

// strideSpan is the region the strided readers sweep (and wrap around):
// large enough that its security metadata exceeds the metadata cache under
// FsEncr (24 MB of data needs 768 KB of MECB+FECB lines) while the baseline
// footprint (384 KB) still fits — the asymmetry behind DAX-2's extra
// overhead in Figures 12/15.
const strideSpan = 24 << 20

// strideReader builds the Run function for DAX-1/2: read one byte after
// each `stride` bytes, in direct-access manner.
func strideReader(stride uint64) func(e *Env) error {
	return func(e *Env) error {
		p := e.Procs[0]
		pool := e.Pool(0)
		span := uint64(strideSpan)
		var b [1]byte
		pos := uint64(0)
		for i := 0; i < e.Ops; i++ {
			if err := p.Read(pool.Base()+addr.Virt(pos%span), b[:]); err != nil {
				return err
			}
			pos += stride
		}
		return nil
	}
}

// arraySwapper builds the Run function for DAX-3/4: initialize two arrays
// of arrSize bytes at two random locations and swap their contents.
func arraySwapper(arrSize int) func(e *Env) error {
	return func(e *Env) error {
		p := e.Procs[0]
		pool := e.Pool(0)
		rng := e.RNG(0)
		span := microFileBytes() - 2*config.PageSize - uint64(arrSize)
		a := make([]byte, arrSize)
		b := make([]byte, arrSize)
		for i := 0; i < e.Ops; i++ {
			locA := pool.Base() + addr.Virt(rng.Uint64n(span))
			locB := pool.Base() + addr.Virt(rng.Uint64n(span))
			// Initialize both arrays.
			rng.Bytes(a)
			rng.Bytes(b)
			if err := p.Write(locA, a); err != nil {
				return err
			}
			if err := p.Write(locB, b); err != nil {
				return err
			}
			if err := p.Persist(locA, uint64(arrSize)); err != nil {
				return err
			}
			if err := p.Persist(locB, uint64(arrSize)); err != nil {
				return err
			}
			// Swap contents (sequential within each array).
			if err := p.Read(locA, a); err != nil {
				return err
			}
			if err := p.Read(locB, b); err != nil {
				return err
			}
			if err := p.Write(locA, b); err != nil {
				return err
			}
			if err := p.Write(locB, a); err != nil {
				return err
			}
			if err := p.Persist(locA, uint64(arrSize)); err != nil {
				return err
			}
			if err := p.Persist(locB, uint64(arrSize)); err != nil {
				return err
			}
		}
		return nil
	}
}

func init() {
	register(&Workload{
		Name:     "dax1",
		Desc:     "accesses 1 byte after each 16 bytes from a persistent file (direct access)",
		Threads:  1,
		BenchOps: 400000,
		Setup:    setupMicroFile,
		Run:      strideReader(16),
	})
	register(&Workload{
		Name:     "dax2",
		Desc:     "accesses 1 byte after each 128 bytes from a persistent file (direct access)",
		Threads:  1,
		BenchOps: 400000,
		Setup:    setupMicroFile,
		Run:      strideReader(128),
	})
	register(&Workload{
		Name:     "dax3",
		Desc:     "initializes two 16 B arrays at two different locations and swaps the contents",
		Threads:  1,
		BenchOps: 15000,
		Setup:    setupMicroFile,
		Run:      arraySwapper(16),
	})
	register(&Workload{
		Name:     "dax4",
		Desc:     "initializes two 128 B arrays at two different locations and swaps the contents",
		Threads:  1,
		BenchOps: 15000,
		Setup:    setupMicroFile,
		Run:      arraySwapper(128),
	})
}
