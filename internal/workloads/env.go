// Package workloads implements every benchmark of Table II: the in-house
// DAX microbenchmarks (DAX-1..4), the ten PMEMKV BTree workloads
// (fillseq/fillrandom/overwrite/readseq/readrandom × small/large values),
// and the Whisper benchmarks (YCSB, Hashmap, CTree). Each workload has an
// untimed Setup phase (file creation and data loading — the paper
// fast-forwards to the post-file-creation point) and a timed Run phase.
package workloads

import (
	"fmt"
	"strings"

	"fsencr/internal/fs"
	"fsencr/internal/kernel"
	"fsencr/internal/pmem"
	"fsencr/internal/sim"
	"fsencr/internal/telemetry"
)

// Env is the execution environment handed to a workload.
type Env struct {
	Sys   *kernel.System
	Procs []*kernel.Process
	// Ops is the number of timed operations per thread.
	Ops int
	// ValueSize is the record payload size (workload-specific default if 0).
	ValueSize int
	// Encrypted marks whether the benchmark's files use filesystem
	// encryption (on for FsEncr and SWEncr schemes, off for the plain and
	// memory-encryption-only baselines).
	Encrypted bool
	// Passphrase protects the files when Encrypted.
	Passphrase string
	// Seed drives all random choices, for reproducible access streams.
	Seed uint64

	// state carries handles from Setup to Run.
	pools []*pmem.Pool
	file  *fs.File
	extra map[string]interface{}
}

// NewEnv builds an environment with `threads` processes (uid 1000, gid 100,
// logged in).
func NewEnv(sys *kernel.System, threads, ops int, encrypted bool, seed uint64) *Env {
	e := &Env{
		Sys:        sys,
		Ops:        ops,
		Encrypted:  encrypted,
		Passphrase: "correct horse battery staple",
		Seed:       seed,
		extra:      make(map[string]interface{}),
	}
	sys.Keyring.Login(1000, e.Passphrase)
	for i := 0; i < threads; i++ {
		e.Procs = append(e.Procs, sys.NewProcess(1000, 100))
	}
	return e
}

// CreatePool creates the benchmark's pool file and maps it into every
// thread, returning per-thread pool views.
func (e *Env) CreatePool(name string, size uint64) error {
	f, err := e.Sys.CreateFile(e.Procs[0], name, 0600, size, e.Encrypted, e.Passphrase)
	if err != nil {
		return err
	}
	e.file = f
	p0, err := pmem.Create(e.Procs[0], f, size)
	if err != nil {
		return err
	}
	e.pools = []*pmem.Pool{p0}
	for i := 1; i < len(e.Procs); i++ {
		pi, err := pmem.Open(e.Procs[i], f, size)
		if err != nil {
			return err
		}
		e.pools = append(e.pools, pi)
	}
	return nil
}

// Pool returns thread t's view of the shared pool.
func (e *Env) Pool(t int) *pmem.Pool { return e.pools[t] }

// Telemetry returns the system's telemetry registry (nil — the no-op
// recorder — when the run is uninstrumented). Workload setup passes it to
// the data structures it builds.
func (e *Env) Telemetry() *telemetry.Registry { return e.Sys.Telemetry() }

// File returns the benchmark's backing file.
func (e *Env) File() *fs.File { return e.file }

// RNG returns a thread-private deterministic generator.
func (e *Env) RNG(thread int) *sim.RNG {
	return sim.NewRNG(e.Seed*2654435761 + uint64(thread)*97 + 1)
}

// Put and Get stash setup state for Run.
func (e *Env) Put(k string, v interface{}) { e.extra[k] = v }

// Get retrieves setup state.
func (e *Env) Get(k string) interface{} { return e.extra[k] }

// RunThreads interleaves opsPerThread operations across the environment's
// threads, always advancing the thread whose core clock is furthest behind
// — a deterministic stand-in for concurrent execution that keeps shared
// bank/cache contention realistic.
func (e *Env) RunThreads(opsPerThread int, fn func(thread, op int) error) error {
	starts := make([]uint64, len(e.Procs))
	for t := range e.Procs {
		starts[t] = uint64(e.Procs[t].Now())
	}
	done := make([]int, len(e.Procs))
	remaining := opsPerThread * len(e.Procs)
	for remaining > 0 {
		best := -1
		for t := range e.Procs {
			if done[t] >= opsPerThread {
				continue
			}
			if best == -1 || e.Procs[t].Now() < e.Procs[best].Now() {
				best = t
			}
		}
		if err := fn(best, done[best]); err != nil {
			return fmt.Errorf("workloads: thread %d op %d: %w", best, done[best], err)
		}
		done[best]++
		remaining--
	}
	// One span per thread covering its whole timed region.
	if tel := e.Telemetry(); tel != nil {
		for t := range e.Procs {
			tel.Span("workload", fmt.Sprintf("thread%d", t),
				starts[t], uint64(e.Procs[t].Now()), e.Procs[t].Core().ID())
		}
	}
	return nil
}

// Workload is one Table II benchmark.
type Workload struct {
	Name    string
	Desc    string
	Threads int
	// DefaultValueSize, if nonzero, sets Env.ValueSize when unspecified.
	DefaultValueSize int
	// BenchOps is the per-thread operation count the figure-regeneration
	// harness uses for this workload (tests use far fewer).
	BenchOps int
	Setup    func(e *Env) error
	Run      func(e *Env) error
}

var registry = map[string]*Workload{}
var order []string

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	registry[w.Name] = w
	order = append(order, w.Name)
}

// Lookup finds a workload by name. The PMEMKV workloads also answer to the
// paper's "pmemkv-<op>" spelling: "pmemkv-fillrandom" is the small-value
// variant "fillrandom-s", and "pmemkv-fillrandom-l" the large one.
func Lookup(name string) (*Workload, error) {
	if w, ok := registry[name]; ok {
		return w, nil
	}
	if kv, ok := strings.CutPrefix(name, "pmemkv-"); ok {
		if !strings.HasSuffix(kv, "-s") && !strings.HasSuffix(kv, "-l") {
			kv += "-s"
		}
		if w, ok := registry[kv]; ok {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns every registered workload in registration order.
func Names() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}
