package workloads

import (
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
)

func TestRegistryComplete(t *testing.T) {
	// Table II: 4 synthetic + 10 PMEMKV + 3 Whisper.
	names := Names()
	if len(names) != 17 {
		t.Fatalf("registry has %d workloads, want 17: %v", len(names), names)
	}
	for _, n := range names {
		w, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Desc == "" || w.Threads <= 0 || w.Setup == nil || w.Run == nil {
			t.Fatalf("workload %q incompletely registered", n)
		}
		if w.BenchOps <= 0 {
			t.Fatalf("workload %q missing BenchOps", n)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown workload resolved")
	}
}

func TestTableIIParameters(t *testing.T) {
	for _, c := range []struct {
		name    string
		threads int
	}{
		{"dax1", 1}, {"dax2", 1}, {"dax3", 1}, {"dax4", 1},
		{"fillrandom-s", 2}, {"readseq-l", 2},
		{"ycsb", 2}, {"hashmap", 2}, {"ctree", 2},
	} {
		w, err := Lookup(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if w.Threads != c.threads {
			t.Fatalf("%s threads = %d, want %d", c.name, w.Threads, c.threads)
		}
	}
	for _, c := range []struct {
		name string
		size int
	}{
		{"fillseq-s", 64}, {"fillseq-l", 4096}, {"ycsb", 128}, {"hashmap", 128}, {"ctree", 128},
	} {
		w, _ := Lookup(c.name)
		if w.DefaultValueSize != c.size {
			t.Fatalf("%s value size = %d, want %d", c.name, w.DefaultValueSize, c.size)
		}
	}
}

// TestEveryWorkloadRunsBriefly executes each workload end-to-end with a tiny
// op count under the FsEncr scheme.
func TestEveryWorkloadRunsBriefly(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, _ := Lookup(name)
			sys := kernel.Boot(config.Default(), memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX)
			env := NewEnv(sys, w.Threads, 30, true, 7)
			if err := w.Setup(env); err != nil {
				t.Fatalf("setup: %v", err)
			}
			if err := w.Run(env); err != nil {
				t.Fatalf("run: %v", err)
			}
			if sys.M.MC.IntegrityViolations() != 0 {
				t.Fatal("integrity violations during workload")
			}
		})
	}
}

func TestRunThreadsInterleavesByClock(t *testing.T) {
	sys := kernel.Boot(config.Default(), memctrl.Mode{}, kernel.ModeDAX)
	env := NewEnv(sys, 2, 10, false, 1)
	var order []int
	// Thread 0 ops are expensive, thread 1 ops are cheap: the scheduler
	// must run many thread-1 ops per thread-0 op.
	err := env.RunThreads(10, func(thread, op int) error {
		order = append(order, thread)
		if thread == 0 {
			env.Procs[0].Core().Compute(1000)
		} else {
			env.Procs[1].Core().Compute(10)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 20 {
		t.Fatalf("ran %d ops", len(order))
	}
	// The first thread-0 op happens, then thread 1 should run a long
	// burst before thread 0's clock is caught up.
	burst := 0
	for _, th := range order[1:11] {
		if th == 1 {
			burst++
		}
	}
	if burst < 8 {
		t.Fatalf("scheduler not clock-driven: %v", order)
	}
}

func TestEnvRNGDeterminism(t *testing.T) {
	sys := kernel.Boot(config.Default(), memctrl.Mode{}, kernel.ModeDAX)
	a := NewEnv(sys, 1, 1, false, 42).RNG(3)
	b := NewEnv(sys, 1, 1, false, 42).RNG(3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("env RNG not deterministic")
	}
	c := NewEnv(sys, 1, 1, false, 43).RNG(3)
	if NewEnv(sys, 1, 1, false, 42).RNG(3).Uint64() == c.Uint64() {
		t.Fatal("different seeds produced same stream")
	}
}
