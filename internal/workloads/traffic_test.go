package workloads

import (
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
)

// runUnder executes a workload briefly under the given configuration,
// returning the system and the run-phase (post-setup) NVM read/write
// deltas.
func runUnder(t *testing.T, name string, mcMode memctrl.Mode, access kernel.AccessMode, encrypted bool) (*kernel.System, uint64, uint64) {
	t.Helper()
	w, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	sys := kernel.Boot(config.Default(), mcMode, access)
	env := NewEnv(sys, w.Threads, 40, encrypted, 5)
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	r0, w0 := sys.M.MC.PCM.Reads(), sys.M.MC.PCM.Writes()
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	return sys, sys.M.MC.PCM.Reads() - r0, sys.M.MC.PCM.Writes() - w0
}

// TestFsEncrWorkloadsTagPages: under FsEncr, every DAX workload must drive
// the file-encryption datapath (FECB tagging via MMIO at fault time).
func TestFsEncrWorkloadsTagPages(t *testing.T) {
	for _, name := range []string{"dax1", "fillseq-s", "ycsb"} {
		sys, _, _ := runUnder(t, name, memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX, true)
		if sys.M.Stats().Get("mc.page_tags") == 0 {
			t.Fatalf("%s: no FECB tagging under FsEncr", name)
		}
		if sys.M.Stats().Get("mc.key_installs") == 0 {
			t.Fatalf("%s: no key installed", name)
		}
	}
}

// TestBaselineNeverTouchesFileDatapath: the memory-encryption-only baseline
// must not tag pages or consult the OTT.
func TestBaselineNeverTouchesFileDatapath(t *testing.T) {
	sys, _, _ := runUnder(t, "hashmap", memctrl.Mode{MemEncryption: true}, kernel.ModeDAX, false)
	st := sys.M.Stats()
	for _, k := range []string{"mc.page_tags", "mc.key_installs", "mc.ott_hits", "mc.ott_misses"} {
		if st.Get(k) != 0 {
			t.Fatalf("baseline recorded %s = %d", k, st.Get(k))
		}
	}
}

// TestSWEncrUsesPageCacheNotDAX: the software-encryption scheme must route
// everything through the page cache and never produce DF-tagged traffic.
func TestSWEncrUsesPageCacheNotDAX(t *testing.T) {
	sys, _, _ := runUnder(t, "ctree", memctrl.Mode{}, kernel.ModeSWEncrypt, true)
	st := sys.M.Stats()
	if st.Get("kernel.pagecache_loads") == 0 {
		t.Fatal("software encryption bypassed the page cache")
	}
	if st.Get("kernel.sw_decrypts") == 0 && st.Get("kernel.sw_encrypts") == 0 {
		t.Fatal("software cipher never ran")
	}
	if st.Get("mc.page_tags") != 0 {
		t.Fatal("software scheme tagged FECBs")
	}
}

// TestWorkloadsDeterministicTraffic: identical runs produce identical NVM
// traffic (the foundation of scheme-vs-scheme comparisons).
func TestWorkloadsDeterministicTraffic(t *testing.T) {
	run := func() (uint64, uint64) {
		sys, _, _ := runUnder(t, "fillrandom-s", memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX, true)
		return sys.M.MC.PCM.Reads(), sys.M.MC.PCM.Writes()
	}
	r1, w1 := run()
	r2, w2 := run()
	if r1 != r2 || w1 != w2 {
		t.Fatalf("nondeterministic traffic: (%d,%d) vs (%d,%d)", r1, w1, r2, w2)
	}
}

// TestWriteHeavyVsReadHeavyTraffic: the fill workloads must write far more
// NVM lines than the read workloads — the asymmetry behind the paper's
// "write-intensive benchmarks have higher overheads".
func TestWriteHeavyVsReadHeavyTraffic(t *testing.T) {
	_, _, fw := runUnder(t, "fillseq-s", memctrl.Mode{MemEncryption: true}, kernel.ModeDAX, false)
	_, _, rw := runUnder(t, "readseq-s", memctrl.Mode{MemEncryption: true}, kernel.ModeDAX, false)
	if fw < 4*rw+10 {
		t.Fatalf("fill run-phase writes (%d) not clearly above read-workload writes (%d)", fw, rw)
	}
}
