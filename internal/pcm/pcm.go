// Package pcm models the DDR-based PCM main memory of Table III: two
// channels of two ranks of eight banks, 1 KB row buffers with an
// open-adaptive page policy, RoRaBaChCo address mapping, and asymmetric
// 60 ns read / 150 ns write array latencies.
//
// The model is functional *and* timed: it owns the actual backing bytes of
// the simulated NVM (ciphertext lands here), and it schedules accesses on
// banks using a busy-until model that captures row-buffer locality and bank
// conflicts without a full DRAM command state machine.
package pcm

import (
	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/stats"
	"fsencr/internal/telemetry"
)

type bank struct {
	readyAt  config.Cycle
	openRow  uint64
	rowValid bool
	// conflictStreak drives the open-adaptive policy: after repeated row
	// misses the bank closes its row eagerly (precharge after access),
	// converting future conflicts into plain misses instead of
	// miss+precharge.
	conflictStreak int
	adaptiveClosed bool
}

// Memory is the PCM device: sparse backing store plus bank timing state.
type Memory struct {
	cfg     config.PCM
	mapping *addr.Mapping
	banks   []bank
	frames  map[uint64]*[config.PageSize]byte
	st      *stats.Set

	// Telemetry-native distributions; the event counts themselves stay in
	// the stats.Set ("pcm.row_hits", ...) and are folded into the exported
	// snapshot by the harness, so these carry only what stats cannot:
	// per-access latency shape.
	tService *telemetry.Histogram
	tQueue   *telemetry.Histogram
	trace    *telemetry.TraceScope
}

// Instrument attaches telemetry handles. A nil registry detaches.
func (m *Memory) Instrument(reg *telemetry.Registry) {
	m.tService = reg.Histogram("pcm.service_cycles")
	m.tQueue = reg.Histogram("pcm.queue_delay_cycles")
	m.trace = reg.Scope()
}

// New builds a PCM device from the configuration, reporting traffic into st.
func New(cfg config.PCM, st *stats.Set) *Memory {
	m := &Memory{
		cfg:     cfg,
		mapping: addr.NewMapping(cfg),
		frames:  make(map[uint64]*[config.PageSize]byte),
		st:      st,
	}
	m.banks = make([]bank, m.mapping.TotalBanks())
	return m
}

// frame returns the backing page for pa, allocating it zeroed on first use.
func (m *Memory) frame(pa addr.Phys) *[config.PageSize]byte {
	pn := pa.PageNum()
	f, ok := m.frames[pn]
	if !ok {
		f = new([config.PageSize]byte)
		m.frames[pn] = f
	}
	return f
}

// ReadLine returns the 64 bytes stored at the line containing pa.
// Functional only; use Access for timing.
func (m *Memory) ReadLine(pa addr.Phys) aesctr.Line {
	f := m.frame(pa)
	off := pa.PageOffset() &^ (config.LineSize - 1)
	var line aesctr.Line
	copy(line[:], f[off:off+config.LineSize])
	return line
}

// WriteLine stores 64 bytes at the line containing pa. Functional only.
func (m *Memory) WriteLine(pa addr.Phys, line aesctr.Line) {
	f := m.frame(pa)
	off := pa.PageOffset() &^ (config.LineSize - 1)
	copy(f[off:off+config.LineSize], line[:])
}

// tally accumulates per-access event counts across a batch so a page-sized
// burst costs a handful of counter updates instead of 64x per-event ones.
type tally struct {
	conflicts, rowHits, rowMisses, adaptiveCloses, reads, writes uint64
}

func (m *Memory) flushTally(t *tally) {
	if t.conflicts > 0 {
		m.st.Add("pcm.bank_conflicts", t.conflicts)
	}
	if t.rowHits > 0 {
		m.st.Add("pcm.row_hits", t.rowHits)
	}
	if t.rowMisses > 0 {
		m.st.Add("pcm.row_misses", t.rowMisses)
	}
	if t.adaptiveCloses > 0 {
		m.st.Add("pcm.adaptive_closes", t.adaptiveCloses)
	}
	if t.reads > 0 {
		m.st.Add("pcm.reads", t.reads)
	}
	if t.writes > 0 {
		m.st.Add("pcm.writes", t.writes)
	}
}

// Access schedules a line read or write arriving at time now and returns
// its completion time. Bank state (row buffer, busy-until) is updated.
func (m *Memory) Access(now config.Cycle, pa addr.Phys, write bool) config.Cycle {
	var t tally
	done := m.access(now, pa, write, &t)
	m.flushTally(&t)
	return done
}

// access is the bank state machine shared by Access and AccessPage; event
// counts land in t, not the stats set.
func (m *Memory) access(now config.Cycle, pa addr.Phys, write bool, tl *tally) config.Cycle {
	d := m.mapping.Decompose(pa)
	b := &m.banks[m.mapping.BankID(d)]

	start := now
	if b.readyAt > start {
		start = b.readyAt
		tl.conflicts++
	}
	m.tQueue.Observe(uint64(start - now))

	var service config.Cycle
	rowHit := b.rowValid && b.openRow == d.Row
	switch {
	case rowHit:
		service = m.cfg.RowBufferHitLatency
		tl.rowHits++
		b.conflictStreak = 0
	default:
		// Row miss: activate (tRCD + array read to fill the row buffer),
		// then column access.
		array := m.cfg.ReadLatency
		service = m.cfg.TRCD + array + m.cfg.TCL + m.cfg.TBURST
		tl.rowMisses++
		if b.rowValid {
			b.conflictStreak++
		}
	}
	if write {
		// PCM writes pay the long cell-write latency on the way to the
		// array; write recovery keeps the bank busy afterwards.
		service += m.cfg.WriteLatency
		tl.writes++
	} else {
		tl.reads++
	}

	done := start + service
	m.tService.Observe(uint64(service))
	busyUntil := done
	if write {
		busyUntil += m.cfg.TWR - m.cfg.WriteLatency // recovery overlaps cell write
	}

	// Open-adaptive policy: keep the row open by default; after two
	// consecutive conflicts on this bank, close the row eagerly.
	b.openRow = d.Row
	b.rowValid = true
	if b.conflictStreak >= 2 {
		b.rowValid = false
		b.conflictStreak = 0
		tl.adaptiveCloses++
	}
	b.readyAt = busyUntil
	return done
}

// AccessPage schedules all 64 line accesses of the page containing pa as
// one burst and returns the completion time of the last. Under the
// RoRaBaChCo mapping the page's lines stripe across channels and banks
// (16 row-buffer-local lines per bank on the default geometry), so the
// per-bank queues drain in parallel — the page completes in roughly the
// per-bank share of the work, not 64 serialized line times, matching the
// bank-parallelism the line datapath already exhibits across cores.
//
// starts optionally gives each line its own issue time (otherwise all
// issue at now); dones optionally receives per-line completion times (the
// controller feeds them to its write queue). Event counters are folded
// into the stats set once per page instead of once per line.
func (m *Memory) AccessPage(now config.Cycle, pa addr.Phys, write bool, starts, dones *[config.LinesPerPage]config.Cycle) (last config.Cycle) {
	if ts := m.trace; ts.Active() {
		name := "access_page_read"
		if write {
			name = "access_page_write"
		}
		ts.Enter()
		defer func() { ts.Exit("pcm", name, uint64(now), uint64(last), 0) }()
	}
	base := pa.PageAlign()
	var tl tally
	for li := 0; li < config.LinesPerPage; li++ {
		at := now
		if starts != nil {
			at = starts[li]
		}
		done := m.access(at, base+addr.Phys(li*config.LineSize), write, &tl)
		if dones != nil {
			dones[li] = done
		}
		if done > last {
			last = done
		}
	}
	m.flushTally(&tl)
	return last
}

// ReadPageInto copies the full 4 KB page containing pa into dst.
// Functional only; use AccessPage for timing.
func (m *Memory) ReadPageInto(pa addr.Phys, dst *aesctr.Page) {
	*dst = aesctr.Page(*m.frame(pa))
}

// PeekPageInto is ReadPageInto without the first-touch allocation: an
// unbacked frame reads as zeros instead of materializing in the frame map.
// The concurrent read fast-path uses it so a reader goroutine never
// mutates the device (frame allocation would race the owner and perturb
// FramesTouched/migration images).
func (m *Memory) PeekPageInto(pa addr.Phys, dst *aesctr.Page) {
	if f, ok := m.frames[pa.PageNum()]; ok {
		*dst = aesctr.Page(*f)
		return
	}
	*dst = aesctr.Page{}
}

// WritePageFrom stores a full 4 KB page at the page containing pa.
// Functional only.
func (m *Memory) WritePageFrom(pa addr.Phys, src *aesctr.Page) {
	*m.frame(pa) = [config.PageSize]byte(*src)
}

// Reads returns the number of line reads serviced.
func (m *Memory) Reads() uint64 { return m.st.Get("pcm.reads") }

// Writes returns the number of line writes serviced.
func (m *Memory) Writes() uint64 { return m.st.Get("pcm.writes") }

// FramesTouched returns how many distinct 4 KB frames have backing storage.
func (m *Memory) FramesTouched() int { return len(m.frames) }

// ExportFrames deep-copies every backed frame, keyed by page number — the
// serializable form of the device contents (ciphertext) used by shard
// migration images.
func (m *Memory) ExportFrames() map[uint64][]byte {
	out := make(map[uint64][]byte, len(m.frames))
	for pn, f := range m.frames {
		b := make([]byte, config.PageSize)
		copy(b, f[:])
		out[pn] = b
	}
	return out
}

// ImportFrames replaces the device contents with the exported set. Frames
// shorter than a page are zero-padded; timing state is untouched.
func (m *Memory) ImportFrames(frames map[uint64][]byte) {
	m.frames = make(map[uint64]*[config.PageSize]byte, len(frames))
	for pn, b := range frames {
		f := new([config.PageSize]byte)
		copy(f[:], b)
		m.frames[pn] = f
	}
}

// ResetTiming clears bank state (used at measurement-phase boundaries so
// warm-up traffic does not leak stale busy-until times into the measured
// region; contents are preserved).
func (m *Memory) ResetTiming() {
	for i := range m.banks {
		m.banks[i] = bank{}
	}
}
