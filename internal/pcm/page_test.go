package pcm

import (
	"testing"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/stats"
)

func TestPageRoundtrip(t *testing.T) {
	m := newMem()
	var page aesctr.Page
	for i := range page {
		page[i] = byte(i * 7)
	}
	m.WritePageFrom(0x4000, &page)
	var got aesctr.Page
	m.ReadPageInto(0x4000, &got)
	if got != page {
		t.Fatal("page roundtrip failed")
	}
	// Page and line views agree.
	line := m.ReadLine(0x4000 + 3*config.LineSize)
	for i := range line {
		if line[i] != page[3*config.LineSize+i] {
			t.Fatalf("line view disagrees at byte %d", i)
		}
	}
}

// TestAccessPagePipelinesBanks verifies the batched page access overlaps
// work across the banks a page stripes over: the burst must complete well
// before 64 strictly chained line accesses would.
func TestAccessPagePipelinesBanks(t *testing.T) {
	pa := addr.Phys(0x100000)

	m1 := newMem()
	pageDone := m1.AccessPage(0, pa, false, nil, nil)

	m2 := newMem()
	chained := config.Cycle(0)
	for li := 0; li < config.LinesPerPage; li++ {
		chained = m2.Access(chained, pa+addr.Phys(li*config.LineSize), false)
	}

	if pageDone >= chained {
		t.Fatalf("AccessPage %d cycles >= chained line accesses %d cycles: no bank pipelining", pageDone, chained)
	}
	// The default geometry stripes a page over 4 (channel, bank) pairs, so
	// the burst should land near a quarter of the serial time.
	if pageDone > chained/2 {
		t.Errorf("AccessPage %d cycles > half of serial %d: pipelining weaker than the bank stripe allows", pageDone, chained)
	}
}

// TestAccessPageStatsMatchPerLine pins that batching only changes how event
// counters are flushed, never what they count.
func TestAccessPageStatsMatchPerLine(t *testing.T) {
	pa := addr.Phys(0x200000)
	var starts, dones [config.LinesPerPage]config.Cycle

	stPage := stats.NewSet()
	mPage := New(config.Default().PCM, stPage)
	for li := range starts {
		starts[li] = config.Cycle(li)
	}
	mPage.AccessPage(0, pa, true, &starts, &dones)

	stLine := stats.NewSet()
	mLine := New(config.Default().PCM, stLine)
	for li := 0; li < config.LinesPerPage; li++ {
		want := mLine.Access(starts[li], pa+addr.Phys(li*config.LineSize), true)
		if dones[li] != want {
			t.Fatalf("line %d: AccessPage done %d != Access done %d", li, dones[li], want)
		}
	}

	for _, name := range []string{"pcm.reads", "pcm.writes", "pcm.row_hits", "pcm.row_misses", "pcm.bank_conflicts", "pcm.adaptive_closes"} {
		if stPage.Get(name) != stLine.Get(name) {
			t.Errorf("%s: page path %d != line path %d", name, stPage.Get(name), stLine.Get(name))
		}
	}
}

func BenchmarkAccessPage(b *testing.B) {
	m := newMem()
	b.ReportAllocs()
	now := config.Cycle(0)
	for i := 0; i < b.N; i++ {
		now = m.AccessPage(now, addr.Phys(i%16)*config.PageSize, i%2 == 0, nil, nil)
	}
}
