package pcm

import (
	"testing"
	"testing/quick"

	"fsencr/internal/addr"
	"fsencr/internal/aesctr"
	"fsencr/internal/config"
	"fsencr/internal/stats"
)

func newMem() *Memory {
	return New(config.Default().PCM, stats.NewSet())
}

func TestReadWriteRoundtrip(t *testing.T) {
	m := newMem()
	var line aesctr.Line
	for i := range line {
		line[i] = byte(i)
	}
	m.WriteLine(0x1040, line)
	if m.ReadLine(0x1040) != line {
		t.Fatal("roundtrip failed")
	}
}

func TestZeroFill(t *testing.T) {
	m := newMem()
	if m.ReadLine(0x90000) != (aesctr.Line{}) {
		t.Fatal("fresh memory not zero")
	}
}

func TestPropertyRoundtripSparse(t *testing.T) {
	m := newMem()
	f := func(pageNum uint32, lineIdx uint8, val byte) bool {
		pa := addr.Phys(uint64(pageNum)*config.PageSize + uint64(lineIdx%config.LinesPerPage)*config.LineSize)
		var line aesctr.Line
		line[0] = val
		m.WriteLine(pa, line)
		return m.ReadLine(pa)[0] == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRowBufferHitFasterThanMiss(t *testing.T) {
	m := newMem()
	missDone := m.Access(0, 0x100000, false)
	start := missDone
	hitDone := m.Access(start, 0x100040, false) // same row
	missLat := missDone - 0
	hitLat := hitDone - start
	if hitLat >= missLat {
		t.Fatalf("row hit (%d) not faster than miss (%d)", hitLat, missLat)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	a := newMem()
	readDone := a.Access(0, 0x200000, false)
	b := newMem()
	writeDone := b.Access(0, 0x200000, true)
	if writeDone <= readDone {
		t.Fatalf("write (%d) not slower than read (%d)", writeDone, readDone)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	m := newMem()
	d1 := m.Access(0, 0x300000, false)
	// Same bank, same row: second access must start after the first's bank
	// busy time (here equal to done since reads don't add recovery).
	d2 := m.Access(0, 0x300040, false)
	if d2 <= d1 {
		t.Fatalf("second access to busy bank completed at %d, first at %d", d2, d1)
	}
}

func TestStatsCounting(t *testing.T) {
	st := stats.NewSet()
	m := New(config.Default().PCM, st)
	m.Access(0, 0x1000, false)
	m.Access(0, 0x2000, true)
	if st.Get("pcm.reads") != 1 || st.Get("pcm.writes") != 1 {
		t.Fatalf("reads=%d writes=%d", st.Get("pcm.reads"), st.Get("pcm.writes"))
	}
	if m.Reads() != 1 || m.Writes() != 1 {
		t.Fatal("accessors disagree with stats")
	}
}

func TestResetTiming(t *testing.T) {
	m := newMem()
	m.WriteLine(0x5000, aesctr.Line{1})
	m.Access(0, 0x5000, true)
	m.ResetTiming()
	// Bank state cleared: an access at time 0 must not wait.
	done := m.Access(0, 0x5000, false)
	fresh := newMem()
	if done != fresh.Access(0, 0x5000, false) {
		t.Fatal("ResetTiming did not clear bank state")
	}
	if m.ReadLine(0x5000) != (aesctr.Line{1}) {
		t.Fatal("ResetTiming clobbered contents")
	}
}

func TestFramesTouched(t *testing.T) {
	m := newMem()
	m.WriteLine(0, aesctr.Line{})
	m.WriteLine(config.PageSize, aesctr.Line{})
	m.WriteLine(config.PageSize+64, aesctr.Line{})
	if m.FramesTouched() != 2 {
		t.Fatalf("frames = %d", m.FramesTouched())
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	m := newMem()
	mapping := addr.NewMapping(config.Default().PCM)
	// Find two addresses on different banks.
	base := addr.Phys(0x400000)
	d0 := mapping.Decompose(base)
	var other addr.Phys
	for off := uint64(64); ; off += 64 {
		cand := base + addr.Phys(off)
		if mapping.BankID(mapping.Decompose(cand)) != mapping.BankID(d0) {
			other = cand
			break
		}
	}
	first := m.Access(0, base, false)
	second := m.Access(0, other, false)
	if second > first {
		t.Fatalf("independent banks serialized: %d then %d", first, second)
	}
}
