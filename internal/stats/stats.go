// Package stats provides the counter registry used across the simulator and
// the table/series formatting used by the benchmark harness to print the
// paper's figures.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a named collection of integer counters. It is not safe for
// concurrent use; the simulated machine is single-goroutine by design.
type Set struct {
	counters map[string]uint64
	order    []string
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{counters: make(map[string]uint64)}
}

// Add increments counter name by delta, creating it if needed.
func (s *Set) Add(name string, delta uint64) {
	if _, ok := s.counters[name]; !ok {
		s.order = append(s.order, name)
	}
	s.counters[name] += delta
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the value of counter name (zero if never touched).
func (s *Set) Get(name string) uint64 { return s.counters[name] }

// Set assigns counter name to v.
func (s *Set) Set(name string, v uint64) {
	if _, ok := s.counters[name]; !ok {
		s.order = append(s.order, name)
	}
	s.counters[name] = v
}

// Names returns the counter names in first-touch order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Snapshot returns a copy of all counters.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Reset zeroes every counter but keeps the registry.
func (s *Set) Reset() {
	for k := range s.counters {
		s.counters[k] = 0
	}
}

// String renders the set sorted by name, one counter per line.
func (s *Set) String() string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %d\n", n, s.counters[n])
	}
	return b.String()
}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	bounds []uint64 // ascending upper bounds; last bucket is overflow
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds; values above the last bound land in an overflow bucket.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean of observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Buckets returns (upper bound, count) pairs, with ^uint64(0) as the
// overflow bucket's bound.
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	b := append([]uint64(nil), h.bounds...)
	b = append(b, ^uint64(0))
	c := append([]uint64(nil), h.counts...)
	return b, c
}
