package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSetAddIncGet(t *testing.T) {
	s := NewSet()
	if got := s.Get("missing"); got != 0 {
		t.Fatalf("untouched counter = %d", got)
	}
	s.Inc("a")
	s.Add("a", 4)
	s.Set("b", 7)
	if s.Get("a") != 5 || s.Get("b") != 7 {
		t.Fatalf("got a=%d b=%d", s.Get("a"), s.Get("b"))
	}
}

func TestSetNamesOrder(t *testing.T) {
	s := NewSet()
	s.Inc("z")
	s.Inc("a")
	s.Inc("z")
	names := s.Names()
	if len(names) != 2 || names[0] != "z" || names[1] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestSetSnapshotIsolated(t *testing.T) {
	s := NewSet()
	s.Set("x", 1)
	snap := s.Snapshot()
	s.Add("x", 10)
	if snap["x"] != 1 {
		t.Fatalf("snapshot mutated: %d", snap["x"])
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet()
	s.Set("x", 9)
	s.Reset()
	if s.Get("x") != 0 {
		t.Fatal("reset did not zero")
	}
	if len(s.Names()) != 1 {
		t.Fatal("reset dropped registry")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Set("beta", 2)
	s.Set("alpha", 1)
	out := s.String()
	if strings.Index(out, "alpha") > strings.Index(out, "beta") {
		t.Fatalf("String not sorted:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []uint64{1, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 5000 {
		t.Fatalf("max = %d", h.Max())
	}
	wantMean := float64(1+10+11+100+500+5000) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v want %v", h.Mean(), wantMean)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 4 {
		t.Fatalf("buckets: %v %v", bounds, counts)
	}
	// <=10: {1,10}; <=100: {11,100}; <=1000: {500}; overflow: {5000}
	want := []uint64{2, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d want %d", i, counts[i], want[i])
		}
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds accepted")
		}
	}()
	NewHistogram(10, 10)
}

func TestHistogramEmptyMean(t *testing.T) {
	if NewHistogram(1).Mean() != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 2)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1.500") {
		t.Fatalf("float not formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatalf("geomean of non-positives = %v", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("mean(nil) = %v", m)
	}
}
