package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-formatted results table, used by the benchmark
// harness to print each paper figure the same way regardless of whether it
// is produced from `go test -bench` or from cmd/fsencr-bench.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMean returns the geometric mean of xs (ignoring non-positive values,
// which cannot occur for slowdown ratios).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
