// Package merkle implements the 8-ary Bonsai Merkle Tree that protects the
// integrity of the security metadata region (MECB, FECB, and the encrypted
// OTT region). The root never leaves the processor; any tamper or replay of
// metadata read from memory is detected as a root mismatch (§III-G).
//
// The tree hashes real content (SHA-256): tampering with a counter block in
// the simulated NVM genuinely fails verification. It is stored sparsely:
// untouched subtrees collapse to precomputed default hashes, so a 9-level
// 8-ary tree covering 16.7M metadata blocks costs memory only for the
// blocks a workload actually touches.
//
// Propagation is write-back, mirroring §III-G's treatment of cached tree
// nodes as trusted: Update records only the new leaf hash and marks the
// leaf dirty; the internal path up to the root is recomputed lazily by
// Flush, which deduplicates shared parents (64 line writes to one page
// collapse into a single path recompute). Every externally observable
// operation — Root, Verify, Rebuild — flushes first, so the visible root
// at any observation point is byte-identical to an eagerly propagated
// tree's and still covers every prior update.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// Hash is a tree node digest.
type Hash [32]byte

// Tree is a sparse N-ary Merkle tree with a fixed number of levels.
// Level 0 holds leaf hashes; level Levels()-1 holds the single root.
type Tree struct {
	arity    int
	levels   int
	nodes    []map[int]Hash // one sparse map per level
	defaults []Hash         // default hash of an untouched node per level

	// dirty holds leaf indices whose new hashes sit in nodes[0] but whose
	// internal paths have not been propagated yet. Internal nodes above a
	// dirty leaf are stale until the next Flush.
	dirty map[int]struct{}
	// flushScratch is the reusable parent-frontier worklist of Flush, so a
	// flush costs no per-call slice allocations in steady state.
	flushScratch []int

	tVerifies   *telemetry.Counter
	tVerFails   *telemetry.Counter
	tUpdates    *telemetry.Counter
	tHashDepth  *telemetry.Histogram
	tFlushes    *telemetry.Counter
	tDirtyLeafs *telemetry.Histogram

	// Security-event journal plus the owner-supplied simulated-cycle clock
	// (the tree itself has no notion of time).
	jrn    *journal.Journal
	jclock func() uint64
}

// AttachJournal attaches a security-event journal and the simulated-cycle
// clock events are stamped with. A nil journal detaches.
func (t *Tree) AttachJournal(j *journal.Journal, clock func() uint64) {
	t.jrn = j
	t.jclock = clock
}

func (t *Tree) jcycle() uint64 {
	if t.jclock == nil {
		return 0
	}
	return t.jclock()
}

// Instrument attaches telemetry handles. A nil registry detaches.
func (t *Tree) Instrument(reg *telemetry.Registry) {
	t.tVerifies = reg.Counter("merkle.verifies")
	t.tVerFails = reg.Counter("merkle.verify_failures")
	t.tUpdates = reg.Counter("merkle.updates")
	t.tHashDepth = reg.Histogram("merkle.hash_depth")
	t.tFlushes = reg.Counter("merkle.flushes")
	t.tDirtyLeafs = reg.Histogram("merkle.dirty_leaves_per_flush")
}

// New builds an all-default tree with the given arity and level count
// (Table III: arity 8, 9 levels -> 8^8 leaves of coverage).
func New(arity, levels int) *Tree {
	if arity < 2 || levels < 2 {
		panic("merkle: need arity >= 2 and levels >= 2")
	}
	t := &Tree{arity: arity, levels: levels}
	t.nodes = make([]map[int]Hash, levels)
	for i := range t.nodes {
		t.nodes[i] = make(map[int]Hash)
	}
	t.dirty = make(map[int]struct{})
	t.defaults = make([]Hash, levels)
	var zero [64]byte
	t.defaults[0] = hashLeaf(zero[:])
	for lvl := 1; lvl < levels; lvl++ {
		t.defaults[lvl] = hashChildrenOf(lvl, func(int) Hash { return t.defaults[lvl-1] }, arity)
	}
	return t
}

// Arity returns the tree fan-out.
func (t *Tree) Arity() int { return t.arity }

// Levels returns the number of levels including leaves and root.
func (t *Tree) Levels() int { return t.levels }

// NumLeaves returns the leaf coverage of the tree.
func (t *Tree) NumLeaves() int {
	n := 1
	for i := 1; i < t.levels; i++ {
		n *= t.arity
	}
	return n
}

// Root returns the current root (held inside the processor), propagating
// any pending leaf updates first so the returned value covers them.
func (t *Tree) Root() Hash {
	t.Flush()
	return t.node(t.levels-1, 0)
}

func (t *Tree) node(lvl, idx int) Hash {
	if h, ok := t.nodes[lvl][idx]; ok {
		return h
	}
	return t.defaults[lvl]
}

// scratchArity bounds the fan-out the one-shot stack-buffer hash path
// handles; wider trees fall back to streaming SHA-256. The paper's tree is
// arity 8 (Table III).
const scratchArity = 16

func hashLeaf(content []byte) Hash {
	// One-shot hash over a stack scratch buffer: sha256.Sum256 never
	// allocates, unlike a fresh sha256.New() per node. Counter blocks and
	// OTT buckets are 64 B; the fallback covers oversized bucket chains.
	var buf [1 + 256]byte
	if len(content) < len(buf) {
		buf[0] = 0x00 // leaf domain separator
		n := copy(buf[1:], content)
		return sha256.Sum256(buf[:1+n])
	}
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(content)
	var out Hash
	h.Sum(out[:0])
	return out
}

func hashPrefix(buf []byte, lvl int) {
	buf[0] = 0x01 // internal domain separator
	binary.LittleEndian.PutUint32(buf[1:], uint32(lvl))
}

func hashChildrenOf(lvl int, child func(i int) Hash, arity int) Hash {
	if arity <= scratchArity {
		var buf [5 + scratchArity*32]byte
		hashPrefix(buf[:], lvl)
		off := 5
		for i := 0; i < arity; i++ {
			c := child(i)
			copy(buf[off:], c[:])
			off += 32
		}
		return sha256.Sum256(buf[:off])
	}
	h := sha256.New()
	var pre [5]byte
	hashPrefix(pre[:], lvl)
	h.Write(pre[:])
	for i := 0; i < arity; i++ {
		c := child(i)
		h.Write(c[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// hashChildren is the flush/verify hot path: the closure-free variant of
// hashChildrenOf, reading children straight out of the node maps into a
// stack buffer.
func (t *Tree) hashChildren(lvl, idx int) Hash {
	lo := idx * t.arity
	if t.arity <= scratchArity {
		var buf [5 + scratchArity*32]byte
		hashPrefix(buf[:], lvl)
		off := 5
		for i := 0; i < t.arity; i++ {
			c := t.node(lvl-1, lo+i)
			copy(buf[off:], c[:])
			off += 32
		}
		return sha256.Sum256(buf[:off])
	}
	return hashChildrenOf(lvl, func(i int) Hash { return t.node(lvl-1, lo+i) }, t.arity)
}

func (t *Tree) checkLeaf(idx int) {
	if idx < 0 || idx >= t.NumLeaves() {
		panic(fmt.Sprintf("merkle: leaf %d out of range [0,%d)", idx, t.NumLeaves()))
	}
}

// Update records the new content hash for leaf idx and marks the leaf
// dirty. The internal path is NOT recomputed here: propagation is deferred
// to the next Flush (triggered by any external observation), which is where
// writes to many leaves under a shared parent collapse into one recompute.
func (t *Tree) Update(idx int, content []byte) {
	t.checkLeaf(idx)
	t.tUpdates.Inc()
	t.tHashDepth.Observe(0) // only the leaf is hashed here
	t.nodes[0][idx] = hashLeaf(content)
	t.dirty[idx] = struct{}{}
}

// Dirty reports how many leaves have pending (unpropagated) updates.
func (t *Tree) Dirty() int { return len(t.dirty) }

// Flush propagates every dirty leaf's path to the root, level by level,
// visiting each distinct parent exactly once. A clean tree flushes for
// free. After Flush, every internal node is consistent with the leaves.
func (t *Tree) Flush() {
	if len(t.dirty) == 0 {
		return
	}
	t.tFlushes.Inc()
	t.tDirtyLeafs.Observe(uint64(len(t.dirty)))
	// Seed the frontier with the dirty leaves and sort once: dividing a
	// sorted sequence by the arity keeps it sorted, so at every level the
	// shared parents of adjacent children sit next to each other and the
	// dedup is a single adjacent-equality sweep.
	frontier := t.flushScratch[:0]
	for idx := range t.dirty {
		frontier = append(frontier, idx)
	}
	clear(t.dirty)
	sort.Ints(frontier)
	for lvl := 1; lvl < t.levels; lvl++ {
		n := 0
		for _, idx := range frontier {
			parent := idx / t.arity
			if n > 0 && frontier[n-1] == parent {
				continue
			}
			frontier[n] = parent
			n++
			t.nodes[lvl][parent] = t.hashChildren(lvl, parent)
		}
		frontier = frontier[:n]
	}
	t.flushScratch = frontier[:0]
}

// Verify checks that content matches the recorded leaf hash for idx and
// that the recorded path is consistent up to the root. It returns false on
// any mismatch (tampered or replayed metadata). Pending updates are flushed
// first so a leaf with dirty ancestors verifies against a consistent path —
// the verdict is identical to an eagerly propagated tree's.
func (t *Tree) Verify(idx int, content []byte) bool {
	t.Flush()
	t.tVerifies.Inc()
	leaf := idx
	if idx < 0 || idx >= t.NumLeaves() {
		t.verifyFailed(leaf, 0)
		return false
	}
	if hashLeaf(content) != t.node(0, idx) {
		t.verifyFailed(leaf, 0)
		t.tHashDepth.Observe(0)
		return false
	}
	for lvl := 1; lvl < t.levels; lvl++ {
		idx /= t.arity
		if t.hashChildren(lvl, idx) != t.node(lvl, idx) {
			t.verifyFailed(leaf, lvl)
			t.tHashDepth.Observe(uint64(lvl))
			return false
		}
	}
	t.tHashDepth.Observe(uint64(t.levels - 1))
	return true
}

// verifyFailed accounts one integrity failure. The journal event's Page
// field carries the failing leaf index (the metadata block, not a data
// page) and Detail the tree level at which the walk diverged.
func (t *Tree) verifyFailed(leaf, lvl int) {
	t.tVerFails.Inc()
	if t.jrn != nil {
		t.jrn.Emit(journal.Event{Cycle: t.jcycle(), Type: journal.MerkleVerifyFail,
			Page: uint64(leaf), Detail: fmt.Sprintf("level=%d", lvl)})
	}
}

// NodeID identifies one internal tree node.
type NodeID struct {
	Level int
	Index int
}

// PathNodes returns, for leaf idx, the internal node coordinates visited
// from the leaf's parent up to (but excluding) the root. The memory
// controller uses these to model metadata-cache traffic for tree walks: a
// walk stops at the first node found in the metadata cache (a cached node
// is trusted), and the root never leaves the chip.
func (t *Tree) PathNodes(idx int) []NodeID {
	return t.AppendPathNodes(make([]NodeID, 0, t.levels-2), idx)
}

// AppendPathNodes is PathNodes appending into a caller-owned slice, for
// hot paths that walk a path per memory write and must not allocate.
func (t *Tree) AppendPathNodes(path []NodeID, idx int) []NodeID {
	for lvl := 1; lvl < t.levels-1; lvl++ {
		idx /= t.arity
		path = append(path, NodeID{Level: lvl, Index: idx})
	}
	return path
}

// Rebuild reconstructs the whole tree from a set of non-default leaf
// contents (crash recovery: counters are recovered first, then the tree is
// regenerated and checked against the processor-resident root, §II-D).
// Pending lazy updates are discarded wholesale — the supplied leaves are
// the new truth.
func (t *Tree) Rebuild(leaves map[int][]byte) {
	for i := range t.nodes {
		t.nodes[i] = make(map[int]Hash)
	}
	clear(t.dirty)
	for idx, content := range leaves {
		t.checkLeaf(idx)
		t.nodes[0][idx] = hashLeaf(content)
	}
	// Propagate upward, level by level, touching only parents of touched
	// nodes.
	touched := make(map[int]struct{}, len(leaves))
	for idx := range leaves {
		touched[idx/t.arity] = struct{}{}
	}
	for lvl := 1; lvl < t.levels; lvl++ {
		next := make(map[int]struct{}, len(touched))
		for idx := range touched {
			t.nodes[lvl][idx] = t.hashChildren(lvl, idx)
			next[idx/t.arity] = struct{}{}
		}
		touched = next
	}
	// A wholesale rebuild replaces the processor-resident root: recovery
	// and transport import, the moments an operator auditing the journal
	// most wants pinned.
	t.jrn.Emit(journal.Event{Cycle: t.jcycle(), Type: journal.MerkleRootUpdate})
}
