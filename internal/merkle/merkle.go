// Package merkle implements the 8-ary Bonsai Merkle Tree that protects the
// integrity of the security metadata region (MECB, FECB, and the encrypted
// OTT region). The root never leaves the processor; any tamper or replay of
// metadata read from memory is detected as a root mismatch (§III-G).
//
// The tree hashes real content (SHA-256): tampering with a counter block in
// the simulated NVM genuinely fails verification. It is stored sparsely:
// untouched subtrees collapse to precomputed default hashes, so a 9-level
// 8-ary tree covering 16.7M metadata blocks costs memory only for the
// blocks a workload actually touches.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// Hash is a tree node digest.
type Hash [32]byte

// Tree is a sparse N-ary Merkle tree with a fixed number of levels.
// Level 0 holds leaf hashes; level Levels()-1 holds the single root.
type Tree struct {
	arity    int
	levels   int
	nodes    []map[int]Hash // one sparse map per level
	defaults []Hash         // default hash of an untouched node per level

	tVerifies  *telemetry.Counter
	tVerFails  *telemetry.Counter
	tUpdates   *telemetry.Counter
	tHashDepth *telemetry.Histogram

	// Security-event journal plus the owner-supplied simulated-cycle clock
	// (the tree itself has no notion of time).
	jrn    *journal.Journal
	jclock func() uint64
}

// AttachJournal attaches a security-event journal and the simulated-cycle
// clock events are stamped with. A nil journal detaches.
func (t *Tree) AttachJournal(j *journal.Journal, clock func() uint64) {
	t.jrn = j
	t.jclock = clock
}

func (t *Tree) jcycle() uint64 {
	if t.jclock == nil {
		return 0
	}
	return t.jclock()
}

// Instrument attaches telemetry handles. A nil registry detaches.
func (t *Tree) Instrument(reg *telemetry.Registry) {
	t.tVerifies = reg.Counter("merkle.verifies")
	t.tVerFails = reg.Counter("merkle.verify_failures")
	t.tUpdates = reg.Counter("merkle.updates")
	t.tHashDepth = reg.Histogram("merkle.hash_depth")
}

// New builds an all-default tree with the given arity and level count
// (Table III: arity 8, 9 levels -> 8^8 leaves of coverage).
func New(arity, levels int) *Tree {
	if arity < 2 || levels < 2 {
		panic("merkle: need arity >= 2 and levels >= 2")
	}
	t := &Tree{arity: arity, levels: levels}
	t.nodes = make([]map[int]Hash, levels)
	for i := range t.nodes {
		t.nodes[i] = make(map[int]Hash)
	}
	t.defaults = make([]Hash, levels)
	var zero [64]byte
	t.defaults[0] = hashLeaf(zero[:])
	for lvl := 1; lvl < levels; lvl++ {
		t.defaults[lvl] = hashChildrenOf(lvl, func(int) Hash { return t.defaults[lvl-1] }, arity)
	}
	return t
}

// Arity returns the tree fan-out.
func (t *Tree) Arity() int { return t.arity }

// Levels returns the number of levels including leaves and root.
func (t *Tree) Levels() int { return t.levels }

// NumLeaves returns the leaf coverage of the tree.
func (t *Tree) NumLeaves() int {
	n := 1
	for i := 1; i < t.levels; i++ {
		n *= t.arity
	}
	return n
}

// Root returns the current root (held inside the processor).
func (t *Tree) Root() Hash { return t.node(t.levels-1, 0) }

func (t *Tree) node(lvl, idx int) Hash {
	if h, ok := t.nodes[lvl][idx]; ok {
		return h
	}
	return t.defaults[lvl]
}

func hashLeaf(content []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00}) // leaf domain separator
	h.Write(content)
	var out Hash
	h.Sum(out[:0])
	return out
}

func hashChildrenOf(lvl int, child func(i int) Hash, arity int) Hash {
	h := sha256.New()
	var pre [5]byte
	pre[0] = 0x01 // internal domain separator
	binary.LittleEndian.PutUint32(pre[1:], uint32(lvl))
	h.Write(pre[:])
	for i := 0; i < arity; i++ {
		c := child(i)
		h.Write(c[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

func (t *Tree) hashChildren(lvl, idx int) Hash {
	lo := idx * t.arity
	return hashChildrenOf(lvl, func(i int) Hash { return t.node(lvl-1, lo+i) }, t.arity)
}

func (t *Tree) checkLeaf(idx int) {
	if idx < 0 || idx >= t.NumLeaves() {
		panic(fmt.Sprintf("merkle: leaf %d out of range [0,%d)", idx, t.NumLeaves()))
	}
}

// Update re-hashes leaf idx with the new content and propagates to the root.
func (t *Tree) Update(idx int, content []byte) {
	t.checkLeaf(idx)
	t.tUpdates.Inc()
	t.tHashDepth.Observe(uint64(t.levels - 1))
	t.nodes[0][idx] = hashLeaf(content)
	for lvl := 1; lvl < t.levels; lvl++ {
		idx /= t.arity
		t.nodes[lvl][idx] = t.hashChildren(lvl, idx)
	}
}

// Verify checks that content matches the recorded leaf hash for idx and
// that the recorded path is consistent up to the root. It returns false on
// any mismatch (tampered or replayed metadata).
func (t *Tree) Verify(idx int, content []byte) bool {
	t.tVerifies.Inc()
	leaf := idx
	if idx < 0 || idx >= t.NumLeaves() {
		t.verifyFailed(leaf, 0)
		return false
	}
	if hashLeaf(content) != t.node(0, idx) {
		t.verifyFailed(leaf, 0)
		t.tHashDepth.Observe(0)
		return false
	}
	for lvl := 1; lvl < t.levels; lvl++ {
		idx /= t.arity
		if t.hashChildren(lvl, idx) != t.node(lvl, idx) {
			t.verifyFailed(leaf, lvl)
			t.tHashDepth.Observe(uint64(lvl))
			return false
		}
	}
	t.tHashDepth.Observe(uint64(t.levels - 1))
	return true
}

// verifyFailed accounts one integrity failure. The journal event's Page
// field carries the failing leaf index (the metadata block, not a data
// page) and Detail the tree level at which the walk diverged.
func (t *Tree) verifyFailed(leaf, lvl int) {
	t.tVerFails.Inc()
	if t.jrn != nil {
		t.jrn.Emit(journal.Event{Cycle: t.jcycle(), Type: journal.MerkleVerifyFail,
			Page: uint64(leaf), Detail: fmt.Sprintf("level=%d", lvl)})
	}
}

// NodeID identifies one internal tree node.
type NodeID struct {
	Level int
	Index int
}

// PathNodes returns, for leaf idx, the internal node coordinates visited
// from the leaf's parent up to (but excluding) the root. The memory
// controller uses these to model metadata-cache traffic for tree walks: a
// walk stops at the first node found in the metadata cache (a cached node
// is trusted), and the root never leaves the chip.
func (t *Tree) PathNodes(idx int) []NodeID {
	path := make([]NodeID, 0, t.levels-2)
	for lvl := 1; lvl < t.levels-1; lvl++ {
		idx /= t.arity
		path = append(path, NodeID{Level: lvl, Index: idx})
	}
	return path
}

// Rebuild reconstructs the whole tree from a set of non-default leaf
// contents (crash recovery: counters are recovered first, then the tree is
// regenerated and checked against the processor-resident root, §II-D).
func (t *Tree) Rebuild(leaves map[int][]byte) {
	for i := range t.nodes {
		t.nodes[i] = make(map[int]Hash)
	}
	for idx, content := range leaves {
		t.checkLeaf(idx)
		t.nodes[0][idx] = hashLeaf(content)
	}
	// Propagate upward, level by level, touching only parents of touched
	// nodes.
	touched := make(map[int]struct{}, len(leaves))
	for idx := range leaves {
		touched[idx/t.arity] = struct{}{}
	}
	for lvl := 1; lvl < t.levels; lvl++ {
		next := make(map[int]struct{}, len(touched))
		for idx := range touched {
			t.nodes[lvl][idx] = t.hashChildren(lvl, idx)
			next[idx/t.arity] = struct{}{}
		}
		touched = next
	}
	// A wholesale rebuild replaces the processor-resident root: recovery
	// and transport import, the moments an operator auditing the journal
	// most wants pinned.
	t.jrn.Emit(journal.Event{Cycle: t.jcycle(), Type: journal.MerkleRootUpdate})
}
