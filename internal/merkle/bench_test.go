package merkle

import "testing"

// Write-back hot-path benchmarks. BenchmarkMerkleUpdate is the cost the
// memory controller pays on every NVM write (leaf hash + dirty-set insert);
// BenchmarkMerkleFlush is the deferred propagation bill for one page's
// worth of line writes (64 leaves under shared parents), paid once per
// external observation instead of once per write. Run with
// `go test -bench 'MerkleUpdate|MerkleFlush' ./internal/merkle`.

var benchContent = make([]byte, 64)

func BenchmarkMerkleUpdate(b *testing.B) {
	tr := New(8, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchContent[0] = byte(i)
		tr.Update(i&4095, benchContent)
	}
}

func BenchmarkMerkleFlush(b *testing.B) {
	tr := New(8, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for leaf := 0; leaf < 64; leaf++ {
			benchContent[0] = byte(leaf ^ i)
			tr.Update(leaf, benchContent)
		}
		tr.Flush()
	}
}
