package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsencr/internal/telemetry"
)

func content(b byte) []byte {
	c := make([]byte, 64)
	for i := range c {
		c[i] = b
	}
	return c
}

func TestVerifyAfterUpdate(t *testing.T) {
	tr := New(8, 4)
	tr.Update(10, content(1))
	if !tr.Verify(10, content(1)) {
		t.Fatal("fresh update does not verify")
	}
	if tr.Verify(10, content(2)) {
		t.Fatal("wrong content verified")
	}
}

func TestDefaultLeavesVerifyZero(t *testing.T) {
	tr := New(8, 4)
	if !tr.Verify(100, make([]byte, 64)) {
		t.Fatal("untouched leaf does not verify zero content")
	}
}

func TestRootChangesOnUpdate(t *testing.T) {
	tr := New(8, 4)
	r0 := tr.Root()
	tr.Update(0, content(1))
	r1 := tr.Root()
	if r0 == r1 {
		t.Fatal("root unchanged after update")
	}
	tr.Update(511, content(2))
	if tr.Root() == r1 {
		t.Fatal("root unchanged after second update")
	}
}

func TestTamperDetection(t *testing.T) {
	tr := New(8, 4)
	tr.Update(7, content(3))
	// Attacker replays leaf 7's content at leaf 8.
	if tr.Verify(8, content(3)) {
		t.Fatal("replayed content verified at wrong leaf")
	}
}

func TestUpdateIsolation(t *testing.T) {
	tr := New(8, 4)
	tr.Update(1, content(1))
	tr.Update(2, content(2))
	if !tr.Verify(1, content(1)) || !tr.Verify(2, content(2)) {
		t.Fatal("sibling update corrupted earlier leaf")
	}
}

func TestNumLeaves(t *testing.T) {
	tr := New(8, 9)
	if tr.NumLeaves() != 8*8*8*8*8*8*8*8 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
	if tr.Levels() != 9 || tr.Arity() != 8 {
		t.Fatal("geometry accessors wrong")
	}
}

func TestPathNodes(t *testing.T) {
	tr := New(8, 9)
	path := tr.PathNodes(12345)
	if len(path) != 7 { // levels 1..7 (root excluded)
		t.Fatalf("path length = %d", len(path))
	}
	if path[0].Index != 12345/8 {
		t.Fatalf("first parent = %d", path[0].Index)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Level != path[i-1].Level+1 {
			t.Fatal("path levels not ascending")
		}
		if path[i].Index != path[i-1].Index/8 {
			t.Fatal("path indices not contracting by arity")
		}
	}
}

func TestRebuildMatchesIncremental(t *testing.T) {
	incr := New(8, 4)
	leaves := map[int][]byte{
		0:   content(1),
		63:  content(2),
		64:  content(3),
		511: content(4),
	}
	for idx, c := range leaves {
		incr.Update(idx, c)
	}
	rebuilt := New(8, 4)
	rebuilt.Rebuild(leaves)
	if incr.Root() != rebuilt.Root() {
		t.Fatal("rebuild root differs from incremental root")
	}
}

func TestRebuildDropsStaleState(t *testing.T) {
	tr := New(8, 4)
	tr.Update(5, content(9))
	tr.Rebuild(map[int][]byte{})
	empty := New(8, 4)
	if tr.Root() != empty.Root() {
		t.Fatal("rebuild with no leaves != fresh tree")
	}
}

func TestVerifyOutOfRange(t *testing.T) {
	tr := New(8, 3)
	if tr.Verify(-1, content(0)) || tr.Verify(tr.NumLeaves(), content(0)) {
		t.Fatal("out-of-range leaf verified")
	}
}

func TestUpdateOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range update did not panic")
		}
	}()
	New(8, 3).Update(10000, content(0))
}

func TestPropertyRandomUpdatesVerify(t *testing.T) {
	tr := New(8, 4)
	written := make(map[int]byte)
	f := func(idx uint16, val byte) bool {
		i := int(idx) % tr.NumLeaves()
		tr.Update(i, content(val))
		written[i] = val
		for j, v := range written {
			if !tr.Verify(j, content(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryTree(t *testing.T) {
	tr := New(2, 5) // 16 leaves
	if tr.NumLeaves() != 16 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
	tr.Update(15, content(1))
	if !tr.Verify(15, content(1)) {
		t.Fatal("binary tree verify failed")
	}
}

// eagerUpdate drives tr exactly like the pre-write-back tree: every update
// is propagated to the root immediately.
func eagerUpdate(tr *Tree, idx int, c []byte) {
	tr.Update(idx, c)
	tr.Flush()
}

// TestLazyMatchesEagerInterleavings drives identical random
// Update/Verify/Root interleavings through a lazily flushed tree and an
// eagerly flushed reference and asserts byte-identical roots and identical
// Verify verdicts at every observation point — including Verify of leaves
// whose ancestors are dirty in the lazy tree at call time.
func TestLazyMatchesEagerInterleavings(t *testing.T) {
	lazy := New(8, 4)
	eager := New(8, 4)
	rng := rand.New(rand.NewSource(20260805))
	written := make(map[int]byte)
	lastWritten := -1
	for step := 0; step < 3000; step++ {
		switch rng.Intn(6) {
		case 0, 1, 2: // update (majority: keep the lazy tree dirty)
			idx := rng.Intn(lazy.NumLeaves())
			v := byte(rng.Intn(256))
			lazy.Update(idx, content(v))
			eagerUpdate(eager, idx, content(v))
			written[idx] = v
			lastWritten = idx
		case 3: // verify the most recent leaf: its ancestors are dirty
			if lastWritten < 0 {
				continue
			}
			lv := lazy.Verify(lastWritten, content(written[lastWritten]))
			ev := eager.Verify(lastWritten, content(written[lastWritten]))
			if !lv || lv != ev {
				t.Fatalf("step %d: dirty-ancestor verify lazy=%v eager=%v", step, lv, ev)
			}
		case 4: // verify wrong content: both must reject
			idx := rng.Intn(lazy.NumLeaves())
			bad := content(written[idx] + 1)
			if lv, ev := lazy.Verify(idx, bad), eager.Verify(idx, bad); lv || lv != ev {
				t.Fatalf("step %d: wrong-content verify lazy=%v eager=%v", step, lv, ev)
			}
		case 5:
			if lazy.Root() != eager.Root() {
				t.Fatalf("step %d: roots diverged", step)
			}
		}
	}
	if lazy.Root() != eager.Root() {
		t.Fatal("final roots diverged")
	}
}

func TestVerifyFlushesDirtySiblingPaths(t *testing.T) {
	tr := New(8, 4)
	// Two siblings under one parent, updated without any observation in
	// between: verifying either must see a consistent path even though the
	// other's update is still unpropagated when Verify is called.
	tr.Update(8, content(1))
	tr.Update(9, content(2))
	if tr.Dirty() != 2 {
		t.Fatalf("Dirty() = %d before observation", tr.Dirty())
	}
	if !tr.Verify(8, content(1)) || !tr.Verify(9, content(2)) {
		t.Fatal("verify failed with a dirty sibling path")
	}
	if tr.Dirty() != 0 {
		t.Fatalf("Dirty() = %d after Verify", tr.Dirty())
	}
}

func TestFlushDeduplicatesSharedParents(t *testing.T) {
	reg := telemetry.New()
	tr := New(8, 4)
	tr.Instrument(reg)
	// 64 leaves spanning 8 shared level-1 parents, flushed once.
	for i := 0; i < 64; i++ {
		tr.Update(i, content(byte(i)))
	}
	root := tr.Root()
	snap := reg.Snapshot()
	if got := snap.Counters["merkle.flushes"]; got != 1 {
		t.Fatalf("merkle.flushes = %d, want 1", got)
	}
	h := snap.Histograms["merkle.dirty_leaves_per_flush"]
	if h == nil || h.Count != 1 || h.Sum != 64 {
		t.Fatalf("dirty_leaves_per_flush snapshot = %+v", h)
	}
	// The deduplicated flush must equal per-update propagation.
	ref := New(8, 4)
	for i := 0; i < 64; i++ {
		eagerUpdate(ref, i, content(byte(i)))
	}
	if root != ref.Root() {
		t.Fatal("deduplicated flush root differs from eager root")
	}
}

func TestRebuildDiscardsPendingUpdates(t *testing.T) {
	tr := New(8, 4)
	tr.Update(3, content(9))
	tr.Rebuild(map[int][]byte{5: content(1)})
	if tr.Dirty() != 0 {
		t.Fatal("Rebuild left pending updates")
	}
	ref := New(8, 4)
	eagerUpdate(ref, 5, content(1))
	if tr.Root() != ref.Root() {
		t.Fatal("rebuild root carries pre-rebuild dirty state")
	}
}

func TestAppendPathNodesMatchesPathNodes(t *testing.T) {
	tr := New(8, 9)
	scratch := make([]NodeID, 0, tr.Levels())
	for _, idx := range []int{0, 12345, tr.NumLeaves() - 1} {
		scratch = tr.AppendPathNodes(scratch[:0], idx)
		want := tr.PathNodes(idx)
		if len(scratch) != len(want) {
			t.Fatalf("leaf %d: len %d != %d", idx, len(scratch), len(want))
		}
		for i := range want {
			if scratch[i] != want[i] {
				t.Fatalf("leaf %d node %d: %+v != %+v", idx, i, scratch[i], want[i])
			}
		}
	}
}
