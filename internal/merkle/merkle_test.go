package merkle

import (
	"testing"
	"testing/quick"
)

func content(b byte) []byte {
	c := make([]byte, 64)
	for i := range c {
		c[i] = b
	}
	return c
}

func TestVerifyAfterUpdate(t *testing.T) {
	tr := New(8, 4)
	tr.Update(10, content(1))
	if !tr.Verify(10, content(1)) {
		t.Fatal("fresh update does not verify")
	}
	if tr.Verify(10, content(2)) {
		t.Fatal("wrong content verified")
	}
}

func TestDefaultLeavesVerifyZero(t *testing.T) {
	tr := New(8, 4)
	if !tr.Verify(100, make([]byte, 64)) {
		t.Fatal("untouched leaf does not verify zero content")
	}
}

func TestRootChangesOnUpdate(t *testing.T) {
	tr := New(8, 4)
	r0 := tr.Root()
	tr.Update(0, content(1))
	r1 := tr.Root()
	if r0 == r1 {
		t.Fatal("root unchanged after update")
	}
	tr.Update(511, content(2))
	if tr.Root() == r1 {
		t.Fatal("root unchanged after second update")
	}
}

func TestTamperDetection(t *testing.T) {
	tr := New(8, 4)
	tr.Update(7, content(3))
	// Attacker replays leaf 7's content at leaf 8.
	if tr.Verify(8, content(3)) {
		t.Fatal("replayed content verified at wrong leaf")
	}
}

func TestUpdateIsolation(t *testing.T) {
	tr := New(8, 4)
	tr.Update(1, content(1))
	tr.Update(2, content(2))
	if !tr.Verify(1, content(1)) || !tr.Verify(2, content(2)) {
		t.Fatal("sibling update corrupted earlier leaf")
	}
}

func TestNumLeaves(t *testing.T) {
	tr := New(8, 9)
	if tr.NumLeaves() != 8*8*8*8*8*8*8*8 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
	if tr.Levels() != 9 || tr.Arity() != 8 {
		t.Fatal("geometry accessors wrong")
	}
}

func TestPathNodes(t *testing.T) {
	tr := New(8, 9)
	path := tr.PathNodes(12345)
	if len(path) != 7 { // levels 1..7 (root excluded)
		t.Fatalf("path length = %d", len(path))
	}
	if path[0].Index != 12345/8 {
		t.Fatalf("first parent = %d", path[0].Index)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Level != path[i-1].Level+1 {
			t.Fatal("path levels not ascending")
		}
		if path[i].Index != path[i-1].Index/8 {
			t.Fatal("path indices not contracting by arity")
		}
	}
}

func TestRebuildMatchesIncremental(t *testing.T) {
	incr := New(8, 4)
	leaves := map[int][]byte{
		0:   content(1),
		63:  content(2),
		64:  content(3),
		511: content(4),
	}
	for idx, c := range leaves {
		incr.Update(idx, c)
	}
	rebuilt := New(8, 4)
	rebuilt.Rebuild(leaves)
	if incr.Root() != rebuilt.Root() {
		t.Fatal("rebuild root differs from incremental root")
	}
}

func TestRebuildDropsStaleState(t *testing.T) {
	tr := New(8, 4)
	tr.Update(5, content(9))
	tr.Rebuild(map[int][]byte{})
	empty := New(8, 4)
	if tr.Root() != empty.Root() {
		t.Fatal("rebuild with no leaves != fresh tree")
	}
}

func TestVerifyOutOfRange(t *testing.T) {
	tr := New(8, 3)
	if tr.Verify(-1, content(0)) || tr.Verify(tr.NumLeaves(), content(0)) {
		t.Fatal("out-of-range leaf verified")
	}
}

func TestUpdateOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range update did not panic")
		}
	}()
	New(8, 3).Update(10000, content(0))
}

func TestPropertyRandomUpdatesVerify(t *testing.T) {
	tr := New(8, 4)
	written := make(map[int]byte)
	f := func(idx uint16, val byte) bool {
		i := int(idx) % tr.NumLeaves()
		tr.Update(i, content(val))
		written[i] = val
		for j, v := range written {
			if !tr.Verify(j, content(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryTree(t *testing.T) {
	tr := New(2, 5) // 16 leaves
	if tr.NumLeaves() != 16 {
		t.Fatalf("NumLeaves = %d", tr.NumLeaves())
	}
	tr.Update(15, content(1))
	if !tr.Verify(15, content(1)) {
		t.Fatal("binary tree verify failed")
	}
}
