package pagecache

import "testing"

func TestGetInsert(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(Key{1, 0}); ok {
		t.Fatal("hit on empty cache")
	}
	p := &Page{Key: Key{1, 0}, Frame: 0x1000}
	if ev := c.Insert(p); ev != nil {
		t.Fatal("eviction from empty cache")
	}
	got, ok := c.Get(Key{1, 0})
	if !ok || got != p {
		t.Fatal("get after insert failed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	p1 := &Page{Key: Key{1, 1}}
	p2 := &Page{Key: Key{1, 2}}
	c.Insert(p1)
	c.Insert(p2)
	c.Get(Key{1, 1}) // refresh p1
	ev := c.Insert(&Page{Key: Key{1, 3}})
	if ev != p2 {
		t.Fatalf("evicted %+v, want p2", ev)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
}

func TestRemove(t *testing.T) {
	c := New(2)
	p := &Page{Key: Key{2, 0}}
	c.Insert(p)
	got, ok := c.Remove(Key{2, 0})
	if !ok || got != p {
		t.Fatal("remove failed")
	}
	if _, ok := c.Remove(Key{2, 0}); ok {
		t.Fatal("double remove succeeded")
	}
}

func TestDirtyPages(t *testing.T) {
	c := New(4)
	c.Insert(&Page{Key: Key{1, 0}, Dirty: true})
	c.Insert(&Page{Key: Key{1, 1}})
	c.Insert(&Page{Key: Key{1, 2}, Dirty: true})
	if len(c.DirtyPages()) != 2 {
		t.Fatalf("dirty = %d", len(c.DirtyPages()))
	}
}

func TestCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	New(0)
}
