// Package pagecache models the OS page cache used by the conventional
// (non-DAX) file access path of Figure 1(a): file pages are copied into
// memory-resident frames on fault, accessed there, and written back on
// eviction or msync. DAX exists precisely to bypass this structure; the
// software-encryption baseline cannot bypass it, which is where its
// overhead comes from.
package pagecache

import "fsencr/internal/addr"

// Key identifies one cached file page.
type Key struct {
	Ino     uint16
	PageIdx uint64
}

// Page is one page-cache entry.
type Page struct {
	Key   Key
	Frame addr.Phys // physical frame holding the copy
	Dirty bool
	// PersistCount counts msync requests since the last device writeback;
	// the kernel's flusher throttles writebacks against it.
	PersistCount int

	lastUse uint64
}

// Cache is an LRU page cache with a fixed page capacity.
type Cache struct {
	capacity int
	pages    map[Key]*Page
	clock    uint64

	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New returns a page cache holding at most capacity pages.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("pagecache: non-positive capacity")
	}
	return &Cache{capacity: capacity, pages: make(map[Key]*Page)}
}

// Capacity returns the page capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return len(c.pages) }

// Get returns the cached page for k, refreshing its LRU position.
func (c *Cache) Get(k Key) (*Page, bool) {
	p, ok := c.pages[k]
	if ok {
		c.clock++
		p.lastUse = c.clock
		c.Hits++
		return p, true
	}
	c.Misses++
	return nil, false
}

// Insert adds a page. If the cache is full, the least recently used page is
// removed and returned so the kernel can write it back if dirty.
func (c *Cache) Insert(p *Page) (evicted *Page) {
	c.clock++
	p.lastUse = c.clock
	if len(c.pages) >= c.capacity {
		var victim *Page
		for _, cand := range c.pages {
			if victim == nil || cand.lastUse < victim.lastUse {
				victim = cand
			}
		}
		if victim != nil {
			delete(c.pages, victim.Key)
			c.Evictions++
			evicted = victim
		}
	}
	c.pages[p.Key] = p
	return evicted
}

// Remove drops the page for k (file deletion/truncation), returning it.
func (c *Cache) Remove(k Key) (*Page, bool) {
	p, ok := c.pages[k]
	if ok {
		delete(c.pages, k)
	}
	return p, ok
}

// DirtyPages returns all dirty pages (for sync/writeback-all).
func (c *Cache) DirtyPages() []*Page {
	var out []*Page
	for _, p := range c.pages {
		if p.Dirty {
			out = append(out, p)
		}
	}
	return out
}
