package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/pmem"
	"fsencr/internal/sim"
)

func mktree(t *testing.T, poolMB int) (*BTree, *pmem.Pool, *kernel.System) {
	t.Helper()
	s := kernel.Boot(config.Default(), memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX)
	p := s.NewProcess(1000, 100)
	size := uint64(poolMB) << 20
	f, err := s.CreateFile(p, "kv", 0600, size, true, "pw")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pmem.Create(p, f, size)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Create(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pool, s
}

func val(k uint64, n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(k>>uint(8*(i%8))) ^ byte(i)
	}
	return v
}

func TestPutGetBasic(t *testing.T) {
	tr, _, _ := mktree(t, 4)
	if err := tr.Put(42, []byte("answer")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := tr.Get(42, buf)
	if err != nil || string(buf[:n]) != "answer" {
		t.Fatalf("got %q err=%v", buf[:n], err)
	}
	if _, err := tr.Get(43, buf); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	tr, _, _ := mktree(t, 4)
	tr.Put(7, []byte("old"))
	tr.Put(7, []byte("newer"))
	buf := make([]byte, 64)
	n, err := tr.Get(7, buf)
	if err != nil || string(buf[:n]) != "newer" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestManyKeysWithSplits(t *testing.T) {
	tr, _, _ := mktree(t, 8)
	const N = 500
	rng := sim.NewRNG(3)
	keys := rng.Perm(N)
	for _, k := range keys {
		if err := tr.Put(uint64(k), val(uint64(k), 32)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	buf := make([]byte, 64)
	for k := 0; k < N; k++ {
		n, err := tr.Get(uint64(k), buf)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !bytes.Equal(buf[:n], val(uint64(k), 32)) {
			t.Fatalf("key %d value corrupted", k)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	tr, _, _ := mktree(t, 8)
	rng := sim.NewRNG(5)
	for _, k := range rng.Perm(200) {
		tr.Put(uint64(k)*3, val(uint64(k), 8))
	}
	buf := make([]byte, 16)
	var got []uint64
	err := tr.Scan(0, buf, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("scan returned %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("scan out of order at %d: %d then %d", i, got[i-1], got[i])
		}
	}
}

func TestScanFromMidAndEarlyStop(t *testing.T) {
	tr, _, _ := mktree(t, 4)
	for k := uint64(0); k < 50; k++ {
		tr.Put(k, val(k, 8))
	}
	buf := make([]byte, 16)
	var got []uint64
	tr.Scan(25, buf, func(k uint64, v []byte) bool {
		got = append(got, k)
		return len(got) < 10
	})
	if len(got) != 10 || got[0] != 25 || got[9] != 34 {
		t.Fatalf("scan window: %v", got)
	}
}

func TestLargeValues(t *testing.T) {
	tr, _, _ := mktree(t, 16)
	big := val(1, 4096)
	tr.Put(1, big)
	buf := make([]byte, 4096)
	n, err := tr.Get(1, buf)
	if err != nil || n != 4096 || !bytes.Equal(buf, big) {
		t.Fatal("4KB value corrupted")
	}
}

func TestModelBasedProperty(t *testing.T) {
	tr, _, _ := mktree(t, 16)
	model := map[uint64][]byte{}
	rng := sim.NewRNG(9)
	for i := 0; i < 800; i++ {
		k := rng.Uint64n(200)
		switch rng.Intn(3) {
		case 0, 1: // put
			v := val(k+uint64(i), 24)
			if err := tr.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		default: // get
			buf := make([]byte, 64)
			n, err := tr.Get(k, buf)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d: expected NotFound, got %v", i, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(buf[:n], want) {
				t.Fatalf("step %d: key %d mismatch", i, k)
			}
		}
	}
}

func TestSharedTreeAcrossViews(t *testing.T) {
	tr, pool, s := mktree(t, 8)
	p2 := s.NewProcess(1000, 100)
	f, err := s.FS.Lookup("kv")
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := pmem.Open(p2, f, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	_ = pool
	tr2 := tr.View(pool2)
	tr.Put(100, []byte("from-thread-0"))
	buf := make([]byte, 32)
	n, err := tr2.Get(100, buf)
	if err != nil || string(buf[:n]) != "from-thread-0" {
		t.Fatalf("cross-view get: %q %v", buf[:n], err)
	}
	tr2.Put(200, []byte("from-thread-1"))
	n, err = tr.Get(200, buf)
	if err != nil || string(buf[:n]) != "from-thread-1" {
		t.Fatal("cross-view reverse get failed")
	}
}

func TestDurabilityAcrossCrash(t *testing.T) {
	tr, _, s := mktree(t, 8)
	for k := uint64(0); k < 100; k++ {
		tr.Put(k, val(k, 32))
	}
	s.M.Crash(true)
	if err := s.M.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	buf := make([]byte, 64)
	for k := uint64(0); k < 100; k++ {
		n, err := tr.Get(k, buf)
		if err != nil || !bytes.Equal(buf[:n], val(k, 32)) {
			t.Fatalf("key %d lost after crash: %v", k, err)
		}
	}
}

func TestOpenExisting(t *testing.T) {
	tr, pool, _ := mktree(t, 4)
	tr.Put(5, []byte("five"))
	tr2 := Open(pool, 0)
	buf := make([]byte, 16)
	n, err := tr2.Get(5, buf)
	if err != nil || string(buf[:n]) != "five" {
		t.Fatal("Open lost the tree")
	}
}

func TestSequentialInsertShape(t *testing.T) {
	// Sequential inserts must keep Get working at every step (regression
	// guard for split bookkeeping).
	tr, _, _ := mktree(t, 8)
	buf := make([]byte, 16)
	for k := uint64(0); k < 300; k++ {
		if err := tr.Put(k, val(k, 8)); err != nil {
			t.Fatal(err)
		}
		if k%37 == 0 {
			for _, probe := range []uint64{0, k / 2, k} {
				if _, err := tr.Get(probe, buf); err != nil {
					t.Fatalf("after insert %d, key %d: %v", k, probe, err)
				}
			}
		}
	}
	_ = fmt.Sprint()
}

func TestDelete(t *testing.T) {
	tr, _, _ := mktree(t, 8)
	for k := uint64(0); k < 100; k++ {
		tr.Put(k, val(k, 16))
	}
	buf := make([]byte, 32)
	// Delete the odd keys.
	for k := uint64(1); k < 100; k += 2 {
		ok, err := tr.Delete(k)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", k, ok, err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		_, err := tr.Get(k, buf)
		if k%2 == 0 && err != nil {
			t.Fatalf("even key %d lost: %v", k, err)
		}
		if k%2 == 1 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("odd key %d still present: %v", k, err)
		}
	}
	// Double delete reports absent.
	if ok, _ := tr.Delete(1); ok {
		t.Fatal("double delete succeeded")
	}
	// Scan skips deleted keys and stays ordered.
	var got []uint64
	tr.Scan(0, buf, func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 50 {
		t.Fatalf("scan found %d keys", len(got))
	}
	for _, k := range got {
		if k%2 == 1 {
			t.Fatalf("scan returned deleted key %d", k)
		}
	}
	// Reinsert deleted keys.
	for k := uint64(1); k < 100; k += 2 {
		if err := tr.Put(k, val(k+1000, 16)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tr.Len()
	if err != nil || n != 100 {
		t.Fatalf("len after reinsert = %d", n)
	}
}

func TestDeleteEmptiesLeaf(t *testing.T) {
	tr, _, _ := mktree(t, 8)
	for k := uint64(0); k < 40; k++ {
		tr.Put(k, val(k, 8))
	}
	// Wipe out an entire leaf's worth of keys.
	for k := uint64(0); k < 12; k++ {
		if ok, err := tr.Delete(k); err != nil || !ok {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 16)
	if _, err := tr.Get(12, buf); err != nil {
		t.Fatalf("survivor lost: %v", err)
	}
	var got []uint64
	tr.Scan(0, buf, func(k uint64, v []byte) bool { got = append(got, k); return true })
	if len(got) != 28 || got[0] != 12 {
		t.Fatalf("scan after leaf drain: %v", got[:3])
	}
}

func TestDeleteModelProperty(t *testing.T) {
	tr, _, _ := mktree(t, 16)
	model := map[uint64][]byte{}
	rng := sim.NewRNG(21)
	buf := make([]byte, 32)
	for i := 0; i < 1000; i++ {
		k := rng.Uint64n(150)
		switch rng.Intn(4) {
		case 0, 1:
			v := val(k+uint64(i), 24)
			if err := tr.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 2:
			ok, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, want := model[k]
			if ok != want {
				t.Fatalf("step %d: delete(%d) = %v, model %v", i, k, ok, want)
			}
			delete(model, k)
		default:
			n, err := tr.Get(k, buf)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d: want NotFound got %v", i, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(buf[:n], want) {
				t.Fatalf("step %d: key %d mismatch", i, k)
			}
		}
	}
}
