// Package kvstore implements a persistent B+Tree key-value engine over the
// pmem library — the stand-in for PMEMKV's BTree engine used throughout the
// paper's evaluation (Table II). Keys are 64-bit; values are arbitrary
// blobs (the paper uses 64 B "small" and 4 KB "large" values).
//
// Every node and value mutation is made durable with a persist, so the
// engine exercises exactly the flush-per-store path whose cost the paper
// measures.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fsencr/internal/pmem"
	"fsencr/internal/telemetry"
)

// Order is the B+Tree fan-out: max keys per node.
const Order = 8

// Node layout (all little-endian):
//
//	byte 0:      isLeaf
//	byte 1:      count
//	bytes 2..7:  reserved
//	bytes 8..71: keys[8]
//	leaf:  bytes 72..135 value offsets[8], bytes 136..143 next-leaf offset
//	inner: bytes 72..143 child offsets[9]
const (
	nodeSize    = 192
	hdrOff      = 0
	keysOff     = 8
	slotsOff    = 72
	nextLeafOff = 136
)

// BTree is a persistent B+Tree rooted in pool root slot rootSlot.
type BTree struct {
	pool     *pmem.Pool
	rootSlot int

	tel  *telemetry.Registry
	tPut *telemetry.Histogram
	tGet *telemetry.Histogram
}

// Instrument attaches telemetry handles for per-op latency histograms and
// spans. A nil registry detaches.
func (t *BTree) Instrument(reg *telemetry.Registry) {
	t.tel = reg
	t.tPut = reg.Histogram("kvstore.put_cycles")
	t.tGet = reg.Histogram("kvstore.get_cycles")
}

// opSpan records one completed operation against this tree's clock.
func (t *BTree) opSpan(name string, h *telemetry.Histogram, start uint64) {
	end := uint64(t.pool.Proc().Now())
	h.Observe(end - start)
	t.tel.Span("kvstore", name, start, end, t.pool.Proc().Core().ID())
}

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// Create initializes an empty tree whose root pointer lives in pool root
// slot rootSlot.
func Create(pool *pmem.Pool, rootSlot int) (*BTree, error) {
	t := &BTree{pool: pool, rootSlot: rootSlot}
	leaf, err := t.newNode(true)
	if err != nil {
		return nil, err
	}
	if err := pool.SetRoot(rootSlot, leaf); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree (another thread, or after recovery).
func Open(pool *pmem.Pool, rootSlot int) *BTree {
	return &BTree{pool: pool, rootSlot: rootSlot}
}

type node struct {
	off uint64
	buf [nodeSize]byte
}

func (n *node) isLeaf() bool   { return n.buf[0] != 0 }
func (n *node) count() int     { return int(n.buf[1]) }
func (n *node) setCount(c int) { n.buf[1] = byte(c) }

func (n *node) key(i int) uint64 {
	return binary.LittleEndian.Uint64(n.buf[keysOff+8*i:])
}
func (n *node) setKey(i int, k uint64) {
	binary.LittleEndian.PutUint64(n.buf[keysOff+8*i:], k)
}

// slot i is a value offset in leaves, child i in inner nodes.
func (n *node) slot(i int) uint64 {
	return binary.LittleEndian.Uint64(n.buf[slotsOff+8*i:])
}
func (n *node) setSlot(i int, v uint64) {
	binary.LittleEndian.PutUint64(n.buf[slotsOff+8*i:], v)
}

func (n *node) nextLeaf() uint64 {
	return binary.LittleEndian.Uint64(n.buf[nextLeafOff:])
}
func (n *node) setNextLeaf(v uint64) {
	binary.LittleEndian.PutUint64(n.buf[nextLeafOff:], v)
}

func (t *BTree) readNode(off uint64) (*node, error) {
	n := &node{off: off}
	if err := t.pool.Load(t.pool.Addr(off), n.buf[:]); err != nil {
		return nil, err
	}
	return n, nil
}

func (t *BTree) writeNode(n *node) error {
	return t.pool.Store(t.pool.Addr(n.off), n.buf[:])
}

func (t *BTree) newNode(leaf bool) (uint64, error) {
	off, err := t.pool.Alloc(nodeSize)
	if err != nil {
		return 0, err
	}
	n := &node{off: off}
	if leaf {
		n.buf[0] = 1
	}
	return off, t.writeNode(n)
}

// root returns the current root offset.
func (t *BTree) root() (uint64, error) { return t.pool.GetRoot(t.rootSlot) }

// search returns the index of the first key >= k within the node's keys.
func (n *node) search(k uint64) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.key(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// writeValue allocates and persists a value blob, returning its offset.
func (t *BTree) writeValue(val []byte) (uint64, error) {
	off, err := t.pool.Alloc(uint64(8 + len(val)))
	if err != nil {
		return 0, err
	}
	rec := make([]byte, 8+len(val))
	binary.LittleEndian.PutUint64(rec, uint64(len(val)))
	copy(rec[8:], val)
	if err := t.pool.Store(t.pool.Addr(off), rec); err != nil {
		return 0, err
	}
	return off, nil
}

// readValue reads the blob at off into buf, returning its length.
func (t *BTree) readValue(off uint64, buf []byte) (int, error) {
	var hdr [8]byte
	va := t.pool.Addr(off)
	if err := t.pool.Load(va, hdr[:]); err != nil {
		return 0, err
	}
	n := int(binary.LittleEndian.Uint64(hdr[:]))
	if n > len(buf) {
		n = len(buf)
	}
	return n, t.pool.Load(va+8, buf[:n])
}

// Put inserts or overwrites key with val.
func (t *BTree) Put(key uint64, val []byte) error {
	if t.tel != nil {
		defer t.opSpan("put", t.tPut, uint64(t.pool.Proc().Now()))
	}
	rootOff, err := t.root()
	if err != nil {
		return err
	}
	promoted, newChild, err := t.insert(rootOff, key, val)
	if err != nil {
		return err
	}
	if newChild == 0 {
		return nil
	}
	// Root split: grow the tree.
	newRootOff, err := t.pool.Alloc(nodeSize)
	if err != nil {
		return err
	}
	nr := &node{off: newRootOff}
	nr.setCount(1)
	nr.setKey(0, promoted)
	nr.setSlot(0, rootOff)
	nr.setSlot(1, newChild)
	if err := t.writeNode(nr); err != nil {
		return err
	}
	return t.pool.SetRoot(t.rootSlot, newRootOff)
}

// insert descends into the subtree at off. If the child splits, it returns
// the promoted key and the new right sibling's offset.
func (t *BTree) insert(off uint64, key uint64, val []byte) (promoted, newChild uint64, err error) {
	n, err := t.readNode(off)
	if err != nil {
		return 0, 0, err
	}
	if n.isLeaf() {
		return t.insertLeaf(n, key, val)
	}
	idx := n.search(key)
	// In inner nodes, keys[i] is the smallest key of child i+1; descend
	// right of an equal key.
	if idx < n.count() && n.key(idx) == key {
		idx++
	}
	childOff := n.slot(idx)
	p, nc, err := t.insert(childOff, key, val)
	if err != nil || nc == 0 {
		return 0, 0, err
	}
	// Child split: insert (p, nc) into this node.
	if n.count() < Order {
		insertInner(n, idx, p, nc)
		return 0, 0, t.writeNode(n)
	}
	return t.splitInner(n, idx, p, nc)
}

func insertInner(n *node, idx int, key, child uint64) {
	for i := n.count(); i > idx; i-- {
		n.setKey(i, n.key(i-1))
		n.setSlot(i+1, n.slot(i))
	}
	n.setKey(idx, key)
	n.setSlot(idx+1, child)
	n.setCount(n.count() + 1)
}

func (t *BTree) splitInner(n *node, idx int, key, child uint64) (uint64, uint64, error) {
	// Gather the Order+1 keys and Order+2 children in order.
	var keys [Order + 1]uint64
	var kids [Order + 2]uint64
	for i := 0; i < n.count(); i++ {
		keys[i] = n.key(i)
	}
	for i := 0; i <= n.count(); i++ {
		kids[i] = n.slot(i)
	}
	copy(keys[idx+1:], keys[idx:Order])
	keys[idx] = key
	copy(kids[idx+2:], kids[idx+1:Order+1])
	kids[idx+1] = child

	mid := (Order + 1) / 2
	promoted := keys[mid]

	rightOff, err := t.pool.Alloc(nodeSize)
	if err != nil {
		return 0, 0, err
	}
	right := &node{off: rightOff}
	rc := Order - mid
	right.setCount(rc)
	for i := 0; i < rc; i++ {
		right.setKey(i, keys[mid+1+i])
	}
	for i := 0; i <= rc; i++ {
		right.setSlot(i, kids[mid+1+i])
	}
	if err := t.writeNode(right); err != nil {
		return 0, 0, err
	}

	n.setCount(mid)
	for i := 0; i < mid; i++ {
		n.setKey(i, keys[i])
		n.setSlot(i, kids[i])
	}
	n.setSlot(mid, kids[mid])
	if err := t.writeNode(n); err != nil {
		return 0, 0, err
	}
	return promoted, rightOff, nil
}

func (t *BTree) insertLeaf(n *node, key uint64, val []byte) (uint64, uint64, error) {
	idx := n.search(key)
	if idx < n.count() && n.key(idx) == key {
		// Overwrite: write a fresh blob and swing the pointer (PMEMKV's
		// out-of-place update).
		voff, err := t.writeValue(val)
		if err != nil {
			return 0, 0, err
		}
		n.setSlot(idx, voff)
		return 0, 0, t.writeNode(n)
	}
	voff, err := t.writeValue(val)
	if err != nil {
		return 0, 0, err
	}
	if n.count() < Order {
		for i := n.count(); i > idx; i-- {
			n.setKey(i, n.key(i-1))
			n.setSlot(i, n.slot(i-1))
		}
		n.setKey(idx, key)
		n.setSlot(idx, voff)
		n.setCount(n.count() + 1)
		return 0, 0, t.writeNode(n)
	}
	// Leaf split.
	var keys [Order + 1]uint64
	var vals [Order + 1]uint64
	for i := 0; i < Order; i++ {
		keys[i] = n.key(i)
		vals[i] = n.slot(i)
	}
	copy(keys[idx+1:], keys[idx:Order])
	copy(vals[idx+1:], vals[idx:Order])
	keys[idx] = key
	vals[idx] = voff

	mid := (Order + 1) / 2
	rightOff, err := t.pool.Alloc(nodeSize)
	if err != nil {
		return 0, 0, err
	}
	right := &node{off: rightOff}
	right.buf[0] = 1
	rc := Order + 1 - mid
	right.setCount(rc)
	for i := 0; i < rc; i++ {
		right.setKey(i, keys[mid+i])
		right.setSlot(i, vals[mid+i])
	}
	right.setNextLeaf(n.nextLeaf())
	if err := t.writeNode(right); err != nil {
		return 0, 0, err
	}

	n.setCount(mid)
	for i := 0; i < mid; i++ {
		n.setKey(i, keys[i])
		n.setSlot(i, vals[i])
	}
	n.setNextLeaf(rightOff)
	if err := t.writeNode(n); err != nil {
		return 0, 0, err
	}
	return right.key(0), rightOff, nil
}

// Get reads key's value into buf, returning the value length.
func (t *BTree) Get(key uint64, buf []byte) (int, error) {
	if t.tel != nil {
		defer t.opSpan("get", t.tGet, uint64(t.pool.Proc().Now()))
	}
	off, err := t.root()
	if err != nil {
		return 0, err
	}
	for {
		n, err := t.readNode(off)
		if err != nil {
			return 0, err
		}
		idx := n.search(key)
		if n.isLeaf() {
			if idx >= n.count() || n.key(idx) != key {
				return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
			}
			return t.readValue(n.slot(idx), buf)
		}
		if idx < n.count() && n.key(idx) == key {
			idx++
		}
		off = n.slot(idx)
	}
}

// Scan walks keys in ascending order starting at from, calling fn with each
// key and value until fn returns false or the tree ends.
func (t *BTree) Scan(from uint64, buf []byte, fn func(key uint64, val []byte) bool) error {
	off, err := t.root()
	if err != nil {
		return err
	}
	var n *node
	for {
		n, err = t.readNode(off)
		if err != nil {
			return err
		}
		if n.isLeaf() {
			break
		}
		idx := n.search(from)
		if idx < n.count() && n.key(idx) == from {
			idx++
		}
		off = n.slot(idx)
	}
	for {
		for i := n.search(from); i < n.count(); i++ {
			ln, err := t.readValue(n.slot(i), buf)
			if err != nil {
				return err
			}
			if !fn(n.key(i), buf[:ln]) {
				return nil
			}
		}
		next := n.nextLeaf()
		if next == 0 {
			return nil
		}
		from = 0
		n, err = t.readNode(next)
		if err != nil {
			return err
		}
	}
}

// View returns the same tree bound to another thread's pool view. The
// view inherits the tree's telemetry handles.
func (t *BTree) View(pool *pmem.Pool) *BTree {
	v := *t
	v.pool = pool
	return &v
}

// Delete removes key from the tree, returning whether it was present.
// Deletion is lazy (PMEMKV-style): the entry is removed from its leaf
// without rebalancing; inner keys may persist as routing separators, and
// emptied leaves are skipped by scans.
func (t *BTree) Delete(key uint64) (bool, error) {
	off, err := t.root()
	if err != nil {
		return false, err
	}
	for {
		n, err := t.readNode(off)
		if err != nil {
			return false, err
		}
		idx := n.search(key)
		if n.isLeaf() {
			if idx >= n.count() || n.key(idx) != key {
				return false, nil
			}
			for i := idx; i < n.count()-1; i++ {
				n.setKey(i, n.key(i+1))
				n.setSlot(i, n.slot(i+1))
			}
			n.setCount(n.count() - 1)
			return true, t.writeNode(n)
		}
		if idx < n.count() && n.key(idx) == key {
			idx++
		}
		off = n.slot(idx)
	}
}

// Len walks the tree and counts live keys (diagnostic; O(n)).
func (t *BTree) Len() (int, error) {
	count := 0
	buf := make([]byte, 0)
	err := t.Scan(0, buf, func(uint64, []byte) bool {
		count++
		return true
	})
	return count, err
}
