package kvstore

import (
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/pmem"
)

// mkBenchTree boots a full FsEncr system (memory + file encryption) and
// returns a B-tree on a DAX pool, so the benchmarks time the real hot
// path: B-tree logic plus the simulated memory-controller datapath.
func mkBenchTree(b *testing.B, poolMB int) *BTree {
	b.Helper()
	s := kernel.Boot(config.Default(), memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX)
	p := s.NewProcess(1000, 100)
	size := uint64(poolMB) << 20
	f, err := s.CreateFile(p, "kv", 0600, size, true, "pw")
	if err != nil {
		b.Fatal(err)
	}
	pool, err := pmem.Create(p, f, size)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Create(pool, 0)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkPut(b *testing.B) {
	tr := mkBenchTree(b, 512)
	v := val(7, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(uint64(i), v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := mkBenchTree(b, 64)
	const records = 4096
	v := val(7, 64)
	for k := uint64(0); k < records; k++ {
		if err := tr.Put(k, v); err != nil {
			b.Fatal(err)
		}
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(i)%records, buf); err != nil {
			b.Fatal(err)
		}
	}
}
