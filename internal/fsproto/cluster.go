package fsproto

import "encoding/json"

// Cluster routing plane wire types: the coordinator's placement table, the
// per-shard admission-log records that migration and replication replay,
// and the session records that travel with a migrated shard.
//
// The placement table turns ShardIndex from an in-process array index into
// a cluster-wide contract: gid maps onto one of NShards *global* shard
// slots, and the table names the node currently owning each slot. Epochs
// are the fencing tokens: every ownership change bumps the placement's
// epoch (and the table epoch), so a router holding an old table can detect
// staleness the moment a node answers CodeEpochMismatch.

// Placement is one shard's current home.
type Placement struct {
	// Shard is the global shard index in [0, NShards).
	Shard int `json:"shard"`
	// Node is the owning node's base URL ("http://10.0.0.2:9144").
	Node string `json:"node"`
	// Epoch counts ownership changes of this shard; 0 means unplaced.
	Epoch uint64 `json:"epoch"`
	// Replicas are base URLs of nodes replaying this shard's admission log.
	Replicas []string `json:"replicas,omitempty"`
}

// ClusterTable is the coordinator-owned routing table.
type ClusterTable struct {
	// Epoch is the table version: bumped on every placement change, so
	// routers can order tables without comparing contents.
	Epoch uint64 `json:"epoch"`
	// NShards is the global shard count — the modulus every router must
	// use with ShardIndex. It never changes for the life of a cluster
	// (changing it reshuffles nearly every gid; see TestShardIndexReshuffle).
	NShards int `json:"n_shards"`
	// Placements is indexed by shard.
	Placements []Placement `json:"placements"`
}

// Owner returns the base URL of the node owning shard, if placed.
func (t *ClusterTable) Owner(shard int) (string, bool) {
	if shard < 0 || shard >= len(t.Placements) {
		return "", false
	}
	p := t.Placements[shard]
	if p.Epoch == 0 || p.Node == "" {
		return "", false
	}
	return p.Node, true
}

// Admission-log record kinds beyond the op names ("create", "read", ...,
// "login"): internal records the shard's worker appends itself.
const (
	// RecFlush marks a writeback of all dirty cached lines plus an OTT
	// seal into the encrypted region — the crash-persist path run as a
	// schedule step, so replicas replay the exact same flush.
	RecFlush = "flush"
	// RecCheckpoint carries the Merkle root observed at this log position.
	// Replay verifies (never regenerates) it: a mismatch is divergence.
	RecCheckpoint = "checkpoint"
)

// LogRecord is one admitted request in a shard's admission log, in
// admission order. Per-shard state is a pure function of this sequence, so
// the log doubles as the state-transfer stream for live migration and the
// replication stream for replica shards.
//
// Records are self-contained: they carry the session identity (tenant,
// effective uid, passphrase) so a replayer that never saw the session's
// login (a replica bootstrapping mid-history, a cross-tenant op whose
// session lives on another shard) can still reconstruct the acting
// principal.
type LogRecord struct {
	// Pos is the record's position in the shard's log (0-based, dense).
	Pos uint64 `json:"pos"`
	// Kind is the op name ("login", "create", "read", "write", "chmod",
	// "delete", "kv_create", "kv_put", "kv_get", "kv_delete") or an
	// internal record kind (RecFlush, RecCheckpoint).
	Kind string `json:"kind"`
	// Seq is the deterministic-mode schedule position (0 in fair mode,
	// where log order alone is the schedule).
	Seq uint64 `json:"seq,omitempty"`
	// GID is the admission group — the tenant group whose queue/telemetry
	// the request was accounted to (the *target* group for cross-tenant
	// ops).
	GID uint32 `json:"gid,omitempty"`
	// Token names the acting session. For "login" records it is the token
	// the server assigned, so replicas bind the same token.
	Token string `json:"token,omitempty"`
	// Tenant/EUID/Pass reconstruct the acting session on a replayer.
	Tenant string `json:"tenant,omitempty"`
	EUID   uint32 `json:"euid,omitempty"`
	Pass   string `json:"pass,omitempty"`
	// TraceID/Parent/Sampled reproduce the request's tracing decision —
	// trace retention counters live in the shard's deterministic registry,
	// so replay must make the same keep/drop choices.
	TraceID uint64 `json:"trace_id,omitempty"`
	Parent  uint64 `json:"parent,omitempty"`
	Sampled bool   `json:"sampled,omitempty"`
	// Req is the op's request body (absent for internal records).
	Req json.RawMessage `json:"req,omitempty"`
	// Root is the hex Merkle root (RecCheckpoint only).
	Root string `json:"root,omitempty"`
}

// SessionRecord is one live session shipped with a migrating shard, so
// already-issued tokens keep working on the new owner.
type SessionRecord struct {
	Token  string `json:"token"`
	Tenant string `json:"tenant"`
	GID    uint32 `json:"gid"`
	EUID   uint32 `json:"euid"`
	Pass   string `json:"pass"`
}
