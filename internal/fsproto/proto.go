// Package fsproto is the wire protocol of fsencrd, the multi-tenant
// encrypted file service: the JSON request/response shapes of the /v1 API
// and the tenant-identity mapping both ends must agree on.
//
// The mapping functions are protocol, not implementation detail: the
// server places a tenant's state on the shard derived from its group ID,
// and a deterministic load generator must assign per-shard sequence
// numbers with the same mapping to reproduce a schedule exactly.
package fsproto

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"fsencr/internal/counters"
)

// TenantGID maps a tenant name onto its 18-bit sharing-group ID — the
// GroupID the kernel sends to the memory controller for every file the
// tenant owns. The mapping is a stable FNV hash, never zero (gid 0 is
// reserved), so a tenant lands on the same group and shard across server
// restarts.
func TenantGID(tenant string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	gid := h.Sum32() & counters.MaxGroupID
	if gid == 0 {
		gid = 1
	}
	return gid
}

// UserUID maps (tenant, uid) onto a nonzero effective kernel uid. Setting
// a high bit guarantees the result is never 0 (root would bypass every
// permission check) and keeps uids from different tenants from colliding
// with small literal uids.
func UserUID(tenant string, uid uint32) uint32 {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	h.Write([]byte{':', byte(uid), byte(uid >> 8), byte(uid >> 16), byte(uid >> 24)})
	return h.Sum32() | 1<<30
}

// ShardIndex maps a tenant's group ID onto one of n shards.
func ShardIndex(gid uint32, n int) int {
	if n <= 0 {
		return 0
	}
	return int(gid % uint32(n))
}

// TokenHeader carries the session token on authenticated requests.
const TokenHeader = "X-Fsencr-Token"

// ForwardedHeader marks a request the cluster routing plane has already
// forwarded once. A node receiving a misrouted request with this header set
// answers CodeEpochMismatch instead of forwarding again, so a stale table
// on two nodes cannot bounce a request in a loop.
const ForwardedHeader = "X-Fsencr-Forwarded"

// Peer headers ride on a forwarded request whose session is homed on the
// forwarding node: the new owner of the target shard reconstructs a
// shadow session from them (the same trust the admission-log replayer
// extends to record credentials — fabric peers are inside the trust
// boundary; tenant-level authorization still comes from the request
// body's passphrase).
const (
	PeerTenantHeader = "X-Fsencr-Peer-Tenant"
	PeerUIDHeader    = "X-Fsencr-Peer-Uid"
	PeerPassHeader   = "X-Fsencr-Peer-Pass"
)

// TraceHeader carries the request's TraceContext from client to server;
// RequestIDHeader echoes the trace ID back on every response so a
// client-side failure is joinable to the server-side trace.
const (
	TraceHeader     = "X-Fsencr-Trace"
	RequestIDHeader = "X-Request-Id"
)

// QueueDepthHeader rides on 429 (busy) responses carrying the rejecting
// shard's admitted-but-unserved task count. Clients scale their retry
// backoff by it: a shallow queue means the burst is already draining and a
// quick retry will land, a deep one means genuine congestion. Transport
// faults carry no hint and keep the conservative exponential backoff.
const QueueDepthHeader = "X-Fsencr-Queue-Depth"

// TraceContext is the request-trace identity a client mints and the server
// threads through admission, shard, kernel, controller and PCM timing.
type TraceContext struct {
	// TraceID groups every span of one request; 0 means "no trace".
	TraceID uint64
	// Parent is the caller's enclosing span ID (0 when the trace starts
	// at the client).
	Parent uint64
	// Sampled is the head decision: unsampled requests record no spans at
	// all. The server's tail sampler decides keep/drop among sampled ones.
	Sampled bool
}

// String renders the context for the wire header: "traceID-parent-flag"
// with hex IDs, e.g. "00c3a4d2b1e90f77-0-1".
func (tc TraceContext) String() string {
	flag := 0
	if tc.Sampled {
		flag = 1
	}
	return fmt.Sprintf("%016x-%x-%d", tc.TraceID, tc.Parent, flag)
}

// ParseTraceContext parses the wire form. A malformed or empty value
// yields (zero, false): the request simply goes untraced.
func ParseTraceContext(s string) (TraceContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return TraceContext{}, false
	}
	id, err := strconv.ParseUint(parts[0], 16, 64)
	if err != nil || id == 0 {
		return TraceContext{}, false
	}
	parent, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: id, Parent: parent, Sampled: parts[2] == "1"}, true
}

// FormatRequestID renders a trace ID for the X-Request-Id response header.
func FormatRequestID(id uint64) string { return fmt.Sprintf("%016x", id) }

// Error is the JSON body of every non-2xx response. Code is stable and
// machine-checkable; Message is for humans.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stable error codes.
const (
	CodeAuth            = "auth"             // login passphrase mismatch / bad token
	CodePermission      = "permission"       // Unix permission bits denied the access
	CodeWrongPassphrase = "wrong_passphrase" // per-file key did not verify
	CodeNotFound        = "not_found"
	CodeExists          = "exists"
	CodeBusy            = "busy"     // per-tenant queue full (backpressure)
	CodeDraining        = "draining" // server shutting down
	CodeTimeout         = "timeout"
	CodeBadRequest      = "bad_request"
	CodeInternal        = "internal"
	// CodeEpochMismatch reports a request routed to a node that no longer
	// (or does not yet) own the tenant's shard: the client's placement
	// table is from an older epoch. Clients refresh their table from the
	// coordinator and retry.
	CodeEpochMismatch = "epoch_mismatch"
)

// Seq carries the deterministic-mode schedule position of a request. The
// field is a pointer so "absent" (fair arrival-order mode) is
// distinguishable from sequence 0.
//
// Every op request embeds one; the server's shard admits requests in
// strictly increasing per-shard sequence order when running
// deterministically, making per-shard simulated state a pure function of
// the schedule rather than of network timing.
type Seq = *uint64

// LoginRequest opens a tenant session. The passphrase becomes the
// session's keyring master credential: the first login for (tenant, uid)
// registers it, later logins must present a passphrase deriving the same
// master key or are rejected with CodeAuth.
type LoginRequest struct {
	Tenant     string `json:"tenant"`
	UID        uint32 `json:"uid"`
	Passphrase string `json:"passphrase"`
	Seq        Seq    `json:"seq,omitempty"`
}

// LoginResponse returns the session token.
type LoginResponse struct {
	Token string `json:"token"`
	// GID/Shard echo the server-side placement (useful for debugging and
	// for deterministic clients cross-checking their own mapping).
	GID   uint32 `json:"gid"`
	Shard int    `json:"shard"`
}

// CreateRequest creates (and for encrypted files, keys) a file in the
// session tenant's namespace.
type CreateRequest struct {
	Name      string `json:"name"`
	Perm      uint16 `json:"perm"`
	Size      uint64 `json:"size"`
	Encrypted bool   `json:"encrypted"`
	// Passphrase overrides the session passphrase as the file key source
	// (e.g. a group-shared file key). Empty means the session passphrase.
	Passphrase string `json:"passphrase,omitempty"`
	Seq        Seq    `json:"seq,omitempty"`
}

// ReadRequest reads [Offset, Offset+Length) of a file. Tenant targets
// another tenant's namespace (the cross-tenant case the kernel must deny);
// empty means the session's own.
type ReadRequest struct {
	Name       string `json:"name"`
	Tenant     string `json:"tenant,omitempty"`
	Offset     uint64 `json:"offset"`
	Length     int    `json:"length"`
	Passphrase string `json:"passphrase,omitempty"`
	Seq        Seq    `json:"seq,omitempty"`
}

// ReadResponse carries the plaintext bytes (base64 on the wire).
type ReadResponse struct {
	Data []byte `json:"data"`
}

// StatRequest fetches file metadata. Stat is read-only and side-effect
// free end to end: the server answers it off the shard worker when the
// fast-path is available, and as out-of-band worker work otherwise — it
// never consumes a deterministic schedule slot and is never logged, so
// Seq, while accepted for interface uniformity, is ignored.
type StatRequest struct {
	Name   string `json:"name"`
	Tenant string `json:"tenant,omitempty"`
	Seq    Seq    `json:"seq,omitempty"`
}

// StatResponse carries the inode's metadata. Name is the full
// tenant-prefixed name the file is stored under.
type StatResponse struct {
	Name      string `json:"name"`
	Size      uint64 `json:"size"`
	Perm      uint16 `json:"perm"`
	Encrypted bool   `json:"encrypted"`
	Pages     int    `json:"pages"`
}

// WriteRequest writes Data at Offset.
type WriteRequest struct {
	Name       string `json:"name"`
	Tenant     string `json:"tenant,omitempty"`
	Offset     uint64 `json:"offset"`
	Data       []byte `json:"data"`
	Passphrase string `json:"passphrase,omitempty"`
	Seq        Seq    `json:"seq,omitempty"`
}

// ChmodRequest changes permission bits (owner or root only).
type ChmodRequest struct {
	Name   string `json:"name"`
	Tenant string `json:"tenant,omitempty"`
	Perm   uint16 `json:"perm"`
	Seq    Seq    `json:"seq,omitempty"`
}

// DeleteRequest unlinks a file: key removal plus Silent-Shredder page
// shredding on the shard's machine.
type DeleteRequest struct {
	Name   string `json:"name"`
	Tenant string `json:"tenant,omitempty"`
	Seq    Seq    `json:"seq,omitempty"`
}

// OKResponse is the body of operations with no payload.
type OKResponse struct {
	OK bool `json:"ok"`
}

// KVCreateRequest creates a tenant key-value store: an encrypted pool
// file holding a persistent B+Tree (internal/kvstore).
type KVCreateRequest struct {
	Store      string `json:"store"`
	Size       uint64 `json:"size"`
	Passphrase string `json:"passphrase,omitempty"`
	Seq        Seq    `json:"seq,omitempty"`
}

// KVPutRequest stores Value under Key.
type KVPutRequest struct {
	Store      string `json:"store"`
	Tenant     string `json:"tenant,omitempty"`
	Key        uint64 `json:"key"`
	Value      []byte `json:"value"`
	Passphrase string `json:"passphrase,omitempty"`
	Seq        Seq    `json:"seq,omitempty"`
}

// KVGetRequest fetches the value under Key.
type KVGetRequest struct {
	Store      string `json:"store"`
	Tenant     string `json:"tenant,omitempty"`
	Key        uint64 `json:"key"`
	Passphrase string `json:"passphrase,omitempty"`
	Seq        Seq    `json:"seq,omitempty"`
}

// KVGetResponse carries the fetched value.
type KVGetResponse struct {
	Value []byte `json:"value"`
}

// KVDeleteRequest removes Key.
type KVDeleteRequest struct {
	Store      string `json:"store"`
	Tenant     string `json:"tenant,omitempty"`
	Key        uint64 `json:"key"`
	Passphrase string `json:"passphrase,omitempty"`
	Seq        Seq    `json:"seq,omitempty"`
}

// KVDeleteResponse reports whether the key existed.
type KVDeleteResponse struct {
	Existed bool `json:"existed"`
}
