package fsproto

import (
	"fmt"
	"testing"
)

// TestShardIndexUniformity drives 1e5 synthetic tenant names through the
// TenantGID -> ShardIndex pipeline and checks the shard population is
// close to uniform: no shard may deviate from the ideal share by more than
// 10%. The FNV gid hash is the only mixing step, so this is the property
// that keeps one shard from becoming the hot shard by construction.
func TestShardIndexUniformity(t *testing.T) {
	const (
		tenants = 100_000
		shards  = 8
	)
	var counts [shards]int
	for i := 0; i < tenants; i++ {
		gid := TenantGID(fmt.Sprintf("tenant-%d", i))
		counts[ShardIndex(gid, shards)]++
	}
	ideal := float64(tenants) / shards
	for s, n := range counts {
		dev := (float64(n) - ideal) / ideal
		if dev < -0.10 || dev > 0.10 {
			t.Fatalf("shard %d holds %d tenants, %.1f%% off the ideal %.0f",
				s, n, 100*dev, ideal)
		}
	}
}

// TestShardIndexReshuffle documents the placement behavior the cluster
// coordinator must compensate for: ShardIndex is a plain modulus, so
// changing the shard count n reshuffles almost every gid — the expected
// stable fraction is only ~1/lcm-ish, far from consistent hashing's
// (n-1)/n retention. This is why ClusterTable.NShards is fixed for the
// life of a cluster and rebalancing moves whole shards between nodes
// (live migration) instead of ever changing the modulus.
func TestShardIndexReshuffle(t *testing.T) {
	const tenants = 100_000
	moved := 0
	for i := 0; i < tenants; i++ {
		gid := TenantGID(fmt.Sprintf("tenant-%d", i))
		if ShardIndex(gid, 8) != ShardIndex(gid, 9) {
			moved++
		}
	}
	frac := float64(moved) / tenants
	// Going 8 -> 9 shards, a uniform hash keeps a gid in place only when
	// gid mod 8 == gid mod 9, i.e. ~1/9 of keys: ~8/9 move.
	if frac < 0.80 {
		t.Fatalf("only %.1f%% of placements moved when n changed 8->9; "+
			"expected ~89%% — if this improved, the coordinator's "+
			"fixed-NShards invariant may be stale", 100*frac)
	}
	t.Logf("n change 8->9 moved %.1f%% of %d tenants (documented: the "+
		"modulus never changes; rebalancing = shard migration)", 100*frac, tenants)
}

// TestShardIndexStability pins the mapping itself: same gid, same shard,
// across calls and table sizes that divide evenly.
func TestShardIndexStability(t *testing.T) {
	for _, tenant := range []string{"alice", "bob", "carol", "acme-corp"} {
		gid := TenantGID(tenant)
		if gid == 0 {
			t.Fatalf("tenant %q mapped to reserved gid 0", tenant)
		}
		for n := 1; n <= 16; n++ {
			a, b := ShardIndex(gid, n), ShardIndex(gid, n)
			if a != b || a < 0 || a >= n {
				t.Fatalf("ShardIndex(%d, %d) unstable or out of range: %d vs %d", gid, n, a, b)
			}
		}
	}
}
