// Package pmem is the persistent-memory programming library the workloads
// are written against — the role Intel's PMDK (libpmemobj) plays for PMEMKV
// and Whisper in the paper. It provides a persistent heap inside one
// memory-mapped file, a root object area for durable entry pointers, and
// persist primitives that map to CLWB+SFENCE under DAX (or msync under the
// page-cache modes).
//
// Every durable store is followed by a Persist of the written range; this
// flush-per-store discipline is exactly why write-intensive persistent
// workloads show the largest overheads in the paper's evaluation.
package pmem

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fsencr/internal/addr"
	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/kernel"
)

// Layout constants of a pool file.
const (
	headerSize = config.LineSize     // magic + next-free offset
	rootSize   = 4 * config.LineSize // root object area
	poolMagic  = 0x70_6d_65_6d_f5e1  // "pmem" tag
)

// Pool is a persistent heap mapped into one process's address space.
type Pool struct {
	proc *kernel.Process
	base addr.Virt
	size uint64
}

// ErrPoolFull is returned when the heap is exhausted.
var ErrPoolFull = errors.New("pmem: pool out of space")

// Create maps f into proc's address space and initializes a fresh heap
// over it.
func Create(proc *kernel.Process, f *fs.File, size uint64) (*Pool, error) {
	base, err := proc.Mmap(f, size)
	if err != nil {
		return nil, err
	}
	p := &Pool{proc: proc, base: base, size: size}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], poolMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], headerSize+rootSize)
	if err := p.Store(p.base, hdr[:]); err != nil {
		return nil, err
	}
	// Zero the root area so re-opened pools see null pointers.
	zero := make([]byte, rootSize)
	if err := p.Store(p.base+headerSize, zero); err != nil {
		return nil, err
	}
	return p, nil
}

// Open maps an existing pool (e.g. after a crash or from a second thread).
func Open(proc *kernel.Process, f *fs.File, size uint64) (*Pool, error) {
	base, err := proc.Mmap(f, size)
	if err != nil {
		return nil, err
	}
	p := &Pool{proc: proc, base: base, size: size}
	var hdr [8]byte
	if err := proc.Read(base, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(hdr[:]) != poolMagic {
		return nil, fmt.Errorf("pmem: %q is not a pool", f.Name)
	}
	return p, nil
}

// Proc returns the owning process.
func (p *Pool) Proc() *kernel.Process { return p.proc }

// Base returns the pool's base virtual address.
func (p *Pool) Base() addr.Virt { return p.base }

// Root returns the address of root slot i (8 bytes each).
func (p *Pool) Root(i int) addr.Virt {
	if i < 0 || i >= rootSize/8 {
		panic("pmem: root slot out of range")
	}
	return p.base + headerSize + addr.Virt(8*i)
}

// SetRoot durably stores a pool-relative offset in root slot i.
func (p *Pool) SetRoot(i int, off uint64) error {
	return p.StoreU64(p.Root(i), off)
}

// GetRoot reads root slot i.
func (p *Pool) GetRoot(i int) (uint64, error) {
	return p.proc.ReadU64(p.Root(i))
}

// Addr converts a pool-relative offset into a virtual address. Offset 0 is
// the null pointer.
func (p *Pool) Addr(off uint64) addr.Virt { return p.base + addr.Virt(off) }

// Off converts a virtual address back to a pool-relative offset.
func (p *Pool) Off(va addr.Virt) uint64 { return uint64(va - p.base) }

// Alloc carves n bytes (rounded up to a cache line) out of the heap and
// returns its pool-relative offset. The allocation pointer itself is
// persisted, PMDK-style.
func (p *Pool) Alloc(n uint64) (uint64, error) {
	next, err := p.proc.ReadU64(p.base + 8)
	if err != nil {
		return 0, err
	}
	n = (n + config.LineSize - 1) &^ (config.LineSize - 1)
	if next+n > p.size {
		return 0, fmt.Errorf("%w: need %d, %d left", ErrPoolFull, n, p.size-next)
	}
	if err := p.StoreU64(p.base+8, next+n); err != nil {
		return 0, err
	}
	return next, nil
}

// Store durably writes data at va (write + CLWB/SFENCE or msync).
func (p *Pool) Store(va addr.Virt, data []byte) error {
	if err := p.proc.Write(va, data); err != nil {
		return err
	}
	return p.proc.Persist(va, uint64(len(data)))
}

// StoreU64 durably writes one 64-bit value.
func (p *Pool) StoreU64(va addr.Virt, v uint64) error {
	if err := p.proc.WriteU64(va, v); err != nil {
		return err
	}
	return p.proc.Persist(va, 8)
}

// Load reads len(buf) bytes at va.
func (p *Pool) Load(va addr.Virt, buf []byte) error { return p.proc.Read(va, buf) }

// LoadU64 reads one 64-bit value.
func (p *Pool) LoadU64(va addr.Virt) (uint64, error) { return p.proc.ReadU64(va) }

// View returns a same-heap Pool bound to another process (thread) that has
// the pool's file mapped at the same base. Threads in the paper's
// benchmarks share one pool.
func (p *Pool) View(proc *kernel.Process, base addr.Virt) *Pool {
	return &Pool{proc: proc, base: base, size: p.size}
}
