package pmem

import (
	"bytes"
	"errors"
	"testing"

	"fsencr/internal/config"
	"fsencr/internal/fs"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
)

func mkpool(t *testing.T, size uint64) (*Pool, *kernel.System, *kernel.Process, *fs.File) {
	t.Helper()
	s := kernel.Boot(config.Default(), memctrl.Mode{MemEncryption: true, FileEncryption: true}, kernel.ModeDAX)
	p := s.NewProcess(1000, 100)
	f, err := s.CreateFile(p, "pool", 0600, size, true, "pw")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := Create(p, f, size)
	if err != nil {
		t.Fatal(err)
	}
	return pool, s, p, f
}

func TestCreateAndOpen(t *testing.T) {
	pool, s, _, f := mkpool(t, 1<<20)
	p2 := s.NewProcess(1000, 100)
	pool2, err := Open(p2, f, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Both views address the same bytes via offsets.
	off, err := pool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Store(pool.Addr(off), []byte("shared")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := pool2.Load(pool2.Addr(off), got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared" {
		t.Fatalf("got %q", got)
	}
}

func TestOpenRejectsNonPool(t *testing.T) {
	s := kernel.Boot(config.Default(), memctrl.Mode{}, kernel.ModeDAX)
	p := s.NewProcess(1000, 100)
	f, _ := s.CreateFile(p, "raw", 0600, 1<<20, false, "")
	if _, err := Open(p, f, 1<<20); err == nil {
		t.Fatal("opened a non-pool file")
	}
}

func TestAllocAlignmentAndProgress(t *testing.T) {
	pool, _, _, _ := mkpool(t, 1<<20)
	a, _ := pool.Alloc(1)
	b, _ := pool.Alloc(65)
	if a%config.LineSize != 0 || b%config.LineSize != 0 {
		t.Fatal("allocations not line aligned")
	}
	if b != a+config.LineSize {
		t.Fatalf("1-byte alloc consumed %d bytes", b-a)
	}
	c, _ := pool.Alloc(64)
	if c != b+2*config.LineSize {
		t.Fatal("65-byte alloc did not round to two lines")
	}
}

func TestPoolFull(t *testing.T) {
	pool, _, _, _ := mkpool(t, 64<<10)
	if _, err := pool.Alloc(1 << 20); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("overcommit error = %v", err)
	}
}

func TestRootSlots(t *testing.T) {
	pool, _, _, _ := mkpool(t, 1<<20)
	if err := pool.SetRoot(3, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	v, err := pool.GetRoot(3)
	if err != nil || v != 0xDEAD {
		t.Fatalf("root = %#x err=%v", v, err)
	}
	v, _ = pool.GetRoot(0)
	if v != 0 {
		t.Fatal("fresh root slot not zero")
	}
}

func TestRootSlotBoundsPanic(t *testing.T) {
	pool, _, _, _ := mkpool(t, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range root slot accepted")
		}
	}()
	pool.Root(1000)
}

func TestOffAddrInverse(t *testing.T) {
	pool, _, _, _ := mkpool(t, 1<<20)
	off, _ := pool.Alloc(64)
	if pool.Off(pool.Addr(off)) != off {
		t.Fatal("Off(Addr(x)) != x")
	}
}

func TestStoreU64LoadU64(t *testing.T) {
	pool, _, _, _ := mkpool(t, 1<<20)
	off, _ := pool.Alloc(64)
	if err := pool.StoreU64(pool.Addr(off), 0x0123456789ABCDEF); err != nil {
		t.Fatal(err)
	}
	v, err := pool.LoadU64(pool.Addr(off))
	if err != nil || v != 0x0123456789ABCDEF {
		t.Fatalf("v=%#x err=%v", v, err)
	}
}

func TestDataDurableAcrossCrash(t *testing.T) {
	pool, s, p, _ := mkpool(t, 1<<20)
	off, _ := pool.Alloc(64)
	payload := []byte("crash-proof payload bytes 123456")
	if err := pool.Store(pool.Addr(off), payload); err != nil {
		t.Fatal(err)
	}
	s.M.Crash(true)
	if err := s.M.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got := make([]byte, len(payload))
	if err := p.Read(pool.Addr(off), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted after crash: %q", got)
	}
	// Allocator state is durable too.
	next, _ := pool.Alloc(64)
	if next <= off {
		t.Fatal("allocator rewound after crash")
	}
}
