// Package benchcmp diffs Go benchmark results against a committed
// baseline, so CI can fail on hot-path performance regressions instead of
// discovering them in a later profiling session.
//
// The baseline is the BENCH_baseline.json shape `make bench-json` writes:
// a flat map of "import/path.BenchmarkName" to {iterations, ns_per_op}.
// Current results come either from another such JSON file or parsed
// directly from `go test -bench` text output; with -count repeats the
// minimum ns/op per benchmark is kept, which discards scheduler noise
// without needing a full stats package.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurement.
type Entry struct {
	Iterations uint64  `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// ReadFile loads a baseline JSON map keyed "pkg.BenchmarkName".
func ReadFile(path string) (map[string]Entry, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Entry)
	if err := json.Unmarshal(buf, &out); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	return out, nil
}

// benchLine matches "BenchmarkName-8   849849   1446 ns/op" (the GOMAXPROCS
// suffix is optional; gomaxprocs=1 benchmarks omit it).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// Parse reads `go test -bench` text output. Results are keyed by the
// enclosing "pkg:" header plus the benchmark name; repeated runs of the
// same benchmark (-count) keep the fastest.
func Parse(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if pkg != "" {
			name = pkg + "." + name
		}
		iters, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op in %q: %w", line, err)
		}
		if prev, ok := out[name]; !ok || ns < prev.NsPerOp {
			out[name] = Entry{Iterations: iters, NsPerOp: ns}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Delta is one benchmark's baseline-to-current change.
type Delta struct {
	Name string
	Base float64 // baseline ns/op
	Cur  float64 // current ns/op
}

// Ratio returns cur/base (1.0 = unchanged, 1.2 = 20% slower).
func (d Delta) Ratio() float64 {
	if d.Base == 0 {
		return 1
	}
	return d.Cur / d.Base
}

// Report is the outcome of one comparison.
type Report struct {
	// Deltas covers benchmarks present on both sides, sorted by name.
	Deltas []Delta
	// Missing lists baseline benchmarks absent from the current run — a
	// silently deleted benchmark must fail the gate, otherwise removing
	// the measurement is the cheapest way to "fix" a regression.
	Missing []string
	// New lists current benchmarks absent from the baseline (informational).
	New []string
	// Tolerance is the allowed fractional slowdown (0.15 = +15% ns/op).
	Tolerance float64
}

// Compare diffs current results against the baseline.
func Compare(base, cur map[string]Entry, tolerance float64) *Report {
	r := &Report{Tolerance: tolerance}
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			r.Missing = append(r.Missing, name)
			continue
		}
		r.Deltas = append(r.Deltas, Delta{Name: name, Base: b.NsPerOp, Cur: c.NsPerOp})
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			r.New = append(r.New, name)
		}
	}
	sort.Slice(r.Deltas, func(i, j int) bool { return r.Deltas[i].Name < r.Deltas[j].Name })
	sort.Strings(r.Missing)
	sort.Strings(r.New)
	return r
}

// Regressions returns the deltas exceeding the tolerance.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Ratio() > 1+r.Tolerance {
			out = append(out, d)
		}
	}
	return out
}

// OK reports whether the gate passes: no regressions beyond tolerance and
// no baseline benchmark missing from the current run.
func (r *Report) OK() bool {
	return len(r.Regressions()) == 0 && len(r.Missing) == 0
}

// Write renders the comparison as an aligned table with a verdict line.
func (r *Report) Write(w io.Writer) error {
	tw := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	width := len("benchmark")
	for _, d := range r.Deltas {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	if err := tw("%-*s  %12s  %12s  %8s\n", width, "benchmark", "base ns/op", "cur ns/op", "delta"); err != nil {
		return err
	}
	for _, d := range r.Deltas {
		mark := ""
		if d.Ratio() > 1+r.Tolerance {
			mark = "  REGRESSION"
		}
		if err := tw("%-*s  %12.2f  %12.2f  %+7.1f%%%s\n",
			width, d.Name, d.Base, d.Cur, (d.Ratio()-1)*100, mark); err != nil {
			return err
		}
	}
	for _, name := range r.Missing {
		if err := tw("%-*s  %12s  %12s  %8s  MISSING\n", width, name, "-", "-", "-"); err != nil {
			return err
		}
	}
	for _, name := range r.New {
		if err := tw("%-*s  %12s  (new, no baseline)\n", width, name, "-"); err != nil {
			return err
		}
	}
	if r.OK() {
		return tw("bench-check: ok (%d benchmarks within +%.0f%%)\n", len(r.Deltas), r.Tolerance*100)
	}
	return tw("bench-check: FAIL (%d regressions, %d missing; tolerance +%.0f%%)\n",
		len(r.Regressions()), len(r.Missing), r.Tolerance*100)
}
