package benchcmp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: fsencr/internal/memctrl
cpu: whatever
BenchmarkReadLine-8   	  849849	      1446 ns/op
BenchmarkReadLine-8   	  901234	      1390 ns/op
BenchmarkWriteLine-8  	   84445	     12291 ns/op
PASS
ok  	fsencr/internal/memctrl	2.905s
pkg: fsencr/internal/aesctr
BenchmarkOTP-8        	 9621478	       123.3 ns/op
PASS
ok  	fsencr/internal/aesctr	1.1s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	// Repeats keep the fastest run.
	if e := got["fsencr/internal/memctrl.BenchmarkReadLine"]; e.NsPerOp != 1390 || e.Iterations != 901234 {
		t.Errorf("ReadLine: %+v, want fastest of the repeats", e)
	}
	if e := got["fsencr/internal/aesctr.BenchmarkOTP"]; e.NsPerOp != 123.3 {
		t.Errorf("OTP: %+v", e)
	}
}

func TestReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	data := `{
  "fsencr/internal/memctrl.BenchmarkReadLine": {"iterations": 849849, "ns_per_op": 1446},
  "fsencr/internal/aesctr.BenchmarkOTP": {"iterations": 9621478, "ns_per_op": 123.3}
}`
	if err := os.WriteFile(path, []byte(data), 0644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["fsencr/internal/memctrl.BenchmarkReadLine"].NsPerOp != 1446 {
		t.Fatalf("baseline: %+v", got)
	}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	base := map[string]Entry{
		"a.BenchmarkX": {NsPerOp: 100},
		"a.BenchmarkY": {NsPerOp: 1000},
	}
	cur := map[string]Entry{
		"a.BenchmarkX": {NsPerOp: 114}, // +14% < 15%
		"a.BenchmarkY": {NsPerOp: 900}, // faster
		"a.BenchmarkZ": {NsPerOp: 5},   // new, informational
	}
	r := Compare(base, cur, 0.15)
	if !r.OK() {
		t.Fatalf("within-tolerance comparison failed: %+v", r.Regressions())
	}
	if len(r.New) != 1 || r.New[0] != "a.BenchmarkZ" {
		t.Errorf("new benchmarks: %v", r.New)
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bench-check: ok") {
		t.Errorf("report verdict:\n%s", sb.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	base := map[string]Entry{"a.BenchmarkX": {NsPerOp: 100}}
	cur := map[string]Entry{"a.BenchmarkX": {NsPerOp: 120}} // +20% > 15%
	r := Compare(base, cur, 0.15)
	if r.OK() {
		t.Fatal("20% slowdown passed a 15% gate")
	}
	regs := r.Regressions()
	if len(regs) != 1 || regs[0].Name != "a.BenchmarkX" {
		t.Fatalf("regressions: %+v", regs)
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") || !strings.Contains(sb.String(), "bench-check: FAIL") {
		t.Errorf("report:\n%s", sb.String())
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := map[string]Entry{
		"a.BenchmarkX": {NsPerOp: 100},
		"a.BenchmarkY": {NsPerOp: 100},
	}
	cur := map[string]Entry{"a.BenchmarkX": {NsPerOp: 100}}
	r := Compare(base, cur, 0.15)
	if r.OK() {
		t.Fatal("missing baseline benchmark passed the gate")
	}
	if len(r.Missing) != 1 || r.Missing[0] != "a.BenchmarkY" {
		t.Fatalf("missing: %v", r.Missing)
	}
}
