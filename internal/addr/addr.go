// Package addr defines physical and virtual address types for the simulated
// machine, including the DF-bit (DAX-File bit) encoding the paper introduces:
// bit 51 of the 52-bit physical address marks a request as targeting a
// DAX-mapped file page, letting the memory controller steer it through the
// file-encryption datapath without any extra wires or request metadata.
package addr

import (
	"fmt"

	"fsencr/internal/config"
)

// Phys is a physical address. Bit 51 (config.DFBitPos) is the DF-bit; the
// remaining low bits locate the byte in the physical memory space.
type Phys uint64

// Virt is a per-process virtual address.
type Virt uint64

// DFBit is the DAX-File bit mask within a physical address.
const DFBit Phys = 1 << config.DFBitPos

// AddrMask strips the DF-bit, leaving the raw memory location.
const AddrMask = DFBit - 1

// WithDF returns p with the DF-bit set, marking it as a DAX file access.
func (p Phys) WithDF() Phys { return p | DFBit }

// IsDF reports whether the DF-bit is set.
func (p Phys) IsDF() bool { return p&DFBit != 0 }

// Raw returns the physical location with the DF-bit stripped.
func (p Phys) Raw() Phys { return p & AddrMask }

// LineAlign returns the address of the cache line containing p, preserving
// the DF-bit.
func (p Phys) LineAlign() Phys { return p &^ (config.LineSize - 1) }

// PageAlign returns the address of the 4 KB page containing p, preserving
// the DF-bit.
func (p Phys) PageAlign() Phys { return p &^ (config.PageSize - 1) }

// PageNum returns the physical page number (DF-bit stripped).
func (p Phys) PageNum() uint64 { return uint64(p.Raw()) / config.PageSize }

// LineNum returns the physical line number (DF-bit stripped).
func (p Phys) LineNum() uint64 { return uint64(p.Raw()) / config.LineSize }

// LineInPage returns the index (0..63) of p's cache line within its page.
func (p Phys) LineInPage() int {
	return int(uint64(p.Raw()) % config.PageSize / config.LineSize)
}

// PageOffset returns the byte offset of p within its 4 KB page.
func (p Phys) PageOffset() uint64 { return uint64(p.Raw()) % config.PageSize }

func (p Phys) String() string {
	if p.IsDF() {
		return fmt.Sprintf("PA[DF]:%#x", uint64(p.Raw()))
	}
	return fmt.Sprintf("PA:%#x", uint64(p))
}

// Page/line helpers for virtual addresses.

// PageNum returns the virtual page number.
func (v Virt) PageNum() uint64 { return uint64(v) / config.PageSize }

// PageOffset returns the byte offset within the virtual page.
func (v Virt) PageOffset() uint64 { return uint64(v) % config.PageSize }

// LineAlign returns the virtual address of the containing cache line.
func (v Virt) LineAlign() Virt { return v &^ (config.LineSize - 1) }
