package addr

import "fsencr/internal/config"

// Mapping implements the RoRaBaChCo physical-to-DRAM address mapping from
// Table III: reading the physical address from least to most significant,
// the column bits come first, then channel, bank, rank, and row.
type Mapping struct {
	channels     int
	ranks        int
	banks        int
	rowBufBytes  int
	colBits      uint
	chanBits     uint
	bankBits     uint
	rankBits     uint
	lineSizeBits uint
}

// NewMapping builds a RoRaBaChCo mapping from the PCM geometry.
func NewMapping(p config.PCM) *Mapping {
	m := &Mapping{
		channels:    p.Channels,
		ranks:       p.RanksPerChan,
		banks:       p.BanksPerRank,
		rowBufBytes: p.RowBufferBytes,
	}
	m.lineSizeBits = log2(config.LineSize)
	// Column bits address lines within a row buffer.
	m.colBits = log2(uint64(p.RowBufferBytes / config.LineSize))
	m.chanBits = log2(uint64(p.Channels))
	m.bankBits = log2(uint64(p.BanksPerRank))
	m.rankBits = log2(uint64(p.RanksPerChan))
	return m
}

// Decomposed identifies the DRAM resources a line address maps to.
type Decomposed struct {
	Channel int
	Rank    int
	Bank    int
	Row     uint64
	Col     int
}

// Decompose maps a physical address (DF-bit ignored) onto channel, rank,
// bank, row, and column following RoRaBaChCo.
func (m *Mapping) Decompose(p Phys) Decomposed {
	a := uint64(p.Raw()) >> m.lineSizeBits
	var d Decomposed
	d.Col = int(a & mask(m.colBits))
	a >>= m.colBits
	d.Channel = int(a & mask(m.chanBits))
	a >>= m.chanBits
	d.Bank = int(a & mask(m.bankBits))
	a >>= m.bankBits
	d.Rank = int(a & mask(m.rankBits))
	a >>= m.rankBits
	d.Row = a
	return d
}

// BankID returns a flat bank identifier in [0, TotalBanks).
func (m *Mapping) BankID(d Decomposed) int {
	return (d.Channel*m.ranks+d.Rank)*m.banks + d.Bank
}

// TotalBanks returns the number of independently schedulable banks.
func (m *Mapping) TotalBanks() int { return m.channels * m.ranks * m.banks }

func mask(bits uint) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<bits - 1
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
