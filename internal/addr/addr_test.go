package addr

import (
	"testing"
	"testing/quick"

	"fsencr/internal/config"
)

func TestDFBit(t *testing.T) {
	p := Phys(0x1234_5678)
	if p.IsDF() {
		t.Fatal("fresh address has DF set")
	}
	d := p.WithDF()
	if !d.IsDF() {
		t.Fatal("WithDF did not set DF")
	}
	if d.Raw() != p {
		t.Fatalf("Raw() = %v, want %v", d.Raw(), p)
	}
	if uint64(d)>>config.DFBitPos != 1 {
		t.Fatal("DF bit not at bit 51")
	}
}

func TestAlignment(t *testing.T) {
	p := Phys(0x1043).WithDF()
	if p.LineAlign() != Phys(0x1040)|DFBit {
		t.Fatalf("LineAlign = %v", p.LineAlign())
	}
	if p.PageAlign() != Phys(0x1000)|DFBit {
		t.Fatalf("PageAlign = %v", p.PageAlign())
	}
	if p.PageNum() != 1 {
		t.Fatalf("PageNum = %d", p.PageNum())
	}
	if p.LineInPage() != 1 {
		t.Fatalf("LineInPage = %d", p.LineInPage())
	}
	if p.PageOffset() != 0x43 {
		t.Fatalf("PageOffset = %#x", p.PageOffset())
	}
}

func TestLineNum(t *testing.T) {
	if Phys(128).LineNum() != 2 {
		t.Fatal("LineNum(128) != 2")
	}
	if Phys(128).WithDF().LineNum() != 2 {
		t.Fatal("LineNum must strip DF")
	}
}

func TestVirtHelpers(t *testing.T) {
	v := Virt(0x2043)
	if v.PageNum() != 2 {
		t.Fatalf("PageNum = %d", v.PageNum())
	}
	if v.PageOffset() != 0x43 {
		t.Fatalf("PageOffset = %#x", v.PageOffset())
	}
	if v.LineAlign() != 0x2040 {
		t.Fatalf("LineAlign = %#x", uint64(v.LineAlign()))
	}
}

func TestPhysString(t *testing.T) {
	if s := Phys(16).String(); s != "PA:0x10" {
		t.Fatalf("String = %q", s)
	}
	if s := Phys(16).WithDF().String(); s != "PA[DF]:0x10" {
		t.Fatalf("DF String = %q", s)
	}
}

func TestMappingDecomposeBounds(t *testing.T) {
	m := NewMapping(config.Default().PCM)
	f := func(raw uint64) bool {
		p := Phys(raw & uint64(AddrMask))
		d := m.Decompose(p)
		cfg := config.Default().PCM
		if d.Channel < 0 || d.Channel >= cfg.Channels {
			return false
		}
		if d.Rank < 0 || d.Rank >= cfg.RanksPerChan {
			return false
		}
		if d.Bank < 0 || d.Bank >= cfg.BanksPerRank {
			return false
		}
		if d.Col < 0 || d.Col >= cfg.RowBufferBytes/config.LineSize {
			return false
		}
		id := m.BankID(d)
		return id >= 0 && id < m.TotalBanks()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMappingSameLineSameBank(t *testing.T) {
	m := NewMapping(config.Default().PCM)
	a := m.Decompose(Phys(0x10000))
	b := m.Decompose(Phys(0x10004)) // same line, different byte
	if a != b {
		t.Fatalf("same line decomposed differently: %+v vs %+v", a, b)
	}
}

func TestMappingAdjacentLinesInterleaveChannels(t *testing.T) {
	// With RoRaBaChCo, the channel bits sit right above the column bits;
	// consecutive lines within a row stay on one channel until the column
	// bits wrap. Verify at least that total banks is correct and rows
	// change with high bits.
	m := NewMapping(config.Default().PCM)
	if m.TotalBanks() != 2*2*8 {
		t.Fatalf("TotalBanks = %d", m.TotalBanks())
	}
	lo := m.Decompose(Phys(0))
	hi := m.Decompose(Phys(1 << 30))
	if lo.Row == hi.Row {
		t.Fatal("distant addresses mapped to the same row")
	}
}

func TestMappingDFIgnored(t *testing.T) {
	m := NewMapping(config.Default().PCM)
	a := m.Decompose(Phys(0x123440))
	b := m.Decompose(Phys(0x123440).WithDF())
	if a != b {
		t.Fatal("DF bit leaked into DRAM mapping")
	}
}
