// Package fstop renders the fsencrd live operator view: a plain-text
// dashboard polled from the daemon's /snapshot.json (counters, gauges) and
// /spans.json (retained traces) endpoints. One frame
// shows the host-side request counters and rates, per-shard queue state,
// the per-tenant SLO plane (latency quantiles and error-budget burn), the
// tail sampler's kept/dropped accounting, and a waterfall of the slowest
// retained request traces. Everything derives from the same merged
// telemetry snapshot the bench harness exports, so what the operator sees
// is exactly what the canonical artifacts record.
package fstop

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"fsencr/internal/telemetry"
)

// Options configures the dashboard.
type Options struct {
	// Base is the daemon's base URL, e.g. http://localhost:8080.
	Base string
	// Interval is the poll period (<= 0 means 2s).
	Interval time.Duration
	// Once renders a single frame and returns instead of looping.
	Once bool
	// Out receives rendered frames (nil means stdout).
	Out io.Writer
	// Client issues the polls (nil means http.DefaultClient).
	Client *http.Client
}

// maxTraces bounds how many slow-trace waterfalls one frame shows.
const maxTraces = 3

// clearScreen is the ANSI erase-and-home sequence used between frames.
const clearScreen = "\x1b[2J\x1b[H"

// Fetch polls one merged telemetry snapshot from the daemon. The obsplane
// serves /snapshot.json as a numbered publication doc ({seq, snapshot,
// delta}) with spans stripped; Fetch unwraps it (falling back to a plain
// snapshot body for older daemons) and fills in the retained spans from
// /spans.json so the trace waterfalls render. A missing or failing
// /spans.json degrades to a span-less frame rather than an error.
func Fetch(c *http.Client, base string) (*telemetry.Snapshot, error) {
	base = strings.TrimRight(base, "/")
	body, err := get(c, base+"/snapshot.json")
	if err != nil {
		return nil, err
	}
	var doc struct {
		Snapshot *telemetry.Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("fstop: decode snapshot: %w", err)
	}
	s := doc.Snapshot
	if s == nil {
		s = telemetry.NewSnapshot()
		if err := json.Unmarshal(body, s); err != nil {
			return nil, fmt.Errorf("fstop: decode snapshot: %w", err)
		}
	}
	if len(s.Spans) == 0 {
		if body, err := get(c, base+"/spans.json"); err == nil {
			var full telemetry.Snapshot
			if json.Unmarshal(body, &full) == nil {
				s.Spans = full.Spans
				if full.SpanDrops > s.SpanDrops {
					s.SpanDrops = full.SpanDrops
				}
			}
		}
	}
	return s, nil
}

// get issues one GET and returns the body of a 200 response.
func get(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fstop: %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Run polls and renders until the process is killed (or once, with
// Options.Once). Poll failures in loop mode are shown and retried; in
// once mode they are returned.
func Run(opts Options) error {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Out == nil {
		opts.Out = os.Stdout
	}
	c := opts.Client
	if c == nil {
		c = http.DefaultClient
	}
	var prev *telemetry.Snapshot
	var prevAt time.Time
	for {
		cur, err := Fetch(c, opts.Base)
		now := time.Now()
		if err != nil {
			if opts.Once {
				return err
			}
			fmt.Fprintf(opts.Out, "fsencr-top: %v (retrying in %s)\n", err, opts.Interval)
		} else {
			var dt time.Duration
			if prev != nil {
				dt = now.Sub(prevAt)
			}
			if !opts.Once {
				fmt.Fprint(opts.Out, clearScreen)
			}
			Render(opts.Out, prev, cur, dt, opts.Base)
			prev, prevAt = cur, now
		}
		if opts.Once {
			return nil
		}
		time.Sleep(opts.Interval)
	}
}

// Render writes one dashboard frame. prev (the previous frame's snapshot)
// and dt feed the rate columns; both may be zero for the first frame.
func Render(w io.Writer, prev, cur *telemetry.Snapshot, dt time.Duration, base string) {
	fmt.Fprintf(w, "fsencr-top — %s\n\n", base)
	renderTotals(w, prev, cur, dt)
	renderShards(w, cur)
	renderTenants(w, cur)
	renderTraces(w, cur)
}

// rate formats a per-second delta between two counter readings.
func rate(prev *telemetry.Snapshot, cur uint64, name string, dt time.Duration) string {
	if prev == nil || dt <= 0 {
		return "-"
	}
	p := prev.Counters[name]
	if p > cur {
		p = cur // sink reset; clamp like telemetry.Diff
	}
	return fmt.Sprintf("%.1f/s", float64(cur-p)/dt.Seconds())
}

func renderTotals(w io.Writer, prev, cur *telemetry.Snapshot, dt time.Duration) {
	reqs := cur.Counters["server.requests_total"]
	fmt.Fprintf(w, "requests  %8d  (%s)    errors %d    busy %d    auth_failures %d\n",
		reqs, rate(prev, reqs, "server.requests_total", dt),
		cur.Counters["server.request_errors_total"],
		cur.Counters["server.busy_rejections_total"],
		cur.Counters["server.auth_failures_total"])
	kept, dropped := cur.Counters["trace.kept_total"], cur.Counters["trace.dropped_total"]
	fmt.Fprintf(w, "traces    kept %d  dropped %d  (of %d sampled)    span_drops %d\n\n",
		kept, dropped, kept+dropped, cur.SpanDrops)
}

func renderShards(w io.Writer, cur *telemetry.Snapshot) {
	var ids []int
	for name := range cur.Gauges {
		var id int
		if n, _ := fmt.Sscanf(name, "server.shard%d.queue_depth", &id); n == 1 &&
			name == fmt.Sprintf("server.shard%d.queue_depth", id) {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return
	}
	sort.Ints(ids)
	fmt.Fprintf(w, "%-6s %8s %10s %12s\n", "SHARD", "DEPTH", "SERVED", "AUDIT_HEAD")
	for _, id := range ids {
		fmt.Fprintf(w, "%-6d %8d %10d %12d\n", id,
			cur.Gauges[fmt.Sprintf("server.shard%d.queue_depth", id)],
			cur.Counters[fmt.Sprintf("server.shard%d.served_total", id)],
			cur.Gauges[fmt.Sprintf("server.shard%d.audit_head_seq", id)])
	}
	fmt.Fprintln(w)
}

// ms formats a nanosecond gauge as milliseconds.
func ms(ns uint64) string { return fmt.Sprintf("%.2fms", float64(ns)/1e6) }

func renderTenants(w io.Writer, cur *telemetry.Snapshot) {
	const pre, suf = "server.tenant.", ".slo_burn_milli"
	var names []string
	for name := range cur.Gauges {
		if strings.HasPrefix(name, pre) && strings.HasSuffix(name, suf) {
			names = append(names, name[len(pre):len(name)-len(suf)])
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %8s %8s\n",
		"TENANT", "P50", "P99", "P999", "BURN", "GOOD", "BAD")
	for _, n := range names {
		p := pre + n + "."
		// Burn is in milli-units of the error budget: 1000 = burning
		// exactly at the budget rate.
		fmt.Fprintf(w, "%-12s %10s %10s %10s %9.2fx %8d %8d\n", n,
			ms(cur.Gauges[p+"p50_ns"]), ms(cur.Gauges[p+"p99_ns"]), ms(cur.Gauges[p+"p999_ns"]),
			float64(cur.Gauges[p+"slo_burn_milli"])/1000,
			cur.Counters[p+"slo_good_total"], cur.Counters[p+"slo_bad_total"])
	}
	fmt.Fprintln(w)
}

// renderTraces shows the slowest retained request traces as indented
// waterfalls: the root request span, then its descendants (queue wait,
// kernel syscalls, controller page ops, PCM bank access) ordered by start
// cycle, each offset-annotated against the root.
func renderTraces(w io.Writer, cur *telemetry.Snapshot) {
	byTrace := make(map[uint64][]telemetry.Span)
	var roots []telemetry.Span
	for _, sp := range cur.Spans {
		if sp.TraceID == 0 {
			continue
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
		if sp.Cat == "request" && sp.ParentID == 0 && sp.SpanID != 0 {
			roots = append(roots, sp)
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].Dur != roots[j].Dur {
			return roots[i].Dur > roots[j].Dur
		}
		return roots[i].TraceID < roots[j].TraceID
	})
	fmt.Fprintf(w, "SLOWEST TRACES (%d retained)\n", len(roots))
	if len(roots) > maxTraces {
		roots = roots[:maxTraces]
	}
	for _, r := range roots {
		fmt.Fprintf(w, "trace %016x  %-10s %d cycles\n", r.TraceID, r.Name, r.Dur)
		kids := make(map[uint64][]telemetry.Span)
		for _, sp := range byTrace[r.TraceID] {
			if sp.SpanID == r.SpanID {
				continue
			}
			kids[sp.ParentID] = append(kids[sp.ParentID], sp)
		}
		var emit func(parent uint64, depth int)
		emit = func(parent uint64, depth int) {
			cs := kids[parent]
			sort.Slice(cs, func(i, j int) bool {
				if cs[i].Start != cs[j].Start {
					return cs[i].Start < cs[j].Start
				}
				return cs[i].SpanID < cs[j].SpanID
			})
			for _, c := range cs {
				off := uint64(0)
				if c.Start > r.Start {
					off = c.Start - r.Start
				}
				fmt.Fprintf(w, "  %s%-8s %-18s +%-10d %d cycles\n",
					strings.Repeat("  ", depth), c.Cat, c.Name, off, c.Dur)
				emit(c.SpanID, depth+1)
			}
		}
		emit(r.SpanID, 0)
	}
}
