package fstop

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fsencr/internal/telemetry"
)

// sampleSnapshot builds the shape /snapshot.json serves: host counters,
// shard and tenant gauges, and one retained request trace.
func sampleSnapshot() *telemetry.Snapshot {
	s := telemetry.NewSnapshot()
	s.Counters["server.requests_total"] = 120
	s.Counters["server.request_errors_total"] = 2
	s.Counters["trace.kept_total"] = 10
	s.Counters["trace.dropped_total"] = 30
	s.Counters["server.shard0.served_total"] = 80
	s.Counters["server.tenant.acme.slo_good_total"] = 99
	s.Counters["server.tenant.acme.slo_bad_total"] = 1
	s.Gauges["server.shard0.queue_depth"] = 3
	s.Gauges["server.shard0.audit_head_seq"] = 41
	s.Gauges["server.tenant.acme.p50_ns"] = 2_000_000
	s.Gauges["server.tenant.acme.p99_ns"] = 9_000_000
	s.Gauges["server.tenant.acme.p999_ns"] = 20_000_000
	s.Gauges["server.tenant.acme.slo_burn_milli"] = 500
	s.Spans = []telemetry.Span{
		{Cat: "request", Name: "write", Start: 100, Dur: 900, TraceID: 0xabc, SpanID: 1},
		{Cat: "request", Name: "queue_wait", Start: 100, Dur: 50, TraceID: 0xabc, SpanID: 2, ParentID: 1},
		{Cat: "kernel", Name: "write", Start: 150, Dur: 800, TraceID: 0xabc, SpanID: 3, ParentID: 1},
		{Cat: "pcm", Name: "access_page_write", Start: 400, Dur: 300, TraceID: 0xabc, SpanID: 4, ParentID: 3},
	}
	s.Runs = 1
	return s
}

// TestRenderFrame pins the dashboard's sections: totals, shard table,
// tenant SLO table, and an indented trace waterfall.
func TestRenderFrame(t *testing.T) {
	var out bytes.Buffer
	prev := telemetry.NewSnapshot()
	prev.Counters["server.requests_total"] = 20
	Render(&out, prev, sampleSnapshot(), 10*time.Second, "http://x:1")
	got := out.String()

	for _, want := range []string{
		"requests",
		"10.0/s", // (120-20)/10s
		"kept 10  dropped 30  (of 40 sampled)",
		"SHARD",
		"AUDIT_HEAD",
		"TENANT",
		"acme",
		"2.00ms",  // p50
		"9.00ms",  // p99
		"20.00ms", // p999
		"0.50x",   // burn 500 milli
		"SLOWEST TRACES (1 retained)",
		"trace 0000000000000abc",
		"queue_wait",
		"access_page_write",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q:\n%s", want, got)
		}
	}
	// The pcm span nests two levels under the root: deeper indent than the
	// kernel span.
	kernelLine, pcmLine := "", ""
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "kernel") {
			kernelLine = line
		}
		if strings.Contains(line, "pcm") {
			pcmLine = line
		}
	}
	if kernelLine == "" || pcmLine == "" {
		t.Fatalf("waterfall lines missing:\n%s", got)
	}
	indent := func(s string) int { return len(s) - len(strings.TrimLeft(s, " ")) }
	if indent(pcmLine) <= indent(kernelLine) {
		t.Errorf("pcm span not nested deeper than kernel:\n%q\n%q", kernelLine, pcmLine)
	}
}

// TestRunOncePolls drives Run in once mode against a fake daemon serving
// the real obsplane shape: /snapshot.json is a numbered publication doc
// with spans stripped, and the retained spans live on /spans.json.
func TestRunOncePolls(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/snapshot.json":
			doc := struct {
				Seq      uint64              `json:"seq"`
				Snapshot *telemetry.Snapshot `json:"snapshot"`
			}{Seq: 1, Snapshot: sampleSnapshot().WithoutSpans()}
			if err := json.NewEncoder(w).Encode(doc); err != nil {
				t.Error(err)
			}
		case "/spans.json":
			if err := sampleSnapshot().WriteJSON(w); err != nil {
				t.Error(err)
			}
		default:
			http.NotFound(w, r)
		}
	}))
	defer hs.Close()

	var out bytes.Buffer
	if err := Run(Options{Base: hs.URL, Once: true, Out: &out}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, want := range []string{"acme", "requests       120", "SLOWEST TRACES", "access_page_write"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("once-mode frame missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), clearScreen) {
		t.Fatal("once mode must not clear the screen")
	}
}

// TestFetchPlainSnapshot pins the fallback decode path: a daemon serving a
// bare snapshot body (no publication wrapper) still renders.
func TestFetchPlainSnapshot(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/snapshot.json" {
			http.NotFound(w, r)
			return
		}
		if err := sampleSnapshot().WriteJSON(w); err != nil {
			t.Error(err)
		}
	}))
	defer hs.Close()

	s, err := Fetch(http.DefaultClient, hs.URL)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if s.Counters["server.requests_total"] != 120 || len(s.Spans) != 4 {
		t.Fatalf("plain-shape decode lost data: %+v", s)
	}
}
