// Package aesctr implements the counter-mode encryption engine used by both
// the memory-encryption and file-encryption datapaths (Figure 2 of the
// paper). An Initialization Vector built from {page ID, page offset, major
// counter, minor counter} is run through AES-128 to produce a 64-byte
// one-time pad (OTP), which is XORed with the cache-line data. The AES work
// can start as soon as the counters are known, so with a metadata-cache hit
// the OTP generation overlaps the memory array access and only the final XOR
// is exposed.
//
// Encryption here is functional, not just a latency annotation: the bytes
// stored in the simulated NVM are real AES-CTR ciphertext.
package aesctr

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"

	"fsencr/internal/config"
)

// Key is a 128-bit AES key.
type Key [config.KeySize]byte

// IV carries the spatial and temporal uniqueness fields of Figure 2.
type IV struct {
	// PageID provides spatial uniqueness across pages: the physical page
	// number for memory encryption, and likewise for file encryption (the
	// paper keeps physical-address spatial uniqueness even for file
	// counters, which is what makes same-device file copies safe, §VI).
	PageID uint64
	// LineInPage provides spatial uniqueness within the page (0..63).
	LineInPage uint8
	// Major is the per-page major counter.
	Major uint64
	// Minor is the per-line 7-bit minor counter.
	Minor uint8
	// Domain separates keyspaces (memory vs file vs OTT-region encryption)
	// so identical counters under different engines can never collide.
	Domain uint8
}

// Domain tags for IV.Domain.
const (
	DomainMemory   = 1
	DomainFile     = 2
	DomainOTT      = 3
	DomainSoftware = 4
)

// Engine is one AES-CTR encryption engine (the paper instantiates a Memory
// Encryption Engine and a File Encryption Engine; the OTT region sealing
// uses a third with the processor-resident OTT key).
//
// An Engine is not safe for concurrent use: OTP generation reuses an
// internal counter-block buffer. That matches the simulator's isolation
// invariant — every engine belongs to exactly one memory controller, and
// each simulated system runs on a single goroutine even when the parallel
// experiment runner executes many systems at once.
type Engine struct {
	block   cipher.Block
	latency config.Cycle
	// ctr is the reusable counter-block buffer for OTPInto; every byte is
	// rewritten per call, so it never needs clearing.
	ctr [16]byte
}

// New returns an engine keyed with key. latency is the hardware AES latency
// (Table III: 40 ns) exposed when OTP generation cannot be overlapped.
func New(key Key, latency config.Cycle) *Engine {
	b, err := aes.NewCipher(key[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the Key
		// array type rules out.
		panic("aesctr: " + err.Error())
	}
	return &Engine{block: b, latency: latency}
}

// Latency returns the engine's AES latency in cycles.
func (e *Engine) Latency() config.Cycle { return e.latency }

// Fork returns an engine sharing this one's key schedule but with its own
// counter-block buffer, so a reader goroutine can generate OTPs
// concurrently with the owner. cipher.Block is stateless after key
// expansion; only the ctr scratch makes Engine single-goroutine.
func (e *Engine) Fork() *Engine {
	return &Engine{block: e.block, latency: e.latency}
}

// Line is one 64-byte cache line.
type Line [config.LineSize]byte

// OTPInto fills dst with the 64-byte one-time pad for iv. Four AES blocks
// are generated (64 B / 16 B); hardware runs them in parallel so the
// latency is a single AES traversal. This is the datapath's hot entry
// point: it writes straight into the caller's buffer, sparing the 64-byte
// return copy that OTP pays per access.
func (e *Engine) OTPInto(dst *Line, iv IV) {
	ctr := e.ctr[:]
	// Major occupies bytes 11..14 (32 bits); byte 15 is the AES-block
	// index. Memory-encryption majors are 64-bit but never overflow 32 bits
	// within a device lifetime; the high bits are folded into the page-ID
	// lane for functional completeness.
	binary.LittleEndian.PutUint64(ctr[0:8], iv.PageID^(iv.Major>>32<<48))
	ctr[8] = iv.LineInPage
	ctr[9] = iv.Minor
	ctr[10] = iv.Domain
	binary.LittleEndian.PutUint32(ctr[11:15], uint32(iv.Major))
	for blk := 0; blk < config.LineSize/16; blk++ {
		ctr[15] = byte(blk)
		e.block.Encrypt(dst[blk*16:(blk+1)*16], ctr)
	}
}

// Page is one 4 KB page of data — 64 consecutive lines. The batched
// page-granularity datapath moves whole pages through the controller with
// one call instead of 64.
type Page [config.PageSize]byte

// OTPPageInto fills dst with the one-time pads for all 64 lines of a page
// in one pass: the counter-block template (page ID, major counter, domain)
// is built once, and only the per-line lane (line index, minor counter) and
// the per-block index are rewritten inside the loop. The output is
// byte-identical to 64 OTPInto calls with the corresponding per-line IVs —
// the batching amortizes host work, it never changes the keystream.
func (e *Engine) OTPPageInto(dst *Page, pageID uint64, major uint64, minors *[config.LinesPerPage]uint8, domain uint8) {
	ctr := e.ctr[:]
	binary.LittleEndian.PutUint64(ctr[0:8], pageID^(major>>32<<48))
	ctr[10] = domain
	binary.LittleEndian.PutUint32(ctr[11:15], uint32(major))
	for li := 0; li < config.LinesPerPage; li++ {
		ctr[8] = uint8(li)
		ctr[9] = minors[li]
		base := li * config.LineSize
		for blk := 0; blk < config.LineSize/16; blk++ {
			ctr[15] = byte(blk)
			e.block.Encrypt(dst[base+blk*16:base+(blk+1)*16], ctr)
		}
	}
}

// XORPageInto sets dst ^= src across a whole page, eight bytes at a lane —
// the page-granularity companion of XORInto.
func XORPageInto(dst, src *Page) {
	for i := 0; i < config.PageSize; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:i+8]) ^ binary.LittleEndian.Uint64(src[i:i+8])
		binary.LittleEndian.PutUint64(dst[i:i+8], v)
	}
}

// OTP generates the 64-byte one-time pad for iv.
func (e *Engine) OTP(iv IV) Line {
	var pad Line
	e.OTPInto(&pad, iv)
	return pad
}

// XORInto sets dst ^= src in place, eight bytes at a lane. The memory
// controller's per-line datapath uses it to combine and strip OTPs without
// the three 64-byte copies per access that XOR's by-value signature forces.
func XORInto(dst, src *Line) {
	for i := 0; i < config.LineSize; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:i+8]) ^ binary.LittleEndian.Uint64(src[i:i+8])
		binary.LittleEndian.PutUint64(dst[i:i+8], v)
	}
}

// XOR returns a ^ b.
func XOR(a, b Line) Line {
	XORInto(&a, &b)
	return a
}

// Apply encrypts or decrypts data with the pad (the operation is its own
// inverse in CTR mode).
func (e *Engine) Apply(data Line, iv IV) Line {
	var pad Line
	e.OTPInto(&pad, iv)
	XORInto(&data, &pad)
	return data
}

// EncryptBlock16 encrypts a single 16-byte block in ECB fashion; used only
// for sealing OTT entries (fixed-size records) where CTR counters are not
// available. Each OTT record embeds its slot index for spatial uniqueness.
func (e *Engine) EncryptBlock16(dst, src []byte) { e.block.Encrypt(dst, src) }

// DecryptBlock16 reverses EncryptBlock16.
func (e *Engine) DecryptBlock16(dst, src []byte) { e.block.Decrypt(dst, src) }
