package aesctr

import (
	"testing"

	"fsencr/internal/config"
)

// TestOTPPageIntoMatchesPerLine pins the batching invariant the whole
// page-granularity datapath rests on: OTPPageInto must produce exactly the
// keystream 64 individual OTPInto calls produce, for arbitrary majors
// (including >32-bit, which fold into the page-ID lane) and per-line minors.
func TestOTPPageIntoMatchesPerLine(t *testing.T) {
	e := New(testKey(3), 40)
	majors := []uint64{0, 1, 127, 1 << 31, 1<<32 + 5, 1<<40 + 9}
	for _, major := range majors {
		var minors [config.LinesPerPage]uint8
		for li := range minors {
			minors[li] = uint8((li*7 + int(major)) % 128)
		}
		pageID := uint64(0x1234) ^ major
		var page Page
		e.OTPPageInto(&page, pageID, major, &minors, DomainFile)
		for li := 0; li < config.LinesPerPage; li++ {
			var want Line
			e.OTPInto(&want, IV{
				PageID:     pageID,
				LineInPage: uint8(li),
				Major:      major,
				Minor:      minors[li],
				Domain:     DomainFile,
			})
			got := page[li*config.LineSize : (li+1)*config.LineSize]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("major %d line %d byte %d: page pad %#x != line pad %#x",
						major, li, i, got[i], want[i])
				}
			}
		}
	}
}

func TestXORPageInto(t *testing.T) {
	var a, b, orig Page
	for i := range a {
		a[i] = byte(i * 3)
		b[i] = byte(i >> 2)
	}
	orig = a
	XORPageInto(&a, &b)
	for i := range a {
		if a[i] != orig[i]^b[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, a[i], orig[i]^b[i])
		}
	}
	XORPageInto(&a, &b)
	if a != orig {
		t.Fatal("XORPageInto is not an involution")
	}
}

var sinkPage Page

// BenchmarkOTPPageInto vs 64x BenchmarkOTPInto quantifies the template-ctr
// amortization (one counter-block setup per page instead of 64).
func BenchmarkOTPPageInto(b *testing.B) {
	e := New(testKey(1), 40)
	var minors [config.LinesPerPage]uint8
	for i := range minors {
		minors[i] = uint8(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.OTPPageInto(&sinkPage, uint64(i), uint64(i>>3), &minors, DomainMemory)
	}
}

func BenchmarkXORPageInto(b *testing.B) {
	var src Page
	for i := range src {
		src[i] = byte(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XORPageInto(&sinkPage, &src)
	}
}
