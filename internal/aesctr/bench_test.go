package aesctr

import "testing"

// Hot-path benchmarks for the crypto engine. BenchmarkOTP/BenchmarkApply
// exercise the by-value API; the *Into variants are what the memory
// controller's datapath actually calls, so the pair gives before/after
// numbers for the copy-elimination fast-path.

var (
	sinkLine Line
	sinkPad  Line
)

func benchIV(i int) IV {
	return IV{
		PageID:     uint64(i >> 6),
		LineInPage: uint8(i & 63),
		Major:      uint64(i >> 3),
		Minor:      uint8(i & 127),
		Domain:     DomainMemory,
	}
}

func BenchmarkOTP(b *testing.B) {
	e := New(testKey(1), 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkPad = e.OTP(benchIV(i))
	}
}

func BenchmarkOTPInto(b *testing.B) {
	e := New(testKey(1), 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.OTPInto(&sinkPad, benchIV(i))
	}
}

func BenchmarkXOR(b *testing.B) {
	var x, y Line
	for i := range x {
		x[i] = byte(i)
		y[i] = byte(255 - i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkLine = XOR(x, y)
	}
}

func BenchmarkXORInto(b *testing.B) {
	var x, y Line
	for i := range x {
		x[i] = byte(i)
		y[i] = byte(255 - i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XORInto(&x, &y)
	}
}
