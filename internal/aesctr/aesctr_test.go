package aesctr

import (
	"testing"
	"testing/quick"

	"fsencr/internal/config"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b + byte(i)
	}
	return k
}

func TestOTPDeterministic(t *testing.T) {
	e := New(testKey(1), 40)
	iv := IV{PageID: 7, LineInPage: 3, Major: 9, Minor: 2, Domain: DomainMemory}
	if e.OTP(iv) != e.OTP(iv) {
		t.Fatal("OTP not deterministic")
	}
}

func TestOTPSensitivity(t *testing.T) {
	e := New(testKey(1), 40)
	base := IV{PageID: 7, LineInPage: 3, Major: 9, Minor: 2, Domain: DomainMemory}
	variants := []IV{
		{PageID: 8, LineInPage: 3, Major: 9, Minor: 2, Domain: DomainMemory},
		{PageID: 7, LineInPage: 4, Major: 9, Minor: 2, Domain: DomainMemory},
		{PageID: 7, LineInPage: 3, Major: 10, Minor: 2, Domain: DomainMemory},
		{PageID: 7, LineInPage: 3, Major: 9, Minor: 3, Domain: DomainMemory},
		{PageID: 7, LineInPage: 3, Major: 9, Minor: 2, Domain: DomainFile},
	}
	b := e.OTP(base)
	for i, iv := range variants {
		if e.OTP(iv) == b {
			t.Fatalf("variant %d produced identical OTP (spatial/temporal uniqueness broken)", i)
		}
	}
}

func TestOTPKeySeparation(t *testing.T) {
	iv := IV{PageID: 1, Domain: DomainMemory}
	if New(testKey(1), 0).OTP(iv) == New(testKey(2), 0).OTP(iv) {
		t.Fatal("different keys produced identical OTPs")
	}
}

func TestApplyRoundtrip(t *testing.T) {
	e := New(testKey(9), 40)
	f := func(data Line, page uint64, li uint8, major uint64, minor uint8) bool {
		iv := IV{PageID: page, LineInPage: li % config.LinesPerPage, Major: major, Minor: minor & config.MinorCounterMax, Domain: DomainFile}
		ct := e.Apply(data, iv)
		return e.Apply(ct, iv) == data && (ct != data || data == Line{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXOR(t *testing.T) {
	var a, b Line
	for i := range a {
		a[i] = byte(i)
		b[i] = byte(255 - i)
	}
	c := XOR(a, b)
	for i := range c {
		if c[i] != a[i]^b[i] {
			t.Fatalf("XOR wrong at %d", i)
		}
	}
	if XOR(c, b) != a {
		t.Fatal("XOR not involutive")
	}
}

func TestDualOTPComposition(t *testing.T) {
	// The FsEncr datapath XORs two OTPs; decryption with both engines in
	// either order must recover the plaintext.
	mem := New(testKey(3), 0)
	file := New(testKey(4), 0)
	var plain Line
	for i := range plain {
		plain[i] = byte(i * 7)
	}
	ivM := IV{PageID: 5, LineInPage: 1, Major: 2, Minor: 3, Domain: DomainMemory}
	ivF := IV{PageID: 5, LineInPage: 1, Major: 1, Minor: 1, Domain: DomainFile}
	ct := XOR(plain, XOR(mem.OTP(ivM), file.OTP(ivF)))
	back := XOR(XOR(ct, file.OTP(ivF)), mem.OTP(ivM))
	if back != plain {
		t.Fatal("dual OTP composition failed")
	}
	// Memory key alone must NOT recover the plaintext.
	if XOR(ct, mem.OTP(ivM)) == plain {
		t.Fatal("memory OTP alone decrypted a file line")
	}
}

func TestBlock16Roundtrip(t *testing.T) {
	e := New(testKey(5), 0)
	src := []byte("0123456789abcdef")
	dst := make([]byte, 16)
	back := make([]byte, 16)
	e.EncryptBlock16(dst, src)
	e.DecryptBlock16(back, dst)
	if string(back) != string(src) {
		t.Fatalf("ECB roundtrip got %q", back)
	}
	if string(dst) == string(src) {
		t.Fatal("ECB encryption is identity")
	}
}

func TestLatencyAccessor(t *testing.T) {
	if New(testKey(1), 40).Latency() != 40 {
		t.Fatal("latency not stored")
	}
}

func TestOTPBlocksDiffer(t *testing.T) {
	// The four 16-byte AES blocks within one OTP must differ.
	e := New(testKey(8), 0)
	pad := e.OTP(IV{PageID: 1, Domain: DomainMemory})
	for i := 0; i < 3; i++ {
		a := pad[i*16 : (i+1)*16]
		b := pad[(i+1)*16 : (i+2)*16]
		same := true
		for j := range a {
			if a[j] != b[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("OTP blocks %d and %d identical", i, i+1)
		}
	}
}
