// Package server is the multi-tenant encrypted file service over the
// FsEncr machine model: fsencrd's request-processing layer.
//
// The service multiplexes many concurrent network clients onto a pool of
// sharded simulated machines. Each Shard owns one kernel.System — machine,
// DAX filesystem, keyring, OTT — and a single worker goroutine that is the
// only code ever touching that system, so the simulation stays exactly as
// deterministic as it is in-process while independent tenants run in
// parallel on different shards (tenant -> shard by GroupID hash).
//
// Two admission disciplines are supported:
//
//   - Fair (default): per-tenant FIFO queues drained round-robin, so one
//     tenant flooding the shard cannot starve its neighbours, with bounded
//     per-tenant depth for backpressure (ErrBusy once the queue is full
//     and the caller's context expires).
//   - Deterministic: every request carries a per-shard schedule sequence
//     number and the worker admits strictly in sequence order, reordering
//     whatever the network delivers. Per-shard simulated state — clocks,
//     caches, telemetry, the security journal — becomes a pure function
//     of the schedule, byte-identical across reruns.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fsencr/internal/audit"
	"fsencr/internal/config"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/telemetry"
)

// Admission errors.
var (
	// ErrBusy reports per-tenant backpressure: the tenant's queue stayed
	// full for the caller's whole context window.
	ErrBusy = errors.New("server: tenant queue full")
	// ErrDraining reports a shard that has stopped admitting (graceful
	// shutdown in progress).
	ErrDraining = errors.New("server: shard draining")
)

// BusyError is the concrete backpressure rejection: it unwraps to ErrBusy
// (existing errors.Is checks keep working) and carries the shard's admitted
// queue depth at rejection time. The HTTP layer exports the depth as the
// queue-depth hint header so clients can scale their retry backoff to how
// congested the shard actually is instead of backing off blind.
type BusyError struct {
	Tenant uint32
	Depth  int64
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("%s (tenant %d)", ErrBusy, e.Tenant)
}

// Unwrap keeps errors.Is(err, ErrBusy) true.
func (e *BusyError) Unwrap() error { return ErrBusy }

// DefaultPerTenantQueue bounds how many requests one tenant may have
// admitted-but-unserved on a shard before backpressure kicks in.
const DefaultPerTenantQueue = 64

type taskResult struct {
	v   any
	err error
}

// task is one unit of admitted work: a closure executed on the shard's
// worker goroutine.
type task struct {
	seq     uint64
	tenant  uint32
	fn      func() (any, error)
	resp    chan taskResult // buffered(1): the worker never blocks on it
	release func()          // returns the per-tenant queue slot
	// name labels the request's root span ("write", "kv_get", ...).
	name string
	// trace is the request's wire trace context (zero: untraced).
	trace fsproto.TraceContext
	// enq is the shard clock when the worker absorbed the task (fair mode
	// only): the start of the measurable queue wait. Deterministic mode
	// leaves it 0 — arrival interleaving is not schedule state there.
	enq uint64
	// rec, when non-nil, is the admission-log record the worker appends
	// after executing the task (cluster mode).
	rec *fsproto.LogRecord
}

// sideTask is out-of-band worker work; done is closed after fn ran.
type sideTask struct {
	fn   func()
	done chan struct{}
}

// Shard is one simulated machine plus its serializing worker.
type Shard struct {
	id  int
	det bool

	// Sys is the shard's booted system. Only the worker goroutine may
	// call into it; everyone else goes through Do.
	Sys *kernel.System
	// Reg is the shard's deterministic telemetry registry: every value in
	// it derives from simulated cycles, so with a deterministic schedule
	// its snapshot is byte-identical across reruns.
	Reg *telemetry.Registry
	// Jrn is the shard's security-event journal (kernel/machine emissions
	// plus the server's cross-tenant denial and auth-failure events, all
	// emitted on the worker in admission order).
	Jrn *journal.Journal
	// Aud is the shard's tamper-evident access-audit log, appended to by
	// the shard's memory controller as tenant page traffic flows. Its
	// device window may only be read on the worker; use DoSide.
	Aud *audit.Log

	ingress chan task
	// side carries observability work (audit export/verify) that must run
	// on the worker but outside both admission disciplines, so a scrape
	// never consumes a deterministic-schedule slot or a fairness turn.
	side chan sideTask

	mu        sync.Mutex
	draining  bool
	sems      map[uint32]chan struct{}
	perTenant int

	inflight sync.WaitGroup
	depth    atomic.Int64
	gDepth   *telemetry.Gauge
	cServed  *telemetry.Counter

	// Concurrent read fast-path plane (fastread.go). rmu excludes snapshot
	// readers from worker mutations; ver is the seqlock epoch the readers
	// validate (odd while a mutation batch is in progress); deltas is the
	// lock-free stack of deferred read side effects the worker folds into
	// the controller at its next mutation; the pools recycle per-goroutine
	// reader contexts and delta buffers.
	rmu       sync.RWMutex
	ver       atomic.Uint64
	deltas    atomic.Pointer[deltaNode]
	readPool  sync.Pool
	deltaPool sync.Pool

	// Request-trace plane (worker-only, deterministic): scope buffers one
	// request's spans until the tail sampler's keep/drop decision; the
	// per-tenant histogram caches avoid registry map lookups per request.
	scope   *telemetry.TraceScope
	sampler *telemetry.TailSampler
	hQWait  map[uint32]*telemetry.Histogram
	hSvc    map[uint32]*telemetry.Histogram

	stop    chan struct{}
	stopped chan struct{}
	started atomic.Bool

	// Cluster plane. chipSeq is the controller key-derivation sequence the
	// shard booted with (0: per-process auto). logOn enables the admission
	// log; recs and the checkpoint/schedule cursors below are worker-only
	// (readers go through DoSide or a Hold). detNext is the next
	// deterministic schedule sequence — a field rather than a loop local so
	// a shard rehydrated by log replay continues the schedule exactly where
	// the source stopped. retired, once set, is answered to every task
	// instead of executing it: the shard has migrated away.
	chipSeq   uint64
	logOn     bool
	recs      []fsproto.LogRecord
	ckptEvery int
	sinceCkpt int
	detNext   uint64
	retired   error
	// replaySessions stages sessions reconstructed from login records
	// during replay; AdoptShard folds them into the service session table.
	replaySessions map[string]*Session
}

// traceKeepEvery is the tail sampler's probabilistic keep rate for traces
// that are neither errors nor slow-decile: 1 in traceKeepEvery.
const traceKeepEvery = 8

// NewShard boots a system for shard id and starts its worker.
// deterministic selects the admission discipline; perTenant bounds the
// fair-mode queues (<= 0 uses DefaultPerTenantQueue). serverReg is the
// host-side (non-deterministic) registry receiving the shard's queue-depth
// gauge; nil is allowed.
func NewShard(id int, cfg config.Config, mode memctrl.Mode, access kernel.AccessMode, deterministic bool, perTenant int, serverReg *telemetry.Registry) *Shard {
	return NewShardWith(id, cfg, mode, access, deterministic, perTenant, serverReg, ShardOptions{})
}

// ShardOptions carries the cluster-plane knobs of a shard.
type ShardOptions struct {
	// ChipSeq is the controller key-derivation sequence (0: auto). Cluster
	// shards use a deterministic per-global-index sequence so migration
	// targets and replicas derive the source's exact processor keys.
	ChipSeq uint64
	// Log enables the admission log (required for migration/replication).
	Log bool
	// CheckpointEvery folds a Merkle-root checkpoint into the log every N
	// operation records (0: checkpoints only at migration freeze).
	CheckpointEvery int
	// Detached boots the shard without starting its worker: the caller
	// replays an admission log into it first, then calls Start.
	Detached bool
}

// NewShardWith is NewShard plus cluster-plane options.
func NewShardWith(id int, cfg config.Config, mode memctrl.Mode, access kernel.AccessMode, deterministic bool, perTenant int, serverReg *telemetry.Registry, so ShardOptions) *Shard {
	if perTenant <= 0 {
		perTenant = DefaultPerTenantQueue
	}
	sys := kernel.BootSeq(cfg, mode, access, so.ChipSeq)
	reg := telemetry.New()
	// Attach the trace scope before Instrument: components cache the scope
	// pointer at Instrument time and it must already be in place.
	scope := telemetry.NewTraceScope()
	reg.AttachTraceScope(scope)
	sys.Instrument(reg)
	jrn := journal.New(journal.DefaultCapacity)
	sys.AttachJournal(jrn)
	aud := sys.EnableAudit(0)
	sh := &Shard{
		id:        id,
		det:       deterministic,
		Sys:       sys,
		Reg:       reg,
		Jrn:       jrn,
		Aud:       aud,
		ingress:   make(chan task, 4*perTenant),
		side:      make(chan sideTask, 8),
		sems:      make(map[uint32]chan struct{}),
		perTenant: perTenant,
		gDepth:    serverReg.Gauge(fmt.Sprintf("server.shard%d.queue_depth", id)),
		cServed:   serverReg.Counter(fmt.Sprintf("server.shard%d.served_total", id)),
		scope:     scope,
		sampler: telemetry.NewTailSampler(traceKeepEvery,
			reg.Counter("trace.kept_total"), reg.Counter("trace.dropped_total")),
		hQWait:         make(map[uint32]*telemetry.Histogram),
		hSvc:           make(map[uint32]*telemetry.Histogram),
		stop:           make(chan struct{}),
		stopped:        make(chan struct{}),
		chipSeq:        so.ChipSeq,
		logOn:          so.Log,
		ckptEvery:      so.CheckpointEvery,
		replaySessions: make(map[string]*Session),
	}
	sh.readPool.New = func() any { return sh.Sys.NewSnapshotReader() }
	sh.deltaPool.New = func() any { return new(memctrl.ReadDelta) }
	if !so.Detached {
		sh.Start()
	}
	return sh
}

// Start launches the worker of a detached shard. Idempotent.
func (sh *Shard) Start() {
	if sh.started.CompareAndSwap(false, true) {
		go sh.run()
	}
}

// ID returns the shard index.
func (sh *Shard) ID() int { return sh.id }

// Snapshot captures the shard's deterministic telemetry state. For
// reproducible bytes, call it when the shard is idle (after a drained
// schedule).
func (sh *Shard) Snapshot() *telemetry.Snapshot { return sh.Reg.Snapshot() }

func (sh *Shard) sem(tenant uint32) chan struct{} {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sems[tenant]
	if !ok {
		s = make(chan struct{}, sh.perTenant)
		sh.sems[tenant] = s
	}
	return s
}

// Do submits fn for execution on the shard's worker and waits for its
// result. tenant selects the fairness queue; seq is the deterministic-mode
// schedule position (ignored in fair mode). If ctx expires while queued
// behind backpressure, Do returns ErrBusy; after admission the task always
// runs to completion (a simulated syscall cannot be cancelled midway), but
// Do stops waiting when ctx expires.
func (sh *Shard) Do(ctx context.Context, tenant uint32, seq uint64, fn func() (any, error)) (any, error) {
	return sh.DoTraced(ctx, tenant, seq, "task", fsproto.TraceContext{}, fn)
}

// DoTraced is Do carrying a request-trace context and a root-span name:
// while the task runs, spans recorded anywhere below the shard's system
// (kernel, controller, PCM) are linked into the request's trace, and the
// tail sampler decides at completion whether the trace is retained.
func (sh *Shard) DoTraced(ctx context.Context, tenant uint32, seq uint64, name string, tc fsproto.TraceContext, fn func() (any, error)) (any, error) {
	return sh.submit(ctx, tenant, seq, name, tc, nil, fn)
}

// submit is DoTraced plus the admission-log record the worker appends
// after execution (nil: unlogged).
func (sh *Shard) submit(ctx context.Context, tenant uint32, seq uint64, name string, tc fsproto.TraceContext, rec *fsproto.LogRecord, fn func() (any, error)) (any, error) {
	var release func()
	if !sh.det {
		// Fair mode: per-tenant admission slots. Deterministic mode skips
		// this — a slot limit could park the next-in-schedule request
		// behind later ones and deadlock the reorder buffer; the schedule
		// itself bounds in-flight work there (synchronous clients).
		sem := sh.sem(tenant)
		select {
		case sem <- struct{}{}:
			release = func() { <-sem }
		case <-ctx.Done():
			return nil, &BusyError{Tenant: tenant, Depth: sh.depth.Load()}
		}
	}
	sh.mu.Lock()
	if sh.draining {
		sh.mu.Unlock()
		if release != nil {
			release()
		}
		return nil, ErrDraining
	}
	sh.inflight.Add(1)
	sh.mu.Unlock()
	sh.gDepth.Set(uint64(sh.depth.Add(1)))

	t := task{seq: seq, tenant: tenant, fn: fn, resp: make(chan taskResult, 1), release: release, name: name, trace: tc, rec: rec}
	select {
	case sh.ingress <- t:
	case <-ctx.Done():
		sh.taskDone(t)
		return nil, &BusyError{Tenant: tenant, Depth: sh.depth.Load()}
	}
	select {
	case r := <-t.resp:
		return r.v, r.err
	case <-ctx.Done():
		// The task still runs at its turn; the worker releases its
		// resources. The caller just stops waiting.
		return nil, ctx.Err()
	}
}

// DoSide runs fn on the shard's worker goroutine between admitted tasks
// and waits for it. It serializes observability reads (the audit log's
// device window, recovery checks) with simulated work without consuming a
// deterministic-schedule slot or a fairness turn. Under sustained load the
// worker services side tasks between servings; ctx bounds the wait.
func (sh *Shard) DoSide(ctx context.Context, fn func()) error {
	t := sideTask{fn: fn, done: make(chan struct{})}
	select {
	case sh.side <- t:
	case <-sh.stopped:
		return ErrDraining
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-t.done:
		return nil
	case <-sh.stopped:
		return ErrDraining
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (sh *Shard) execSide(t sideTask) {
	t.fn()
	close(t.done)
}

// taskDone returns the resources of an admitted task.
func (sh *Shard) taskDone(t task) {
	if t.release != nil {
		t.release()
	}
	d := sh.depth.Add(-1)
	if d < 0 {
		d = 0
	}
	sh.gDepth.Set(uint64(d))
	sh.inflight.Done()
}

func (sh *Shard) exec(t task) {
	if sh.retired != nil {
		// The shard migrated away after this task was admitted: answer with
		// the routing error so the client retries at the new owner. The task
		// never executed, so the retry cannot duplicate work.
		t.resp <- taskResult{err: sh.retired}
		sh.taskDone(t)
		return
	}
	v, err := sh.serve(t)
	t.resp <- taskResult{v: v, err: err}
	sh.cServed.Inc()
	sh.taskDone(t)
}

// tenantHist returns (caching) a per-tenant histogram handle. Worker-only.
func tenantHist(cache map[uint32]*telemetry.Histogram, reg *telemetry.Registry, tenant uint32, metric string) *telemetry.Histogram {
	h, ok := cache[tenant]
	if !ok {
		h = reg.Histogram(fmt.Sprintf("server.tenant.g%d.%s", tenant, metric))
		cache[tenant] = h
	}
	return h
}

// serve runs one admitted task on the worker, separating queue wait from
// service time and recording the request's trace. Everything observed here
// derives from the shard's simulated clock, so the per-shard registry stays
// a pure function of the schedule.
func (sh *Shard) serve(t task) (any, error) {
	start := uint64(sh.Sys.M.MaxCoreTime())
	rootStart := start
	var wait uint64
	if t.enq != 0 && t.enq < start {
		wait = start - t.enq
		rootStart = t.enq
	}
	tenantHist(sh.hQWait, sh.Reg, t.tenant, "queue_wait_cycles").Observe(wait)
	traced := t.trace.Sampled && t.trace.TraceID != 0
	if traced {
		sh.scope.Begin(t.trace.TraceID, t.trace.Parent)
		sh.scope.Enter()
		// The queue-wait phase precedes service; emit it as the root's
		// first child so the waterfall separates waiting from doing.
		sh.Reg.Span("request", "queue_wait", rootStart, start, 0)
	}
	v, err := t.fn()
	end := uint64(sh.Sys.M.MaxCoreTime())
	tenantHist(sh.hSvc, sh.Reg, t.tenant, "service_cycles").Observe(end - start)
	if traced {
		sh.scope.Exit("request", t.name, rootStart, end, 0)
		sh.scope.End(sh.sampler.Keep(t.trace.TraceID, end-rootStart, err != nil))
	}
	if t.rec != nil && sh.logOn {
		sh.appendRecord(*t.rec)
		sh.maybeCheckpoint()
	}
	return v, err
}

func (sh *Shard) run() {
	defer close(sh.stopped)
	if sh.det {
		sh.runDeterministic()
		return
	}
	sh.runFair()
}

// runDeterministic admits strictly in per-shard sequence order: arrivals
// park in a reorder buffer until their turn. The buffer is unbounded, but
// synchronous clients keep it at most one entry per client.
func (sh *Shard) runDeterministic() {
	pending := make(map[uint64]task)
	for {
		if sh.retired != nil {
			// A retired shard answers everything immediately: sequence gaps
			// no longer matter because nothing executes.
			for s, t := range pending {
				delete(pending, s)
				sh.exec(t)
			}
		}
		if t, ok := pending[sh.detNext]; ok {
			delete(pending, sh.detNext)
			sh.detNext++
			sh.exec(t)
			continue
		}
		select {
		case t := <-sh.ingress:
			pending[t.seq] = t
		case st := <-sh.side:
			sh.execSide(st)
		case <-sh.stop:
			return
		}
	}
}

// runFair serves tasks per tenant in round-robin over the tenants with
// pending work, absorbing the ingress channel between servings so a burst
// from one tenant queues behind its own earlier requests, not everyone
// else's.
//
// Mutations run under the shard's writer lock with the seqlock version odd,
// so concurrent snapshot readers either see a fully quiescent machine or
// fall back to admission here. Admitted tasks are group-committed: up to
// groupCommitBatch servings share one lock acquisition and one version
// bump, amortizing writer-side synchronization under load while keeping
// reader stalls bounded to a batch.
func (sh *Shard) runFair() {
	queues := make(map[uint32][]task)
	var order []uint32 // tenants in first-seen order
	pending := 0
	rr := 0
	absorb := func(t task) {
		// Stamp the queue-wait start on the worker, from the shard clock:
		// wait is measured from absorption to service, in simulated cycles.
		t.enq = uint64(sh.Sys.M.MaxCoreTime())
		if _, ok := queues[t.tenant]; !ok {
			order = append(order, t.tenant)
		}
		queues[t.tenant] = append(queues[t.tenant], t)
		pending++
	}
	for {
		// Serve any parked observability work, then absorb everything
		// already waiting, without blocking.
		for {
			select {
			case st := <-sh.side:
				sh.enterMut()
				sh.execSide(st)
				sh.exitMut()
				continue
			case t := <-sh.ingress:
				absorb(t)
				continue
			default:
			}
			break
		}
		if pending == 0 {
			select {
			case t := <-sh.ingress:
				absorb(t)
			case st := <-sh.side:
				sh.enterMut()
				sh.execSide(st)
				sh.exitMut()
			case <-sh.stop:
				return
			}
			continue
		}
		sh.enterMut()
		for served := 0; served < groupCommitBatch && pending > 0; served++ {
			for i := 0; i < len(order); i++ {
				ten := order[(rr+i)%len(order)]
				q := queues[ten]
				if len(q) == 0 {
					continue
				}
				queues[ten] = q[1:]
				pending--
				rr = (rr + i + 1) % len(order)
				sh.exec(q[0])
				break
			}
		}
		sh.exitMut()
	}
}

// Close drains the shard: admission stops (new Do calls get ErrDraining),
// every already-admitted task runs to completion and is answered, then the
// worker exits. Safe to call more than once. In deterministic mode the
// caller must have completed the schedule — a missing sequence number
// would leave later tasks unserved, and Close waits for them.
func (sh *Shard) Close() {
	sh.mu.Lock()
	already := sh.draining
	sh.draining = true
	sh.mu.Unlock()
	if already {
		<-sh.stopped
		return
	}
	sh.inflight.Wait()
	close(sh.stop)
	<-sh.stopped
}
