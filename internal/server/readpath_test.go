package server

import (
	"bytes"
	"context"
	"testing"

	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
)

// testReadService boots a one-shard service with an encrypted 4-page file
// already written, ready for read-path measurements.
func testReadService(tb testing.TB) (*Service, *Session) {
	tb.Helper()
	svc := New(Options{
		Shards: 1,
		MCMode: memctrl.Mode{MemEncryption: true, FileEncryption: true},
		Access: kernel.ModeDAX,
	})
	tb.Cleanup(svc.Close)
	ctx := context.Background()
	sess, err := svc.Login(ctx, "acme", 1, "pw-acme", 0)
	if err != nil {
		tb.Fatal(err)
	}
	if err := svc.Create(ctx, sess, fsproto.CreateRequest{
		Name: "hot.dat", Perm: 0600, Size: 4 * 4096, Encrypted: true,
	}); err != nil {
		tb.Fatal(err)
	}
	if err := svc.Write(ctx, sess, fsproto.WriteRequest{
		Name: "hot.dat", Data: bytes.Repeat([]byte{0x5A}, 4*4096),
	}); err != nil {
		tb.Fatal(err)
	}
	return svc, sess
}

// TestServiceReadPooled checks the pooled read path end to end: correct
// bytes, and a released buffer serving the next request without bleeding
// stale lengths or contents across requests.
func TestServiceReadPooled(t *testing.T) {
	svc, sess := testReadService(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "hot.dat", Offset: 4096, Length: 4096})
		if err != nil {
			t.Fatal(err)
		}
		if len(pl.Data) != 4096 {
			t.Fatalf("read %d: got %d bytes, want 4096", i, len(pl.Data))
		}
		for j, b := range pl.Data {
			if b != 0x5A {
				t.Fatalf("read %d: byte %d is %#x, want 0x5A", i, j, b)
			}
		}
		pl.Release()
	}
	// Short read after a full-page one: the pooled buffer must be re-sliced
	// to the requested length, not the previous request's.
	pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "hot.dat", Offset: 0, Length: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Data) != 64 {
		t.Fatalf("short read returned %d bytes, want 64", len(pl.Data))
	}
	pl.Release()
}

// TestServerReadPathZeroAlloc pins the worker-side read datapath at zero
// heap allocations per request once session state is warm: pooled payload
// buffer, cached mapping and file key, and the controller's batched page
// path for the page-sized copy.
func TestServerReadPathZeroAlloc(t *testing.T) {
	svc, sess := testReadService(t)
	sh := svc.shards[0]
	name := fullName("acme", "hot.dat")
	// Warm-up: first touch faults pages, creates the mapping, and caches
	// the derived file key.
	warm := newPayload(4096)
	if err := sh.readInto(sess, name, sess.pass, 0, warm.Data); err != nil {
		t.Fatal(err)
	}
	warm.Release()
	allocs := testing.AllocsPerRun(200, func() {
		pl := newPayload(4096)
		if err := sh.readInto(sess, name, sess.pass, 0, pl.Data); err != nil {
			t.Fatal(err)
		}
		pl.Release()
	})
	if allocs != 0 {
		t.Fatalf("server read path: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkServerReadPath measures the worker-side cost of one page-sized
// read request, pooled-buffer lifecycle included. The shard worker is
// idle, so calling in from the benchmark goroutine is race-free.
func BenchmarkServerReadPath(b *testing.B) {
	svc, sess := testReadService(b)
	sh := svc.shards[0]
	name := fullName("acme", "hot.dat")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := newPayload(4096)
		if err := sh.readInto(sess, name, sess.pass, uint64(i%4)*4096, pl.Data); err != nil {
			b.Fatal(err)
		}
		pl.Release()
	}
}
