package server

// Live shard migration, source and target halves. The source quiesces the
// shard through its own worker (Hold), folds a flush and a checkpoint
// into the admission log, and exports the log, the sessions homed on the
// shard, and the controller's serialized image. The target rehydrates by
// replaying the log into a fresh shard booted with the same chip
// sequence, then gates cutover on two proofs: the replayed Merkle root
// must equal the shipped image's, and the image itself must survive the
// full crash/recovery cycle (memctrl.VerifyImage — Osiris recovery plus
// VerifyRecovery) on a scratch controller. Only then is the shard adopted
// and started; the source retires at the new epoch, answering stragglers
// with the routing error so clients re-route without dropping a request.

import (
	"context"
	"fmt"
	"sort"

	"fsencr/internal/config"
	"fsencr/internal/fsproto"
	"fsencr/internal/memctrl"
	"fsencr/internal/obsplane/journal"
)

// ShardState is a frozen shard's exported, wire-serializable state.
type ShardState struct {
	// Shard is the global shard index; ChipSeq the controller sequence the
	// target must boot with.
	Shard   int
	ChipSeq uint64
	// Det/DetNext carry the admission discipline and the next deterministic
	// schedule position.
	Det     bool
	DetNext uint64
	// Records is the full admission log; replaying it is how the target
	// reconstructs state.
	Records []fsproto.LogRecord
	// Sessions lists the sessions homed on the shard (belt and braces: the
	// log's login records rebuild them; these verify nothing went missing).
	Sessions []fsproto.SessionRecord
	// Image is the verification artifact: the source controller's full
	// module snapshot, including the Merkle root replay must reproduce.
	Image *memctrl.Image
}

// Migration is a held, frozen shard on the source node.
type Migration struct {
	svc *Service
	sh  *Shard
	h   *Hold
}

// Shard returns the global index of the migrating shard.
func (m *Migration) Shard() int { return m.sh.id }

// FreezeShard quiesces shard idx for migration: the worker parks, dirty
// cache lines flush, the OTT seals, and a checkpoint lands in the
// admission log — so the frozen state is exactly the state a replayer
// reproduces. Requests arriving during the freeze queue behind the hold.
func (svc *Service) FreezeShard(ctx context.Context, idx int) (*Migration, error) {
	svc.mu.RLock()
	sh := svc.byIdx[idx]
	svc.mu.RUnlock()
	if sh == nil {
		return nil, &WrongShardError{Shard: idx, Epoch: svc.epoch.Load()}
	}
	if !sh.logOn {
		return nil, fmt.Errorf("server: shard %d has no admission log; migration needs AdmissionLog", idx)
	}
	h, err := sh.Hold(ctx)
	if err != nil {
		return nil, err
	}
	h.Run(func() {
		sh.appendRecord(fsproto.LogRecord{Kind: fsproto.RecFlush})
		sh.execFlush()
		sh.checkpoint()
	})
	return &Migration{svc: svc, sh: sh, h: h}, nil
}

// Export snapshots the frozen shard into its wire state.
func (m *Migration) Export() (*ShardState, error) {
	var st *ShardState
	var err error
	m.h.Run(func() {
		var img *memctrl.Image
		img, err = m.sh.Sys.M.MC.ExportImage()
		if err != nil {
			return
		}
		recs := make([]fsproto.LogRecord, len(m.sh.recs))
		copy(recs, m.sh.recs)
		st = &ShardState{
			Shard:    m.sh.id,
			ChipSeq:  m.sh.chipSeq,
			Det:      m.sh.det,
			DetNext:  m.sh.detNext,
			Records:  recs,
			Sessions: m.svc.sessionRecordsFor(m.sh.id),
			Image:    img,
		}
	})
	return st, err
}

// Resume aborts the migration: the hold releases and the worker resumes
// serving queued and future requests as if nothing happened.
func (m *Migration) Resume() { m.h.Resume() }

// Commit finishes the migration at the new routing epoch: the source
// shard retires (queued and future tasks answer with the routing error,
// so clients re-route and retry — none of them ever executed here, so the
// retry cannot duplicate work), its sessions are tombstoned, and the
// shard leaves the owned set.
func (m *Migration) Commit(epoch uint64) {
	m.h.Retire(&WrongShardError{Shard: m.sh.id, Epoch: epoch})
	m.svc.RemoveShard(m.sh.id)
}

// DropShard discards an adopted shard without tombstoning its sessions
// (migration rollback on the target: the source resumes serving, so the
// tokens stay valid there and a tombstone here would be a lie). The
// shard's worker drains and exits. No-op if idx is not owned.
func (svc *Service) DropShard(idx int) {
	svc.mu.Lock()
	sh := svc.byIdx[idx]
	if sh == nil {
		svc.mu.Unlock()
		return
	}
	delete(svc.byIdx, idx)
	for i, s := range svc.shards {
		if s == sh {
			svc.shards = append(svc.shards[:i], svc.shards[i+1:]...)
			break
		}
	}
	for tok, s := range svc.sessions {
		if fsproto.ShardIndex(s.gid, svc.nShards) == idx {
			delete(svc.sessions, tok)
		}
	}
	svc.mu.Unlock()
	sh.Close()
}

// ChipSeqFor derives the controller chip sequence global shard idx boots
// with under this service's configured base — what a replica of that
// shard must boot with to reproduce its ciphertext.
func (svc *Service) ChipSeqFor(idx int) uint64 { return chipSeqFor(svc.opts, idx) }

// NewReplicaShard boots a detached, log-enabled shard for replaying
// another node's admission log. It is not adopted (it serves nothing) and
// has no running worker: exactly one goroutine — the replica pull loop —
// may touch it, through ReplayRecords, until PromoteShard.
func (svc *Service) NewReplicaShard(idx int, chipSeq uint64, det bool) *Shard {
	cfg := config.Default()
	if svc.opts.Cfg != nil {
		cfg = *svc.opts.Cfg
	}
	return NewShardWith(idx, cfg, svc.opts.MCMode, svc.opts.Access, det, svc.opts.PerTenantQueue, svc.reg,
		ShardOptions{ChipSeq: chipSeq, Log: true, CheckpointEvery: svc.opts.CheckpointEvery, Detached: true})
}

// PromoteShard adopts a replica shard as the serving owner (failover
// after the primary died) and starts its worker.
func (svc *Service) PromoteShard(sh *Shard) error {
	if err := svc.AdoptShard(sh); err != nil {
		return err
	}
	sh.Jrn.Emit(journal.Event{
		Cycle:  uint64(sh.Sys.M.MaxCoreTime()),
		Type:   journal.ShardMigrated,
		Detail: fmt.Sprintf("shard %d promoted from replica at log position %d", sh.id, len(sh.recs)),
	})
	sh.Start()
	return nil
}

// sessionRecordsFor lists the sessions homed on global shard idx, ordered
// by token.
func (svc *Service) sessionRecordsFor(idx int) []fsproto.SessionRecord {
	svc.mu.RLock()
	defer svc.mu.RUnlock()
	var out []fsproto.SessionRecord
	for tok, s := range svc.sessions {
		if fsproto.ShardIndex(s.gid, svc.nShards) == idx {
			out = append(out, fsproto.SessionRecord{Token: tok, Tenant: s.tenant, GID: s.gid, EUID: s.uid, Pass: s.pass})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Token < out[j].Token })
	return out
}

// InstallShard rehydrates a migrated shard from its exported state: boot
// a detached shard with the source's chip sequence, replay the admission
// log, prove the replayed Merkle root equals the shipped image's, prove
// the image passes the Osiris recovery gate on a scratch controller, then
// adopt and start the shard. On any failure nothing is adopted — the
// caller rolls the migration back on the source.
func (svc *Service) InstallShard(st *ShardState) error {
	if st == nil || st.Image == nil {
		return fmt.Errorf("server: shard state carries no image")
	}
	cfg := config.Default()
	if svc.opts.Cfg != nil {
		cfg = *svc.opts.Cfg
	}
	sh := NewShardWith(st.Shard, cfg, svc.opts.MCMode, svc.opts.Access, st.Det, svc.opts.PerTenantQueue, svc.reg,
		ShardOptions{ChipSeq: st.ChipSeq, Log: true, CheckpointEvery: svc.opts.CheckpointEvery, Detached: true})
	if err := svc.ReplayRecords(sh, st.Records); err != nil {
		return err
	}
	if root := sh.Sys.M.MC.MerkleRoot(); root != st.Image.Root {
		return fmt.Errorf("%w: replayed root differs from shipped image root", ErrDiverged)
	}
	// The root only vouches for the metadata region; export the replayed
	// module (side-effect-free on a flushed shard) and require the full
	// image — frames, counters, ECC, OTT — to be byte-identical.
	replayed, err := sh.Sys.M.MC.ExportImage()
	if err != nil {
		return err
	}
	if !replayed.Equal(st.Image) {
		return fmt.Errorf("%w: replayed module state differs from shipped image", ErrDiverged)
	}
	if err := memctrl.VerifyImage(cfg, svc.opts.MCMode, st.Image); err != nil {
		return fmt.Errorf("server: migration recovery gate: %w", err)
	}
	// The log's login records rebuilt every session homed here; the
	// explicit session records catch any that somehow never hit the log.
	for _, sr := range st.Sessions {
		if _, ok := sh.replaySessions[sr.Token]; !ok {
			sh.replaySessions[sr.Token] = &Session{
				token: sr.Token, tenant: sr.Tenant, gid: sr.GID, uid: sr.EUID, pass: sr.Pass,
				st: make([]*sessState, svc.nShards),
			}
		}
	}
	if st.DetNext > sh.detNext {
		sh.detNext = st.DetNext
	}
	if err := svc.AdoptShard(sh); err != nil {
		return err
	}
	sh.Jrn.Emit(journal.Event{
		Cycle:  uint64(sh.Sys.M.MaxCoreTime()),
		Type:   journal.ShardMigrated,
		Detail: fmt.Sprintf("shard %d rehydrated from %d records", st.Shard, len(st.Records)),
	})
	sh.Start()
	return nil
}
