package server_test

import (
	"net/http/httptest"
	"testing"

	"fsencr/internal/core"
	"fsencr/internal/fsclient"
	"fsencr/internal/fsproto"
	"fsencr/internal/server"
)

// TestSLOSmoke is the CI gate for the SLO plane: loadgen traffic over real
// HTTP must leave every tenant with live latency quantiles, burn-rate
// gauges, queue-wait accounting and a fully-counted trace sampler on the
// metrics surface.
func TestSLOSmoke(t *testing.T) {
	svc := server.New(server.Options{
		Shards: 2,
		MCMode: core.SchemeFsEncr.MCMode(),
		Access: core.SchemeFsEncr.AccessMode(),
	})
	defer svc.Close()
	hs := httptest.NewServer(svc.Mux())
	defer hs.Close()

	rep, err := fsclient.RunLoadgen(hs.URL, fsclient.LoadgenOptions{
		Clients: 8,
		Tenants: 2,
		Ops:     16,
		Mix:     "3:1",
		Seed:    11,
		Shards:  2,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d unexpected errors (first: %s)", rep.Errors, rep.FirstError)
	}

	snap := svc.MetricsSnapshot()
	for _, tenant := range []string{"tenant00", "tenant01"} {
		prefix := "server.tenant." + tenant + "."
		h := snap.Histograms[prefix+"request_ns"]
		if h == nil || h.Count == 0 {
			t.Fatalf("%s: no request latency recorded", tenant)
		}
		p50, p99 := snap.Gauges[prefix+"p50_ns"], snap.Gauges[prefix+"p99_ns"]
		p999 := snap.Gauges[prefix+"p999_ns"]
		if p50 == 0 || p99 < p50 || p999 < p99 {
			t.Fatalf("%s: degenerate quantiles p50=%d p99=%d p999=%d", tenant, p50, p99, p999)
		}
		if _, ok := snap.Gauges[prefix+"slo_burn_milli"]; !ok {
			t.Fatalf("%s: burn-rate gauge missing", tenant)
		}
		good := snap.Counters[prefix+"slo_good_total"]
		bad := snap.Counters[prefix+"slo_bad_total"]
		if good+bad == 0 {
			t.Fatalf("%s: no requests scored against the SLO", tenant)
		}
		// Healthy local traffic: nothing 5xx'd, so the only possible burn is
		// over-latency, and bad must stay a small minority.
		if bad > good {
			t.Fatalf("%s: bad %d > good %d on a healthy run", tenant, bad, good)
		}

		// Satellite 2: per-tenant queue-wait accounting from fair admission,
		// keyed by the tenant's group on its shard's deterministic registry.
		gid := fsproto.TenantGID(tenant)
		qw := snap.Histograms[sprintfTenantHist(gid, "queue_wait_cycles")]
		if qw == nil || qw.Count == 0 {
			t.Fatalf("%s (g%d): no queue-wait observations", tenant, gid)
		}
		svcH := snap.Histograms[sprintfTenantHist(gid, "service_cycles")]
		if svcH == nil || svcH.Count == 0 || svcH.Sum == 0 {
			t.Fatalf("%s (g%d): no service-time observations", tenant, gid)
		}
	}

	// The tail sampler accounted for every sampled request it saw.
	kept := snap.Counters["trace.kept_total"]
	dropped := snap.Counters["trace.dropped_total"]
	if kept == 0 {
		t.Fatal("sampler kept no traces")
	}
	if kept+dropped == 0 {
		t.Fatal("sampler made no decisions")
	}
	if snap.Gauges["server.tenant.tenant00.slo_burn_milli"] != 0 &&
		snap.Counters["server.request_errors_total"] == 0 {
		// Burn without any error implies over-latency requests; that is
		// legal on a loaded CI host, so this is informational only.
		t.Logf("tenant00 burning budget on latency alone: %dm",
			snap.Gauges["server.tenant.tenant00.slo_burn_milli"])
	}
}

// sprintfTenantHist names the per-tenant-group shard histograms.
func sprintfTenantHist(gid uint32, metric string) string {
	return "server.tenant.g" + uitoa(gid) + "." + metric
}

func uitoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
