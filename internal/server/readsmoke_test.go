package server_test

import (
	"testing"

	"net/http/httptest"

	"fsencr/internal/core"
	"fsencr/internal/fsclient"
	"fsencr/internal/server"
)

const (
	readSmokeShards  = 2
	readSmokeClients = 8
	readSmokeTenants = 2
	readSmokeOps     = 48
)

// TestReadSmoke is the CI gate for the concurrent read fast-path: a live
// fair-mode fsencrd under a read-heavy mixed load (reads, writes, stats,
// cross-tenant probes) over real HTTP. Acceptance: every scheduled op
// accounted for (zero lost), zero leaks, zero unexpected errors, the fast
// path actually serving traffic, the per-tenant latency split populated,
// and the audit hash chain verifying after all deferred read deltas drain.
// `make read-smoke-race` runs the same test under the race detector.
func TestReadSmoke(t *testing.T) {
	svc := server.New(server.Options{
		Shards: readSmokeShards,
		MCMode: core.SchemeFsEncr.MCMode(),
		Access: core.SchemeFsEncr.AccessMode(),
	})
	defer svc.Close()
	hs := httptest.NewServer(svc.Mux())
	defer hs.Close()

	rep, err := fsclient.RunLoadgen(hs.URL, fsclient.LoadgenOptions{
		Clients:   readSmokeClients,
		Tenants:   readSmokeTenants,
		Ops:       readSmokeOps,
		Mix:       "7:1",
		Seed:      11,
		StatEvery: 6,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	// Zero lost ops: every client's schedule is login + create + initial
	// write + Ops data ops + logout, and all of them were attempted.
	wantOps := uint64(readSmokeClients * (readSmokeOps + 4))
	if rep.Ops != wantOps {
		t.Fatalf("ops attempted %d, want %d: %s", rep.Ops, wantOps, rep)
	}
	if rep.Leaks != 0 {
		t.Fatalf("%d leaks: %s", rep.Leaks, rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d unexpected errors (first: %s)", rep.Errors, rep.FirstError)
	}
	if rep.Reads == 0 || rep.Writes == 0 || rep.Stats == 0 {
		t.Fatalf("degenerate mix (reads %d writes %d stats %d): %s", rep.Reads, rep.Writes, rep.Stats, rep)
	}

	// The split report must break latency down by tenant and by op kind.
	if len(rep.TenantLatency) != readSmokeTenants {
		t.Fatalf("tenant latency split has %d tenants, want %d", len(rep.TenantLatency), readSmokeTenants)
	}
	for tenant, byKind := range rep.TenantLatency {
		if byKind["read"].Ops == 0 || byKind["stat"].Ops == 0 {
			t.Fatalf("tenant %s latency split missing reads/stats: %+v", tenant, byKind)
		}
	}

	// The fast path must have carried real traffic on a fair-mode server.
	snap := svc.MetricsSnapshot()
	if snap.Counters["server.fast_reads_total"] == 0 {
		t.Fatal("fast path served zero reads under a read-heavy load")
	}

	// Deferred audit records folded in by the drain must leave the
	// per-shard hash chains intact.
	if err := svc.VerifyAudit(); err != nil {
		t.Fatalf("audit chain: %v", err)
	}
}
