package server

// Admission-log replay: a shard's simulated state is a pure function of
// its sequence-ordered admission log, so replaying the log into a fresh
// shard booted with the same chip sequence reconstructs the source shard
// byte for byte — the state-transfer primitive behind live migration and
// replication. runRecord mirrors serve() exactly (same clock samples, the
// same histogram observations, the same trace-scope lifecycle), so the
// per-shard deterministic registry is reproduced too, and checkpoint
// records carry the source's Merkle root for divergence detection at
// every cadence boundary.

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"fsencr/internal/fsproto"
)

// appendRecord appends one record to the shard's admission log,
// position-stamped. Worker-goroutine (or pre-Start replayer) only.
func (sh *Shard) appendRecord(rec fsproto.LogRecord) {
	rec.Pos = uint64(len(sh.recs))
	sh.recs = append(sh.recs, rec)
}

// maybeCheckpoint folds a Merkle-root checkpoint into the log every
// ckptEvery operation records.
func (sh *Shard) maybeCheckpoint() {
	if sh.ckptEvery <= 0 {
		return
	}
	sh.sinceCkpt++
	if sh.sinceCkpt < sh.ckptEvery {
		return
	}
	sh.checkpoint()
}

// checkpoint appends the current Merkle root as a log record. Root()
// flushes dirty tree leaves, perturbing merkle.flushes — which is fine
// precisely because the checkpoint is itself a log record: every replayer
// executes the identical flush at the identical log position.
func (sh *Shard) checkpoint() {
	sh.sinceCkpt = 0
	root := sh.Sys.M.MC.MerkleRoot()
	sh.appendRecord(fsproto.LogRecord{Kind: fsproto.RecCheckpoint, Root: hex.EncodeToString(root[:])})
}

// execFlush is the flush log record's body: write back every dirty cache
// line (ascending address order — deterministic) and seal the OTT into
// the encrypted region. Run identically at migration freeze and replay.
func (sh *Shard) execFlush() {
	sh.Sys.M.WritebackAll()
	sh.Sys.M.MC.FlushOTT()
}

// replaySession resolves the record's session against the shard's staged
// replay sessions, reconstructing a shadow session from the record's
// credentials when the token never logged in through this shard's log
// (cross-tenant traffic). AdoptShard later folds the staged sessions into
// the service session table.
func (sh *Shard) replaySession(rec *fsproto.LogRecord, nShards int) *Session {
	s, ok := sh.replaySessions[rec.Token]
	if !ok {
		s = &Session{
			token:  rec.Token,
			tenant: rec.Tenant,
			gid:    fsproto.TenantGID(rec.Tenant),
			uid:    rec.EUID,
			pass:   rec.Pass,
			st:     make([]*sessState, nShards),
		}
		sh.replaySessions[rec.Token] = s
	}
	return s
}

// runRecord re-executes one op record exactly as serve() ran it live.
func (sh *Shard) runRecord(rec *fsproto.LogRecord, fn func() (any, error)) {
	start := uint64(sh.Sys.M.MaxCoreTime())
	rootStart := start
	tenantHist(sh.hQWait, sh.Reg, rec.GID, "queue_wait_cycles").Observe(0)
	traced := rec.Sampled && rec.TraceID != 0
	if traced {
		sh.scope.Begin(rec.TraceID, rec.Parent)
		sh.scope.Enter()
		sh.Reg.Span("request", "queue_wait", rootStart, start, 0)
	}
	_, err := fn()
	end := uint64(sh.Sys.M.MaxCoreTime())
	tenantHist(sh.hSvc, sh.Reg, rec.GID, "service_cycles").Observe(end - start)
	if traced {
		sh.scope.Exit("request", rec.Kind, rootStart, end, 0)
		sh.scope.End(sh.sampler.Keep(rec.TraceID, end-rootStart, err != nil))
	}
}

// opBody dispatches a replayed op record onto the shared work* bodies. A
// non-nil error from the body is a legitimate replayed outcome (the live
// request failed the same way); decode failures are reported.
func (svc *Service) opBody(sh *Shard, sess *Session, rec *fsproto.LogRecord) (func() (any, error), error) {
	switch rec.Kind {
	case "login":
		var req fsproto.LoginRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		return func() (any, error) {
			return svc.workLogin(sh, rec.GID, req.Tenant, req.UID, req.Passphrase)
		}, nil
	case "create":
		var req fsproto.CreateRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		return func() (any, error) { return svc.workCreate(sh, sess, req) }, nil
	case "read":
		var req fsproto.ReadRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		if req.Length < 0 || req.Length > maxReadBytes {
			return nil, fmt.Errorf("replayed read length %d out of range", req.Length)
		}
		dst := make([]byte, req.Length)
		tgt := replayTarget(sh, sess, req.Tenant)
		return func() (any, error) { return svc.workRead(tgt, sess, req, dst) }, nil
	case "write":
		var req fsproto.WriteRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		tgt := replayTarget(sh, sess, req.Tenant)
		return func() (any, error) { return svc.workWrite(tgt, sess, req) }, nil
	case "chmod":
		var req fsproto.ChmodRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		tgt := replayTarget(sh, sess, req.Tenant)
		return func() (any, error) { return svc.workChmod(tgt, sess, req) }, nil
	case "delete":
		var req fsproto.DeleteRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		tgt := replayTarget(sh, sess, req.Tenant)
		return func() (any, error) { return svc.workDelete(tgt, sess, req) }, nil
	case "kv_create":
		var req fsproto.KVCreateRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		return func() (any, error) { return svc.workKVCreate(sh, sess, req) }, nil
	case "kv_put":
		var req fsproto.KVPutRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		tgt := replayTarget(sh, sess, req.Tenant)
		return func() (any, error) { return svc.workKVPut(tgt, sess, req) }, nil
	case "kv_get":
		var req fsproto.KVGetRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		dst := make([]byte, maxKVValue)
		tgt := replayTarget(sh, sess, req.Tenant)
		return func() (any, error) { return svc.workKVGet(tgt, sess, req, dst) }, nil
	case "kv_delete":
		var req fsproto.KVDeleteRequest
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			return nil, err
		}
		tgt := replayTarget(sh, sess, req.Tenant)
		return func() (any, error) { return svc.workKVDelete(tgt, sess, req) }, nil
	default:
		return nil, fmt.Errorf("unknown admission-log record kind %q", rec.Kind)
	}
}

// applyRecord executes one admission-log record against sh and appends it
// to the shard's own log (so a rehydrated shard or promoted replica can
// itself be replicated from). Returns an error only for structural
// failures — checkpoint divergence, undecodable records; a replayed op's
// application error is the faithfully reproduced live outcome.
func (svc *Service) applyRecord(sh *Shard, rec fsproto.LogRecord) error {
	switch rec.Kind {
	case fsproto.RecFlush:
		sh.execFlush()
		sh.appendRecord(rec)
	case fsproto.RecCheckpoint:
		root := sh.Sys.M.MC.MerkleRoot()
		if got := hex.EncodeToString(root[:]); got != rec.Root {
			return fmt.Errorf("%w: checkpoint at pos %d: root %s != %s", ErrDiverged, rec.Pos, got, rec.Root)
		}
		sh.appendRecord(rec)
		sh.sinceCkpt = 0
	default:
		fn, err := svc.opBody(sh, sh.replaySession(&rec, svc.nShards), &rec)
		if err != nil {
			return fmt.Errorf("record %d (%s): %w", rec.Pos, rec.Kind, err)
		}
		sh.runRecord(&rec, fn)
		sh.appendRecord(rec)
		sh.sinceCkpt++
		if rec.Seq+1 > sh.detNext {
			// Continue the deterministic schedule where the source stopped.
			sh.detNext = rec.Seq + 1
		}
	}
	return nil
}

// ReplayRecords replays a full admission log into a detached shard (the
// caller is the only goroutine touching it — InstallShard runs this
// before Start).
func (svc *Service) ReplayRecords(sh *Shard, recs []fsproto.LogRecord) error {
	for i := range recs {
		if err := svc.applyRecord(sh, recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ApplyRecords applies a record batch on a running shard's worker (the
// replica pull loop's incremental path).
func (svc *Service) ApplyRecords(ctx context.Context, sh *Shard, recs []fsproto.LogRecord) error {
	var err error
	derr := svc.doSideOrClosed(ctx, sh, func() {
		for i := range recs {
			if err = svc.applyRecord(sh, recs[i]); err != nil {
				return
			}
		}
	})
	if derr != nil {
		return derr
	}
	return err
}

// RecordsFrom snapshots shard idx's admission log from position from
// onward (serialized with tenant traffic on the worker). It is the
// /fabric/pull surface replicas replicate from.
func (svc *Service) RecordsFrom(ctx context.Context, idx int, from uint64) ([]fsproto.LogRecord, error) {
	svc.mu.RLock()
	sh := svc.byIdx[idx]
	svc.mu.RUnlock()
	if sh == nil {
		return nil, &WrongShardError{Shard: idx, Epoch: svc.epoch.Load()}
	}
	var out []fsproto.LogRecord
	err := svc.doSideOrClosed(ctx, sh, func() {
		if from >= uint64(len(sh.recs)) {
			return
		}
		out = append(out, sh.recs[from:]...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LogLen reports shard idx's admission-log length (tests, replica sync
// bookkeeping).
func (svc *Service) LogLen(ctx context.Context, idx int) (uint64, error) {
	svc.mu.RLock()
	sh := svc.byIdx[idx]
	svc.mu.RUnlock()
	if sh == nil {
		return 0, &WrongShardError{Shard: idx, Epoch: svc.epoch.Load()}
	}
	var n uint64
	err := svc.doSideOrClosed(ctx, sh, func() { n = uint64(len(sh.recs)) })
	return n, err
}
