package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"fsencr/internal/addr"
	"fsencr/internal/fs"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/kvstore"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/pmem"
)

// ErrBadRequest reports a malformed operation (range beyond EOF, oversize
// value, missing name).
var ErrBadRequest = errors.New("server: bad request")

// maxKVValue bounds KV values to one page (the paper's "large" value size).
const maxKVValue = 4096

// maxReadBytes bounds one read's response payload, mirroring the request
// body bound: a JSON response larger than this would not round-trip the
// protocol anyway, and the bound keeps a forged length from allocating.
const maxReadBytes = maxBodyBytes

// pagePool recycles page-sized payload buffers. The read and KV-get
// response buffers were the service's last per-request heap allocations;
// pooling them makes the steady-state read path allocation-free on the
// worker side.
var pagePool = sync.Pool{New: func() any { return new([maxKVValue]byte) }}

// Payload is a response byte range, backed by a pooled page buffer when
// it fits in one page. The consumer must call Release exactly once after
// encoding Data; Release on the zero Payload is a no-op.
type Payload struct {
	Data []byte
	arr  *[maxKVValue]byte
}

// newPayload returns an n-byte payload, pooled when page-or-smaller.
func newPayload(n int) Payload {
	if n <= maxKVValue {
		arr := pagePool.Get().(*[maxKVValue]byte)
		return Payload{Data: arr[:n], arr: arr}
	}
	return Payload{Data: make([]byte, n)}
}

// Release returns the backing buffer to the pool.
func (p Payload) Release() {
	if p.arr != nil {
		pagePool.Put(p.arr)
	}
}

// sessState is a session's per-shard state: its simulated process, its
// file mappings, and its open KV handles. Created and touched exclusively
// by the owning shard's worker goroutine.
type sessState struct {
	proc *kernel.Process
	maps map[uint16]addr.Virt // ino -> base va (inos are never reused)
	kv   map[string]*kvHandle // full store name -> handle
}

type kvHandle struct {
	pool *pmem.Pool
	tree *kvstore.BTree
}

// state returns (creating lazily) the session's state on this shard.
// Worker-goroutine only.
func (sh *Shard) state(sess *Session) *sessState {
	st := sess.st[sh.id]
	if st == nil {
		st = &sessState{maps: make(map[uint16]addr.Virt), kv: make(map[string]*kvHandle)}
		sess.st[sh.id] = st
	}
	return st
}

// proc returns (creating lazily) the session's process on this shard.
func (sh *Shard) proc(sess *Session) *kernel.Process {
	st := sh.state(sess)
	if st.proc == nil {
		st.proc = sh.Sys.NewProcess(sess.uid, sess.gid)
	}
	return st.proc
}

// mapping returns the session's mapping of f, mmapping the whole file on
// first use. Inode numbers are never reused by the fs, so a cached va can
// only go stale by deletion — in which case the preceding Lookup fails
// first.
func (sh *Shard) mapping(sess *Session, f *fs.File) (addr.Virt, error) {
	st := sh.state(sess)
	if va, ok := st.maps[f.Ino]; ok {
		return va, nil
	}
	va, err := sh.proc(sess).Mmap(f, f.Size)
	if err != nil {
		return 0, err
	}
	st.maps[f.Ino] = va
	return va, nil
}

// target is a resolved operation destination: possibly another tenant's
// namespace on another shard.
type target struct {
	tenant string
	gid    uint32
	sh     *Shard
	cross  bool
}

// resolve maps a request's optional tenant override to its shard,
// reporting the routing error when that shard lives on another node.
func (svc *Service) resolve(sess *Session, tenantOverride string) (target, error) {
	t := target{tenant: sess.tenant, gid: sess.gid}
	if tenantOverride != "" && tenantOverride != sess.tenant {
		t.tenant = tenantOverride
		t.gid = fsproto.TenantGID(tenantOverride)
		t.cross = true
	}
	sh, err := svc.shardFor(t.gid)
	if err != nil {
		return target{}, err
	}
	t.sh = sh
	return t, nil
}

// replayTarget rebuilds an op's resolved destination without consulting
// the routing table: in an admission-log replay the target shard is by
// construction the shard whose log is being replayed.
func replayTarget(sh *Shard, sess *Session, override string) target {
	t := target{tenant: sess.tenant, gid: sess.gid, sh: sh}
	if override != "" && override != sess.tenant {
		t.tenant = override
		t.gid = fsproto.TenantGID(override)
		t.cross = true
	}
	return t
}

// fullName prefixes a file name with its tenant namespace.
func fullName(tenant, name string) string { return tenant + "/" + name }

// pass picks the file passphrase: explicit override or the session's.
func pass(sess *Session, override string) string {
	if override != "" {
		return override
	}
	return sess.pass
}

// deniedKind classifies kernel denials for the security journal.
func deniedKind(err error) bool {
	return errors.Is(err, kernel.ErrPermission) ||
		errors.Is(err, kernel.ErrWrongPassphrase) ||
		errors.Is(err, fs.ErrPermEperm)
}

// noteDenial records a cross-tenant denial in the target shard's journal
// (worker goroutine, so the event lands in deterministic admission order)
// and on the host-side counter.
func (svc *Service) noteDenial(sh *Shard, sess *Session, tgt target, err error) {
	if !tgt.cross || !deniedKind(err) {
		return
	}
	sh.Jrn.Emit(journal.Event{
		Cycle:  uint64(sh.proc(sess).Now()),
		Type:   journal.CrossTenantDenied,
		Group:  tgt.gid,
		Detail: fmt.Sprintf("from %s", sess.tenant),
	})
	svc.cXDenied.Inc()
}

// buildRecord assembles one admission-log record: the request's wire JSON
// plus the session credentials a replayer needs to reconstruct a shadow
// session that never logged in through this shard's log (cross-tenant
// traffic). Returns nil when req does not marshal — the op then simply
// goes unlogged rather than failing live traffic.
func buildRecord(kind string, gid uint32, seq uint64, sess *Session, tc fsproto.TraceContext, req any) *fsproto.LogRecord {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil
	}
	rec := &fsproto.LogRecord{
		Kind:    kind,
		Seq:     seq,
		GID:     gid,
		TraceID: tc.TraceID,
		Parent:  tc.Parent,
		Sampled: tc.Sampled,
		Req:     raw,
	}
	if sess != nil {
		rec.Token = sess.token
		rec.Tenant = sess.tenant
		rec.EUID = sess.uid
		rec.Pass = sess.pass
	}
	return rec
}

// do wraps shard submission with the service's request timeout, naming the
// request's root span, forwarding the trace context the HTTP layer put
// into ctx, and — on logging shards — attaching the admission-log record
// the worker appends after execution. req is the wire request that record
// serializes; the zero-allocation read path is preserved on non-logging
// shards, where req is never marshaled.
func (svc *Service) do(ctx context.Context, sh *Shard, sess *Session, gid uint32, seq fsproto.Seq, name string, req any, fn func() (any, error)) (any, error) {
	tc := TraceFromContext(ctx)
	ctx, cancel := context.WithTimeout(ctx, svc.opts.RequestTimeout)
	defer cancel()
	var s uint64
	if seq != nil {
		s = *seq
	}
	var rec *fsproto.LogRecord
	if sh.logOn {
		rec = buildRecord(name, gid, s, sess, tc, req)
	}
	return sh.submit(ctx, gid, s, name, tc, rec, fn)
}

// The work* methods below are the worker-goroutine op bodies, shared
// verbatim between live admission and admission-log replay so a replayed
// shard touches its simulated machine in exactly the live sequence.

func (svc *Service) workCreate(sh *Shard, sess *Session, req fsproto.CreateRequest) (any, error) {
	p := sh.proc(sess)
	_, err := sh.Sys.CreateFile(p, fullName(sess.tenant, req.Name),
		fs.Mode(req.Perm), req.Size, req.Encrypted, pass(sess, req.Passphrase))
	return nil, err
}

func (svc *Service) workRead(tgt target, sess *Session, req fsproto.ReadRequest, dst []byte) (any, error) {
	if err := tgt.sh.readInto(sess, fullName(tgt.tenant, req.Name), pass(sess, req.Passphrase), req.Offset, dst); err != nil {
		svc.noteDenial(tgt.sh, sess, tgt, err)
		return nil, err
	}
	return nil, nil
}

func (svc *Service) workWrite(tgt target, sess *Session, req fsproto.WriteRequest) (any, error) {
	p := tgt.sh.proc(sess)
	f, err := tgt.sh.Sys.OpenFile(p, fullName(tgt.tenant, req.Name), fs.WriteAccess, pass(sess, req.Passphrase))
	if err != nil {
		svc.noteDenial(tgt.sh, sess, tgt, err)
		return nil, err
	}
	if req.Offset+uint64(len(req.Data)) > f.Size {
		return nil, fmt.Errorf("%w: write [%d,%d) beyond EOF %d", ErrBadRequest, req.Offset, req.Offset+uint64(len(req.Data)), f.Size)
	}
	va, err := tgt.sh.mapping(sess, f)
	if err != nil {
		return nil, err
	}
	if err := p.Write(va+addr.Virt(req.Offset), req.Data); err != nil {
		return nil, err
	}
	return nil, p.Persist(va+addr.Virt(req.Offset), uint64(len(req.Data)))
}

func (svc *Service) workChmod(tgt target, sess *Session, req fsproto.ChmodRequest) (any, error) {
	err := tgt.sh.Sys.Chmod(tgt.sh.proc(sess), fullName(tgt.tenant, req.Name), fs.Mode(req.Perm))
	if err != nil {
		svc.noteDenial(tgt.sh, sess, tgt, err)
	}
	return nil, err
}

func (svc *Service) workDelete(tgt target, sess *Session, req fsproto.DeleteRequest) (any, error) {
	err := tgt.sh.Sys.Unlink(tgt.sh.proc(sess), fullName(tgt.tenant, req.Name))
	if err != nil {
		svc.noteDenial(tgt.sh, sess, tgt, err)
	}
	return nil, err
}

func (svc *Service) workKVCreate(sh *Shard, sess *Session, req fsproto.KVCreateRequest) (any, error) {
	p := sh.proc(sess)
	full := kvName(sess.tenant, req.Store)
	// 0660: group-shared within the tenant; the per-file key (from the
	// store passphrase) still gates every other tenant out.
	f, err := sh.Sys.CreateFile(p, full, 0660, req.Size, true, pass(sess, req.Passphrase))
	if err != nil {
		return nil, err
	}
	pool, err := pmem.Create(p, f, req.Size)
	if err != nil {
		return nil, err
	}
	tree, err := kvstore.Create(pool, 0)
	if err != nil {
		return nil, err
	}
	tree.Instrument(sh.Reg)
	sh.state(sess).kv[full] = &kvHandle{pool: pool, tree: tree}
	return nil, nil
}

func (svc *Service) workKVPut(tgt target, sess *Session, req fsproto.KVPutRequest) (any, error) {
	h, err := tgt.sh.kvHandleFor(sess, tgt.tenant, req.Store, pass(sess, req.Passphrase), fs.WriteAccess)
	if err != nil {
		svc.noteDenial(tgt.sh, sess, tgt, err)
		return nil, err
	}
	return nil, h.tree.Put(req.Key, req.Value)
}

func (svc *Service) workKVGet(tgt target, sess *Session, req fsproto.KVGetRequest, dst []byte) (any, error) {
	h, err := tgt.sh.kvHandleFor(sess, tgt.tenant, req.Store, pass(sess, req.Passphrase), fs.ReadAccess)
	if err != nil {
		svc.noteDenial(tgt.sh, sess, tgt, err)
		return nil, err
	}
	return h.tree.Get(req.Key, dst)
}

func (svc *Service) workKVDelete(tgt target, sess *Session, req fsproto.KVDeleteRequest) (any, error) {
	h, err := tgt.sh.kvHandleFor(sess, tgt.tenant, req.Store, pass(sess, req.Passphrase), fs.WriteAccess)
	if err != nil {
		svc.noteDenial(tgt.sh, sess, tgt, err)
		return nil, err
	}
	return h.tree.Delete(req.Key)
}

// Create creates a file in the session tenant's own namespace.
func (svc *Service) Create(ctx context.Context, sess *Session, req fsproto.CreateRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: name required", ErrBadRequest)
	}
	sh, err := svc.shardFor(sess.gid)
	if err != nil {
		return err
	}
	_, err = svc.do(ctx, sh, sess, sess.gid, req.Seq, "create", &req, func() (any, error) {
		return svc.workCreate(sh, sess, req)
	})
	return err
}

// readInto is the worker-side read datapath: open (permission + per-file
// key check), bounds-check, and copy [off, off+len(dst)) of the named
// file into dst. The caller provides the destination, so a steady-state
// read allocates nothing — and a page-aligned, page-sized read rides the
// controller's batched page datapath end to end. name must already carry
// its tenant prefix. Worker-goroutine only.
func (sh *Shard) readInto(sess *Session, name, passphrase string, off uint64, dst []byte) error {
	p := sh.proc(sess)
	f, err := sh.Sys.OpenFile(p, name, fs.ReadAccess, passphrase)
	if err != nil {
		return err
	}
	if off+uint64(len(dst)) > f.Size {
		return fmt.Errorf("%w: read [%d,%d) beyond EOF %d", ErrBadRequest, off, off+uint64(len(dst)), f.Size)
	}
	va, err := sh.mapping(sess, f)
	if err != nil {
		return err
	}
	return p.Read(va+addr.Virt(off), dst)
}

// Read reads a byte range; the kernel enforces permissions and verifies
// the per-file key, so a cross-tenant or wrong-passphrase attempt fails
// without a single plaintext byte leaving the shard. The bytes land in a
// pooled buffer — Release the returned Payload after encoding it.
func (svc *Service) Read(ctx context.Context, sess *Session, req fsproto.ReadRequest) (Payload, error) {
	if req.Name == "" || req.Length < 0 {
		return Payload{}, fmt.Errorf("%w: name and non-negative length required", ErrBadRequest)
	}
	// Bound before allocating: a forged multi-gigabyte length must fail
	// here, not in newPayload's make.
	if req.Length > maxReadBytes {
		return Payload{}, fmt.Errorf("%w: length %d exceeds limit %d", ErrBadRequest, req.Length, maxReadBytes)
	}
	tgt, err := svc.resolve(sess, req.Tenant)
	if err != nil {
		return Payload{}, err
	}
	pl := newPayload(req.Length)
	if svc.fastReadable(tgt.sh) {
		if tgt.sh.tryFastRead(sess, TraceFromContext(ctx), fullName(tgt.tenant, req.Name), pass(sess, req.Passphrase), req.Offset, pl.Data) {
			svc.cFastReads.Inc()
			return pl, nil
		}
		// Anything the snapshot path couldn't serve — contention, an
		// unfaulted page, a key not yet in the on-chip OTT, or a read that
		// genuinely fails — re-runs below with exact live semantics.
		svc.cFastFallbacks.Inc()
	}
	_, err = svc.do(ctx, tgt.sh, sess, tgt.gid, req.Seq, "read", &req, func() (any, error) {
		return svc.workRead(tgt, sess, req, pl.Data)
	})
	if err != nil {
		// Not released: on a caller timeout the task may still be queued,
		// and the buffer must not re-enter the pool while a worker could
		// yet write into it. The GC reclaims it instead.
		return Payload{}, err
	}
	return pl, nil
}

// fastReadable gates the concurrent read fast-path: deterministic shards
// must stay a pure function of their schedule (a fast read would skip the
// schedule entirely), logged shards must observe every op as an
// admission-log record, and -serial-reads forces the worker path for A/B
// measurement against the serialized datapath.
func (svc *Service) fastReadable(sh *Shard) bool {
	return !sh.det && !sh.logOn && !svc.opts.SerialReads
}

// statResponse is the wire form of a stat'ed inode.
func statResponse(f *fs.File) fsproto.StatResponse {
	return fsproto.StatResponse{
		Name:      f.Name,
		Size:      f.Size,
		Perm:      uint16(f.Perm),
		Encrypted: f.Encrypted,
		Pages:     f.Pages(),
	}
}

// workStat is the worker-side stat fallback. It deliberately touches no
// simulated state — no clock, no journal, no keyring — so stat stays
// replay-neutral on logged shards and schedule-neutral on deterministic
// ones; it exists to produce the exact live error shapes the snapshot path
// refuses to guess.
func workStat(sh *Shard, sess *Session, name string) (fsproto.StatResponse, error) {
	f, err := sh.Sys.FS.Lookup(name)
	if err != nil {
		return fsproto.StatResponse{}, err
	}
	if !f.Allows(sess.uid, sess.gid, fs.ReadAccess) {
		return fsproto.StatResponse{}, fmt.Errorf("%w: %q", kernel.ErrPermission, name)
	}
	return statResponse(f), nil
}

// Stat returns file metadata. Read-only end to end: the fast path answers
// from a seqlock-guarded snapshot off the worker; the fallback runs as
// out-of-band worker work (DoSide), so stat never consumes a deterministic
// schedule slot, advances no simulated clock, and is never logged.
func (svc *Service) Stat(ctx context.Context, sess *Session, req fsproto.StatRequest) (fsproto.StatResponse, error) {
	if req.Name == "" {
		return fsproto.StatResponse{}, fmt.Errorf("%w: name required", ErrBadRequest)
	}
	tgt, err := svc.resolve(sess, req.Tenant)
	if err != nil {
		return fsproto.StatResponse{}, err
	}
	name := fullName(tgt.tenant, req.Name)
	if svc.fastReadable(tgt.sh) {
		if resp, ok := tgt.sh.tryFastStat(sess, name); ok {
			svc.cFastReads.Inc()
			return resp, nil
		}
		svc.cFastFallbacks.Inc()
	}
	ctx, cancel := context.WithTimeout(ctx, svc.opts.RequestTimeout)
	defer cancel()
	var resp fsproto.StatResponse
	var serr error
	if err := tgt.sh.DoSide(ctx, func() { resp, serr = workStat(tgt.sh, sess, name) }); err != nil {
		return fsproto.StatResponse{}, err
	}
	return resp, serr
}

// Write stores bytes at an offset and persists them (CLWB+SFENCE under
// DAX).
func (svc *Service) Write(ctx context.Context, sess *Session, req fsproto.WriteRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: name required", ErrBadRequest)
	}
	tgt, err := svc.resolve(sess, req.Tenant)
	if err != nil {
		return err
	}
	_, err = svc.do(ctx, tgt.sh, sess, tgt.gid, req.Seq, "write", &req, func() (any, error) {
		return svc.workWrite(tgt, sess, req)
	})
	return err
}

// Chmod changes permission bits (owner or root only).
func (svc *Service) Chmod(ctx context.Context, sess *Session, req fsproto.ChmodRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: name required", ErrBadRequest)
	}
	tgt, err := svc.resolve(sess, req.Tenant)
	if err != nil {
		return err
	}
	_, err = svc.do(ctx, tgt.sh, sess, tgt.gid, req.Seq, "chmod", &req, func() (any, error) {
		return svc.workChmod(tgt, sess, req)
	})
	return err
}

// Delete unlinks a file: the controller drops its key and shreds its
// pages, so the bytes are gone even for holders of the old passphrase.
func (svc *Service) Delete(ctx context.Context, sess *Session, req fsproto.DeleteRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: name required", ErrBadRequest)
	}
	tgt, err := svc.resolve(sess, req.Tenant)
	if err != nil {
		return err
	}
	_, err = svc.do(ctx, tgt.sh, sess, tgt.gid, req.Seq, "delete", &req, func() (any, error) {
		return svc.workDelete(tgt, sess, req)
	})
	return err
}

// kvName namespaces a store under its tenant.
func kvName(tenant, store string) string { return tenant + "/kv/" + store }

// kvHandleFor opens (or returns the cached) per-session view of a store:
// permission check through OpenFile, then a pmem pool mapping in the
// session's own process. Worker-goroutine only.
func (sh *Shard) kvHandleFor(sess *Session, tenant, store, passphrase string, want fs.Access) (*kvHandle, error) {
	st := sh.state(sess)
	full := kvName(tenant, store)
	if h, ok := st.kv[full]; ok {
		return h, nil
	}
	p := sh.proc(sess)
	f, err := sh.Sys.OpenFile(p, full, want, passphrase)
	if err != nil {
		return nil, err
	}
	pool, err := pmem.Open(p, f, f.Size)
	if err != nil {
		return nil, err
	}
	tree := kvstore.Open(pool, 0)
	tree.Instrument(sh.Reg)
	h := &kvHandle{pool: pool, tree: tree}
	st.kv[full] = h
	return h, nil
}

// KVCreate creates an encrypted pool file holding a persistent B+Tree.
func (svc *Service) KVCreate(ctx context.Context, sess *Session, req fsproto.KVCreateRequest) error {
	if req.Store == "" || req.Size == 0 {
		return fmt.Errorf("%w: store and size required", ErrBadRequest)
	}
	sh, err := svc.shardFor(sess.gid)
	if err != nil {
		return err
	}
	_, err = svc.do(ctx, sh, sess, sess.gid, req.Seq, "kv_create", &req, func() (any, error) {
		return svc.workKVCreate(sh, sess, req)
	})
	return err
}

// KVPut stores a value.
func (svc *Service) KVPut(ctx context.Context, sess *Session, req fsproto.KVPutRequest) error {
	if req.Store == "" || len(req.Value) > maxKVValue {
		return fmt.Errorf("%w: store required, value <= %d bytes", ErrBadRequest, maxKVValue)
	}
	tgt, err := svc.resolve(sess, req.Tenant)
	if err != nil {
		return err
	}
	_, err = svc.do(ctx, tgt.sh, sess, tgt.gid, req.Seq, "kv_put", &req, func() (any, error) {
		return svc.workKVPut(tgt, sess, req)
	})
	return err
}

// KVGet fetches a value into a pooled buffer — Release the returned
// Payload after encoding it.
func (svc *Service) KVGet(ctx context.Context, sess *Session, req fsproto.KVGetRequest) (Payload, error) {
	if req.Store == "" {
		return Payload{}, fmt.Errorf("%w: store required", ErrBadRequest)
	}
	tgt, err := svc.resolve(sess, req.Tenant)
	if err != nil {
		return Payload{}, err
	}
	pl := newPayload(maxKVValue)
	v, err := svc.do(ctx, tgt.sh, sess, tgt.gid, req.Seq, "kv_get", &req, func() (any, error) {
		return svc.workKVGet(tgt, sess, req, pl.Data)
	})
	if err != nil {
		// Same rationale as Read: a possibly-still-queued task owns the
		// buffer, so it is dropped rather than pooled.
		return Payload{}, err
	}
	pl.Data = pl.Data[:v.(int)]
	return pl, nil
}

// KVDelete removes a key.
func (svc *Service) KVDelete(ctx context.Context, sess *Session, req fsproto.KVDeleteRequest) (bool, error) {
	if req.Store == "" {
		return false, fmt.Errorf("%w: store required", ErrBadRequest)
	}
	tgt, err := svc.resolve(sess, req.Tenant)
	if err != nil {
		return false, err
	}
	v, err := svc.do(ctx, tgt.sh, sess, tgt.gid, req.Seq, "kv_delete", &req, func() (any, error) {
		return svc.workKVDelete(tgt, sess, req)
	})
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}
