package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fsencr/internal/addr"
	"fsencr/internal/fs"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/kvstore"
	"fsencr/internal/obsplane/journal"
	"fsencr/internal/pmem"
)

// ErrBadRequest reports a malformed operation (range beyond EOF, oversize
// value, missing name).
var ErrBadRequest = errors.New("server: bad request")

// maxKVValue bounds KV values to one page (the paper's "large" value size).
const maxKVValue = 4096

// maxReadBytes bounds one read's response payload, mirroring the request
// body bound: a JSON response larger than this would not round-trip the
// protocol anyway, and the bound keeps a forged length from allocating.
const maxReadBytes = maxBodyBytes

// pagePool recycles page-sized payload buffers. The read and KV-get
// response buffers were the service's last per-request heap allocations;
// pooling them makes the steady-state read path allocation-free on the
// worker side.
var pagePool = sync.Pool{New: func() any { return new([maxKVValue]byte) }}

// Payload is a response byte range, backed by a pooled page buffer when
// it fits in one page. The consumer must call Release exactly once after
// encoding Data; Release on the zero Payload is a no-op.
type Payload struct {
	Data []byte
	arr  *[maxKVValue]byte
}

// newPayload returns an n-byte payload, pooled when page-or-smaller.
func newPayload(n int) Payload {
	if n <= maxKVValue {
		arr := pagePool.Get().(*[maxKVValue]byte)
		return Payload{Data: arr[:n], arr: arr}
	}
	return Payload{Data: make([]byte, n)}
}

// Release returns the backing buffer to the pool.
func (p Payload) Release() {
	if p.arr != nil {
		pagePool.Put(p.arr)
	}
}

// sessState is a session's per-shard state: its simulated process, its
// file mappings, and its open KV handles. Created and touched exclusively
// by the owning shard's worker goroutine.
type sessState struct {
	proc *kernel.Process
	maps map[uint16]addr.Virt // ino -> base va (inos are never reused)
	kv   map[string]*kvHandle // full store name -> handle
}

type kvHandle struct {
	pool *pmem.Pool
	tree *kvstore.BTree
}

// state returns (creating lazily) the session's state on this shard.
// Worker-goroutine only.
func (sh *Shard) state(sess *Session) *sessState {
	st := sess.st[sh.id]
	if st == nil {
		st = &sessState{maps: make(map[uint16]addr.Virt), kv: make(map[string]*kvHandle)}
		sess.st[sh.id] = st
	}
	return st
}

// proc returns (creating lazily) the session's process on this shard.
func (sh *Shard) proc(sess *Session) *kernel.Process {
	st := sh.state(sess)
	if st.proc == nil {
		st.proc = sh.Sys.NewProcess(sess.uid, sess.gid)
	}
	return st.proc
}

// mapping returns the session's mapping of f, mmapping the whole file on
// first use. Inode numbers are never reused by the fs, so a cached va can
// only go stale by deletion — in which case the preceding Lookup fails
// first.
func (sh *Shard) mapping(sess *Session, f *fs.File) (addr.Virt, error) {
	st := sh.state(sess)
	if va, ok := st.maps[f.Ino]; ok {
		return va, nil
	}
	va, err := sh.proc(sess).Mmap(f, f.Size)
	if err != nil {
		return 0, err
	}
	st.maps[f.Ino] = va
	return va, nil
}

// target is a resolved operation destination: possibly another tenant's
// namespace on another shard.
type target struct {
	tenant string
	gid    uint32
	sh     *Shard
	cross  bool
}

// resolve maps a request's optional tenant override to its shard.
func (svc *Service) resolve(sess *Session, tenantOverride string) target {
	t := target{tenant: sess.tenant, gid: sess.gid}
	if tenantOverride != "" && tenantOverride != sess.tenant {
		t.tenant = tenantOverride
		t.gid = fsproto.TenantGID(tenantOverride)
		t.cross = true
	}
	t.sh = svc.shardFor(t.gid)
	return t
}

// fullName prefixes a file name with its tenant namespace.
func fullName(tenant, name string) string { return tenant + "/" + name }

// pass picks the file passphrase: explicit override or the session's.
func pass(sess *Session, override string) string {
	if override != "" {
		return override
	}
	return sess.pass
}

// deniedKind classifies kernel denials for the security journal.
func deniedKind(err error) bool {
	return errors.Is(err, kernel.ErrPermission) ||
		errors.Is(err, kernel.ErrWrongPassphrase) ||
		errors.Is(err, fs.ErrPermEperm)
}

// noteDenial records a cross-tenant denial in the target shard's journal
// (worker goroutine, so the event lands in deterministic admission order)
// and on the host-side counter.
func (svc *Service) noteDenial(sh *Shard, sess *Session, tgt target, err error) {
	if !tgt.cross || !deniedKind(err) {
		return
	}
	sh.Jrn.Emit(journal.Event{
		Cycle:  uint64(sh.proc(sess).Now()),
		Type:   journal.CrossTenantDenied,
		Group:  tgt.gid,
		Detail: fmt.Sprintf("from %s", sess.tenant),
	})
	svc.cXDenied.Inc()
}

// do wraps shard submission with the service's request timeout, naming the
// request's root span and forwarding the trace context the HTTP layer put
// into ctx.
func (svc *Service) do(ctx context.Context, sh *Shard, gid uint32, seq fsproto.Seq, name string, fn func() (any, error)) (any, error) {
	tc := TraceFromContext(ctx)
	ctx, cancel := context.WithTimeout(ctx, svc.opts.RequestTimeout)
	defer cancel()
	var s uint64
	if seq != nil {
		s = *seq
	}
	return sh.DoTraced(ctx, gid, s, name, tc, fn)
}

// Create creates a file in the session tenant's own namespace.
func (svc *Service) Create(ctx context.Context, sess *Session, req fsproto.CreateRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: name required", ErrBadRequest)
	}
	sh := svc.shardFor(sess.gid)
	_, err := svc.do(ctx, sh, sess.gid, req.Seq, "create", func() (any, error) {
		p := sh.proc(sess)
		_, err := sh.Sys.CreateFile(p, fullName(sess.tenant, req.Name),
			fs.Mode(req.Perm), req.Size, req.Encrypted, pass(sess, req.Passphrase))
		return nil, err
	})
	return err
}

// readInto is the worker-side read datapath: open (permission + per-file
// key check), bounds-check, and copy [off, off+len(dst)) of the named
// file into dst. The caller provides the destination, so a steady-state
// read allocates nothing — and a page-aligned, page-sized read rides the
// controller's batched page datapath end to end. name must already carry
// its tenant prefix. Worker-goroutine only.
func (sh *Shard) readInto(sess *Session, name, passphrase string, off uint64, dst []byte) error {
	p := sh.proc(sess)
	f, err := sh.Sys.OpenFile(p, name, fs.ReadAccess, passphrase)
	if err != nil {
		return err
	}
	if off+uint64(len(dst)) > f.Size {
		return fmt.Errorf("%w: read [%d,%d) beyond EOF %d", ErrBadRequest, off, off+uint64(len(dst)), f.Size)
	}
	va, err := sh.mapping(sess, f)
	if err != nil {
		return err
	}
	return p.Read(va+addr.Virt(off), dst)
}

// Read reads a byte range; the kernel enforces permissions and verifies
// the per-file key, so a cross-tenant or wrong-passphrase attempt fails
// without a single plaintext byte leaving the shard. The bytes land in a
// pooled buffer — Release the returned Payload after encoding it.
func (svc *Service) Read(ctx context.Context, sess *Session, req fsproto.ReadRequest) (Payload, error) {
	if req.Name == "" || req.Length < 0 {
		return Payload{}, fmt.Errorf("%w: name and non-negative length required", ErrBadRequest)
	}
	// Bound before allocating: a forged multi-gigabyte length must fail
	// here, not in newPayload's make.
	if req.Length > maxReadBytes {
		return Payload{}, fmt.Errorf("%w: length %d exceeds limit %d", ErrBadRequest, req.Length, maxReadBytes)
	}
	tgt := svc.resolve(sess, req.Tenant)
	name := fullName(tgt.tenant, req.Name)
	pl := newPayload(req.Length)
	_, err := svc.do(ctx, tgt.sh, tgt.gid, req.Seq, "read", func() (any, error) {
		if err := tgt.sh.readInto(sess, name, pass(sess, req.Passphrase), req.Offset, pl.Data); err != nil {
			svc.noteDenial(tgt.sh, sess, tgt, err)
			return nil, err
		}
		return nil, nil
	})
	if err != nil {
		// Not released: on a caller timeout the task may still be queued,
		// and the buffer must not re-enter the pool while a worker could
		// yet write into it. The GC reclaims it instead.
		return Payload{}, err
	}
	return pl, nil
}

// Write stores bytes at an offset and persists them (CLWB+SFENCE under
// DAX).
func (svc *Service) Write(ctx context.Context, sess *Session, req fsproto.WriteRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: name required", ErrBadRequest)
	}
	tgt := svc.resolve(sess, req.Tenant)
	_, err := svc.do(ctx, tgt.sh, tgt.gid, req.Seq, "write", func() (any, error) {
		p := tgt.sh.proc(sess)
		f, err := tgt.sh.Sys.OpenFile(p, fullName(tgt.tenant, req.Name), fs.WriteAccess, pass(sess, req.Passphrase))
		if err != nil {
			svc.noteDenial(tgt.sh, sess, tgt, err)
			return nil, err
		}
		if req.Offset+uint64(len(req.Data)) > f.Size {
			return nil, fmt.Errorf("%w: write [%d,%d) beyond EOF %d", ErrBadRequest, req.Offset, req.Offset+uint64(len(req.Data)), f.Size)
		}
		va, err := tgt.sh.mapping(sess, f)
		if err != nil {
			return nil, err
		}
		if err := p.Write(va+addr.Virt(req.Offset), req.Data); err != nil {
			return nil, err
		}
		return nil, p.Persist(va+addr.Virt(req.Offset), uint64(len(req.Data)))
	})
	return err
}

// Chmod changes permission bits (owner or root only).
func (svc *Service) Chmod(ctx context.Context, sess *Session, req fsproto.ChmodRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: name required", ErrBadRequest)
	}
	tgt := svc.resolve(sess, req.Tenant)
	_, err := svc.do(ctx, tgt.sh, tgt.gid, req.Seq, "chmod", func() (any, error) {
		err := tgt.sh.Sys.Chmod(tgt.sh.proc(sess), fullName(tgt.tenant, req.Name), fs.Mode(req.Perm))
		if err != nil {
			svc.noteDenial(tgt.sh, sess, tgt, err)
		}
		return nil, err
	})
	return err
}

// Delete unlinks a file: the controller drops its key and shreds its
// pages, so the bytes are gone even for holders of the old passphrase.
func (svc *Service) Delete(ctx context.Context, sess *Session, req fsproto.DeleteRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: name required", ErrBadRequest)
	}
	tgt := svc.resolve(sess, req.Tenant)
	_, err := svc.do(ctx, tgt.sh, tgt.gid, req.Seq, "delete", func() (any, error) {
		err := tgt.sh.Sys.Unlink(tgt.sh.proc(sess), fullName(tgt.tenant, req.Name))
		if err != nil {
			svc.noteDenial(tgt.sh, sess, tgt, err)
		}
		return nil, err
	})
	return err
}

// kvName namespaces a store under its tenant.
func kvName(tenant, store string) string { return tenant + "/kv/" + store }

// kvHandleFor opens (or returns the cached) per-session view of a store:
// permission check through OpenFile, then a pmem pool mapping in the
// session's own process. Worker-goroutine only.
func (sh *Shard) kvHandleFor(sess *Session, tenant, store, passphrase string, want fs.Access) (*kvHandle, error) {
	st := sh.state(sess)
	full := kvName(tenant, store)
	if h, ok := st.kv[full]; ok {
		return h, nil
	}
	p := sh.proc(sess)
	f, err := sh.Sys.OpenFile(p, full, want, passphrase)
	if err != nil {
		return nil, err
	}
	pool, err := pmem.Open(p, f, f.Size)
	if err != nil {
		return nil, err
	}
	tree := kvstore.Open(pool, 0)
	tree.Instrument(sh.Reg)
	h := &kvHandle{pool: pool, tree: tree}
	st.kv[full] = h
	return h, nil
}

// KVCreate creates an encrypted pool file holding a persistent B+Tree.
func (svc *Service) KVCreate(ctx context.Context, sess *Session, req fsproto.KVCreateRequest) error {
	if req.Store == "" || req.Size == 0 {
		return fmt.Errorf("%w: store and size required", ErrBadRequest)
	}
	sh := svc.shardFor(sess.gid)
	_, err := svc.do(ctx, sh, sess.gid, req.Seq, "kv_create", func() (any, error) {
		p := sh.proc(sess)
		full := kvName(sess.tenant, req.Store)
		// 0660: group-shared within the tenant; the per-file key (from the
		// store passphrase) still gates every other tenant out.
		f, err := sh.Sys.CreateFile(p, full, 0660, req.Size, true, pass(sess, req.Passphrase))
		if err != nil {
			return nil, err
		}
		pool, err := pmem.Create(p, f, req.Size)
		if err != nil {
			return nil, err
		}
		tree, err := kvstore.Create(pool, 0)
		if err != nil {
			return nil, err
		}
		tree.Instrument(sh.Reg)
		sh.state(sess).kv[full] = &kvHandle{pool: pool, tree: tree}
		return nil, nil
	})
	return err
}

// KVPut stores a value.
func (svc *Service) KVPut(ctx context.Context, sess *Session, req fsproto.KVPutRequest) error {
	if req.Store == "" || len(req.Value) > maxKVValue {
		return fmt.Errorf("%w: store required, value <= %d bytes", ErrBadRequest, maxKVValue)
	}
	tgt := svc.resolve(sess, req.Tenant)
	_, err := svc.do(ctx, tgt.sh, tgt.gid, req.Seq, "kv_put", func() (any, error) {
		h, err := tgt.sh.kvHandleFor(sess, tgt.tenant, req.Store, pass(sess, req.Passphrase), fs.WriteAccess)
		if err != nil {
			svc.noteDenial(tgt.sh, sess, tgt, err)
			return nil, err
		}
		return nil, h.tree.Put(req.Key, req.Value)
	})
	return err
}

// KVGet fetches a value into a pooled buffer — Release the returned
// Payload after encoding it.
func (svc *Service) KVGet(ctx context.Context, sess *Session, req fsproto.KVGetRequest) (Payload, error) {
	if req.Store == "" {
		return Payload{}, fmt.Errorf("%w: store required", ErrBadRequest)
	}
	tgt := svc.resolve(sess, req.Tenant)
	pl := newPayload(maxKVValue)
	v, err := svc.do(ctx, tgt.sh, tgt.gid, req.Seq, "kv_get", func() (any, error) {
		h, err := tgt.sh.kvHandleFor(sess, tgt.tenant, req.Store, pass(sess, req.Passphrase), fs.ReadAccess)
		if err != nil {
			svc.noteDenial(tgt.sh, sess, tgt, err)
			return nil, err
		}
		return h.tree.Get(req.Key, pl.Data)
	})
	if err != nil {
		// Same rationale as Read: a possibly-still-queued task owns the
		// buffer, so it is dropped rather than pooled.
		return Payload{}, err
	}
	pl.Data = pl.Data[:v.(int)]
	return pl, nil
}

// KVDelete removes a key.
func (svc *Service) KVDelete(ctx context.Context, sess *Session, req fsproto.KVDeleteRequest) (bool, error) {
	if req.Store == "" {
		return false, fmt.Errorf("%w: store required", ErrBadRequest)
	}
	tgt := svc.resolve(sess, req.Tenant)
	v, err := svc.do(ctx, tgt.sh, tgt.gid, req.Seq, "kv_delete", func() (any, error) {
		h, err := tgt.sh.kvHandleFor(sess, tgt.tenant, req.Store, pass(sess, req.Passphrase), fs.WriteAccess)
		if err != nil {
			svc.noteDenial(tgt.sh, sess, tgt, err)
			return nil, err
		}
		return h.tree.Delete(req.Key)
	})
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}
