package server_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fsencr/internal/core"
	"fsencr/internal/fsclient"
	"fsencr/internal/fsproto"
	"fsencr/internal/server"
)

// TestMaliciousClientSmoke runs the protocol-level attack campaign over
// real HTTP: forged/replayed/absent tokens, cross-tenant overrides, wrong
// passphrases, oversized/truncated/forged requests. Every attack must be
// refused with its documented stable code and zero plaintext leaked. CI
// runs this package under -race, so the hostile traffic doubles as a race
// probe of the admission path.
func TestMaliciousClientSmoke(t *testing.T) {
	svc := server.New(server.Options{
		Shards: 2,
		MCMode: core.SchemeFsEncr.MCMode(),
		Access: core.SchemeFsEncr.AccessMode(),
	})
	defer svc.Close()
	hs := httptest.NewServer(svc.Mux())
	defer hs.Close()

	rep, err := fsclient.RunMalice(hs.URL)
	if err != nil {
		t.Fatalf("malice campaign: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("attacks got through:\n%s", rep)
	}
	if len(rep.Attacks) < 10 {
		t.Fatalf("campaign too small: %d attacks", len(rep.Attacks))
	}

	// The hostile traffic must be visible on the security surfaces.
	snap := svc.MetricsSnapshot()
	if snap.Counters["server.auth_failures_total"] == 0 {
		t.Fatal("wrong-passphrase attack left no auth-failure count")
	}
	if snap.Counters["server.cross_tenant_denials_total"] == 0 {
		t.Fatal("cross-tenant attack left no denial count")
	}
	if _, ok := snap.Gauges["journal.drops_total"]; !ok {
		t.Fatal("journal.drops_total missing from the metrics surface")
	}
}

// TestAuditPlane drives tenant traffic, then checks the tamper-evident
// audit plane end to end: records attribute pages to the right tenant,
// every shard's chain verifies, /audit.jsonl exports it, the chain head is
// a metric, and one flipped bit anywhere breaks verification.
func TestAuditPlane(t *testing.T) {
	svc := server.New(server.Options{
		Shards: 2,
		MCMode: core.SchemeFsEncr.MCMode(),
		Access: core.SchemeFsEncr.AccessMode(),
	})
	defer svc.Close()
	hs := httptest.NewServer(svc.Mux())
	defer hs.Close()

	cl := fsclient.Dial(hs.URL)
	if err := cl.Login("audit-tenant", 1, "pw"); err != nil {
		t.Fatalf("login: %v", err)
	}
	if err := cl.Create(fsproto.CreateRequest{Name: "a.dat", Perm: 0600, Size: 8192, Encrypted: true}); err != nil {
		t.Fatalf("create: %v", err)
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := cl.Write(fsproto.WriteRequest{Name: "a.dat", Offset: 0, Data: payload}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := cl.Read(fsproto.ReadRequest{Name: "a.dat", Offset: 0, Length: 4096}); err != nil {
		t.Fatalf("read: %v", err)
	}

	recs := svc.AuditRecords()
	if len(recs) == 0 {
		t.Fatal("no audit records after tenant traffic")
	}
	var sawTenant, sawWrite bool
	for _, r := range recs {
		if r.Group == cl.GID() {
			sawTenant = true
			if r.Op.String() == "write_page" {
				sawWrite = true
			}
		}
	}
	if !sawTenant || !sawWrite {
		t.Fatalf("audit records missing tenant attribution (tenant %v write %v)", sawTenant, sawWrite)
	}
	if err := svc.VerifyAudit(); err != nil {
		t.Fatalf("audit chain broken on honest run: %v", err)
	}

	// Export surface: one JSON object per line, shard-annotated.
	resp, err := http.Get(hs.URL + "/audit.jsonl")
	if err != nil {
		t.Fatalf("GET /audit.jsonl: %v", err)
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("bad audit line %q: %v", sc.Text(), err)
		}
		if _, ok := doc["chain"]; !ok {
			t.Fatalf("audit line missing chain value: %q", sc.Text())
		}
		lines++
	}
	if lines != len(recs) {
		t.Fatalf("/audit.jsonl served %d lines, service holds %d records", lines, len(recs))
	}

	// Chain-head metric per shard.
	snap := svc.MetricsSnapshot()
	head := uint64(0)
	for name, v := range snap.Gauges {
		if strings.HasSuffix(name, ".audit_head_seq") {
			head += v
		}
	}
	if head == 0 {
		t.Fatal("audit_head_seq gauges all zero after traffic")
	}

	// Tamper with one retained record on the shard that served the tenant:
	// verification must break, and restoring the bit must heal it.
	sh := svc.Shards()[fsproto.ShardIndex(cl.GID(), 2)]
	lo := sh.Aud.HeadSeq() - 1
	if !sh.Aud.FlipBit(lo, 13) {
		t.Fatalf("FlipBit refused retained record %d", lo)
	}
	if err := svc.VerifyAudit(); err == nil {
		t.Fatal("tampered audit record not detected")
	}
	sh.Aud.FlipBit(lo, 13)
	if err := svc.VerifyAudit(); err != nil {
		t.Fatalf("restored chain still broken: %v", err)
	}
}
