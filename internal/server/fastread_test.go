package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fsencr/internal/fs"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
)

// TestConcurrentReadEquivalence races N snapshot readers against a live
// writer: every read must observe a consistent page — the pre-write
// pattern or the post-write pattern, never a mix — and the fast path must
// actually have served reads (this is the test that runs under -race in
// `make race`, probing the seqlock protocol's happens-before edges).
func TestConcurrentReadEquivalence(t *testing.T) {
	svc, sess := testReadService(t)
	ctx := context.Background()

	const (
		readers  = 4
		writes   = 40
		pageOff  = 4096
		pageSize = 4096
	)
	old, new_ := byte(0x5A), byte(0xA5)
	oldPage := bytes.Repeat([]byte{old}, pageSize)
	newPage := bytes.Repeat([]byte{new_}, pageSize)

	var stop atomic.Bool
	var mixed atomic.Uint64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "hot.dat", Offset: pageOff, Length: pageSize})
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				first := pl.Data[0]
				if first != old && first != new_ {
					mixed.Add(1)
				} else {
					for _, b := range pl.Data {
						if b != first {
							mixed.Add(1)
							break
						}
					}
				}
				pl.Release()
			}
		}()
	}
	for i := 0; i < writes; i++ {
		data := newPage
		if i%2 == 1 {
			data = oldPage
		}
		if err := svc.Write(ctx, sess, fsproto.WriteRequest{Name: "hot.dat", Offset: pageOff, Data: data}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		// Breathe between writes: back-to-back mutation batches would keep
		// the writer lock nearly always held, and every read would take the
		// (correct, but untested-here) fallback path.
		time.Sleep(200 * time.Microsecond)
	}
	stop.Store(true)
	wg.Wait()

	if n := mixed.Load(); n != 0 {
		t.Fatalf("%d torn reads observed a mix of pre- and post-write bytes", n)
	}
	snap := svc.MetricsSnapshot()
	if snap.Counters["server.fast_reads_total"] == 0 {
		t.Fatal("fast path never served a read during the race")
	}
}

// TestFastReadFanned checks the crypt-pool fan-out: a read spanning the
// whole 4-page file (>= fanMinSpans page spans) decrypts to exactly the
// serial path's plaintext, and the deferred side effects reach the
// controller at the next mutation (counters advance, audit chain intact).
func TestFastReadFanned(t *testing.T) {
	svc, sess := testReadService(t)
	ctx := context.Background()
	sh := svc.shards[0]
	mcReads := func() uint64 {
		// The controller's stats set belongs to the worker; read it there.
		var v uint64
		if err := sh.DoSide(ctx, func() { v = sh.Sys.M.MC.Stats().Get("mc.reads") }); err != nil {
			t.Fatal(err)
		}
		return v
	}

	before := mcReads()
	pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "hot.dat", Offset: 0, Length: 4 * 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range pl.Data {
		if b != 0x5A {
			t.Fatalf("byte %d is %#x, want 0x5A", i, b)
		}
	}
	pl.Release()
	if svc.MetricsSnapshot().Counters["server.fast_reads_total"] == 0 {
		t.Fatal("full-file read did not take the fast path")
	}

	// The read's side effects are deferred until the worker's next
	// mutation: force one and check the controller accounted the lines.
	if err := svc.Write(ctx, sess, fsproto.WriteRequest{Name: "hot.dat", Offset: 0, Data: bytes.Repeat([]byte{0x5A}, 64)}); err != nil {
		t.Fatal(err)
	}
	after := mcReads()
	if after < before+4*64 {
		t.Fatalf("mc.reads %d -> %d, want >= +%d deferred line reads folded in", before, after, 4*64)
	}
	if err := svc.VerifyAudit(); err != nil {
		t.Fatalf("audit chain broken after deferred drain: %v", err)
	}
}

// TestFastReadGating: deterministic shards and -serial-reads services must
// never enter the fast path — not even its fallback branch.
func TestFastReadGating(t *testing.T) {
	t.Run("deterministic", func(t *testing.T) {
		svc := New(Options{
			Shards:        1,
			MCMode:        memctrl.Mode{MemEncryption: true, FileEncryption: true},
			Access:        kernel.ModeDAX,
			Deterministic: true,
		})
		t.Cleanup(svc.Close)
		ctx := context.Background()
		seq := func(n uint64) fsproto.Seq { return &n }
		sess, err := svc.Login(ctx, "acme", 1, "pw", 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Create(ctx, sess, fsproto.CreateRequest{Name: "f.dat", Perm: 0600, Size: 4096, Encrypted: true, Seq: seq(1)}); err != nil {
			t.Fatal(err)
		}
		if err := svc.Write(ctx, sess, fsproto.WriteRequest{Name: "f.dat", Data: bytes.Repeat([]byte{7}, 4096), Seq: seq(2)}); err != nil {
			t.Fatal(err)
		}
		pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "f.dat", Length: 4096, Seq: seq(3)})
		if err != nil {
			t.Fatal(err)
		}
		pl.Release()
		snap := svc.MetricsSnapshot()
		if snap.Counters["server.fast_reads_total"] != 0 || snap.Counters["server.fast_read_fallbacks_total"] != 0 {
			t.Fatalf("deterministic shard entered the fast path: fast %d fallbacks %d",
				snap.Counters["server.fast_reads_total"], snap.Counters["server.fast_read_fallbacks_total"])
		}
	})
	t.Run("serial-reads", func(t *testing.T) {
		svc := New(Options{
			Shards:      1,
			MCMode:      memctrl.Mode{MemEncryption: true, FileEncryption: true},
			Access:      kernel.ModeDAX,
			SerialReads: true,
		})
		t.Cleanup(svc.Close)
		ctx := context.Background()
		sess, err := svc.Login(ctx, "acme", 1, "pw", 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Create(ctx, sess, fsproto.CreateRequest{Name: "f.dat", Perm: 0600, Size: 4096, Encrypted: true}); err != nil {
			t.Fatal(err)
		}
		pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "f.dat", Length: 4096})
		if err != nil {
			t.Fatal(err)
		}
		pl.Release()
		snap := svc.MetricsSnapshot()
		if snap.Counters["server.fast_reads_total"] != 0 || snap.Counters["server.fast_read_fallbacks_total"] != 0 {
			t.Fatal("-serial-reads service entered the fast path")
		}
	})
}

// TestSerialReadsEquivalence: the same read answered by the fast path and
// by a -serial-reads baseline service returns identical plaintext.
func TestSerialReadsEquivalence(t *testing.T) {
	read := func(serial bool) []byte {
		svc := New(Options{
			Shards:      1,
			MCMode:      memctrl.Mode{MemEncryption: true, FileEncryption: true},
			Access:      kernel.ModeDAX,
			SerialReads: serial,
		})
		t.Cleanup(svc.Close)
		ctx := context.Background()
		sess, err := svc.Login(ctx, "acme", 1, "pw-acme", 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Create(ctx, sess, fsproto.CreateRequest{Name: "eq.dat", Perm: 0600, Size: 4 * 4096, Encrypted: true}); err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 4*4096)
		for i := range body {
			body[i] = byte(i * 31)
		}
		if err := svc.Write(ctx, sess, fsproto.WriteRequest{Name: "eq.dat", Data: body}); err != nil {
			t.Fatal(err)
		}
		pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "eq.dat", Offset: 100, Length: 4*4096 - 200})
		if err != nil {
			t.Fatal(err)
		}
		out := append([]byte(nil), pl.Data...)
		pl.Release()
		return out
	}
	fast, serial := read(false), read(true)
	if !bytes.Equal(fast, serial) {
		t.Fatal("fast-path plaintext differs from the serialized baseline")
	}
}

// TestStatOps covers the new stat operation end to end: fast-path values,
// the worker fallback on deterministic shards (no schedule slot consumed),
// and the live error shape for a missing file.
func TestStatOps(t *testing.T) {
	t.Run("fast", func(t *testing.T) {
		svc, sess := testReadService(t)
		resp, err := svc.Stat(context.Background(), sess, fsproto.StatRequest{Name: "hot.dat"})
		if err != nil {
			t.Fatal(err)
		}
		want := fsproto.StatResponse{Name: "acme/hot.dat", Size: 4 * 4096, Perm: 0600, Encrypted: true, Pages: 4}
		if resp != want {
			t.Fatalf("stat = %+v, want %+v", resp, want)
		}
		if svc.MetricsSnapshot().Counters["server.fast_reads_total"] == 0 {
			t.Fatal("stat did not take the fast path")
		}
	})
	t.Run("det-fallback", func(t *testing.T) {
		svc := New(Options{
			Shards:        1,
			MCMode:        memctrl.Mode{MemEncryption: true, FileEncryption: true},
			Access:        kernel.ModeDAX,
			Deterministic: true,
		})
		t.Cleanup(svc.Close)
		ctx := context.Background()
		seq := func(n uint64) fsproto.Seq { return &n }
		sess, err := svc.Login(ctx, "acme", 1, "pw", 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Create(ctx, sess, fsproto.CreateRequest{Name: "s.dat", Perm: 0640, Size: 8192, Encrypted: true, Seq: seq(1)}); err != nil {
			t.Fatal(err)
		}
		// Stat consumes no schedule slot: no seq, and the next sequenced op
		// (2, not 3) must still be admitted afterwards.
		resp, err := svc.Stat(ctx, sess, fsproto.StatRequest{Name: "s.dat"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Size != 8192 || resp.Pages != 2 || resp.Perm != 0640 {
			t.Fatalf("det stat = %+v", resp)
		}
		if err := svc.Write(ctx, sess, fsproto.WriteRequest{Name: "s.dat", Data: []byte{1}, Seq: seq(2)}); err != nil {
			t.Fatalf("write after stat (stat must not consume sequence 2): %v", err)
		}
	})
	t.Run("missing", func(t *testing.T) {
		svc, sess := testReadService(t)
		_, err := svc.Stat(context.Background(), sess, fsproto.StatRequest{Name: "nope.dat"})
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("want ErrNotExist, got %v", err)
		}
	})
}

// TestBusyErrorShape pins the 429 error contract: BusyError unwraps to
// ErrBusy (HTTP mapping and IsCode checks keep working) and renders the
// exact pre-hint message text.
func TestBusyErrorShape(t *testing.T) {
	e := &BusyError{Tenant: 5, Depth: 17}
	if !errors.Is(e, ErrBusy) {
		t.Fatal("BusyError does not unwrap to ErrBusy")
	}
	want := fmt.Sprintf("%s (tenant %d)", ErrBusy, 5)
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}

// TestBusyQueueDepthHeader: the HTTP error writer exports a BusyError's
// queue depth on the 429 response, and omits the header for plain ErrBusy.
func TestBusyQueueDepthHeader(t *testing.T) {
	svc := New(Options{
		Shards: 1,
		MCMode: memctrl.Mode{MemEncryption: true, FileEncryption: true},
		Access: kernel.ModeDAX,
	})
	t.Cleanup(svc.Close)

	rec := httptest.NewRecorder()
	if status := svc.writeError(rec, &BusyError{Tenant: 3, Depth: 42}); status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", status)
	}
	if got := rec.Header().Get(fsproto.QueueDepthHeader); got != "42" {
		t.Fatalf("queue-depth header %q, want \"42\"", got)
	}

	rec = httptest.NewRecorder()
	svc.writeError(rec, ErrBusy)
	if got := rec.Header().Get(fsproto.QueueDepthHeader); got != "" {
		t.Fatalf("bare ErrBusy must carry no hint, got %q", got)
	}
}

// TestReadScalingGuard is the read-concurrency acceptance gate: on a host
// with >= 4 cores, 8 concurrent readers on one shard must sustain at least
// 2x the single-reader throughput. Runs only under FSENCR_OVERHEAD_GUARD=1
// (make overhead-guard) — wall-clock throughput ratios are meaningless on
// loaded CI executors.
func TestReadScalingGuard(t *testing.T) {
	if os.Getenv("FSENCR_OVERHEAD_GUARD") == "" {
		t.Skip("set FSENCR_OVERHEAD_GUARD=1 to run throughput guards")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 cores for a meaningful scaling ratio, have %d", runtime.NumCPU())
	}
	svc, sess := testReadService(t)
	ctx := context.Background()

	read := func() {
		pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "hot.dat", Offset: 0, Length: 4 * 4096})
		if err != nil {
			t.Error(err)
		}
		pl.Release()
	}
	throughput := func(goroutines, opsEach int) float64 {
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsEach; i++ {
					read()
				}
			}()
		}
		wg.Wait()
		return float64(goroutines*opsEach) / time.Since(start).Seconds()
	}

	// Warm up: fault pages, fill pools, install the OTT entry.
	for i := 0; i < 16; i++ {
		read()
	}
	const opsEach = 400
	// Best-of-3 on both sides discards scheduler noise.
	var single, eight float64
	for i := 0; i < 3; i++ {
		if v := throughput(1, opsEach); v > single {
			single = v
		}
		if v := throughput(8, opsEach); v > eight {
			eight = v
		}
	}
	t.Logf("single-reader %.0f ops/s, 8-reader %.0f ops/s (%.2fx)", single, eight, eight/single)
	if eight < 2*single {
		t.Fatalf("8-reader throughput %.0f ops/s < 2x single-reader %.0f ops/s", eight, single)
	}
}

// BenchmarkServerParallelRead measures the concurrent read fast-path: all
// procs reading one shard's encrypted file through the full service path
// (payload pool, seqlock, snapshot decrypt, deferred deltas).
func BenchmarkServerParallelRead(b *testing.B) {
	svc, sess := testReadService(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pl, err := svc.Read(ctx, sess, fsproto.ReadRequest{Name: "hot.dat", Offset: 0, Length: 4096})
			if err != nil {
				b.Fatal(err)
			}
			pl.Release()
		}
	})
}
