package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"fsencr/internal/fs"
	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/kvstore"
	"fsencr/internal/obsplane"
)

// maxBodyBytes bounds one request body (a page of payload plus JSON
// overhead).
const maxBodyBytes = 1 << 20

// httpStatus maps service errors onto (status, stable code).
func httpStatus(err error) (int, string) {
	var wse *WrongShardError
	if errors.As(err, &wse) {
		return http.StatusMisdirectedRequest, fsproto.CodeEpochMismatch
	}
	switch {
	case errors.Is(err, ErrAuth):
		return http.StatusUnauthorized, fsproto.CodeAuth
	case errors.Is(err, kernel.ErrWrongPassphrase):
		return http.StatusForbidden, fsproto.CodeWrongPassphrase
	case errors.Is(err, kernel.ErrPermission), errors.Is(err, fs.ErrPermEperm):
		return http.StatusForbidden, fsproto.CodePermission
	case errors.Is(err, fs.ErrNotExist), errors.Is(err, kvstore.ErrNotFound):
		return http.StatusNotFound, fsproto.CodeNotFound
	case errors.Is(err, fs.ErrExists):
		return http.StatusConflict, fsproto.CodeExists
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests, fsproto.CodeBusy
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, fsproto.CodeDraining
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, fsproto.CodeTimeout
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, fsproto.CodeBadRequest
	default:
		return http.StatusInternalServerError, fsproto.CodeInternal
	}
}

// writeJSON encodes the response body. An encode/write failure after the
// status line went out cannot be reported to the client; it is counted
// (server.response_encode_errors_total) so a flood of broken responses is
// visible on the metrics surface instead of vanishing.
func (svc *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		svc.cEncErrs.Inc()
	}
}

// writeError answers with the error's JSON body and returns the HTTP
// status it used (the SLO plane scores requests by it).
func (svc *Service) writeError(w http.ResponseWriter, err error) int {
	status, code := httpStatus(err)
	svc.cErrs.Inc()
	if code == fsproto.CodeBusy {
		svc.cBusy.Inc()
		// Export the rejecting shard's queue depth so the client's retry
		// policy can back off proportionally to actual congestion. Must be
		// set before writeJSON commits the status line.
		var be *BusyError
		if errors.As(err, &be) {
			w.Header().Set(fsproto.QueueDepthHeader, strconv.FormatInt(be.Depth, 10))
		}
	}
	svc.writeJSON(w, status, fsproto.Error{Code: code, Message: err.Error()})
	return status
}

// traceContext parses the client's trace header, minting a server-side
// (unsampled) ID when absent so every response carries an X-Request-Id.
func (svc *Service) traceContext(r *http.Request) fsproto.TraceContext {
	if tc, ok := fsproto.ParseTraceContext(r.Header.Get(fsproto.TraceHeader)); ok {
		return tc
	}
	return fsproto.TraceContext{TraceID: svc.mintServerTraceID()}
}

// decode reads and unmarshals a bounded JSON body.
func decode(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// handler is an authenticated API endpoint.
type handler func(sess *Session, r *http.Request) (any, error)

// pooledResponse carries a response body whose payload aliases a pooled
// buffer; endpoint releases it once the JSON encoder has consumed it.
type pooledResponse struct {
	v  any
	pl Payload
}

// endpoint wraps a handler with method check, latency observation, trace
// propagation, session resolution, and per-tenant SLO accounting.
func (svc *Service) endpoint(h handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		svc.cReqs.Inc()
		tc := svc.traceContext(r)
		w.Header().Set(fsproto.RequestIDHeader, fsproto.FormatRequestID(tc.TraceID))
		r = r.WithContext(WithTrace(r.Context(), tc))
		status := http.StatusOK
		var sess *Session
		defer func() {
			dur := time.Since(start)
			svc.hReqNs.Observe(uint64(dur))
			svc.noteRequest(sess, dur, status)
		}()
		if r.Method != http.MethodPost {
			status = svc.writeError(w, fmt.Errorf("%w: POST required", ErrBadRequest))
			return
		}
		// Buffer the body up front: a misrouted request may need proxying
		// to the shard's current owner, body and all.
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			status = svc.writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		sess, err = svc.session(r.Header.Get(fsproto.TokenHeader))
		if err != nil && errors.Is(err, errBadToken) {
			sess, err = svc.peerSession(r)
		}
		if err != nil {
			if st, ok := svc.tryForward(w, r, body, nil, err); ok {
				status = st
				return
			}
			status = svc.writeError(w, err)
			return
		}
		v, err := h(sess, r)
		if err != nil {
			if st, ok := svc.tryForward(w, r, body, sess, err); ok {
				status = st
				return
			}
			status = svc.writeError(w, err)
			return
		}
		if pr, ok := v.(pooledResponse); ok {
			svc.writeJSON(w, http.StatusOK, pr.v)
			pr.pl.Release()
			return
		}
		if v == nil {
			v = fsproto.OKResponse{OK: true}
		}
		svc.writeJSON(w, http.StatusOK, v)
	}
}

// tryForward proxies a misrouted request (WrongShardError) to the
// shard's current owner, one hop at most — the ForwardedHeader loop
// guard keeps two stale nodes from bouncing a request between them.
// When the request's session is homed here (a cross-tenant op targeting
// a remote shard) the session identity rides along as peer headers so
// the owner can admit it under a shadow session. Returns ok=false to
// fall through to the ordinary 421, which a cluster-aware client
// answers by refreshing its routing table.
func (svc *Service) tryForward(w http.ResponseWriter, r *http.Request, body []byte, sess *Session, err error) (int, bool) {
	var wse *WrongShardError
	if !errors.As(err, &wse) {
		return 0, false
	}
	if r.Header.Get(fsproto.ForwardedHeader) != "" {
		return 0, false
	}
	f := svc.forwarder()
	if f == nil {
		return 0, false
	}
	base, ok := f(wse.Shard)
	if !ok || base == "" {
		return 0, false
	}
	req, rerr := http.NewRequestWithContext(r.Context(), http.MethodPost, base+r.URL.Path, bytes.NewReader(body))
	if rerr != nil {
		return 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(fsproto.ForwardedHeader, "1")
	if tok := r.Header.Get(fsproto.TokenHeader); tok != "" {
		req.Header.Set(fsproto.TokenHeader, tok)
	}
	if sess != nil {
		req.Header.Set(fsproto.PeerTenantHeader, sess.tenant)
		req.Header.Set(fsproto.PeerUIDHeader, strconv.FormatUint(uint64(sess.uid), 10))
		req.Header.Set(fsproto.PeerPassHeader, sess.pass)
	}
	if tc := r.Header.Get(fsproto.TraceHeader); tc != "" {
		req.Header.Set(fsproto.TraceHeader, tc)
	}
	resp, rerr := svc.fwdHC.Do(req)
	if rerr != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if _, cerr := io.Copy(w, resp.Body); cerr != nil {
		svc.cEncErrs.Inc()
	}
	svc.cFwd.Inc()
	return resp.StatusCode, true
}

func (svc *Service) handleLogin(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	svc.cReqs.Inc()
	tc := svc.traceContext(r)
	w.Header().Set(fsproto.RequestIDHeader, fsproto.FormatRequestID(tc.TraceID))
	status := http.StatusOK
	var sess *Session
	defer func() {
		dur := time.Since(start)
		svc.hReqNs.Observe(uint64(dur))
		svc.noteRequest(sess, dur, status)
	}()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		status = svc.writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	var req fsproto.LoginRequest
	if err := json.Unmarshal(body, &req); err != nil {
		status = svc.writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	ctx, cancel := context.WithTimeout(WithTrace(r.Context(), tc), svc.opts.RequestTimeout)
	defer cancel()
	var seq uint64
	if req.Seq != nil {
		seq = *req.Seq
	}
	sess, err = svc.Login(ctx, req.Tenant, req.UID, req.Passphrase, seq)
	if err != nil {
		if st, ok := svc.tryForward(w, r, body, nil, err); ok {
			status = st
			return
		}
		status = svc.writeError(w, err)
		return
	}
	svc.writeJSON(w, http.StatusOK, fsproto.LoginResponse{
		Token: sess.token,
		GID:   sess.gid,
		Shard: fsproto.ShardIndex(sess.gid, svc.nShards),
	})
}

// handleShardsProm serves every shard's deterministic snapshot in
// Prometheus text format, one "# shard N" section each — the surface the
// determinism acceptance check byte-compares across reruns.
func (svc *Service) handleShardsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, sh := range svc.shardList() {
		fmt.Fprintf(w, "# shard %d\n", sh.ID())
		if err := sh.Snapshot().WritePrometheus(w); err != nil {
			svc.cEncErrs.Inc()
			return
		}
	}
}

// handleShardsJSON serves the same state as JSON.
func (svc *Service) handleShardsJSON(w http.ResponseWriter, _ *http.Request) {
	type shardDoc struct {
		Shard    int `json:"shard"`
		Snapshot any `json:"snapshot"`
	}
	shards := svc.shardList()
	docs := make([]shardDoc, 0, len(shards))
	for _, sh := range shards {
		docs = append(docs, shardDoc{Shard: sh.ID(), Snapshot: sh.Snapshot().WithoutSpans()})
	}
	svc.writeJSON(w, http.StatusOK, docs)
}

// Mux returns the full fsencrd route set: the /v1 API, the per-shard
// determinism surfaces, and the live observability plane (/metrics,
// /snapshot.json, /trace.json, /journal.jsonl, /audit.jsonl, /healthz,
// /debug/pprof) backed by the service's merged telemetry, journals, and
// audit logs.
func (svc *Service) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/login", svc.handleLogin)
	mux.HandleFunc("/v1/logout", svc.endpoint(func(sess *Session, _ *http.Request) (any, error) {
		svc.Logout(sess.token)
		return nil, nil
	}))
	mux.HandleFunc("/v1/create", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.CreateRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		return nil, svc.Create(r.Context(), sess, req)
	}))
	mux.HandleFunc("/v1/read", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.ReadRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		pl, err := svc.Read(r.Context(), sess, req)
		if err != nil {
			return nil, err
		}
		return pooledResponse{v: fsproto.ReadResponse{Data: pl.Data}, pl: pl}, nil
	}))
	mux.HandleFunc("/v1/stat", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.StatRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		resp, err := svc.Stat(r.Context(), sess, req)
		if err != nil {
			return nil, err
		}
		return resp, nil
	}))
	mux.HandleFunc("/v1/write", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.WriteRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		return nil, svc.Write(r.Context(), sess, req)
	}))
	mux.HandleFunc("/v1/chmod", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.ChmodRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		return nil, svc.Chmod(r.Context(), sess, req)
	}))
	mux.HandleFunc("/v1/delete", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.DeleteRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		return nil, svc.Delete(r.Context(), sess, req)
	}))
	mux.HandleFunc("/v1/kv/create", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.KVCreateRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		return nil, svc.KVCreate(r.Context(), sess, req)
	}))
	mux.HandleFunc("/v1/kv/put", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.KVPutRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		return nil, svc.KVPut(r.Context(), sess, req)
	}))
	mux.HandleFunc("/v1/kv/get", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.KVGetRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		pl, err := svc.KVGet(r.Context(), sess, req)
		if err != nil {
			return nil, err
		}
		return pooledResponse{v: fsproto.KVGetResponse{Value: pl.Data}, pl: pl}, nil
	}))
	mux.HandleFunc("/v1/kv/delete", svc.endpoint(func(sess *Session, r *http.Request) (any, error) {
		var req fsproto.KVDeleteRequest
		if err := decode(r, &req); err != nil {
			return nil, err
		}
		existed, err := svc.KVDelete(r.Context(), sess, req)
		if err != nil {
			return nil, err
		}
		return fsproto.KVDeleteResponse{Existed: existed}, nil
	}))
	mux.HandleFunc("/shards.prom", svc.handleShardsProm)
	mux.HandleFunc("/shards.json", svc.handleShardsJSON)

	obs := obsplane.NewServer(obsplane.Options{
		Snapshot: svc.MetricsSnapshot,
		Journal:  svc.JournalEvents,
		Audit:    svc.AuditRecords,
	})
	mux.Handle("/", obs.Handler())
	return mux
}
