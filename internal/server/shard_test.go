package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fsencr/internal/config"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
)

func testShard(t *testing.T, det bool, perTenant int) *Shard {
	t.Helper()
	sh := NewShard(0, config.Default(), memctrl.Mode{MemEncryption: true, FileEncryption: true},
		kernel.ModeDAX, det, perTenant, nil)
	t.Cleanup(sh.Close)
	return sh
}

// TestShardDeterministicReorder submits a schedule out of order from many
// goroutines and checks the worker executes it strictly in sequence order.
func TestShardDeterministicReorder(t *testing.T) {
	sh := testShard(t, true, 0)
	const n = 32
	var mu sync.Mutex
	var got []uint64
	var wg sync.WaitGroup
	// Launch in reverse so arrival order fights admission order.
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			_, err := sh.Do(context.Background(), 1, seq, func() (any, error) {
				mu.Lock()
				got = append(got, seq)
				mu.Unlock()
				return nil, nil
			})
			if err != nil {
				t.Errorf("seq %d: %v", seq, err)
			}
		}(uint64(i))
		// Give later sequence numbers a head start at the ingress channel.
		if i == n-1 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	wg.Wait()
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("execution order %v: position %d got seq %d", got, i, s)
		}
	}
}

// TestShardFairRoundRobin blocks the worker, queues a burst from tenant A
// and a burst from tenant B, and checks service alternates instead of
// draining A first.
func TestShardFairRoundRobin(t *testing.T) {
	sh := testShard(t, false, 0)
	gate := make(chan struct{})
	done := make(chan struct{})
	go sh.Do(context.Background(), 99, 0, func() (any, error) {
		close(done)
		<-gate
		return nil, nil
	})
	<-done // worker is now parked inside tenant 99's task

	var mu sync.Mutex
	var order []uint32
	var wg sync.WaitGroup
	enqueue := func(tenant uint32, k int) {
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sh.Do(context.Background(), tenant, 0, func() (any, error) {
					mu.Lock()
					order = append(order, tenant)
					mu.Unlock()
					return nil, nil
				})
			}()
		}
	}
	enqueue(1, 4)
	enqueue(2, 4)
	// Wait until all 8 are admitted (sitting in ingress/queues).
	deadline := time.Now().Add(2 * time.Second)
	for sh.depth.Load() < 9 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	// Round-robin must not serve one tenant's whole burst first: within the
	// first half of servings both tenants appear.
	half := order[:len(order)/2]
	seen := map[uint32]bool{}
	for _, tnt := range half {
		seen[tnt] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("first half served only one tenant: %v", order)
	}
}

// TestShardBackpressure fills one tenant's admission slots and checks the
// next request bounces with ErrBusy once its context expires, while the
// other tenant still gets in.
func TestShardBackpressure(t *testing.T) {
	sh := testShard(t, false, 2)
	gate := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.Do(context.Background(), 1, 0, func() (any, error) {
				startedOnce.Do(func() { close(started) })
				<-gate
				return nil, nil
			})
		}()
	}
	<-started
	// Wait until both requests hold admission slots (one executing, one
	// queued): tenant 1's two slots are now taken.
	deadline := time.Now().Add(2 * time.Second)
	for sh.depth.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := sh.Do(ctx, 1, 0, func() (any, error) { return nil, nil }); !errors.Is(err, ErrBusy) {
		t.Fatalf("tenant 1 third request: want ErrBusy, got %v", err)
	}
	// Tenant 2 is not affected by tenant 1's backpressure (it queues behind
	// the parked worker but is admitted immediately).
	ok := make(chan error, 1)
	go func() {
		_, err := sh.Do(context.Background(), 2, 0, func() (any, error) { return nil, nil })
		ok <- err
	}()
	close(gate)
	wg.Wait()
	if err := <-ok; err != nil {
		t.Fatalf("tenant 2 request failed under tenant 1 backpressure: %v", err)
	}
}

// TestShardDrain checks Close answers every admitted task and subsequent
// submissions get ErrDraining.
func TestShardDrain(t *testing.T) {
	sh := testShard(t, false, 0)
	var served int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.Do(context.Background(), uint32(1+i%3), 0, func() (any, error) {
				mu.Lock()
				served++
				mu.Unlock()
				return nil, nil
			})
		}()
	}
	wg.Wait()
	sh.Close()
	if _, err := sh.Do(context.Background(), 1, 0, func() (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Close Do: want ErrDraining, got %v", err)
	}
	if served != 16 {
		t.Fatalf("served %d of 16 before drain", served)
	}
	sh.Close() // idempotent
}
