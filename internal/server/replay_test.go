package server

import (
	"bytes"
	"context"
	"testing"

	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
)

// seqFor hands out per-shard deterministic schedule sequence numbers.
type seqFor struct {
	next map[int]uint64
	n    int
}

func newSeqFor(nShards int) *seqFor { return &seqFor{next: make(map[int]uint64), n: nShards} }

func (s *seqFor) take(gid uint32) *uint64 {
	idx := fsproto.ShardIndex(gid, s.n)
	v := s.next[idx]
	s.next[idx] = v + 1
	return &v
}

// tenantOnShard finds a tenant name hashing onto the wanted global shard.
func tenantOnShard(t *testing.T, want, nShards int, taken map[string]bool) string {
	t.Helper()
	names := []string{"acme", "globex", "initech", "umbrella", "wayne", "stark", "hooli", "soylent", "tyrell", "wonka"}
	for _, n := range names {
		if taken[n] {
			continue
		}
		if fsproto.ShardIndex(fsproto.TenantGID(n), nShards) == want {
			taken[n] = true
			return n
		}
	}
	t.Fatalf("no test tenant hashes onto shard %d/%d", want, nShards)
	return ""
}

// clusterTestOptions is the two-shard deterministic logging configuration
// the replay tests run under.
func clusterTestOptions() Options {
	return Options{
		Shards:          2,
		MCMode:          memctrl.Mode{MemEncryption: true, FileEncryption: true},
		Access:          kernel.ModeDAX,
		Deterministic:   true,
		AdmissionLog:    true,
		ChipSeqBase:     DefaultChipSeqBase,
		CheckpointEvery: 4,
	}
}

// runReplayWorkload drives a mixed workload (logins, file ops, KV ops, a
// cross-tenant denial) against svc and returns the sessions by tenant.
func runReplayWorkload(t *testing.T, svc *Service, seqs *seqFor, tA, tB string) map[string]*Session {
	t.Helper()
	ctx := context.Background()
	sess := make(map[string]*Session)
	for _, tn := range []string{tA, tB} {
		gid := fsproto.TenantGID(tn)
		s, err := svc.Login(ctx, tn, 1, "pw-"+tn, *seqs.take(gid))
		if err != nil {
			t.Fatalf("login %s: %v", tn, err)
		}
		sess[tn] = s
	}
	for _, tn := range []string{tA, tB} {
		s := sess[tn]
		if err := svc.Create(ctx, s, fsproto.CreateRequest{
			Name: "data.bin", Perm: 0600, Size: 2 * 4096, Encrypted: true, Seq: seqs.take(s.gid),
		}); err != nil {
			t.Fatalf("create %s: %v", tn, err)
		}
		payload := bytes.Repeat([]byte{byte(len(tn))}, 4096)
		if err := svc.Write(ctx, s, fsproto.WriteRequest{
			Name: "data.bin", Data: payload, Seq: seqs.take(s.gid),
		}); err != nil {
			t.Fatalf("write %s: %v", tn, err)
		}
		if err := svc.KVCreate(ctx, s, fsproto.KVCreateRequest{
			Store: "kv", Size: 16 * 4096, Seq: seqs.take(s.gid),
		}); err != nil {
			t.Fatalf("kv create %s: %v", tn, err)
		}
		for i := 0; i < 6; i++ {
			if err := svc.KVPut(ctx, s, fsproto.KVPutRequest{
				Store: "kv", Key: uint64(i), Value: bytes.Repeat([]byte{byte(i)}, 64),
				Seq: seqs.take(s.gid),
			}); err != nil {
				t.Fatalf("kv put %s/%d: %v", tn, i, err)
			}
		}
		pl, err := svc.Read(ctx, s, fsproto.ReadRequest{Name: "data.bin", Length: 4096, Seq: seqs.take(s.gid)})
		if err != nil {
			t.Fatalf("read %s: %v", tn, err)
		}
		pl.Release()
	}
	// Cross-tenant denial: tA probing tB's file with the wrong passphrase
	// lands (and is journaled) on tB's shard, in schedule order.
	err := svc.Write(ctx, sess[tA], fsproto.WriteRequest{
		Name: "data.bin", Tenant: tB, Data: []byte{1}, Passphrase: "wrong",
		Seq: seqs.take(fsproto.TenantGID(tB)),
	})
	if err == nil {
		t.Fatal("cross-tenant write with wrong passphrase must fail")
	}
	return sess
}

func promBytes(t *testing.T, sh *Shard) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sh.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("prometheus export: %v", err)
	}
	return buf.Bytes()
}

// TestReplayRebuildsShard freezes a logged deterministic shard, exports
// its state, and installs it into a second (empty) node: the replayed
// shard must reproduce the source's Merkle root, pass the recovery gate,
// serve the migrated sessions, and emit a byte-identical /shards.prom
// section.
func TestReplayRebuildsShard(t *testing.T) {
	optsA := clusterTestOptions()
	svcA := New(optsA)
	defer svcA.Close()
	taken := map[string]bool{}
	tA := tenantOnShard(t, 0, 2, taken)
	tB := tenantOnShard(t, 1, 2, taken)
	seqs := newSeqFor(2)
	sess := runReplayWorkload(t, svcA, seqs, tA, tB)

	// Freeze + export shard 1 (tB's home).
	mig, err := svcA.FreezeShard(context.Background(), 1)
	if err != nil {
		t.Fatalf("freeze: %v", err)
	}
	st, err := mig.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if len(st.Records) == 0 || st.Image == nil {
		t.Fatalf("export is empty: %d records, image=%v", len(st.Records), st.Image)
	}
	srcProm := promBytes(t, svcA.Shards()[1])

	// Install on node B, which owns nothing yet.
	optsB := clusterTestOptions()
	optsB.OwnedShards = []int{}
	optsB.ClusterShards = 2
	optsB.TokenPrefix = "b"
	svcB := New(optsB)
	defer svcB.Close()
	if err := svcB.InstallShard(st); err != nil {
		t.Fatalf("install: %v", err)
	}
	shB := svcB.Shards()[0]
	if shB.ID() != 1 {
		t.Fatalf("installed shard has id %d, want 1", shB.ID())
	}
	if got := promBytes(t, shB); !bytes.Equal(got, srcProm) {
		t.Fatalf("replayed shard snapshot differs from source:\n--- source ---\n%s\n--- replayed ---\n%s", srcProm, got)
	}
	mig.Commit(1)
	svcA.SetClusterEpoch(1)

	// The migrated session keeps working on the new node with its old
	// token, continuing the deterministic schedule where the source
	// stopped.
	sB, err := svcB.session(sess[tB].Token())
	if err != nil {
		t.Fatalf("migrated session not found on target: %v", err)
	}
	seq := st.DetNext
	pl, err := svcB.Read(context.Background(), sB, fsproto.ReadRequest{Name: "data.bin", Length: 4096, Seq: &seq})
	if err != nil {
		t.Fatalf("post-migration read: %v", err)
	}
	defer pl.Release()
	want := bytes.Repeat([]byte{byte(len(tB))}, 4096)
	if !bytes.Equal(pl.Data, want) {
		t.Fatalf("post-migration read returned wrong bytes")
	}

	// The source answers the tombstoned token with the routing error.
	if _, err := svcA.session(sess[tB].Token()); err == nil {
		t.Fatal("source still resolves the migrated session")
	} else if wse, ok := err.(*WrongShardError); !ok || wse.Shard != 1 {
		t.Fatalf("want WrongShardError{Shard:1}, got %v", err)
	}
	// And routes the tenant's shard with the same error.
	if _, err := svcA.shardFor(fsproto.TenantGID(tB)); err == nil {
		t.Fatal("source still owns the migrated shard")
	}
}

// TestReplayDivergenceDetected corrupts one logged write and checks the
// next checkpoint catches the replica's divergence.
func TestReplayDivergenceDetected(t *testing.T) {
	opts := clusterTestOptions()
	svcA := New(opts)
	defer svcA.Close()
	taken := map[string]bool{}
	tA := tenantOnShard(t, 0, 2, taken)
	tB := tenantOnShard(t, 1, 2, taken)
	seqs := newSeqFor(2)
	runReplayWorkload(t, svcA, seqs, tA, tB)
	mig, err := svcA.FreezeShard(context.Background(), 1)
	if err != nil {
		t.Fatalf("freeze: %v", err)
	}
	st, err := mig.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	mig.Resume()
	// Flip a byte inside the first logged write's payload.
	tampered := false
	for i := range st.Records {
		if st.Records[i].Kind == "write" && len(st.Records[i].Req) > 0 {
			raw := append([]byte(nil), st.Records[i].Req...)
			if j := bytes.Index(raw, []byte(`"data"`)); j >= 0 && j+20 < len(raw) {
				raw[j+10] ^= 1
				st.Records[i].Req = raw
				tampered = true
				break
			}
		}
	}
	if !tampered {
		t.Skip("no tamperable write record found")
	}
	optsB := clusterTestOptions()
	optsB.OwnedShards = []int{}
	optsB.TokenPrefix = "b"
	svcB := New(optsB)
	defer svcB.Close()
	if err := svcB.InstallShard(st); err == nil {
		t.Fatal("install of a tampered log must fail")
	}
}
