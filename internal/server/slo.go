// slo.go: request-trace context propagation and the per-tenant SLO plane.
//
// The HTTP layer parses the client's TraceContext into the request context;
// ops.go forwards it into shard admission. Separately, every completed
// request is scored against the tenant's latency SLO on the host-side
// (wall-clock) registry: a per-tenant latency histogram feeds p50/p99/p999
// gauges, and a good/bad counter pair feeds an error-budget burn-rate
// gauge. "Bad" means server-fault or over-latency — expected denials
// (4xx: permission, wrong passphrase, busy) do not burn a tenant's budget.
package server

import (
	"context"
	"sync"
	"time"

	"fsencr/internal/fsproto"
	"fsencr/internal/telemetry"
)

type traceCtxKey struct{}

// WithTrace returns ctx carrying the request's trace context.
func WithTrace(ctx context.Context, tc fsproto.TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context (zero value when absent).
func TraceFromContext(ctx context.Context) fsproto.TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(fsproto.TraceContext)
	return tc
}

// SLO defaults: requests finishing within the latency bound count toward
// the objective fraction of good requests.
const (
	DefaultSLOLatency   = 50 * time.Millisecond
	DefaultSLOObjective = 0.99
)

// tenantSLO is one tenant's host-side SLO accounting.
type tenantSLO struct {
	name  string
	hNs   *telemetry.Histogram
	cGood *telemetry.Counter
	cBad  *telemetry.Counter
}

// sloTable tracks per-tenant SLO state, created at first login.
type sloTable struct {
	mu      sync.RWMutex
	tenants map[string]*tenantSLO
	reg     *telemetry.Registry
}

func newSLOTable(reg *telemetry.Registry) *sloTable {
	return &sloTable{tenants: make(map[string]*tenantSLO), reg: reg}
}

// tenant returns (creating if needed) the tenant's SLO record.
func (t *sloTable) tenant(name string) *tenantSLO {
	t.mu.RLock()
	ts, ok := t.tenants[name]
	t.mu.RUnlock()
	if ok {
		return ts
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts, ok = t.tenants[name]; ok {
		return ts
	}
	prefix := "server.tenant." + name + "."
	ts = &tenantSLO{
		name:  name,
		hNs:   t.reg.Histogram(prefix + "request_ns"),
		cGood: t.reg.Counter(prefix + "slo_good_total"),
		cBad:  t.reg.Counter(prefix + "slo_bad_total"),
	}
	t.tenants[name] = ts
	return ts
}

// names returns the registered tenant names (unordered).
func (t *sloTable) names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.tenants))
	for n := range t.tenants {
		out = append(out, n)
	}
	return out
}

// noteRequest scores one completed request for the session's tenant.
// status is the HTTP status the handler answered with; dur is wall-clock.
func (svc *Service) noteRequest(sess *Session, dur time.Duration, status int) {
	if sess == nil {
		return
	}
	ts := svc.slo.tenant(sess.tenant)
	ts.hNs.Observe(uint64(dur))
	// Bad = the service failed the tenant: a 5xx answer (internal fault or
	// timeout) or an over-latency success. Expected 4xx denials — the
	// security model working as designed — stay good.
	if status >= 500 || (status < 400 && dur > svc.opts.SLOLatency) {
		ts.cBad.Inc()
		return
	}
	ts.cGood.Inc()
}

// injectSLOGauges computes the derived per-tenant gauges into an already
// captured snapshot: latency quantiles from the tenant's histogram and the
// error-budget burn rate from the good/bad counters. Burn is expressed in
// milli-units: 1000 means bad requests are arriving exactly at the budget
// rate (1 - objective); 0 means no burn.
func (svc *Service) injectSLOGauges(out *telemetry.Snapshot) {
	budget := 1 - svc.opts.SLOObjective
	if budget <= 0 {
		budget = 1 - DefaultSLOObjective
	}
	for _, name := range svc.slo.names() {
		prefix := "server.tenant." + name + "."
		if h := out.Histograms[prefix+"request_ns"]; h != nil && h.Count > 0 {
			out.Gauges[prefix+"p50_ns"] = uint64(h.Quantile(0.50))
			out.Gauges[prefix+"p99_ns"] = uint64(h.Quantile(0.99))
			out.Gauges[prefix+"p999_ns"] = uint64(h.Quantile(0.999))
		}
		good := out.Counters[prefix+"slo_good_total"]
		bad := out.Counters[prefix+"slo_bad_total"]
		burn := uint64(0)
		if total := good + bad; total > 0 {
			badFrac := float64(bad) / float64(total)
			burn = uint64(badFrac / budget * 1000)
		}
		out.Gauges[prefix+"slo_burn_milli"] = burn
	}
}

// mintServerTraceID derives a trace ID for requests arriving without one,
// so every response still carries a joinable X-Request-Id.
func (svc *Service) mintServerTraceID() uint64 {
	return telemetry.MintTraceID(svc.traceBase, svc.traceSeq.Add(1))
}
