package server_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"fsencr/internal/core"
	"fsencr/internal/fsclient"
	"fsencr/internal/fsproto"
	"fsencr/internal/server"
)

const (
	smokeShards  = 2
	smokeClients = 8
	smokeTenants = 2
	smokeOps     = 24
	smokeSeed    = 7
)

// runSmoke boots a deterministic fsencrd, drives the load generator
// against it over real HTTP, and returns the loadgen report plus the
// per-shard deterministic telemetry in Prometheus text form. It also
// performs the insider ciphertext check and the graceful-drain check
// before tearing the server down.
func runSmoke(t *testing.T) (*fsclient.LoadgenReport, []byte) {
	t.Helper()
	svc := server.New(server.Options{
		Shards:        smokeShards,
		MCMode:        core.SchemeFsEncr.MCMode(),
		Access:        core.SchemeFsEncr.AccessMode(),
		Deterministic: true,
	})
	hs := httptest.NewServer(svc.Mux())
	defer hs.Close()

	rep, err := fsclient.RunLoadgen(hs.URL, fsclient.LoadgenOptions{
		Clients:       smokeClients,
		Tenants:       smokeTenants,
		Ops:           smokeOps,
		Mix:           "3:1",
		Seed:          smokeSeed,
		Deterministic: true,
		Shards:        smokeShards,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	// Per-shard deterministic snapshot, captured while the shards are
	// quiescent (loadgen is synchronous) and before the writeback below
	// perturbs machine state.
	resp, err := http.Get(hs.URL + "/shards.prom")
	if err != nil {
		t.Fatalf("GET /shards.prom: %v", err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read /shards.prom: %v", err)
	}

	// Insider dump check: with every line written back to NVM, decrypting
	// client 0's first page with the memory key alone must not expose its
	// plaintext pattern — the file OTP is still on it.
	gid := fsproto.TenantGID("tenant00")
	sh := svc.Shards()[fsproto.ShardIndex(gid, smokeShards)]
	sh.Sys.M.WritebackAll()
	f, err := sh.Sys.FS.Lookup("tenant00/f000.dat")
	if err != nil {
		t.Fatalf("lookup client 0 file: %v", err)
	}
	pa, err := f.PagePA(0)
	if err != nil {
		t.Fatalf("page 0 PA: %v", err)
	}
	line := sh.Sys.M.MC.DecryptWithMemoryKeyOnly(pa.WithDF())
	if pat := bytes.Repeat([]byte{fsclient.Pattern(0)}, 16); bytes.Contains(line[:], pat) {
		t.Fatal("memory key alone exposed file plaintext in NVM dump")
	}

	// Graceful drain: Close returns with every admitted request answered,
	// and new work is refused with the draining code.
	svc.Close()
	cl := fsclient.Dial(hs.URL)
	if err := cl.Login("tenant00", 99, "pw", 0); !fsclient.IsCode(err, fsproto.CodeDraining) {
		t.Fatalf("post-drain login: want draining, got %v", err)
	}
	return rep, prom
}

// TestFsencrdSmoke is the CI gate for the file service: real HTTP clients,
// zero cross-tenant leaks, ciphertext-only on insider dump, graceful
// drain, no goroutine leaks, and byte-identical per-shard telemetry across
// two identically-scheduled runs.
func TestFsencrdSmoke(t *testing.T) {
	before := runtime.NumGoroutine()

	rep, prom1 := runSmoke(t)
	if rep.Leaks != 0 {
		t.Fatalf("%d cross-tenant leaks: %s", rep.Leaks, rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d unexpected errors (first: %s)", rep.Errors, rep.FirstError)
	}
	wantProbes := uint64(smokeClients * (smokeOps / 8)) // CrossEvery defaults to 8
	if rep.CrossProbes != wantProbes || rep.CrossDenied != wantProbes {
		t.Fatalf("cross-tenant probes %d denied %d, want %d of each: %s",
			rep.CrossProbes, rep.CrossDenied, wantProbes, rep)
	}
	if rep.Reads == 0 || rep.Writes == 0 {
		t.Fatalf("degenerate mix: %s", rep)
	}

	// Determinism: an identical schedule must leave byte-identical
	// per-shard telemetry.
	rep2, prom2 := runSmoke(t)
	if rep2.Leaks != 0 || rep2.Errors != 0 {
		t.Fatalf("second run regressed: %s (first error %s)", rep2, rep2.FirstError)
	}
	if !bytes.Equal(prom1, prom2) {
		t.Fatalf("per-shard telemetry not byte-identical across reruns:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", prom1, prom2)
	}
	if len(prom1) == 0 {
		t.Fatal("empty /shards.prom")
	}

	// Both services are closed and both test servers down: every shard
	// worker and HTTP goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after drain", before, n)
	}
}

// TestServiceSecurityAccounting checks the service-level security
// telemetry and journal: failed logins and cross-tenant denials are
// counted and journaled.
func TestServiceSecurityAccounting(t *testing.T) {
	svc := server.New(server.Options{
		Shards: 1,
		MCMode: core.SchemeFsEncr.MCMode(),
		Access: core.SchemeFsEncr.AccessMode(),
	})
	defer svc.Close()
	hs := httptest.NewServer(svc.Mux())
	defer hs.Close()

	alice := fsclient.Dial(hs.URL)
	if err := alice.Login("acme", 1, "alice-pw"); err != nil {
		t.Fatalf("login: %v", err)
	}
	if err := alice.Create(fsproto.CreateRequest{Name: "secret.db", Perm: 0600, Size: 4096, Encrypted: true}); err != nil {
		t.Fatalf("create: %v", err)
	}

	// Wrong passphrase for an already-registered identity: auth failure.
	evil := fsclient.Dial(hs.URL)
	if err := evil.Login("acme", 1, "guessed-pw"); !fsclient.IsCode(err, fsproto.CodeAuth) {
		t.Fatalf("want auth failure, got %v", err)
	}

	// A different tenant reaching into acme's namespace: denied, journaled.
	bob := fsclient.Dial(hs.URL)
	if err := bob.Login("globex", 1, "bob-pw"); err != nil {
		t.Fatalf("bob login: %v", err)
	}
	_, err := bob.Read(fsproto.ReadRequest{Name: "secret.db", Tenant: "acme", Offset: 0, Length: 64})
	if !fsclient.IsCode(err, fsproto.CodePermission) {
		t.Fatalf("want permission denial, got %v", err)
	}

	snap := svc.MetricsSnapshot()
	if snap.Counters["server.auth_failures_total"] == 0 {
		t.Fatal("auth failure not counted")
	}
	if snap.Counters["server.cross_tenant_denials_total"] == 0 {
		t.Fatal("cross-tenant denial not counted")
	}
	var sawAuth, sawDenial bool
	for _, e := range svc.JournalEvents() {
		switch e.Type {
		case "auth_failure":
			sawAuth = true
		case "cross_tenant_denied":
			sawDenial = true
		}
	}
	if !sawAuth || !sawDenial {
		t.Fatalf("journal missing security events (auth %v denial %v)", sawAuth, sawDenial)
	}
}
