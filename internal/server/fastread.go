package server

// Concurrent read fast-path: read-only ops (file read, stat) leave the
// shard worker's admission queue entirely and run on the calling HTTP
// goroutine against a consistent snapshot of the shard's machine.
//
// The consistency scheme is a seqlock/epoch counter hybridized with an
// RWMutex (a naked seqlock over the simulator's pointer-rich state would
// be a Go data race): the worker wraps every mutation batch in
// enterMut/exitMut — writer lock plus version bump to odd and back — and a
// reader (a) checks the version is even, (b) TryRLocks, (c) re-checks the
// version, (d) runs the decrypt-read through the kernel/controller
// snapshot entry points, (e) unlocks. Any anomaly — mutation in flight,
// lock contention, version churn, or a snapshot-unservable condition
// (unresolved key, unfaulted page, locked datapath, non-DAX mode) — makes
// the reader fall back to ordinary worker admission, which re-runs the op
// with exact live semantics. The fast path is success-only; it never
// invents an error.
//
// Side effects the live read path would have produced (stats, audit
// records, Osiris ECC accounting) are deferred into pooled ReadDelta
// buffers pushed onto a lock-free stack; the worker folds them into the
// controller at its next mutation, under its own lock, stamped with its
// own clock.
//
// Large reads additionally fan their page decrypts across a bounded
// process-wide crypt pool: each worker chunk decrypts with its own forked
// AES engines into disjoint ranges of the caller's buffer, so the output
// is deterministic regardless of scheduling.
//
// Gating: deterministic shards (state must stay a pure function of the
// schedule), logged shards (every op must be an admission-log record), and
// -serial-reads servers always take the worker path.

import (
	"runtime"
	"sync"

	"fsencr/internal/fsproto"
	"fsencr/internal/kernel"
	"fsencr/internal/memctrl"
)

const (
	// fastReadRetries bounds seqlock acquisition attempts before a read
	// falls back to worker admission.
	fastReadRetries = 2
	// fanMinSpans is the page-span count from which a snapshot read fans
	// its decrypts across the crypt pool instead of running serially.
	fanMinSpans = 4
	// groupCommitBatch bounds how many admitted tasks the fair worker
	// serves under one writer-lock acquisition (shard.go runFair).
	groupCommitBatch = 8
)

// cryptSlots bounds process-wide concurrent page-crypt helpers to the core
// count. The fanning reader always decrypts its first chunk itself and
// claims slots non-blockingly for the rest, so a saturated pool degrades
// to serial decrypt instead of queueing behind other readers.
var cryptSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// deltaNode is one deferred-side-effect buffer on the shard's lock-free
// Treiber stack (pushed by readers, swapped out whole by the worker).
// trace carries the read's wire trace context so the worker can give every
// sampled fast read its one tail-sampling decision at drain time — the
// invariant "every sampled request gets exactly one kept/dropped verdict"
// survives the read leaving the admission plane.
type deltaNode struct {
	d     *memctrl.ReadDelta
	trace fsproto.TraceContext
	name  string
	next  *deltaNode
}

// enterMut begins a worker mutation batch: version to odd (readers that
// sample it now refuse to start), writer lock (readers in flight finish
// first), then the deferred side effects of reads that completed since the
// last batch are folded in, so audit records never reorder across the
// mutations that follow them.
func (sh *Shard) enterMut() {
	sh.ver.Add(1)
	sh.rmu.Lock()
	sh.drainDeltas()
}

// exitMut ends the batch: version back to even, lock released.
func (sh *Shard) exitMut() {
	sh.ver.Add(1)
	sh.rmu.Unlock()
}

// drainDeltas applies every delta pushed since the last drain. Runs on the
// worker under the writer lock; the deferred records are stamped with the
// worker's current simulated clock (snapshot reads advance no clock of
// their own).
func (sh *Shard) drainDeltas() {
	head := sh.deltas.Swap(nil)
	if head == nil {
		return
	}
	now := sh.Sys.M.MaxCoreTime()
	for n := head; n != nil; n = n.next {
		sh.Sys.M.MC.ApplyReadDelta(now, n.d)
		if n.trace.Sampled && n.trace.TraceID != 0 {
			// A fast read advances no simulated clock and records no
			// component spans (readers cannot touch the worker's registry),
			// so its trace is a single zero-length root stamped at drain
			// time — but it still gets exactly one sampler decision.
			sh.scope.Begin(n.trace.TraceID, n.trace.Parent)
			sh.scope.Enter()
			sh.scope.Exit("request", n.name, uint64(now), uint64(now), 0)
			sh.scope.End(sh.sampler.Keep(n.trace.TraceID, 0, false))
		}
		n.d.Reset()
		sh.deltaPool.Put(n.d)
	}
}

// pushDelta hands a completed read's side effects to the worker.
func (sh *Shard) pushDelta(d *memctrl.ReadDelta, tc fsproto.TraceContext, name string) {
	n := &deltaNode{d: d, trace: tc, name: name}
	for {
		old := sh.deltas.Load()
		n.next = old
		if sh.deltas.CompareAndSwap(old, n) {
			return
		}
	}
}

func (sh *Shard) getDelta() *memctrl.ReadDelta {
	return sh.deltaPool.Get().(*memctrl.ReadDelta)
}

func (sh *Shard) putDelta(d *memctrl.ReadDelta) {
	d.Reset()
	sh.deltaPool.Put(d)
}

// rLock runs the reader half of the seqlock protocol, returning true with
// the read lock held. False means a mutation is in flight or just raced
// us; the caller retries or falls back.
func (sh *Shard) rLock() bool {
	v := sh.ver.Load()
	if v&1 != 0 || !sh.rmu.TryRLock() {
		return false
	}
	if sh.ver.Load() != v {
		// A mutation batch slipped in between the version sample and the
		// lock; re-enter so the plan and the decrypt see one epoch.
		sh.rmu.RUnlock()
		return false
	}
	return true
}

// tryFastRead serves a file read without the worker. dst is fully written
// on success; on false its contents are unspecified and the caller must
// fall back to worker admission.
func (sh *Shard) tryFastRead(sess *Session, tc fsproto.TraceContext, name, passphrase string, off uint64, dst []byte) bool {
	for attempt := 0; attempt < fastReadRetries; attempt++ {
		if !sh.rLock() {
			runtime.Gosched()
			continue
		}
		ok := sh.snapshotRead(sess, tc, name, passphrase, off, dst)
		sh.rmu.RUnlock()
		return ok
	}
	return false
}

// tryFastStat serves a stat without the worker. ok=false falls back (the
// worker produces the exact live error shapes for missing or denied
// files).
func (sh *Shard) tryFastStat(sess *Session, name string) (fsproto.StatResponse, bool) {
	for attempt := 0; attempt < fastReadRetries; attempt++ {
		if !sh.rLock() {
			runtime.Gosched()
			continue
		}
		f, ok := sh.Sys.SnapshotStat(sess.uid, sess.gid, name)
		var resp fsproto.StatResponse
		if ok {
			resp = statResponse(f)
		}
		sh.rmu.RUnlock()
		return resp, ok
	}
	return fsproto.StatResponse{}, false
}

// snapshotRead plans and executes one read under the held read lock.
func (sh *Shard) snapshotRead(sess *Session, tc fsproto.TraceContext, name, passphrase string, off uint64, dst []byte) bool {
	sr := sh.readPool.Get().(*kernel.SnapshotReader)
	plan, ok := sh.Sys.SnapshotReadPlan(sr, sess.uid, sess.gid, name, passphrase, off, uint64(len(dst)))
	if !ok {
		sh.readPool.Put(sr)
		return false
	}
	d := sh.getDelta()
	ok = sh.runSpans(sr, plan, dst, d)
	sh.readPool.Put(sr)
	if !ok {
		sh.putDelta(d)
		return false
	}
	sh.pushDelta(d, tc, "read")
	return true
}

// runSpans decrypts a plan's spans into dst, serially for small reads and
// fanned across the crypt pool for large ones. Caller must hold the read
// lock for the whole call: the helper goroutines read shard state under
// the caller's lock (the go statement and WaitGroup give the necessary
// happens-before edges).
func (sh *Shard) runSpans(sr *kernel.SnapshotReader, plan []kernel.PageSpan, dst []byte, d *memctrl.ReadDelta) bool {
	if len(plan) < fanMinSpans {
		for _, sp := range plan {
			if !sh.Sys.SnapshotReadSpan(sr, sp, dst, d) {
				return false
			}
		}
		return true
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > len(plan) {
		nw = len(plan)
	}
	chunk := (len(plan) + nw - 1) / nw
	nc := (len(plan) + chunk - 1) / chunk

	// Helper chunks get their own reader context and delta; deltas merge
	// in chunk order below, so the folded side effects are identical to a
	// serial walk of the plan.
	type helper struct {
		sr *kernel.SnapshotReader
		d  *memctrl.ReadDelta
		ok bool
	}
	bounds := func(ci int) (int, int) {
		lo, end := ci*chunk, (ci+1)*chunk
		if end > len(plan) {
			end = len(plan)
		}
		return lo, end
	}
	runChunk := func(h *helper, spans []kernel.PageSpan) {
		h.ok = true
		for _, sp := range spans {
			if !sh.Sys.SnapshotReadSpan(h.sr, sp, dst, h.d) {
				h.ok = false
				return
			}
		}
	}
	helpers := make([]helper, nc)
	var wg sync.WaitGroup
	for ci := 1; ci < nc; ci++ {
		select {
		case cryptSlots <- struct{}{}:
			h := &helpers[ci]
			h.sr = sh.readPool.Get().(*kernel.SnapshotReader)
			h.d = sh.getDelta()
			lo, end := bounds(ci)
			wg.Add(1)
			go func(h *helper, spans []kernel.PageSpan) {
				defer wg.Done()
				defer func() { <-cryptSlots }()
				runChunk(h, spans)
			}(h, plan[lo:end])
		default:
			// Pool saturated: this chunk runs on the caller, below.
		}
	}
	// The caller's chunk runs on the caller's goroutine, concurrent with
	// the helpers — then any chunks the saturated pool left behind, reusing
	// the caller's context.
	mine := helper{sr: sr, d: d}
	runChunk(&mine, plan[:chunk])
	ok := mine.ok
	for ci := 1; ci < nc && ok; ci++ {
		if helpers[ci].sr != nil {
			continue
		}
		lo, end := bounds(ci)
		mine = helper{sr: sr, d: d}
		runChunk(&mine, plan[lo:end])
		ok = mine.ok
	}
	wg.Wait()
	for ci := 1; ci < nc; ci++ {
		h := &helpers[ci]
		if h.sr == nil {
			continue
		}
		ok = ok && h.ok
		d.Merge(h.d)
		sh.putDelta(h.d)
		sh.readPool.Put(h.sr)
	}
	return ok
}
