package server

import "context"

// Hold pins a shard's worker goroutine: while held, the worker executes
// only closures passed to Run, so the holder has exclusive, serialized
// access to the simulated machine with no admitted task interleaving —
// the quiesce primitive of live migration. Requests keep arriving and
// queue behind the hold; Resume serves them normally, Retire answers them
// (and everything after) with the given error.
type Hold struct {
	sh      *Shard
	work    chan func()
	end     chan error
	entered chan struct{}
}

// Hold parks the shard's worker. It returns once the worker is parked; ctx
// bounds the wait (under sustained load the worker picks the park up
// between servings).
func (sh *Shard) Hold(ctx context.Context) (*Hold, error) {
	h := &Hold{sh: sh, work: make(chan func()), end: make(chan error), entered: make(chan struct{})}
	st := sideTask{fn: h.park, done: make(chan struct{})}
	select {
	case sh.side <- st:
	case <-sh.stopped:
		return nil, ErrDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case <-h.entered:
		return h, nil
	case <-sh.stopped:
		return nil, ErrDraining
	case <-ctx.Done():
		// The park may still start later; release it as soon as it does so
		// an abandoned hold cannot wedge the shard.
		go func() { h.end <- nil }()
		return nil, ctx.Err()
	}
}

// park runs on the worker goroutine until Resume, Retire, or shard
// shutdown (a Close under an active hold releases the worker so it can
// drain and exit instead of deadlocking).
func (h *Hold) park() {
	close(h.entered)
	for {
		select {
		case fn := <-h.work:
			fn()
		case err := <-h.end:
			if err != nil {
				h.sh.retired = err
			}
			return
		case <-h.sh.stop:
			return
		}
	}
}

// Run executes fn on the held worker and waits for it. If the shard shut
// down under the hold, fn does not run.
func (h *Hold) Run(fn func()) {
	done := make(chan struct{})
	select {
	case h.work <- func() { fn(); close(done) }:
	case <-h.sh.stopped:
		return
	}
	select {
	case <-done:
	case <-h.sh.stopped:
	}
}

// Resume releases the hold; the worker resumes normal serving (migration
// rollback).
func (h *Hold) Resume() { h.release(nil) }

// Retire releases the hold and marks the shard retired: every queued and
// future task is answered with err instead of executing (migration
// cutover; err is the routing error pointing at the new owner).
func (h *Hold) Retire(err error) { h.release(err) }

func (h *Hold) release(err error) {
	select {
	case h.end <- err:
	case <-h.sh.stopped:
	}
}
